//===- driver_parallel_test.cpp - Parallel inspector determinism -----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The contract behind driver::InspectorOptions::NumThreads: for every
// kernel of the suite and any thread count, the parallel inspector fleet
// must produce a dependence graph *bitwise identical* to the serial run
// (same edges, same per-inspector visit/edge accounting), and the graph
// must cover the brute-force dependence DAG where one is computable.
// These tests are the tier-1 gate for the threading model; run them under
// -DSDS_SANITIZE=thread to check the parallel region itself.
//
//===----------------------------------------------------------------------===//

#include "sds/driver/Driver.h"
#include "sds/runtime/Schedule.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace sds;
using namespace sds::rt;

namespace {

CSRMatrix randomSPD(int N, int Nnz, int Band, uint64_t Seed) {
  GeneratorConfig C;
  C.N = N;
  C.AvgNnzPerRow = Nnz;
  C.Bandwidth = Band;
  C.Seed = Seed;
  return generateSPDLike(C);
}

/// Full analysis is seconds for the solver kernels but minutes for the
/// factorizations; the determinism property is about the *runtime* fleet,
/// not the simplifier, so heavy kernels run with the analysis passes off
/// (pure extraction + naive inspectors) on small matrices.
deps::PipelineOptions reducedOptions() {
  deps::PipelineOptions Opts;
  Opts.UseProperties = false;
  Opts.UseEqualities = false;
  Opts.UseSubsets = false;
  Opts.Simp.SemanticPhase1 = false;
  Opts.Simp.InstantiationRounds = 1;
  Opts.Simp.MaxInstances = 2000;
  Opts.Simp.MaxPhase2Instances = 2;
  Opts.Simp.MaxPieces = 16;
  return Opts;
}

struct SuiteCase {
  std::string Key;
  deps::PipelineResult Analysis;
  codegen::UFEnvironment Env;
  int N;
};

/// Bind the right arrays for one kernel key on a random SPD-like matrix.
SuiteCase wire(const std::string &Key, const kernels::Kernel &K,
               const deps::PipelineOptions &Opts, int N, uint64_t Seed) {
  SuiteCase C;
  C.Key = Key;
  C.Analysis = deps::analyzeKernel(K, Opts);
  CSRMatrix A = randomSPD(N, 5, 12, Seed);
  if (Key == "gs_csr" || Key == "ilu0_csr") {
    C.Env = driver::bindCSR(A, A.diagonalPositions());
    C.N = A.N;
  } else if (Key == "spmv_csr") {
    C.Env = driver::bindCSR(A);
    C.N = A.N;
  } else if (Key == "fs_csr") {
    CSRMatrix Lower = lowerTriangle(A);
    C.Env = driver::bindCSR(Lower);
    C.N = Lower.N;
  } else {
    CSCMatrix L = toCSC(lowerTriangle(A));
    if (Key == "lchol_csc") {
      PruneSets Prune = buildPruneSets(L);
      C.Env = driver::bindCSC(L, &Prune);
    } else {
      C.Env = driver::bindCSC(L);
    }
    C.N = L.N;
  }
  return C;
}

void expectGraphsEqual(const DependenceGraph &A, const DependenceGraph &B,
                       const std::string &Label) {
  ASSERT_EQ(A.numNodes(), B.numNodes()) << Label;
  EXPECT_EQ(A.numEdges(), B.numEdges()) << Label;
  for (int U = 0; U < A.numNodes(); ++U) {
    auto SA = A.successors(U);
    auto SB = B.successors(U);
    ASSERT_TRUE(std::equal(SA.begin(), SA.end(), SB.begin(), SB.end()))
        << Label << ": successor mismatch at node " << U;
  }
}

void checkKernelDeterminism(const std::string &Key, const kernels::Kernel &K,
                            const deps::PipelineOptions &Opts, int N,
                            std::vector<uint64_t> Seeds = {11, 29}) {
  for (uint64_t Seed : Seeds) {
    SuiteCase C = wire(Key, K, Opts, N, Seed);
    driver::InspectionResult Serial =
        driver::runInspectors(C.Analysis, C.Env, C.N);
    for (int Threads : {2, 3, 8}) {
      driver::InspectorOptions IOpts;
      IOpts.NumThreads = Threads;
      driver::InspectionResult Par =
          driver::runInspectors(C.Analysis, C.Env, C.N, IOpts);
      std::string Label =
          Key + " seed=" + std::to_string(Seed) +
          " threads=" + std::to_string(Threads);
      EXPECT_EQ(Serial.InspectorVisits, Par.InspectorVisits) << Label;
      ASSERT_EQ(Serial.Runs.size(), Par.Runs.size()) << Label;
      for (size_t I = 0; I < Serial.Runs.size(); ++I) {
        EXPECT_EQ(Serial.Runs[I].Label, Par.Runs[I].Label) << Label;
        EXPECT_EQ(Serial.Runs[I].Visits, Par.Runs[I].Visits) << Label;
        EXPECT_EQ(Serial.Runs[I].Edges, Par.Runs[I].Edges) << Label;
      }
      expectGraphsEqual(Serial.Graph, Par.Graph, Label);
    }
  }
}

} // namespace

TEST(ParallelDeterminism, ForwardSolveCSR) {
  checkKernelDeterminism("fs_csr", kernels::forwardSolveCSR(), {}, 150);
}

TEST(ParallelDeterminism, ForwardSolveCSC) {
  checkKernelDeterminism("fs_csc", kernels::forwardSolveCSC(), {}, 150);
}

TEST(ParallelDeterminism, GaussSeidelCSR) {
  checkKernelDeterminism("gs_csr", kernels::gaussSeidelCSR(), {}, 150);
}

TEST(ParallelDeterminism, SpMVCSR) {
  checkKernelDeterminism("spmv_csr", kernels::spmvCSR(), {}, 150);
}

TEST(ParallelDeterminism, IncompleteLU0CSRNaive) {
  checkKernelDeterminism("ilu0_csr", kernels::incompleteLU0CSR(),
                         reducedOptions(), 60);
}

TEST(ParallelDeterminism, IncompleteCholeskyCSCNaive) {
  checkKernelDeterminism("ic0_csc", kernels::incompleteCholeskyCSC(),
                         reducedOptions(), 60);
}

TEST(ParallelDeterminism, LeftCholeskyCSCNaive) {
  checkKernelDeterminism("lchol_csc", kernels::leftCholeskyCSC(),
                         reducedOptions(), 60);
}

TEST(ParallelDeterminism, EveryScheduleKindCertifiesOnEveryKernel) {
  // The generic certificate (the brute-force DAG cover promoted into
  // rt::certifySchedule) must hold for every pass combination the
  // framework can produce, over the inspector graph of every kernel of
  // the suite, at every thread count.
  struct Entry {
    const char *Key;
    kernels::Kernel K;
    deps::PipelineOptions Opts;
    int N;
  };
  const Entry Suite[] = {
      {"fs_csr", kernels::forwardSolveCSR(), {}, 120},
      {"fs_csc", kernels::forwardSolveCSC(), {}, 120},
      {"gs_csr", kernels::gaussSeidelCSR(), {}, 120},
      {"spmv_csr", kernels::spmvCSR(), {}, 120},
      {"ilu0_csr", kernels::incompleteLU0CSR(), reducedOptions(), 50},
      {"ic0_csc", kernels::incompleteCholeskyCSC(), reducedOptions(), 50},
      {"lchol_csc", kernels::leftCholeskyCSC(), reducedOptions(), 50},
  };
  const rt::ScheduleKind Kinds[] = {
      rt::ScheduleKind::Levels, rt::ScheduleKind::LBC,
      rt::ScheduleKind::Coalesced, rt::ScheduleKind::P2P,
      rt::ScheduleKind::Vector};
  for (const Entry &E : Suite) {
    SuiteCase C = wire(E.Key, E.K, E.Opts, E.N, 47);
    driver::InspectionResult Insp =
        driver::runInspectors(C.Analysis, C.Env, C.N);
    for (rt::ScheduleKind Kind : Kinds)
      for (int Threads : {1, 2, 4, 8}) {
        rt::ScheduleConfig SC;
        SC.Kind = Kind;
        SC.NumThreads = Threads;
        SC.MinWorkPerThread = 8;
        rt::CompiledSchedule S = rt::buildSchedule(Insp.Graph, SC);
        EXPECT_TRUE(rt::certifySchedule(Insp.Graph, S))
            << E.Key << " " << rt::scheduleKindName(Kind)
            << " threads=" << Threads;
      }
  }
}

TEST(ParallelDeterminism, CoversBruteForceForwardSolveDAG) {
  // The inspector DAG (any thread count) must contain every edge of the
  // brute-force dependence DAG read directly off the factor's structure.
  CSRMatrix Lower = lowerTriangle(randomSPD(200, 7, 20, 77));
  CSCMatrix L = toCSC(Lower);
  auto Analysis = deps::analyzeKernel(kernels::forwardSolveCSR());
  auto Env = driver::bindCSR(Lower);
  driver::InspectorOptions IOpts;
  IOpts.NumThreads = 4;
  driver::InspectionResult Insp =
      driver::runInspectors(Analysis, Env, Lower.N, IOpts);
  DependenceGraph Exact = exactForwardSolveGraph(L);
  for (int U = 0; U < Exact.numNodes(); ++U)
    for (int V : Exact.successors(U)) {
      auto Succ = Insp.Graph.successors(U);
      EXPECT_TRUE(std::find(Succ.begin(), Succ.end(), V) != Succ.end())
          << "missing dependence " << U << " -> " << V;
    }
}
