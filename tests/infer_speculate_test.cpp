//===- infer_speculate_test.cpp - Speculative inference contract tests ----===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The inverted property flow, end to end on one light kernel:
//
//   * the O(n + nnz) profiler confirms every hand-declared Table 1
//     property of the bound arrays (tier Inferred), and its fingerprint
//     is deterministic and profile-sensitive;
//   * a speculated analysis (declarations stripped) recovers the declared
//     analysis's dependence graph bit-identically, and marks exactly the
//     speculation-dependent dependences Remediable with their cited
//     inferred assertions;
//   * misspeculation — arrays corrupted after inference — trips remedy
//     validation in guard Mode Off and revokes dependences individually,
//     never past the remediable set, and never serves a wrong schedule
//     (runInferCampaign across every corruption class);
//   * speculation survives the artifact codec (tier, Remediable,
//     InferredCited, Options.Speculate, InferredFingerprint) and the
//     engine keys speculated tiers apart from declared-only ones.
//
//===----------------------------------------------------------------------===//

#include "sds/artifact/Artifact.h"
#include "sds/engine/Engine.h"
#include "sds/guard/FaultInjection.h"
#include "sds/guard/Guarded.h"
#include "sds/infer/Infer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace sds;
using namespace sds::guard;

namespace {

struct Fixture {
  rt::CSRMatrix Lower;
  kernels::Kernel K;
  codegen::UFEnvironment Env;
  infer::InferenceResult Inf;
  deps::PipelineResult Declared;
  deps::PipelineResult Speculated;
  deps::PipelineOptions SpecOpts;

  Fixture()
      : Lower(rt::lowerTriangle(rt::generateSPDLike({72, 5, 11, 3}))),
        K(kernels::forwardSolveCSR()), Env(driver::bindCSR(Lower)),
        Inf(infer::inferProperties(Env)), Declared(deps::analyzeKernel(K)) {
    kernels::Kernel Stripped = K;
    Stripped.Properties = ir::PropertySet{};
    SpecOpts.Speculate = true;
    SpecOpts.InferredProps = Inf.Confirmed;
    Speculated = deps::analyzeKernel(Stripped, SpecOpts);
  }
};

const Fixture &fx() {
  static Fixture F;
  return F;
}

bool graphsIdentical(const rt::DependenceGraph &A,
                     const rt::DependenceGraph &B) {
  if (A.numNodes() != B.numNodes() || A.numEdges() != B.numEdges())
    return false;
  for (int V = 0; V < A.numNodes(); ++V) {
    auto SA = A.successors(V), SB = B.successors(V);
    if (SA.size() != SB.size() ||
        !std::equal(SA.begin(), SA.end(), SB.begin()))
      return false;
  }
  return true;
}

TEST(InferSpeculate, ProfilerConfirmsDeclaredTrustBase) {
  const Fixture &F = fx();
  EXPECT_GT(F.Inf.ConfirmedCount, 0u);
  EXPECT_EQ(F.Inf.ConfirmedCount + F.Inf.RefutedCount, F.Inf.Proposed);
  // Every hand-declared property of the kernel must be rediscovered by
  // the profiler on arrays it actually holds on — as tier Inferred.
  for (const ir::IndexArrayProperty &P : F.K.Properties.properties()) {
    auto T = F.Inf.Confirmed.tierForLabelBase(propertyLabelBase(P));
    ASSERT_TRUE(T.has_value()) << propertyLabelBase(P);
    EXPECT_EQ(*T, ir::PropertyTier::Inferred);
  }
  for (const ir::DomainRangeDecl &D : F.K.Properties.domainRanges()) {
    auto T = F.Inf.Confirmed.tierForLabelBase(propertyLabelBase(D));
    ASSERT_TRUE(T.has_value()) << propertyLabelBase(D);
    EXPECT_EQ(*T, ir::PropertyTier::Inferred);
  }
}

TEST(InferSpeculate, FingerprintDeterministicAndProfileSensitive) {
  const Fixture &F = fx();
  uint64_t Fp = F.Inf.fingerprint();
  EXPECT_NE(Fp, 0u);
  EXPECT_EQ(infer::inferProperties(F.Env).fingerprint(), Fp);

  // Break rowptr's strict monotonicity: the confirmed set loses at least
  // that base, so the profile — and the fingerprint — must change.
  FaultSpec S{"rowptr", FaultKind::SwapAdjacent, 0};
  codegen::UFEnvironment Bad;
  std::string Desc;
  ASSERT_TRUE(injectFault(F.Env, S, Bad, Desc));
  EXPECT_NE(infer::inferProperties(Bad).fingerprint(), Fp);
}

TEST(InferSpeculate, SpeculatedAnalysisRecoversGraphBitIdentically) {
  const Fixture &F = fx();
  EXPECT_EQ(F.Declared.count(deps::DepStatus::PropertyUnsat),
            F.Speculated.count(deps::DepStatus::PropertyUnsat));

  unsigned Remediable = 0;
  for (const deps::AnalyzedDependence &D : F.Speculated.Deps) {
    EXPECT_EQ(D.Remediable, !D.InferredCited.empty());
    Remediable += D.Remediable ? 1 : 0;
    // Every cited base must exist in the union set with tier Inferred —
    // remedies only ever point at speculation.
    for (const std::string &B : D.InferredCited) {
      auto T = F.Speculated.Kernel.Properties.tierForLabelBase(B);
      ASSERT_TRUE(T.has_value()) << B;
      EXPECT_EQ(*T, ir::PropertyTier::Inferred);
    }
  }
  EXPECT_GE(Remediable, 1u);

  driver::InspectionResult DeclRun =
      driver::runInspectors(F.Declared, F.Env, F.Lower.N);
  driver::InspectionResult SpecRun =
      driver::runInspectors(F.Speculated, F.Env, F.Lower.N);
  EXPECT_TRUE(graphsIdentical(DeclRun.Graph, SpecRun.Graph));
}

TEST(InferSpeculate, PristineRemediesAllPass) {
  const Fixture &F = fx();
  GuardedOptions GO;
  GO.Mode = GuardMode::Off;
  GuardedResult G = runGuarded(F.Speculated, F.Speculated.Kernel.Properties,
                               F.Env, F.Lower.N, GO);
  // Mode Off still validates remedies — and on the arrays inference ran
  // against, every one of them passes.
  EXPECT_TRUE(G.Validated);
  EXPECT_GE(G.RemediesChecked, 1u);
  EXPECT_EQ(G.RemediesFailed, 0u);
  EXPECT_EQ(G.DepsRevoked, 0u);
  EXPECT_FALSE(G.UsedFallback);
  EXPECT_TRUE(G.Trusted);
  EXPECT_GE(G.DepsRemediable, 1u);
}

TEST(InferSpeculate, MisspeculationRevokesPerDependence) {
  const Fixture &F = fx();
  // Corrupt col *after* inference: triangularity/periodicity no longer
  // hold, so the remedies citing them must fail and revoke exactly the
  // citing dependences — not the whole analysis.
  FaultSpec S{"col", FaultKind::OutOfRange, 0};
  codegen::UFEnvironment Bad;
  std::string Desc;
  ASSERT_TRUE(injectFault(F.Env, S, Bad, Desc));

  GuardedOptions GO;
  GO.Mode = GuardMode::Off;
  GO.Verify = true;
  GO.VerifyMaxN = INT32_MAX;
  GuardedResult G = runGuarded(F.Speculated, F.Speculated.Kernel.Properties,
                               Bad, F.Lower.N, GO);
  EXPECT_GE(G.RemediesChecked, 1u);
  EXPECT_GE(G.RemediesFailed, 1u);
  EXPECT_GE(G.DepsRevoked, 1u);
  // A failed inferred domain/range remedy revokes *structurally* — every
  // simplified dependence whose relation applies the function — because
  // instantiation bakes domain facts into every UF encoding and cores
  // legitimately under-cite them. So revocation may exceed the
  // core-remediable count, but never the simplified-dependence count.
  EXPECT_LE(G.DepsRevoked, F.Speculated.Deps.size());
  EXPECT_TRUE(G.UsedFallback);
  // Revocation repaired the plan: the schedule respects the corrupted
  // input's baseline graph.
  ASSERT_TRUE(G.Verified);
  EXPECT_TRUE(G.VerifyPassed);
}

TEST(InferSpeculate, InferCampaignContractHolds) {
  const Fixture &F = fx();
  InferCampaignResult R = runInferCampaign(F.K, F.Env, F.Lower.N, 1, 2);
  EXPECT_GT(R.injected(), 0u);
  EXPECT_GE(R.SpeculativeDeps, 1u);
  EXPECT_GE(R.EliminatedSpeculatively, 1u);
  // At least one corruption lands on a cited array and trips a remedy...
  EXPECT_GE(R.remedyTripped(), 1u);
  EXPECT_GE(R.revokedDeps(), 1u);
  // ...and no trial, tripped or tolerated, ever serves a wrong schedule.
  EXPECT_EQ(R.silentWrong(), 0u);
  for (const InferTrial &T : R.Trials) {
    if (T.Injected) {
      EXPECT_TRUE(T.StillCorrect) << T.str();
    }
  }
}

TEST(InferSpeculate, ArtifactRoundTripCarriesSpeculation) {
  const Fixture &F = fx();
  deps::PipelineResult Copy = F.Speculated;
  artifact::CompiledKernel CK =
      artifact::fromAnalysis(std::move(Copy), F.SpecOpts);
  CK.InferredFingerprint = F.Inf.fingerprint();
  ASSERT_TRUE(CK.Options.Speculate);

  artifact::CompiledKernel Back;
  support::Status St = artifact::deserialize(artifact::serialize(CK), Back);
  ASSERT_TRUE(St.ok()) << St.str();
  EXPECT_TRUE(Back.Options.Speculate);
  EXPECT_EQ(Back.InferredFingerprint, CK.InferredFingerprint);

  // Tiers survive the codec: the union set decodes with its Inferred
  // entries intact.
  unsigned Inferred = 0;
  for (const ir::IndexArrayProperty &P : Back.Properties.properties())
    Inferred += P.Tier == ir::PropertyTier::Inferred ? 1 : 0;
  EXPECT_GE(Inferred, 1u);

  // So do the per-dependence remedy records.
  unsigned Remediable = 0;
  for (size_t I = 0; I < Back.Deps.size(); ++I) {
    EXPECT_EQ(Back.Deps[I].Remediable, CK.Deps[I].Remediable);
    EXPECT_EQ(Back.Deps[I].InferredCited, CK.Deps[I].InferredCited);
    Remediable += Back.Deps[I].Remediable ? 1 : 0;
  }
  EXPECT_GE(Remediable, 1u);

  // And a re-serialize is byte-identical (determinism contract).
  EXPECT_EQ(artifact::serialize(Back), artifact::serialize(CK));
}

TEST(InferSpeculate, EngineKeysSpeculatedTiersSeparately) {
  const Fixture &F = fx();
  engine::Engine E;

  auto Spec = E.speculatedCompiled(F.K, F.Env);
  ASSERT_TRUE(Spec);
  EXPECT_TRUE(Spec->Options.Speculate);
  EXPECT_NE(Spec->InferredFingerprint, 0u);
  EXPECT_EQ(E.stats().KernelCold, 1u);
  EXPECT_EQ(E.stats().KernelSpeculated, 1u);

  // Same environment, same profile: the speculated artifact is warm.
  auto Again = E.speculatedCompiled(F.K, F.Env);
  EXPECT_EQ(Again.get(), Spec.get());
  EXPECT_EQ(E.stats().KernelWarm, 1u);

  // The declared-only tier never aliases the speculated one.
  auto Decl = E.compiled(F.K);
  ASSERT_TRUE(Decl);
  EXPECT_FALSE(Decl->Options.Speculate);
  EXPECT_EQ(Decl->InferredFingerprint, 0u);
  EXPECT_EQ(E.stats().KernelCold, 2u);
  EXPECT_NE(Decl.get(), Spec.get());

  // Matrix tier: a speculated plan and a declared plan of the same
  // (kernel, matrix) are distinct cache entries.
  auto P1 = E.plan(F.K, F.Env, F.Lower.N, /*Speculate=*/true);
  ASSERT_TRUE(P1);
  EXPECT_EQ(E.stats().MatrixCold, 1u);
  auto P2 = E.plan(F.K, F.Env, F.Lower.N, /*Speculate=*/true);
  EXPECT_EQ(P2.get(), P1.get());
  EXPECT_EQ(E.stats().MatrixWarm, 1u);
  auto P3 = E.plan(F.K, F.Env, F.Lower.N, /*Speculate=*/false);
  ASSERT_TRUE(P3);
  EXPECT_EQ(E.stats().MatrixCold, 2u);
  EXPECT_NE(P3.get(), P1.get());

  // Both plans' schedules are certified against their own graphs (sanity,
  // not identity: speculation may legally eliminate more).
  EXPECT_TRUE(P1->Schedule.Waves.respects(P1->Inspection.Graph));
  EXPECT_TRUE(P3->Schedule.Waves.respects(P3->Inspection.Graph));
}

} // namespace
