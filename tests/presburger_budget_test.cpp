//===- presburger_budget_test.cpp - Solver budget / deadline tests --------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The budget contract of the robustness layer: pivot caps and deadlines
// must always degrade to the conservative answer — LPStatus::Error from
// the Simplex, Ternary::Unknown from the emptiness checker, kept
// dependences from the pipeline — and never hang, never flip a verdict,
// and never pollute the query cache with non-verdicts.
//
//===----------------------------------------------------------------------===//

#include "sds/deps/Pipeline.h"
#include "sds/kernels/Kernels.h"
#include "sds/presburger/BasicSet.h"
#include "sds/presburger/Budget.h"
#include "sds/presburger/Simplex.h"

#include <gtest/gtest.h>

using namespace sds;
using namespace sds::presburger;

namespace {

std::vector<int64_t> row(std::initializer_list<int64_t> L) { return L; }

/// RAII restore of the global pivot budget around a test.
struct PivotBudgetGuard {
  ~PivotBudgetGuard() { setPivotBudget(0); } // 0 restores the default
};

} // namespace

TEST(PivotBudget, ExhaustionReturnsErrorNotWrongVerdict) {
  PivotBudgetGuard Restore;
  // Two violated constraints force at least two phase-1 pivots.
  auto Build = [] {
    Simplex S(2);
    S.addInequality(row({1, 0, -5})); // x >= 5
    S.addInequality(row({0, 1, -7})); // y >= 7
    return S;
  };
  setPivotBudget(1);
  uint64_t Before = pivotBudgetExhaustions();
  Simplex Capped = Build();
  EXPECT_EQ(Capped.checkFeasible(), LPStatus::Error);
  EXPECT_GT(pivotBudgetExhaustions(), Before);

  setPivotBudget(0); // back to the 1M default
  Simplex Free = Build();
  EXPECT_EQ(Free.checkFeasible(), LPStatus::Optimal);
}

TEST(PivotBudget, EmptinessDegradesToUnknown) {
  PivotBudgetGuard Restore;
  clearQueryCache();
  auto Build = [] {
    // Feasible box needing a few pivots to sample.
    BasicSet S(2);
    S.addInequality(row({1, 0, -5}));  // x >= 5
    S.addInequality(row({0, 1, -7}));  // y >= 7
    S.addInequality(row({-1, 0, 20})); // x <= 20
    S.addInequality(row({0, -1, 20})); // y <= 20
    return S;
  };
  setPivotBudget(1);
  EXPECT_EQ(Build().isEmpty(), Ternary::Unknown);

  // The Unknown must not have been cached: with the budget restored the
  // same set gets its real verdict.
  setPivotBudget(0);
  EXPECT_EQ(Build().isEmpty(), Ternary::False);
}

TEST(Deadline, ExpiredDeadlineMakesEmptinessUnknown) {
  clearQueryCache();
  auto Build = [] {
    BasicSet S(1);
    S.addInequality(row({1, 0}));   // x >= 0
    S.addInequality(row({-1, 10})); // x <= 10
    return S;
  };
  {
    ScopedDeadline D(ScopedDeadline::fromNow(0)); // already expired
    EXPECT_TRUE(deadlineExpired());
    uint64_t Before = deadlineExhaustions();
    EXPECT_EQ(Build().isEmpty(), Ternary::Unknown);
    EXPECT_GT(deadlineExhaustions(), Before);
  }
  // Scope closed: no deadline, and the Unknown was not cached.
  EXPECT_FALSE(deadlineExpired());
  EXPECT_EQ(Build().isEmpty(), Ternary::False);
}

TEST(Deadline, InnerScopeCannotExtendOuter) {
  ScopedDeadline Outer(ScopedDeadline::fromNow(0)); // expired now
  EXPECT_TRUE(deadlineExpired());
  {
    ScopedDeadline Inner(ScopedDeadline::fromNow(3600.0)); // generous
    // The outer (tighter) deadline must still govern.
    EXPECT_TRUE(deadlineExpired());
  }
  EXPECT_TRUE(deadlineExpired());
}

TEST(Deadline, NoDeadlineByDefault) {
  EXPECT_EQ(currentDeadlineNs(), 0u);
  EXPECT_FALSE(deadlineExpired());
}

TEST(PipelineBudget, ExhaustionKeepsDependencesConservatively) {
  using deps::DepStatus;
  kernels::Kernel K = kernels::forwardSolveCSR();

  deps::PipelineOptions Tight;
  Tight.AnalysisBudgetMs = 1e-6; // expires before any query can finish
  deps::PipelineResult Budgeted = deps::analyzeKernel(K, Tight);

  deps::PipelineResult Unbudgeted = deps::analyzeKernel(K);

  // Nothing is ever dropped under budget pressure: no property proofs, no
  // subsumption, every dependence held as a runtime check.
  EXPECT_EQ(Budgeted.count(DepStatus::PropertyUnsat), 0u);
  EXPECT_EQ(Budgeted.count(DepStatus::Subsumed), 0u);
  EXPECT_GE(Budgeted.count(DepStatus::Runtime),
            Unbudgeted.count(DepStatus::Runtime));
  EXPECT_EQ(Budgeted.Deps.size(), Unbudgeted.Deps.size());

  // The exhaustion is visible in provenance.
  bool SawBudgetStage = false;
  for (const deps::AnalyzedDependence &D : Budgeted.Deps)
    if (D.Prov.Stage == "budget-exhausted")
      SawBudgetStage = true;
  EXPECT_TRUE(SawBudgetStage);

  // The unbudgeted run afterwards is unaffected (no cached Unknowns):
  // forward solve CSR still gets its Table-3 refutations.
  EXPECT_GE(Unbudgeted.count(DepStatus::PropertyUnsat), 1u);
  EXPECT_EQ(Unbudgeted.count(DepStatus::Runtime), 1u);
}

TEST(PipelineBudget, GenerousBudgetChangesNothing) {
  using deps::DepStatus;
  kernels::Kernel K = kernels::forwardSolveCSC();
  deps::PipelineOptions Roomy;
  Roomy.AnalysisBudgetMs = 60 * 1000.0;
  deps::PipelineResult R = deps::analyzeKernel(K, Roomy);
  deps::PipelineResult Ref = deps::analyzeKernel(K);
  EXPECT_EQ(R.count(DepStatus::Runtime), Ref.count(DepStatus::Runtime));
  EXPECT_EQ(R.count(DepStatus::PropertyUnsat),
            Ref.count(DepStatus::PropertyUnsat));
  EXPECT_EQ(R.count(DepStatus::Subsumed), Ref.count(DepStatus::Subsumed));
}
