//===- serve_test.cpp - Admission-controlled serving over the engine -------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The server's robustness contract (DESIGN.md §16): explicit shedding at
// the queue bound and at expired deadlines, singleflight deduplication of
// identical cold work, graceful degradation (not caching) on analysis
// budget exhaustion, zero lost promises across shutdown, and the
// store-backed warm restart that issues zero Presburger queries while
// reproducing the bit-identical plan.
//
//===----------------------------------------------------------------------===//

#include "sds/presburger/BasicSet.h"
#include "sds/serve/Serve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <span>
#include <thread>

using namespace sds;
using namespace sds::rt;

namespace {

serve::ServeRequest fsCscRequest(int N, uint64_t Seed) {
  GeneratorConfig C;
  C.N = N;
  C.AvgNnzPerRow = 5;
  C.Bandwidth = 12;
  C.Seed = Seed;
  CSCMatrix L = toCSC(lowerTriangle(generateSPDLike(C)));
  serve::ServeRequest R;
  R.Kernel = kernels::forwardSolveCSC();
  R.Env = driver::bindCSC(L);
  R.N = L.N;
  return R;
}

bool sameGraph(const DependenceGraph &A, const DependenceGraph &B, int N) {
  if (A.numEdges() != B.numEdges())
    return false;
  for (int V = 0; V < N; ++V) {
    std::span<const int> SA = A.successors(V), SB = B.successors(V);
    if (SA.size() != SB.size() ||
        !std::equal(SA.begin(), SA.end(), SB.begin()))
      return false;
  }
  return true;
}

std::string freshRoot(const char *Name) {
  std::filesystem::path P = std::filesystem::path(::testing::TempDir()) / Name;
  std::filesystem::remove_all(P);
  return P.string();
}

} // namespace

TEST(ServePolicy, ColdThenWarmSharesThePlan) {
  serve::Server S{serve::ServerOptions{}};
  serve::ServeRequest R = fsCscRequest(120, 7);

  serve::ServeResponse First = S.handle(R);
  ASSERT_TRUE(First.St.ok()) << First.St.str();
  EXPECT_EQ(First.O, serve::Outcome::Cold);
  ASSERT_NE(First.Plan, nullptr);
  EXPECT_TRUE(certifySchedule(First.Plan->Inspection.Graph,
                              First.Plan->Schedule));

  serve::ServeResponse Second = S.handle(R);
  EXPECT_EQ(Second.O, serve::Outcome::Warm);
  EXPECT_EQ(Second.Plan.get(), First.Plan.get());

  serve::ServerStats St = S.stats();
  EXPECT_EQ(St.Cold, 1u);
  EXPECT_EQ(St.Warm, 1u);
  EXPECT_EQ(St.Errors, 0u);
}

TEST(ServeAdmission, ShedsPastQueueBoundNothingLost) {
  serve::ServerOptions SO;
  SO.MaxQueueDepth = 2;
  SO.NumWorkers = 2;
  SO.StartPaused = true; // queue fills deterministically
  serve::Server S(SO);
  serve::ServeRequest R = fsCscRequest(100, 3);

  std::vector<std::future<serve::ServeResponse>> Futs;
  for (int I = 0; I < 5; ++I)
    Futs.push_back(S.submit(R));
  S.resume();

  unsigned Served = 0, Shed = 0;
  for (auto &F : Futs) {
    ASSERT_TRUE(F.valid());
    serve::ServeResponse Resp = F.get();
    if (Resp.O == serve::Outcome::ShedQueue) {
      ++Shed;
      EXPECT_FALSE(Resp.St.ok()); // refusal is explicit, not a null plan
      EXPECT_EQ(Resp.Plan, nullptr);
    } else {
      ++Served;
      EXPECT_NE(Resp.Plan, nullptr);
    }
  }
  S.drain();
  EXPECT_EQ(Served, 2u);
  EXPECT_EQ(Shed, 3u);
  serve::ServerStats St = S.stats();
  EXPECT_EQ(St.Submitted, 5u);
  EXPECT_EQ(St.Completed + St.ShedQueue + St.ShedDeadline, St.Submitted);
}

TEST(ServeAdmission, ExpiredDeadlineIsShedAtDequeue) {
  serve::ServerOptions SO;
  SO.NumWorkers = 1;
  SO.StartPaused = true;
  serve::Server S(SO);
  serve::ServeRequest R = fsCscRequest(100, 3);
  R.DeadlineMs = 1; // will be long gone by the time a worker looks

  std::future<serve::ServeResponse> Fut = S.submit(R);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  S.resume();
  serve::ServeResponse Resp = Fut.get();
  EXPECT_EQ(Resp.O, serve::Outcome::ShedDeadline);
  EXPECT_FALSE(Resp.St.ok());
  EXPECT_EQ(S.stats().ShedDeadline, 1u);
}

TEST(ServeSingleflight, ThunderingHerdCostsOneCompile) {
  serve::ServerOptions SO;
  SO.NumWorkers = 4;
  SO.MaxQueueDepth = 16;
  SO.StartPaused = true;
  serve::Server S(SO);
  serve::ServeRequest R = fsCscRequest(140, 11);

  std::vector<std::future<serve::ServeResponse>> Futs;
  for (int I = 0; I < 6; ++I)
    Futs.push_back(S.submit(R));
  S.resume();
  for (auto &F : Futs) {
    serve::ServeResponse Resp = F.get();
    ASSERT_TRUE(Resp.St.ok()) << Resp.St.str();
    ASSERT_NE(Resp.Plan, nullptr);
  }
  S.drain();

  // Exactly one cold fill; everyone else rode it (Coalesced while it was
  // in flight, Warm if they dequeued after it landed).
  serve::ServerStats St = S.stats();
  EXPECT_EQ(St.Cold, 1u);
  EXPECT_EQ(St.Warm + St.Coalesced, 5u);
  EXPECT_EQ(St.Completed, 6u);
}

TEST(ServeDegrade, ExpiredBudgetServesBaselineAndCachesNothing) {
  serve::Server S{serve::ServerOptions{}};
  serve::ServeRequest R = fsCscRequest(120, 7);
  serve::ServeRequest Budgeted = R;
  Budgeted.AnalysisBudgetMs = 0.0005; // expired at the first deadline check

  serve::ServeResponse D = S.handle(Budgeted);
  ASSERT_TRUE(D.St.ok()) << D.St.str();
  EXPECT_EQ(D.O, serve::Outcome::Degraded);
  EXPECT_TRUE(D.Degraded);
  ASSERT_NE(D.Plan, nullptr);
  EXPECT_TRUE(certifySchedule(D.Plan->Inspection.Graph, D.Plan->Schedule));

  // The timing-dependent partial analysis was not cached: the next
  // unbudgeted request recompiles cold rather than inheriting it.
  serve::ServeResponse C = S.handle(R);
  EXPECT_EQ(C.O, serve::Outcome::Cold);
  EXPECT_FALSE(C.Degraded);
  serve::ServerStats St = S.stats();
  EXPECT_EQ(St.Degraded, 1u);
  EXPECT_EQ(St.Cold, 1u);
}

TEST(ServeShutdown, QueuedRequestsFailExplicitlyNotSilently) {
  serve::ServeRequest R = fsCscRequest(100, 3);
  std::vector<std::future<serve::ServeResponse>> Futs;
  {
    serve::ServerOptions SO;
    SO.StartPaused = true; // nothing dequeues before the destructor runs
    serve::Server S(SO);
    for (int I = 0; I < 3; ++I)
      Futs.push_back(S.submit(R));
  } // destructor: stop admissions, fail the queue, join workers
  for (auto &F : Futs) {
    ASSERT_TRUE(F.valid()); // the promise was kept, not dropped
    serve::ServeResponse Resp = F.get();
    EXPECT_EQ(Resp.O, serve::Outcome::ShedQueue);
    EXPECT_FALSE(Resp.St.ok());
    EXPECT_EQ(Resp.Plan, nullptr);
  }
}

TEST(ServeStore, WarmRestartZeroQueriesBitIdenticalPlan) {
  std::string Root = freshRoot("sds_serve_restart");
  serve::ServeRequest R = fsCscRequest(120, 7);

  std::shared_ptr<const engine::MatrixPlan> ColdPlan;
  {
    serve::ServerOptions SO;
    SO.StoreRoot = Root;
    serve::Server S(SO);
    serve::ServeResponse Resp = S.handle(R);
    ASSERT_TRUE(Resp.St.ok()) << Resp.St.str();
    EXPECT_EQ(Resp.O, serve::Outcome::Cold);
    ColdPlan = Resp.Plan;
    ASSERT_NE(S.persistentStore(), nullptr);
    EXPECT_GE(S.persistentStore()->stats().Puts, 1u);
  }

  presburger::clearQueryCache();
  serve::ServerOptions SO;
  SO.StoreRoot = Root;
  serve::Server S(SO); // the "restarted process"
  serve::ServeResponse Warm = S.handle(R);
  ASSERT_TRUE(Warm.St.ok()) << Warm.St.str();
  EXPECT_EQ(Warm.O, serve::Outcome::StoreWarm);

  // The PR 5 contract across processes: decode, never re-derive.
  presburger::QueryCacheStats QC = presburger::queryCacheStats();
  EXPECT_EQ(QC.Hits + QC.Misses, 0u);
  ASSERT_NE(Warm.Plan, nullptr);
  EXPECT_TRUE(sameGraph(Warm.Plan->Inspection.Graph,
                        ColdPlan->Inspection.Graph, R.N));
  EXPECT_EQ(Warm.Plan->Schedule.Waves.Waves, ColdPlan->Schedule.Waves.Waves);
  std::filesystem::remove_all(Root);
}

TEST(ServeBatch, BatchAmortizesTheKernelTier) {
  serve::ServerOptions SO;
  SO.NumWorkers = 4;
  SO.MaxQueueDepth = 16;
  SO.StartPaused = true; // all items dequeue together on resume
  serve::Server S(SO);

  // One kernel, four *distinct* matrices: four distinct plan keys, so the
  // plan-level singleflight cannot help — only the kernel-level one can.
  std::vector<serve::BatchItem> Items;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    serve::ServeRequest R = fsCscRequest(100, Seed);
    Items.push_back({std::move(R.Env), R.N});
  }
  std::vector<std::future<serve::ServeResponse>> Futs =
      S.submitBatch(kernels::forwardSolveCSC(), std::move(Items));
  ASSERT_EQ(Futs.size(), 4u);
  S.resume();
  for (auto &F : Futs) {
    serve::ServeResponse Resp = F.get();
    ASSERT_TRUE(Resp.St.ok()) << Resp.St.str();
    EXPECT_EQ(Resp.O, serve::Outcome::Cold);
    ASSERT_NE(Resp.Plan, nullptr);
  }
  S.drain();

  serve::ServerStats St = S.stats();
  EXPECT_EQ(St.Batches, 1u);
  EXPECT_EQ(St.BatchItems, 4u);
  EXPECT_EQ(St.Submitted, 4u);
  EXPECT_EQ(St.Completed, 4u);
  EXPECT_EQ(St.Cold, 4u);
  // The whole point of the batch path: four cold items of one kernel pay
  // for ONE analysis (installed into the engine, hence KernelLoaded).
  // Items that raced the leader waited on the kernel flight
  // (KernelCoalesced); items that arrived after it landed hit the
  // engine's kernel cache. Either way, exactly one compile.
  EXPECT_EQ(S.engine().stats().KernelLoaded, 1u);
  EXPECT_EQ(S.engine().stats().KernelCold, 0u);
  EXPECT_LE(St.KernelCoalesced, 3u);
}

TEST(ServeBatch, BatchItemsShedPastQueueBoundNothingLost) {
  serve::ServerOptions SO;
  SO.MaxQueueDepth = 2;
  SO.NumWorkers = 1;
  SO.StartPaused = true;
  serve::Server S(SO);

  std::vector<serve::BatchItem> Items;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    serve::ServeRequest R = fsCscRequest(90, Seed);
    Items.push_back({std::move(R.Env), R.N});
  }
  std::vector<std::future<serve::ServeResponse>> Futs =
      S.submitBatch(kernels::forwardSolveCSC(), std::move(Items));
  S.resume();

  unsigned Served = 0, Shed = 0;
  for (auto &F : Futs) {
    ASSERT_TRUE(F.valid()); // per-item future even when shed
    serve::ServeResponse Resp = F.get();
    if (Resp.O == serve::Outcome::ShedQueue) {
      ++Shed;
      EXPECT_FALSE(Resp.St.ok());
      EXPECT_EQ(Resp.Plan, nullptr);
    } else {
      ++Served;
      EXPECT_NE(Resp.Plan, nullptr);
    }
  }
  S.drain();
  EXPECT_EQ(Served, 2u);
  EXPECT_EQ(Shed, 3u);
  serve::ServerStats St = S.stats();
  EXPECT_EQ(St.Batches, 1u);
  EXPECT_EQ(St.BatchItems, 5u);
  EXPECT_EQ(St.Submitted, 5u);
  EXPECT_EQ(St.Completed + St.ShedQueue + St.ShedDeadline, St.Submitted);
}

TEST(ServeSpeculate, SpeculatedRequestsKeyAndCountSeparately) {
  serve::Server S{serve::ServerOptions{}};
  serve::ServeRequest R = fsCscRequest(120, 7);
  R.Speculate = true;

  serve::ServeResponse First = S.handle(R);
  ASSERT_TRUE(First.St.ok()) << First.St.str();
  EXPECT_EQ(First.O, serve::Outcome::Cold);
  ASSERT_NE(First.Plan, nullptr);
  EXPECT_EQ(S.stats().Speculated, 1u);
  EXPECT_EQ(S.engine().stats().KernelSpeculated, 1u);

  serve::ServeResponse Second = S.handle(R);
  EXPECT_EQ(Second.O, serve::Outcome::Warm);
  EXPECT_EQ(Second.Plan.get(), First.Plan.get());
  EXPECT_EQ(S.stats().Speculated, 2u);

  // The same request without speculation is a different plan entirely —
  // declared-only and speculated tiers never alias.
  R.Speculate = false;
  serve::ServeResponse Decl = S.handle(R);
  ASSERT_TRUE(Decl.St.ok()) << Decl.St.str();
  EXPECT_EQ(Decl.O, serve::Outcome::Cold);
  EXPECT_NE(Decl.Plan.get(), First.Plan.get());
  EXPECT_EQ(S.stats().Speculated, 2u); // unchanged
}

TEST(ServeSpeculate, SpeculatedBatchCountsEveryItem) {
  serve::ServerOptions SO;
  SO.NumWorkers = 2;
  serve::Server S(SO);

  std::vector<serve::BatchItem> Items;
  for (uint64_t Seed = 1; Seed <= 2; ++Seed) {
    serve::ServeRequest R = fsCscRequest(90, Seed);
    Items.push_back({std::move(R.Env), R.N});
  }
  std::vector<std::future<serve::ServeResponse>> Futs = S.submitBatch(
      kernels::forwardSolveCSC(), std::move(Items), /*DeadlineMs=*/0,
      /*Speculate=*/true);
  for (auto &F : Futs) {
    serve::ServeResponse Resp = F.get();
    ASSERT_TRUE(Resp.St.ok()) << Resp.St.str();
    ASSERT_NE(Resp.Plan, nullptr);
  }
  S.drain();
  serve::ServerStats St = S.stats();
  EXPECT_EQ(St.Speculated, 2u);
  EXPECT_EQ(St.BatchItems, 2u);
  EXPECT_GE(S.engine().stats().KernelSpeculated, 1u);
}
