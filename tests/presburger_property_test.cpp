//===- presburger_property_test.cpp - Randomized integer-set checks --------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// Deeper randomized cross-validation of the Presburger layer against
// brute-force enumeration: implicit-equality detection, multi-variable
// projection, sampling, and union subset tests.
//
//===----------------------------------------------------------------------===//

#include "sds/presburger/BasicSet.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace sds::presburger;

namespace {

std::vector<std::vector<int64_t>> enumerateBox(const BasicSet &S,
                                               int64_t Bound) {
  std::vector<std::vector<int64_t>> Points;
  unsigned N = S.numVars();
  std::vector<int64_t> P(N, -Bound);
  while (true) {
    bool Ok = true;
    for (const auto &Row : S.equalities()) {
      int64_t V = Row[N];
      for (unsigned J = 0; J < N; ++J)
        V += Row[J] * P[J];
      if (V != 0) {
        Ok = false;
        break;
      }
    }
    for (const auto &Row : S.inequalities()) {
      if (!Ok)
        break;
      int64_t V = Row[N];
      for (unsigned J = 0; J < N; ++J)
        V += Row[J] * P[J];
      if (V < 0)
        Ok = false;
    }
    if (Ok)
      Points.push_back(P);
    unsigned J = 0;
    for (; J < N; ++J) {
      if (P[J] < Bound) {
        ++P[J];
        break;
      }
      P[J] = -Bound;
    }
    if (J == N)
      break;
  }
  return Points;
}

BasicSet randomBoxedSet(std::mt19937 &Rng, unsigned NumVars, int64_t Bound,
                        int ExtraRows) {
  BasicSet S(NumVars);
  for (unsigned J = 0; J < NumVars; ++J) {
    std::vector<int64_t> Lo(NumVars + 1, 0), Hi(NumVars + 1, 0);
    Lo[J] = 1;
    Lo[NumVars] = Bound;
    Hi[J] = -1;
    Hi[NumVars] = Bound;
    S.addInequality(Lo);
    S.addInequality(Hi);
  }
  std::uniform_int_distribution<int> Coef(-2, 2);
  std::uniform_int_distribution<int> Cst(-2, 2);
  for (int R = 0; R < ExtraRows; ++R) {
    std::vector<int64_t> Row(NumVars + 1);
    for (unsigned J = 0; J < NumVars; ++J)
      Row[J] = Coef(Rng);
    Row[NumVars] = Cst(Rng);
    if (Coef(Rng) > 1)
      S.addEquality(Row);
    else
      S.addInequality(Row);
  }
  return S;
}

} // namespace

class PresburgerRandom : public ::testing::TestWithParam<int> {};

TEST_P(PresburgerRandom, ImplicitEqualitiesAreRealEqualities) {
  std::mt19937 Rng(static_cast<unsigned>(GetParam()) + 500);
  BasicSet S = randomBoxedSet(Rng, 3, 2, 3);
  auto Points = enumerateBox(S, 2);
  BasicSet T = S;
  T.detectImplicitEqualities(/*NodeBudget=*/256);
  // Every promoted equality must hold at every true point.
  for (const auto &Row : T.equalities()) {
    for (const auto &P : Points) {
      int64_t V = Row[3];
      for (unsigned J = 0; J < 3; ++J)
        V += Row[J] * P[J];
      EXPECT_EQ(V, 0) << S.str();
    }
  }
  // And the point set must be unchanged.
  EXPECT_EQ(enumerateBox(T, 2), Points) << S.str();
}

TEST_P(PresburgerRandom, TwoVariableProjectionIsSound) {
  std::mt19937 Rng(static_cast<unsigned>(GetParam()) + 900);
  BasicSet S = randomBoxedSet(Rng, 4, 2, 2);
  ProjectResult R = S.projectOut({1, 3});
  ASSERT_EQ(R.Set.numVars(), 2u);
  std::set<std::pair<int64_t, int64_t>> True2D;
  for (const auto &P : enumerateBox(S, 2))
    True2D.insert({P[0], P[2]});
  for (const auto &[X, Y] : True2D) {
    for (const auto &Row : R.Set.equalities())
      EXPECT_EQ(Row[0] * X + Row[1] * Y + Row[2], 0) << S.str();
    for (const auto &Row : R.Set.inequalities())
      EXPECT_GE(Row[0] * X + Row[1] * Y + Row[2], 0) << S.str();
  }
}

TEST_P(PresburgerRandom, SampledPointsSatisfyTheSet) {
  std::mt19937 Rng(static_cast<unsigned>(GetParam()) + 1300);
  BasicSet S = randomBoxedSet(Rng, 3, 3, 2);
  auto P = S.sampleIntegerPoint(/*NodeBudget=*/256);
  auto Points = enumerateBox(S, 3);
  if (!P.has_value()) {
    EXPECT_TRUE(Points.empty()) << S.str();
    return;
  }
  for (const auto &Row : S.equalities()) {
    int64_t V = Row[3];
    for (unsigned J = 0; J < 3; ++J)
      V += Row[J] * (*P)[J];
    EXPECT_EQ(V, 0) << S.str();
  }
  for (const auto &Row : S.inequalities()) {
    int64_t V = Row[3];
    for (unsigned J = 0; J < 3; ++J)
      V += Row[J] * (*P)[J];
    EXPECT_GE(V, 0) << S.str();
  }
}

TEST_P(PresburgerRandom, SubstituteEquivalentToConstraining) {
  // S with y := x + c must equal { (x) : S(x, x + c) }.
  std::mt19937 Rng(static_cast<unsigned>(GetParam()) + 1700);
  BasicSet S = randomBoxedSet(Rng, 2, 3, 2);
  int64_t C = static_cast<int64_t>(GetParam() % 3) - 1;
  // Substitute var 1 := var 0 + C.
  std::vector<int64_t> Expr = {1, 0, C};
  BasicSet T = S.substitute(1, Expr);
  std::set<int64_t> FromSub;
  for (const auto &P : enumerateBox(T, 3))
    FromSub.insert(P[0]);
  std::set<int64_t> FromConstrain;
  for (const auto &P : enumerateBox(S, 4))
    if (P[1] == P[0] + C && P[0] >= -3 && P[0] <= 3)
      FromConstrain.insert(P[0]);
  EXPECT_EQ(FromSub, FromConstrain) << S.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresburgerRandom, ::testing::Range(0, 30));

TEST(SetUnion, PairwiseSubsetOfCover) {
  // [0,2] u [2,5] covers [1,4]? Conservative test needs one piece to
  // contain it; expect Unknown here but True for [3,5].
  BasicSet A(1), B(1), Mid(1), Inside(1);
  A.addInequality({1, 0});
  A.addInequality({-1, 2});
  B.addInequality({1, -2});
  B.addInequality({-1, 5});
  Mid.addInequality({1, -1});
  Mid.addInequality({-1, 4});
  Inside.addInequality({1, -3});
  Inside.addInequality({-1, 5});
  SetUnion U;
  U.add(A);
  U.add(B);
  EXPECT_EQ(SetUnion(Inside).isSubsetOf(U), Ternary::True);
  EXPECT_EQ(SetUnion(Mid).isSubsetOf(U), Ternary::Unknown);
}

TEST(BasicSetEdge, WidthZeroSets) {
  BasicSet S(0);
  EXPECT_EQ(S.isEmpty(), Ternary::False); // the empty tuple satisfies it
  S.addInequality({-1});                  // -1 >= 0
  EXPECT_EQ(S.isEmpty(), Ternary::True);
}

TEST(BasicSetEdge, LargeCoefficientsNormalize) {
  BasicSet S(1);
  S.addInequality({1000000, -3000000}); // 1e6 x >= 3e6  =>  x >= 3
  ASSERT_TRUE(S.normalize());
  EXPECT_EQ(S.inequalities()[0], (std::vector<int64_t>{1, -3}));
}

//===----------------------------------------------------------------------===//
// Prefilter ladder differential tests
//===----------------------------------------------------------------------===//
//
// The emptiness prefilters (GCD row rejection, conflicting equalities,
// interval propagation) may only ever strengthen Unknown into a *proven*
// True; a single over-eager rejection would silently drop a real
// dependence. Cross-validate ~1k random systems three ways: prefilter
// verdict vs the full solver vs brute-force box enumeration.

namespace {

BasicSet randomMixedSet(std::mt19937 &Rng, unsigned NumVars) {
  // Wider generation than randomBoxedSet: scaled rows (GCD fodder),
  // duplicate-lhs equalities (conflict fodder), and plain random rows
  // whose single-variable bounds often cross (interval fodder).
  std::uniform_int_distribution<int> Coef(-3, 3);
  std::uniform_int_distribution<int> Cst(-6, 6);
  std::uniform_int_distribution<int> Scale(1, 3);
  std::uniform_int_distribution<int> NumRows(2, 6);
  std::uniform_int_distribution<int> Kind(0, 5);
  BasicSet S(NumVars);
  int Rows = NumRows(Rng);
  std::vector<int64_t> Prev;
  for (int R = 0; R < Rows; ++R) {
    std::vector<int64_t> Row(NumVars + 1);
    for (unsigned J = 0; J <= NumVars; ++J)
      Row[J] = Coef(Rng);
    Row[NumVars] = Cst(Rng);
    int K = Kind(Rng);
    if (K == 0) {
      // Scaled copy with an off-lattice constant: GCD-infeasible iff the
      // variable part is nonzero and the constant misses the lattice.
      int64_t M = Scale(Rng) + 1;
      for (unsigned J = 0; J < NumVars; ++J)
        Row[J] *= M;
      S.addEquality(Row);
    } else if (K == 1 && !Prev.empty()) {
      // Same variable part as an earlier equality, different constant.
      std::vector<int64_t> Dup = Prev;
      Dup[NumVars] = Cst(Rng);
      S.addEquality(Dup);
    } else if (K == 2) {
      S.addEquality(Row);
      Prev = Row;
    } else {
      S.addInequality(Row);
    }
  }
  return S;
}

} // namespace

TEST(Prefilter, NeverReturnsFalse) {
  std::mt19937 Rng(97);
  for (int Trial = 0; Trial < 200; ++Trial) {
    BasicSet S = randomMixedSet(Rng, 3);
    EXPECT_NE(prefilterEmptiness(S), Ternary::False);
  }
}

TEST(Prefilter, RejectionsAgreeWithFullSolver) {
  // ~1k systems: whenever the ladder says True (proven empty), the full
  // Simplex/branch-and-bound pipeline must agree.
  std::mt19937 Rng(1234);
  unsigned Rejected = 0;
  for (int Trial = 0; Trial < 1000; ++Trial) {
    BasicSet S = randomMixedSet(Rng, 3);
    Ternary PF = prefilterEmptiness(S);
    if (PF != Ternary::True)
      continue;
    ++Rejected;
    clearQueryCache(); // force a fresh full solve
    EXPECT_EQ(S.isEmpty(/*NodeBudget=*/256), Ternary::True)
        << "prefilter wrongly rejected " << S.str();
  }
  // The generator is tuned so a meaningful share actually exercises the
  // ladder; if this drops to ~0 the test is vacuously green.
  EXPECT_GE(Rejected, 50u);
}

TEST(Prefilter, RejectionsAgreeWithBruteForce) {
  // Bounded sets: a prefilter-True system must contain no lattice point
  // in the enumeration box (which covers the whole set, being boxed).
  std::mt19937 Rng(5678);
  for (int Trial = 0; Trial < 300; ++Trial) {
    BasicSet S = randomBoxedSet(Rng, 3, 2, 4);
    if (prefilterEmptiness(S) != Ternary::True)
      continue;
    EXPECT_TRUE(enumerateBox(S, 2).empty())
        << "prefilter wrongly rejected " << S.str();
  }
}

TEST(Prefilter, CountersAttributeRejections) {
  clearQueryCache();
  PrefilterStats Z = prefilterStats();
  EXPECT_EQ(Z.rejects(), 0u);
  // GCD: 2x == 1 has no integer solution.
  BasicSet G(1);
  G.addEquality({2, -1});
  EXPECT_EQ(G.isEmpty(), Ternary::True);
  // Equality conflict: x == 1 and x == 2.
  BasicSet E(1);
  E.addEquality({1, -1});
  E.addEquality({1, -2});
  EXPECT_EQ(E.isEmpty(), Ternary::True);
  // Interval conflict: x >= 3 and x <= 1.
  BasicSet I(1);
  I.addInequality({1, -3});
  I.addInequality({-1, 1});
  EXPECT_EQ(I.isEmpty(), Ternary::True);
  PrefilterStats St = prefilterStats();
  EXPECT_GE(St.GcdRejects, 1u);
  EXPECT_GE(St.EqConflictRejects + St.IntervalRejects, 2u);
  EXPECT_EQ(St.rejects(), 3u);
  clearQueryCache();
  EXPECT_EQ(prefilterStats().rejects(), 0u);
}
