//===- presburger_property_test.cpp - Randomized integer-set checks --------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// Deeper randomized cross-validation of the Presburger layer against
// brute-force enumeration: implicit-equality detection, multi-variable
// projection, sampling, and union subset tests.
//
//===----------------------------------------------------------------------===//

#include "sds/presburger/BasicSet.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace sds::presburger;

namespace {

std::vector<std::vector<int64_t>> enumerateBox(const BasicSet &S,
                                               int64_t Bound) {
  std::vector<std::vector<int64_t>> Points;
  unsigned N = S.numVars();
  std::vector<int64_t> P(N, -Bound);
  while (true) {
    bool Ok = true;
    for (const auto &Row : S.equalities()) {
      int64_t V = Row[N];
      for (unsigned J = 0; J < N; ++J)
        V += Row[J] * P[J];
      if (V != 0) {
        Ok = false;
        break;
      }
    }
    for (const auto &Row : S.inequalities()) {
      if (!Ok)
        break;
      int64_t V = Row[N];
      for (unsigned J = 0; J < N; ++J)
        V += Row[J] * P[J];
      if (V < 0)
        Ok = false;
    }
    if (Ok)
      Points.push_back(P);
    unsigned J = 0;
    for (; J < N; ++J) {
      if (P[J] < Bound) {
        ++P[J];
        break;
      }
      P[J] = -Bound;
    }
    if (J == N)
      break;
  }
  return Points;
}

BasicSet randomBoxedSet(std::mt19937 &Rng, unsigned NumVars, int64_t Bound,
                        int ExtraRows) {
  BasicSet S(NumVars);
  for (unsigned J = 0; J < NumVars; ++J) {
    std::vector<int64_t> Lo(NumVars + 1, 0), Hi(NumVars + 1, 0);
    Lo[J] = 1;
    Lo[NumVars] = Bound;
    Hi[J] = -1;
    Hi[NumVars] = Bound;
    S.addInequality(Lo);
    S.addInequality(Hi);
  }
  std::uniform_int_distribution<int> Coef(-2, 2);
  std::uniform_int_distribution<int> Cst(-2, 2);
  for (int R = 0; R < ExtraRows; ++R) {
    std::vector<int64_t> Row(NumVars + 1);
    for (unsigned J = 0; J < NumVars; ++J)
      Row[J] = Coef(Rng);
    Row[NumVars] = Cst(Rng);
    if (Coef(Rng) > 1)
      S.addEquality(Row);
    else
      S.addInequality(Row);
  }
  return S;
}

} // namespace

class PresburgerRandom : public ::testing::TestWithParam<int> {};

TEST_P(PresburgerRandom, ImplicitEqualitiesAreRealEqualities) {
  std::mt19937 Rng(static_cast<unsigned>(GetParam()) + 500);
  BasicSet S = randomBoxedSet(Rng, 3, 2, 3);
  auto Points = enumerateBox(S, 2);
  BasicSet T = S;
  T.detectImplicitEqualities(/*NodeBudget=*/256);
  // Every promoted equality must hold at every true point.
  for (const auto &Row : T.equalities()) {
    for (const auto &P : Points) {
      int64_t V = Row[3];
      for (unsigned J = 0; J < 3; ++J)
        V += Row[J] * P[J];
      EXPECT_EQ(V, 0) << S.str();
    }
  }
  // And the point set must be unchanged.
  EXPECT_EQ(enumerateBox(T, 2), Points) << S.str();
}

TEST_P(PresburgerRandom, TwoVariableProjectionIsSound) {
  std::mt19937 Rng(static_cast<unsigned>(GetParam()) + 900);
  BasicSet S = randomBoxedSet(Rng, 4, 2, 2);
  ProjectResult R = S.projectOut({1, 3});
  ASSERT_EQ(R.Set.numVars(), 2u);
  std::set<std::pair<int64_t, int64_t>> True2D;
  for (const auto &P : enumerateBox(S, 2))
    True2D.insert({P[0], P[2]});
  for (const auto &[X, Y] : True2D) {
    for (const auto &Row : R.Set.equalities())
      EXPECT_EQ(Row[0] * X + Row[1] * Y + Row[2], 0) << S.str();
    for (const auto &Row : R.Set.inequalities())
      EXPECT_GE(Row[0] * X + Row[1] * Y + Row[2], 0) << S.str();
  }
}

TEST_P(PresburgerRandom, SampledPointsSatisfyTheSet) {
  std::mt19937 Rng(static_cast<unsigned>(GetParam()) + 1300);
  BasicSet S = randomBoxedSet(Rng, 3, 3, 2);
  auto P = S.sampleIntegerPoint(/*NodeBudget=*/256);
  auto Points = enumerateBox(S, 3);
  if (!P.has_value()) {
    EXPECT_TRUE(Points.empty()) << S.str();
    return;
  }
  for (const auto &Row : S.equalities()) {
    int64_t V = Row[3];
    for (unsigned J = 0; J < 3; ++J)
      V += Row[J] * (*P)[J];
    EXPECT_EQ(V, 0) << S.str();
  }
  for (const auto &Row : S.inequalities()) {
    int64_t V = Row[3];
    for (unsigned J = 0; J < 3; ++J)
      V += Row[J] * (*P)[J];
    EXPECT_GE(V, 0) << S.str();
  }
}

TEST_P(PresburgerRandom, SubstituteEquivalentToConstraining) {
  // S with y := x + c must equal { (x) : S(x, x + c) }.
  std::mt19937 Rng(static_cast<unsigned>(GetParam()) + 1700);
  BasicSet S = randomBoxedSet(Rng, 2, 3, 2);
  int64_t C = static_cast<int64_t>(GetParam() % 3) - 1;
  // Substitute var 1 := var 0 + C.
  std::vector<int64_t> Expr = {1, 0, C};
  BasicSet T = S.substitute(1, Expr);
  std::set<int64_t> FromSub;
  for (const auto &P : enumerateBox(T, 3))
    FromSub.insert(P[0]);
  std::set<int64_t> FromConstrain;
  for (const auto &P : enumerateBox(S, 4))
    if (P[1] == P[0] + C && P[0] >= -3 && P[0] <= 3)
      FromConstrain.insert(P[0]);
  EXPECT_EQ(FromSub, FromConstrain) << S.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresburgerRandom, ::testing::Range(0, 30));

TEST(SetUnion, PairwiseSubsetOfCover) {
  // [0,2] u [2,5] covers [1,4]? Conservative test needs one piece to
  // contain it; expect Unknown here but True for [3,5].
  BasicSet A(1), B(1), Mid(1), Inside(1);
  A.addInequality({1, 0});
  A.addInequality({-1, 2});
  B.addInequality({1, -2});
  B.addInequality({-1, 5});
  Mid.addInequality({1, -1});
  Mid.addInequality({-1, 4});
  Inside.addInequality({1, -3});
  Inside.addInequality({-1, 5});
  SetUnion U;
  U.add(A);
  U.add(B);
  EXPECT_EQ(SetUnion(Inside).isSubsetOf(U), Ternary::True);
  EXPECT_EQ(SetUnion(Mid).isSubsetOf(U), Ternary::Unknown);
}

TEST(BasicSetEdge, WidthZeroSets) {
  BasicSet S(0);
  EXPECT_EQ(S.isEmpty(), Ternary::False); // the empty tuple satisfies it
  S.addInequality({-1});                  // -1 >= 0
  EXPECT_EQ(S.isEmpty(), Ternary::True);
}

TEST(BasicSetEdge, LargeCoefficientsNormalize) {
  BasicSet S(1);
  S.addInequality({1000000, -3000000}); // 1e6 x >= 3e6  =>  x >= 3
  ASSERT_TRUE(S.normalize());
  EXPECT_EQ(S.inequalities()[0], (std::vector<int64_t>{1, -3}));
}
