//===- support_fraction_test.cpp - Exact rational arithmetic tests -------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/support/Fraction.h"
#include "sds/support/MathExtras.h"

#include <gtest/gtest.h>

using namespace sds;

TEST(MathExtras, Gcd64) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(5, 0), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(7, 13), 1);
}

TEST(MathExtras, FloorCeilDiv) {
  EXPECT_EQ(floorDiv64(7, 2), 3);
  EXPECT_EQ(floorDiv64(-7, 2), -4);
  EXPECT_EQ(floorDiv64(7, -2), -4);
  EXPECT_EQ(floorDiv64(-7, -2), 3);
  EXPECT_EQ(ceilDiv64(7, 2), 4);
  EXPECT_EQ(ceilDiv64(-7, 2), -3);
  EXPECT_EQ(ceilDiv64(7, -2), -3);
  EXPECT_EQ(ceilDiv64(-7, -2), 4);
  EXPECT_EQ(floorDiv64(6, 3), 2);
  EXPECT_EQ(ceilDiv64(6, 3), 2);
}

TEST(MathExtras, Int128ToString) {
  EXPECT_EQ(toString(Int128(0)), "0");
  EXPECT_EQ(toString(Int128(42)), "42");
  EXPECT_EQ(toString(Int128(-42)), "-42");
  Int128 Big = Int128(1) << 100;
  EXPECT_EQ(toString(Big), "1267650600228229401496703205376");
}

TEST(Fraction, Canonicalization) {
  Fraction F(6, 4);
  EXPECT_EQ(toString(F.num()), "3");
  EXPECT_EQ(toString(F.den()), "2");
  Fraction G(6, -4);
  EXPECT_EQ(toString(G.num()), "-3");
  EXPECT_EQ(toString(G.den()), "2");
  EXPECT_EQ(Fraction(0, 7).str(), "0");
}

TEST(Fraction, Arithmetic) {
  Fraction Half(1, 2), Third(1, 3);
  EXPECT_EQ((Half + Third).str(), "5/6");
  EXPECT_EQ((Half - Third).str(), "1/6");
  EXPECT_EQ((Half * Third).str(), "1/6");
  EXPECT_EQ((Half / Third).str(), "3/2");
  EXPECT_EQ((-Half).str(), "-1/2");
  EXPECT_TRUE((Half - Half).isZero());
}

TEST(Fraction, Comparison) {
  EXPECT_LT(Fraction(1, 3), Fraction(1, 2));
  EXPECT_GT(Fraction(-1, 3), Fraction(-1, 2));
  EXPECT_EQ(Fraction(2, 4), Fraction(1, 2));
  EXPECT_LE(Fraction(5), Fraction(5));
  EXPECT_LT(Fraction(-7, 3), Fraction(0));
}

TEST(Fraction, ComparisonHugeCrossProducts) {
  // Cross products overflow 128 bits; the continued-fraction fallback
  // must still order these correctly.
  Int128 Big = (Int128(1) << 100) + 1;
  Fraction A(Big, (Int128(1) << 100));       // slightly above 1
  Fraction B((Int128(1) << 100), Big);       // slightly below 1
  EXPECT_GT(A, B);
  EXPECT_LT(B, A);
  EXPECT_EQ(A.compare(A), 0);
}

TEST(Fraction, FloorCeil) {
  EXPECT_EQ(toString(Fraction(7, 2).floor()), "3");
  EXPECT_EQ(toString(Fraction(7, 2).ceil()), "4");
  EXPECT_EQ(toString(Fraction(-7, 2).floor()), "-4");
  EXPECT_EQ(toString(Fraction(-7, 2).ceil()), "-3");
  EXPECT_EQ(toString(Fraction(4).floor()), "4");
  EXPECT_EQ(toString(Fraction(4).ceil()), "4");
}

TEST(Fraction, IntegralityAndOverflowFlag) {
  EXPECT_TRUE(Fraction(8, 2).isIntegral());
  EXPECT_FALSE(Fraction(7, 2).isIntegral());
  Fraction Ovf = Fraction::makeOverflowed();
  EXPECT_TRUE(Ovf.overflowed());
  EXPECT_TRUE((Ovf + Fraction(1)).overflowed());
  EXPECT_TRUE((Fraction(1) * Ovf).overflowed());
}

TEST(Fraction, OverflowDetectedInMultiply) {
  Int128 Big = Int128(1) << 126;
  Fraction A(Big, 1), B(Big, 1);
  EXPECT_TRUE((A * B).overflowed());
  // But reduced multiplies stay exact.
  Fraction C(Big, Big);
  EXPECT_EQ((C * C).str(), "1");
}

TEST(Fraction, DivisionByZeroIsOverflow) {
  EXPECT_TRUE((Fraction(1) / Fraction(0)).overflowed());
}
