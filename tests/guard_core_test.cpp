//===- guard_core_test.cpp - Core-directed validation differential tests --===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The trust-base contract of per-dependence unsat cores, differentially
// against full validation across the fault-injection corruption classes:
//
//   * on the checks both validations run (the cited bases), the verdicts
//     are bit-identical — core-directed validation never reinterprets a
//     check, it only drops uncited ones;
//   * core-directed validation rejects exactly when full validation
//     rejects on a *cited* base;
//   * every divergence (full rejects, core-directed accepts) is an
//     uncited corruption, and is safe: the simplified schedule still
//     respects the baseline dependence graph on the corrupted arrays.
//
// Plus the provenance invariants the guard relies on: every analyzed
// dependence of every (light) paper kernel carries a core, eliminated
// dependences cite only declared assertion bases, and PropertyCheck::Base
// round-trips through propertyLabelBase.
//
//===----------------------------------------------------------------------===//

#include "sds/guard/FaultInjection.h"
#include "sds/guard/Guarded.h"

#include <gtest/gtest.h>

#include <map>

using namespace sds;
using namespace sds::guard;

namespace {

struct Fixture {
  rt::CSRMatrix Lower;
  kernels::Kernel K;
  deps::PipelineResult Analysis;
  codegen::UFEnvironment Env;
  std::set<std::string> Cited;
  bool AllHaveCores = false;

  Fixture()
      : Lower(rt::lowerTriangle(rt::generateSPDLike({72, 5, 11, 3}))),
        K(kernels::forwardSolveCSR()), Analysis(deps::analyzeKernel(K)),
        Env(driver::bindCSR(Lower)) {
    Cited = citedAssertionBases(Analysis.Deps, &AllHaveCores);
  }
};

const Fixture &fx() {
  static Fixture F;
  return F;
}

/// Map of base -> outcome for one report. Bases are unique per report
/// because each declaration is checked at most once.
std::map<std::string, CheckOutcome>
outcomesByBase(const ValidationReport &R) {
  std::map<std::string, CheckOutcome> M;
  for (const PropertyCheck &C : R.Checks)
    M.emplace(C.Base, C.Outcome);
  return M;
}

} // namespace

TEST(CoreProvenance, EveryDependenceCarriesACore) {
  const Fixture &F = fx();
  EXPECT_TRUE(F.AllHaveCores);
  for (const deps::AnalyzedDependence &D : F.Analysis.Deps) {
    EXPECT_TRUE(D.HasCore) << D.Dep.label();
    if (D.Status == deps::DepStatus::PropertyUnsat) {
      EXPECT_FALSE(D.Core.Assertions.empty())
          << D.Dep.label() << ": a property-unsat proof must cite something";
    }
  }
}

TEST(CoreProvenance, SuiteWideEveryEliminationCarriesACore) {
  // The acceptance bar for proof-producing refutation: across the whole
  // Table-2 suite, every analyzed dependence records its trust base, and
  // every property-driven elimination cites at least one assertion. The
  // heavy factorizations run with the proof stages off (the
  // artifact_roundtrip_test idiom) — their affine refutations still
  // carry (empty) cores, which is the point: empty is a statement,
  // absent is not.
  deps::PipelineOptions Reduced;
  Reduced.UseProperties = false;
  Reduced.UseEqualities = false;
  Reduced.UseSubsets = false;
  Reduced.Simp.SemanticPhase1 = false;
  Reduced.Simp.InstantiationRounds = 1;
  Reduced.Simp.MaxInstances = 2000;
  Reduced.Simp.MaxPhase2Instances = 2;
  Reduced.Simp.MaxPieces = 16;
  struct Case {
    kernels::Kernel K;
    deps::PipelineOptions Opts;
  };
  const Case Suite[] = {
      {kernels::forwardSolveCSR(), {}},
      {kernels::forwardSolveCSC(), {}},
      {kernels::gaussSeidelCSR(), {}},
      {kernels::spmvCSR(), {}},
      {kernels::leftCholeskyCSC(), {}},
      {kernels::incompleteLU0CSR(), Reduced},
      {kernels::incompleteCholeskyCSC(), Reduced},
  };
  for (const Case &C : Suite) {
    SCOPED_TRACE(C.K.Name);
    deps::PipelineResult R = deps::analyzeKernel(C.K, C.Opts);
    bool AllHaveCores = false;
    std::set<std::string> Cited = citedAssertionBases(R.Deps, &AllHaveCores);
    EXPECT_TRUE(AllHaveCores);
    for (const deps::AnalyzedDependence &D : R.Deps) {
      EXPECT_TRUE(D.HasCore) << D.Dep.label();
      if (D.Status == deps::DepStatus::PropertyUnsat) {
        EXPECT_FALSE(D.Core.Assertions.empty()) << D.Dep.label();
      }
    }
  }
}

TEST(CoreProvenance, CitedBasesAreDeclaredAssertionBases) {
  const Fixture &F = fx();
  std::set<std::string> Declared;
  for (const ir::IndexArrayProperty &P : F.K.Properties.properties())
    Declared.insert(propertyLabelBase(P));
  for (const ir::DomainRangeDecl &D : F.K.Properties.domainRanges())
    Declared.insert(propertyLabelBase(D));
  EXPECT_FALSE(F.Cited.empty());
  for (const std::string &B : F.Cited)
    EXPECT_TRUE(Declared.count(B)) << "core cites undeclared base " << B;
  // The whole point: the trust base is a strict subset of the declaration.
  EXPECT_LT(F.Cited.size(), Declared.size());
}

TEST(CoreProvenance, CheckBaseMatchesPropertyLabelBase) {
  const Fixture &F = fx();
  ValidationReport Full = validateProperties(F.K.Properties, F.Env);
  std::set<std::string> Declared;
  for (const ir::IndexArrayProperty &P : F.K.Properties.properties())
    Declared.insert(propertyLabelBase(P));
  for (const ir::DomainRangeDecl &D : F.K.Properties.domainRanges())
    Declared.insert(propertyLabelBase(D));
  ASSERT_EQ(Full.Checks.size(), Declared.size());
  for (const PropertyCheck &C : Full.Checks)
    EXPECT_TRUE(Declared.count(C.Base))
        << "check base '" << C.Base << "' matches no declaration";
}

TEST(CoreDirectedValidation, RunsExactlyTheCitedChecks) {
  const Fixture &F = fx();
  ValidationReport Sel = validateProperties(F.K.Properties, F.Env, F.Cited);
  std::set<std::string> Ran;
  for (const PropertyCheck &C : Sel.Checks)
    Ran.insert(C.Base);
  EXPECT_EQ(Ran, F.Cited);
}

TEST(CoreDirectedValidation, DifferentialAgainstFullUnderFaultCampaign) {
  const Fixture &F = fx();
  unsigned Divergences = 0, Trials = 0;
  for (const FaultSpec &S : faultCampaign(F.Env, /*SeedsPerPair=*/2)) {
    codegen::UFEnvironment Bad;
    std::string Desc;
    if (!injectFault(F.Env, S, Bad, Desc))
      continue;
    ++Trials;
    SCOPED_TRACE(std::string(faultKindName(S.Kind)) + "(" + S.Array +
                 ", seed=" + std::to_string(S.Seed) + "): " + Desc);

    ValidationReport Full = validateProperties(F.K.Properties, Bad);
    ValidationReport Sel = validateProperties(F.K.Properties, Bad, F.Cited);

    // Bit-identical verdicts on the checks both ran.
    std::map<std::string, CheckOutcome> FullOut = outcomesByBase(Full);
    for (const PropertyCheck &C : Sel.Checks) {
      auto It = FullOut.find(C.Base);
      ASSERT_NE(It, FullOut.end()) << C.Base;
      EXPECT_EQ(C.Outcome, It->second) << C.Base;
    }

    // Core-directed validation rejects exactly when full validation
    // rejects on a cited base.
    bool FullRejectsCited = false;
    for (const PropertyCheck &C : Full.Checks)
      if (C.Outcome != CheckOutcome::Pass && F.Cited.count(C.Base))
        FullRejectsCited = true;
    EXPECT_EQ(!Sel.trusted(), FullRejectsCited);

    // A divergence means full validation caught an uncited corruption.
    // That is the saving, and it must be safe: the simplified schedule
    // still respects the baseline graph over the corrupted arrays.
    if (Sel.trusted() && !Full.trusted()) {
      ++Divergences;
      GuardedOptions GO;
      GO.Mode = GuardMode::Warn;
      GO.Verify = true;
      GO.VerifyMaxN = INT32_MAX;
      GuardedResult G =
          runGuarded(F.Analysis, F.K.Properties, Bad, F.Lower.N, GO);
      EXPECT_TRUE(G.Verified);
      EXPECT_TRUE(G.VerifyPassed)
          << "uncited corruption broke the schedule: " << G.VerifyDetail;
    }
  }
  ASSERT_GT(Trials, 0u);
  // The campaign includes corruptions (e.g. within-row col swaps) that
  // only break uncited properties — the differential must actually bite.
  EXPECT_GT(Divergences, 0u);
}

TEST(CoreDirectedValidation, FallbackAndSelectiveGraphsAgreeUnderCampaign) {
  const Fixture &F = fx();
  // In Fallback mode the guard's end decision (which inspectors run) must
  // yield a schedule that respects the baseline graph for every corruption
  // class — per-dependence revocation included.
  for (FaultKind K : allFaultKinds()) {
    codegen::UFEnvironment Bad;
    std::string Desc;
    if (!injectFault(F.Env, {"col", K, 3}, Bad, Desc))
      continue;
    SCOPED_TRACE(std::string(faultKindName(K)) + ": " + Desc);
    GuardedOptions GO;
    GO.Verify = true;
    GO.VerifyMaxN = INT32_MAX;
    GuardedResult G =
        runGuarded(F.Analysis, F.K.Properties, Bad, F.Lower.N, GO);
    EXPECT_TRUE(G.SelectiveValidation);
    EXPECT_TRUE(G.Verified);
    EXPECT_TRUE(G.VerifyPassed) << G.VerifyDetail;
  }
}
