//===- engine_stress_test.cpp - Concurrent engine cache contract -----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The engine's caches under thread pressure (runs in CI under TSan): warm
// hits, racing cold fills, and LRU eviction may interleave arbitrarily,
// yet the accounting must stay exact where determinism allows (single
// fill per distinct key, every post-fill hit counted warm, live entries
// never above capacity) and every plan handed out for one key must be the
// same shared object — or, across an eviction, bit-identical content.
//
//===----------------------------------------------------------------------===//

#include "sds/engine/Engine.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace sds;
using namespace sds::rt;

namespace {

codegen::UFEnvironment lowerCSC(int N, uint64_t Seed) {
  GeneratorConfig C;
  C.N = N;
  C.AvgNnzPerRow = 5;
  C.Bandwidth = 12;
  C.Seed = Seed;
  return driver::bindCSC(toCSC(lowerTriangle(generateSPDLike(C))));
}

int envN(const codegen::UFEnvironment &Env) {
  return static_cast<int>(Env.Params.at("n"));
}

} // namespace

TEST(EngineStress, WarmHitsAndColdFillsAccountExactly) {
  constexpr int NumThreads = 8, NumEnvs = 4, Reps = 5;
  engine::Engine E;
  kernels::Kernel K = kernels::forwardSolveCSC();
  std::vector<codegen::UFEnvironment> Envs;
  for (uint64_t S = 1; S <= NumEnvs; ++S)
    Envs.push_back(lowerCSC(90, S));

  // Phase 1, serial: one cold fill per distinct key, exactly.
  std::vector<std::shared_ptr<const engine::MatrixPlan>> Ref;
  for (const codegen::UFEnvironment &Env : Envs)
    Ref.push_back(E.plan(K, Env, envN(Env)));
  engine::EngineStats S0 = E.stats();
  ASSERT_EQ(S0.KernelCold, 1u);
  ASSERT_EQ(S0.KernelWarm, uint64_t(NumEnvs) - 1); // plan() re-probes
  ASSERT_EQ(S0.MatrixCold, static_cast<uint64_t>(NumEnvs));
  ASSERT_EQ(S0.MatrixWarm, 0u);
  ASSERT_EQ(S0.MatrixEvicted, 0u);

  // Phase 2, concurrent: every plan() is a warm hit on both tiers and
  // returns the phase-1 object. Pointer mismatches are collected, not
  // asserted, inside the workers (gtest failures are not thread-safe).
  std::vector<int> Mismatches(NumThreads, 0);
  std::vector<std::thread> Pool;
  for (int T = 0; T < NumThreads; ++T)
    Pool.emplace_back([&, T] {
      for (int R = 0; R < Reps; ++R)
        for (int I = 0; I < NumEnvs; ++I) {
          int J = (I + T) % NumEnvs; // different walk order per thread
          auto P = E.plan(K, Envs[J], envN(Envs[J]));
          if (P.get() != Ref[J].get())
            ++Mismatches[T];
        }
    });
  for (std::thread &Th : Pool)
    Th.join();
  for (int T = 0; T < NumThreads; ++T)
    EXPECT_EQ(Mismatches[T], 0) << "thread " << T;

  engine::EngineStats S1 = E.stats();
  constexpr uint64_t Calls = uint64_t(NumThreads) * NumEnvs * Reps;
  EXPECT_EQ(S1.KernelCold, 1u); // never re-analyzed
  EXPECT_EQ(S1.KernelWarm, Calls + NumEnvs - 1); // every plan() probes it
  EXPECT_EQ(S1.MatrixCold, uint64_t(NumEnvs));
  EXPECT_EQ(S1.MatrixWarm, Calls); // every concurrent call hit warm
  EXPECT_EQ(S1.MatrixEvicted, 0u);
}

TEST(EngineStress, RacingColdFillsConvergeOnOneEntry) {
  // All threads start cold on the same keys; whoever loses the per-key
  // insert race must adopt the winner's entry, so exactly NumEnvs cold
  // fills are counted and every caller holds the same object per key.
  constexpr int NumThreads = 8, NumEnvs = 3;
  engine::Engine E;
  kernels::Kernel K = kernels::forwardSolveCSC();
  std::vector<codegen::UFEnvironment> Envs;
  for (uint64_t S = 11; S < 11 + NumEnvs; ++S)
    Envs.push_back(lowerCSC(90, S));

  std::vector<std::vector<std::shared_ptr<const engine::MatrixPlan>>> Got(
      NumThreads, std::vector<std::shared_ptr<const engine::MatrixPlan>>(
                      NumEnvs));
  std::vector<std::thread> Pool;
  for (int T = 0; T < NumThreads; ++T)
    Pool.emplace_back([&, T] {
      for (int I = 0; I < NumEnvs; ++I) {
        int J = (I + T) % NumEnvs;
        Got[T][J] = E.plan(K, Envs[J], envN(Envs[J]));
      }
    });
  for (std::thread &Th : Pool)
    Th.join();

  for (int J = 0; J < NumEnvs; ++J)
    for (int T = 1; T < NumThreads; ++T)
      EXPECT_EQ(Got[T][J].get(), Got[0][J].get())
          << "thread " << T << " env " << J;

  engine::EngineStats S = E.stats();
  EXPECT_EQ(S.KernelCold, 1u); // racing kernel fills also converge
  EXPECT_EQ(S.MatrixCold, uint64_t(NumEnvs));
  // Race losers are counted neither warm nor cold; the books still bound.
  EXPECT_LE(S.MatrixWarm + S.MatrixCold, uint64_t(NumThreads) * NumEnvs);
}

TEST(EngineStress, ConcurrentEvictionBoundsLiveEntriesAndStaysIdentical) {
  constexpr int NumThreads = 8, NumEnvs = 6, Reps = 4;
  constexpr size_t Capacity = 2;
  engine::EngineOptions Opts;
  Opts.MaxMatrixPlans = Capacity;
  engine::Engine E(Opts);
  kernels::Kernel K = kernels::forwardSolveCSC();
  std::vector<codegen::UFEnvironment> Envs;
  for (uint64_t S = 21; S < 21 + NumEnvs; ++S)
    Envs.push_back(lowerCSC(80, S));

  // Serial reference plans from an identically configured engine: the
  // thrashing engine must reproduce these bit-identically even when the
  // key was evicted and refilled mid-run.
  engine::Engine RefEngine;
  std::vector<std::shared_ptr<const engine::MatrixPlan>> Ref;
  for (const codegen::UFEnvironment &Env : Envs)
    Ref.push_back(RefEngine.plan(K, Env, envN(Env)));

  std::vector<int> ContentMismatches(NumThreads, 0);
  std::vector<std::thread> Pool;
  for (int T = 0; T < NumThreads; ++T)
    Pool.emplace_back([&, T] {
      for (int R = 0; R < Reps; ++R)
        for (int I = 0; I < NumEnvs; ++I) {
          int J = (I + T + R) % NumEnvs;
          auto P = E.plan(K, Envs[J], envN(Envs[J]));
          if (P->Inspection.Graph.numEdges() !=
                  Ref[J]->Inspection.Graph.numEdges() ||
              P->Schedule.Waves.Waves != Ref[J]->Schedule.Waves.Waves)
            ++ContentMismatches[T];
        }
    });
  for (std::thread &Th : Pool)
    Th.join();
  for (int T = 0; T < NumThreads; ++T)
    EXPECT_EQ(ContentMismatches[T], 0) << "thread " << T;

  engine::EngineStats S = E.stats();
  // Inserts minus evictions is the live-entry count, and the capacity
  // check runs under the same lock as the insert — so the cache can never
  // have drifted above its bound.
  EXPECT_LE(S.MatrixCold - S.MatrixEvicted, uint64_t(Capacity));
  EXPECT_GE(S.MatrixCold, uint64_t(NumEnvs)); // each key filled at least once
  EXPECT_GE(S.MatrixEvicted, uint64_t(NumEnvs) - Capacity);
}
