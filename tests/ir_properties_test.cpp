//===- ir_properties_test.cpp - Index-array property tests -----------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Properties.h"
#include "sds/support/JSON.h"

#include <gtest/gtest.h>

using namespace sds::ir;

TEST(Properties, KeywordRoundTrip) {
  for (PropertyKind K :
       {PropertyKind::MonotonicIncreasing,
        PropertyKind::StrictMonotonicIncreasing,
        PropertyKind::MonotonicDecreasing,
        PropertyKind::StrictMonotonicDecreasing, PropertyKind::Injective,
        PropertyKind::PeriodicMonotonic, PropertyKind::CoMonotonic,
        PropertyKind::Triangular, PropertyKind::TriangularEntriesLE,
        PropertyKind::TriangularEntriesGE, PropertyKind::TriangularEntriesLT,
        PropertyKind::TriangularEntriesGT, PropertyKind::SegmentPointer}) {
    auto Parsed = parsePropertyKind(propertyKindName(K));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(*Parsed, K);
  }
  EXPECT_FALSE(parsePropertyKind("bogus").has_value());
}

TEST(Properties, StrictMonotonicExpandsWithContrapositive) {
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "rowptr");
  auto As = PS.assertions();
  ASSERT_EQ(As.size(), 4u); // base, weak, contra, contra-strict
  // The §4.1 contrapositive: f(x1) >= f(x2) => x1 >= x2, i.e. in our
  // ordering f(__q1) <= f(__q0) => __q1 <= __q0.
  bool FoundContra = false;
  for (const auto &A : As)
    if (A.Label.find("[contra]") != std::string::npos) {
      FoundContra = true;
      EXPECT_EQ(A.QVars.size(), 2u);
      EXPECT_EQ(A.Antecedent.constraints().size(), 1u);
      EXPECT_EQ(A.Consequent.constraints().size(), 1u);
    }
  EXPECT_TRUE(FoundContra);
}

TEST(Properties, CoMonotonicHasEmptyAntecedent) {
  PropertySet PS;
  PS.add(PropertyKind::CoMonotonic, "rowptr", "diagptr");
  auto As = PS.assertions();
  ASSERT_EQ(As.size(), 1u);
  EXPECT_TRUE(As[0].Antecedent.empty());
  EXPECT_EQ(As[0].Consequent.constraints().size(), 1u);
}

TEST(Properties, PeriodicMonotonicUsesThreeQVars) {
  PropertySet PS;
  PS.add(PropertyKind::PeriodicMonotonic, "col", "rowptr");
  auto As = PS.assertions();
  ASSERT_EQ(As.size(), 2u);
  EXPECT_EQ(As[0].QVars.size(), 3u);
}

TEST(Properties, DomainRangeAssertion) {
  PropertySet PS;
  DomainRangeDecl D;
  D.Fn = "rowptr";
  D.DomLo = Expr(0);
  D.DomHi = Expr::var("n");
  D.RanLo = Expr(0);
  D.RanHi = Expr::var("nnz");
  PS.addDomainRange(D);
  auto As = PS.assertions();
  ASSERT_EQ(As.size(), 1u);
  EXPECT_EQ(As[0].Antecedent.constraints().size(), 2u);
  EXPECT_EQ(As[0].Consequent.constraints().size(), 2u);
}

TEST(Properties, FilteredKeepsOnlyRequestedKinds) {
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "rowptr");
  PS.add(PropertyKind::PeriodicMonotonic, "col", "rowptr");
  PS.add(PropertyKind::Triangular, "col", "rowptr");
  PropertySet F =
      PS.filtered({PropertyKind::StrictMonotonicIncreasing});
  ASSERT_EQ(F.properties().size(), 1u);
  EXPECT_EQ(F.properties()[0].Fn, "rowptr");
}

TEST(Properties, FromJSONFullShape) {
  const char *Text = R"({
    "index_arrays": {
      "rowptr": {
        "properties": ["strict_monotonic_increasing"],
        "domain": [0, "n"],
        "range": [0, "nnz"]
      },
      "col": {
        "properties": [
          {"kind": "periodic_monotonic", "segment": "rowptr"},
          {"kind": "triangular_entries_le", "ptr": "rowptr"}
        ]
      }
    }
  })";
  auto J = sds::json::parse(Text);
  ASSERT_TRUE(J.Ok) << J.Error;
  std::string Error;
  auto PS = PropertySet::fromJSON(J.Val, Error);
  ASSERT_TRUE(PS.has_value()) << Error;
  EXPECT_EQ(PS->properties().size(), 3u);
  EXPECT_EQ(PS->domainRanges().size(), 1u);
  // col's periodic_monotonic carries the segment array name.
  bool Found = false;
  for (const auto &P : PS->properties())
    if (P.K == PropertyKind::PeriodicMonotonic) {
      EXPECT_EQ(P.Fn, "col");
      EXPECT_EQ(P.Other, "rowptr");
      Found = true;
    }
  EXPECT_TRUE(Found);
}

TEST(Properties, FromJSONErrors) {
  std::string Error;
  auto Check = [&](const char *Text) {
    auto J = sds::json::parse(Text);
    EXPECT_TRUE(J.Ok);
    Error.clear();
    auto PS = PropertySet::fromJSON(J.Val, Error);
    EXPECT_FALSE(PS.has_value());
    EXPECT_FALSE(Error.empty());
  };
  Check(R"({})");
  Check(R"({"index_arrays": {"a": {"properties": ["nope"]}}})");
  Check(R"({"index_arrays": {"a": {"properties": [42]}}})");
  Check(R"({"index_arrays": {"a": {"properties":
        [{"kind": "periodic_monotonic"}]}}})"); // missing segment
  Check(R"({"index_arrays": {"a": {"domain": [1]}}})");
  Check(R"({"index_arrays": {"a": {"domain": [0, "***"]}}})");
}

TEST(Properties, SegmentPointerUnconditional) {
  PropertySet PS;
  PS.add(PropertyKind::SegmentPointer, "diag", "rowptr");
  auto As = PS.assertions();
  ASSERT_EQ(As.size(), 1u);
  EXPECT_TRUE(As[0].Antecedent.empty());
  EXPECT_EQ(As[0].Consequent.constraints().size(), 2u);
}

TEST(Properties, AssertionPrinting) {
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "f");
  auto As = PS.assertions();
  EXPECT_NE(As[0].str().find("forall"), std::string::npos);
  EXPECT_NE(As[0].str().find("=>"), std::string::npos);
}
