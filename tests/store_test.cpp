//===- store_test.cpp - Crash-safe persistent artifact store ---------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The store's robustness contract (DESIGN.md §16): atomic publication,
// verified reads with quarantine-never-delete on corruption, startup
// recovery of torn-write debris, the decoded-identity check against the
// requested key, and the byte-budgeted LRU sweep. The adversarial half —
// every StoreFaultKind, several seeds each — runs through the guard
// campaign and must come back with zero silent wrong serves.
//
//===----------------------------------------------------------------------===//

#include "sds/guard/FaultInjection.h"
#include "sds/kernels/Kernels.h"
#include "sds/store/Store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace fs = std::filesystem;
using namespace sds;

namespace {

/// One analysis for the whole binary — the artifact under test is the same
/// pristine value everywhere, the per-test stores differ.
const artifact::CompiledKernel &fsCscArtifact() {
  static artifact::CompiledKernel CK =
      artifact::compile(kernels::forwardSolveCSC());
  return CK;
}

std::string freshRoot(const char *Name) {
  fs::path P = fs::path(::testing::TempDir()) / Name;
  fs::remove_all(P);
  return P.string();
}

uint64_t fileSize(const std::string &Path) {
  std::error_code EC;
  uint64_t Sz = fs::file_size(Path, EC);
  return EC ? 0 : Sz;
}

} // namespace

TEST(StoreRoundtrip, PutGetBitIdentical) {
  store::Store S({freshRoot("sds_store_roundtrip"), 0, false});
  ASSERT_TRUE(S.status().ok()) << S.status().str();
  const artifact::CompiledKernel &CK = fsCscArtifact();
  ASSERT_TRUE(S.put(CK).ok());
  ASSERT_TRUE(S.put(CK).ok()); // identical bytes: skipped, not rewritten

  artifact::CompiledKernel Out;
  bool Found = false;
  ASSERT_TRUE(S.get(store::Store::keyFor(CK), Out, Found).ok());
  ASSERT_TRUE(Found);
  EXPECT_EQ(artifact::serialize(Out), artifact::serialize(CK));

  store::StoreStats St = S.stats();
  EXPECT_EQ(St.Puts, 1u);
  EXPECT_EQ(St.PutIdentical, 1u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 0u);
  EXPECT_EQ(St.Quarantined, 0u);
}

TEST(StoreRoundtrip, MissIsExplicitNotAnError) {
  store::Store S({freshRoot("sds_store_miss"), 0, false});
  ASSERT_TRUE(S.status().ok());
  artifact::CompiledKernel Out;
  bool Found = true;
  ASSERT_TRUE(S.get("no-such-key", Out, Found).ok());
  EXPECT_FALSE(Found);
  EXPECT_EQ(S.stats().Misses, 1u);
}

TEST(StoreVerify, CorruptBlobQuarantinedNeverDeleted) {
  store::Store S({freshRoot("sds_store_corrupt"), 0, false});
  ASSERT_TRUE(S.status().ok());
  const artifact::CompiledKernel &CK = fsCscArtifact();
  ASSERT_TRUE(S.put(CK).ok());
  std::string Key = store::Store::keyFor(CK);
  std::string Blob = S.blobPath(Key);
  uint64_t Pristine = fileSize(Blob);
  ASSERT_GT(Pristine, 64u);

  // Truncate the published blob to break the payload checksum.
  fs::resize_file(Blob, Pristine / 2);

  artifact::CompiledKernel Out;
  bool Found = true;
  ASSERT_TRUE(S.get(Key, Out, Found).ok());
  EXPECT_FALSE(Found); // degraded to a miss — caller recompiles
  EXPECT_EQ(S.stats().Quarantined, 1u);
  EXPECT_FALSE(fs::exists(Blob)); // moved aside, not served again

  // Never deleted: the corrupt bytes sit in quarantine/ for post-mortem.
  std::vector<std::string> Q = S.listQuarantined();
  ASSERT_EQ(Q.size(), 1u);
  EXPECT_GT(fileSize((fs::path(S.root()) / "quarantine" / Q[0]).string()),
            0u);

  // The key is re-publishable and serves pristine afterwards.
  ASSERT_TRUE(S.put(CK).ok());
  ASSERT_TRUE(S.get(Key, Out, Found).ok());
  ASSERT_TRUE(Found);
  EXPECT_EQ(artifact::serialize(Out), artifact::serialize(CK));
}

TEST(StoreVerify, DecodedIdentityMustMatchRequestedKey) {
  // A blob squatting at another key's path decodes cleanly but is not the
  // artifact that key addresses — the identity check quarantines it
  // rather than serving a wrong (if well-formed) answer.
  store::Store S({freshRoot("sds_store_alias"), 0, false});
  ASSERT_TRUE(S.status().ok());
  const artifact::CompiledKernel &CK = fsCscArtifact();
  ASSERT_TRUE(S.put(CK).ok());
  fs::copy_file(S.blobPath(store::Store::keyFor(CK)),
                S.blobPath("impostor-key"));

  artifact::CompiledKernel Out;
  bool Found = true;
  ASSERT_TRUE(S.get("impostor-key", Out, Found).ok());
  EXPECT_FALSE(Found);
  EXPECT_EQ(S.stats().Quarantined, 1u);
  EXPECT_EQ(S.listQuarantined().size(), 1u);

  // The legitimate key is untouched by the impostor's quarantine.
  ASSERT_TRUE(S.get(store::Store::keyFor(CK), Out, Found).ok());
  EXPECT_TRUE(Found);
}

TEST(StoreRecovery, StartupRemovesTornWriteDebris) {
  std::string Root = freshRoot("sds_store_recover");
  const artifact::CompiledKernel &CK = fsCscArtifact();
  {
    store::Store S({Root, 0, false});
    ASSERT_TRUE(S.status().ok());
    ASSERT_TRUE(S.put(CK).ok());
  }
  // A writer killed mid-save leaves only *.tmp files behind; fake two.
  std::ofstream(Root + "/deadbeef.json.tmp101") << "{\"torn\":";
  std::ofstream(Root + "/deadbeef.json.tmp102") << "{}";

  store::Store S({Root, 0, false});
  ASSERT_TRUE(S.status().ok());
  EXPECT_EQ(S.stats().RecoveredTmp, 2u);
  EXPECT_FALSE(fs::exists(Root + "/deadbeef.json.tmp101"));
  EXPECT_FALSE(fs::exists(Root + "/deadbeef.json.tmp102"));

  // The committed blob survived recovery and still serves pristine.
  artifact::CompiledKernel Out;
  bool Found = false;
  ASSERT_TRUE(S.get(store::Store::keyFor(CK), Out, Found).ok());
  ASSERT_TRUE(Found);
  EXPECT_EQ(artifact::serialize(Out), artifact::serialize(CK));
}

TEST(StoreSweep, ByteBudgetEvictsAllButNewest) {
  // A 1-byte budget forces the sweep after every put; the newest blob is
  // never evicted, so exactly the previously published blobs go.
  store::Store S({freshRoot("sds_store_sweep"), 1, false});
  ASSERT_TRUE(S.status().ok());
  artifact::CompiledKernel A = fsCscArtifact();
  artifact::CompiledKernel B = artifact::compile(kernels::forwardSolveCSR());
  artifact::CompiledKernel C = artifact::compile(kernels::spmvCSR());
  ASSERT_TRUE(S.put(A).ok());
  ASSERT_TRUE(S.put(B).ok());
  ASSERT_TRUE(S.put(C).ok());

  store::StoreStats St = S.stats();
  EXPECT_EQ(St.SweepEvicted, 2u);
  unsigned Alive = 0;
  for (const artifact::CompiledKernel *CK : {&A, &B, &C})
    Alive += S.contains(store::Store::keyFor(*CK)) ? 1 : 0;
  EXPECT_EQ(Alive, 1u);
  EXPECT_EQ(S.listQuarantined().size(), 0u); // eviction is not quarantine
}

TEST(StoreLifecycle, UnusableRootIsDeadNotUndefined) {
  // Rooting the store under a regular file makes creation impossible; the
  // store must report that through status(), not crash or half-work.
  std::string Base = freshRoot("sds_store_dead");
  fs::create_directories(Base);
  std::ofstream(Base + "/occupied") << "x";
  store::Store S({Base + "/occupied/sub", 0, false});
  EXPECT_FALSE(S.status().ok());
  EXPECT_FALSE(S.put(fsCscArtifact()).ok());
}

TEST(StoreCampaign, EveryFaultClassDetectedOrTolerated) {
  guard::StoreCampaignResult R =
      guard::runStoreCampaign(fsCscArtifact(),
                              freshRoot("sds_store_campaign"), 2);
  EXPECT_GT(R.injected(), 0u);
  EXPECT_EQ(R.silentWrongs(), 0u);
  EXPECT_TRUE(R.allHeld()) << R.summary();
}
