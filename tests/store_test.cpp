//===- store_test.cpp - Crash-safe persistent artifact store ---------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The store's robustness contract (DESIGN.md §16): atomic publication,
// verified reads with quarantine-never-delete on corruption, startup
// recovery of torn-write debris, the decoded-identity check against the
// requested key, and the byte-budgeted LRU sweep. The adversarial half —
// every StoreFaultKind, several seeds each — runs through the guard
// campaign and must come back with zero silent wrong serves.
//
//===----------------------------------------------------------------------===//

#include "sds/guard/FaultInjection.h"
#include "sds/kernels/Kernels.h"
#include "sds/store/Store.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sys/wait.h>
#include <unistd.h>

namespace fs = std::filesystem;
using namespace sds;

namespace {

/// One analysis for the whole binary — the artifact under test is the same
/// pristine value everywhere, the per-test stores differ.
const artifact::CompiledKernel &fsCscArtifact() {
  static artifact::CompiledKernel CK =
      artifact::compile(kernels::forwardSolveCSC());
  return CK;
}

std::string freshRoot(const char *Name) {
  fs::path P = fs::path(::testing::TempDir()) / Name;
  fs::remove_all(P);
  return P.string();
}

uint64_t fileSize(const std::string &Path) {
  std::error_code EC;
  uint64_t Sz = fs::file_size(Path, EC);
  return EC ? 0 : Sz;
}

} // namespace

TEST(StoreRoundtrip, PutGetBitIdentical) {
  store::Store S({freshRoot("sds_store_roundtrip"), 0, false});
  ASSERT_TRUE(S.status().ok()) << S.status().str();
  const artifact::CompiledKernel &CK = fsCscArtifact();
  ASSERT_TRUE(S.put(CK).ok());
  ASSERT_TRUE(S.put(CK).ok()); // identical bytes: skipped, not rewritten

  artifact::CompiledKernel Out;
  bool Found = false;
  ASSERT_TRUE(S.get(store::Store::keyFor(CK), Out, Found).ok());
  ASSERT_TRUE(Found);
  EXPECT_EQ(artifact::serialize(Out), artifact::serialize(CK));

  store::StoreStats St = S.stats();
  EXPECT_EQ(St.Puts, 1u);
  EXPECT_EQ(St.PutIdentical, 1u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 0u);
  EXPECT_EQ(St.Quarantined, 0u);
}

TEST(StoreRoundtrip, MissIsExplicitNotAnError) {
  store::Store S({freshRoot("sds_store_miss"), 0, false});
  ASSERT_TRUE(S.status().ok());
  artifact::CompiledKernel Out;
  bool Found = true;
  ASSERT_TRUE(S.get("no-such-key", Out, Found).ok());
  EXPECT_FALSE(Found);
  EXPECT_EQ(S.stats().Misses, 1u);
}

TEST(StoreVerify, CorruptBlobQuarantinedNeverDeleted) {
  store::Store S({freshRoot("sds_store_corrupt"), 0, false});
  ASSERT_TRUE(S.status().ok());
  const artifact::CompiledKernel &CK = fsCscArtifact();
  ASSERT_TRUE(S.put(CK).ok());
  std::string Key = store::Store::keyFor(CK);
  std::string Blob = S.blobPath(Key);
  uint64_t Pristine = fileSize(Blob);
  ASSERT_GT(Pristine, 64u);

  // Truncate the published blob to break the payload checksum.
  fs::resize_file(Blob, Pristine / 2);

  artifact::CompiledKernel Out;
  bool Found = true;
  ASSERT_TRUE(S.get(Key, Out, Found).ok());
  EXPECT_FALSE(Found); // degraded to a miss — caller recompiles
  EXPECT_EQ(S.stats().Quarantined, 1u);
  EXPECT_FALSE(fs::exists(Blob)); // moved aside, not served again

  // Never deleted: the corrupt bytes sit in quarantine/ for post-mortem.
  std::vector<std::string> Q = S.listQuarantined();
  ASSERT_EQ(Q.size(), 1u);
  EXPECT_GT(fileSize((fs::path(S.root()) / "quarantine" / Q[0]).string()),
            0u);

  // The key is re-publishable and serves pristine afterwards.
  ASSERT_TRUE(S.put(CK).ok());
  ASSERT_TRUE(S.get(Key, Out, Found).ok());
  ASSERT_TRUE(Found);
  EXPECT_EQ(artifact::serialize(Out), artifact::serialize(CK));
}

TEST(StoreVerify, DecodedIdentityMustMatchRequestedKey) {
  // A blob squatting at another key's path decodes cleanly but is not the
  // artifact that key addresses — the identity check quarantines it
  // rather than serving a wrong (if well-formed) answer.
  store::Store S({freshRoot("sds_store_alias"), 0, false});
  ASSERT_TRUE(S.status().ok());
  const artifact::CompiledKernel &CK = fsCscArtifact();
  ASSERT_TRUE(S.put(CK).ok());
  fs::copy_file(S.blobPath(store::Store::keyFor(CK)),
                S.blobPath("impostor-key"));

  artifact::CompiledKernel Out;
  bool Found = true;
  ASSERT_TRUE(S.get("impostor-key", Out, Found).ok());
  EXPECT_FALSE(Found);
  EXPECT_EQ(S.stats().Quarantined, 1u);
  EXPECT_EQ(S.listQuarantined().size(), 1u);

  // The legitimate key is untouched by the impostor's quarantine.
  ASSERT_TRUE(S.get(store::Store::keyFor(CK), Out, Found).ok());
  EXPECT_TRUE(Found);
}

TEST(StoreRecovery, StartupRemovesTornWriteDebris) {
  std::string Root = freshRoot("sds_store_recover");
  const artifact::CompiledKernel &CK = fsCscArtifact();
  {
    store::Store S({Root, 0, false});
    ASSERT_TRUE(S.status().ok());
    ASSERT_TRUE(S.put(CK).ok());
  }
  // A writer killed mid-save leaves only *.tmp files behind; fake two.
  std::ofstream(Root + "/deadbeef.json.tmp101") << "{\"torn\":";
  std::ofstream(Root + "/deadbeef.json.tmp102") << "{}";

  store::Store S({Root, 0, false});
  ASSERT_TRUE(S.status().ok());
  EXPECT_EQ(S.stats().RecoveredTmp, 2u);
  EXPECT_FALSE(fs::exists(Root + "/deadbeef.json.tmp101"));
  EXPECT_FALSE(fs::exists(Root + "/deadbeef.json.tmp102"));

  // The committed blob survived recovery and still serves pristine.
  artifact::CompiledKernel Out;
  bool Found = false;
  ASSERT_TRUE(S.get(store::Store::keyFor(CK), Out, Found).ok());
  ASSERT_TRUE(Found);
  EXPECT_EQ(artifact::serialize(Out), artifact::serialize(CK));
}

TEST(StoreSweep, ByteBudgetEvictsAllButNewest) {
  // A 1-byte budget forces the sweep after every put; the newest blob is
  // never evicted, so exactly the previously published blobs go.
  store::Store S({freshRoot("sds_store_sweep"), 1, false});
  ASSERT_TRUE(S.status().ok());
  artifact::CompiledKernel A = fsCscArtifact();
  artifact::CompiledKernel B = artifact::compile(kernels::forwardSolveCSR());
  artifact::CompiledKernel C = artifact::compile(kernels::spmvCSR());
  ASSERT_TRUE(S.put(A).ok());
  ASSERT_TRUE(S.put(B).ok());
  ASSERT_TRUE(S.put(C).ok());

  store::StoreStats St = S.stats();
  EXPECT_EQ(St.SweepEvicted, 2u);
  unsigned Alive = 0;
  for (const artifact::CompiledKernel *CK : {&A, &B, &C})
    Alive += S.contains(store::Store::keyFor(*CK)) ? 1 : 0;
  EXPECT_EQ(Alive, 1u);
  EXPECT_EQ(S.listQuarantined().size(), 0u); // eviction is not quarantine
}

TEST(StoreLifecycle, UnusableRootIsDeadNotUndefined) {
  // Rooting the store under a regular file makes creation impossible; the
  // store must report that through status(), not crash or half-work.
  std::string Base = freshRoot("sds_store_dead");
  fs::create_directories(Base);
  std::ofstream(Base + "/occupied") << "x";
  store::Store S({Base + "/occupied/sub", 0, false});
  EXPECT_FALSE(S.status().ok());
  EXPECT_FALSE(S.put(fsCscArtifact()).ok());
}

TEST(StoreFork, CrossProcessSharingNeverTearsAReader) {
  // Several OS processes share one store root: a pack of writers evicts
  // and republishes the same key in a tight loop while readers hammer
  // get(). The publish path is durable-tmp + atomic rename, so every
  // read must come back pristine-or-miss — a torn observation would be
  // quarantined, and quarantine files are never deleted, so an empty
  // quarantine at the end is the atomicity proof.
  std::string Root = freshRoot("sds_store_fork");
  const artifact::CompiledKernel &CK = fsCscArtifact();
  const std::string Pristine = artifact::serialize(CK);
  const std::string Key = store::Store::keyFor(CK);
  {
    store::Store Seed({Root, 0, false});
    ASSERT_TRUE(Seed.status().ok()) << Seed.status().str();
    ASSERT_TRUE(Seed.put(CK).ok());
  }

  // Startup recovery sweeps every *.tmp in the root, including another
  // process's in-flight publish — so, as in a real deployment, every
  // process opens its store at startup, before anyone publishes. The
  // ready/go pipe pair is that barrier: children report after their
  // store constructor ran and block until the parent releases them.
  constexpr int kWriters = 3, kReaders = 3, kIters = 50;
  int Ready[2], Go[2];
  ASSERT_EQ(::pipe(Ready), 0);
  ASSERT_EQ(::pipe(Go), 0);
  auto childBarrier = [&](store::Store &S) {
    ::close(Ready[0]);
    ::close(Go[1]);
    if (!S.status().ok())
      ::_exit(2);
    char B = 'r';
    if (::write(Ready[1], &B, 1) != 1)
      ::_exit(7);
    ::close(Ready[1]);
    (void)::read(Go[0], &B, 1); // EOF when the parent opens the gate
    ::close(Go[0]);
  };
  std::vector<pid_t> Kids;
  for (int W = 0; W < kWriters; ++W) {
    pid_t P = fork();
    ASSERT_GE(P, 0);
    if (P == 0) {
      // Writer child: remove the published blob between puts so every
      // iteration exercises the tmp+rename publish path (the
      // identical-bytes skip would otherwise make iterations 2..N
      // no-ops). This is exactly eviction racing republication.
      store::Store S({Root, 0, false});
      childBarrier(S);
      std::string Blob = S.blobPath(Key);
      for (int I = 0; I < kIters; ++I) {
        std::error_code EC;
        fs::remove(Blob, EC);
        if (!S.put(CK).ok())
          ::_exit(3);
      }
      ::_exit(0);
    }
    Kids.push_back(P);
  }
  for (int R = 0; R < kReaders; ++R) {
    pid_t P = fork();
    ASSERT_GE(P, 0);
    if (P == 0) {
      store::Store S({Root, 0, false});
      childBarrier(S);
      // Misses dominate while the writers hold the key removed (the
      // absent window spans a durable write); once the last writer's
      // final put lands the key stays published, so reading until a
      // hit quota is met always terminates. The deadline is a hang
      // backstop, not the expected exit.
      unsigned Hits = 0;
      for (int I = 0; I < 60000 && Hits < 8; ++I) {
        artifact::CompiledKernel Out;
        bool Found = false;
        if (!S.get(Key, Out, Found).ok())
          ::_exit(3);
        if (Found) {
          if (artifact::serialize(Out) != Pristine)
            ::_exit(4); // torn or wrong bytes served — the real failure
          ++Hits;
        } else {
          ::usleep(500);
        }
      }
      if (S.stats().Quarantined != 0)
        ::_exit(5); // a read saw a non-pristine blob on disk
      ::_exit(Hits >= 8 ? 0 : 6);
    }
    Kids.push_back(P);
  }
  ::close(Ready[1]);
  ::close(Go[0]);
  char B;
  for (int I = 0; I < kWriters + kReaders; ++I)
    ASSERT_EQ(::read(Ready[0], &B, 1), 1); // all stores constructed
  ::close(Ready[0]);
  ::close(Go[1]); // open the gate
  for (pid_t P : Kids) {
    int St = 0;
    ASSERT_EQ(::waitpid(P, &St, 0), P);
    ASSERT_TRUE(WIFEXITED(St));
    EXPECT_EQ(WEXITSTATUS(St), 0);
  }

  // Parent post-mortem on a fresh store instance: the key serves
  // pristine bytes, no reader ever quarantined anything, and the writer
  // pack left no tmp debris behind for startup recovery to sweep.
  store::Store S({Root, 0, false});
  ASSERT_TRUE(S.status().ok());
  EXPECT_EQ(S.stats().RecoveredTmp, 0u);
  EXPECT_TRUE(S.listQuarantined().empty());
  artifact::CompiledKernel Out;
  bool Found = false;
  ASSERT_TRUE(S.get(Key, Out, Found).ok());
  ASSERT_TRUE(Found);
  EXPECT_EQ(artifact::serialize(Out), Pristine);
}

TEST(StoreFork, KilledMidPublishNeverCorruptsCommittedState) {
  // Real kill-mid-write, not faked debris: child processes die inside
  // put() at both crash points (half-written tmp, complete-but-
  // unpublished tmp). Neither crash may damage the already-committed
  // blob, and the next store instance must recover the debris and
  // serve a clean miss for the key the victims were publishing.
  std::string Root = freshRoot("sds_store_fork_crash");
  const artifact::CompiledKernel &CK = fsCscArtifact();
  const artifact::CompiledKernel Victim =
      artifact::compile(kernels::forwardSolveCSR());
  {
    store::Store Seed({Root, 0, false});
    ASSERT_TRUE(Seed.status().ok());
    ASSERT_TRUE(Seed.put(CK).ok());
  }

  for (const char *Point : {"mid-blob", "before-rename"}) {
    pid_t P = fork();
    ASSERT_GE(P, 0);
    if (P == 0) {
      ::setenv("SDS_STORE_CRASH_POINT", Point, 1);
      store::Store S({Root, 0, false});
      if (!S.status().ok())
        ::_exit(2);
      (void)S.put(Victim); // _exit(137)s inside the write path
      ::_exit(9);          // crash point did not fire — test bug
    }
    int St = 0;
    ASSERT_EQ(::waitpid(P, &St, 0), P);
    ASSERT_TRUE(WIFEXITED(St));
    ASSERT_EQ(WEXITSTATUS(St), 137) << Point;

    // The victim left exactly one tmp file and published nothing.
    // A fresh store instance (any later process) recovers the debris,
    // the committed blob is untouched, and the victim's key is an
    // explicit miss — never a torn artifact.
    store::Store S({Root, 0, false});
    ASSERT_TRUE(S.status().ok());
    EXPECT_EQ(S.stats().RecoveredTmp, 1u) << Point;
    artifact::CompiledKernel Out;
    bool Found = true;
    ASSERT_TRUE(S.get(store::Store::keyFor(Victim), Out, Found).ok());
    EXPECT_FALSE(Found) << Point;
    ASSERT_TRUE(S.get(store::Store::keyFor(CK), Out, Found).ok());
    ASSERT_TRUE(Found);
    EXPECT_EQ(artifact::serialize(Out), artifact::serialize(CK)) << Point;
  }

  // A clean republish after both crashes fills the victims' key.
  store::Store S({Root, 0, false});
  ASSERT_TRUE(S.status().ok());
  artifact::CompiledKernel Out;
  bool Found = false;
  ASSERT_TRUE(S.put(Victim).ok());
  ASSERT_TRUE(S.get(store::Store::keyFor(Victim), Out, Found).ok());
  EXPECT_TRUE(Found);
  EXPECT_EQ(artifact::serialize(Out), artifact::serialize(Victim));
}

TEST(StoreCampaign, EveryFaultClassDetectedOrTolerated) {
  guard::StoreCampaignResult R =
      guard::runStoreCampaign(fsCscArtifact(),
                              freshRoot("sds_store_campaign"), 2);
  EXPECT_GT(R.injected(), 0u);
  EXPECT_EQ(R.silentWrongs(), 0u);
  EXPECT_TRUE(R.allHeld()) << R.summary();
}
