//===- support_json_test.cpp - Minimal JSON parser tests ------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/support/JSON.h"

#include <gtest/gtest.h>

using namespace sds::json;

TEST(Json, Scalars) {
  EXPECT_TRUE(parse("null").Val.isNull());
  EXPECT_EQ(parse("true").Val.asBool(), true);
  EXPECT_EQ(parse("false").Val.asBool(), false);
  EXPECT_EQ(parse("42").Val.asInt(), 42);
  EXPECT_EQ(parse("-17").Val.asInt(), -17);
  EXPECT_DOUBLE_EQ(parse("2.5").Val.asDouble(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3").Val.asDouble(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").Val.asString(), "hi");
}

TEST(Json, StringEscapes) {
  auto R = parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Val.asString(), "a\"b\\c\nd\teA");
}

TEST(Json, UnicodeEscapeMultibyte) {
  auto R = parse(R"("é€")"); // é and €
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Val.asString(), "\xC3\xA9\xE2\x82\xAC");
}

TEST(Json, ArraysAndNesting) {
  auto R = parse("[1, [2, 3], {\"k\": 4}]");
  ASSERT_TRUE(R.Ok);
  const Array &A = R.Val.asArray();
  ASSERT_EQ(A.size(), 3u);
  EXPECT_EQ(A[0].asInt(), 1);
  EXPECT_EQ(A[1].asArray()[1].asInt(), 3);
  EXPECT_EQ(A[2].get("k")->asInt(), 4);
}

TEST(Json, PropertyFileShape) {
  // The shape used by the paper's pipeline input (Figure 3): index-array
  // properties as a JSON object.
  const char *Text = R"({
    "kernel": "forward_solve_csr",
    "parallel_loop": "i",
    "index_arrays": {
      "rowptr": {"properties": ["strict_monotonic_increasing"],
                 "domain": [0, "n"], "range": [0, "nnz"]},
      "col":    {"properties": ["periodic_monotonic", "triangular"]}
    }
  })";
  auto R = parse(Text);
  ASSERT_TRUE(R.Ok) << R.Error;
  const Value *Arrays = R.Val.get("index_arrays");
  ASSERT_NE(Arrays, nullptr);
  const Value *RowPtr = Arrays->get("rowptr");
  ASSERT_NE(RowPtr, nullptr);
  EXPECT_EQ(RowPtr->get("properties")->asArray()[0].asString(),
            "strict_monotonic_increasing");
  EXPECT_EQ(RowPtr->get("domain")->asArray()[1].asString(), "n");
}

TEST(Json, ObjectLookupMissing) {
  auto R = parse("{\"a\": 1}");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Val.get("b"), nullptr);
  EXPECT_EQ(R.Val.get("a")->get("c"), nullptr); // non-object lookup
}

TEST(Json, Errors) {
  EXPECT_FALSE(parse("").Ok);
  EXPECT_FALSE(parse("{").Ok);
  EXPECT_FALSE(parse("[1,]").Ok);
  EXPECT_FALSE(parse("\"unterminated").Ok);
  EXPECT_FALSE(parse("tru").Ok);
  EXPECT_FALSE(parse("{\"a\" 1}").Ok);
  EXPECT_FALSE(parse("1 2").Ok); // trailing garbage
}

TEST(Json, ErrorPositions) {
  auto R = parse("{\n  \"a\": @\n}");
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Line, 2u);
  EXPECT_GT(R.Col, 1u);
}

TEST(Json, RoundTrip) {
  const char *Text = R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
  auto R = parse(Text);
  ASSERT_TRUE(R.Ok);
  // Serialize and reparse; compare structure via second serialization.
  auto R2 = parse(R.Val.str());
  ASSERT_TRUE(R2.Ok);
  EXPECT_EQ(R.Val.str(), R2.Val.str());
}

TEST(Json, Int64Boundaries) {
  EXPECT_EQ(parse("9223372036854775807").Val.asInt(), INT64_MAX);
  EXPECT_EQ(parse("-9223372036854775808").Val.asInt(), INT64_MIN);
  // Overflowing integers degrade to double rather than failing.
  auto R = parse("92233720368547758080");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.Val.isNumber());
}
