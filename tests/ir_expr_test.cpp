//===- ir_expr_test.cpp - UF expression tests ------------------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Expr.h"

#include <gtest/gtest.h>

using namespace sds::ir;

TEST(Expr, ConstantsAndVars) {
  Expr C(5);
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.constant(), 5);
  EXPECT_EQ(C.str(), "5");

  Expr V = Expr::var("i");
  EXPECT_FALSE(V.isConstant());
  EXPECT_TRUE(V.isSingleAtom());
  EXPECT_EQ(V.str(), "i");
}

TEST(Expr, ArithmeticCanonicalizes) {
  Expr I = Expr::var("i"), J = Expr::var("j");
  Expr E = I + J + I - Expr(3); // 2i + j - 3
  EXPECT_EQ(E.str(), "2 i + j - 3");
  Expr Z = E - E;
  EXPECT_TRUE(Z.isConstant());
  EXPECT_EQ(Z.constant(), 0);
  EXPECT_EQ((I * 0).str(), "0");
  EXPECT_EQ((-I).str(), "-i");
}

TEST(Expr, CancellationRemovesTerms) {
  Expr I = Expr::var("i");
  Expr E = I * 3 - I * 3 + Expr(1);
  EXPECT_TRUE(E.isConstant());
  EXPECT_EQ(E.constant(), 1);
}

TEST(Expr, CallsStructuralEquality) {
  Expr K = Expr::var("k");
  Expr C1 = Expr::call("col", {K + Expr(1)});
  Expr C2 = Expr::call("col", {Expr(1) + K});
  EXPECT_EQ(C1, C2); // argument canonicalization makes these equal
  Expr C3 = Expr::call("col", {K});
  EXPECT_NE(C1, C3);
  EXPECT_EQ((C1 - C2).constant(), 0);
}

TEST(Expr, NestedCallsPrint) {
  Expr M = Expr::var("m");
  Expr Nested = Expr::call("col", {Expr::call("row", {M})});
  EXPECT_EQ(Nested.str(), "col(row(m))");
  Expr E = Nested - Expr::var("k") - Expr(1);
  EXPECT_EQ(E.str(), "-k + col(row(m)) - 1");
}

TEST(Expr, SubstituteTopLevelVar) {
  Expr I = Expr::var("i"), J = Expr::var("j");
  Expr E = I * 2 + J;
  std::map<std::string, Expr> Map{{"i", Expr::var("x") + Expr(1)}};
  EXPECT_EQ(E.substitute(Map).str(), "j + 2 x + 2");
}

TEST(Expr, SubstituteInsideCallArgs) {
  Expr K = Expr::var("k'");
  Expr E = Expr::call("col", {K}) - Expr::var("i");
  std::map<std::string, Expr> Map{{"k'", Expr::var("m")}};
  EXPECT_EQ(E.substitute(Map).str(), "-i + col(m)");
  // Nested substitution.
  Expr Nested = Expr::call("col", {Expr::call("row", {K})});
  EXPECT_EQ(Nested.substitute(Map).str(), "col(row(m))");
}

TEST(Expr, SubstituteMergesTerms) {
  // f(i) + f(j) with j := i must merge into 2 f(i).
  Expr E = Expr::call("f", {Expr::var("i")}) +
           Expr::call("f", {Expr::var("j")});
  std::map<std::string, Expr> Map{{"j", Expr::var("i")}};
  EXPECT_EQ(E.substitute(Map).str(), "2 f(i)");
}

TEST(Expr, CollectCallsIncludesNested) {
  Expr M = Expr::var("m");
  Expr E = Expr::call("col", {Expr::call("row", {M})}) +
           Expr::call("row", {M + Expr(1)});
  std::vector<Atom> Calls;
  E.collectCalls(Calls);
  // col(row(m)), its nested row(m), and row(m + 1).
  ASSERT_EQ(Calls.size(), 3u);
}

TEST(Expr, CollectVarsIncludesCallArgs) {
  Expr E = Expr::call("rowptr", {Expr::var("i") + Expr(1)}) - Expr::var("k");
  std::vector<std::string> Vars;
  E.collectVars(Vars);
  ASSERT_EQ(Vars.size(), 2u);
  EXPECT_NE(std::find(Vars.begin(), Vars.end(), "i"), Vars.end());
  EXPECT_NE(std::find(Vars.begin(), Vars.end(), "k"), Vars.end());
}

TEST(Expr, CompareTotalOrder) {
  Expr A = Expr::var("a"), B = Expr::var("b");
  EXPECT_LT(A, B);
  EXPECT_FALSE(B < A);
  Expr CA = Expr::call("f", {A});
  Expr CB = Expr::call("f", {B});
  EXPECT_LT(CA, CB);
  // Vars order before calls within an atom ordering.
  EXPECT_LT(Atom::var("z").compare(Atom::call("a", {})), 0);
}
