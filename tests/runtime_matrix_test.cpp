//===- runtime_matrix_test.cpp - Matrix substrate tests --------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/runtime/Matrix.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace sds::rt;

namespace {

/// Figure 1's matrix.
CSRMatrix figure1Matrix() {
  CSRMatrix A;
  A.N = 4;
  A.RowPtr = {0, 1, 2, 4, 7};
  A.Col = {0, 1, 0, 2, 0, 2, 3};
  A.Val = {1, 2, 3, 4, 5, 6, 7}; // a..g
  return A;
}

} // namespace

TEST(Matrix, Figure1WellFormed) {
  CSRMatrix A = figure1Matrix();
  EXPECT_TRUE(A.isWellFormed());
  EXPECT_TRUE(A.isLowerTriangular());
  EXPECT_EQ(A.nnz(), 7);
  auto Diag = A.diagonalPositions();
  EXPECT_EQ(Diag, (std::vector<int>{0, 1, 3, 6}));
}

TEST(Matrix, CSRtoCSCRoundTrip) {
  CSRMatrix A = figure1Matrix();
  CSCMatrix B = toCSC(A);
  EXPECT_TRUE(B.isWellFormed());
  EXPECT_TRUE(B.isLowerTriangular());
  // Column 0 holds rows 0, 2, 3 (values a, c, e).
  EXPECT_EQ(B.ColPtr, (std::vector<int>{0, 3, 4, 6, 7}));
  EXPECT_EQ(B.RowIdx, (std::vector<int>{0, 2, 3, 1, 2, 3, 3}));
  EXPECT_EQ(B.Val, (std::vector<double>{1, 3, 5, 2, 4, 6, 7}));
  CSRMatrix C = toCSR(B);
  EXPECT_EQ(C.RowPtr, A.RowPtr);
  EXPECT_EQ(C.Col, A.Col);
  EXPECT_EQ(C.Val, A.Val);
}

TEST(Matrix, GeneratorProducesWellFormedSPD) {
  GeneratorConfig Config;
  Config.N = 200;
  Config.AvgNnzPerRow = 9;
  Config.Bandwidth = 30;
  CSRMatrix A = generateSPDLike(Config);
  ASSERT_TRUE(A.isWellFormed());
  // Symmetric pattern & values.
  CSCMatrix T = toCSC(A);
  EXPECT_EQ(T.ColPtr, A.RowPtr);
  EXPECT_EQ(T.RowIdx, A.Col);
  EXPECT_EQ(T.Val, A.Val);
  // Full diagonal, strictly dominant.
  auto Diag = A.diagonalPositions();
  for (int I = 0; I < A.N; ++I) {
    ASSERT_GE(Diag[I], 0);
    double Off = 0;
    for (int K = A.RowPtr[I]; K < A.RowPtr[I + 1]; ++K)
      if (A.Col[K] != I)
        Off += std::abs(A.Val[K]);
    EXPECT_GT(A.Val[Diag[I]], Off);
  }
}

TEST(Matrix, GeneratorDeterministicInSeed) {
  GeneratorConfig C1, C2;
  C1.Seed = C2.Seed = 7;
  CSRMatrix A = generateSPDLike(C1), B = generateSPDLike(C2);
  EXPECT_EQ(A.Col, B.Col);
  EXPECT_EQ(A.Val, B.Val);
  C2.Seed = 8;
  CSRMatrix C = generateSPDLike(C2);
  EXPECT_NE(A.Col, C.Col);
}

TEST(Matrix, LowerTriangleExtraction) {
  CSRMatrix A = generateSPDLike({100, 7, 20, 3});
  CSRMatrix L = lowerTriangle(A);
  EXPECT_TRUE(L.isWellFormed());
  EXPECT_TRUE(L.isLowerTriangular());
  // Each row keeps its diagonal.
  auto Diag = L.diagonalPositions();
  for (int I = 0; I < L.N; ++I)
    EXPECT_GE(Diag[I], 0);
}

TEST(Matrix, Table4ProfilesMatchPaper) {
  auto Profiles = table4Profiles();
  ASSERT_EQ(Profiles.size(), 5u);
  EXPECT_EQ(Profiles[0].Columns, 504855); // af_shell3
  EXPECT_EQ(Profiles[4].NnzPerCol, 222);  // crankseg_2
  // Ordered by nnz per column, as in the paper.
  for (size_t I = 1; I < Profiles.size(); ++I)
    EXPECT_GT(Profiles[I].NnzPerCol, Profiles[I - 1].NnzPerCol);
}

TEST(Matrix, ProfileGenerationApproximatesDensity) {
  auto P = table4Profiles()[1]; // msdoor: 46 nnz/col
  CSRMatrix A = generateFromProfile(P, /*Scale=*/0.01, /*Seed=*/1);
  ASSERT_TRUE(A.isWellFormed());
  double Density = double(A.nnz()) / A.N;
  EXPECT_GT(Density, P.NnzPerCol * 0.5);
  EXPECT_LT(Density, P.NnzPerCol * 1.5);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  CSRMatrix A = figure1Matrix();
  std::string Path = ::testing::TempDir() + "/sds_mm_roundtrip.mtx";
  std::string Error;
  ASSERT_TRUE(writeMatrixMarket(Path, A, Error)) << Error;
  CSRMatrix B;
  ASSERT_TRUE(readMatrixMarket(Path, B, Error)) << Error;
  EXPECT_EQ(B.RowPtr, A.RowPtr);
  EXPECT_EQ(B.Col, A.Col);
  EXPECT_EQ(B.Val, A.Val);
  std::remove(Path.c_str());
}

TEST(MatrixMarket, SymmetricAndPatternInputs) {
  std::string Path = ::testing::TempDir() + "/sds_mm_sym.mtx";
  {
    FILE *F = fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    fputs("%%MatrixMarket matrix coordinate real symmetric\n"
          "% comment line\n"
          "3 3 4\n"
          "1 1 2.0\n2 2 2.0\n3 3 2.0\n3 1 -1.0\n",
          F);
    fclose(F);
  }
  CSRMatrix A;
  std::string Error;
  ASSERT_TRUE(readMatrixMarket(Path, A, Error)) << Error;
  EXPECT_EQ(A.nnz(), 5); // mirror of (3,1) added
  EXPECT_TRUE(A.isWellFormed());
  std::remove(Path.c_str());
}

TEST(MatrixMarket, Errors) {
  CSRMatrix A;
  std::string Error;
  EXPECT_FALSE(readMatrixMarket("/nonexistent/x.mtx", A, Error));
  std::string Path = ::testing::TempDir() + "/sds_mm_bad.mtx";
  auto WriteAndTry = [&](const char *Content) {
    FILE *F = fopen(Path.c_str(), "w");
    fputs(Content, F);
    fclose(F);
    Error.clear();
    bool OK = readMatrixMarket(Path, A, Error);
    EXPECT_FALSE(OK);
    EXPECT_FALSE(Error.empty());
  };
  WriteAndTry("");                                            // empty
  WriteAndTry("%%MatrixMarket matrix array real general\n");  // not coord
  WriteAndTry("%%MatrixMarket matrix coordinate real general\n"
              "2 3 1\n1 1 1.0\n"); // non-square
  WriteAndTry("%%MatrixMarket matrix coordinate real general\n"
              "2 2 2\n1 1 1.0\n"); // truncated
  WriteAndTry("%%MatrixMarket matrix coordinate real general\n"
              "2 2 1\n5 1 1.0\n"); // out of range
  std::remove(Path.c_str());
}

namespace {

/// Write `Content` to a temp file and load it through the Status API.
sds::support::Status statusFor(const std::string &Content,
                               CSRMatrix *Out = nullptr) {
  std::string Path = ::testing::TempDir() + "/sds_mm_corpus.mtx";
  {
    std::ofstream F(Path);
    F << Content;
  }
  CSRMatrix Local;
  sds::support::Status S = loadMatrixMarket(Path, Out ? *Out : Local);
  std::remove(Path.c_str());
  return S;
}

} // namespace

TEST(MatrixMarket, MalformedCorpusStatusCodes) {
  using sds::support::StatusCode;
  const char *Banner = "%%MatrixMarket matrix coordinate real general\n";

  // Duplicate coordinates are rejected, not coalesced: a file that lists
  // (2,1) twice disagrees with itself about the matrix.
  EXPECT_EQ(statusFor(std::string(Banner) +
                      "2 2 3\n1 1 1.0\n2 1 5.0\n2 1 6.0\n")
                .code(),
            StatusCode::InvalidArgument);

  // Entry counts no square matrix of this size can hold — including ones
  // whose doubling (symmetric expansion) would overflow long long.
  EXPECT_EQ(statusFor(std::string(Banner) + "2 2 99999999999999\n").code(),
            StatusCode::Overflow);
  EXPECT_EQ(statusFor("%%MatrixMarket matrix coordinate real symmetric\n"
                      "100000 100000 1500000000\n")
                .code(),
            StatusCode::Overflow);

  // Dimensions past int storage.
  EXPECT_EQ(statusFor(std::string(Banner) + "3000000000 3000000000 1\n"
                                            "1 1 1.0\n")
                .code(),
            StatusCode::Overflow);

  // Non-positive dimensions.
  EXPECT_EQ(statusFor(std::string(Banner) + "0 0 0\n").code(),
            StatusCode::InvalidArgument);

  // A banner with nothing after it.
  EXPECT_EQ(statusFor(Banner).code(), StatusCode::ParseError);
  EXPECT_NE(statusFor(Banner).message().find("missing size line"),
            std::string::npos);

  // Upper-triangle coordinate in a symmetric file.
  EXPECT_EQ(statusFor("%%MatrixMarket matrix coordinate real symmetric\n"
                      "2 2 1\n1 2 1.0\n")
                .code(),
            StatusCode::ParseError);

  // Garbage where an entry should be, with the line quoted back.
  sds::support::Status S =
      statusFor(std::string(Banner) + "2 2 1\nnot numbers\n");
  EXPECT_EQ(S.code(), StatusCode::ParseError);
  EXPECT_NE(S.message().find("not numbers"), std::string::npos);

  // Missing file keeps its IOError code through the Status API.
  CSRMatrix M;
  EXPECT_EQ(loadMatrixMarket("/nonexistent/x.mtx", M).code(),
            StatusCode::IOError);
}

TEST(MatrixMarket, TolerantOfRealWorldFormatting) {
  // CRLF line endings, banner keyword case variants, blank lines and
  // comments before the size line, and pattern files (no values).
  CSRMatrix A;
  sds::support::Status S =
      statusFor("%%matrixmarket MATRIX Coordinate REAL General\r\n"
                "% a comment\r\n"
                "\r\n"
                "2 2 3\r\n"
                "1 1 1.5\r\n2 1 2.5\r\n2 2 3.5\r\n",
                &A);
  ASSERT_TRUE(S.ok()) << S.str();
  EXPECT_EQ(A.N, 2);
  EXPECT_EQ(A.nnz(), 3);
  EXPECT_EQ(A.Val, (std::vector<double>{1.5, 2.5, 3.5}));

  CSRMatrix B;
  sds::support::Status SP =
      statusFor("%%MatrixMarket matrix coordinate pattern symmetric\n"
                "3 3 3\n1 1\n2 2\n3 1\n",
                &B);
  ASSERT_TRUE(SP.ok()) << SP.str();
  EXPECT_EQ(B.nnz(), 4); // mirror of (3,1) added, value defaults to 1
  EXPECT_TRUE(B.isWellFormed());
}

TEST(MatrixMarket, SaveLoadStatusRoundTrip) {
  CSRMatrix A = figure1Matrix();
  std::string Path = ::testing::TempDir() + "/sds_mm_status_rt.mtx";
  ASSERT_TRUE(saveMatrixMarket(Path, A).ok());
  CSRMatrix B;
  sds::support::Status S = loadMatrixMarket(Path, B);
  ASSERT_TRUE(S.ok()) << S.str();
  EXPECT_EQ(B.RowPtr, A.RowPtr);
  EXPECT_EQ(B.Col, A.Col);
  EXPECT_EQ(B.Val, A.Val);
  std::remove(Path.c_str());
}
