//===- runtime_kernels_test.cpp - Numeric kernel tests ---------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/runtime/Kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

using namespace sds::rt;

namespace {

CSRMatrix makeLower(int N, int Nnz, int Band, uint64_t Seed) {
  GeneratorConfig C;
  C.N = N;
  C.AvgNnzPerRow = Nnz;
  C.Bandwidth = Band;
  C.Seed = Seed;
  return lowerTriangle(generateSPDLike(C));
}

std::vector<double> randomVector(int N, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_real_distribution<double> Dist(-1, 1);
  std::vector<double> V(static_cast<size_t>(N));
  for (double &X : V)
    X = Dist(Rng);
  return V;
}

double maxAbsDiff(const std::vector<double> &A, const std::vector<double> &B) {
  double M = 0;
  for (size_t I = 0; I < A.size(); ++I)
    M = std::max(M, std::abs(A[I] - B[I]));
  return M;
}

/// Dense multiply L * x for a lower CSR matrix, to verify solves.
std::vector<double> multiplyCSR(const CSRMatrix &L,
                                const std::vector<double> &X) {
  std::vector<double> Y(static_cast<size_t>(L.N), 0);
  for (int I = 0; I < L.N; ++I)
    for (int K = L.RowPtr[I]; K < L.RowPtr[I + 1]; ++K)
      Y[static_cast<size_t>(I)] +=
          L.Val[static_cast<size_t>(K)] *
          X[static_cast<size_t>(L.Col[static_cast<size_t>(K)])];
  return Y;
}

} // namespace

TEST(ForwardSolve, CSRSolvesTriangularSystem) {
  CSRMatrix L = makeLower(300, 7, 25, 11);
  std::vector<double> B = randomVector(L.N, 1);
  std::vector<double> X;
  forwardSolveCSRSerial(L, B, X);
  EXPECT_LT(maxAbsDiff(multiplyCSR(L, X), B), 1e-9);
}

TEST(ForwardSolve, CSCAgreesWithCSR) {
  CSRMatrix L = makeLower(300, 7, 25, 12);
  CSCMatrix LC = toCSC(L);
  std::vector<double> B = randomVector(L.N, 2);
  std::vector<double> X1, X2;
  forwardSolveCSRSerial(L, B, X1);
  forwardSolveCSCSerial(LC, B, X2);
  EXPECT_LT(maxAbsDiff(X1, X2), 1e-10);
}

TEST(GaussSeidel, SweepReducesResidual) {
  CSRMatrix A = generateSPDLike({200, 7, 20, 13});
  std::vector<double> B = randomVector(A.N, 3);
  std::vector<double> X(static_cast<size_t>(A.N), 0.0);
  auto Residual = [&] {
    std::vector<double> AX;
    spmvCSRSerial(A, X, AX);
    double R = 0;
    for (size_t I = 0; I < AX.size(); ++I)
      R += (AX[I] - B[I]) * (AX[I] - B[I]);
    return std::sqrt(R);
  };
  double R0 = Residual();
  gaussSeidelCSRSerial(A, B, X);
  double R1 = Residual();
  gaussSeidelCSRSerial(A, B, X);
  double R2 = Residual();
  EXPECT_LT(R1, R0 * 0.9);
  EXPECT_LT(R2, R1);
}

TEST(SpMV, MatchesDenseReference) {
  CSRMatrix A = generateSPDLike({50, 5, 10, 14});
  std::vector<double> X = randomVector(A.N, 4);
  std::vector<double> Y;
  spmvCSRSerial(A, X, Y);
  EXPECT_LT(maxAbsDiff(Y, multiplyCSR(A, X)), 1e-12);
}

TEST(IncompleteCholesky, ExactOnDenseBandPattern) {
  // When the pattern admits no fill (a dense band), IC0 equals the exact
  // Cholesky factor: L L^T must reproduce A on and off the pattern.
  int N = 40, Band = 4;
  CSRMatrix A;
  A.N = N;
  A.RowPtr.assign(N + 1, 0);
  for (int I = 0; I < N; ++I)
    for (int J = std::max(0, I - Band); J <= I; ++J) {
      A.Col.push_back(J);
      A.Val.push_back(I == J ? 2.0 * Band + 1 : -0.5);
      ++A.RowPtr[I + 1];
    }
  for (int I = 0; I < N; ++I)
    A.RowPtr[I + 1] += A.RowPtr[I];
  CSCMatrix L = toCSC(A);
  incompleteCholeskyCSCSerial(L);
  // Check (L L^T)(i, j) == A(i, j) for all i, j within the band.
  CSRMatrix LR = toCSR(L);
  auto Entry = [&](const CSRMatrix &M, int I, int J) {
    for (int K = M.RowPtr[I]; K < M.RowPtr[I + 1]; ++K)
      if (M.Col[static_cast<size_t>(K)] == J)
        return M.Val[static_cast<size_t>(K)];
    return 0.0;
  };
  for (int I = 0; I < N; ++I)
    for (int J = std::max(0, I - Band); J <= I; ++J) {
      double Sum = 0;
      for (int K = 0; K <= J; ++K)
        Sum += Entry(LR, I, K) * Entry(LR, J, K);
      EXPECT_NEAR(Sum, I == J ? 2.0 * Band + 1 : -0.5, 1e-9)
          << I << "," << J;
    }
}

TEST(IncompleteCholesky, LeftCholeskyAgrees) {
  // Right-looking IC0 (Figure 4) and left-looking static Cholesky are the
  // same computation in a different loop order.
  CSRMatrix LP = makeLower(250, 9, 30, 15);
  CSCMatrix L1 = toCSC(LP), L2 = toCSC(LP);
  incompleteCholeskyCSCSerial(L1);
  leftCholeskyCSCSerial(L2);
  EXPECT_LT(maxAbsDiff(L1.Val, L2.Val), 1e-9);
}

TEST(IncompleteLU, ReproducesLUOnNoFillPattern) {
  // Dense-band pattern: ILU0 equals exact LU; check L*U == A.
  int N = 30, Band = 3;
  CSRMatrix A;
  A.N = N;
  A.RowPtr.assign(N + 1, 0);
  for (int I = 0; I < N; ++I)
    for (int J = std::max(0, I - Band); J <= std::min(N - 1, I + Band);
         ++J) {
      A.Col.push_back(J);
      A.Val.push_back(I == J ? 4.0 * Band : 1.0 / (1 + std::abs(I - J)));
      ++A.RowPtr[I + 1];
    }
  for (int I = 0; I < N; ++I)
    A.RowPtr[I + 1] += A.RowPtr[I];
  CSRMatrix F = A;
  incompleteLU0CSRSerial(F);
  auto Entry = [&](const CSRMatrix &M, int I, int J) {
    for (int K = M.RowPtr[I]; K < M.RowPtr[I + 1]; ++K)
      if (M.Col[static_cast<size_t>(K)] == J)
        return M.Val[static_cast<size_t>(K)];
    return 0.0;
  };
  auto LEntry = [&](int I, int J) {
    if (J > I)
      return 0.0;
    if (J == I)
      return 1.0;
    return Entry(F, I, J);
  };
  auto UEntry = [&](int I, int J) { return J < I ? 0.0 : Entry(F, I, J); };
  for (int I = 0; I < N; ++I)
    for (int J = std::max(0, I - Band); J <= std::min(N - 1, I + Band);
         ++J) {
      double Sum = 0;
      for (int K = 0; K < N; ++K)
        Sum += LEntry(I, K) * UEntry(K, J);
      EXPECT_NEAR(Sum, Entry(A, I, J), 1e-9) << I << "," << J;
    }
}

//===----------------------------------------------------------------------===//
// Wavefront executors match serial results.
//===----------------------------------------------------------------------===//

class WavefrontExec : public ::testing::TestWithParam<int> {};

TEST_P(WavefrontExec, ForwardSolveMatchesSerial) {
  CSRMatrix L = makeLower(400, 8, 30, static_cast<uint64_t>(GetParam()));
  CSCMatrix LC = toCSC(L);
  std::vector<double> B = randomVector(L.N, 5);
  std::vector<double> XSer, XCSR, XCSC;
  forwardSolveCSRSerial(L, B, XSer);

  DependenceGraph G = exactForwardSolveGraph(LC);
  WavefrontSchedule Plain = scheduleLevelSets(G, 4);
  ASSERT_TRUE(Plain.respects(G));
  forwardSolveCSRWavefront(L, B, XCSR, Plain);
  EXPECT_LT(maxAbsDiff(XSer, XCSR), 1e-10);

  LBCConfig C;
  C.NumThreads = 4;
  C.MinWorkPerThread = 8;
  WavefrontSchedule Coarse = scheduleLBC(G, C);
  ASSERT_TRUE(Coarse.respects(G));
  forwardSolveCSCWavefront(LC, B, XCSC, Coarse);
  EXPECT_LT(maxAbsDiff(XSer, XCSC), 1e-9);
}

TEST_P(WavefrontExec, GaussSeidelMatchesSerial) {
  CSRMatrix A =
      generateSPDLike({300, 7, 24, static_cast<uint64_t>(GetParam())});
  std::vector<double> B = randomVector(A.N, 6);
  std::vector<double> XSer(static_cast<size_t>(A.N), 0.0), XPar = XSer;
  gaussSeidelCSRSerial(A, B, XSer);

  // Gauss-Seidel's dependence graph: x[i] depends on x[col] for every
  // off-diagonal entry (both directions of access, one direction of time:
  // earlier iterations only).
  DependenceGraph G(A.N);
  for (int I = 0; I < A.N; ++I)
    for (int K = A.RowPtr[I]; K < A.RowPtr[I + 1]; ++K) {
      int C = A.Col[static_cast<size_t>(K)];
      if (C < I)
        G.addEdge(C, I);
    }
  G.finalize();
  WavefrontSchedule S = scheduleLevelSets(G, 4);
  ASSERT_TRUE(S.respects(G));
  gaussSeidelCSRWavefront(A, B, XPar, S);
  EXPECT_LT(maxAbsDiff(XSer, XPar), 1e-10);
}

TEST_P(WavefrontExec, IncompleteCholeskyMatchesSerial) {
  CSRMatrix LP = makeLower(300, 8, 24, static_cast<uint64_t>(GetParam()));
  CSCMatrix LSer = toCSC(LP), LPar = toCSC(LP), LLbc = toCSC(LP);
  incompleteCholeskyCSCSerial(LSer);

  DependenceGraph G = exactCholeskyGraph(LPar);
  WavefrontSchedule S = scheduleLevelSets(G, 4);
  ASSERT_TRUE(S.respects(G));
  incompleteCholeskyCSCWavefront(LPar, S);
  EXPECT_LT(maxAbsDiff(LSer.Val, LPar.Val), 1e-9);

  LBCConfig C;
  C.NumThreads = 4;
  C.MinWorkPerThread = 4;
  WavefrontSchedule Coarse = scheduleLBC(G, C);
  incompleteCholeskyCSCWavefront(LLbc, Coarse);
  EXPECT_LT(maxAbsDiff(LSer.Val, LLbc.Val), 1e-9);
}

TEST_P(WavefrontExec, LeftCholeskyMatchesSerial) {
  CSRMatrix LP = makeLower(300, 8, 24, static_cast<uint64_t>(GetParam()));
  CSCMatrix LSer = toCSC(LP), LPar = toCSC(LP);
  leftCholeskyCSCSerial(LSer);
  DependenceGraph G = exactCholeskyGraph(LPar);
  WavefrontSchedule S = scheduleLevelSets(G, 4);
  leftCholeskyCSCWavefront(LPar, S);
  EXPECT_LT(maxAbsDiff(LSer.Val, LPar.Val), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WavefrontExec, ::testing::Range(100, 106));
