//===- presburger_simplex_test.cpp - Exact rational simplex tests --------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/presburger/Simplex.h"

#include <gtest/gtest.h>

using namespace sds;
using namespace sds::presburger;

namespace {
std::vector<int64_t> row(std::initializer_list<int64_t> L) { return L; }
} // namespace

TEST(Simplex, EmptySystemFeasible) {
  Simplex S(2);
  EXPECT_EQ(S.checkFeasible(), LPStatus::Optimal);
}

TEST(Simplex, SimpleFeasible) {
  // x >= 1, y >= 2, x + y <= 10.
  Simplex S(2);
  S.addInequality(row({1, 0, -1}));
  S.addInequality(row({0, 1, -2}));
  S.addInequality(row({-1, -1, 10}));
  EXPECT_EQ(S.checkFeasible(), LPStatus::Optimal);
  auto P = S.samplePoint();
  Fraction X = P[0], Y = P[1];
  EXPECT_GE(X, Fraction(1));
  EXPECT_GE(Y, Fraction(2));
  EXPECT_LE(X + Y, Fraction(10));
}

TEST(Simplex, InfeasibleBounds) {
  // x >= 5 and x <= 3.
  Simplex S(1);
  S.addInequality(row({1, -5}));
  S.addInequality(row({-1, 3}));
  EXPECT_EQ(S.checkFeasible(), LPStatus::Infeasible);
}

TEST(Simplex, InfeasibleEqualityChain) {
  // x = y, y = z, x - z = 1 is contradictory.
  Simplex S(3);
  S.addEquality(row({1, -1, 0, 0}));
  S.addEquality(row({0, 1, -1, 0}));
  S.addEquality(row({1, 0, -1, -1}));
  EXPECT_EQ(S.checkFeasible(), LPStatus::Infeasible);
}

TEST(Simplex, TrivialRows) {
  Simplex S(1);
  S.addInequality(row({0, 5}));  // 5 >= 0, fine
  S.addEquality(row({0, 0}));    // 0 == 0, fine
  EXPECT_EQ(S.checkFeasible(), LPStatus::Optimal);
  Simplex S2(1);
  S2.addInequality(row({0, -3})); // -3 >= 0, contradiction
  EXPECT_EQ(S2.checkFeasible(), LPStatus::Infeasible);
  Simplex S3(1);
  S3.addEquality(row({0, 2})); // 2 == 0, contradiction
  EXPECT_EQ(S3.checkFeasible(), LPStatus::Infeasible);
}

TEST(Simplex, MinimizeBounded) {
  // Minimize x + y with x >= 3, y >= 4.
  Simplex S(2);
  S.addInequality(row({1, 0, -3}));
  S.addInequality(row({0, 1, -4}));
  Fraction Opt;
  EXPECT_EQ(S.minimize(row({1, 1, 0}), Opt), LPStatus::Optimal);
  EXPECT_EQ(Opt, Fraction(7));
}

TEST(Simplex, MinimizeWithConstantTerm) {
  Simplex S(1);
  S.addInequality(row({1, 0})); // x >= 0
  Fraction Opt;
  EXPECT_EQ(S.minimize(row({2, 5}), Opt), LPStatus::Optimal);
  EXPECT_EQ(Opt, Fraction(5)); // min 2x + 5 at x = 0
}

TEST(Simplex, MinimizeUnbounded) {
  Simplex S(1);
  S.addInequality(row({-1, 10})); // x <= 10
  Fraction Opt;
  EXPECT_EQ(S.minimize(row({1, 0}), Opt), LPStatus::Unbounded);
}

TEST(Simplex, UnboundedObjectiveNoConstraints) {
  Simplex S(1);
  Fraction Opt;
  EXPECT_EQ(S.minimize(row({1, 0}), Opt), LPStatus::Unbounded);
}

TEST(Simplex, FractionalOptimum) {
  // 2x = 1 has rational solution x = 1/2.
  Simplex S(1);
  S.addEquality(row({2, -1}));
  EXPECT_EQ(S.checkFeasible(), LPStatus::Optimal);
  EXPECT_EQ(S.samplePoint()[0], Fraction(1, 2));
}

TEST(Simplex, NegativeSolution) {
  // x <= -5.
  Simplex S(1);
  S.addInequality(row({-1, -5}));
  EXPECT_EQ(S.checkFeasible(), LPStatus::Optimal);
  EXPECT_LE(S.samplePoint()[0], Fraction(-5));
}

TEST(Simplex, DegenerateCyclePotential) {
  // A classic degenerate system; Bland's rule must terminate.
  Simplex S(2);
  S.addInequality(row({1, 0, 0}));   // x >= 0
  S.addInequality(row({0, 1, 0}));   // y >= 0
  S.addInequality(row({-1, -1, 0})); // x + y <= 0 -> x = y = 0
  Fraction Opt;
  EXPECT_EQ(S.minimize(row({-1, -2, 0}), Opt), LPStatus::Optimal);
  EXPECT_EQ(Opt, Fraction(0));
}

TEST(Simplex, RedundantEqualities) {
  // x = 1 stated twice plus an implied combination.
  Simplex S(2);
  S.addEquality(row({1, 0, -1}));
  S.addEquality(row({1, 0, -1}));
  S.addEquality(row({2, 0, -2}));
  S.addEquality(row({0, 1, -3}));
  EXPECT_EQ(S.checkFeasible(), LPStatus::Optimal);
  EXPECT_EQ(S.samplePoint()[0], Fraction(1));
  EXPECT_EQ(S.samplePoint()[1], Fraction(3));
}

TEST(Simplex, DependenceShapedSystem) {
  // Shape of a typical dependence system: i < i', both in [0, 100),
  // k in [ri, ri+5), k' in [ri', ri'+5), k = k', ri' >= ri + 6.
  // Infeasible because the k-windows cannot overlap.
  // Vars: i, i', k, k', ri, ri'.
  Simplex S(6);
  S.addInequality(row({-1, 1, 0, 0, 0, 0, -1})); // i' - i - 1 >= 0
  S.addInequality(row({1, 0, 0, 0, 0, 0, 0}));   // i >= 0
  S.addInequality(row({0, -1, 0, 0, 0, 0, 99})); // i' <= 99
  S.addInequality(row({0, 0, 1, 0, -1, 0, 0}));  // k >= ri
  S.addInequality(row({0, 0, -1, 0, 1, 0, 4}));  // k <= ri + 4
  S.addInequality(row({0, 0, 0, 1, 0, -1, 0}));  // k' >= ri'
  S.addInequality(row({0, 0, 0, -1, 0, 1, 4}));  // k' <= ri' + 4
  S.addEquality(row({0, 0, 1, -1, 0, 0, 0}));    // k = k'
  S.addInequality(row({0, 0, 0, 0, -1, 1, -6})); // ri' >= ri + 6
  EXPECT_EQ(S.checkFeasible(), LPStatus::Infeasible);
}
