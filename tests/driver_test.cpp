//===- driver_test.cpp - Driver glue tests ---------------------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/driver/Driver.h"

#include <gtest/gtest.h>

using namespace sds;
using namespace sds::rt;

namespace {

CSRMatrix tiny() {
  CSRMatrix A;
  A.N = 3;
  A.RowPtr = {0, 1, 3, 5};
  A.Col = {0, 0, 1, 1, 2};
  A.Val = {2, -1, 2, -1, 2};
  return A;
}

} // namespace

TEST(Bindings, CSRBindsArraysAndParams) {
  CSRMatrix A = tiny();
  auto Env = driver::bindCSR(A, A.diagonalPositions());
  EXPECT_EQ(Env.Params.at("n"), 3);
  EXPECT_EQ(Env.Params.at("nnz"), 5);
  EXPECT_EQ(Env.Arrays.at("rowptr")(2), 3);
  EXPECT_EQ(Env.Arrays.at("col")(1), 0);
  EXPECT_EQ(Env.Arrays.at("diag")(1), 2); // diagonal of row 1 at position 2
}

TEST(Bindings, CSCBindsPruneSets) {
  CSCMatrix L = toCSC(tiny());
  PruneSets P = buildPruneSets(L);
  auto Env = driver::bindCSC(L, &P);
  EXPECT_TRUE(Env.Arrays.count("pruneptr"));
  EXPECT_TRUE(Env.Arrays.count("pruneset"));
  // Row 1's prune list holds column 0 (entry (1,0)).
  EXPECT_EQ(Env.Arrays.at("pruneptr")(1), 0);
  EXPECT_EQ(Env.Arrays.at("pruneptr")(2), 1);
  EXPECT_EQ(Env.Arrays.at("pruneset")(0), 0);
}

TEST(Bindings, OutOfRangeProbesReturnSentinel) {
  CSRMatrix A = tiny();
  auto Env = driver::bindCSR(A);
  EXPECT_EQ(Env.Arrays.at("col")(-1), codegen::UFEnvironment::OutOfRange);
  EXPECT_EQ(Env.Arrays.at("col")(99), codegen::UFEnvironment::OutOfRange);
}

TEST(PruneSets, MatchStructure) {
  // For each (row r, column k) with k < r and L(r,k) != 0, exactly one
  // prune entry exists and PosOf points at that coefficient.
  CSRMatrix Lower = lowerTriangle(generateSPDLike({60, 6, 12, 9}));
  CSCMatrix L = toCSC(Lower);
  PruneSets P = buildPruneSets(L);
  ASSERT_EQ(P.Ptr.size(), static_cast<size_t>(L.N) + 1);
  for (int R = 0; R < L.N; ++R) {
    for (int T = P.Ptr[R]; T < P.Ptr[R + 1]; ++T) {
      int K = P.ColOf[T];
      int Pos = P.PosOf[T];
      EXPECT_LT(K, R);
      EXPECT_GE(Pos, L.ColPtr[K] + 1);
      EXPECT_LT(Pos, L.ColPtr[K + 1]);
      EXPECT_EQ(L.RowIdx[Pos], R);
    }
  }
  // Total entries = number of off-diagonal coefficients.
  EXPECT_EQ(P.ColOf.size(),
            static_cast<size_t>(L.nnz() - L.N));
}

TEST(RunInspectors, FiltersOutOfRangeEdges) {
  // A hand-built plan that emits an out-of-range destination must not
  // corrupt the graph.
  deps::PipelineResult Analysis =
      deps::analyzeKernel(kernels::forwardSolveCSR());
  CSRMatrix A = tiny();
  auto Env = driver::bindCSR(A);
  // Lie about n so the inspector ranges over more rows than the graph has.
  Env.Params["n"] = 10;
  driver::InspectionResult R = driver::runInspectors(Analysis, Env, A.N);
  for (int U = 0; U < R.Graph.numNodes(); ++U)
    for (int V : R.Graph.successors(U)) {
      EXPECT_GE(V, 0);
      EXPECT_LT(V, A.N);
    }
}

TEST(RunInspectors, CountsInspectorsAndVisits) {
  deps::PipelineResult Analysis =
      deps::analyzeKernel(kernels::gaussSeidelCSR());
  CSRMatrix A = generateSPDLike({80, 6, 12, 21});
  auto Env = driver::bindCSR(A, A.diagonalPositions());
  driver::InspectionResult R = driver::runInspectors(Analysis, Env, A.N);
  EXPECT_EQ(R.NumInspectors, 2u);
  EXPECT_GT(R.InspectorVisits, static_cast<uint64_t>(A.N));
  EXPECT_GT(R.Graph.numEdges(), 0u);
  EXPECT_TRUE(R.Graph.isForwardOnly());
}

TEST(RunInspectors, PerRunAccountingIsConsistent) {
  // The per-inspector breakdown must tile the totals exactly: one Run per
  // inspector, visits summing to InspectorVisits, and (pre-dedup) at least
  // as many emitted edges as the finalized graph keeps.
  deps::PipelineResult Analysis =
      deps::analyzeKernel(kernels::gaussSeidelCSR());
  CSRMatrix A = generateSPDLike({80, 6, 12, 21});
  auto Env = driver::bindCSR(A, A.diagonalPositions());
  driver::InspectionResult R = driver::runInspectors(Analysis, Env, A.N);

  ASSERT_EQ(R.Runs.size(), static_cast<size_t>(R.NumInspectors));
  uint64_t SumVisits = 0, SumEdges = 0;
  for (const driver::InspectorRun &Run : R.Runs) {
    EXPECT_FALSE(Run.Label.empty());
    EXPECT_GT(Run.Visits, 0u) << Run.Label;
    EXPECT_GE(Run.Seconds, 0.0);
    SumVisits += Run.Visits;
    SumEdges += Run.Edges;
  }
  EXPECT_EQ(SumVisits, R.InspectorVisits);
  EXPECT_GE(SumEdges, R.Graph.numEdges());
  EXPECT_GE(R.Seconds, 0.0);
}

TEST(RunInspectors, NestedLoopInspectorIsNotUnderCounted) {
  // Forward solve CSR's surviving inspector walks the below-diagonal
  // entries of each row inside the row loop. Visits counts every variable
  // binding at every depth, so on tiny() it must be at least
  // n (outer) + nnz - n (inner: the off-diagonal entries) — a
  // per-outer-iteration count would report only n and under-count the
  // nested work.
  deps::PipelineResult Analysis =
      deps::analyzeKernel(kernels::forwardSolveCSR());
  CSRMatrix A = tiny();
  auto Env = driver::bindCSR(A);
  driver::InspectionResult R = driver::runInspectors(Analysis, Env, A.N);
  ASSERT_EQ(R.NumInspectors, 1u);
  EXPECT_GT(R.InspectorVisits, static_cast<uint64_t>(A.N));
  EXPECT_GE(R.InspectorVisits, static_cast<uint64_t>(A.nnz()));
  EXPECT_EQ(R.Runs[0].Visits, R.InspectorVisits);
}
