//===- driver_test.cpp - Driver glue tests ---------------------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/driver/Driver.h"

#include <gtest/gtest.h>

using namespace sds;
using namespace sds::rt;

namespace {

CSRMatrix tiny() {
  CSRMatrix A;
  A.N = 3;
  A.RowPtr = {0, 1, 3, 5};
  A.Col = {0, 0, 1, 1, 2};
  A.Val = {2, -1, 2, -1, 2};
  return A;
}

} // namespace

TEST(Bindings, CSRBindsArraysAndParams) {
  CSRMatrix A = tiny();
  auto Env = driver::bindCSR(A, A.diagonalPositions());
  EXPECT_EQ(Env.Params.at("n"), 3);
  EXPECT_EQ(Env.Params.at("nnz"), 5);
  EXPECT_EQ(Env.Arrays.at("rowptr")(2), 3);
  EXPECT_EQ(Env.Arrays.at("col")(1), 0);
  EXPECT_EQ(Env.Arrays.at("diag")(1), 2); // diagonal of row 1 at position 2
}

TEST(Bindings, CSCBindsPruneSets) {
  CSCMatrix L = toCSC(tiny());
  PruneSets P = buildPruneSets(L);
  auto Env = driver::bindCSC(L, &P);
  EXPECT_TRUE(Env.Arrays.count("pruneptr"));
  EXPECT_TRUE(Env.Arrays.count("pruneset"));
  // Row 1's prune list holds column 0 (entry (1,0)).
  EXPECT_EQ(Env.Arrays.at("pruneptr")(1), 0);
  EXPECT_EQ(Env.Arrays.at("pruneptr")(2), 1);
  EXPECT_EQ(Env.Arrays.at("pruneset")(0), 0);
}

TEST(Bindings, OutOfRangeProbesReturnSentinel) {
  CSRMatrix A = tiny();
  auto Env = driver::bindCSR(A);
  EXPECT_EQ(Env.Arrays.at("col")(-1), codegen::UFEnvironment::OutOfRange);
  EXPECT_EQ(Env.Arrays.at("col")(99), codegen::UFEnvironment::OutOfRange);
}

TEST(PruneSets, MatchStructure) {
  // For each (row r, column k) with k < r and L(r,k) != 0, exactly one
  // prune entry exists and PosOf points at that coefficient.
  CSRMatrix Lower = lowerTriangle(generateSPDLike({60, 6, 12, 9}));
  CSCMatrix L = toCSC(Lower);
  PruneSets P = buildPruneSets(L);
  ASSERT_EQ(P.Ptr.size(), static_cast<size_t>(L.N) + 1);
  for (int R = 0; R < L.N; ++R) {
    for (int T = P.Ptr[R]; T < P.Ptr[R + 1]; ++T) {
      int K = P.ColOf[T];
      int Pos = P.PosOf[T];
      EXPECT_LT(K, R);
      EXPECT_GE(Pos, L.ColPtr[K] + 1);
      EXPECT_LT(Pos, L.ColPtr[K + 1]);
      EXPECT_EQ(L.RowIdx[Pos], R);
    }
  }
  // Total entries = number of off-diagonal coefficients.
  EXPECT_EQ(P.ColOf.size(),
            static_cast<size_t>(L.nnz() - L.N));
}

TEST(RunInspectors, FiltersOutOfRangeEdges) {
  // A hand-built plan that emits an out-of-range destination must not
  // corrupt the graph.
  deps::PipelineResult Analysis =
      deps::analyzeKernel(kernels::forwardSolveCSR());
  CSRMatrix A = tiny();
  auto Env = driver::bindCSR(A);
  // Lie about n so the inspector ranges over more rows than the graph has.
  Env.Params["n"] = 10;
  driver::InspectionResult R = driver::runInspectors(Analysis, Env, A.N);
  for (int U = 0; U < R.Graph.numNodes(); ++U)
    for (int V : R.Graph.successors(U)) {
      EXPECT_GE(V, 0);
      EXPECT_LT(V, A.N);
    }
}

TEST(RunInspectors, CountsInspectorsAndVisits) {
  deps::PipelineResult Analysis =
      deps::analyzeKernel(kernels::gaussSeidelCSR());
  CSRMatrix A = generateSPDLike({80, 6, 12, 21});
  auto Env = driver::bindCSR(A, A.diagonalPositions());
  driver::InspectionResult R = driver::runInspectors(Analysis, Env, A.N);
  EXPECT_EQ(R.NumInspectors, 2u);
  EXPECT_GT(R.InspectorVisits, static_cast<uint64_t>(A.N));
  EXPECT_GT(R.Graph.numEdges(), 0u);
  EXPECT_TRUE(R.Graph.isForwardOnly());
}
