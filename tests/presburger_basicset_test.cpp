//===- presburger_basicset_test.cpp - Integer polyhedron tests -----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/presburger/BasicSet.h"

#include <gtest/gtest.h>

#include <random>

using namespace sds::presburger;

namespace {
std::vector<int64_t> row(std::initializer_list<int64_t> L) { return L; }
} // namespace

TEST(BasicSet, NormalizeDetectsTrivialEmpty) {
  BasicSet S(1);
  S.addInequality(row({0, -1})); // -1 >= 0
  EXPECT_FALSE(S.normalize());

  BasicSet S2(1);
  S2.addEquality(row({0, 3})); // 3 == 0
  EXPECT_FALSE(S2.normalize());

  BasicSet S3(1);
  S3.addEquality(row({2, -1})); // 2x == 1: no integer solution
  EXPECT_FALSE(S3.normalize());
}

TEST(BasicSet, NormalizeTightensInequalities) {
  BasicSet S(1);
  S.addInequality(row({2, -1})); // 2x >= 1  ==>  x >= 1 (integer tightening)
  ASSERT_TRUE(S.normalize());
  ASSERT_EQ(S.inequalities().size(), 1u);
  EXPECT_EQ(S.inequalities()[0], row({1, -1}));
}

TEST(BasicSet, EmptinessBasics) {
  BasicSet S(2);
  S.addInequality(row({1, 0, 0}));    // x >= 0
  S.addInequality(row({0, 1, 0}));    // y >= 0
  S.addInequality(row({-1, -1, 5})); // x + y <= 5
  EXPECT_EQ(S.isEmpty(), Ternary::False);

  S.addInequality(row({1, 1, -6})); // x + y >= 6: contradiction
  EXPECT_EQ(S.isEmpty(), Ternary::True);
}

TEST(BasicSet, IntegerOnlyEmptiness) {
  // 2x == 2y + 1 is rationally feasible but has no integer solutions.
  BasicSet S(2);
  S.addEquality(row({2, -2, -1}));
  EXPECT_EQ(S.isEmpty(), Ternary::True);
}

TEST(BasicSet, IntegerEmptinessNeedsBranching) {
  // 3x + 3y == 1 within a box: rationally feasible, integrally empty,
  // and not caught by a single GCD test once extra constraints join in.
  BasicSet S(2);
  S.addEquality(row({3, 3, -1}));
  S.addInequality(row({1, 0, 10}));  // x >= -10
  S.addInequality(row({-1, 0, 10})); // x <= 10
  EXPECT_EQ(S.isEmpty(), Ternary::True);

  // 2x >= 1, 2x <= 1: x = 1/2 only.
  BasicSet S2(1);
  S2.addInequality(row({2, -1}));
  S2.addInequality(row({-2, 1}));
  EXPECT_EQ(S2.isEmpty(), Ternary::True);
}

TEST(BasicSet, SampleIntegerPoint) {
  BasicSet S(2);
  S.addInequality(row({1, 0, -3}));  // x >= 3
  S.addInequality(row({-1, 0, 7}));  // x <= 7
  S.addEquality(row({1, -1, 0}));    // x == y
  auto P = S.sampleIntegerPoint();
  ASSERT_TRUE(P.has_value());
  EXPECT_GE((*P)[0], 3);
  EXPECT_LE((*P)[0], 7);
  EXPECT_EQ((*P)[0], (*P)[1]);
}

TEST(BasicSet, DetectImplicitEqualities) {
  // x <= y and y <= x force x == y.
  BasicSet S(2);
  S.addInequality(row({1, -1, 0}));  // x - y >= 0
  S.addInequality(row({-1, 1, 0}));  // y - x >= 0
  S.addInequality(row({1, 0, 0}));   // x >= 0 (not tight)
  unsigned N = S.detectImplicitEqualities();
  EXPECT_EQ(N, 2u);
  ASSERT_GE(S.equalities().size(), 1u);
  // Remaining inequality x >= 0 must not be promoted.
  EXPECT_EQ(S.inequalities().size(), 1u);
}

TEST(BasicSet, DetectImplicitEqualityViaChain) {
  // The paper's §4.1 pattern: i' <= g and g <= i' arrive from different
  // sources; the promotion must find i' == g.
  BasicSet S(2); // vars: ip, g
  S.addInequality(row({-1, 1, 0})); // g - ip >= 0
  S.addInequality(row({1, -1, 0})); // ip - g >= 0
  EXPECT_EQ(S.detectImplicitEqualities(), 2u);
}

TEST(BasicSet, ProjectOutExactUnitCoefficients) {
  // S = { (x, y) : 0 <= y <= 10, x == y }. Projecting y gives 0 <= x <= 10.
  BasicSet S(2);
  S.addInequality(row({0, 1, 0}));
  S.addInequality(row({0, -1, 10}));
  S.addEquality(row({1, -1, 0}));
  auto R = S.projectOut({1});
  EXPECT_TRUE(R.Exact);
  BasicSet Expect(1);
  Expect.addInequality(row({1, 0}));
  Expect.addInequality(row({-1, 10}));
  EXPECT_EQ(R.Set.isSubsetOf(Expect), Ternary::True);
  EXPECT_EQ(Expect.isSubsetOf(R.Set), Ternary::True);
}

TEST(BasicSet, ProjectOutFourierMotzkin) {
  // S = { (x, y) : x <= y, y <= 5 }: projecting y leaves x <= 5.
  BasicSet S(2);
  S.addInequality(row({-1, 1, 0}));
  S.addInequality(row({0, -1, 5}));
  auto R = S.projectOut({1});
  EXPECT_TRUE(R.Exact);
  BasicSet Expect(1);
  Expect.addInequality(row({-1, 5}));
  EXPECT_EQ(R.Set.isSubsetOf(Expect), Ternary::True);
  EXPECT_EQ(Expect.isSubsetOf(R.Set), Ternary::True);
}

TEST(BasicSet, ProjectOutInexactFlagged) {
  // 2y == x with y existential describes even x; FM/equality elimination
  // cannot represent that exactly, so the result must be flagged inexact.
  BasicSet S(2);
  S.addEquality(row({-1, 2, 0})); // 2y - x == 0
  S.addInequality(row({0, 1, 0}));
  S.addInequality(row({0, -1, 10}));
  auto R = S.projectOut({1});
  EXPECT_FALSE(R.Exact);
}

TEST(BasicSet, ProjectOutEmptyInput) {
  BasicSet S(2);
  S.addInequality(row({0, 0, -1}));
  auto R = S.projectOut({1});
  EXPECT_TRUE(R.Exact);
  EXPECT_EQ(R.Set.isEmpty(), Ternary::True);
}

TEST(BasicSet, SubstituteVariable) {
  // S = { (x, y) : 0 <= x + y <= 4 }; substitute y := x + 1.
  BasicSet S(2);
  S.addInequality(row({1, 1, 0}));
  S.addInequality(row({-1, -1, 4}));
  BasicSet T = S.substitute(1, row({1, 0, 1}));
  EXPECT_EQ(T.numVars(), 1u);
  // Now 0 <= 2x + 1 <= 4, i.e. x in {0, 1} over the integers.
  EXPECT_EQ(T.isEmpty(), Ternary::False);
  BasicSet Box(1);
  Box.addInequality(row({1, 0}));
  Box.addInequality(row({-1, 1}));
  EXPECT_EQ(T.isSubsetOf(Box), Ternary::True);
}

TEST(BasicSet, SubsetBasics) {
  BasicSet Inner(1), Outer(1);
  Inner.addInequality(row({1, -2}));  // x >= 2
  Inner.addInequality(row({-1, 4}));  // x <= 4
  Outer.addInequality(row({1, 0}));   // x >= 0
  Outer.addInequality(row({-1, 10})); // x <= 10
  EXPECT_EQ(Inner.isSubsetOf(Outer), Ternary::True);
  EXPECT_EQ(Outer.isSubsetOf(Inner), Ternary::False);
}

TEST(BasicSet, SubsetWithEqualities) {
  BasicSet Line(2), HalfPlane(2);
  Line.addEquality(row({1, -1, 0})); // x == y
  Line.addInequality(row({1, 0, 0}));
  HalfPlane.addInequality(row({1, -1, 0})); // x >= y
  EXPECT_EQ(Line.isSubsetOf(HalfPlane), Ternary::True);
  EXPECT_EQ(HalfPlane.isSubsetOf(Line), Ternary::False);
}

TEST(BasicSet, InsertVars) {
  BasicSet S(2);
  S.addInequality(row({1, -1, 3}));
  BasicSet T = S.insertVars(1, 2);
  EXPECT_EQ(T.numVars(), 4u);
  ASSERT_EQ(T.inequalities().size(), 1u);
  EXPECT_EQ(T.inequalities()[0], row({1, 0, 0, -1, 3}));
}

TEST(BasicSet, PrintReadable) {
  BasicSet S(2);
  S.addEquality(row({1, -1, 0}));
  S.addInequality(row({1, 0, -2}));
  std::string Str = S.str({"i", "j"});
  EXPECT_NE(Str.find("i - j == 0"), std::string::npos);
  EXPECT_NE(Str.find("i - 2 >= 0"), std::string::npos);
}

TEST(SetUnion, EmptinessAndSubset) {
  BasicSet A(1), B(1), C(1);
  A.addInequality(row({1, 0}));    // x >= 0
  A.addInequality(row({-1, 3}));   // x <= 3
  B.addInequality(row({1, -5}));   // x >= 5
  B.addInequality(row({-1, 8}));   // x <= 8
  C.addInequality(row({1, 0}));    // x >= 0
  C.addInequality(row({-1, 10}));  // x <= 10

  SetUnion U;
  U.add(A);
  U.add(B);
  EXPECT_EQ(U.isEmpty(), Ternary::False);
  EXPECT_EQ(U.isSubsetOf(SetUnion(C)), Ternary::True);
  // C is not inside A ∪ B (the gap (3,5) matters only rationally, but 4 is
  // an integer witness).
  EXPECT_NE(SetUnion(C).isSubsetOf(U), Ternary::True);
}

TEST(SetUnion, EmptyUnionIsEmpty) {
  SetUnion U;
  EXPECT_EQ(U.isEmpty(), Ternary::True);
}

//===----------------------------------------------------------------------===//
// Property-style randomized cross-check: emptiness and subset vs brute force
// over a small box.
//===----------------------------------------------------------------------===//

namespace {

/// Enumerate all integer points of `S` within [-B, B]^n by brute force.
std::vector<std::vector<int64_t>> enumerateBox(const BasicSet &S, int64_t B) {
  std::vector<std::vector<int64_t>> Points;
  unsigned N = S.numVars();
  std::vector<int64_t> P(N, -B);
  while (true) {
    bool Ok = true;
    for (const auto &Row : S.equalities()) {
      int64_t V = Row[N];
      for (unsigned J = 0; J < N; ++J)
        V += Row[J] * P[J];
      if (V != 0) {
        Ok = false;
        break;
      }
    }
    for (const auto &Row : S.inequalities()) {
      if (!Ok)
        break;
      int64_t V = Row[N];
      for (unsigned J = 0; J < N; ++J)
        V += Row[J] * P[J];
      if (V < 0)
        Ok = false;
    }
    if (Ok)
      Points.push_back(P);
    unsigned J = 0;
    for (; J < N; ++J) {
      if (P[J] < B) {
        ++P[J];
        break;
      }
      P[J] = -B;
    }
    if (J == N)
      break;
  }
  return Points;
}

BasicSet randomBoxedSet(std::mt19937 &Rng, unsigned NumVars, int64_t B) {
  BasicSet S(NumVars);
  // Box constraints keep everything bounded so brute force is exact.
  for (unsigned J = 0; J < NumVars; ++J) {
    std::vector<int64_t> Lo(NumVars + 1, 0), Hi(NumVars + 1, 0);
    Lo[J] = 1;
    Lo[NumVars] = B;
    Hi[J] = -1;
    Hi[NumVars] = B;
    S.addInequality(Lo);
    S.addInequality(Hi);
  }
  std::uniform_int_distribution<int> Coef(-2, 2);
  std::uniform_int_distribution<int> Cst(-3, 3);
  std::uniform_int_distribution<int> NumRows(1, 3);
  int Rows = NumRows(Rng);
  for (int R = 0; R < Rows; ++R) {
    std::vector<int64_t> Row(NumVars + 1);
    for (unsigned J = 0; J < NumVars; ++J)
      Row[J] = Coef(Rng);
    Row[NumVars] = Cst(Rng);
    if (Coef(Rng) > 0)
      S.addEquality(Row);
    else
      S.addInequality(Row);
  }
  return S;
}

} // namespace

class BasicSetRandomized : public ::testing::TestWithParam<int> {};

TEST_P(BasicSetRandomized, EmptinessMatchesBruteForce) {
  std::mt19937 Rng(static_cast<unsigned>(GetParam()));
  BasicSet S = randomBoxedSet(Rng, 3, 3);
  bool BruteEmpty = enumerateBox(S, 3).empty();
  Ternary T = S.isEmpty(/*NodeBudget=*/256);
  ASSERT_NE(T, Ternary::Unknown) << S.str();
  EXPECT_EQ(T == Ternary::True, BruteEmpty) << S.str();
}

TEST_P(BasicSetRandomized, SubsetMatchesBruteForce) {
  std::mt19937 Rng(static_cast<unsigned>(GetParam()) + 1000);
  BasicSet A = randomBoxedSet(Rng, 2, 3);
  BasicSet B = randomBoxedSet(Rng, 2, 3);
  auto PA = enumerateBox(A, 3);
  auto PB = enumerateBox(B, 3);
  auto Contains = [&](const std::vector<int64_t> &P) {
    for (const auto &Q : PB)
      if (Q == P)
        return true;
    return false;
  };
  bool BruteSubset = true;
  for (const auto &P : PA)
    if (!Contains(P)) {
      BruteSubset = false;
      break;
    }
  Ternary T = A.isSubsetOf(B, /*NodeBudget=*/256);
  ASSERT_NE(T, Ternary::Unknown);
  EXPECT_EQ(T == Ternary::True, BruteSubset)
      << "A=" << A.str() << " B=" << B.str();
}

TEST_P(BasicSetRandomized, ProjectionIsSupersetAndExactWhenClaimed) {
  std::mt19937 Rng(static_cast<unsigned>(GetParam()) + 2000);
  BasicSet S = randomBoxedSet(Rng, 3, 3);
  auto R = S.projectOut({2});
  // Brute-force the true projection.
  auto Pts = enumerateBox(S, 3);
  std::set<std::pair<int64_t, int64_t>> True2D;
  for (const auto &P : Pts)
    True2D.insert({P[0], P[1]});
  // Every true projected point must be in the FM result (soundness).
  unsigned N = R.Set.numVars();
  ASSERT_EQ(N, 2u);
  auto InResult = [&](int64_t X, int64_t Y) {
    for (const auto &Row : R.Set.equalities())
      if (Row[0] * X + Row[1] * Y + Row[2] != 0)
        return false;
    for (const auto &Row : R.Set.inequalities())
      if (Row[0] * X + Row[1] * Y + Row[2] < 0)
        return false;
    return true;
  };
  for (const auto &[X, Y] : True2D)
    EXPECT_TRUE(InResult(X, Y)) << S.str();
  // When claimed exact, points of the result inside the box must be true
  // projections.
  if (R.Exact) {
    for (int64_t X = -3; X <= 3; ++X) {
      for (int64_t Y = -3; Y <= 3; ++Y) {
        if (InResult(X, Y)) {
          EXPECT_TRUE(True2D.count({X, Y}))
              << "claimed-exact projection has phantom point " << X << ","
              << Y << " for " << S.str();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BasicSetRandomized,
                         ::testing::Range(0, 40));

//===----------------------------------------------------------------------===//
// Query memoization (emptiness / subset verdict cache).
//===----------------------------------------------------------------------===//

TEST(QueryCache, RepeatedEmptinessQueriesHit) {
  clearQueryCache();
  BasicSet S(2);
  S.addInequality(row({1, 0, 0}));   // x >= 0
  S.addInequality(row({0, 1, 0}));   // y >= 0
  S.addInequality(row({-1, -1, 5})); // x + y <= 5
  Ternary First = S.isEmpty();
  QueryCacheStats After1 = queryCacheStats();
  EXPECT_EQ(After1.Hits, 0u);
  EXPECT_GE(After1.Misses, 1u);
  EXPECT_GE(After1.Entries, 1u);
  // Same system again (fresh object): must hit and agree.
  BasicSet T(2);
  T.addInequality(row({1, 0, 0}));
  T.addInequality(row({0, 1, 0}));
  T.addInequality(row({-1, -1, 5}));
  EXPECT_EQ(T.isEmpty(), First);
  QueryCacheStats After2 = queryCacheStats();
  EXPECT_EQ(After2.Hits, After1.Hits + 1);
  EXPECT_EQ(After2.Misses, After1.Misses);
}

TEST(QueryCache, PermutedConstraintOrderSharesEntry) {
  // The key is canonical (sorted normalized rows), so constraint insertion
  // order must not defeat the cache.
  clearQueryCache();
  BasicSet A(2);
  A.addInequality(row({1, 0, 0}));
  A.addInequality(row({-1, -1, 9}));
  A.addInequality(row({0, 1, 0}));
  Ternary VA = A.isEmpty();
  QueryCacheStats Mid = queryCacheStats();
  BasicSet B(2);
  B.addInequality(row({0, 1, 0}));
  B.addInequality(row({1, 0, 0}));
  B.addInequality(row({-1, -1, 9}));
  EXPECT_EQ(B.isEmpty(), VA);
  QueryCacheStats End = queryCacheStats();
  EXPECT_EQ(End.Hits, Mid.Hits + 1);
}

TEST(QueryCache, SubsetQueriesCachedSeparatelyFromEmptiness) {
  // The containment must need actual reasoning: row-wise implied pairs are
  // answered by the syntactic prefilter before the cache is consulted.
  clearQueryCache();
  BasicSet Small(2);
  Small.addInequality(row({1, 0, 0}));   // x >= 0
  Small.addInequality(row({0, 1, 0}));   // y >= 0
  Small.addInequality(row({-1, 0, 2}));  // x <= 2
  Small.addInequality(row({0, -1, 2}));  // y <= 2
  BasicSet Big(2);
  Big.addInequality(row({-1, -1, 10})); // x + y <= 10
  Ternary V1 = Small.isSubsetOf(Big);
  EXPECT_EQ(V1, Ternary::True);
  QueryCacheStats Mid = queryCacheStats();
  EXPECT_EQ(Small.isSubsetOf(Big), V1); // hit
  QueryCacheStats End = queryCacheStats();
  EXPECT_EQ(End.Hits, Mid.Hits + 1);
  // Reversed direction is a different key (and a different answer).
  EXPECT_EQ(Big.isSubsetOf(Small), Ternary::False);
}

TEST(QueryCache, ClearResetsStatsAndEntries) {
  BasicSet S(1);
  S.addInequality(row({1, 0}));
  (void)S.isEmpty();
  clearQueryCache();
  QueryCacheStats Z = queryCacheStats();
  EXPECT_EQ(Z.Hits, 0u);
  EXPECT_EQ(Z.Misses, 0u);
  EXPECT_EQ(Z.Entries, 0u);
  EXPECT_EQ(Z.hitRate(), 0.0);
}

TEST(QueryCache, CachedVerdictsMatchFreshSolves) {
  // Randomized consistency: solve, re-solve (cached), clear, solve fresh —
  // all three verdicts must agree.
  std::mt19937 Rng(4242);
  std::uniform_int_distribution<int64_t> Coef(-3, 3);
  for (int Trial = 0; Trial < 25; ++Trial) {
    BasicSet S(2);
    for (int R = 0; R < 4; ++R)
      S.addInequality(row({Coef(Rng), Coef(Rng), Coef(Rng)}));
    BasicSet Copy = S;
    Ternary First = S.isEmpty();
    Ternary Cached = Copy.isEmpty();
    clearQueryCache();
    BasicSet Fresh = S;
    Ternary Recomputed = Fresh.isEmpty();
    EXPECT_EQ(First, Cached) << "trial " << Trial;
    EXPECT_EQ(First, Recomputed) << "trial " << Trial;
  }
}
