//===- integration_test.cpp - Full pipeline on real matrices ---------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The crown-jewel checks: analyze a kernel, run the *generated* inspectors
// on a concrete matrix, build the dependence graph, schedule wavefronts,
// execute in parallel, and compare against the serial kernel — plus the
// Figure 1 -> Figure 2 golden path from the paper.
//
//===----------------------------------------------------------------------===//

#include "sds/driver/Driver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <set>

using namespace sds;
using namespace sds::rt;

namespace {

CSRMatrix figure1Matrix() {
  CSRMatrix A;
  A.N = 4;
  A.RowPtr = {0, 1, 2, 4, 7};
  A.Col = {0, 1, 0, 2, 0, 2, 3};
  A.Val = {1, 2, 3, 4, 5, 6, 7};
  return A;
}

CSRMatrix makeLower(int N, int Nnz, int Band, uint64_t Seed) {
  GeneratorConfig C;
  C.N = N;
  C.AvgNnzPerRow = Nnz;
  C.Bandwidth = Band;
  C.Seed = Seed;
  return lowerTriangle(generateSPDLike(C));
}

std::vector<double> randomVector(int N, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_real_distribution<double> Dist(-1, 1);
  std::vector<double> V(static_cast<size_t>(N));
  for (double &X : V)
    X = Dist(Rng);
  return V;
}

double maxAbsDiff(const std::vector<double> &A, const std::vector<double> &B) {
  double M = 0;
  for (size_t I = 0; I < A.size(); ++I)
    M = std::max(M, std::abs(A[I] - B[I]));
  return M;
}

/// Shared analysis results (each analyzeKernel run costs seconds; do them
/// once per suite).
const deps::PipelineResult &fsCSRAnalysis() {
  static deps::PipelineResult R =
      deps::analyzeKernel(kernels::forwardSolveCSR());
  return R;
}
const deps::PipelineResult &fsCSCAnalysis() {
  static deps::PipelineResult R =
      deps::analyzeKernel(kernels::forwardSolveCSC());
  return R;
}
const deps::PipelineResult &gsCSRAnalysis() {
  static deps::PipelineResult R =
      deps::analyzeKernel(kernels::gaussSeidelCSR());
  return R;
}

} // namespace

TEST(Integration, Figure1MatrixYieldsFigure2Waves) {
  // Forward solve CSR on Figure 1's matrix: the generated inspector must
  // reconstruct Figure 2's dependence graph and waves {0,1},{2},{3}.
  CSRMatrix A = figure1Matrix();
  auto Env = driver::bindCSR(A);
  driver::InspectionResult Insp =
      driver::runInspectors(fsCSRAnalysis(), Env, A.N);
  EXPECT_EQ(Insp.NumInspectors, 1u);
  EXPECT_EQ(Insp.Graph.numEdges(), 3u);
  auto Succ0 = Insp.Graph.successors(0);
  auto Succ2 = Insp.Graph.successors(2);
  EXPECT_EQ(std::vector<int>(Succ0.begin(), Succ0.end()),
            (std::vector<int>{2, 3}));
  EXPECT_EQ(std::vector<int>(Succ2.begin(), Succ2.end()),
            (std::vector<int>{3}));

  LevelSets LS = computeLevelSets(Insp.Graph);
  ASSERT_EQ(LS.numLevels(), 3);
  EXPECT_EQ(LS.Levels[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(LS.Levels[1], (std::vector<int>{2}));
  EXPECT_EQ(LS.Levels[2], (std::vector<int>{3}));
}

TEST(Integration, InspectorGraphCoversExactDependences) {
  // The generated inspector's DAG must contain every true dependence (it
  // may not miss any; extra edges would only cost performance).
  CSRMatrix L = makeLower(150, 8, 25, 42);
  CSCMatrix LC = toCSC(L);
  auto Env = driver::bindCSR(L);
  driver::InspectionResult Insp =
      driver::runInspectors(fsCSRAnalysis(), Env, L.N);
  DependenceGraph Exact = exactForwardSolveGraph(LC);
  for (int U = 0; U < Exact.numNodes(); ++U)
    for (int V : Exact.successors(U)) {
      const auto Succ = Insp.Graph.successors(U);
      EXPECT_TRUE(std::find(Succ.begin(), Succ.end(), V) != Succ.end())
          << "missing dependence " << U << " -> " << V;
    }
}

TEST(Integration, ForwardSolveCSREndToEnd) {
  CSRMatrix L = makeLower(500, 9, 40, 7);
  std::vector<double> B = randomVector(L.N, 3);

  auto Env = driver::bindCSR(L);
  driver::InspectionResult Insp =
      driver::runInspectors(fsCSRAnalysis(), Env, L.N);

  WavefrontSchedule S = scheduleLevelSets(Insp.Graph, 4);
  ASSERT_TRUE(S.respects(Insp.Graph));

  std::vector<double> XSer, XPar;
  forwardSolveCSRSerial(L, B, XSer);
  forwardSolveCSRWavefront(L, B, XPar, S);
  EXPECT_LT(maxAbsDiff(XSer, XPar), 1e-10);
}

TEST(Integration, ForwardSolveCSCEndToEndWithLBC) {
  CSRMatrix LR = makeLower(500, 9, 40, 8);
  CSCMatrix L = toCSC(LR);
  std::vector<double> B = randomVector(L.N, 4);

  auto Env = driver::bindCSC(L);
  driver::InspectionResult Insp =
      driver::runInspectors(fsCSCAnalysis(), Env, L.N);

  LBCConfig C;
  C.NumThreads = 4;
  C.MinWorkPerThread = 16;
  WavefrontSchedule S = scheduleLBC(Insp.Graph, C);
  ASSERT_TRUE(S.respects(Insp.Graph));

  std::vector<double> XSer, XPar;
  forwardSolveCSCSerial(L, B, XSer);
  forwardSolveCSCWavefront(L, B, XPar, S);
  EXPECT_LT(maxAbsDiff(XSer, XPar), 1e-9);
}

TEST(Integration, GaussSeidelEndToEnd) {
  CSRMatrix A = generateSPDLike({400, 9, 32, 9});
  std::vector<double> B = randomVector(A.N, 5);

  auto Env = driver::bindCSR(A, A.diagonalPositions());
  driver::InspectionResult Insp =
      driver::runInspectors(gsCSRAnalysis(), Env, A.N);
  EXPECT_EQ(Insp.NumInspectors, 2u); // both read/write directions

  WavefrontSchedule S = scheduleLevelSets(Insp.Graph, 4);
  ASSERT_TRUE(S.respects(Insp.Graph));

  std::vector<double> XSer(static_cast<size_t>(A.N), 0.0), XPar = XSer;
  gaussSeidelCSRSerial(A, B, XSer);
  gaussSeidelCSRWavefront(A, B, XPar, S);
  EXPECT_LT(maxAbsDiff(XSer, XPar), 1e-10);
}

TEST(Integration, InspectorWorkTracksComplexity) {
  // The nnz-complexity forward-solve inspector must visit O(nnz) points:
  // doubling nnz roughly doubles visits (and certainly does not square
  // them).
  CSRMatrix L1 = makeLower(400, 6, 30, 10);
  CSRMatrix L2 = makeLower(400, 12, 30, 10);
  auto E1 = driver::bindCSR(L1), E2 = driver::bindCSR(L2);
  uint64_t V1 = driver::runInspectors(fsCSRAnalysis(), E1, L1.N)
                    .InspectorVisits;
  uint64_t V2 = driver::runInspectors(fsCSRAnalysis(), E2, L2.N)
                    .InspectorVisits;
  double Ratio = double(V2) / double(V1);
  double NnzRatio = double(L2.nnz()) / double(L1.nnz());
  EXPECT_LT(Ratio, NnzRatio * 2.0);
}

TEST(Integration, MalformedPropertiesStillSound) {
  // Failure injection: analyze forward solve CSR but run its inspector on
  // a matrix that VIOLATES triangularity (a full general matrix). The
  // relation's own constraints still hold, so the inspector simply finds
  // edges; nothing crashes and the graph stays forward-only.
  CSRMatrix A = generateSPDLike({100, 7, 20, 11});
  auto Env = driver::bindCSR(A);
  driver::InspectionResult Insp =
      driver::runInspectors(fsCSRAnalysis(), Env, A.N);
  EXPECT_TRUE(Insp.Graph.isForwardOnly());
}
