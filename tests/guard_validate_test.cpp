//===- guard_validate_test.cpp - Property validator tests -----------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//
//
// One test per PropertyKind: the validator must pass on conforming arrays,
// report the first violating indices on corrupted ones, skip what it
// cannot check, and exhaust (not hang) on pointer arrays corrupted into
// quadratic window overlap.
//
//===----------------------------------------------------------------------===//

#include "sds/guard/Validate.h"

#include "sds/driver/Driver.h"
#include "sds/kernels/Kernels.h"
#include "sds/runtime/Matrix.h"

#include <gtest/gtest.h>

using namespace sds;
using namespace sds::guard;
using ir::Expr;
using ir::PropertyKind;
using ir::PropertySet;

namespace {

codegen::UFEnvironment envWith(
    std::initializer_list<std::pair<std::string, std::vector<int>>> Arrays,
    std::initializer_list<std::pair<std::string, int64_t>> Params = {}) {
  codegen::UFEnvironment Env;
  for (const auto &[Name, Data] : Arrays)
    Env.bindArray(Name, Data);
  for (const auto &[Name, V] : Params)
    Env.Params[Name] = V;
  return Env;
}

const PropertyCheck &only(const ValidationReport &R) {
  EXPECT_EQ(R.Checks.size(), 1u);
  return R.Checks.front();
}

} // namespace

TEST(Validate, StrictMonotonicIncreasing) {
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "rowptr");

  auto Good = envWith({{"rowptr", {0, 2, 4, 7}}});
  EXPECT_TRUE(validateProperties(PS, Good).trusted());

  auto Bad = envWith({{"rowptr", {0, 4, 4, 7}}});
  ValidationReport R = validateProperties(PS, Bad);
  EXPECT_TRUE(R.violated());
  EXPECT_EQ(only(R).Outcome, CheckOutcome::Fail);
  EXPECT_EQ(only(R).Index, 1);
  EXPECT_EQ(only(R).Index2, 2);
}

TEST(Validate, MonotonicAndDecreasingKinds) {
  PropertySet PS;
  PS.add(PropertyKind::MonotonicIncreasing, "a");
  EXPECT_TRUE(
      validateProperties(PS, envWith({{"a", {1, 1, 3}}})).trusted());
  EXPECT_TRUE(
      validateProperties(PS, envWith({{"a", {3, 1, 1}}})).violated());

  PropertySet PD;
  PD.add(PropertyKind::StrictMonotonicDecreasing, "a");
  EXPECT_TRUE(
      validateProperties(PD, envWith({{"a", {5, 3, 1}}})).trusted());
  EXPECT_TRUE(
      validateProperties(PD, envWith({{"a", {5, 5, 1}}})).violated());
}

TEST(Validate, Injective) {
  PropertySet PS;
  PS.add(PropertyKind::Injective, "perm");
  EXPECT_TRUE(
      validateProperties(PS, envWith({{"perm", {2, 0, 1, 3}}})).trusted());

  ValidationReport R =
      validateProperties(PS, envWith({{"perm", {2, 0, 2, 3}}}));
  EXPECT_TRUE(R.violated());
  EXPECT_EQ(only(R).Index, 0);
  EXPECT_EQ(only(R).Index2, 2);
}

TEST(Validate, PeriodicMonotonic) {
  PropertySet PS;
  PS.add(PropertyKind::PeriodicMonotonic, "col", "rowptr");

  // Sorted within each rowptr window.
  auto Good = envWith({{"col", {0, 2, 1, 3, 0, 4}},
                       {"rowptr", {0, 2, 4, 6}}});
  EXPECT_TRUE(validateProperties(PS, Good).trusted());

  // Row 1's window {3, 1} is out of order.
  auto Bad = envWith({{"col", {0, 2, 3, 1, 0, 4}},
                      {"rowptr", {0, 2, 4, 6}}});
  ValidationReport R = validateProperties(PS, Bad);
  EXPECT_TRUE(R.violated());
  EXPECT_EQ(only(R).Index, 2);
  EXPECT_EQ(only(R).Index2, 3);

  // A window leaving the array is itself a violation.
  auto Overrun = envWith({{"col", {0, 2, 3}},
                          {"rowptr", {0, 2, 9}}});
  EXPECT_TRUE(validateProperties(PS, Overrun).violated());
}

TEST(Validate, CoMonotonic) {
  PropertySet PS;
  PS.add(PropertyKind::CoMonotonic, "lo", "hi");
  EXPECT_TRUE(validateProperties(
                  PS, envWith({{"lo", {0, 1, 2}}, {"hi", {0, 2, 5}}}))
                  .trusted());
  EXPECT_TRUE(validateProperties(
                  PS, envWith({{"lo", {0, 3, 2}}, {"hi", {0, 2, 5}}}))
                  .violated());
  // `hi` shorter than `lo` cannot confirm the property.
  EXPECT_TRUE(validateProperties(
                  PS, envWith({{"lo", {0, 1, 2}}, {"hi", {0, 2}}}))
                  .violated());
}

TEST(Validate, Triangular) {
  PropertySet PS;
  PS.add(PropertyKind::Triangular, "f", "other");
  // f(x0) < x1 => x0 < other(x1) with f = identity, other = identity + 1.
  EXPECT_TRUE(validateProperties(
                  PS, envWith({{"f", {0, 1, 2, 3}}, {"other", {1, 2, 3, 4}}}))
                  .trusted());
  // other(3) = 0 exposes x0 = 2 (f(2) = 2 < 3 but 2 >= 0).
  ValidationReport R = validateProperties(
      PS, envWith({{"f", {0, 1, 2, 3}}, {"other", {1, 2, 3, 0}}}));
  EXPECT_TRUE(R.violated());
  EXPECT_EQ(only(R).Index2, 3);
}

TEST(Validate, TriangularEntriesKinds) {
  // CSR of a lower-triangular matrix: entries of row x are <= x.
  PropertySet LE;
  LE.add(PropertyKind::TriangularEntriesLE, "col", "rowptr");
  auto Good = envWith({{"col", {0, 0, 1, 1, 2}},
                       {"rowptr", {0, 1, 3, 5}}});
  EXPECT_TRUE(validateProperties(LE, Good).trusted());

  auto Bad = envWith({{"col", {0, 0, 2, 1, 2}},
                      {"rowptr", {0, 1, 3, 5}}});
  ValidationReport R = validateProperties(LE, Bad);
  EXPECT_TRUE(R.violated());
  EXPECT_EQ(only(R).Index, 1);  // segment (row)
  EXPECT_EQ(only(R).Index2, 2); // entry position

  PropertySet LT;
  LT.add(PropertyKind::TriangularEntriesLT, "pruneset", "pruneptr");
  EXPECT_TRUE(validateProperties(LT, envWith({{"pruneset", {0, 0, 1}},
                                              {"pruneptr", {0, 0, 1, 3}}}))
                  .trusted());
  EXPECT_TRUE(validateProperties(LT, envWith({{"pruneset", {0, 2, 1}},
                                              {"pruneptr", {0, 0, 1, 3}}}))
                  .violated());

  PropertySet GE;
  GE.add(PropertyKind::TriangularEntriesGE, "rowidx", "colptr");
  EXPECT_TRUE(validateProperties(GE, envWith({{"rowidx", {0, 1, 1, 2}},
                                              {"colptr", {0, 2, 3, 4}}}))
                  .trusted());
  EXPECT_TRUE(validateProperties(GE, envWith({{"rowidx", {0, 1, 0, 2}},
                                              {"colptr", {0, 2, 3, 4}}}))
                  .violated());

  // A pointer segment reaching outside the entry array is a violation.
  EXPECT_TRUE(validateProperties(LE, envWith({{"col", {0, 0}},
                                              {"rowptr", {0, 1, 7}}}))
                  .violated());
}

TEST(Validate, SegmentPointer) {
  PropertySet PS;
  PS.add(PropertyKind::SegmentPointer, "diag", "rowptr");
  EXPECT_TRUE(validateProperties(PS, envWith({{"diag", {0, 2, 4}},
                                              {"rowptr", {0, 2, 4, 5}}}))
                  .trusted());
  // diag(1) = 4 lies outside [rowptr(1), rowptr(2)) = [2, 4).
  ValidationReport R = validateProperties(
      PS, envWith({{"diag", {0, 4, 4}}, {"rowptr", {0, 2, 4, 5}}}));
  EXPECT_TRUE(R.violated());
  EXPECT_EQ(only(R).Index, 1);
}

TEST(Validate, SegmentStartIdentity) {
  PropertySet PS;
  PS.add(PropertyKind::SegmentStartIdentity, "rowidx", "colptr", Expr(0),
         Expr::var("n"));
  // First entry of each column indexes the column itself.
  auto Good = envWith({{"rowidx", {0, 1, 1, 2, 2}},
                       {"colptr", {0, 2, 3, 5}}},
                      {{"n", 3}});
  EXPECT_TRUE(validateProperties(PS, Good).trusted());

  auto Bad = envWith({{"rowidx", {0, 1, 2, 2, 2}},
                      {"colptr", {0, 2, 3, 5}}},
                     {{"n", 3}});
  ValidationReport R = validateProperties(PS, Bad);
  EXPECT_TRUE(R.violated());
  EXPECT_EQ(only(R).Index, 1); // column 1's first entry is 2, not 1

  // Unevaluable guard (unbound parameter) -> Skipped, not trusted.
  auto NoParam = envWith({{"rowidx", {0, 1, 1, 2, 2}},
                          {"colptr", {0, 2, 3, 5}}});
  ValidationReport R2 = validateProperties(PS, NoParam);
  EXPECT_FALSE(R2.violated());
  EXPECT_FALSE(R2.trusted());
  EXPECT_EQ(only(R2).Outcome, CheckOutcome::Skipped);
}

TEST(Validate, DomainRange) {
  PropertySet PS;
  PS.addDomainRange(
      {"rowptr", Expr(0), Expr::var("n"), Expr(0), Expr::var("nnz")});
  auto Good = envWith({{"rowptr", {0, 2, 4, 5}}}, {{"n", 3}, {"nnz", 5}});
  EXPECT_TRUE(validateProperties(PS, Good).trusted());

  // Value above the declared range.
  auto Bad = envWith({{"rowptr", {0, 2, 9, 5}}}, {{"n", 3}, {"nnz", 5}});
  ValidationReport R = validateProperties(PS, Bad);
  EXPECT_TRUE(R.violated());
  EXPECT_EQ(only(R).Index, 2);

  // Declared domain exceeding the bound array extent.
  auto Short = envWith({{"rowptr", {0, 2}}}, {{"n", 3}, {"nnz", 5}});
  EXPECT_TRUE(validateProperties(PS, Short).violated());
}

TEST(Validate, UnboundArraySkips) {
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "ghost");
  ValidationReport R = validateProperties(PS, envWith({}));
  EXPECT_EQ(only(R).Outcome, CheckOutcome::Skipped);
  EXPECT_FALSE(R.trusted());
  EXPECT_FALSE(R.violated());
}

TEST(Validate, EmptyPropertySetIsVacuouslyTrusted) {
  ValidationReport R = validateProperties(PropertySet(), envWith({}));
  EXPECT_TRUE(R.trusted());
  EXPECT_EQ(R.failures(), 0u);
  EXPECT_EQ(R.firstViolation(), nullptr);
}

TEST(Validate, WorkCapExhaustsInsteadOfHanging) {
  // Alternating 0/4096 segment pointers make every other window span the
  // whole 4096-entry array: ~130k positions against a ~34k cap.
  std::vector<int> F(4096);
  for (int I = 0; I < 4096; ++I)
    F[static_cast<size_t>(I)] = I;
  std::vector<int> Seg;
  for (int I = 0; I < 64; ++I)
    Seg.push_back(I % 2 ? 4096 : 0);
  PropertySet PS;
  PS.add(PropertyKind::PeriodicMonotonic, "f", "seg");
  ValidationReport R =
      validateProperties(PS, envWith({{"f", F}, {"seg", Seg}}));
  EXPECT_EQ(only(R).Outcome, CheckOutcome::Exhausted);
  EXPECT_FALSE(R.trusted()); // exhausted == not trusted
  EXPECT_FALSE(R.violated());
}

TEST(Validate, RealKernelPropertiesPassOnHonestMatrix) {
  rt::CSRMatrix A = rt::generateSPDLike({80, 6, 12, 21});
  kernels::Kernel K = kernels::gaussSeidelCSR();
  codegen::UFEnvironment Env = driver::bindCSR(A, A.diagonalPositions());
  ValidationReport R = validateProperties(K.Properties, Env);
  EXPECT_TRUE(R.trusted()) << R.str();

  // Breaking one row's col sortedness is caught. Swap inside a row window
  // (entries there are strictly increasing, so any swap inverts a pair).
  std::vector<int> Col = *Env.Spans.at("col");
  const std::vector<int> &Rowptr = *Env.Spans.at("rowptr");
  bool Swapped = false;
  for (size_t X = 0; X + 1 < Rowptr.size() && !Swapped; ++X) {
    if (Rowptr[X + 1] - Rowptr[X] >= 2) {
      std::swap(Col[static_cast<size_t>(Rowptr[X])],
                Col[static_cast<size_t>(Rowptr[X]) + 1]);
      Swapped = true;
    }
  }
  ASSERT_TRUE(Swapped);
  Env.bindArray("col", Col);
  EXPECT_FALSE(validateProperties(K.Properties, Env).trusted());
}

TEST(Validate, ReportRendering) {
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "rowptr");
  ValidationReport R =
      validateProperties(PS, envWith({{"rowptr", {0, 4, 4}}}));
  EXPECT_NE(R.str().find("FAIL"), std::string::npos);
  EXPECT_NE(R.summary().find("1 fail"), std::string::npos);
  EXPECT_NE(only(R).str().find("rowptr"), std::string::npos);
}
