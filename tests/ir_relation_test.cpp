//===- ir_relation_test.cpp - Conjunction/relation API tests ---------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Parser.h"
#include "sds/ir/Relation.h"

#include <gtest/gtest.h>

using namespace sds::ir;

namespace {
Expr v(const char *N) { return Expr::var(N); }
} // namespace

TEST(Conjunction, DropsTriviallyTrueKeepsFalse) {
  Conjunction C;
  C.add(Constraint::geq(Expr(5)));  // 5 >= 0: dropped
  C.add(Constraint::eq(Expr(0)));   // 0 == 0: dropped
  EXPECT_TRUE(C.empty());
  C.add(Constraint::geq(Expr(-1))); // -1 >= 0: kept (flatten detects)
  C.add(Constraint::eq(Expr(3)));   // 3 == 0: kept
  EXPECT_EQ(C.constraints().size(), 2u);
}

TEST(Conjunction, ExactDeduplication) {
  Conjunction C;
  C.add(Constraint::lt(v("i"), v("j")));
  C.add(Constraint::lt(v("i"), v("j")));
  EXPECT_EQ(C.constraints().size(), 1u);
  // A weaker bound on the same linear part is a distinct constraint.
  C.add(Constraint::le(v("i"), v("j")));
  EXPECT_EQ(C.constraints().size(), 2u);
}

TEST(Conjunction, ImpliesSyntacticallyGeqChain) {
  Conjunction C;
  C.add(Constraint::geq(v("x") - Expr(5))); // x >= 5
  EXPECT_TRUE(C.impliesSyntactically(Constraint::geq(v("x") - Expr(5))));
  EXPECT_TRUE(C.impliesSyntactically(Constraint::geq(v("x") - Expr(3))));
  EXPECT_FALSE(C.impliesSyntactically(Constraint::geq(v("x") - Expr(7))));
  // Different linear part: no implication.
  EXPECT_FALSE(C.impliesSyntactically(Constraint::geq(v("y") - Expr(1))));
  // Negated orientation of a Geq does not imply.
  EXPECT_FALSE(C.impliesSyntactically(Constraint::geq(Expr(9) - v("x"))));
}

TEST(Conjunction, ImpliesSyntacticallyFromEquality) {
  Conjunction C;
  C.add(Constraint::equals(v("x"), Expr(4))); // x == 4
  EXPECT_TRUE(C.impliesSyntactically(Constraint::geq(v("x") - Expr(4))));
  EXPECT_TRUE(C.impliesSyntactically(Constraint::geq(v("x") - Expr(2))));
  EXPECT_FALSE(C.impliesSyntactically(Constraint::geq(v("x") - Expr(5))));
  // The negated orientation works through the equality.
  EXPECT_TRUE(C.impliesSyntactically(Constraint::geq(Expr(4) - v("x"))));
  EXPECT_TRUE(C.impliesSyntactically(Constraint::geq(Expr(6) - v("x"))));
  EXPECT_FALSE(C.impliesSyntactically(Constraint::geq(Expr(3) - v("x"))));
  // Equality implication must be exact.
  EXPECT_TRUE(C.impliesSyntactically(Constraint::equals(v("x"), Expr(4))));
  EXPECT_TRUE(C.impliesSyntactically(Constraint::equals(Expr(4), v("x"))));
  EXPECT_FALSE(C.impliesSyntactically(Constraint::equals(v("x"), Expr(5))));
}

TEST(Conjunction, ImpliesSyntacticallyConstants) {
  Conjunction C;
  EXPECT_TRUE(C.impliesSyntactically(Constraint::geq(Expr(0))));
  EXPECT_TRUE(C.impliesSyntactically(Constraint::eq(Expr(0))));
  EXPECT_FALSE(C.impliesSyntactically(Constraint::geq(Expr(-1))));
  EXPECT_FALSE(C.impliesSyntactically(Constraint::eq(Expr(2))));
}

TEST(Conjunction, GeqDoesNotImplyEquality) {
  Conjunction C;
  C.add(Constraint::geq(v("x") - Expr(4)));
  EXPECT_FALSE(C.impliesSyntactically(Constraint::equals(v("x"), Expr(4))));
}

TEST(Conjunction, AppendMerges) {
  Conjunction A, B;
  A.add(Constraint::lt(v("i"), v("n")));
  B.add(Constraint::lt(v("i"), v("n")));
  B.add(Constraint::geq(v("i")));
  A.append(B);
  EXPECT_EQ(A.constraints().size(), 2u);
}

TEST(SparseRelation, ParamsInAppearanceOrder) {
  auto R = parseRelation(
      "{ [i] -> [i'] : exists(k) : 0 <= i < n && k < nnz && i' < m }");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Rel.params(), (std::vector<std::string>{"n", "nnz", "m"}));
}

TEST(SparseRelation, SubstituteRewritesCallArguments) {
  // Substituting m := k' + 1 must rewrite call arguments too.
  auto R = parseRelation("{ [i] : exists(m, k') : m = k' + 1 && "
                         "rowptr(m) <= i < rowptr(m + 1) }");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Rel.eliminateDeterminedExistentials(), 1u);
  EXPECT_EQ(R.Rel.ExistVars, std::vector<std::string>{"k'"});
  bool Found = false;
  for (const Atom &A : R.Rel.Conj.collectCalls())
    if (A.str() == "rowptr(k' + 2)")
      Found = true;
  EXPECT_TRUE(Found) << R.Rel.str();
}

TEST(SparseRelation, EliminationIsChained) {
  // a = b, b = c + 1, with a, b existential: both eliminated.
  auto R = parseRelation(
      "{ [c] : exists(a, b) : a = b && b = c + 1 && 0 <= a < 10 }");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Rel.eliminateDeterminedExistentials(), 2u);
  EXPECT_TRUE(R.Rel.ExistVars.empty());
  // Constraints now over c only: 0 <= c + 1 < 10.
  for (const Constraint &C : R.Rel.Conj.constraints()) {
    std::vector<std::string> Vars;
    C.E.collectVars(Vars);
    for (const std::string &V : Vars)
      EXPECT_EQ(V, "c");
  }
}
