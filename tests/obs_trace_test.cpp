//===- obs_trace_test.cpp - Tracing core and exporter tests ----------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/obs/Export.h"
#include "sds/obs/Provenance.h"
#include "sds/obs/Trace.h"

#include <gtest/gtest.h>
#include "sds/support/OMP.h"

#include <thread>

using namespace sds;

namespace {

/// Every obs test owns the global registry for its duration: start from a
/// clean, enabled state and leave tracing off for whoever runs next.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::setEnabled(true);
    obs::clear();
    obs::setEventCapacity(1 << 20);
  }
  void TearDown() override {
    obs::setEnabled(false);
    obs::clear();
  }
};

uint64_t counterValue(const std::string &Name) {
  for (const auto &[N, V] : obs::snapshotCounters())
    if (N == Name)
      return V;
  return 0;
}

} // namespace

TEST_F(ObsTest, CounterAtomicityUnderOpenMP) {
  obs::Counter &C = obs::counter("test.atomic");
  const int Iters = 20000;
  int Threads = 0;
#ifdef _OPENMP
#pragma omp parallel
#endif
  {
#ifdef _OPENMP
#pragma omp single
#endif
    Threads = omp_get_num_threads();
#ifdef _OPENMP
#pragma omp for
#endif
    for (int I = 0; I < Iters; ++I)
      C.add();
  }
  ASSERT_GE(Threads, 1);
  EXPECT_EQ(C.value(), static_cast<uint64_t>(Iters));
  EXPECT_EQ(counterValue("test.atomic"), static_cast<uint64_t>(Iters));
}

TEST_F(ObsTest, CounterHandleIsStableAcrossClear) {
  obs::Counter &C = obs::counter("test.stable");
  C.add(7);
  obs::clear();
  EXPECT_EQ(C.value(), 0u);
  C.add(3);
  EXPECT_EQ(&C, &obs::counter("test.stable"));
  EXPECT_EQ(counterValue("test.stable"), 3u);
}

TEST_F(ObsTest, SpanNestingIsContainedInTime) {
  {
    obs::Span Outer("outer");
    Outer.tag("k", "v");
    {
      obs::Span Inner("inner");
      Inner.tag("depth", static_cast<int64_t>(2));
    }
  }
  auto Evs = obs::snapshotEvents();
  ASSERT_EQ(Evs.size(), 2u);
  // Inner closes first, so it is recorded first.
  const obs::TraceEvent &Inner = Evs[0], &Outer = Evs[1];
  EXPECT_EQ(Inner.Name, "inner");
  EXPECT_EQ(Outer.Name, "outer");
  EXPECT_EQ(Inner.ThreadId, Outer.ThreadId);
  // Chrome's viewer nests by time containment: inner ⊆ outer.
  EXPECT_GE(Inner.StartNs, Outer.StartNs);
  EXPECT_LE(Inner.StartNs + Inner.DurNs, Outer.StartNs + Outer.DurNs);
  ASSERT_EQ(Outer.Tags.size(), 1u);
  EXPECT_EQ(Outer.Tags[0].first, "k");
  EXPECT_EQ(Outer.Tags[0].second, "v");
  ASSERT_EQ(Inner.Tags.size(), 1u);
  EXPECT_EQ(Inner.Tags[0].second, "2");
}

TEST_F(ObsTest, EndClosesOnceAndDestructorIsIdempotent) {
  obs::Span S("once");
  S.end();
  S.end(); // second end() must not record again
  EXPECT_EQ(obs::snapshotEvents().size(), 1u);
}

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  obs::setEnabled(false);
  obs::Counter &C = obs::counter("test.disabled");
  C.add(100);
  {
    obs::Span S("ghost");
    S.tag("k", "v");
  }
  EXPECT_EQ(C.value(), 0u);
  EXPECT_TRUE(obs::snapshotEvents().empty());
}

TEST_F(ObsTest, CapacityCapCountsDroppedEvents) {
  obs::setEventCapacity(4);
  for (int I = 0; I < 10; ++I)
    obs::Span S("e" + std::to_string(I));
  EXPECT_EQ(obs::snapshotEvents().size(), 4u);
  EXPECT_EQ(obs::droppedEvents(), 6u);
  obs::setEventCapacity(1 << 20);
}

TEST_F(ObsTest, ChromeTraceJSONReparsesWithExpectedShape) {
  {
    obs::Span S("pipeline.affine_unsat", "deps");
    S.tag("dep", "RAW x");
    S.tag("count", static_cast<int64_t>(3));
  }
  obs::counter("simplex.pivots").add(42);

  json::ParseResult P = json::parse(obs::chromeTraceJSON());
  ASSERT_TRUE(P.Ok) << P.Error;
  const json::Value &Root = P.Val;
  ASSERT_TRUE(Root.isObject());
  EXPECT_EQ(Root.get("displayTimeUnit")->asString(), "ms");

  const json::Value *Evs = Root.get("traceEvents");
  ASSERT_NE(Evs, nullptr);
  ASSERT_TRUE(Evs->isArray());
  ASSERT_EQ(Evs->asArray().size(), 1u);
  const json::Value &E = Evs->asArray()[0];
  EXPECT_EQ(E.get("name")->asString(), "pipeline.affine_unsat");
  EXPECT_EQ(E.get("cat")->asString(), "deps");
  EXPECT_EQ(E.get("ph")->asString(), "X");
  EXPECT_GE(E.get("ts")->asDouble(), 0.0);
  EXPECT_GE(E.get("dur")->asDouble(), 0.0);
  const json::Value *Args = E.get("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_EQ(Args->get("dep")->asString(), "RAW x");
  EXPECT_EQ(Args->get("count")->asString(), "3");

  EXPECT_EQ(Root.get("counters")->get("simplex.pivots")->asDouble(), 42.0);
}

TEST_F(ObsTest, StatsReportAggregatesSpansByName) {
  for (int I = 0; I < 3; ++I)
    obs::Span S("repeated");
  json::ParseResult P = json::parse(obs::statsJSON());
  ASSERT_TRUE(P.Ok) << P.Error;
  const json::Value *Sp = P.Val.get("spans")->get("repeated");
  ASSERT_NE(Sp, nullptr);
  EXPECT_EQ(Sp->get("count")->asDouble(), 3.0);
  EXPECT_GE(Sp->get("total_ms")->asDouble(), 0.0);
  EXPECT_LE(Sp->get("min_ms")->asDouble(), Sp->get("max_ms")->asDouble());
}

TEST_F(ObsTest, SpansFromConcurrentThreadsGetDistinctThreadIds) {
  auto Work = [] { obs::Span S("threaded"); };
  std::thread A(Work), B(Work);
  A.join();
  B.join();
  auto Evs = obs::snapshotEvents();
  ASSERT_EQ(Evs.size(), 2u);
  EXPECT_NE(Evs[0].ThreadId, Evs[1].ThreadId);
}

TEST(Provenance, StringAndJSONForms) {
  obs::Provenance P;
  P.Stage = "property-unsat";
  P.addEvidence("monotonic(rowptr)");
  P.addEvidence("injective(col) [contrapositive]");
  P.Seconds = 0.25;
  EXPECT_EQ(P.str(),
            "property-unsat [monotonic(rowptr), injective(col) "
            "[contrapositive]]");
  sds::json::Value J = P.toJSON();
  EXPECT_EQ(J.get("stage")->asString(), "property-unsat");
  ASSERT_EQ(J.get("evidence")->asArray().size(), 2u);
  EXPECT_EQ(J.get("evidence")->asArray()[0].asString(), "monotonic(rowptr)");
  EXPECT_EQ(J.get("seconds")->asDouble(), 0.25);
}
