//===- pipeline_parallel_test.cpp - Parallel analysis determinism ----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The contract behind deps::PipelineOptions::NumThreads: for every kernel
// of the Table-2 suite and any thread count, the task-parallel analysis
// fan-out must produce an AnalysisResult *identical* to the serial run —
// same per-dependence verdicts, discovered equalities, inspector costs,
// subsumption edges, provenance, and generated inspector code. Timing
// fields (StageSeconds, Prov.Seconds) are the only permitted difference.
// Run under -DSDS_SANITIZE=thread to race the fan-out itself.
//
// The factorization kernels (IC0, ILU0) take minutes at full budget, so
// they run with tightened instantiation budgets; determinism must hold at
// any budget, so this loses no coverage.
//
//===----------------------------------------------------------------------===//

#include "sds/deps/Pipeline.h"

#include <gtest/gtest.h>

#include <string>

using namespace sds;
using namespace sds::deps;

namespace {

/// Everything about a result that must not depend on the thread count.
std::string fingerprint(const PipelineResult &R) {
  std::string F = R.Kernel.Name + ":" + R.KernelCost.str() + "\n";
  for (const AnalyzedDependence &D : R.Deps) {
    F += D.Dep.label() + "|" + depStatusName(D.Status) + "|" +
         D.CostBefore.str() + "->" + D.CostAfter.str() + "|eq=" +
         std::to_string(D.NewEqualities) + "|by=" + D.SubsumedBy + "|" +
         (D.Approximated ? "approx|" : "exact|") + D.Prov.Stage;
    for (const std::string &E : D.Prov.Evidence)
      F += ";" + E;
    if (D.Status == DepStatus::Runtime && D.Plan.Valid)
      F += "\n" + D.Plan.emitC("inspect");
    F += "\n";
  }
  return F;
}

void expectThreadCountInvariant(const kernels::Kernel &K,
                                PipelineOptions Opts) {
  Opts.NumThreads = 1;
  PipelineResult Serial = analyzeKernel(K, Opts);
  std::string Want = fingerprint(Serial);
  for (int NT : {2, 3, 8}) {
    Opts.NumThreads = NT;
    PipelineResult R = analyzeKernel(K, Opts);
    EXPECT_EQ(Want, fingerprint(R))
        << K.Name << " diverged at NumThreads=" << NT;
    // The per-stage timing map must cover the same stages (values are
    // wall time and may differ).
    ASSERT_EQ(Serial.StageSeconds.size(), R.StageSeconds.size());
    auto A = Serial.StageSeconds.begin();
    for (const auto &[Stage, Seconds] : R.StageSeconds) {
      (void)Seconds;
      EXPECT_EQ(A->first, Stage);
      ++A;
    }
  }
}

/// Tight budgets for the minutes-long factorization analyses; the
/// determinism contract is budget-independent.
PipelineOptions reducedOptions() {
  PipelineOptions Opts;
  Opts.UseEqualities = false;
  Opts.Simp.SemanticPhase1 = false;
  Opts.Simp.InstantiationRounds = 1;
  Opts.Simp.MaxInstances = 2000;
  Opts.Simp.MaxPhase2Instances = 2;
  Opts.Simp.MaxPieces = 16;
  return Opts;
}

} // namespace

TEST(PipelineParallel, SpMV) {
  expectThreadCountInvariant(kernels::spmvCSR(), {});
}

TEST(PipelineParallel, ForwardSolveCSR) {
  expectThreadCountInvariant(kernels::forwardSolveCSR(), {});
}

TEST(PipelineParallel, ForwardSolveCSC) {
  expectThreadCountInvariant(kernels::forwardSolveCSC(), {});
}

TEST(PipelineParallel, GaussSeidelCSR) {
  expectThreadCountInvariant(kernels::gaussSeidelCSR(), {});
}

TEST(PipelineParallel, LeftCholeskyCSC) {
  expectThreadCountInvariant(kernels::leftCholeskyCSC(), {});
}

TEST(PipelineParallel, IncompleteCholeskyReducedBudget) {
  expectThreadCountInvariant(kernels::incompleteCholeskyCSC(),
                             reducedOptions());
}

TEST(PipelineParallel, IncompleteLU0ReducedBudget) {
  expectThreadCountInvariant(kernels::incompleteLU0CSR(), reducedOptions());
}

TEST(PipelineParallel, ApproximationPathInvariant) {
  // The §8.1 escape hatch rewrites surviving plans after the parallel
  // region; make sure it composes with the fan-out deterministically.
  PipelineOptions Opts;
  Opts.ApproximateExpensive = true;
  expectThreadCountInvariant(kernels::gaussSeidelCSR(), Opts);
}

TEST(PipelineParallel, MoreThreadsThanDependences) {
  PipelineOptions Opts;
  Opts.NumThreads = 64; // clamps to the dependence count internally
  PipelineResult R = analyzeKernel(kernels::spmvCSR(), Opts);
  Opts.NumThreads = 1;
  EXPECT_EQ(fingerprint(analyzeKernel(kernels::spmvCSR(), Opts)),
            fingerprint(R));
}
