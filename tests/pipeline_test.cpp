//===- pipeline_test.cpp - End-to-end Figure-3 pipeline tests --------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// Pins the analysis outcomes that reproduce the paper's headline numbers:
// Table 3 inspector complexities and the Figure 8 reduction narrative for
// the cheap kernels. (Incomplete Cholesky and ILU0 run for minutes and are
// exercised by the Figure 7/8 benches instead.)
//
//===----------------------------------------------------------------------===//

#include "sds/deps/Pipeline.h"
#include "sds/support/JSON.h"

#include <gtest/gtest.h>

using namespace sds;
using namespace sds::deps;
using codegen::Complexity;

TEST(Pipeline, SpMVIsFullyParallel) {
  // §7.1: SpMV needs no domain information at all.
  PipelineResult R = analyzeKernel(kernels::spmvCSR());
  EXPECT_EQ(R.count(DepStatus::Runtime), 0u);
  EXPECT_EQ(R.count(DepStatus::PropertyUnsat), 0u);
  EXPECT_GE(R.count(DepStatus::AffineUnsat), 1u);
}

TEST(Pipeline, ForwardSolveCSRMatchesTable3) {
  PipelineResult R = analyzeKernel(kernels::forwardSolveCSR());
  EXPECT_EQ(R.KernelCost, Complexity::nnz());
  ASSERT_EQ(R.count(DepStatus::Runtime), 1u);
  for (const AnalyzedDependence &D : R.Deps) {
    if (D.Status == DepStatus::Runtime) {
      // Table 3: simplified inspector complexity nnz.
      EXPECT_EQ(D.CostAfter, Complexity::nnz()) << D.CostAfter.str();
      EXPECT_TRUE(D.Plan.Valid);
    }
  }
  // The read->write direction is refuted by triangularity.
  EXPECT_GE(R.count(DepStatus::PropertyUnsat), 1u);
  EXPECT_GE(R.count(DepStatus::AffineUnsat), 1u);
}

TEST(Pipeline, GaussSeidelCSRMatchesTable3) {
  PipelineResult R = analyzeKernel(kernels::gaussSeidelCSR());
  // Table 3: two runtime checks, total 2(nnz); no triangularity available
  // on a general matrix, so both directions stay.
  EXPECT_EQ(R.count(DepStatus::Runtime), 2u);
  for (const AnalyzedDependence &D : R.Deps) {
    if (D.Status == DepStatus::Runtime) {
      EXPECT_EQ(D.CostAfter, Complexity::nnz());
    }
  }
  EXPECT_EQ(R.countExpensiveRuntime(true), 0u);
}

TEST(Pipeline, ForwardSolveCSCMatchesTable3) {
  PipelineResult R = analyzeKernel(kernels::forwardSolveCSC());
  // Table 3: one surviving check of cost nnz; the S2->S2 read test is
  // subsumed by the S2->S1 test (§5).
  EXPECT_EQ(R.count(DepStatus::Runtime), 1u);
  EXPECT_GE(R.count(DepStatus::Subsumed), 1u);
  for (const AnalyzedDependence &D : R.Deps) {
    if (D.Status == DepStatus::Runtime) {
      EXPECT_EQ(D.CostAfter, Complexity::nnz());
    }
  }
}

TEST(Pipeline, LeftCholeskyEqualitiesRemoveExpensiveChecks) {
  PipelineResult R = analyzeKernel(kernels::leftCholeskyCSC());
  // §7.2: every expensive Left Cholesky check becomes cheap through
  // discovered equalities.
  EXPECT_GT(R.countExpensiveRuntime(false), 0u);
  EXPECT_EQ(R.countExpensiveRuntime(true), 0u);
  unsigned TotalEqualities = 0;
  for (const AnalyzedDependence &D : R.Deps)
    TotalEqualities += D.NewEqualities;
  EXPECT_GT(TotalEqualities, 0u);
  EXPECT_LE(R.count(DepStatus::Runtime), 2u);
}

TEST(Pipeline, AblationSwitchesMatter) {
  // Without properties everything satisfiable stays; with them most of
  // forward solve CSC disappears.
  PipelineOptions NoProps;
  NoProps.UseProperties = false;
  NoProps.UseEqualities = false;
  NoProps.UseSubsets = false;
  PipelineResult R1 = analyzeKernel(kernels::forwardSolveCSC(), NoProps);
  PipelineResult R2 = analyzeKernel(kernels::forwardSolveCSC());
  EXPECT_GT(R1.count(DepStatus::Runtime), R2.count(DepStatus::Runtime));
}

TEST(Pipeline, RuntimePlansAreValidAndLabeled) {
  for (const auto &K :
       {kernels::forwardSolveCSR(), kernels::gaussSeidelCSR(),
        kernels::forwardSolveCSC()}) {
    PipelineResult R = analyzeKernel(K);
    for (const AnalyzedDependence &D : R.Deps) {
      if (D.Status != DepStatus::Runtime)
        continue;
      EXPECT_TRUE(D.Plan.Valid) << K.Name << " " << D.Dep.label();
      EXPECT_FALSE(D.Plan.emitC("inspect").empty());
    }
  }
}

TEST(Pipeline, JSONReportRoundTrips) {
  PipelineResult R = analyzeKernel(kernels::forwardSolveCSR());
  std::string Text = R.toJSON();
  auto Parsed = sds::json::parse(Text);
  ASSERT_TRUE(Parsed.Ok) << Parsed.Error << "\n" << Text;
  EXPECT_EQ(Parsed.Val.get("kernel")->asString(), "Forward Solve CSR");
  EXPECT_EQ(Parsed.Val.get("kernel_complexity")->asString(), "nnz");
  const auto &DepList = Parsed.Val.get("dependences")->asArray();
  EXPECT_EQ(DepList.size(), R.Deps.size());
  bool SawInspector = false;
  for (const auto &D : DepList) {
    EXPECT_NE(D.get("status"), nullptr);
    if (D.get("inspector_c"))
      SawInspector = true;
  }
  EXPECT_TRUE(SawInspector);

  // Per-stage wall timings are part of the report: every Figure-3 stage
  // the pipeline ran appears with a non-negative duration.
  const sds::json::Value *Stages = Parsed.Val.get("stage_seconds");
  ASSERT_NE(Stages, nullptr);
  for (const char *Stage :
       {"extraction", "affine_unsat", "property_unsat", "equality_discovery",
        "subsumption", "codegen"}) {
    const sds::json::Value *S = Stages->get(Stage);
    ASSERT_NE(S, nullptr) << Stage;
    EXPECT_GE(S->asDouble(), 0.0) << Stage;
  }
}

TEST(Pipeline, ProvenanceRecordsWhoDecidedEachDependence) {
  PipelineResult R = analyzeKernel(kernels::forwardSolveCSC());
  for (const AnalyzedDependence &D : R.Deps) {
    ASSERT_FALSE(D.Prov.Stage.empty()) << D.Dep.label();
    switch (D.Status) {
    case DepStatus::AffineUnsat:
      EXPECT_EQ(D.Prov.Stage, "affine-unsat");
      break;
    case DepStatus::PropertyUnsat:
      EXPECT_EQ(D.Prov.Stage, "property-unsat");
      // The refutation names at least one applied property instance.
      EXPECT_FALSE(D.Prov.Evidence.empty()) << D.Dep.label();
      break;
    case DepStatus::Subsumed:
      EXPECT_EQ(D.Prov.Stage, "subsumption");
      ASSERT_FALSE(D.Prov.Evidence.empty());
      EXPECT_NE(D.Prov.Evidence[0].find(D.SubsumedBy), std::string::npos);
      break;
    case DepStatus::Runtime:
      EXPECT_TRUE(D.Prov.Stage == "runtime" ||
                  D.Prov.Stage == "equality-discovery")
          << D.Prov.Stage;
      break;
    }
  }
  // Provenance reaches the JSON report for decided dependences.
  auto Parsed = sds::json::parse(R.toJSON());
  ASSERT_TRUE(Parsed.Ok) << Parsed.Error;
  unsigned WithProv = 0;
  for (const auto &D : Parsed.Val.get("dependences")->asArray())
    if (const sds::json::Value *P = D.get("provenance")) {
      EXPECT_NE(P->get("stage"), nullptr);
      EXPECT_NE(P->get("evidence"), nullptr);
      EXPECT_GE(P->get("seconds")->asDouble(), 0.0);
      ++WithProv;
    }
  EXPECT_EQ(WithProv, R.Deps.size());
}

TEST(Pipeline, EqualityDiscoveryProvenanceNamesTheEqualities) {
  PipelineResult R = analyzeKernel(kernels::leftCholeskyCSC());
  bool SawEqualityEvidence = false;
  for (const AnalyzedDependence &D : R.Deps)
    if (D.Prov.Stage == "equality-discovery") {
      EXPECT_GT(D.NewEqualities, 0u);
      EXPECT_FALSE(D.Prov.Evidence.empty());
      SawEqualityEvidence = true;
    }
  EXPECT_TRUE(SawEqualityEvidence);
}

TEST(Pipeline, SummaryMentionsEveryDependence) {
  PipelineResult R = analyzeKernel(kernels::forwardSolveCSR());
  std::string S = R.summary();
  for (const AnalyzedDependence &D : R.Deps)
    EXPECT_NE(S.find(D.Dep.SrcStmt), std::string::npos);
  EXPECT_NE(S.find("Forward Solve CSR"), std::string::npos);
}
