//===- kernels_test.cpp - Table-2 kernel encodings tests -------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/kernels/Kernels.h"
#include "sds/support/JSON.h"

#include <gtest/gtest.h>

using namespace sds::kernels;
using sds::ir::PropertyKind;

TEST(Kernels, SuiteHasSevenEntries) {
  auto All = allKernels();
  ASSERT_EQ(All.size(), 7u); // Table 2
  for (const Kernel &K : All) {
    EXPECT_FALSE(K.Name.empty());
    EXPECT_FALSE(K.Stmts.empty()) << K.Name;
    EXPECT_TRUE(K.Format == "CSR" || K.Format == "CSC") << K.Name;
  }
}

TEST(Kernels, ForwardSolveCSRShape) {
  Kernel K = forwardSolveCSR();
  ASSERT_EQ(K.Stmts.size(), 2u);
  // S1 sits inside the k loop; S2 only inside i.
  EXPECT_EQ(K.Stmts[0].Loops.size(), 2u);
  EXPECT_EQ(K.Stmts[1].Loops.size(), 1u);
  // S1 reads u[col[k]]; S2 writes u[i].
  bool ReadsUCol = false, WritesUI = false;
  for (const Access &A : K.Stmts[0].Accesses)
    if (A.Array == "u" && !A.IsWrite)
      ReadsUCol = true;
  for (const Access &A : K.Stmts[1].Accesses)
    if (A.Array == "u" && A.IsWrite)
      WritesUI = true;
  EXPECT_TRUE(ReadsUCol);
  EXPECT_TRUE(WritesUI);
}

TEST(Kernels, IterationDomainBuildsBoundsAndGuards) {
  Kernel K = incompleteCholeskyCSC();
  const Statement *S3 = nullptr;
  for (const Statement &S : K.Stmts)
    if (S.Name == "S3")
      S3 = &S;
  ASSERT_NE(S3, nullptr);
  EXPECT_EQ(S3->Loops.size(), 4u); // i, m, k, l
  EXPECT_EQ(S3->Guards.constraints().size(), 2u);
  // Domain: 2 bounds per loop + 2 guards = 10 constraints.
  EXPECT_EQ(S3->iterationDomain().constraints().size(), 10u);
}

TEST(Kernels, PropertyJSONParsesAndMatchesDeclaredProperties) {
  for (const Kernel &K : allKernels()) {
    auto J = sds::json::parse(K.PropertyJSON);
    ASSERT_TRUE(J.Ok) << K.Name << ": " << J.Error << "\n" << K.PropertyJSON;
    std::string Error;
    auto PS = sds::ir::PropertySet::fromJSON(J.Val, Error);
    ASSERT_TRUE(PS.has_value()) << K.Name << ": " << Error;
    EXPECT_EQ(PS->properties().size(), K.Properties.properties().size())
        << K.Name;
  }
}

TEST(Kernels, Table2PropertyColumns) {
  // Table 2: every kernel uses strict + periodic monotonicity; the
  // triangular-solve and factorization kernels add triangularity.
  auto Has = [](const Kernel &K, PropertyKind Kind) {
    for (const auto &P : K.Properties.properties())
      if (P.K == Kind)
        return true;
    return false;
  };
  for (const Kernel &K : allKernels()) {
    EXPECT_TRUE(Has(K, PropertyKind::StrictMonotonicIncreasing)) << K.Name;
    EXPECT_TRUE(Has(K, PropertyKind::PeriodicMonotonic)) << K.Name;
  }
  EXPECT_TRUE(Has(forwardSolveCSR(), PropertyKind::TriangularEntriesLE));
  EXPECT_TRUE(Has(forwardSolveCSC(), PropertyKind::TriangularEntriesGE));
  EXPECT_TRUE(
      Has(incompleteCholeskyCSC(), PropertyKind::TriangularEntriesGE));
  EXPECT_TRUE(Has(gaussSeidelCSR(), PropertyKind::SegmentPointer));
  EXPECT_TRUE(Has(incompleteLU0CSR(), PropertyKind::SegmentPointer));
  EXPECT_TRUE(Has(leftCholeskyCSC(), PropertyKind::TriangularEntriesLT));
}

TEST(Kernels, BuilderBalancedLoops) {
  KernelBuilder B("T", "CSR", "test");
  B.loop("i", sds::ir::Expr(0), v("n"))
      .stmt("S1", {write("a", {v("i")})})
      .end();
  Kernel K = B.take();
  ASSERT_EQ(K.Stmts.size(), 1u);
  EXPECT_EQ(K.Stmts[0].Loops.size(), 1u);
}

TEST(Kernels, PrintersAreInformative) {
  Kernel K = forwardSolveCSR();
  std::string S = K.str();
  EXPECT_NE(S.find("Forward Solve CSR"), std::string::npos);
  EXPECT_NE(S.find("u[col(k)]"), std::string::npos);
  EXPECT_NE(S.find("(w)"), std::string::npos);
}
