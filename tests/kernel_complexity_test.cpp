//===- kernel_complexity_test.cpp - Table 3's kernel column ----------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The complexity model must reproduce the paper's per-kernel algorithmic
// complexities (Table 3, fourth column) from the loop-nest encodings
// alone.
//
//===----------------------------------------------------------------------===//

#include "sds/codegen/Inspector.h"
#include "sds/kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace sds;
using codegen::Complexity;

namespace {

Complexity kernelCost(const kernels::Kernel &K) {
  Complexity Max = Complexity::one();
  for (const kernels::Statement &S : K.Stmts) {
    Complexity C = codegen::domainComplexity(S.iterationDomain(), S.ivs());
    if (Max < C)
      Max = C;
  }
  return Max;
}

} // namespace

TEST(KernelComplexity, Table3KernelColumn) {
  // Table 3: k(nnz) for the solves and Gauss-Seidel, K(nnz*(nnz/n)) for
  // SpMV[sic: the paper's k(nnz x nnz/n) entry for SpMV refers to an
  // nnz-dominated bound; our model yields the tight nnz], Left Cholesky
  // K(nnz*(nnz/n)), and K(nnz*(nnz/n)^2) for the incomplete
  // factorizations.
  EXPECT_EQ(kernelCost(kernels::forwardSolveCSR()), Complexity::nnz());
  EXPECT_EQ(kernelCost(kernels::forwardSolveCSC()), Complexity::nnz());
  EXPECT_EQ(kernelCost(kernels::gaussSeidelCSR()), Complexity::nnz());
  EXPECT_EQ(kernelCost(kernels::spmvCSR()), Complexity::nnz());
  EXPECT_EQ(kernelCost(kernels::leftCholeskyCSC()), (Complexity{1, 2}))
      << kernelCost(kernels::leftCholeskyCSC()).str();
  EXPECT_EQ(kernelCost(kernels::incompleteCholeskyCSC()), (Complexity{1, 3}))
      << kernelCost(kernels::incompleteCholeskyCSC()).str();
  EXPECT_EQ(kernelCost(kernels::incompleteLU0CSR()), (Complexity{1, 3}))
      << kernelCost(kernels::incompleteLU0CSR()).str();
}

TEST(KernelComplexity, StatementGranularity) {
  // Within Incomplete Cholesky, S1 is O(n), S2 is O(nnz), S3 dominates.
  kernels::Kernel K = kernels::incompleteCholeskyCSC();
  std::map<std::string, Complexity> ByStmt;
  for (const kernels::Statement &S : K.Stmts) {
    Complexity C = codegen::domainComplexity(S.iterationDomain(), S.ivs());
    auto It = ByStmt.find(S.Name);
    if (It == ByStmt.end() || It->second < C)
      ByStmt[S.Name] = C;
  }
  EXPECT_EQ(ByStmt["S1"], Complexity::n());
  EXPECT_EQ(ByStmt["S2"], Complexity::nnz());
  EXPECT_EQ(ByStmt["S3"], (Complexity{1, 3}));
}
