//===- approximate_test.cpp - Over-approximation tests (§8.1) --------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/codegen/Approximate.h"
#include "sds/ir/Parser.h"

#include <gtest/gtest.h>

#include <set>

using namespace sds;
using namespace sds::codegen;

namespace {
ir::SparseRelation parse(const char *Text) {
  auto R = ir::parseRelation(Text);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.Rel;
}
} // namespace

TEST(RelaxAway, DropsConstraintsAndVars) {
  ir::SparseRelation R = parse(
      "{ [i, k] -> [i'] : 0 <= i < n && rowptr(i) <= k < rowptr(i + 1) && "
      "col(k) = i' && i < i' && 0 <= i' < n }");
  ir::SparseRelation Relaxed = relaxAway(R, {"k"});
  EXPECT_EQ(Relaxed.InVars, std::vector<std::string>{"i"});
  // Constraints mentioning k (even inside col(k)) are gone.
  for (const ir::Constraint &C : Relaxed.Conj.constraints()) {
    std::vector<std::string> Vars;
    C.E.collectVars(Vars);
    EXPECT_EQ(std::find(Vars.begin(), Vars.end(), "k"), Vars.end())
        << C.str();
  }
  EXPECT_EQ(Relaxed.Conj.constraints().size(), 5u); // i, i' bounds + i<i'
}

TEST(RelaxAway, NeverDropsOuterIterators) {
  ir::SparseRelation R =
      parse("{ [i, k] -> [i'] : 0 <= i < n && i <= k && i < i' < n }");
  ir::SparseRelation Relaxed = relaxAway(R, {"i", "i'", "k"});
  EXPECT_EQ(Relaxed.InVars, std::vector<std::string>{"i"});
}

TEST(ApproximateToCost, ReducesCostMonotonically) {
  // A two-inner-loop relation that a target of nnz forces to shed work.
  ir::SparseRelation R = parse(
      "{ [i, k, l] -> [i'] : 0 <= i < n && rowptr(i) <= k < rowptr(i + 1) "
      "&& rowptr(i) <= l < rowptr(i + 1) && col(l) = i' && i < i' && "
      "0 <= i' < n }");
  Complexity Before = buildInspectorPlan(R).Cost;
  EXPECT_EQ(Before, (Complexity{1, 2})); // n * d * d

  ApproximationResult A = approximateToCost(R, Complexity::nnz());
  EXPECT_TRUE(A.Changed);
  EXPECT_LE(A.Cost, Complexity::nnz());
  EXPECT_EQ(A.DroppedVars.size(), 1u); // dropping k suffices
}

TEST(ApproximateToCost, NoChangeWhenAlreadyCheap) {
  ir::SparseRelation R = parse("{ [i] -> [i'] : 0 <= i < i' < n }");
  Complexity C = buildInspectorPlan(R).Cost;
  ApproximationResult A = approximateToCost(R, C);
  EXPECT_FALSE(A.Changed);
  EXPECT_TRUE(A.DroppedVars.empty());
}

TEST(ApproximateToCost, RefusesUnhelpfulRelaxation) {
  // i' is solved from col(k): dropping k would *raise* the cost (i' must
  // then be searched), so the approximation must refuse to change
  // anything even though the target is unmet.
  ir::SparseRelation R = parse(
      "{ [i, k] -> [i'] : 0 <= i < n && rowptr(i) <= k < rowptr(i + 1) && "
      "col(k) = i' && i < i' && 0 <= i' < n }");
  ApproximationResult A = approximateToCost(R, Complexity::n());
  EXPECT_FALSE(A.Changed);
  EXPECT_EQ(A.Cost, Complexity::nnz());
}

TEST(ApproximateToCost, ResultIsSuperset) {
  // Enumerate both relations on a tiny concrete binding: every original
  // edge must survive relaxation (the over-approximation guarantee).
  // The extra l loop with its guard makes the exact inspector n*d^2; the
  // approximation sheds l (and its filter col(l) <= i), enlarging the
  // edge set.
  ir::SparseRelation R = parse(
      "{ [i, k, l] -> [i'] : 0 <= i < n && "
      "rowptr(i) <= k < rowptr(i + 1) && "
      "rowptr(i) <= l < rowptr(i + 1) && col(l) <= i && "
      "col(k) = i' && i < i' && 0 <= i' < n }");
  ApproximationResult A = approximateToCost(R, Complexity::nnz());
  ASSERT_TRUE(A.Changed);

  std::vector<int> RowPtr = {0, 1, 2, 4, 7};
  std::vector<int> Col = {0, 1, 0, 2, 0, 2, 3};
  UFEnvironment Env;
  Env.bindArray("rowptr", RowPtr);
  Env.bindArray("col", Col);
  Env.Params["n"] = 4;

  auto Edges = [&](const ir::SparseRelation &Rel) {
    std::set<std::pair<int64_t, int64_t>> Out;
    InspectorPlan P = buildInspectorPlan(Rel);
    EXPECT_TRUE(P.Valid) << P.WhyInvalid;
    runInspector(P, Env,
                 [&](int64_t S, int64_t D) { Out.insert({S, D}); });
    return Out;
  };
  auto Original = Edges(R);
  auto Relaxed = Edges(A.Rel);
  for (const auto &E : Original)
    EXPECT_TRUE(Relaxed.count(E))
        << "lost edge " << E.first << "->" << E.second;
  EXPECT_GE(Relaxed.size(), Original.size());
}
