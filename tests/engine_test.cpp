//===- engine_test.cpp - Engine memoization and fingerprinting -------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The serving facade's contract: one cold analysis per (kernel, options)
// and one inspection per (kernel, matrix) for the life of the engine,
// warm hits share the cached objects, artifacts warm-start the kernel
// tier, and the matrix fingerprint never aliases two different bindings.
//
//===----------------------------------------------------------------------===//

#include "sds/engine/Engine.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace sds;
using namespace sds::rt;

namespace {

CSRMatrix randomSPD(int N, int Nnz, int Band, uint64_t Seed) {
  GeneratorConfig C;
  C.N = N;
  C.AvgNnzPerRow = Nnz;
  C.Bandwidth = Band;
  C.Seed = Seed;
  return generateSPDLike(C);
}

codegen::UFEnvironment lowerCSC(int N, uint64_t Seed) {
  CSCMatrix L = toCSC(lowerTriangle(randomSPD(N, 5, 12, Seed)));
  return driver::bindCSC(L);
}

} // namespace

TEST(EngineKernelTier, ColdOnceThenWarm) {
  engine::Engine E;
  kernels::Kernel K = kernels::forwardSolveCSC();
  auto A = E.compiled(K);
  auto B = E.compiled(K);
  EXPECT_EQ(A.get(), B.get()); // shared, not re-analyzed
  engine::EngineStats S = E.stats();
  EXPECT_EQ(S.KernelCold, 1u);
  EXPECT_EQ(S.KernelWarm, 1u);
  EXPECT_EQ(A->KernelName, K.Name);
  EXPECT_EQ(A->Options.key(), "PES--");
}

TEST(EngineMatrixTier, WarmHitSharesPlanColdMissDoesNot) {
  engine::Engine E;
  kernels::Kernel K = kernels::forwardSolveCSC();
  codegen::UFEnvironment Env = lowerCSC(120, 7);
  int N = static_cast<int>(Env.Params.at("n"));

  auto P1 = E.plan(K, Env, N);
  auto P2 = E.plan(K, Env, N);
  EXPECT_EQ(P1.get(), P2.get());
  engine::EngineStats S = E.stats();
  EXPECT_EQ(S.MatrixCold, 1u);
  EXPECT_EQ(S.MatrixWarm, 1u);
  EXPECT_TRUE(rt::certifySchedule(P1->Inspection.Graph, P1->Schedule));

  // A different matrix of the same kernel is a different plan.
  codegen::UFEnvironment Env2 = lowerCSC(120, 8);
  auto P3 = E.plan(K, Env2, static_cast<int>(Env2.Params.at("n")));
  EXPECT_NE(P1.get(), P3.get());
  EXPECT_EQ(E.stats().MatrixCold, 2u);
}

TEST(EngineMatrixTier, EvictionPastCapacity) {
  engine::EngineOptions Opts;
  Opts.MaxMatrixPlans = 1;
  engine::Engine E(Opts);
  kernels::Kernel K = kernels::forwardSolveCSC();
  codegen::UFEnvironment EnvA = lowerCSC(100, 1);
  codegen::UFEnvironment EnvB = lowerCSC(100, 2);
  (void)E.plan(K, EnvA, static_cast<int>(EnvA.Params.at("n")));
  (void)E.plan(K, EnvB, static_cast<int>(EnvB.Params.at("n")));
  engine::EngineStats S = E.stats();
  EXPECT_EQ(S.MatrixCold, 2u);
  EXPECT_GE(S.MatrixEvicted, 1u);
}

TEST(EngineMatrixTier, LruKeepsHotPlanThroughColdScan) {
  // Regression: the matrix tier evicts least-recently-USED, not
  // first-inserted. A hot plan touched between one-shot cold fills must
  // survive a scan longer than the cache capacity.
  engine::EngineOptions Opts;
  Opts.MaxMatrixPlans = 2;
  engine::Engine E(Opts);
  kernels::Kernel K = kernels::forwardSolveCSC();
  codegen::UFEnvironment Hot = lowerCSC(100, 10);
  int HotN = static_cast<int>(Hot.Params.at("n"));
  auto P = E.plan(K, Hot, HotN);
  for (uint64_t Seed = 20; Seed < 24; ++Seed) {
    codegen::UFEnvironment Cold = lowerCSC(100, Seed);
    (void)E.plan(K, Cold, static_cast<int>(Cold.Params.at("n")));
    EXPECT_EQ(E.plan(K, Hot, HotN).get(), P.get()); // still the same object
  }
  engine::EngineStats S = E.stats();
  EXPECT_EQ(S.MatrixCold, 5u);    // hot + 4 scan keys
  EXPECT_EQ(S.MatrixWarm, 4u);    // every re-touch of the hot plan
  EXPECT_EQ(S.MatrixEvicted, 3u); // only the scan's own entries
}

TEST(EngineFingerprint, DistinguishesContentsNotIdentity) {
  // Two binds of the same matrix data fingerprint identically...
  CSCMatrix L = toCSC(lowerTriangle(randomSPD(80, 5, 12, 3)));
  uint64_t F1 = engine::fingerprintEnvironment(driver::bindCSC(L));
  uint64_t F2 = engine::fingerprintEnvironment(driver::bindCSC(L));
  EXPECT_EQ(F1, F2);

  // ...while one changed index, one changed parameter, or one renamed
  // array each produce a different fingerprint.
  CSCMatrix M = L;
  ASSERT_FALSE(M.RowIdx.empty());
  M.RowIdx[0] = M.RowIdx[0] == 0 ? 1 : 0;
  EXPECT_NE(F1, engine::fingerprintEnvironment(driver::bindCSC(M)));

  codegen::UFEnvironment Env = driver::bindCSC(L);
  Env.Params["n"] += 1;
  EXPECT_NE(F1, engine::fingerprintEnvironment(Env));
}

TEST(EngineArtifacts, LoadWarmStartsTheKernelTier) {
  kernels::Kernel K = kernels::forwardSolveCSC();
  std::string Path = ::testing::TempDir() + "sds_engine_artifact.json";
  codegen::UFEnvironment Env = lowerCSC(120, 7);
  int N = static_cast<int>(Env.Params.at("n"));

  engine::Engine Producer;
  ASSERT_TRUE(Producer.saveArtifact(K, Path).ok());
  auto FreshPlan = Producer.plan(K, Env, N);

  engine::Engine Consumer;
  ASSERT_TRUE(Consumer.loadArtifact(Path).ok());
  engine::EngineStats S = Consumer.stats();
  EXPECT_EQ(S.KernelLoaded, 1u);
  EXPECT_EQ(S.KernelCold, 0u);

  // compiled() now hits warm — the analysis pipeline never runs in this
  // process — and the plan built from the loaded artifact is identical.
  auto CK = Consumer.compiled(K);
  EXPECT_EQ(Consumer.stats().KernelWarm, 1u);
  EXPECT_EQ(Consumer.stats().KernelCold, 0u);
  EXPECT_EQ(artifact::serialize(*CK),
            artifact::serialize(*Producer.compiled(K)));

  auto LoadedPlan = Consumer.plan(K, Env, N);
  ASSERT_EQ(FreshPlan->Inspection.Graph.numNodes(),
            LoadedPlan->Inspection.Graph.numNodes());
  EXPECT_EQ(FreshPlan->Inspection.Graph.numEdges(),
            LoadedPlan->Inspection.Graph.numEdges());
  EXPECT_EQ(FreshPlan->Schedule.Waves.Waves, LoadedPlan->Schedule.Waves.Waves);
  std::remove(Path.c_str());
}

TEST(EngineArtifacts, RejectedBlobLeavesCacheUntouched) {
  engine::Engine E;
  std::string Path = ::testing::TempDir() + "sds_engine_corrupt.json";
  FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::fputs("{\"magic\":\"nope\"}", F);
  std::fclose(F);
  support::Status S = E.loadArtifact(Path);
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(E.stats().KernelLoaded, 0u);
  std::remove(Path.c_str());
}

TEST(EngineClear, DropsTiersKeepsStats) {
  engine::Engine E;
  kernels::Kernel K = kernels::forwardSolveCSC();
  (void)E.compiled(K);
  E.clear();
  (void)E.compiled(K);
  engine::EngineStats S = E.stats();
  EXPECT_EQ(S.KernelCold, 2u); // cleared tier re-fills cold
}
