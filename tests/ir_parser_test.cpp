//===- ir_parser_test.cpp - Relation parser tests --------------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace sds::ir;

TEST(Parser, PaperForwardSolveRelation) {
  // The flow dependence from §2.1 (u[col[k]]@S1 read vs u[i]@S2 write).
  auto R = parseRelation("{ [i] -> [i'] : exists(k') : i < i' && "
                         "i = col(k') && 0 <= i < n && 0 <= i' < n && "
                         "rowptr(i') <= k' < rowptr(i'+1) }");
  ASSERT_TRUE(R.Ok) << R.Error;
  const SparseRelation &Rel = R.Rel;
  EXPECT_EQ(Rel.InVars, std::vector<std::string>{"i"});
  EXPECT_EQ(Rel.OutVars, std::vector<std::string>{"i'"});
  EXPECT_EQ(Rel.ExistVars, std::vector<std::string>{"k'"});
  // Chained 0 <= i < n produces two constraints; total:
  // i<i', i=col(k'), 0<=i, i<n, 0<=i', i'<n, rowptr(i')<=k', k'<rowptr(i'+1)
  EXPECT_EQ(Rel.Conj.constraints().size(), 8u);
  EXPECT_EQ(Rel.params(), std::vector<std::string>{"n"});
}

TEST(Parser, SetWithoutOutputTuple) {
  auto R = parseRelation("{ [i, j] : 0 <= i < n && i <= j }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Rel.InVars.size(), 2u);
  EXPECT_TRUE(R.Rel.OutVars.empty());
  EXPECT_TRUE(R.Rel.ExistVars.empty());
}

TEST(Parser, ChainedComparisons) {
  auto R = parseRelation("{ [i] : 0 <= i < n <= m }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Rel.Conj.constraints().size(), 3u);
}

TEST(Parser, GreaterThanOperators) {
  auto R = parseRelation("{ [i, j] : i > j && i >= 2 j }");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Rel.Conj.constraints().size(), 2u);
  // i > j becomes i - j - 1 >= 0.
  EXPECT_EQ(R.Rel.Conj.constraints()[0].str(), "i - j - 1 >= 0");
  EXPECT_EQ(R.Rel.Conj.constraints()[1].str(), "i - 2 j >= 0");
}

TEST(Parser, EqualityBothSpellings) {
  auto R1 = parseRelation("{ [i] : i = 5 }");
  auto R2 = parseRelation("{ [i] : i == 5 }");
  ASSERT_TRUE(R1.Ok);
  ASSERT_TRUE(R2.Ok);
  EXPECT_EQ(R1.Rel.Conj.constraints()[0], R2.Rel.Conj.constraints()[0]);
}

TEST(Parser, NestedCallsAndArithmetic) {
  auto R = parseRelation(
      "{ [i, m, k, l] : col(row(m)) <= k < col(row(m) + 1) && "
      "2*k - 3 <= col(i + 1) }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Rel.Conj.constraints().size(), 3u);
}

TEST(Parser, PrimedIdentifiers) {
  auto R = parseRelation("{ [i] -> [i', m'] : i' <= m' && i < i' }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Rel.OutVars[0], "i'");
  EXPECT_EQ(R.Rel.OutVars[1], "m'");
}

TEST(Parser, ExistsWithoutParens) {
  auto R = parseRelation("{ [i] -> [j] : exists k, l : i <= k && k < j }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Rel.ExistVars, (std::vector<std::string>{"k", "l"}));
}

TEST(Parser, NegativeCoefficientsAndUnaryMinus) {
  auto R = parseRelation("{ [i] : -i + 3 >= 0 && i >= -2 }");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Rel.Conj.constraints()[0].str(), "-i + 3 >= 0");
}

TEST(Parser, RejectsDisequality) {
  auto R = parseRelation("{ [i] -> [i'] : i != i' }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("disequal"), std::string::npos);
}

TEST(Parser, RejectsMalformed) {
  EXPECT_FALSE(parseRelation("").Ok);
  EXPECT_FALSE(parseRelation("{ [i] : i < }").Ok);
  EXPECT_FALSE(parseRelation("{ [i] i < n }").Ok);
  EXPECT_FALSE(parseRelation("{ [i] : i < n").Ok);
  EXPECT_FALSE(parseRelation("{ [i] : i < n } garbage").Ok);
  EXPECT_FALSE(parseRelation("{ [1] : i < n }").Ok);
  EXPECT_FALSE(parseRelation("{ [i] : i }").Ok); // bare expression
}

TEST(Parser, RoundTripThroughPrinter) {
  const char *Text = "{ [i] -> [i'] : exists(k') : i < i' && "
                     "i = col(k') && rowptr(i') <= k' < rowptr(i' + 1) }";
  auto R1 = parseRelation(Text);
  ASSERT_TRUE(R1.Ok);
  auto R2 = parseRelation(R1.Rel.str());
  ASSERT_TRUE(R2.Ok) << R2.Error << " in: " << R1.Rel.str();
  EXPECT_EQ(R1.Rel.str(), R2.Rel.str());
}

TEST(Parser, ExprEntryPoint) {
  auto E = parseExpr("rowptr(i + 1) - 1");
  ASSERT_TRUE(E.Ok);
  EXPECT_EQ(E.E.str(), "rowptr(i + 1) - 1");
  EXPECT_FALSE(parseExpr("rowptr(").Ok);
  EXPECT_FALSE(parseExpr("a b").Ok);
}

namespace {

/// Random expression generator for the print/reparse fuzz test.
sds::ir::Expr randomExpr(std::mt19937 &Rng, int Depth) {
  using sds::ir::Expr;
  std::uniform_int_distribution<int> Coef(-3, 3);
  std::uniform_int_distribution<int> NumTerms(1, 3);
  std::uniform_int_distribution<int> Kind(0, Depth > 0 ? 2 : 1);
  const char *Vars[] = {"i", "j", "k'", "n"};
  const char *Fns[] = {"rowptr", "col", "diag"};
  std::uniform_int_distribution<int> VarPick(0, 3), FnPick(0, 2);
  Expr E(Coef(Rng));
  int T = NumTerms(Rng);
  for (int I = 0; I < T; ++I) {
    int C = Coef(Rng);
    if (C == 0)
      C = 1;
    switch (Kind(Rng)) {
    case 0:
      E += Expr::var(Vars[VarPick(Rng)]) * C;
      break;
    case 1:
      E += Expr(C);
      break;
    default:
      E += Expr::call(Fns[FnPick(Rng)], {randomExpr(Rng, Depth - 1)}) * C;
    }
  }
  return E;
}

} // namespace

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, PrintReparseRoundTrip) {
  std::mt19937 Rng(static_cast<unsigned>(GetParam()));
  for (int I = 0; I < 20; ++I) {
    sds::ir::Expr E = randomExpr(Rng, 2);
    auto R = parseExpr(E.str());
    ASSERT_TRUE(R.Ok) << E.str() << ": " << R.Error;
    EXPECT_EQ(R.E, E) << E.str() << " reparsed as " << R.E.str();
  }
}

TEST_P(ParserFuzz, RelationRoundTrip) {
  std::mt19937 Rng(static_cast<unsigned>(GetParam()) + 77);
  SparseRelation R;
  R.InVars = {"i"};
  R.OutVars = {"i'"};
  for (int I = 0; I < 4; ++I) {
    sds::ir::Expr E = randomExpr(Rng, 1);
    if (I % 2)
      R.Conj.add(sds::ir::Constraint::geq(E));
    else
      R.Conj.add(sds::ir::Constraint::eq(E));
  }
  auto P = parseRelation(R.str());
  ASSERT_TRUE(P.Ok) << R.str() << ": " << P.Error;
  EXPECT_EQ(P.Rel.str(), R.str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 10));

TEST(Parser, HugeIntegerLiteralRejectedGracefully) {
  auto R = parseRelation("{ [i] : i < 99999999999999999999999999 }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of range"), std::string::npos);
}

TEST(Parser, CoefficientTimesCall) {
  auto E = parseExpr("2 col(k) + 3*row(m)");
  ASSERT_TRUE(E.Ok) << E.Error;
  EXPECT_EQ(E.E.str(), "2 col(k) + 3 row(m)");
}
