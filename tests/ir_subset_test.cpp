//===- ir_subset_test.cpp - §5 subsumption tests ---------------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// Anchored on the paper's §5.3 worked example: the Incomplete Cholesky
// dependence R2 (val[k]@S3 -> val[l]@S3) is subsumed by R1
// (val[k]@S3 -> val[m]@S2).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Parser.h"
#include "sds/ir/SubsetDetection.h"

#include <gtest/gtest.h>

using namespace sds::ir;
using sds::presburger::Ternary;

namespace {
SparseRelation parse(const char *Text) {
  auto R = parseRelation(Text);
  EXPECT_TRUE(R.Ok) << R.Error << " in " << Text;
  return R.Rel;
}
} // namespace

TEST(EliminateDeterminedVars, UnitEqualitySubstitution) {
  SparseRelation R = parse("{ [i, k] -> [i', m'] : k = m' && "
                           "col(i') <= m' < col(i' + 1) && i < i' }");
  std::vector<std::string> Left = eliminateDeterminedVars(R, {"m'"});
  EXPECT_TRUE(Left.empty());
  EXPECT_EQ(R.OutVars, std::vector<std::string>{"i'"});
  // col(i') <= k survives the substitution.
  Constraint Want = Constraint::le(Expr::call("col", {Expr::var("i'")}),
                                   Expr::var("k"));
  EXPECT_TRUE(R.Conj.impliesSyntactically(Want)) << R.str();
}

TEST(EliminateDeterminedVars, RefusesCallBoundVars) {
  SparseRelation R = parse("{ [i] -> [i', k'] : i = col(k') && i < i' }");
  std::vector<std::string> Left = eliminateDeterminedVars(R, {"k'"});
  ASSERT_EQ(Left.size(), 1u);
  EXPECT_EQ(Left[0], "k'");
}

TEST(Subsumes, IdenticalRelations) {
  const char *Text = "{ [i, k] -> [i', m'] : k = m' && i < i' && "
                     "col(i') <= m' < col(i' + 1) && 0 <= i < n }";
  SparseRelation A = parse(Text), B = parse(Text);
  EXPECT_EQ(subsumes(A, B), Ternary::True);
}

TEST(Subsumes, StrictSubset) {
  // B adds a guard, so B's manifestations are a subset of A's.
  SparseRelation A = parse("{ [i, k] -> [i', m'] : k = m' && i < i' && "
                           "col(i') <= m' < col(i' + 1) && 0 <= i < n }");
  SparseRelation B = parse("{ [i, k] -> [i', m'] : k = m' && i < i' && "
                           "col(i') <= m' < col(i' + 1) && 0 <= i < n && "
                           "i + 5 <= i' }");
  EXPECT_EQ(subsumes(A, B), Ternary::True);
  EXPECT_NE(subsumes(B, A), Ternary::True);
}

TEST(Subsumes, DifferentInputTuplesRefused) {
  SparseRelation A = parse("{ [i, k] -> [i'] : i < i' && k <= i }");
  SparseRelation B = parse("{ [i, m] -> [i'] : i < i' && m <= i }");
  EXPECT_EQ(subsumes(A, B), Ternary::Unknown);
}

TEST(Subsumes, KeptSideWithUndeterminedSinkRefused) {
  // Kept relation's k' cannot be eliminated exactly -> no claim.
  SparseRelation A = parse("{ [i] -> [i', k'] : i < i' && "
                           "rowptr(i') <= k' < rowptr(i' + 1) }");
  SparseRelation B = parse("{ [i] -> [i'] : i < i' }");
  EXPECT_EQ(subsumes(A, B), Ternary::Unknown);
}

//===----------------------------------------------------------------------===//
// The paper's §5.3 Incomplete Cholesky example.
//===----------------------------------------------------------------------===//

namespace {

// R1: write val[k]@S3 at [i,m,k,l], read val[m']@S2 at [i',m'].
const char *R1Text =
    "{ [i, m, k, l] -> [i', m'] : k = m' && 0 <= i && i < i' && i' < n && "
    "col(i) + 1 <= m && m <= l && l < col(i + 1) && "
    "row(l + 1) <= row(k) && "
    "col(row(m)) <= k && k < col(row(m) + 1) && row(l) = row(k) && "
    "col(i') + 1 <= m' && m' < col(i' + 1) }";

// R2: write val[k]@S3 at [i,m,k,l], read val[l']@S3 at [i',m',k',l'].
const char *R2Text =
    "{ [i, m, k, l] -> [i', m', k', l'] : k = l' && 0 <= i && i < i' && "
    "i' < n && "
    "col(i) + 1 <= m && m <= l && l < col(i + 1) && "
    "row(l + 1) <= row(k) && "
    "col(row(m)) <= k && k < col(row(m) + 1) && row(l) = row(k) && "
    "col(i') + 1 <= m' && m' <= l' && l' < col(i' + 1) && "
    "row(l' + 1) <= row(k') && "
    "col(row(m')) <= k' && k' < col(row(m') + 1) && row(l') = row(k') }";

} // namespace

TEST(Subsumes, PaperSection53Example) {
  SparseRelation R1 = parse(R1Text);
  SparseRelation R2 = parse(R2Text);
  // R2's runtime test is redundant given R1's (paper's conclusion).
  EXPECT_EQ(subsumes(R1, R2), Ternary::True);
}

TEST(Subsumes, PaperSection53ReverseNotClaimed) {
  SparseRelation R1 = parse(R1Text);
  SparseRelation R2 = parse(R2Text);
  // The reverse direction must not be claimed: R2 has undetermined sink
  // witnesses (m', k'), so it cannot act as the kept side.
  EXPECT_NE(subsumes(R2, R1), Ternary::True);
}

TEST(Subsumes, EdgeLevelSanityOnConcreteArrays) {
  // Brute-force cross-check on a tiny concrete interpretation: every edge
  // of the subsumed relation must be an edge of the keeper. col/row here
  // describe a 4-column lower-triangular CSC factor.
  SparseRelation R1 = parse(R1Text);
  SparseRelation R2 = parse(R2Text);
  ASSERT_EQ(subsumes(R1, R2), Ternary::True);

  // 3-column lower-triangular CSC factor (diagonal first per column).
  std::vector<int> ColPtr = {0, 2, 4, 5};
  std::vector<int> RowIdx = {0, 1, 1, 2, 2};
  int N = 3, NNZ = 5;

  auto Enumerate = [&](const SparseRelation &R) {
    // Brute force over all variables in small ranges.
    std::vector<std::pair<int, int>> Edges;
    unsigned NumVars = R.InVars.size() + R.OutVars.size();
    std::vector<std::string> Vars = R.InVars;
    Vars.insert(Vars.end(), R.OutVars.begin(), R.OutVars.end());
    std::vector<int64_t> Vals(NumVars, 0);
    std::function<int64_t(const Expr &)> Eval = [&](const Expr &E) {
      int64_t V = E.constant();
      for (const Expr::Term &T : E.terms()) {
        int64_t A = 0;
        if (T.A.isVar()) {
          if (T.A.Name == "n") {
            A = N;
          } else {
            for (unsigned J = 0; J < NumVars; ++J)
              if (Vars[J] == T.A.Name)
                A = Vals[J];
          }
        } else {
          int64_t Arg = Eval(T.A.Args[0]);
          if (T.A.Name == "col")
            A = (Arg >= 0 && Arg <= N) ? ColPtr[Arg] : 999;
          else
            A = (Arg >= 0 && Arg < NNZ) ? RowIdx[Arg] : 999;
        }
        V += T.Coeff * A;
      }
      return V;
    };
    std::function<void(unsigned)> Rec = [&](unsigned D) {
      if (D == NumVars) {
        for (const Constraint &C : R.Conj.constraints()) {
          int64_t V = Eval(C.E);
          if (C.isEq() ? (V != 0) : (V < 0))
            return;
        }
        Edges.push_back({static_cast<int>(Vals[0]),
                         static_cast<int>(Vals[R.InVars.size()])});
        return;
      }
      // Column iterators (i, i') range over [0, N), position iterators
      // over [0, NNZ).
      int64_t Range = (Vars[D][0] == 'i') ? N : NNZ;
      for (int64_t V = 0; V < Range; ++V) {
        Vals[D] = V;
        Rec(D + 1);
      }
    };
    Rec(0);
    return Edges;
  };

  auto E1 = Enumerate(R1);
  auto E2 = Enumerate(R2);
  for (const auto &E : E2)
    EXPECT_NE(std::find(E1.begin(), E1.end(), E), E1.end())
        << "edge " << E.first << "->" << E.second
        << " of R2 not covered by R1";
}
