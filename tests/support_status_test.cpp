//===- support_status_test.cpp - Status error-currency tests --------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/support/Status.h"

#include <gtest/gtest.h>

using namespace sds::support;

TEST(Status, DefaultIsOk) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::Ok);
  EXPECT_TRUE(S.message().empty());
  EXPECT_EQ(S.str(), "ok");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(invalidArgument("x").code(), StatusCode::InvalidArgument);
  EXPECT_EQ(parseError("x").code(), StatusCode::ParseError);
  EXPECT_EQ(outOfRange("x").code(), StatusCode::OutOfRange);
  EXPECT_EQ(overflowError("x").code(), StatusCode::Overflow);
  EXPECT_EQ(ioError("x").code(), StatusCode::IOError);
  EXPECT_EQ(validationFailed("x").code(), StatusCode::ValidationFailed);
  EXPECT_EQ(resourceExhausted("x").code(), StatusCode::ResourceExhausted);
  EXPECT_EQ(internalError("x").code(), StatusCode::Internal);

  Status S = parseError("bad banner");
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.message(), "bad banner");
  EXPECT_EQ(S.str(), "parse-error: bad banner");
}

TEST(Status, ContextChainsOutsideIn) {
  Status S = outOfRange("column 12 out of range")
                 .withContext("entry 17")
                 .withContext("load 'A.mtx'");
  EXPECT_EQ(S.message(), "load 'A.mtx': entry 17: column 12 out of range");
  EXPECT_EQ(S.code(), StatusCode::OutOfRange);
}

TEST(Status, ContextIsNoOpOnOk) {
  Status S = Status().withContext("load");
  EXPECT_TRUE(S.ok());
  EXPECT_TRUE(S.message().empty());
}

TEST(Status, ConstRefContextDoesNotMutateOriginal) {
  const Status S = ioError("disk gone");
  Status T = S.withContext("save");
  EXPECT_EQ(S.message(), "disk gone");
  EXPECT_EQ(T.message(), "save: disk gone");
}

TEST(Status, EveryCodeHasAName) {
  for (StatusCode C :
       {StatusCode::Ok, StatusCode::InvalidArgument, StatusCode::ParseError,
        StatusCode::OutOfRange, StatusCode::Overflow, StatusCode::IOError,
        StatusCode::ValidationFailed, StatusCode::ResourceExhausted,
        StatusCode::Internal})
    EXPECT_STRNE(statusCodeName(C), "?");
}
