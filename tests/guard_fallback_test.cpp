//===- guard_fallback_test.cpp - Guarded execution / fallback tests -------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The guard contract end to end: clean inputs are trusted and run the
// simplified inspectors; corrupted inputs are detected and (in fallback
// mode) rerouted to the baseline inspectors, whose graph is bit-identical
// to running baselineAnalysis() directly; no fault in a mini campaign
// yields a silently wrong schedule.
//
//===----------------------------------------------------------------------===//

#include "sds/guard/FaultInjection.h"
#include "sds/guard/Guarded.h"

#include <gtest/gtest.h>

using namespace sds;
using namespace sds::guard;

namespace {

struct Fixture {
  rt::CSRMatrix Lower;
  kernels::Kernel K;
  deps::PipelineResult Analysis;
  codegen::UFEnvironment Env;

  Fixture()
      : Lower(rt::lowerTriangle(rt::generateSPDLike({60, 5, 10, 17}))),
        K(kernels::forwardSolveCSR()), Analysis(deps::analyzeKernel(K)),
        Env(driver::bindCSR(Lower)) {}
};

/// The fixture is expensive (a full pipeline analysis); build it once.
const Fixture &fx() {
  static Fixture F;
  return F;
}

bool sameGraph(const rt::DependenceGraph &A, const rt::DependenceGraph &B,
               int N) {
  if (A.numEdges() != B.numEdges())
    return false;
  for (int V = 0; V < N; ++V) {
    std::span<const int> SA = A.successors(V), SB = B.successors(V);
    if (!std::equal(SA.begin(), SA.end(), SB.begin(), SB.end()))
      return false;
  }
  return true;
}

/// A corrupted copy of the fixture environment that breaks the property
/// the analysis actually *cited*: forward solve CSR's only property-unsat
/// core is {triangular_entries_le(col, rowptr)}, and an out-of-range col
/// entry violates it for whatever row holds that entry.
codegen::UFEnvironment corruptedEnv() {
  codegen::UFEnvironment Bad;
  std::string Desc;
  FaultSpec S{"col", FaultKind::OutOfRange, 7};
  bool Injected = injectFault(fx().Env, S, Bad, Desc);
  EXPECT_TRUE(Injected) << Desc;
  return Bad;
}

/// A corruption of an *uncited* aspect: swapping two adjacent col entries
/// within a row breaks periodic_monotonic(col, rowptr) — declared but
/// cited by no unsat core — while preserving the per-row entry multiset
/// that triangular_entries_le constrains.
codegen::UFEnvironment uncitedCorruptedEnv() {
  codegen::UFEnvironment Bad;
  std::string Desc;
  FaultSpec S{"col", FaultKind::SwapAdjacent, 7};
  bool Injected = injectFault(fx().Env, S, Bad, Desc);
  EXPECT_TRUE(Injected) << Desc;
  return Bad;
}

} // namespace

TEST(GuardMode, ParseRoundTrips) {
  EXPECT_EQ(parseGuardMode("off"), GuardMode::Off);
  EXPECT_EQ(parseGuardMode("warn"), GuardMode::Warn);
  EXPECT_EQ(parseGuardMode("fallback"), GuardMode::Fallback);
  EXPECT_FALSE(parseGuardMode("strict").has_value());
  EXPECT_STREQ(guardModeName(GuardMode::Fallback), "fallback");
}

TEST(BaselineAnalysis, RevokesEverySimplification) {
  const Fixture &F = fx();
  deps::PipelineResult Base = baselineAnalysis(F.Analysis);
  ASSERT_EQ(Base.Deps.size(), F.Analysis.Deps.size());
  bool SawRevoked = false;
  for (size_t I = 0; I < Base.Deps.size(); ++I) {
    const deps::AnalyzedDependence &Orig = F.Analysis.Deps[I];
    const deps::AnalyzedDependence &B = Base.Deps[I];
    if (Orig.Status == deps::DepStatus::AffineUnsat) {
      // Affine refutations hold for arbitrary array contents and survive.
      EXPECT_EQ(B.Status, deps::DepStatus::AffineUnsat);
      continue;
    }
    SawRevoked = true;
    EXPECT_EQ(B.Status, deps::DepStatus::Runtime);
    EXPECT_TRUE(B.Plan.Valid) << B.Plan.WhyInvalid;
    EXPECT_EQ(B.NewEqualities, 0u);
    EXPECT_TRUE(B.SubsumedBy.empty());
    EXPECT_EQ(B.Prov.Stage, "guard-baseline");
  }
  // forward solve CSR has property-unsat and runtime dependences, so the
  // baseline must actually revoke something.
  EXPECT_TRUE(SawRevoked);
}

TEST(RunGuarded, CleanInputIsTrusted) {
  const Fixture &F = fx();
  GuardedResult G = runGuarded(F.Analysis, F.K.Properties, F.Env, F.Lower.N);
  EXPECT_TRUE(G.Validated);
  EXPECT_TRUE(G.Trusted) << G.Report.str();
  EXPECT_FALSE(G.UsedFallback);

  driver::InspectionResult Direct =
      driver::runInspectors(F.Analysis, F.Env, F.Lower.N);
  EXPECT_TRUE(sameGraph(G.Inspection.Graph, Direct.Graph, F.Lower.N));
}

TEST(RunGuarded, CorruptedInputFallsBackToBaselineGraph) {
  const Fixture &F = fx();
  codegen::UFEnvironment Bad = corruptedEnv();

  GuardedOptions Opts;
  Opts.Verify = true;
  GuardedResult G = runGuarded(F.Analysis, F.K.Properties, Bad, F.Lower.N,
                               Opts);
  EXPECT_TRUE(G.Validated);
  // Every dependence carries a core, so validation is core-directed and
  // the violated triangular_entries_le base is among the checked ones.
  EXPECT_TRUE(G.SelectiveValidation);
  EXPECT_FALSE(G.Trusted);
  EXPECT_TRUE(G.UsedFallback);
  EXPECT_GE(G.DepsRevoked, 1u);
  EXPECT_TRUE(G.Report.violated()) << G.Report.str();

  // Revocation is per-dependence, but for forward solve CSR the only
  // simplification cites the violated base and the surviving runtime
  // check was never rewritten — so the graph in use must be exactly what
  // the baseline inspectors produce on the same corrupted arrays.
  driver::InspectionResult Base =
      driver::runInspectors(baselineAnalysis(F.Analysis), Bad, F.Lower.N);
  EXPECT_TRUE(sameGraph(G.Inspection.Graph, Base.Graph, F.Lower.N));

  // And scheduling that graph respects itself — verify mode agrees.
  EXPECT_TRUE(G.Verified);
  EXPECT_TRUE(G.VerifyPassed) << G.VerifyDetail;

  EXPECT_NE(G.summary().find("revoked"), std::string::npos) << G.summary();
}

TEST(RunGuarded, UncitedCorruptionIsToleratedByCoreDirectedValidation) {
  const Fixture &F = fx();
  codegen::UFEnvironment Bad = uncitedCorruptedEnv();

  GuardedOptions Opts;
  Opts.Verify = true;
  GuardedResult G = runGuarded(F.Analysis, F.K.Properties, Bad, F.Lower.N,
                               Opts);
  EXPECT_TRUE(G.Validated);
  EXPECT_TRUE(G.SelectiveValidation);
  // periodic_monotonic(col, rowptr) is broken but uncited: no verdict
  // depended on it, so the guard keeps trusting the simplified
  // inspectors — and skips its check entirely.
  EXPECT_TRUE(G.Trusted) << G.Report.str();
  EXPECT_FALSE(G.UsedFallback);
  EXPECT_EQ(G.DepsRevoked, 0u);
  EXPECT_GT(G.PropsSkipped, 0u);

  // The tolerance is sound, not lucky: the schedule still respects the
  // baseline graph over the same corrupted arrays.
  EXPECT_TRUE(G.Verified);
  EXPECT_TRUE(G.VerifyPassed) << G.VerifyDetail;

  // Full validation *would* have revoked trust — this is precisely the
  // false-revocation the core-directed guard eliminates.
  ValidationReport Full = validateProperties(F.K.Properties, Bad);
  EXPECT_FALSE(Full.trusted());
}

TEST(RunGuarded, WarnModeDetectsWithoutFallingBack) {
  const Fixture &F = fx();
  codegen::UFEnvironment Bad = corruptedEnv();

  GuardedOptions Opts;
  Opts.Mode = GuardMode::Warn;
  GuardedResult G = runGuarded(F.Analysis, F.K.Properties, Bad, F.Lower.N,
                               Opts);
  EXPECT_TRUE(G.Validated);
  EXPECT_FALSE(G.Trusted);
  EXPECT_FALSE(G.UsedFallback);

  // Warn keeps the simplified inspectors (the point: observe, don't veto).
  driver::InspectionResult Simplified =
      driver::runInspectors(F.Analysis, Bad, F.Lower.N);
  EXPECT_TRUE(sameGraph(G.Inspection.Graph, Simplified.Graph, F.Lower.N));
}

TEST(RunGuarded, OffModeSkipsValidation) {
  const Fixture &F = fx();
  codegen::UFEnvironment Bad = corruptedEnv();

  GuardedOptions Opts;
  Opts.Mode = GuardMode::Off;
  GuardedResult G = runGuarded(F.Analysis, F.K.Properties, Bad, F.Lower.N,
                               Opts);
  EXPECT_FALSE(G.Validated);
  EXPECT_TRUE(G.Trusted); // blind trust by request
  EXPECT_FALSE(G.UsedFallback);
  EXPECT_TRUE(G.Report.Checks.empty());
}

TEST(FaultInjection, InjectionIsDeterministic) {
  const Fixture &F = fx();
  codegen::UFEnvironment A, B;
  std::string DA, DB;
  FaultSpec S{"col", FaultKind::OffByOne, 42};
  ASSERT_TRUE(injectFault(F.Env, S, A, DA));
  ASSERT_TRUE(injectFault(F.Env, S, B, DB));
  EXPECT_EQ(DA, DB);
  EXPECT_EQ(*A.Spans.at("col"), *B.Spans.at("col"));
  // Exactly the named array changed.
  EXPECT_NE(*A.Spans.at("col"), *F.Env.Spans.at("col"));
  EXPECT_EQ(*A.Spans.at("rowptr"), *F.Env.Spans.at("rowptr"));
}

TEST(FaultInjection, CampaignCoversEveryArrayAndKind) {
  const Fixture &F = fx();
  std::vector<FaultSpec> Specs = faultCampaign(F.Env, 2);
  // Every (bound array) x (fault kind) x (seed) combination.
  EXPECT_EQ(Specs.size(),
            F.Env.Spans.size() * allFaultKinds().size() * 2);
}

TEST(FaultInjection, MiniCampaignHasNoSilentWrongSchedules) {
  const Fixture &F = fx();
  std::vector<FaultSpec> Specs = faultCampaign(F.Env, 1);
  CampaignResult R = runCampaign(F.Analysis, F.K.Properties, F.Env,
                                 F.Lower.N, Specs, 2);
  ASSERT_FALSE(R.Trials.empty());
  EXPECT_EQ(R.silentWrong(), 0u) << R.summary();
  // Most corruptions of a forward-solve CSR environment are detectable.
  EXPECT_GT(R.detected(), 0u);
  // Bookkeeping adds up: every injected trial is detected, tolerated, or
  // silent-wrong.
  EXPECT_EQ(R.injected(), R.detected() + R.tolerated() + R.silentWrong());
}
