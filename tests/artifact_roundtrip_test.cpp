//===- artifact_roundtrip_test.cpp - Compile-once/run-many invariants ------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The tentpole contract of the artifact layer, asserted suite-wide:
//
//   1. save -> load -> inspect -> schedule is *bit-identical* to fresh
//      analysis on every kernel, at every thread count — the artifact is
//      the analysis, not an approximation of it;
//   2. the load path issues zero Presburger queries (asserted on the
//      always-on solver counters, which count even with tracing off);
//   3. corrupt, truncated, version-skewed, or ABI-foreign blobs are
//      rejected with a contextful Status and no partial state.
//
//===----------------------------------------------------------------------===//

#include "sds/artifact/Artifact.h"
#include "sds/driver/Driver.h"
#include "sds/guard/Guarded.h"
#include "sds/presburger/BasicSet.h"
#include "sds/support/JSON.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

using namespace sds;
using namespace sds::rt;

namespace {

CSRMatrix randomSPD(int N, int Nnz, int Band, uint64_t Seed) {
  GeneratorConfig C;
  C.N = N;
  C.AvgNnzPerRow = Nnz;
  C.Bandwidth = Band;
  C.Seed = Seed;
  return generateSPDLike(C);
}

/// Heavy factorizations run with the proof stages off (see
/// driver_parallel_test.cpp): the round-trip property is about the codec
/// and the runtime, not the simplifier's minutes-long analyses.
deps::PipelineOptions reducedOptions() {
  deps::PipelineOptions Opts;
  Opts.UseProperties = false;
  Opts.UseEqualities = false;
  Opts.UseSubsets = false;
  Opts.Simp.SemanticPhase1 = false;
  Opts.Simp.InstantiationRounds = 1;
  Opts.Simp.MaxInstances = 2000;
  Opts.Simp.MaxPhase2Instances = 2;
  Opts.Simp.MaxPieces = 16;
  return Opts;
}

struct SuiteCase {
  std::string Key;
  kernels::Kernel K;
  deps::PipelineOptions Opts;
  int N;
};

std::vector<SuiteCase> suite() {
  return {
      {"fs_csr", kernels::forwardSolveCSR(), {}, 150},
      {"fs_csc", kernels::forwardSolveCSC(), {}, 150},
      {"gs_csr", kernels::gaussSeidelCSR(), {}, 150},
      {"spmv_csr", kernels::spmvCSR(), {}, 150},
      {"ilu0_csr", kernels::incompleteLU0CSR(), reducedOptions(), 60},
      {"ic0_csc", kernels::incompleteCholeskyCSC(), reducedOptions(), 60},
      {"lchol_csc", kernels::leftCholeskyCSC(), reducedOptions(), 60},
  };
}

/// Bind the right arrays for one kernel key on a random SPD-like matrix.
codegen::UFEnvironment wire(const std::string &Key, uint64_t Seed, int N,
                            int &OutN) {
  CSRMatrix A = randomSPD(N, 5, 12, Seed);
  if (Key == "gs_csr" || Key == "ilu0_csr") {
    OutN = A.N;
    return driver::bindCSR(A, A.diagonalPositions());
  }
  if (Key == "spmv_csr") {
    OutN = A.N;
    return driver::bindCSR(A);
  }
  if (Key == "fs_csr") {
    CSRMatrix Lower = lowerTriangle(A);
    OutN = Lower.N;
    return driver::bindCSR(Lower);
  }
  CSCMatrix L = toCSC(lowerTriangle(A));
  OutN = L.N;
  if (Key == "lchol_csc") {
    PruneSets Prune = buildPruneSets(L);
    return driver::bindCSC(L, &Prune);
  }
  return driver::bindCSC(L);
}

void expectGraphsEqual(const DependenceGraph &A, const DependenceGraph &B,
                       const std::string &Label) {
  ASSERT_EQ(A.numNodes(), B.numNodes()) << Label;
  EXPECT_EQ(A.numEdges(), B.numEdges()) << Label;
  for (int U = 0; U < A.numNodes(); ++U) {
    auto SA = A.successors(U);
    auto SB = B.successors(U);
    ASSERT_TRUE(std::equal(SA.begin(), SA.end(), SB.begin(), SB.end()))
        << Label << ": successor mismatch at node " << U;
  }
}

uint64_t presburgerQueries() {
  presburger::QueryCacheStats Q = presburger::queryCacheStats();
  presburger::PrefilterStats P = presburger::prefilterStats();
  return Q.Hits + Q.Misses + P.rejects() + P.SyntacticSubsetHits + P.Misses;
}

} // namespace

// Serialization is deterministic and self-inverse: decode(encode(x))
// re-encodes to the same bytes, for every kernel of the suite.
TEST(ArtifactRoundTrip, SerializationIsIdempotent) {
  for (const SuiteCase &C : suite()) {
    artifact::CompiledKernel CK = artifact::compile(C.K, C.Opts);
    std::string Blob = artifact::serialize(CK);
    artifact::CompiledKernel Loaded;
    support::Status S = artifact::deserialize(Blob, Loaded);
    ASSERT_TRUE(S.ok()) << C.Key << ": " << S.str();
    EXPECT_EQ(Blob, artifact::serialize(Loaded)) << C.Key;
    EXPECT_EQ(CK.Deps.size(), Loaded.Deps.size()) << C.Key;
    EXPECT_EQ(CK.summary(), Loaded.summary()) << C.Key;
    for (size_t I = 0; I < CK.Deps.size(); ++I) {
      EXPECT_EQ(CK.Deps[I].Status, Loaded.Deps[I].Status) << C.Key;
      EXPECT_EQ(CK.Deps[I].Simplified.str(), Loaded.Deps[I].Simplified.str())
          << C.Key;
      EXPECT_EQ(CK.Deps[I].Plan.Valid, Loaded.Deps[I].Plan.Valid) << C.Key;
      if (CK.Deps[I].Plan.Valid) {
        EXPECT_EQ(CK.Deps[I].Plan.emitC("f"), Loaded.Deps[I].Plan.emitC("f"))
            << C.Key;
      }
    }
  }
}

// The headline invariant: on all 7 kernels, a loaded artifact drives the
// inspectors and the scheduler to bit-identical results vs the fresh
// analysis, at 1 and 4 threads, with zero Presburger queries after the
// decode starts.
TEST(ArtifactRoundTrip, BitIdenticalGraphAndScheduleZeroQueries) {
  for (const SuiteCase &C : suite()) {
    deps::PipelineResult Fresh = deps::analyzeKernel(C.K, C.Opts);
    int N = 0;
    codegen::UFEnvironment Env = wire(C.Key, 11, C.N, N);
    std::string Blob =
        artifact::serialize(artifact::fromAnalysis(Fresh, C.Opts));

    uint64_t Before = presburgerQueries();
    artifact::CompiledKernel Loaded;
    support::Status S = artifact::deserialize(Blob, Loaded);
    ASSERT_TRUE(S.ok()) << C.Key << ": " << S.str();

    for (int Threads : {1, 4}) {
      driver::InspectorOptions IOpts;
      IOpts.NumThreads = Threads;
      std::string Label = C.Key + " threads=" + std::to_string(Threads);
      driver::InspectionResult FromLoaded =
          driver::runInspectors(Loaded, Env, N, IOpts);
      rt::WavefrontSchedule SchedLoaded =
          rt::scheduleLevelSets(FromLoaded.Graph, 4);
      // Everything above this line is the serving path; it must not have
      // touched the Presburger layer at all.
      EXPECT_EQ(presburgerQueries(), Before) << Label;

      driver::InspectionResult FromFresh =
          driver::runInspectors(Fresh, Env, N, IOpts);
      rt::WavefrontSchedule SchedFresh =
          rt::scheduleLevelSets(FromFresh.Graph, 4);
      expectGraphsEqual(FromFresh.Graph, FromLoaded.Graph, Label);
      EXPECT_EQ(FromFresh.InspectorVisits, FromLoaded.InspectorVisits)
          << Label;
      EXPECT_EQ(SchedFresh.Waves, SchedLoaded.Waves) << Label;
      Before = presburgerQueries(); // fresh leg may query; re-baseline
    }
  }
}

// The guard consumes artifacts too: validation verdicts and the resulting
// graph match the fresh-analysis guarded run.
TEST(ArtifactRoundTrip, GuardedRunFromArtifactMatchesFresh) {
  SuiteCase C = suite()[1]; // fs_csc
  deps::PipelineResult Fresh = deps::analyzeKernel(C.K, C.Opts);
  int N = 0;
  codegen::UFEnvironment Env = wire(C.Key, 29, C.N, N);

  artifact::CompiledKernel Loaded;
  ASSERT_TRUE(
      artifact::deserialize(
          artifact::serialize(artifact::fromAnalysis(
              deps::analyzeKernel(C.K, C.Opts), C.Opts)),
          Loaded)
          .ok());

  guard::GuardedOptions GOpts;
  GOpts.Verify = true;
  guard::GuardedResult FromFresh =
      guard::runGuarded(Fresh, C.K.Properties, Env, N, GOpts);
  guard::GuardedResult FromLoaded = guard::runGuarded(Loaded, Env, N, GOpts);
  EXPECT_EQ(FromFresh.Trusted, FromLoaded.Trusted);
  EXPECT_EQ(FromFresh.UsedFallback, FromLoaded.UsedFallback);
  EXPECT_TRUE(FromLoaded.VerifyPassed);
  expectGraphsEqual(FromFresh.Inspection.Graph, FromLoaded.Inspection.Graph,
                    "guarded " + C.Key);
}

// Per-dependence unsat cores are part of the artifact: they round-trip
// bit-identically, so a warm process inherits the compile-time trust base
// without re-proving anything.
TEST(ArtifactCore, CoresSurviveRoundTripBitIdentical) {
  artifact::CompiledKernel CK =
      artifact::compile(kernels::forwardSolveCSR(), {});
  bool AnyCited = false;
  for (const deps::AnalyzedDependence &D : CK.Deps) {
    EXPECT_TRUE(D.HasCore) << D.Dep.label();
    AnyCited = AnyCited || !D.Core.Assertions.empty();
  }
  EXPECT_TRUE(AnyCited);

  artifact::CompiledKernel Loaded;
  support::Status S = artifact::deserialize(artifact::serialize(CK), Loaded);
  ASSERT_TRUE(S.ok()) << S.str();
  ASSERT_EQ(Loaded.Deps.size(), CK.Deps.size());
  for (size_t I = 0; I < CK.Deps.size(); ++I) {
    EXPECT_EQ(Loaded.Deps[I].HasCore, CK.Deps[I].HasCore);
    EXPECT_EQ(Loaded.Deps[I].Core.Assertions, CK.Deps[I].Core.Assertions);
    EXPECT_EQ(Loaded.Deps[I].Core.Minimized, CK.Deps[I].Core.Minimized);
    EXPECT_EQ(Loaded.Deps[I].Core.FromFarkas, CK.Deps[I].Core.FromFarkas);
  }
}

// Schema skew: a blob produced before the "core" field existed (simulated
// by stripping the cores before serializing — the encoder then emits no
// "core" keys, exactly like the old writer) still loads, with HasCore
// false everywhere. The guard detects that and falls back to validating
// every declared property instead of a core-directed subset.
TEST(ArtifactCore, PreCoreBlobFallsBackToFullValidation) {
  artifact::CompiledKernel CK =
      artifact::compile(kernels::forwardSolveCSR(), {});

  artifact::CompiledKernel PreCore = CK;
  for (deps::AnalyzedDependence &D : PreCore.Deps) {
    D.Core = {};
    D.HasCore = false;
  }
  std::string OldBlob = artifact::serialize(PreCore);
  EXPECT_EQ(OldBlob.find("\"core\""), std::string::npos);
  EXPECT_NE(artifact::serialize(CK).find("\"core\""), std::string::npos);

  artifact::CompiledKernel Loaded;
  support::Status S = artifact::deserialize(OldBlob, Loaded);
  ASSERT_TRUE(S.ok()) << S.str();
  for (const deps::AnalyzedDependence &D : Loaded.Deps)
    EXPECT_FALSE(D.HasCore);

  int N = 0;
  codegen::UFEnvironment Env = wire("fs_csr", 99, 150, N);
  guard::GuardedResult FromOld = guard::runGuarded(Loaded, Env, N);
  EXPECT_TRUE(FromOld.Validated);
  EXPECT_FALSE(FromOld.SelectiveValidation);
  EXPECT_EQ(FromOld.PropsSkipped, 0u);
  EXPECT_TRUE(FromOld.Trusted) << FromOld.Report.str();

  // The same blob with cores runs the core-directed subset — same verdict,
  // fewer checks.
  artifact::CompiledKernel WithCores;
  ASSERT_TRUE(
      artifact::deserialize(artifact::serialize(CK), WithCores).ok());
  guard::GuardedResult FromNew = guard::runGuarded(WithCores, Env, N);
  EXPECT_TRUE(FromNew.SelectiveValidation);
  EXPECT_GT(FromNew.PropsSkipped, 0u);
  EXPECT_TRUE(FromNew.Trusted) << FromNew.Report.str();
  EXPECT_LT(FromNew.Report.Checks.size(), FromOld.Report.Checks.size());
  expectGraphsEqual(FromOld.Inspection.Graph, FromNew.Inspection.Graph,
                    "pre-core vs core-bearing artifact");
}

TEST(ArtifactRoundTrip, SaveLoadFile) {
  SuiteCase C = suite()[0];
  artifact::CompiledKernel CK = artifact::compile(C.K, C.Opts);
  std::string Path = ::testing::TempDir() + "sds_artifact_test.json";
  ASSERT_TRUE(artifact::save(CK, Path).ok());
  artifact::CompiledKernel Loaded;
  support::Status S = artifact::load(Path, Loaded);
  ASSERT_TRUE(S.ok()) << S.str();
  EXPECT_EQ(artifact::serialize(CK), artifact::serialize(Loaded));
  std::remove(Path.c_str());

  support::Status Missing =
      artifact::load(Path + ".does-not-exist", Loaded);
  EXPECT_FALSE(Missing.ok());
  EXPECT_EQ(Missing.code(), support::StatusCode::IOError);
  EXPECT_NE(Missing.message().find("does-not-exist"), std::string::npos);
}

namespace {

/// A sentinel artifact used to prove no-partial-state: any rejected
/// deserialize must leave every field of this exactly as constructed.
artifact::CompiledKernel sentinel() {
  artifact::CompiledKernel CK;
  CK.KernelName = "sentinel";
  CK.Format = "CSR";
  CK.StageSeconds["extraction"] = 42.0;
  return CK;
}

void expectRejected(const std::string &Blob, const std::string &MsgSubstr,
                    const std::string &Label) {
  artifact::CompiledKernel Out = sentinel();
  support::Status S = artifact::deserialize(Blob, Out);
  EXPECT_FALSE(S.ok()) << Label;
  EXPECT_NE(S.message().find(MsgSubstr), std::string::npos)
      << Label << ": message was '" << S.message() << "'";
  // No partial state: the sentinel survives rejection untouched.
  EXPECT_EQ(Out.KernelName, "sentinel") << Label;
  EXPECT_EQ(Out.Format, "CSR") << Label;
  EXPECT_EQ(Out.StageSeconds.at("extraction"), 42.0) << Label;
  EXPECT_TRUE(Out.Deps.empty()) << Label;
}

} // namespace

TEST(ArtifactRejection, CorruptTruncatedSkewedBlobs) {
  std::string Blob =
      artifact::serialize(artifact::compile(kernels::forwardSolveCSC()));

  expectRejected("", "artifact", "empty");
  expectRejected("not json at all", "artifact", "garbage");
  expectRejected(Blob.substr(0, Blob.size() / 2), "artifact", "truncated");
  expectRejected("{}", "magic", "missing magic");
  expectRejected("{\"magic\":\"sds.compiled_kernel\"}", "schema_version",
                 "missing version");

  // Version skew: bump the envelope's schema_version only. The checksum
  // still matches (it covers the payload), so this exercises the version
  // check specifically.
  {
    std::string Skew = Blob;
    std::string Tag = "\"schema_version\":";
    size_t Pos = Skew.find(Tag);
    ASSERT_NE(Pos, std::string::npos);
    Skew.insert(Pos + Tag.size(), "9");
    expectRejected(Skew, "schema version", "version skew");
  }

  // ABI skew: a blob from a build with different enum tables.
  {
    std::string Foreign = Blob;
    std::string Tag = "\"abi\":\"";
    size_t Pos = Foreign.find(Tag);
    ASSERT_NE(Pos, std::string::npos);
    Foreign[Pos + Tag.size()] = 'x';
    expectRejected(Foreign, "ABI fingerprint", "abi skew");
  }

  // Content corruption that still parses as JSON: flip a character inside
  // the payload. The canonical-text checksum must catch it.
  {
    std::string Corrupt = Blob;
    size_t Pos = Corrupt.find("\"status\":\"");
    ASSERT_NE(Pos, std::string::npos);
    Corrupt[Pos + 11] = Corrupt[Pos + 11] == 'x' ? 'y' : 'x';
    expectRejected(Corrupt, "checksum", "payload bit flip");
  }

  // Wrong magic: an unrelated JSON document of the right shape.
  {
    std::string Wrong = Blob;
    size_t Pos = Wrong.find("sds.compiled_kernel");
    ASSERT_NE(Pos, std::string::npos);
    Wrong.replace(Pos, 3, "xds");
    expectRejected(Wrong, "not a compiled-kernel blob", "wrong magic");
  }
}

TEST(ArtifactRejection, StatusCarriesFieldContext) {
  // Corrupt a known-good blob's payload via a field rename that keeps the
  // JSON valid but breaks decoding *and* the checksum. The checksum
  // rejects first — the desired order: integrity before structure.
  std::string Blob = artifact::serialize(artifact::CompiledKernel{});
  size_t Pos = Blob.find("\"deps\":");
  ASSERT_NE(Pos, std::string::npos);
  std::string Renamed = Blob;
  Renamed.replace(Pos, 7, "\"dePs\":");
  artifact::CompiledKernel Out;
  support::Status S = artifact::deserialize(Renamed, Out);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("checksum"), std::string::npos) << S.str();
}

TEST(ArtifactOptions, KeyAndEquality) {
  artifact::AnalysisOptions A; // defaults: P E S on, approx/infer off
  EXPECT_EQ(A.key(), "PES--");
  deps::PipelineOptions Reduced = reducedOptions();
  artifact::AnalysisOptions B = artifact::AnalysisOptions::of(Reduced);
  EXPECT_EQ(B.key(), "-----");
  EXPECT_FALSE(A == B);
  EXPECT_TRUE(A == artifact::AnalysisOptions::of(deps::PipelineOptions{}));
  artifact::AnalysisOptions Spec = A;
  Spec.Speculate = true;
  EXPECT_EQ(Spec.key(), "PES-I");
  EXPECT_FALSE(A == Spec); // speculation is a distinct plan dimension
}

TEST(ArtifactSchema, PipelineToJSONSharesSchema) {
  deps::PipelineResult R = deps::analyzeKernel(kernels::forwardSolveCSC());
  json::ParseResult P = json::parse(R.toJSON());
  ASSERT_TRUE(P.Ok) << P.Error;
  const json::Value *Ver = P.Val.get("schema_version");
  ASSERT_NE(Ver, nullptr);
  EXPECT_EQ(Ver->asInt(), schema::kVersion);
  const json::Value *Stages = P.Val.get("stage_seconds");
  ASSERT_NE(Stages, nullptr);
  for (size_t I = 0; I < schema::kNumStageKeys; ++I)
    EXPECT_NE(Stages->get(schema::kStageKeys[I]), nullptr)
        << schema::kStageKeys[I];

  // The artifact payload spells the same stage keys.
  artifact::CompiledKernel CK =
      artifact::compile(kernels::forwardSolveCSC());
  json::ParseResult Blob = json::parse(artifact::serialize(CK));
  ASSERT_TRUE(Blob.Ok);
  const json::Value *Payload = Blob.Val.get("payload");
  ASSERT_NE(Payload, nullptr);
  const json::Value *ArtStages = Payload->get("stage_seconds");
  ASSERT_NE(ArtStages, nullptr);
  for (size_t I = 0; I < schema::kNumStageKeys; ++I)
    EXPECT_NE(ArtStages->get(schema::kStageKeys[I]), nullptr)
        << schema::kStageKeys[I];
}
