//===- applications_test.cpp - §10 applications tests ----------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/driver/Applications.h"
#include "sds/driver/Driver.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace sds;
using namespace sds::driver;
using namespace sds::rt;

TEST(RaceCheck, SpMVNeedsNoChecks) {
  // A race detector can drop every check on SpMV's parallel outer loop.
  auto Vs = classifyRaceChecks(kernels::spmvCSR());
  ASSERT_FALSE(Vs.empty());
  for (const RaceCheckVerdict &V : Vs)
    EXPECT_FALSE(V.NeedsRuntimeCheck) << V.Array << " " << V.SrcAccess;
  EXPECT_DOUBLE_EQ(raceCheckSuppressionRatio(Vs), 1.0);
}

TEST(RaceCheck, ForwardSolveKeepsOneCheck) {
  auto Vs = classifyRaceChecks(kernels::forwardSolveCSR());
  unsigned Kept = 0;
  for (const RaceCheckVerdict &V : Vs)
    Kept += V.NeedsRuntimeCheck ? 1 : 0;
  // Exactly the real runtime dependence needs instrumentation.
  EXPECT_EQ(Kept, 1u);
  EXPECT_GT(raceCheckSuppressionRatio(Vs), 0.5);
}

TEST(RaceCheck, ReasonsAreInformative) {
  for (const RaceCheckVerdict &V :
       classifyRaceChecks(kernels::forwardSolveCSR()))
    EXPECT_FALSE(V.Reason.empty());
}

namespace {

DependenceGraph chainAndIsolated() {
  // 0 -> 1 -> 3, 2 isolated, 4 -> 5.
  DependenceGraph G(6);
  G.addEdge(0, 1);
  G.addEdge(1, 3);
  G.addEdge(4, 5);
  G.finalize();
  return G;
}

} // namespace

TEST(Slicing, BackwardSliceFollowsPredecessors) {
  DependenceGraph G = chainAndIsolated();
  EXPECT_EQ(backwardSlice(G, {3}), (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(backwardSlice(G, {2}), (std::vector<int>{2}));
  EXPECT_EQ(backwardSlice(G, {5, 1}), (std::vector<int>{0, 1, 4, 5}));
  EXPECT_TRUE(backwardSlice(G, {}).empty());
}

TEST(Slicing, ForwardSliceFollowsSuccessors) {
  DependenceGraph G = chainAndIsolated();
  EXPECT_EQ(forwardSlice(G, {0}), (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(forwardSlice(G, {4}), (std::vector<int>{4, 5}));
  EXPECT_EQ(forwardSlice(G, {3}), (std::vector<int>{3}));
}

TEST(Slicing, OutOfRangeSeedsIgnored) {
  DependenceGraph G = chainAndIsolated();
  EXPECT_TRUE(backwardSlice(G, {-1, 99}).empty());
}

TEST(Slicing, SliceOnRealInspectorGraph) {
  // Recomputing one row of a forward solve requires exactly its reachable
  // ancestors — check against a brute-force closure.
  GeneratorConfig C;
  C.N = 120;
  C.AvgNnzPerRow = 6;
  C.Bandwidth = 15;
  C.Seed = 77;
  CSRMatrix Lower = lowerTriangle(generateSPDLike(C));
  CSCMatrix L = toCSC(Lower);
  DependenceGraph G = exactForwardSolveGraph(L);

  std::vector<int> Slice = backwardSlice(G, {L.N - 1});
  // Brute force closure.
  std::vector<bool> In(static_cast<size_t>(L.N), false);
  In[static_cast<size_t>(L.N - 1)] = true;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int U = 0; U < L.N; ++U)
      for (int V : G.successors(U))
        if (In[static_cast<size_t>(V)] && !In[static_cast<size_t>(U)]) {
          In[static_cast<size_t>(U)] = true;
          Changed = true;
        }
  }
  std::vector<int> Expect;
  for (int U = 0; U < L.N; ++U)
    if (In[static_cast<size_t>(U)])
      Expect.push_back(U);
  EXPECT_EQ(Slice, Expect);
}

TEST(ParallelInspector, MatchesSerialInspector) {
  GeneratorConfig C;
  C.N = 300;
  C.AvgNnzPerRow = 7;
  C.Bandwidth = 25;
  C.Seed = 5;
  CSRMatrix Lower = lowerTriangle(generateSPDLike(C));
  auto Analysis = deps::analyzeKernel(kernels::forwardSolveCSR());
  auto Env = bindCSR(Lower);
  for (const deps::AnalyzedDependence &D : Analysis.Deps) {
    if (D.Status != deps::DepStatus::Runtime)
      continue;
    DependenceGraph G1(Lower.N), G2(Lower.N);
    uint64_t V1 = codegen::runInspector(
        D.Plan, Env, [&](int64_t S, int64_t T) { G1.addEdge(S, T); });
    uint64_t V2 = codegen::runInspectorParallel(
        D.Plan, Env, 4, [&](int64_t S, int64_t T) { G2.addEdge(S, T); });
    G1.finalize();
    G2.finalize();
    EXPECT_EQ(V1, V2);
    EXPECT_EQ(G1.numEdges(), G2.numEdges());
    for (int U = 0; U < Lower.N; ++U) {
      auto S1 = G1.successors(U), S2 = G2.successors(U);
      EXPECT_TRUE(std::equal(S1.begin(), S1.end(), S2.begin(), S2.end()))
          << "successor mismatch at node " << U;
    }
  }
}
