//===- codegen_test.cpp - Inspector synthesis tests ------------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/codegen/Inspector.h"
#include "sds/ir/Parser.h"

#include <gtest/gtest.h>

#include <set>

using namespace sds;
using namespace sds::codegen;

namespace {
ir::SparseRelation parse(const char *Text) {
  auto R = ir::parseRelation(Text);
  EXPECT_TRUE(R.Ok) << R.Error << " in " << Text;
  return R.Rel;
}
} // namespace

TEST(Complexity, OrderingAndPrinting) {
  EXPECT_EQ(Complexity::one().str(), "1");
  EXPECT_EQ(Complexity::n().str(), "n");
  EXPECT_EQ(Complexity::d().str(), "(nnz/n)");
  EXPECT_EQ(Complexity::nnz().str(), "nnz");
  EXPECT_EQ((Complexity{2, 2}).str(), "nnz^2");
  EXPECT_EQ((Complexity{1, 3}).str(), "nnz*(nnz/n)^2");
  EXPECT_EQ((Complexity{2, 5}).str(), "nnz^2*(nnz/n)^3");
  EXPECT_EQ((Complexity{2, 0}).str(), "n^2");
  EXPECT_LT(Complexity::d(), Complexity::n());
  EXPECT_LT(Complexity::n(), Complexity::nnz());
  EXPECT_LT(Complexity::nnz(), (Complexity{2, 0}));
  EXPECT_LT((Complexity{1, 2}), (Complexity{2, 0}));
}

TEST(Plan, PaperFigure5Before) {
  // §4.1's pre-simplification relation: the inspector must loop over both
  // i and i', costing O(n^2) (Figure 5a).
  ir::SparseRelation R =
      parse("{ [i] -> [i'] : i < i' && f(i') <= f(g(i)) && g(i) <= i' && "
            "0 <= i < n && 0 <= i' < n }");
  InspectorPlan P = buildInspectorPlan(R);
  ASSERT_TRUE(P.Valid) << P.WhyInvalid;
  EXPECT_EQ(P.Cost, (Complexity{2, 0}));
}

TEST(Plan, PaperFigure5AfterEquality) {
  // With the discovered equality i' = g(i), i' is solved: O(n) (Fig. 5b).
  ir::SparseRelation R =
      parse("{ [i] -> [i'] : i < i' && f(i') <= f(g(i)) && g(i) <= i' && "
            "i' = g(i) && 0 <= i < n && 0 <= i' < n }");
  InspectorPlan P = buildInspectorPlan(R);
  ASSERT_TRUE(P.Valid) << P.WhyInvalid;
  EXPECT_EQ(P.Cost, Complexity::n());
  // i' must be produced by a solve, not a loop.
  bool Solved = false;
  for (const PlanVar &V : P.Vars)
    if (V.Name == "i'" && V.K == PlanVar::Kind::Solved)
      Solved = true;
  EXPECT_TRUE(Solved);
}

TEST(Plan, ForwardSolveFlowDependenceCostsNnz) {
  // §2.1's relation: loop i' over rows, k' over the row's nonzeros, and
  // solve i = col(k'): O(nnz), matching Table 3's "Forward solve CSR".
  ir::SparseRelation R = parse(
      "{ [i] -> [i', k'] : i < i' && i = col(k') && 0 <= i < n && "
      "0 <= i' < n && rowptr(i') <= k' < rowptr(i' + 1) }");
  InspectorPlan P = buildInspectorPlan(R);
  ASSERT_TRUE(P.Valid) << P.WhyInvalid;
  EXPECT_EQ(P.Cost, Complexity::nnz()) << P.Cost.str();
}

TEST(Plan, SegmentLoopsClassifyAsD) {
  ir::SparseRelation R = parse(
      "{ [i, m, l] : 0 <= i < n && colptr(i) + 1 <= m < colptr(i + 1) && "
      "m <= l && l < colptr(i + 1) }");
  InspectorPlan P = buildInspectorPlan(R);
  ASSERT_TRUE(P.Valid);
  EXPECT_EQ(P.Cost, (Complexity{1, 2})) << P.Cost.str(); // n * d * d
}

TEST(Plan, NnzParamLoops) {
  ir::SparseRelation R = parse("{ [k] : 0 <= k < nnz }");
  InspectorPlan P = buildInspectorPlan(R);
  ASSERT_TRUE(P.Valid);
  EXPECT_EQ(P.Cost, Complexity::nnz());
}

TEST(Plan, UnboundedVariableInvalid) {
  ir::SparseRelation R = parse("{ [i] -> [i'] : i < i' }");
  InspectorPlan P = buildInspectorPlan(R);
  EXPECT_FALSE(P.Valid); // i' has no upper bound anywhere
  EXPECT_FALSE(P.WhyInvalid.empty());
}

TEST(Plan, GuardsAttachAtEarliestPoint) {
  ir::SparseRelation R = parse(
      "{ [i] -> [i', k'] : i < i' && i = col(k') && 0 <= i < n && "
      "0 <= i' < n && rowptr(i') <= k' < rowptr(i' + 1) && "
      "col(k') <= i' }");
  InspectorPlan P = buildInspectorPlan(R);
  ASSERT_TRUE(P.Valid);
  // Some guard must exist (col(k') <= i' or the ordering constraint).
  unsigned NumGuards = 0;
  for (const PlanVar &V : P.Vars)
    NumGuards += static_cast<unsigned>(V.Guards.size());
  EXPECT_GE(NumGuards, 1u);
}

TEST(EmitC, LooksLikeFigure5) {
  ir::SparseRelation R =
      parse("{ [i] -> [i'] : i < i' && f(i') <= f(g(i)) && "
            "i' = g(i) && 0 <= i < n && 0 <= i' < n }");
  InspectorPlan P = buildInspectorPlan(R);
  ASSERT_TRUE(P.Valid);
  std::string C = P.emitC("inspect_example");
  EXPECT_NE(C.find("void inspect_example"), std::string::npos);
  EXPECT_NE(C.find("for (long i = "), std::string::npos);
  EXPECT_NE(C.find("long ip = g[i];"), std::string::npos); // solved var
  EXPECT_NE(C.find("dag.addEdge(i, ip);"), std::string::npos);
  EXPECT_NE(C.find("omp parallel for"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Executable inspectors: Figure 1's matrix must produce Figure 2's graph.
//===----------------------------------------------------------------------===//

TEST(RunInspector, Figure1MatrixGivesFigure2Graph) {
  // CSR of Figure 1: rowptr = [0,1,2,4,7], col = [0,1,0,2,0,2,3].
  std::vector<int> RowPtr = {0, 1, 2, 4, 7};
  std::vector<int> Col = {0, 1, 0, 2, 0, 2, 3};

  // Flow dependence of forward solve (§2.1): i = col(k'), k' in row i',
  // restricted to the off-diagonal positions S1 actually reads
  // (k' < rowptr(i'+1)-1).
  ir::SparseRelation R = parse(
      "{ [i] -> [i', k'] : i < i' && i = col(k') && 0 <= i < n && "
      "0 <= i' < n && rowptr(i') <= k' < rowptr(i' + 1) - 1 }");
  InspectorPlan P = buildInspectorPlan(R);
  ASSERT_TRUE(P.Valid) << P.WhyInvalid;

  UFEnvironment Env;
  Env.bindArray("rowptr", RowPtr);
  Env.bindArray("col", Col);
  Env.Params["n"] = 4;

  std::set<std::pair<int64_t, int64_t>> Edges;
  runInspector(P, Env, [&](int64_t S, int64_t D) { Edges.insert({S, D}); });

  // Figure 2's dependence graph: 0->2, 0->3, 2->3 (and no others).
  std::set<std::pair<int64_t, int64_t>> Expected = {{0, 2}, {0, 3}, {2, 3}};
  EXPECT_EQ(Edges, Expected);
}

TEST(RunInspector, VisitCountsMatchComplexityShape) {
  // O(n^2) scan visits ~ n^2 points; the equality version ~ n.
  auto G = [](int64_t X) { return X; }; // identity keeps everything simple
  ir::SparseRelation Slow =
      parse("{ [i] -> [i'] : 0 <= i < n && 0 <= i' < n && i < i' && "
            "g(i) <= i' }");
  ir::SparseRelation Fast =
      parse("{ [i] -> [i'] : 0 <= i < n && 0 <= i' < n && i < i' && "
            "i' = g(i) }");
  UFEnvironment Env;
  Env.Arrays["g"] = G;
  Env.Params["n"] = 64;
  auto PSlow = buildInspectorPlan(Slow);
  auto PFast = buildInspectorPlan(Fast);
  ASSERT_TRUE(PSlow.Valid);
  ASSERT_TRUE(PFast.Valid);
  uint64_t VSlow = runInspector(PSlow, Env, [](int64_t, int64_t) {});
  uint64_t VFast = runInspector(PFast, Env, [](int64_t, int64_t) {});
  EXPECT_GT(VSlow, 64u * 16u);
  EXPECT_LE(VFast, 2u * 64u);
}

TEST(RunInspector, EmptyLoopRanges) {
  ir::SparseRelation R = parse("{ [i] : 5 <= i < 3 }");
  InspectorPlan P = buildInspectorPlan(R);
  ASSERT_TRUE(P.Valid);
  UFEnvironment Env;
  unsigned Count = 0;
  runInspector(P, Env, [&](int64_t, int64_t) { ++Count; });
  EXPECT_EQ(Count, 0u);
}

TEST(RunInspector, PoisonedGuardPassesInsteadOfPruning) {
  // Equality discovery composes functions past their declared domains:
  // p(f(i)) probes p (2 entries) at f(i) = 5, so the guard is
  // unevaluable. Pruning on it would drop real dependence edges — the
  // exact failure the IC0 fault campaign exposed — so a poisoned guard
  // must pass and leave pruning to evaluable sibling constraints.
  ir::SparseRelation R =
      parse("{ [i] -> [i'] : 0 <= i < n && i' = i && p(f(i)) <= p(g(i)) }");
  InspectorPlan P = buildInspectorPlan(R);
  ASSERT_TRUE(P.Valid) << P.WhyInvalid;
  UFEnvironment Env;
  Env.bindArray("f", {5, 5, 5, 5});
  Env.bindArray("g", {5, 5, 5, 5});
  Env.bindArray("p", {0, 1});
  Env.Params["n"] = 4;
  unsigned Count = 0;
  runInspector(P, Env, [&](int64_t, int64_t) { ++Count; });
  EXPECT_EQ(Count, 4u);
}

TEST(RunInspector, EvaluableSiblingGuardsStillPrune) {
  // A poisoned guard must not resurrect instances that an evaluable
  // sibling guard of the same conjunction rejects.
  ir::SparseRelation R =
      parse("{ [i] -> [i'] : 0 <= i < n && i' = i && sel(i) = 1 && "
            "p(f(i)) = p(g(i)) }");
  InspectorPlan P = buildInspectorPlan(R);
  ASSERT_TRUE(P.Valid) << P.WhyInvalid;
  UFEnvironment Env;
  Env.bindArray("sel", {1, 0, 1, 0});
  Env.bindArray("f", {9, 9, 9, 9});
  Env.bindArray("g", {9, 9, 9, 9});
  Env.bindArray("p", {0, 1});
  Env.Params["n"] = 4;
  std::set<std::pair<int64_t, int64_t>> Edges;
  runInspector(P, Env, [&](int64_t S, int64_t D) { Edges.insert({S, D}); });
  std::set<std::pair<int64_t, int64_t>> Expected = {{0, 0}, {2, 2}};
  EXPECT_EQ(Edges, Expected);
}

TEST(RunInspector, PoisonedBoundsStillSkipSubtree) {
  // Loop bounds come from the relation's own range constraints; a
  // poisoned bound has no value to iterate with and skips the subtree.
  // q has 3 entries, so q(i+1) poisons at i = 2 and only the first two
  // segments (one position each) are visited.
  ir::SparseRelation R =
      parse("{ [i, k] : 0 <= i < n && q(i) <= k < q(i + 1) }");
  InspectorPlan P = buildInspectorPlan(R);
  ASSERT_TRUE(P.Valid) << P.WhyInvalid;
  UFEnvironment Env;
  Env.bindArray("q", {0, 1, 2});
  Env.Params["n"] = 3;
  unsigned Count = 0;
  runInspector(P, Env, [&](int64_t, int64_t) { ++Count; });
  EXPECT_EQ(Count, 2u);
}

TEST(DomainComplexity, KernelShapes) {
  // for i in [0,n): for k in [rowptr(i), rowptr(i+1)) is O(nnz).
  auto R = parse("{ [i, k] : 0 <= i < n && rowptr(i) <= k < rowptr(i+1) }");
  EXPECT_EQ(domainComplexity(R.Conj, {"i", "k"}), Complexity::nnz());
}
