//===- runtime_schedule_test.cpp - Schedule post-pass framework tests ------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// Covers the pass framework of DESIGN.md §14: every schedule kind
// certifies on arbitrary DAGs at every thread count, the coalescer only
// removes waves, vector runs partition chunks into consecutive edge-free
// blocks, the P2P lowering seeds exactly the graph's in-degrees, and the
// compiled-schedule executors reproduce the serial kernels — bitwise for
// the pull-based kernels, to 1e-9 for the atomic-update ones.
//
//===----------------------------------------------------------------------===//

#include "sds/runtime/Kernels.h"
#include "sds/runtime/Schedule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>

using namespace sds::rt;

namespace {

constexpr ScheduleKind kAllKinds[] = {ScheduleKind::Levels, ScheduleKind::LBC,
                                      ScheduleKind::Coalesced,
                                      ScheduleKind::P2P, ScheduleKind::Vector};

DependenceGraph randomDAG(int N, int EdgesPerNode, uint64_t Seed) {
  std::mt19937 Rng(static_cast<unsigned>(Seed));
  DependenceGraph G(N);
  std::uniform_int_distribution<int> NodeDist(0, N - 1);
  for (int E = 0; E < N * EdgesPerNode; ++E) {
    int A = NodeDist(Rng), B = NodeDist(Rng);
    if (A < B)
      G.addEdge(A, B);
  }
  G.finalize();
  return G;
}

ScheduleConfig config(ScheduleKind Kind, int Threads,
                      double MinWork = 8) {
  ScheduleConfig C;
  C.Kind = Kind;
  C.NumThreads = Threads;
  C.MinWorkPerThread = MinWork;
  return C;
}

CSRMatrix makeLower(int N, int Nnz, int Band, uint64_t Seed) {
  GeneratorConfig C;
  C.N = N;
  C.AvgNnzPerRow = Nnz;
  C.Bandwidth = Band;
  C.Seed = Seed;
  return lowerTriangle(generateSPDLike(C));
}

std::vector<double> randomVector(int N, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_real_distribution<double> Dist(-1, 1);
  std::vector<double> V(static_cast<size_t>(N));
  for (double &X : V)
    X = Dist(Rng);
  return V;
}

double maxAbsDiff(const std::vector<double> &A, const std::vector<double> &B) {
  double M = 0;
  for (size_t I = 0; I < A.size(); ++I)
    M = std::max(M, std::abs(A[I] - B[I]));
  return M;
}

/// Bitwise equality, element by element (EXPECT_EQ on doubles conflates
/// +0.0/-0.0; the bit-identity contract is about the representation).
void expectBitIdentical(const std::vector<double> &A,
                        const std::vector<double> &B,
                        const std::string &Label) {
  ASSERT_EQ(A.size(), B.size()) << Label;
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_EQ(std::memcmp(&A[I], &B[I], sizeof(double)), 0)
        << Label << ": bit mismatch at " << I << " (" << A[I]
        << " vs " << B[I] << ")";
}

/// Gauss-Seidel dependence graph (same construction as the wavefront
/// executor tests): row I depends on every earlier column it reads.
DependenceGraph gaussSeidelGraph(const CSRMatrix &A) {
  DependenceGraph G(A.N);
  for (int I = 0; I < A.N; ++I)
    for (int K = A.RowPtr[I]; K < A.RowPtr[I + 1]; ++K) {
      int C = A.Col[static_cast<size_t>(K)];
      if (C < I)
        G.addEdge(C, I);
    }
  G.finalize();
  return G;
}

} // namespace

//===----------------------------------------------------------------------===//
// Config and kind plumbing
//===----------------------------------------------------------------------===//

TEST(ScheduleConfig, KindNamesRoundTrip) {
  for (ScheduleKind K : kAllKinds) {
    auto Parsed = parseScheduleKind(scheduleKindName(K));
    ASSERT_TRUE(Parsed.has_value()) << scheduleKindName(K);
    EXPECT_EQ(*Parsed, K);
  }
  EXPECT_FALSE(parseScheduleKind("nonsense").has_value());
  EXPECT_FALSE(parseScheduleKind("").has_value());
}

TEST(ScheduleConfig, KeySeparatesKindsAndKnobs) {
  std::vector<std::string> Keys;
  for (ScheduleKind K : kAllKinds)
    Keys.push_back(config(K, 8).key());
  std::sort(Keys.begin(), Keys.end());
  EXPECT_EQ(std::unique(Keys.begin(), Keys.end()), Keys.end())
      << "two kinds share a cache key";
  // Thread count and knobs are part of the key too: a 4-thread plan must
  // never serve an 8-thread executor.
  EXPECT_NE(config(ScheduleKind::P2P, 4).key(),
            config(ScheduleKind::P2P, 8).key());
  ScheduleConfig A = config(ScheduleKind::Vector, 8);
  ScheduleConfig B = A;
  B.MinVectorRun = 16;
  EXPECT_NE(A.key(), B.key());
}

//===----------------------------------------------------------------------===//
// Certification over every kind x random graphs x thread counts
//===----------------------------------------------------------------------===//

class ScheduleRandom : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleRandom, EveryKindCertifies) {
  DependenceGraph G =
      randomDAG(64 + GetParam() * 16, 3, static_cast<uint64_t>(GetParam()));
  for (ScheduleKind Kind : kAllKinds)
    for (int Threads : {1, 2, 4, 8}) {
      CompiledSchedule S = buildSchedule(G, config(Kind, Threads));
      std::string Label = std::string(scheduleKindName(Kind)) +
                          " threads=" + std::to_string(Threads);
      EXPECT_TRUE(certifySchedule(G, S)) << Label;
      EXPECT_EQ(describeSchedule(S).Base.TotalNodes,
                static_cast<uint64_t>(G.numNodes()))
          << Label;
      EXPECT_EQ(S.UsesP2P, Kind == ScheduleKind::P2P) << Label;
      EXPECT_EQ(S.HasRuns, Kind == ScheduleKind::Vector) << Label;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleRandom, ::testing::Range(0, 10));

TEST(SchedulePasses, CoalesceOnlyRemovesWaves) {
  // Many short waves (parallel chains): coalescing must strictly help on
  // this shape, and can never produce more waves than its input.
  int N = 512;
  DependenceGraph G(N);
  for (int I = 0; I + 4 < N; I += 4)
    G.addEdge(I, I + 4); // four independent chains of length N/4
  G.finalize();
  for (int Threads : {1, 2, 4}) {
    CompiledSchedule Base = buildSchedule(G, config(ScheduleKind::LBC,
                                                    Threads));
    CompiledSchedule Co =
        buildSchedule(G, config(ScheduleKind::Coalesced, Threads));
    EXPECT_LE(Co.numWaves(), Base.numWaves()) << "threads=" << Threads;
    EXPECT_TRUE(certifySchedule(G, Co));
  }
  // At one thread balance is moot: the chain collapses to very few waves.
  CompiledSchedule One = buildSchedule(G, config(ScheduleKind::Coalesced, 1));
  EXPECT_LT(One.numWaves(),
            buildSchedule(G, config(ScheduleKind::Levels, 1)).numWaves() / 4);
}

TEST(SchedulePasses, CoalesceKeepsDominantComponentsBounded) {
  // A single chain serializes entirely if merged greedily; the balance
  // probe must cap the dominant component near MinWorkPerThread so other
  // threads keep getting work at larger thread counts.
  int N = 1024;
  DependenceGraph G(N);
  for (int I = 0; I + 1 < N; ++I)
    if (I % 2 == 0)
      G.addEdge(I, I + 1); // N/2 two-node chains: wide but shallow
  G.finalize();
  CompiledSchedule S = buildSchedule(G, config(ScheduleKind::Coalesced, 4));
  ASSERT_TRUE(certifySchedule(G, S));
  CompiledScheduleStats St = describeSchedule(S);
  // Wide-shallow graphs stay parallel after coalescing.
  EXPECT_GT(St.Base.achievedParallelism(), 1.5);
}

//===----------------------------------------------------------------------===//
// Vector runs
//===----------------------------------------------------------------------===//

TEST(VectorRuns, FullCoverageOnIndependentNodes) {
  DependenceGraph G(256);
  G.finalize(); // no edges: one wave, all runs maximal
  CompiledSchedule S = buildSchedule(G, config(ScheduleKind::Vector, 1));
  ASSERT_TRUE(certifySchedule(G, S));
  EXPECT_DOUBLE_EQ(describeSchedule(S).vectorCoverage(), 1.0);
}

TEST(VectorRuns, ChainsAdmitNoRuns) {
  // A full chain: consecutive ids always carry an edge, so no run may
  // grow past length 1 and coverage is zero.
  int N = 128;
  DependenceGraph G(N);
  for (int I = 0; I + 1 < N; ++I)
    G.addEdge(I, I + 1);
  G.finalize();
  CompiledSchedule S = buildSchedule(G, config(ScheduleKind::Vector, 1));
  ASSERT_TRUE(certifySchedule(G, S));
  CompiledScheduleStats St = describeSchedule(S);
  EXPECT_EQ(St.VectorRuns, 0u);
  EXPECT_DOUBLE_EQ(St.vectorCoverage(), 0.0);
}

TEST(VectorRuns, RunsPartitionEveryChunk) {
  DependenceGraph G = randomDAG(300, 2, 99);
  CompiledSchedule S = buildSchedule(G, config(ScheduleKind::Vector, 4));
  ASSERT_TRUE(S.HasRuns);
  ASSERT_EQ(S.Runs.size(), S.Waves.Waves.size());
  for (size_t W = 0; W < S.Waves.Waves.size(); ++W) {
    ASSERT_EQ(S.Runs[W].size(), S.Waves.Waves[W].size());
    for (size_t T = 0; T < S.Waves.Waves[W].size(); ++T) {
      const auto &Chunk = S.Waves.Waves[W][T];
      size_t Covered = 0;
      int NextPos = 0;
      for (const VectorRun &R : S.Runs[W][T]) {
        EXPECT_EQ(R.Pos, NextPos) << "runs leave a gap";
        EXPECT_GE(R.Len, 1);
        // Consecutive ids within the run.
        for (int I = 1; I < R.Len; ++I)
          EXPECT_EQ(Chunk[static_cast<size_t>(R.Pos + I)],
                    Chunk[static_cast<size_t>(R.Pos + I - 1)] + 1);
        NextPos = R.Pos + R.Len;
        Covered += static_cast<size_t>(R.Len);
      }
      EXPECT_EQ(Covered, Chunk.size()) << "wave " << W << " chunk " << T;
    }
  }
}

//===----------------------------------------------------------------------===//
// P2P lowering
//===----------------------------------------------------------------------===//

TEST(P2PLowering, SeedsExactInDegreesAndSuccessors) {
  DependenceGraph G = randomDAG(200, 3, 7);
  CompiledSchedule S = buildSchedule(G, config(ScheduleKind::P2P, 4));
  ASSERT_TRUE(S.UsesP2P);
  ASSERT_EQ(S.numNodes(), G.numNodes());
  std::vector<int> Expect(static_cast<size_t>(G.numNodes()), 0);
  for (int U = 0; U < G.numNodes(); ++U)
    for (int V : G.successors(U))
      ++Expect[static_cast<size_t>(V)];
  EXPECT_EQ(S.InDegree, Expect);
  ASSERT_EQ(S.SuccPtr.size(), static_cast<size_t>(G.numNodes()) + 1);
  for (int U = 0; U < G.numNodes(); ++U) {
    auto Succ = G.successors(U);
    ASSERT_EQ(S.SuccPtr[static_cast<size_t>(U) + 1] -
                  S.SuccPtr[static_cast<size_t>(U)],
              Succ.size());
    EXPECT_TRUE(std::equal(Succ.begin(), Succ.end(),
                           S.SuccDst.begin() +
                               static_cast<long>(
                                   S.SuccPtr[static_cast<size_t>(U)])));
  }
}

TEST(Certify, DetectsCorruptedSchedules) {
  DependenceGraph G = randomDAG(100, 3, 21);
  // Corrupt the P2P seed: certification must notice.
  CompiledSchedule P = buildSchedule(G, config(ScheduleKind::P2P, 4));
  ASSERT_TRUE(certifySchedule(G, P));
  ++P.InDegree[0];
  EXPECT_FALSE(certifySchedule(G, P));

  // Corrupt a vector run so it spans a dependence edge.
  DependenceGraph Chain(8);
  Chain.addEdge(2, 3);
  Chain.finalize();
  CompiledSchedule V = buildSchedule(Chain, config(ScheduleKind::Vector, 1));
  ASSERT_TRUE(certifySchedule(Chain, V));
  ASSERT_FALSE(V.Runs.empty());
  V.Runs[0][0] = {{0, static_cast<int>(V.Waves.Waves[0][0].size())}};
  EXPECT_FALSE(certifySchedule(Chain, V));

  // Reverse the waves: dependences now point backwards.
  CompiledSchedule W = buildSchedule(G, config(ScheduleKind::Coalesced, 2));
  ASSERT_TRUE(certifySchedule(G, W));
  if (W.Waves.Waves.size() > 1) {
    std::reverse(W.Waves.Waves.begin(), W.Waves.Waves.end());
    EXPECT_FALSE(certifySchedule(G, W));
  }
}

//===----------------------------------------------------------------------===//
// Compiled-schedule executors vs serial kernels
//===----------------------------------------------------------------------===//

class ScheduledExec : public ::testing::TestWithParam<int> {};

TEST_P(ScheduledExec, AllKindsMatchSerial) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  CSRMatrix L = makeLower(350, 8, 28, Seed);
  CSCMatrix LC = toCSC(L);
  CSRMatrix A = generateSPDLike({300, 7, 24, Seed + 1});
  std::vector<double> B = randomVector(L.N, Seed + 2);
  std::vector<double> BG = randomVector(A.N, Seed + 3);

  std::vector<double> XSer, GSer(static_cast<size_t>(A.N), 0.0);
  forwardSolveCSRSerial(L, B, XSer);
  gaussSeidelCSRSerial(A, BG, GSer);
  CSCMatrix CholSer = toCSC(L), IC0Ser = toCSC(L);
  leftCholeskyCSCSerial(CholSer);
  incompleteCholeskyCSCSerial(IC0Ser);

  DependenceGraph GF = exactForwardSolveGraph(LC);
  DependenceGraph GG = gaussSeidelGraph(A);
  DependenceGraph GC = exactCholeskyGraph(LC);

  for (ScheduleKind Kind : kAllKinds)
    for (int Threads : {1, 2, 4, 8}) {
      std::string Label = std::string(scheduleKindName(Kind)) +
                          " threads=" + std::to_string(Threads) +
                          " seed=" + std::to_string(Seed);
      CompiledSchedule SF = buildSchedule(GF, config(Kind, Threads));
      CompiledSchedule SG = buildSchedule(GG, config(Kind, Threads));
      CompiledSchedule SC = buildSchedule(GC, config(Kind, Threads));
      ASSERT_TRUE(certifySchedule(GF, SF)) << Label;
      ASSERT_TRUE(certifySchedule(GG, SG)) << Label;
      ASSERT_TRUE(certifySchedule(GC, SC)) << Label;

      // Pull-based kernels: each value is produced by exactly one node in
      // the serial accumulation order — bitwise identical under any
      // schedule shape and thread count.
      std::vector<double> X;
      forwardSolveCSRScheduled(L, B, X, SF);
      expectBitIdentical(XSer, X, "fs_csr " + Label);

      std::vector<double> XG(static_cast<size_t>(A.N), 0.0);
      gaussSeidelCSRScheduled(A, BG, XG, SG);
      expectBitIdentical(GSer, XG, "gs_csr " + Label);

      CSCMatrix Chol = toCSC(L);
      leftCholeskyCSCScheduled(Chol, SC);
      expectBitIdentical(CholSer.Val, Chol.Val, "lchol_csc " + Label);

      // Push-based kernels use commutative atomic updates: order-sensitive
      // in the last ulp, so tolerance-checked.
      std::vector<double> XC;
      forwardSolveCSCScheduled(LC, B, XC, SF);
      EXPECT_LT(maxAbsDiff(XSer, XC), 1e-9) << "fs_csc " << Label;

      CSCMatrix IC0 = toCSC(L);
      incompleteCholeskyCSCScheduled(IC0, SC);
      EXPECT_LT(maxAbsDiff(IC0Ser.Val, IC0.Val), 1e-9) << "ic0_csc " << Label;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduledExec, ::testing::Range(200, 203));
