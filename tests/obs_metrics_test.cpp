//===- obs_metrics_test.cpp - Metrics registry + flight recorder tests ----===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// Covers the sds::obs v2 quantitative layer: histogram bucket geometry
// and quantile interpolation against an exact reference, sharded-counter
// exactness under concurrent OpenMP increments, gauge sources, the
// Prometheus/JSON exporters (schema round-trip through sds::json), and
// flight-recorder wraparound/ordering semantics.
//
//===----------------------------------------------------------------------===//

#include "sds/obs/FlightRecorder.h"
#include "sds/obs/Metrics.h"
#include "sds/support/Schema.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "sds/support/OMP.h"

using namespace sds;
using obs::Histogram;

namespace {

/// Every test starts with metrics on and the registry zeroed; tests that
/// need the disabled behavior flip the flag themselves.
class MetricsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::setMetricsEnabled(true);
    obs::resetMetrics();
  }
  void TearDown() override {
    obs::resetMetrics();
    obs::setMetricsEnabled(false);
  }
};

//===----------------------------------------------------------------------===//
// Histogram bucket geometry
//===----------------------------------------------------------------------===//

TEST_F(MetricsTest, BucketOfIsMonotoneAndInvertsThroughBucketLo) {
  // Exact region: values below 2*kSub each get their own bucket.
  for (uint64_t V = 0; V < 2 * Histogram::kSub; ++V) {
    EXPECT_EQ(Histogram::bucketOf(V), V);
    EXPECT_EQ(Histogram::bucketLo(static_cast<unsigned>(V)), V);
  }
  // bucketLo(bucketOf(V)) <= V < bucketLo(bucketOf(V)+1), across octaves.
  std::mt19937_64 Rng(7);
  for (int I = 0; I < 20000; ++I) {
    uint64_t V = Rng() >> (Rng() % 64);
    unsigned B = Histogram::bucketOf(V);
    ASSERT_LT(B, Histogram::kBuckets);
    EXPECT_LE(Histogram::bucketLo(B), V);
    if (B + 1 < Histogram::kBuckets) {
      EXPECT_LT(V, Histogram::bucketLo(B + 1));
    }
  }
  // Monotone: larger values never land in earlier buckets.
  unsigned Prev = 0;
  for (uint64_t V = 0; V < 4096; ++V) {
    unsigned B = Histogram::bucketOf(V);
    EXPECT_GE(B, Prev);
    Prev = B;
  }
  EXPECT_EQ(Histogram::bucketOf(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST_F(MetricsTest, BucketRelativeWidthAtMost12Point5Percent) {
  // Above the exact region every bucket [lo, hi) satisfies
  // (hi - lo) / lo <= 1/8.
  for (unsigned B = 2 * Histogram::kSub; B + 1 < Histogram::kBuckets; ++B) {
    uint64_t Lo = Histogram::bucketLo(B), Hi = Histogram::bucketLo(B + 1);
    ASSERT_GT(Hi, Lo);
    EXPECT_LE(static_cast<double>(Hi - Lo) / static_cast<double>(Lo),
              0.125 + 1e-12);
  }
}

//===----------------------------------------------------------------------===//
// Quantiles vs an exact reference
//===----------------------------------------------------------------------===//

TEST_F(MetricsTest, QuantilesTrackExactReferenceWithinBucketWidth) {
  Histogram &H = obs::histogram("test.quantiles");
  std::mt19937_64 Rng(42);
  std::vector<uint64_t> Samples;
  // Log-uniform latencies spanning ~100ns..100ms, the realistic range.
  for (int I = 0; I < 50000; ++I) {
    double E = 2.0 + 6.0 * std::uniform_real_distribution<>(0, 1)(Rng);
    Samples.push_back(static_cast<uint64_t>(std::pow(10.0, E)));
  }
  for (uint64_t S : Samples)
    H.record(S);
  std::sort(Samples.begin(), Samples.end());

  EXPECT_EQ(H.count(), Samples.size());
  EXPECT_EQ(H.min(), Samples.front());
  EXPECT_EQ(H.max(), Samples.back());
  for (double Q : {0.5, 0.95, 0.99}) {
    double Exact = static_cast<double>(
        Samples[static_cast<size_t>(Q * (Samples.size() - 1))]);
    double Est = H.quantile(Q);
    // The estimate must land within one bucket (12.5% relative) of truth.
    EXPECT_NEAR(Est, Exact, Exact * 0.125)
        << "q=" << Q << " exact=" << Exact << " est=" << Est;
  }
  // Quantiles are clamped into [min, max].
  EXPECT_GE(H.quantile(0.0), static_cast<double>(H.min()));
  EXPECT_LE(H.quantile(1.0), static_cast<double>(H.max()));
}

TEST_F(MetricsTest, SingleSampleQuantilesCollapseToIt) {
  Histogram &H = obs::histogram("test.single");
  H.record(777);
  EXPECT_EQ(H.count(), 1u);
  for (double Q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(H.quantile(Q), 777.0);
}

TEST_F(MetricsTest, RecordIsInertWhenDisabled) {
  Histogram &H = obs::histogram("test.disabled");
  obs::setMetricsEnabled(false);
  H.record(123);
  obs::metricCounter("test.disabled_counter").add(5);
  obs::gauge("test.disabled_gauge").set(9.0);
  obs::setMetricsEnabled(true);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(obs::metricCounter("test.disabled_counter").value(), 0u);
  EXPECT_EQ(obs::gauge("test.disabled_gauge").value(), 0.0);
}

//===----------------------------------------------------------------------===//
// Sharded counters under concurrency
//===----------------------------------------------------------------------===//

TEST_F(MetricsTest, ConcurrentCounterIncrementsBitMatchSerial) {
  // The serial truth: one thread adding K times N values.
  const int Threads = std::max(2, std::min(8, omp_get_max_threads()));
  const int PerThread = 20000;
  obs::MetricCounter &Serial = obs::metricCounter("test.counter_serial");
  for (int T = 0; T < Threads; ++T)
    for (int I = 0; I < PerThread; ++I)
      Serial.add(static_cast<uint64_t>(I % 7 + 1));

  obs::MetricCounter &Par = obs::metricCounter("test.counter_parallel");
  obs::Histogram &HPar = obs::histogram("test.hist_parallel");
#pragma omp parallel num_threads(Threads)
  {
#pragma omp for
    for (int T = 0; T < Threads; ++T)
      for (int I = 0; I < PerThread; ++I) {
        Par.add(static_cast<uint64_t>(I % 7 + 1));
        HPar.record(static_cast<uint64_t>(I + 1));
      }
  }
  EXPECT_EQ(Par.value(), Serial.value());
  EXPECT_EQ(HPar.count(), static_cast<uint64_t>(Threads) * PerThread);
  // Histogram sum is also exact (relaxed fetch_adds never lose updates).
  uint64_t WantSum = 0;
  for (int I = 0; I < PerThread; ++I)
    WantSum += static_cast<uint64_t>(I + 1);
  EXPECT_EQ(HPar.sum(), WantSum * Threads);
}

//===----------------------------------------------------------------------===//
// Gauges and gauge sources
//===----------------------------------------------------------------------===//

TEST_F(MetricsTest, GaugeSourcesSumAcrossRegistrationsAndUnregister) {
  double A = 1.5, B = 2.25;
  uint64_t H1 = obs::registerGaugeSource("test.source", [&] { return A; });
  uint64_t H2 = obs::registerGaugeSource("test.source", [&] { return B; });
  auto Find = [](const obs::MetricsSnapshot &S, const std::string &Name) {
    for (const auto &[N, V] : S.Gauges)
      if (N == Name)
        return V;
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(Find(obs::snapshotMetrics(), "test.source"), 3.75);
  obs::unregisterGaugeSource(H1);
  EXPECT_DOUBLE_EQ(Find(obs::snapshotMetrics(), "test.source"), 2.25);
  obs::unregisterGaugeSource(H2);
  EXPECT_DOUBLE_EQ(Find(obs::snapshotMetrics(), "test.source"), -1.0);
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST_F(MetricsTest, JsonSnapshotRoundTripsThroughParser) {
  obs::metricCounter("test.rt_counter").add(3);
  obs::gauge("test.rt_gauge").set(0.5);
  Histogram &H = obs::histogram("pipeline.stage.extraction");
  for (uint64_t V = 1; V <= 100; ++V)
    H.record(V * 1000);

  json::ParseResult P = json::parse(obs::metricsJSON());
  ASSERT_TRUE(P.Ok) << P.Error;
  const json::Value &Root = P.Val;
  ASSERT_TRUE(Root.isObject());
  EXPECT_EQ(Root.get("schema_version")->asInt(), schema::kVersion);
  EXPECT_EQ(Root.get("kind")->asString(), "metrics_snapshot");
  EXPECT_EQ(Root.get("counters")->get("test.rt_counter")->asInt(), 3);
  EXPECT_DOUBLE_EQ(Root.get("gauges")->get("test.rt_gauge")->asDouble(), 0.5);

  const json::Value *HJ =
      Root.get("histograms")->get("pipeline.stage.extraction");
  ASSERT_NE(HJ, nullptr);
  EXPECT_EQ(HJ->get("count")->asInt(), 100);
  double P50 = HJ->get("p50_ms")->asDouble();
  EXPECT_GT(P50, 0.0);
  EXPECT_NEAR(P50, 0.050, 0.050 * 0.125); // 50us median, ms units
  ASSERT_NE(HJ->get("p95_ms"), nullptr);
  ASSERT_NE(HJ->get("p99_ms"), nullptr);

  // stage_seconds is zero-filled over the schema's stage keys, and the
  // stage we recorded shows up converted to seconds.
  const json::Value *Stages = Root.get("stage_seconds");
  ASSERT_NE(Stages, nullptr);
  for (const char *Key : schema::kStageKeys)
    ASSERT_NE(Stages->get(Key), nullptr) << Key;
  EXPECT_NEAR(Stages->get("extraction")->asDouble(), 5050.0 * 1000 / 1e9,
              1e-12);
}

TEST_F(MetricsTest, PrometheusTextEscapingAndShape) {
  obs::metricCounter("engine.kernel.hits").add(2);
  obs::metricCounter("weird name-100%").add(5);
  obs::gauge("presburger.query_cache.hit_rate").set(0.75);
  obs::histogram("guard.run_ns").record(1000);
  std::string Text = obs::prometheusText();

  // Counter: sanitized name, _total suffix, sds_ prefix.
  EXPECT_NE(Text.find("sds_engine_kernel_hits_total 2"), std::string::npos)
      << Text;
  // Every non-[a-zA-Z0-9_] byte maps to '_': no spec-illegal name chars
  // may leak into the exposition.
  EXPECT_NE(Text.find("sds_weird_name_100__total 5"), std::string::npos)
      << Text;
  EXPECT_EQ(Text.find("weird name"), std::string::npos);
  EXPECT_NE(Text.find("sds_presburger_query_cache_hit_rate 0.75"),
            std::string::npos)
      << Text;
  // Histogram: summary with quantile labels + _count/_sum, seconds units.
  EXPECT_NE(Text.find("sds_guard_run_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(Text.find("sds_guard_run_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(Text.find("sds_guard_run_ns_count 1"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE sds_guard_run_ns summary"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST_F(MetricsTest, FlightRingKeepsNewestInOrderAndCountsLost) {
  obs::setFlightCapacity(8);
  for (int I = 0; I < 20; ++I)
    obs::flightRecord(obs::FlightSeverity::Info, "test",
                      "event " + std::to_string(I),
                      {{"i", std::to_string(I)}});
  std::vector<obs::FlightEvent> Events = obs::snapshotFlight();
  ASSERT_EQ(Events.size(), 8u);
  EXPECT_EQ(obs::flightLostEvents(), 12u);
  // Oldest-first, contiguous sequence numbers, newest event last.
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_EQ(Events[I].Seq, Events[I - 1].Seq + 1);
  EXPECT_EQ(Events.back().Message, "event 19");
  EXPECT_EQ(Events.front().Message, "event 12");
  ASSERT_EQ(Events.back().Fields.size(), 1u);
  EXPECT_EQ(Events.back().Fields[0].second, "19");

  // clearFlight drops events but sequence numbers keep counting.
  obs::clearFlight();
  EXPECT_TRUE(obs::snapshotFlight().empty());
  EXPECT_EQ(obs::flightLostEvents(), 0u);
  obs::flightRecord(obs::FlightSeverity::Error, "test", "after clear");
  std::vector<obs::FlightEvent> After = obs::snapshotFlight();
  ASSERT_EQ(After.size(), 1u);
  EXPECT_GE(After[0].Seq, 20u);
  EXPECT_EQ(After[0].Severity, obs::FlightSeverity::Error);
  obs::setFlightCapacity(256); // restore the default for other tests
}

TEST_F(MetricsTest, FlightJsonEmbedsInMetricsReport) {
  obs::flightRecord(obs::FlightSeverity::Warn, "artifact",
                    "artifact rejected", {{"path", "x.sdsk"}});
  json::ParseResult P = json::parse(obs::metricsJSON());
  ASSERT_TRUE(P.Ok) << P.Error;
  const json::Value *Flight = P.Val.get("flight_recorder");
  ASSERT_NE(Flight, nullptr);
  const json::Value *Events = Flight->get("events");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_EQ(Events->asArray().size(), 1u);
  const json::Value &E = Events->asArray()[0];
  EXPECT_EQ(E.get("severity")->asString(), "warn");
  EXPECT_EQ(E.get("category")->asString(), "artifact");
  EXPECT_EQ(E.get("fields")->get("path")->asString(), "x.sdsk");
}

TEST_F(MetricsTest, ResetMetricsZeroesEverything) {
  obs::metricCounter("test.reset_c").add(4);
  obs::gauge("test.reset_g").set(2.0);
  obs::histogram("test.reset_h").record(100);
  obs::flightRecord(obs::FlightSeverity::Info, "test", "x");
  obs::resetMetrics();
  EXPECT_EQ(obs::metricCounter("test.reset_c").value(), 0u);
  EXPECT_EQ(obs::gauge("test.reset_g").value(), 0.0);
  EXPECT_EQ(obs::histogram("test.reset_h").count(), 0u);
  EXPECT_TRUE(obs::snapshotFlight().empty());
}

} // namespace
