//===- ir_simplify_test.cpp - §4/§6.2 simplification tests -----------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// Golden tests anchored to the paper's worked examples: the §2.2 unsat
// demonstration, the §4.1 equality-discovery example, and the Definition 1
// expression-set construction.
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Parser.h"
#include "sds/ir/Simplify.h"

#include <gtest/gtest.h>

using namespace sds::ir;

namespace {
SparseRelation parse(const char *Text) {
  auto R = parseRelation(Text);
  EXPECT_TRUE(R.Ok) << R.Error << " in " << Text;
  return R.Rel;
}
} // namespace

TEST(ArgumentExpressionSet, Definition1) {
  SparseRelation R = parse("{ [i] -> [i'] : exists(k') : i = col(k') && "
                           "rowptr(i') <= k' < rowptr(i' + 1) }");
  std::vector<Expr> E = argumentExpressionSet(R.Conj);
  // Arguments: k', i', i' + 1.
  ASSERT_EQ(E.size(), 3u);
}

TEST(ArgumentExpressionSet, NestedCallArgsIncluded) {
  SparseRelation R = parse("{ [m] : col(row(m)) <= 5 }");
  std::vector<Expr> E = argumentExpressionSet(R.Conj);
  // Arguments: row(m) (arg of col) and m (arg of row).
  ASSERT_EQ(E.size(), 2u);
}

//===----------------------------------------------------------------------===//
// §2.2: strict monotonicity disproves the Gauss-Seidel-shaped dependence.
//===----------------------------------------------------------------------===//

TEST(ProvenUnsat, PaperSection22Example) {
  SparseRelation R = parse(
      "{ [i] -> [i'] : exists(m, k') : i < i' && m = k' && "
      "0 <= i < n && 0 <= i' < n && "
      "rowptr(i - 1) <= m < rowptr(i) && "
      "rowptr(i') <= k' < rowptr(i' + 1) }");

  // Without domain knowledge the relation is satisfiable.
  EXPECT_FALSE(provenUnsatAffineOnly(R));
  PropertySet None;
  EXPECT_FALSE(provenUnsat(R, None));

  // With strict monotonicity of rowptr it is unsatisfiable (the instance
  // x1 = i, x2 = i' gives rowptr(i) < rowptr(i'), a direct contradiction).
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "rowptr");
  InstantiationStats Stats;
  EXPECT_TRUE(provenUnsat(R, PS, {}, &Stats));
  EXPECT_GT(Stats.Phase1Added, 0u);
}

TEST(ProvenUnsat, MonotonicityAloneInsufficientHere) {
  // With only *non-strict* monotonicity the same relation stays
  // satisfiable: rowptr(i) == rowptr(i') is allowed, and the two nonzero
  // windows may coincide... but wait, m < rowptr(i) <= rowptr(i') <= m is
  // still a contradiction. Use a window shape where non-strictness truly
  // matters: overlap requires rowptr(i') < rowptr(i), which non-strict
  // monotonicity alone cannot refute for i < i'... it can (i < i' gives
  // rowptr(i) <= rowptr(i')). Keep this as a sanity check that the
  // non-strict property still proves this case.
  SparseRelation R = parse(
      "{ [i] -> [i'] : exists(m, k') : i < i' && m = k' && "
      "0 <= i < n && 0 <= i' < n && "
      "rowptr(i - 1) <= m < rowptr(i) && "
      "rowptr(i') <= k' < rowptr(i' + 1) }");
  PropertySet PS;
  PS.add(PropertyKind::MonotonicIncreasing, "rowptr");
  EXPECT_TRUE(provenUnsat(R, PS));
}

TEST(ProvenUnsat, PeriodicMonotonicDisprovesDuplicateColumns) {
  // Two distinct nonzeros of one row cannot carry the same column index
  // when col is strictly increasing within each rowptr segment.
  SparseRelation R = parse(
      "{ [i] : exists(k1, k2) : rowptr(i) <= k1 < k2 && "
      "k2 < rowptr(i + 1) && col(k1) = col(k2) }");
  EXPECT_FALSE(provenUnsatAffineOnly(R));
  PropertySet PS;
  PS.add(PropertyKind::PeriodicMonotonic, "col", "rowptr");
  EXPECT_TRUE(provenUnsat(R, PS));
}

TEST(ProvenUnsat, TriangularEntriesDisproveForwardReference) {
  // Lower-triangular CSR: col(k) <= i for k in row i, so a read of
  // u[col(k)] in iteration i can never touch a row written by a *later*
  // iteration i' = col(k) > i.
  SparseRelation R = parse(
      "{ [i] -> [i'] : exists(k) : i < i' && col(k) = i' && "
      "rowptr(i) <= k < rowptr(i + 1) && 0 <= i < n && 0 <= i' < n }");
  EXPECT_FALSE(provenUnsatAffineOnly(R));
  PropertySet PS;
  PS.add(PropertyKind::TriangularEntriesLE, "col", "rowptr");
  EXPECT_TRUE(provenUnsat(R, PS));
}

TEST(ProvenUnsat, CoMonotonicity) {
  // diag(i) points into row i's window: rowptr(i) <= diag(i). A position
  // strictly before rowptr(i) can then never equal diag(i).
  SparseRelation R = parse(
      "{ [i] : exists(m) : rowptr(i - 1) <= m < rowptr(i) && "
      "m = diag(i) }");
  PropertySet PS;
  PS.add(PropertyKind::CoMonotonic, "rowptr", "diag");
  EXPECT_TRUE(provenUnsat(R, PS));
}

TEST(ProvenUnsat, FunctionalConsistencyAffineOnly) {
  // f(i) and f(j) with i == j must agree even with zero domain knowledge.
  SparseRelation R =
      parse("{ [i, j] : i = j && f(i) < f(j) }");
  EXPECT_TRUE(provenUnsatAffineOnly(R));
}

TEST(ProvenUnsat, IntegerGapArgument) {
  // Strict monotonicity turns f(i) < f(j) < f(i+1) into i < j < i+1,
  // which has no integer solutions.
  SparseRelation R = parse("{ [i, j] : f(i) < f(j) && f(j) < f(i + 1) }");
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "f");
  EXPECT_TRUE(provenUnsat(R, PS));
}

TEST(ProvenUnsat, Phase2CaseSplit) {
  // Needs case analysis: i, j in {0, 1}, f(0) = 10, f(1) = 20, but
  // f(i) + f(j) = 25 is impossible for any choice (20, 30, or 40).
  // No antecedent is syntactically present, so phase 1 cannot close it;
  // the disjunctive functional-consistency instances must.
  SparseRelation R = parse(
      "{ [i, j] : 0 <= i <= 1 && 0 <= j <= 1 && i <= j && "
      "f(0) = 10 && f(1) = 20 && f(i) + f(j) = 25 }");
  InstantiationStats Stats;
  EXPECT_TRUE(provenUnsat(R, PropertySet(), {}, &Stats));
  EXPECT_GT(Stats.Phase2Used, 0u);
}

TEST(ProvenUnsat, SatisfiableRelationStaysSatisfiable) {
  // The true forward-solve dependence (§2.1) must NOT be disproved even
  // with every property switched on: it is a real runtime dependence.
  SparseRelation R = parse(
      "{ [i] -> [i'] : exists(k') : i < i' && i = col(k') && "
      "0 <= i < n && 0 <= i' < n && rowptr(i') <= k' < rowptr(i' + 1) }");
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "rowptr");
  PS.add(PropertyKind::PeriodicMonotonic, "col", "rowptr");
  PS.add(PropertyKind::TriangularEntriesLE, "col", "rowptr");
  EXPECT_FALSE(provenUnsat(R, PS));
}

//===----------------------------------------------------------------------===//
// §4.1: equality discovery.
//===----------------------------------------------------------------------===//

TEST(DiscoverEqualities, PaperSection41Example) {
  // (i < i') && f(i') <= f(g(i)) && g(i) <= i' with f strictly monotonic.
  // The contrapositive instance x1 = g(i), x2 = i' yields i' <= g(i),
  // which sandwiches to i' == g(i) — the O(n^2) -> O(n) inspector win.
  SparseRelation R = parse(
      "{ [i] -> [i'] : i < i' && f(i') <= f(g(i)) && g(i) <= i' && "
      "0 <= i < n && 0 <= i' < n }");
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "f");

  EqualityDiscoveryResult Res = discoverEqualities(R, PS);
  EXPECT_GE(Res.NewEqualities, 1u);
  // The relation now contains i' - g(i) == 0 (in some orientation).
  Constraint Want =
      Constraint::equals(Expr::var("i'"), Expr::call("g", {Expr::var("i")}));
  EXPECT_TRUE(R.Conj.impliesSyntactically(Want)) << R.str();
}

TEST(DiscoverEqualities, NoFalseEqualities) {
  // A plain box must not gain equalities.
  SparseRelation R = parse("{ [i, j] : 0 <= i < n && 0 <= j < n }");
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "f");
  EqualityDiscoveryResult Res = discoverEqualities(R, PS);
  EXPECT_EQ(Res.NewEqualities, 0u);
}

TEST(DiscoverEqualities, EliminatesDeterminedExistentials) {
  SparseRelation R = parse(
      "{ [i] -> [i'] : exists(m, k') : i < i' && m = k' && "
      "rowptr(i') <= k' < rowptr(i' + 1) && rowptr(i) <= m }");
  // m = k' pins m; it disappears as an existential.
  PropertySet PS;
  EqualityDiscoveryResult Res = discoverEqualities(R, PS);
  EXPECT_GE(Res.ExistentialsEliminated, 1u);
  EXPECT_EQ(R.ExistVars.size(), 1u);
}

TEST(DiscoverEqualities, DoesNotEliminateCallBoundExistential) {
  // i = col(k') does NOT determine k' (k' only occurs inside the call).
  SparseRelation R = parse(
      "{ [i] -> [i'] : exists(k') : i = col(k') && "
      "rowptr(i') <= k' < rowptr(i' + 1) }");
  PropertySet PS;
  discoverEqualities(R, PS);
  EXPECT_EQ(R.ExistVars.size(), 1u);
}

TEST(EliminateDeterminedExistentials, SubstitutesInsideCallArgs) {
  SparseRelation R = parse(
      "{ [i] : exists(m) : m = i + 1 && rowptr(m) <= 10 }");
  EXPECT_EQ(R.eliminateDeterminedExistentials(), 1u);
  EXPECT_TRUE(R.ExistVars.empty());
  // rowptr(m) became rowptr(i + 1).
  bool Found = false;
  for (const Atom &A : R.Conj.collectCalls())
    if (A.str() == "rowptr(i + 1)")
      Found = true;
  EXPECT_TRUE(Found) << R.str();
}

TEST(DiscoverEqualities, SecondRoundDerivesDiagonalIdentity) {
  // The IC0 pattern: k names the *start* of column i' (k = colptr(i')),
  // and diagonal-first storage gives rowidx(colptr(x)) == x. Deriving the
  // inspector-friendly i' == rowidx(k) needs the term rowidx(colptr(i'))
  // that phase 1 itself introduces — i.e. a second instantiation round.
  // rowidx(k) must occur somewhere for the link to exist — in IC0 it
  // comes from the guards; here a domain fact plays that role.
  const char *Text = "{ [k] -> [i'] : k = colptr(i') && 0 <= i' < n && "
                     "0 <= k < nnz && rowidx(k) >= 0 }";
  PropertySet PS;
  PS.add(PropertyKind::SegmentStartIdentity, "rowidx", "colptr", Expr(0),
         Expr::var("n"));
  Constraint Want = Constraint::equals(
      Expr::var("i'"), Expr::call("rowidx", {Expr::var("k")}));

  SparseRelation OneRound = parse(Text);
  SimplifyOptions Opts1;
  Opts1.InstantiationRounds = 1;
  discoverEqualities(OneRound, PS, Opts1);
  EXPECT_FALSE(OneRound.Conj.impliesSyntactically(Want)) << OneRound.str();

  SparseRelation TwoRounds = parse(Text);
  SimplifyOptions Opts2;
  Opts2.InstantiationRounds = 2;
  discoverEqualities(TwoRounds, PS, Opts2);
  EXPECT_TRUE(TwoRounds.Conj.impliesSyntactically(Want)) << TwoRounds.str();
}

TEST(InstantiatePhase1, StatsAreAccounted) {
  SparseRelation R = parse(
      "{ [i] -> [i'] : i < i' && rowptr(i) <= rowptr(i') }");
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "rowptr");
  InstantiationStats Stats;
  std::vector<AssertionInstance> Phase2;
  Conjunction Aug =
      instantiatePhase1(R.Conj, PS.assertions(), {}, &Stats, &Phase2);
  EXPECT_GT(Stats.Generated, 0u);
  // x1 = i, x2 = i' with antecedent i < i' fires in phase 1 and adds
  // rowptr(i) < rowptr(i').
  EXPECT_GT(Stats.Phase1Added, 0u);
  Constraint Want = Constraint::lt(Expr::call("rowptr", {Expr::var("i")}),
                                   Expr::call("rowptr", {Expr::var("i'")}));
  EXPECT_TRUE(Aug.impliesSyntactically(Want));
}

TEST(InstantiatePhase1, InstanceCapRespected) {
  SparseRelation R = parse(
      "{ [i] -> [i'] : i < i' && f(i) <= f(i') && f(i + 1) <= f(i' + 1) && "
      "f(i + 2) <= f(i' + 2) && f(i + 3) <= f(i' + 3) }");
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "f");
  SimplifyOptions Opts;
  Opts.MaxInstances = 10;
  InstantiationStats Stats;
  instantiatePhase1(R.Conj, PS.assertions(), Opts, &Stats, nullptr);
  EXPECT_LE(Stats.Generated, 10u);
}
