//===- ir_flatten_test.cpp - UF-to-polyhedron lowering tests ---------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Flatten.h"
#include "sds/ir/Parser.h"

#include <gtest/gtest.h>

using namespace sds::ir;
using sds::presburger::Ternary;

namespace {
SparseRelation parse(const char *Text) {
  auto R = parseRelation(Text);
  EXPECT_TRUE(R.Ok) << R.Error << " in " << Text;
  return R.Rel;
}
} // namespace

TEST(Flatten, ColumnLayoutAndSharing) {
  SparseRelation R = parse("{ [i] -> [i'] : exists(k') : i < i' && "
                           "i = col(k') && rowptr(i') <= k' < rowptr(i'+1) }");
  Flattened F = flatten(R);
  // Columns: i, i', k', then calls col(k'), rowptr(i'), rowptr(i' + 1).
  ASSERT_EQ(F.Cols.size(), 6u);
  EXPECT_EQ(F.Names[0], "i");
  EXPECT_EQ(F.Names[1], "i'");
  EXPECT_EQ(F.Names[2], "k'");
  EXPECT_NE(F.columnOf(Atom::call("col", {Expr::var("k'")})),
            F.Set.numVars());
  // Syntactically equal calls share one column.
  EXPECT_EQ(F.columnOf(Atom::call("rowptr", {Expr::var("i'")})),
            F.columnOf(Atom::call("rowptr", {Expr::var("i'")})));
}

TEST(Flatten, SatisfiabilityOfUFRelation) {
  // Without knowledge about col/rowptr the relation is satisfiable.
  SparseRelation R = parse("{ [i] -> [i'] : exists(k') : i < i' && "
                           "i = col(k') && 0 <= i < n && 0 <= i' < n && "
                           "rowptr(i') <= k' < rowptr(i'+1) }");
  Flattened F = flatten(R);
  EXPECT_EQ(F.Set.isEmpty(), Ternary::False);
}

TEST(Flatten, AffineContradictionDetected) {
  SparseRelation R = parse("{ [i] -> [i'] : i < i' && i' < i }");
  Flattened F = flatten(R);
  EXPECT_EQ(F.Set.isEmpty(), Ternary::True);
}

TEST(Flatten, SharedCallColumnsForceConsistency) {
  // f(i) < f(i) is a contradiction because both calls share a column.
  SparseRelation R = parse("{ [i] : f(i) < f(i) }");
  Flattened F = flatten(R);
  EXPECT_EQ(F.Set.isEmpty(), Ternary::True);
}

TEST(Flatten, DistinctArgsDistinctColumns) {
  // f(i) < f(j) is satisfiable: different argument expressions.
  SparseRelation R = parse("{ [i, j] : f(i) < f(j) }");
  Flattened F = flatten(R);
  EXPECT_EQ(F.Set.isEmpty(), Ternary::False);
}

TEST(Flatten, NestedCallsGetColumns) {
  SparseRelation R = parse("{ [m] : col(row(m)) <= 5 }");
  Flattened F = flatten(R);
  // Columns: m, col(row(m)), row(m).
  EXPECT_EQ(F.Cols.size(), 3u);
  EXPECT_NE(F.columnOf(Atom::call("row", {Expr::var("m")})),
            F.Set.numVars());
}

TEST(Flatten, RowToExprRoundTrip) {
  SparseRelation R = parse("{ [i] : exists(k) : i = col(k) && 0 <= i }");
  Flattened F = flatten(R);
  for (const auto &Row : F.Set.equalities()) {
    Expr E = F.rowToExpr(Row);
    // i - col(k) == 0 (up to sign).
    Expr Expected = Expr::var("i") - Expr::call("col", {Expr::var("k")});
    EXPECT_TRUE(E == Expected || E == -Expected) << E.str();
  }
}

TEST(Flatten, ParamsGetColumns) {
  SparseRelation R = parse("{ [i] : 0 <= i < n && n <= nnz }");
  Flattened F = flatten(R);
  EXPECT_NE(F.columnOf(Atom::var("n")), F.Set.numVars());
  EXPECT_NE(F.columnOf(Atom::var("nnz")), F.Set.numVars());
}

TEST(Flatten, VarOrderRespected) {
  Conjunction C;
  C.add(Constraint::lt(Expr::var("a"), Expr::var("b")));
  Flattened F = flatten(C, {"b", "a"});
  EXPECT_EQ(F.Names[0], "b");
  EXPECT_EQ(F.Names[1], "a");
  ASSERT_EQ(F.Set.inequalities().size(), 1u);
  // b - a - 1 >= 0 with b in column 0.
  EXPECT_EQ(F.Set.inequalities()[0],
            (std::vector<int64_t>{1, -1, -1}));
}
