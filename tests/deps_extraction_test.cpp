//===- deps_extraction_test.cpp - Dependence extraction tests --------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/deps/Extraction.h"
#include "sds/kernels/Kernels.h"

#include <gtest/gtest.h>

#include <map>

using namespace sds;
using namespace sds::deps;
using namespace sds::kernels;

TEST(Extraction, ForwardSolveCSRDependences) {
  // Array u: S1 reads u[col[k]], S2 writes u[i]. Pairs with >= 1 write:
  // (S1r,S2w), (S2w,S1r), (S2w,S2w). val and f are read-only.
  auto Deps = extractDependences(forwardSolveCSR());
  ASSERT_EQ(Deps.size(), 3u);
  for (const Dependence &D : Deps)
    EXPECT_EQ(D.Array, "u");
}

TEST(Extraction, PaperSection21Relation) {
  // The flow dependence of §2.1: write u[i]@S2 to read u[col[k']]@S1.
  auto Deps = extractDependences(forwardSolveCSR());
  const Dependence *Flow = nullptr;
  for (const Dependence &D : Deps)
    if (D.SrcStmt == "S2" && D.DstStmt == "S1" && D.SrcIsWrite &&
        !D.DstIsWrite)
      Flow = &D;
  ASSERT_NE(Flow, nullptr);
  const ir::SparseRelation &R = Flow->Rel;
  EXPECT_EQ(R.InVars, std::vector<std::string>{"i"});
  EXPECT_EQ(R.OutVars, (std::vector<std::string>{"i'", "k'"}));
  // Constraints include i < i' and i = col(k').
  EXPECT_TRUE(R.Conj.impliesSyntactically(
      ir::Constraint::lt(ir::Expr::var("i"), ir::Expr::var("i'"))))
      << R.str();
  EXPECT_TRUE(R.Conj.impliesSyntactically(ir::Constraint::equals(
      ir::Expr::var("i"), ir::Expr::call("col", {ir::Expr::var("k'")}))))
      << R.str();
}

TEST(Extraction, PrimingAppliesInsideCallArguments) {
  auto Deps = extractDependences(forwardSolveCSR());
  for (const Dependence &D : Deps) {
    if (D.SrcStmt != "S2" || D.DstStmt != "S1")
      continue;
    // The sink's rowptr bounds must reference i', not i.
    bool FoundPrimed = false;
    for (const ir::Atom &A : D.Rel.Conj.collectCalls())
      if (A.str() == "rowptr(i')")
        FoundPrimed = true;
    EXPECT_TRUE(FoundPrimed) << D.Rel.str();
  }
}

TEST(Extraction, NoReadReadPairs) {
  for (const kernels::Kernel &K : allKernels())
    for (const Dependence &D : extractDependences(K))
      EXPECT_TRUE(D.SrcIsWrite || D.DstIsWrite) << K.Name << " " << D.label();
}

TEST(Extraction, DeduplicationCollapsesIdenticalRelations) {
  // SpMV's y[i] write/read pairs all produce the same relation.
  auto Raw = extractDependences(spmvCSR(), /*Deduplicate=*/false);
  auto Unique = extractDependences(spmvCSR(), /*Deduplicate=*/true);
  EXPECT_GT(Raw.size(), Unique.size());
  ASSERT_EQ(Unique.size(), 1u);
}

TEST(Extraction, SuiteWideCounts) {
  // The paper reports 75 unique dependence relations across the suite
  // (§7.1; its conclusion says 63). Our extractor, with its own counting
  // conventions (deduplicated ordered access pairs, reduction updates
  // conflict-free with each other), lands at 67 — the same regime. Pin
  // the per-kernel counts so encoding regressions are visible.
  std::map<std::string, unsigned> Expected = {
      {"Gauss-Seidel CSR", 3},          {"Incomplete LU0 CSR", 15},
      {"Incomplete Cholesky CSC", 26},  {"Forward Solve CSC", 7},
      {"Forward Solve CSR", 3},         {"Sparse MV Multiply CSR", 1},
      {"Static Left Cholesky CSC", 12},
  };
  unsigned Total = 0;
  for (const kernels::Kernel &K : allKernels()) {
    auto Deps = extractDependences(K);
    ASSERT_TRUE(Expected.count(K.Name)) << K.Name;
    EXPECT_EQ(Deps.size(), Expected[K.Name]) << K.Name;
    Total += static_cast<unsigned>(Deps.size());
  }
  EXPECT_EQ(Total, 67u);
}

TEST(Extraction, GuardsAreIncluded) {
  auto Deps = extractDependences(incompleteCholeskyCSC());
  // Any S3-source relation carries the rowidx guards.
  bool Found = false;
  for (const Dependence &D : Deps) {
    if (D.SrcStmt != "S3")
      continue;
    Found = true;
    EXPECT_TRUE(D.Rel.Conj.impliesSyntactically(ir::Constraint::equals(
        ir::Expr::call("rowidx", {ir::Expr::var("l")}),
        ir::Expr::call("rowidx", {ir::Expr::var("k")}))))
        << D.Rel.str();
  }
  EXPECT_TRUE(Found);
}

TEST(Extraction, OuterLoopOrderingAlwaysPresent) {
  for (const kernels::Kernel &K : allKernels())
    for (const Dependence &D : extractDependences(K)) {
      ir::Constraint Outer = ir::Constraint::lt(
          ir::Expr::var(D.Rel.InVars[0]), ir::Expr::var(D.Rel.OutVars[0]));
      EXPECT_TRUE(D.Rel.Conj.impliesSyntactically(Outer))
          << K.Name << " " << D.label();
    }
}
