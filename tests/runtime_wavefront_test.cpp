//===- runtime_wavefront_test.cpp - DAG / level set / LBC tests ------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/runtime/Matrix.h"
#include "sds/runtime/Wavefront.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

using namespace sds::rt;

namespace {

/// Successor list as a vector (successors() returns a span into the CSR
/// arrays; gtest compares vectors more readably).
std::vector<int> succ(const DependenceGraph &G, int Node) {
  auto S = G.successors(Node);
  return {S.begin(), S.end()};
}

/// Figure 2's dependence graph (from Figure 1's matrix).
DependenceGraph figure2Graph() {
  DependenceGraph G(4);
  G.addEdge(0, 2);
  G.addEdge(0, 3);
  G.addEdge(2, 3);
  G.finalize();
  return G;
}

} // namespace

TEST(DependenceGraph, EdgesAndInvariants) {
  DependenceGraph G = figure2Graph();
  EXPECT_EQ(G.numEdges(), 3u);
  EXPECT_TRUE(G.isForwardOnly());
  EXPECT_EQ(succ(G, 0), (std::vector<int>{2, 3}));
  EXPECT_TRUE(G.successors(1).empty());
}

TEST(DependenceGraph, DeduplicatesAndIgnoresSelfEdges) {
  DependenceGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(0, 1);
  G.addEdge(1, 1); // ignored
  G.finalize();
  EXPECT_EQ(G.numEdges(), 1u);
}

TEST(DependenceGraph, CSRSuccessorsSortedUniqueAgainstReference) {
  // Random insertion order with heavy duplication: the finalized CSR rows
  // must match a reference adjacency-set representation exactly, with each
  // row sorted ascending.
  std::mt19937 Rng(1234);
  int N = 97;
  DependenceGraph G(N);
  std::vector<std::set<int>> Ref(static_cast<size_t>(N));
  std::uniform_int_distribution<int> NodeDist(0, N - 1);
  for (int E = 0; E < N * 20; ++E) {
    int A = NodeDist(Rng), B = NodeDist(Rng);
    G.addEdge(A, B);
    if (A != B)
      Ref[static_cast<size_t>(A)].insert(B);
  }
  G.finalize();
  uint64_t RefEdges = 0;
  for (int U = 0; U < N; ++U) {
    const std::set<int> &R = Ref[static_cast<size_t>(U)];
    RefEdges += R.size();
    std::vector<int> S = succ(G, U);
    EXPECT_EQ(S, std::vector<int>(R.begin(), R.end())) << "node " << U;
    EXPECT_TRUE(std::is_sorted(S.begin(), S.end())) << "node " << U;
  }
  EXPECT_EQ(G.numEdges(), RefEdges);
}

TEST(DependenceGraph, RefinalizeMergesLateEdges) {
  // finalize() must be idempotent and accept edges added after a previous
  // finalize (the driver finalizes once, but schedulers may refinalize).
  DependenceGraph G(4);
  G.addEdge(0, 2);
  G.finalize();
  EXPECT_EQ(G.numEdges(), 1u);
  G.addEdge(0, 3);
  G.addEdge(0, 2); // duplicate of a pre-finalize edge
  G.addEdge(2, 3);
  G.finalize();
  EXPECT_EQ(G.numEdges(), 3u);
  EXPECT_EQ(succ(G, 0), (std::vector<int>{2, 3}));
  EXPECT_EQ(succ(G, 2), (std::vector<int>{3}));
  G.finalize(); // no staged edges: a no-op
  EXPECT_EQ(G.numEdges(), 3u);
}

TEST(DependenceGraph, ReserveEdgesPresizesCSRStorage) {
  // reserveEdges must pre-size the CSR destination array, not just the
  // staging buffer: finalize() under a covering reservation must not
  // reallocate.
  DependenceGraph G(8);
  G.reserveEdges(16);
  size_t Cap = G.edgeCapacity();
  EXPECT_GE(Cap, 16u);
  for (int I = 0; I < 7; ++I)
    G.addEdge(I, I + 1);
  G.finalize();
  EXPECT_EQ(G.edgeCapacity(), Cap) << "finalize grew EdgeDst";
  EXPECT_EQ(G.numEdges(), 7u);

  // Re-finalize after staging more edges: the reservation must cover the
  // existing CSR content (finalize re-stages it) plus the new edges.
  G.reserveEdges(8);
  Cap = G.edgeCapacity();
  for (int I = 0; I < 6; ++I)
    G.addEdge(I, I + 2);
  G.finalize();
  EXPECT_EQ(G.edgeCapacity(), Cap) << "re-finalize grew EdgeDst";
  EXPECT_EQ(G.numEdges(), 13u);
  EXPECT_EQ(succ(G, 0), (std::vector<int>{1, 2}));
}

TEST(LevelSets, CSRGraphMatchesReferenceLongestPath) {
  // Level sets computed from the CSR layout must equal the textbook
  // longest-path-from-source levels computed on an independent adjacency
  // list.
  std::mt19937 Rng(777);
  int N = 128;
  DependenceGraph G(N);
  std::vector<std::vector<int>> Adj(static_cast<size_t>(N));
  std::uniform_int_distribution<int> NodeDist(0, N - 1);
  for (int E = 0; E < N * 4; ++E) {
    int A = NodeDist(Rng), B = NodeDist(Rng);
    if (A < B) { // forward edges only: guaranteed acyclic
      G.addEdge(A, B);
      Adj[static_cast<size_t>(A)].push_back(B);
    }
  }
  G.finalize();
  std::vector<int> Depth(static_cast<size_t>(N), 0);
  for (int U = 0; U < N; ++U) // topological order since A < B
    for (int V : Adj[static_cast<size_t>(U)])
      Depth[static_cast<size_t>(V)] =
          std::max(Depth[static_cast<size_t>(V)],
                   Depth[static_cast<size_t>(U)] + 1);
  LevelSets LS = computeLevelSets(G);
  ASSERT_EQ(LS.numLevels(),
            *std::max_element(Depth.begin(), Depth.end()) + 1);
  for (int Lvl = 0; Lvl < LS.numLevels(); ++Lvl)
    for (int Node : LS.Levels[static_cast<size_t>(Lvl)])
      EXPECT_EQ(Depth[static_cast<size_t>(Node)], Lvl) << "node " << Node;
}

TEST(LevelSets, Figure2Waves) {
  // The paper's Figure 2: waves {0, 1}, {2}, {3}.
  LevelSets LS = computeLevelSets(figure2Graph());
  ASSERT_EQ(LS.numLevels(), 3);
  EXPECT_EQ(LS.Levels[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(LS.Levels[1], (std::vector<int>{2}));
  EXPECT_EQ(LS.Levels[2], (std::vector<int>{3}));
}

TEST(LevelSets, ChainAndIndependent) {
  DependenceGraph Chain(4);
  Chain.addEdge(0, 1);
  Chain.addEdge(1, 2);
  Chain.addEdge(2, 3);
  Chain.finalize();
  EXPECT_EQ(computeLevelSets(Chain).numLevels(), 4);

  DependenceGraph Free(4);
  Free.finalize();
  EXPECT_EQ(computeLevelSets(Free).numLevels(), 1);
}

TEST(Schedule, LevelSetsRespectDependences) {
  DependenceGraph G = figure2Graph();
  for (int Threads : {1, 2, 4, 8}) {
    WavefrontSchedule S = scheduleLevelSets(G, Threads);
    EXPECT_TRUE(S.respects(G)) << "threads=" << Threads;
    EXPECT_EQ(S.numWaves(), 3);
  }
}

TEST(Schedule, LBCRespectsDependences) {
  DependenceGraph G = figure2Graph();
  for (int Threads : {1, 2, 4}) {
    LBCConfig C;
    C.NumThreads = Threads;
    C.MinWorkPerThread = 1;
    WavefrontSchedule S = scheduleLBC(G, C);
    EXPECT_TRUE(S.respects(G)) << "threads=" << Threads;
  }
}

TEST(Schedule, LBCCoarsensLongChains) {
  // A graph of many short levels: LBC must produce far fewer waves than
  // plain level sets (that is its whole point, §8.1).
  int N = 512;
  DependenceGraph G(N);
  for (int I = 0; I + 2 < N; I += 2)
    G.addEdge(I, I + 2); // two independent chains of length N/2
  G.finalize();
  WavefrontSchedule Plain = scheduleLevelSets(G, 4);
  LBCConfig C;
  C.NumThreads = 4;
  C.MinWorkPerThread = 16;
  WavefrontSchedule Coarse = scheduleLBC(G, C);
  EXPECT_TRUE(Coarse.respects(G));
  EXPECT_LT(Coarse.numWaves(), Plain.numWaves() / 4);
}

TEST(Schedule, CostBalancing) {
  // One expensive node and many cheap ones in a single level: the
  // expensive node must not share its thread with most of the cheap work.
  DependenceGraph G(9);
  G.finalize();
  std::vector<double> Cost(9, 1.0);
  Cost[0] = 8.0;
  WavefrontSchedule S = scheduleLevelSets(G, 2, Cost);
  ASSERT_EQ(S.numWaves(), 1);
  // Find node 0's partition; it should carry few other nodes.
  for (const auto &Part : S.Waves[0]) {
    bool HasBig = false;
    for (int Node : Part)
      if (Node == 0)
        HasBig = true;
    if (HasBig) {
      EXPECT_LE(Part.size(), 3u);
    }
  }
}

//===----------------------------------------------------------------------===//
// Property test: schedules from random DAGs are always valid.
//===----------------------------------------------------------------------===//

class WavefrontRandom : public ::testing::TestWithParam<int> {};

TEST_P(WavefrontRandom, SchedulesRespectRandomGraphs) {
  std::mt19937 Rng(static_cast<unsigned>(GetParam()));
  int N = 64 + GetParam() * 8;
  DependenceGraph G(N);
  std::uniform_int_distribution<int> NodeDist(0, N - 1);
  for (int E = 0; E < N * 3; ++E) {
    int A = NodeDist(Rng), B = NodeDist(Rng);
    if (A < B)
      G.addEdge(A, B);
  }
  G.finalize();
  WavefrontSchedule Plain = scheduleLevelSets(G, 4);
  EXPECT_TRUE(Plain.respects(G));
  LBCConfig C;
  C.NumThreads = 4;
  C.MinWorkPerThread = 8;
  WavefrontSchedule Coarse = scheduleLBC(G, C);
  EXPECT_TRUE(Coarse.respects(G));
  // LBC never has more waves than plain level sets.
  EXPECT_LE(Coarse.numWaves(), Plain.numWaves());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WavefrontRandom, ::testing::Range(0, 20));

TEST(Schedule, RespectsDetectsViolations) {
  DependenceGraph G = figure2Graph();
  WavefrontSchedule Bad;
  // All nodes in one wave on separate threads: 0->2 violated.
  Bad.Waves = {{{0}, {1}, {2}, {3}}};
  EXPECT_FALSE(Bad.respects(G));
  // Missing node.
  WavefrontSchedule Missing;
  Missing.Waves = {{{0, 1, 2}}};
  EXPECT_FALSE(Missing.respects(G));
  // Same-thread ordering of a same-wave edge is legal.
  WavefrontSchedule SameThread;
  SameThread.Waves = {{{0, 2, 3}, {1}}};
  EXPECT_TRUE(SameThread.respects(G));
}
