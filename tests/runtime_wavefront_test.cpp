//===- runtime_wavefront_test.cpp - DAG / level set / LBC tests ------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/runtime/Matrix.h"
#include "sds/runtime/Wavefront.h"

#include <gtest/gtest.h>

#include <random>

using namespace sds::rt;

namespace {

/// Figure 2's dependence graph (from Figure 1's matrix).
DependenceGraph figure2Graph() {
  DependenceGraph G(4);
  G.addEdge(0, 2);
  G.addEdge(0, 3);
  G.addEdge(2, 3);
  G.finalize();
  return G;
}

} // namespace

TEST(DependenceGraph, EdgesAndInvariants) {
  DependenceGraph G = figure2Graph();
  EXPECT_EQ(G.numEdges(), 3u);
  EXPECT_TRUE(G.isForwardOnly());
  EXPECT_EQ(G.successors(0), (std::vector<int>{2, 3}));
  EXPECT_TRUE(G.successors(1).empty());
}

TEST(DependenceGraph, DeduplicatesAndIgnoresSelfEdges) {
  DependenceGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(0, 1);
  G.addEdge(1, 1); // ignored
  G.finalize();
  EXPECT_EQ(G.numEdges(), 1u);
}

TEST(LevelSets, Figure2Waves) {
  // The paper's Figure 2: waves {0, 1}, {2}, {3}.
  LevelSets LS = computeLevelSets(figure2Graph());
  ASSERT_EQ(LS.numLevels(), 3);
  EXPECT_EQ(LS.Levels[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(LS.Levels[1], (std::vector<int>{2}));
  EXPECT_EQ(LS.Levels[2], (std::vector<int>{3}));
}

TEST(LevelSets, ChainAndIndependent) {
  DependenceGraph Chain(4);
  Chain.addEdge(0, 1);
  Chain.addEdge(1, 2);
  Chain.addEdge(2, 3);
  Chain.finalize();
  EXPECT_EQ(computeLevelSets(Chain).numLevels(), 4);

  DependenceGraph Free(4);
  Free.finalize();
  EXPECT_EQ(computeLevelSets(Free).numLevels(), 1);
}

TEST(Schedule, LevelSetsRespectDependences) {
  DependenceGraph G = figure2Graph();
  for (int Threads : {1, 2, 4, 8}) {
    WavefrontSchedule S = scheduleLevelSets(G, Threads);
    EXPECT_TRUE(S.respects(G)) << "threads=" << Threads;
    EXPECT_EQ(S.numWaves(), 3);
  }
}

TEST(Schedule, LBCRespectsDependences) {
  DependenceGraph G = figure2Graph();
  for (int Threads : {1, 2, 4}) {
    LBCConfig C;
    C.NumThreads = Threads;
    C.MinWorkPerThread = 1;
    WavefrontSchedule S = scheduleLBC(G, C);
    EXPECT_TRUE(S.respects(G)) << "threads=" << Threads;
  }
}

TEST(Schedule, LBCCoarsensLongChains) {
  // A graph of many short levels: LBC must produce far fewer waves than
  // plain level sets (that is its whole point, §8.1).
  int N = 512;
  DependenceGraph G(N);
  for (int I = 0; I + 2 < N; I += 2)
    G.addEdge(I, I + 2); // two independent chains of length N/2
  G.finalize();
  WavefrontSchedule Plain = scheduleLevelSets(G, 4);
  LBCConfig C;
  C.NumThreads = 4;
  C.MinWorkPerThread = 16;
  WavefrontSchedule Coarse = scheduleLBC(G, C);
  EXPECT_TRUE(Coarse.respects(G));
  EXPECT_LT(Coarse.numWaves(), Plain.numWaves() / 4);
}

TEST(Schedule, CostBalancing) {
  // One expensive node and many cheap ones in a single level: the
  // expensive node must not share its thread with most of the cheap work.
  DependenceGraph G(9);
  G.finalize();
  std::vector<double> Cost(9, 1.0);
  Cost[0] = 8.0;
  WavefrontSchedule S = scheduleLevelSets(G, 2, Cost);
  ASSERT_EQ(S.numWaves(), 1);
  // Find node 0's partition; it should carry few other nodes.
  for (const auto &Part : S.Waves[0]) {
    bool HasBig = false;
    for (int Node : Part)
      if (Node == 0)
        HasBig = true;
    if (HasBig) {
      EXPECT_LE(Part.size(), 3u);
    }
  }
}

//===----------------------------------------------------------------------===//
// Property test: schedules from random DAGs are always valid.
//===----------------------------------------------------------------------===//

class WavefrontRandom : public ::testing::TestWithParam<int> {};

TEST_P(WavefrontRandom, SchedulesRespectRandomGraphs) {
  std::mt19937 Rng(static_cast<unsigned>(GetParam()));
  int N = 64 + GetParam() * 8;
  DependenceGraph G(N);
  std::uniform_int_distribution<int> NodeDist(0, N - 1);
  for (int E = 0; E < N * 3; ++E) {
    int A = NodeDist(Rng), B = NodeDist(Rng);
    if (A < B)
      G.addEdge(A, B);
  }
  G.finalize();
  WavefrontSchedule Plain = scheduleLevelSets(G, 4);
  EXPECT_TRUE(Plain.respects(G));
  LBCConfig C;
  C.NumThreads = 4;
  C.MinWorkPerThread = 8;
  WavefrontSchedule Coarse = scheduleLBC(G, C);
  EXPECT_TRUE(Coarse.respects(G));
  // LBC never has more waves than plain level sets.
  EXPECT_LE(Coarse.numWaves(), Plain.numWaves());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WavefrontRandom, ::testing::Range(0, 20));

TEST(Schedule, RespectsDetectsViolations) {
  DependenceGraph G = figure2Graph();
  WavefrontSchedule Bad;
  // All nodes in one wave on separate threads: 0->2 violated.
  Bad.Waves = {{{0}, {1}, {2}, {3}}};
  EXPECT_FALSE(Bad.respects(G));
  // Missing node.
  WavefrontSchedule Missing;
  Missing.Waves = {{{0, 1, 2}}};
  EXPECT_FALSE(Missing.respects(G));
  // Same-thread ordering of a same-wave edge is legal.
  WavefrontSchedule SameThread;
  SameThread.Waves = {{{0, 2, 3}, {1}}};
  EXPECT_TRUE(SameThread.respects(G));
}
