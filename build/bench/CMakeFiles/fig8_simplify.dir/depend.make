# Empty dependencies file for fig8_simplify.
# This may be replaced when dependencies are built.
