file(REMOVE_RECURSE
  "CMakeFiles/fig8_simplify.dir/fig8_simplify.cpp.o"
  "CMakeFiles/fig8_simplify.dir/fig8_simplify.cpp.o.d"
  "fig8_simplify"
  "fig8_simplify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_simplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
