# Empty compiler generated dependencies file for ablation_simplify.
# This may be replaced when dependencies are built.
