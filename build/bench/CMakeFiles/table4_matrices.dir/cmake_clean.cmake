file(REMOVE_RECURSE
  "CMakeFiles/table4_matrices.dir/table4_matrices.cpp.o"
  "CMakeFiles/table4_matrices.dir/table4_matrices.cpp.o.d"
  "table4_matrices"
  "table4_matrices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_matrices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
