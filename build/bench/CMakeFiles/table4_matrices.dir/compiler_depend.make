# Empty compiler generated dependencies file for table4_matrices.
# This may be replaced when dependencies are built.
