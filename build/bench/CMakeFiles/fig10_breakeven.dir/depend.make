# Empty dependencies file for fig10_breakeven.
# This may be replaced when dependencies are built.
