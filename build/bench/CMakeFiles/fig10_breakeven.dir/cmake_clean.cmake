file(REMOVE_RECURSE
  "CMakeFiles/fig10_breakeven.dir/fig10_breakeven.cpp.o"
  "CMakeFiles/fig10_breakeven.dir/fig10_breakeven.cpp.o.d"
  "fig10_breakeven"
  "fig10_breakeven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
