# Empty dependencies file for fig7_unsat.
# This may be replaced when dependencies are built.
