
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_unsat.cpp" "bench/CMakeFiles/fig7_unsat.dir/fig7_unsat.cpp.o" "gcc" "bench/CMakeFiles/fig7_unsat.dir/fig7_unsat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/sds_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/sds_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/sds_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/sds_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sds_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sds_presburger.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sds_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sds_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
