file(REMOVE_RECURSE
  "CMakeFiles/fig7_unsat.dir/fig7_unsat.cpp.o"
  "CMakeFiles/fig7_unsat.dir/fig7_unsat.cpp.o.d"
  "fig7_unsat"
  "fig7_unsat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_unsat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
