file(REMOVE_RECURSE
  "CMakeFiles/table5_serial.dir/table5_serial.cpp.o"
  "CMakeFiles/table5_serial.dir/table5_serial.cpp.o.d"
  "table5_serial"
  "table5_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
