# Empty dependencies file for table5_serial.
# This may be replaced when dependencies are built.
