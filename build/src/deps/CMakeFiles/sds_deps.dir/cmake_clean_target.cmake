file(REMOVE_RECURSE
  "libsds_deps.a"
)
