# Empty compiler generated dependencies file for sds_deps.
# This may be replaced when dependencies are built.
