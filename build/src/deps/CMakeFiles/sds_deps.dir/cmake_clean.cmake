file(REMOVE_RECURSE
  "CMakeFiles/sds_deps.dir/Extraction.cpp.o"
  "CMakeFiles/sds_deps.dir/Extraction.cpp.o.d"
  "CMakeFiles/sds_deps.dir/Pipeline.cpp.o"
  "CMakeFiles/sds_deps.dir/Pipeline.cpp.o.d"
  "libsds_deps.a"
  "libsds_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
