file(REMOVE_RECURSE
  "CMakeFiles/sds_driver.dir/Applications.cpp.o"
  "CMakeFiles/sds_driver.dir/Applications.cpp.o.d"
  "CMakeFiles/sds_driver.dir/Driver.cpp.o"
  "CMakeFiles/sds_driver.dir/Driver.cpp.o.d"
  "libsds_driver.a"
  "libsds_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
