# Empty dependencies file for sds_driver.
# This may be replaced when dependencies are built.
