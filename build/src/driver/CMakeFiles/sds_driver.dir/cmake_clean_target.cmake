file(REMOVE_RECURSE
  "libsds_driver.a"
)
