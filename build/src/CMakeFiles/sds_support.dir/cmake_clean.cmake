file(REMOVE_RECURSE
  "CMakeFiles/sds_support.dir/support/Fraction.cpp.o"
  "CMakeFiles/sds_support.dir/support/Fraction.cpp.o.d"
  "CMakeFiles/sds_support.dir/support/JSON.cpp.o"
  "CMakeFiles/sds_support.dir/support/JSON.cpp.o.d"
  "libsds_support.a"
  "libsds_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
