# Empty dependencies file for sds_support.
# This may be replaced when dependencies are built.
