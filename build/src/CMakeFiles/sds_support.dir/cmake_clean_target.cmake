file(REMOVE_RECURSE
  "libsds_support.a"
)
