file(REMOVE_RECURSE
  "CMakeFiles/sds_presburger.dir/presburger/BasicSet.cpp.o"
  "CMakeFiles/sds_presburger.dir/presburger/BasicSet.cpp.o.d"
  "CMakeFiles/sds_presburger.dir/presburger/Simplex.cpp.o"
  "CMakeFiles/sds_presburger.dir/presburger/Simplex.cpp.o.d"
  "libsds_presburger.a"
  "libsds_presburger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_presburger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
