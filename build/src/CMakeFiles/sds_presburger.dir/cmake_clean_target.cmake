file(REMOVE_RECURSE
  "libsds_presburger.a"
)
