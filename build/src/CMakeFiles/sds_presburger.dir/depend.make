# Empty dependencies file for sds_presburger.
# This may be replaced when dependencies are built.
