file(REMOVE_RECURSE
  "CMakeFiles/sds_codegen.dir/Approximate.cpp.o"
  "CMakeFiles/sds_codegen.dir/Approximate.cpp.o.d"
  "CMakeFiles/sds_codegen.dir/Complexity.cpp.o"
  "CMakeFiles/sds_codegen.dir/Complexity.cpp.o.d"
  "CMakeFiles/sds_codegen.dir/Emit.cpp.o"
  "CMakeFiles/sds_codegen.dir/Emit.cpp.o.d"
  "CMakeFiles/sds_codegen.dir/Evaluate.cpp.o"
  "CMakeFiles/sds_codegen.dir/Evaluate.cpp.o.d"
  "CMakeFiles/sds_codegen.dir/Plan.cpp.o"
  "CMakeFiles/sds_codegen.dir/Plan.cpp.o.d"
  "libsds_codegen.a"
  "libsds_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
