# Empty compiler generated dependencies file for sds_codegen.
# This may be replaced when dependencies are built.
