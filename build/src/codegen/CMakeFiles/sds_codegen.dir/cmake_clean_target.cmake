file(REMOVE_RECURSE
  "libsds_codegen.a"
)
