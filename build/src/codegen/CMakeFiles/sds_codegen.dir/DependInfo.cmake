
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/Approximate.cpp" "src/codegen/CMakeFiles/sds_codegen.dir/Approximate.cpp.o" "gcc" "src/codegen/CMakeFiles/sds_codegen.dir/Approximate.cpp.o.d"
  "/root/repo/src/codegen/Complexity.cpp" "src/codegen/CMakeFiles/sds_codegen.dir/Complexity.cpp.o" "gcc" "src/codegen/CMakeFiles/sds_codegen.dir/Complexity.cpp.o.d"
  "/root/repo/src/codegen/Emit.cpp" "src/codegen/CMakeFiles/sds_codegen.dir/Emit.cpp.o" "gcc" "src/codegen/CMakeFiles/sds_codegen.dir/Emit.cpp.o.d"
  "/root/repo/src/codegen/Evaluate.cpp" "src/codegen/CMakeFiles/sds_codegen.dir/Evaluate.cpp.o" "gcc" "src/codegen/CMakeFiles/sds_codegen.dir/Evaluate.cpp.o.d"
  "/root/repo/src/codegen/Plan.cpp" "src/codegen/CMakeFiles/sds_codegen.dir/Plan.cpp.o" "gcc" "src/codegen/CMakeFiles/sds_codegen.dir/Plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sds_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sds_presburger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sds_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
