# Empty compiler generated dependencies file for sds_kernels.
# This may be replaced when dependencies are built.
