file(REMOVE_RECURSE
  "libsds_kernels.a"
)
