
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/Kernels.cpp" "src/kernels/CMakeFiles/sds_kernels.dir/Kernels.cpp.o" "gcc" "src/kernels/CMakeFiles/sds_kernels.dir/Kernels.cpp.o.d"
  "/root/repo/src/kernels/LoopNest.cpp" "src/kernels/CMakeFiles/sds_kernels.dir/LoopNest.cpp.o" "gcc" "src/kernels/CMakeFiles/sds_kernels.dir/LoopNest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sds_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sds_presburger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sds_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
