file(REMOVE_RECURSE
  "CMakeFiles/sds_kernels.dir/Kernels.cpp.o"
  "CMakeFiles/sds_kernels.dir/Kernels.cpp.o.d"
  "CMakeFiles/sds_kernels.dir/LoopNest.cpp.o"
  "CMakeFiles/sds_kernels.dir/LoopNest.cpp.o.d"
  "libsds_kernels.a"
  "libsds_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
