# Empty compiler generated dependencies file for sds_runtime.
# This may be replaced when dependencies are built.
