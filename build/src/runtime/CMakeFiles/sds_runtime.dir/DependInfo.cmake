
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Kernels.cpp" "src/runtime/CMakeFiles/sds_runtime.dir/Kernels.cpp.o" "gcc" "src/runtime/CMakeFiles/sds_runtime.dir/Kernels.cpp.o.d"
  "/root/repo/src/runtime/Matrix.cpp" "src/runtime/CMakeFiles/sds_runtime.dir/Matrix.cpp.o" "gcc" "src/runtime/CMakeFiles/sds_runtime.dir/Matrix.cpp.o.d"
  "/root/repo/src/runtime/MatrixMarket.cpp" "src/runtime/CMakeFiles/sds_runtime.dir/MatrixMarket.cpp.o" "gcc" "src/runtime/CMakeFiles/sds_runtime.dir/MatrixMarket.cpp.o.d"
  "/root/repo/src/runtime/Wavefront.cpp" "src/runtime/CMakeFiles/sds_runtime.dir/Wavefront.cpp.o" "gcc" "src/runtime/CMakeFiles/sds_runtime.dir/Wavefront.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sds_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
