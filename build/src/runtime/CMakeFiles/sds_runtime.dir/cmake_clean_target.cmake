file(REMOVE_RECURSE
  "libsds_runtime.a"
)
