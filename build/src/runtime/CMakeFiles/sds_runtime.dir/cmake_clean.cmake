file(REMOVE_RECURSE
  "CMakeFiles/sds_runtime.dir/Kernels.cpp.o"
  "CMakeFiles/sds_runtime.dir/Kernels.cpp.o.d"
  "CMakeFiles/sds_runtime.dir/Matrix.cpp.o"
  "CMakeFiles/sds_runtime.dir/Matrix.cpp.o.d"
  "CMakeFiles/sds_runtime.dir/MatrixMarket.cpp.o"
  "CMakeFiles/sds_runtime.dir/MatrixMarket.cpp.o.d"
  "CMakeFiles/sds_runtime.dir/Wavefront.cpp.o"
  "CMakeFiles/sds_runtime.dir/Wavefront.cpp.o.d"
  "libsds_runtime.a"
  "libsds_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
