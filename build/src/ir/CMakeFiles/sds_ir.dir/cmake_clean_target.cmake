file(REMOVE_RECURSE
  "libsds_ir.a"
)
