
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/EqualityDiscovery.cpp" "src/ir/CMakeFiles/sds_ir.dir/EqualityDiscovery.cpp.o" "gcc" "src/ir/CMakeFiles/sds_ir.dir/EqualityDiscovery.cpp.o.d"
  "/root/repo/src/ir/Expr.cpp" "src/ir/CMakeFiles/sds_ir.dir/Expr.cpp.o" "gcc" "src/ir/CMakeFiles/sds_ir.dir/Expr.cpp.o.d"
  "/root/repo/src/ir/Flatten.cpp" "src/ir/CMakeFiles/sds_ir.dir/Flatten.cpp.o" "gcc" "src/ir/CMakeFiles/sds_ir.dir/Flatten.cpp.o.d"
  "/root/repo/src/ir/Instantiation.cpp" "src/ir/CMakeFiles/sds_ir.dir/Instantiation.cpp.o" "gcc" "src/ir/CMakeFiles/sds_ir.dir/Instantiation.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/ir/CMakeFiles/sds_ir.dir/Parser.cpp.o" "gcc" "src/ir/CMakeFiles/sds_ir.dir/Parser.cpp.o.d"
  "/root/repo/src/ir/Properties.cpp" "src/ir/CMakeFiles/sds_ir.dir/Properties.cpp.o" "gcc" "src/ir/CMakeFiles/sds_ir.dir/Properties.cpp.o.d"
  "/root/repo/src/ir/Relation.cpp" "src/ir/CMakeFiles/sds_ir.dir/Relation.cpp.o" "gcc" "src/ir/CMakeFiles/sds_ir.dir/Relation.cpp.o.d"
  "/root/repo/src/ir/SubsetDetection.cpp" "src/ir/CMakeFiles/sds_ir.dir/SubsetDetection.cpp.o" "gcc" "src/ir/CMakeFiles/sds_ir.dir/SubsetDetection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sds_presburger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sds_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
