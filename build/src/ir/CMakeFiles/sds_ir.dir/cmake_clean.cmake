file(REMOVE_RECURSE
  "CMakeFiles/sds_ir.dir/EqualityDiscovery.cpp.o"
  "CMakeFiles/sds_ir.dir/EqualityDiscovery.cpp.o.d"
  "CMakeFiles/sds_ir.dir/Expr.cpp.o"
  "CMakeFiles/sds_ir.dir/Expr.cpp.o.d"
  "CMakeFiles/sds_ir.dir/Flatten.cpp.o"
  "CMakeFiles/sds_ir.dir/Flatten.cpp.o.d"
  "CMakeFiles/sds_ir.dir/Instantiation.cpp.o"
  "CMakeFiles/sds_ir.dir/Instantiation.cpp.o.d"
  "CMakeFiles/sds_ir.dir/Parser.cpp.o"
  "CMakeFiles/sds_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/sds_ir.dir/Properties.cpp.o"
  "CMakeFiles/sds_ir.dir/Properties.cpp.o.d"
  "CMakeFiles/sds_ir.dir/Relation.cpp.o"
  "CMakeFiles/sds_ir.dir/Relation.cpp.o.d"
  "CMakeFiles/sds_ir.dir/SubsetDetection.cpp.o"
  "CMakeFiles/sds_ir.dir/SubsetDetection.cpp.o.d"
  "libsds_ir.a"
  "libsds_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
