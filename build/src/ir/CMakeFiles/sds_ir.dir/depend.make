# Empty dependencies file for sds_ir.
# This may be replaced when dependencies are built.
