file(REMOVE_RECURSE
  "CMakeFiles/support_fraction_test.dir/support_fraction_test.cpp.o"
  "CMakeFiles/support_fraction_test.dir/support_fraction_test.cpp.o.d"
  "support_fraction_test"
  "support_fraction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_fraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
