file(REMOVE_RECURSE
  "CMakeFiles/ir_relation_test.dir/ir_relation_test.cpp.o"
  "CMakeFiles/ir_relation_test.dir/ir_relation_test.cpp.o.d"
  "ir_relation_test"
  "ir_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
