# Empty compiler generated dependencies file for presburger_simplex_test.
# This may be replaced when dependencies are built.
