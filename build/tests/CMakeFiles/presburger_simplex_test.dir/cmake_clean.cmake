file(REMOVE_RECURSE
  "CMakeFiles/presburger_simplex_test.dir/presburger_simplex_test.cpp.o"
  "CMakeFiles/presburger_simplex_test.dir/presburger_simplex_test.cpp.o.d"
  "presburger_simplex_test"
  "presburger_simplex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presburger_simplex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
