file(REMOVE_RECURSE
  "CMakeFiles/presburger_basicset_test.dir/presburger_basicset_test.cpp.o"
  "CMakeFiles/presburger_basicset_test.dir/presburger_basicset_test.cpp.o.d"
  "presburger_basicset_test"
  "presburger_basicset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presburger_basicset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
