# Empty dependencies file for presburger_basicset_test.
# This may be replaced when dependencies are built.
