# Empty dependencies file for ir_properties_test.
# This may be replaced when dependencies are built.
