file(REMOVE_RECURSE
  "CMakeFiles/ir_properties_test.dir/ir_properties_test.cpp.o"
  "CMakeFiles/ir_properties_test.dir/ir_properties_test.cpp.o.d"
  "ir_properties_test"
  "ir_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
