# Empty dependencies file for runtime_kernels_test.
# This may be replaced when dependencies are built.
