# Empty compiler generated dependencies file for ir_subset_test.
# This may be replaced when dependencies are built.
