file(REMOVE_RECURSE
  "CMakeFiles/ir_subset_test.dir/ir_subset_test.cpp.o"
  "CMakeFiles/ir_subset_test.dir/ir_subset_test.cpp.o.d"
  "ir_subset_test"
  "ir_subset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_subset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
