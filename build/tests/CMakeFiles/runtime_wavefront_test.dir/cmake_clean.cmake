file(REMOVE_RECURSE
  "CMakeFiles/runtime_wavefront_test.dir/runtime_wavefront_test.cpp.o"
  "CMakeFiles/runtime_wavefront_test.dir/runtime_wavefront_test.cpp.o.d"
  "runtime_wavefront_test"
  "runtime_wavefront_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_wavefront_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
