# Empty compiler generated dependencies file for runtime_wavefront_test.
# This may be replaced when dependencies are built.
