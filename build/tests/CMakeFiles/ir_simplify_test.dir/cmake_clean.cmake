file(REMOVE_RECURSE
  "CMakeFiles/ir_simplify_test.dir/ir_simplify_test.cpp.o"
  "CMakeFiles/ir_simplify_test.dir/ir_simplify_test.cpp.o.d"
  "ir_simplify_test"
  "ir_simplify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
