file(REMOVE_RECURSE
  "CMakeFiles/runtime_matrix_test.dir/runtime_matrix_test.cpp.o"
  "CMakeFiles/runtime_matrix_test.dir/runtime_matrix_test.cpp.o.d"
  "runtime_matrix_test"
  "runtime_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
