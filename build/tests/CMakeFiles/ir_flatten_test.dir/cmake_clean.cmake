file(REMOVE_RECURSE
  "CMakeFiles/ir_flatten_test.dir/ir_flatten_test.cpp.o"
  "CMakeFiles/ir_flatten_test.dir/ir_flatten_test.cpp.o.d"
  "ir_flatten_test"
  "ir_flatten_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_flatten_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
