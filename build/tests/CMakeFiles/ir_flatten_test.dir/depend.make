# Empty dependencies file for ir_flatten_test.
# This may be replaced when dependencies are built.
