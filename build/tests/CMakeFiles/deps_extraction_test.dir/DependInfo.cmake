
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/deps_extraction_test.cpp" "tests/CMakeFiles/deps_extraction_test.dir/deps_extraction_test.cpp.o" "gcc" "tests/CMakeFiles/deps_extraction_test.dir/deps_extraction_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deps/CMakeFiles/sds_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/sds_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/sds_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sds_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sds_presburger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sds_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
