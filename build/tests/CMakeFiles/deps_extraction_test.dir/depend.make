# Empty dependencies file for deps_extraction_test.
# This may be replaced when dependencies are built.
