file(REMOVE_RECURSE
  "CMakeFiles/deps_extraction_test.dir/deps_extraction_test.cpp.o"
  "CMakeFiles/deps_extraction_test.dir/deps_extraction_test.cpp.o.d"
  "deps_extraction_test"
  "deps_extraction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deps_extraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
