file(REMOVE_RECURSE
  "CMakeFiles/kernel_complexity_test.dir/kernel_complexity_test.cpp.o"
  "CMakeFiles/kernel_complexity_test.dir/kernel_complexity_test.cpp.o.d"
  "kernel_complexity_test"
  "kernel_complexity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_complexity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
