file(REMOVE_RECURSE
  "CMakeFiles/analyze_kernel.dir/analyze_kernel.cpp.o"
  "CMakeFiles/analyze_kernel.dir/analyze_kernel.cpp.o.d"
  "analyze_kernel"
  "analyze_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
