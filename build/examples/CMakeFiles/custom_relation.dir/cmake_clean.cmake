file(REMOVE_RECURSE
  "CMakeFiles/custom_relation.dir/custom_relation.cpp.o"
  "CMakeFiles/custom_relation.dir/custom_relation.cpp.o.d"
  "custom_relation"
  "custom_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
