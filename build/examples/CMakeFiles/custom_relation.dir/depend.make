# Empty dependencies file for custom_relation.
# This may be replaced when dependencies are built.
