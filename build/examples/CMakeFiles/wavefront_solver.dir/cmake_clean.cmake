file(REMOVE_RECURSE
  "CMakeFiles/wavefront_solver.dir/wavefront_solver.cpp.o"
  "CMakeFiles/wavefront_solver.dir/wavefront_solver.cpp.o.d"
  "wavefront_solver"
  "wavefront_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavefront_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
