# Empty compiler generated dependencies file for wavefront_solver.
# This may be replaced when dependencies are built.
