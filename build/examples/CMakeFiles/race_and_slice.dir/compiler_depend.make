# Empty compiler generated dependencies file for race_and_slice.
# This may be replaced when dependencies are built.
