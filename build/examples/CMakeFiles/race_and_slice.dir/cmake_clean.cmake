file(REMOVE_RECURSE
  "CMakeFiles/race_and_slice.dir/race_and_slice.cpp.o"
  "CMakeFiles/race_and_slice.dir/race_and_slice.cpp.o.d"
  "race_and_slice"
  "race_and_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_and_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
