//===- race_and_slice.cpp - §10 applications demo --------------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The paper's §10 sketches uses of sparse dependence simplification beyond
// wavefronts. Two of them, as library calls:
//
//  * race-check suppression: which access pairs would a dynamic race
//    detector still need to instrument if the outer loop ran parallel?
//  * iteration-space slicing: which outer iterations must re-run to
//    recompute a chosen set of results?
//
//===----------------------------------------------------------------------===//

#include "sds/driver/Applications.h"
#include "sds/driver/Driver.h"

#include <cstdio>

using namespace sds;
using namespace sds::rt;

int main() {
  // -- Race-check suppression across the suite's cheap kernels. -----------
  std::printf("Race-detector instrumentation after compile-time analysis\n");
  std::printf("(suppressed checks carry zero runtime/memory overhead):\n\n");
  for (const kernels::Kernel &K :
       {kernels::spmvCSR(), kernels::forwardSolveCSR(),
        kernels::gaussSeidelCSR()}) {
    auto Verdicts = driver::classifyRaceChecks(K);
    std::printf("%-26s %4.0f%% suppressed\n", K.Name.c_str(),
                100.0 * driver::raceCheckSuppressionRatio(Verdicts));
    for (const auto &V : Verdicts)
      std::printf("    %-40s %s\n",
                  (V.SrcAccess + " vs " + V.DstAccess).c_str(),
                  V.NeedsRuntimeCheck ? "INSTRUMENT" : V.Reason.c_str());
  }

  // -- Iteration-space slicing on a real dependence graph. ----------------
  CSRMatrix Lower = lowerTriangle(generateSPDLike({2000, 9, 50, 3}));
  CSCMatrix L = toCSC(Lower);
  DependenceGraph G = exactForwardSolveGraph(L);

  std::vector<int> Targets = {L.N - 1};
  std::vector<int> Slice = driver::backwardSlice(G, Targets);
  std::printf("\nForward solve on n=%d: recomputing x[%d] needs %zu of %d "
              "iterations\n(the backward iteration-space slice, Pugh & "
              "Rosser via §10).\n",
              L.N, L.N - 1, Slice.size(), L.N);

  std::vector<int> Impact = driver::forwardSlice(G, {0});
  std::printf("Perturbing x[0] affects %zu iterations downstream.\n",
              Impact.size());
  return 0;
}
