//===- serve_kernels.cpp - Analysis-as-a-service demo ---------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The long-running-service shape the paper's amortization argument assumes
// (DESIGN.md §16): N worker threads serving plan requests for the §8
// kernels over a mix of matrices, with an optional on-disk artifact store
// so a restarted process answers warm without re-running the Presburger
// pipeline. Every response's schedule is executed and checked against the
// serial kernel, so a wrong plan cannot hide.
//
//   serve_kernels                        # 4 workers, 64 requests, no store
//   serve_kernels --store-dir=/tmp/sds   # warm restarts from disk
//   serve_kernels --deadline-ms 50       # per-request deadlines (shedding)
//
// Flags:
//   --workers N        worker threads (default 4)
//   --requests N       total requests to submit (default 64)
//   --queue-depth N    admission-control bound (default 64)
//   --deadline-ms D    per-request deadline; 0 = none (default 0)
//   --store-dir=PATH   persistent artifact store root
//   --metrics[=PATH]   metrics snapshot at exit (and on SIGINT/SIGTERM)
//
// Exit status: nonzero on any lost request, wrong result, or error
// outcome. Shed and degraded outcomes are reported but are not failures —
// they are the server refusing or degrading explicitly, which is the
// contract.
//
//===----------------------------------------------------------------------===//

#include "sds/obs/Metrics.h"
#include "sds/obs/SignalDump.h"
#include "sds/runtime/Kernels.h"
#include "sds/serve/Serve.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace sds;

namespace {

/// One serveable workload: a request plus the serial/scheduled executors
/// that check the returned plan end-to-end.
struct Workload {
  std::string Label;
  serve::ServeRequest Req;
  /// Execute the plan's schedule and return the max deviation from the
  /// serial kernel.
  std::function<double(const engine::MatrixPlan &)> RunAndDiff;
};

} // namespace

int main(int argc, char **argv) {
  int Workers = 4, Requests = 64;
  size_t QueueDepth = 64;
  double DeadlineMs = 0;
  bool Metrics = false;
  std::string StoreDir, MetricsPath;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--workers" && I + 1 < argc) {
      Workers = std::atoi(argv[++I]);
    } else if (Arg == "--requests" && I + 1 < argc) {
      Requests = std::atoi(argv[++I]);
    } else if (Arg == "--queue-depth" && I + 1 < argc) {
      QueueDepth = static_cast<size_t>(std::atoi(argv[++I]));
    } else if (Arg == "--deadline-ms" && I + 1 < argc) {
      DeadlineMs = std::atof(argv[++I]);
    } else if (Arg.rfind("--store-dir=", 0) == 0) {
      StoreDir = Arg.substr(12);
    } else if (Arg == "--metrics") {
      Metrics = true;
      MetricsPath = std::string("-");
    } else if (Arg.rfind("--metrics=", 0) == 0) {
      Metrics = true;
      MetricsPath = Arg.substr(10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--workers N] [--requests N] [--queue-depth N] "
                   "[--deadline-ms D] [--store-dir=PATH] [--metrics[=PATH]]\n",
                   argv[0]);
      return 1;
    }
  }
  if (Metrics)
    obs::setMetricsEnabled(true);
  // A served process dies to SIGTERM, not to main() returning: flush the
  // metrics snapshot and flight-recorder ring on the way out.
  obs::dumpOnFatalSignal(Metrics ? MetricsPath : std::string());

  serve::ServerOptions SO;
  SO.NumWorkers = Workers;
  SO.MaxQueueDepth = QueueDepth;
  SO.StoreRoot = StoreDir;
  serve::Server Server(SO);
  if (!StoreDir.empty() && !Server.persistentStore()) {
    std::fprintf(stderr, "store at '%s' unusable; serving without it\n",
                 StoreDir.c_str());
  }

  // The request mix: forward solve (CSC) over the Table-4 matrix profiles.
  // Each workload checks its response's schedule against the serial solve.
  std::vector<Workload> Mix;
  {
    std::vector<rt::MatrixProfile> Profiles = rt::table4Profiles();
    for (size_t P = 0; P < Profiles.size(); ++P) {
      auto L = std::make_shared<rt::CSCMatrix>(rt::toCSC(
          rt::lowerTriangle(rt::generateFromProfile(Profiles[P], 0.01))));
      Workload W;
      W.Label = "FS CSC / " + Profiles[P].Name.substr(
                                  0, Profiles[P].Name.find(' '));
      W.Req.Kernel = kernels::forwardSolveCSC();
      W.Req.Env = driver::bindCSC(*L);
      W.Req.N = L->N;
      W.Req.DeadlineMs = DeadlineMs;
      W.RunAndDiff = [L](const engine::MatrixPlan &Plan) {
        std::vector<double> B(static_cast<size_t>(L->N), 1.0), XS, XP;
        rt::forwardSolveCSCSerial(*L, B, XS);
        rt::forwardSolveCSCScheduled(*L, B, XP, Plan.Schedule);
        double Diff = 0;
        for (size_t I = 0; I < XS.size(); ++I)
          Diff = std::max(Diff, std::abs(XS[I] - XP[I]));
        return Diff;
      };
      Mix.push_back(std::move(W));
    }
  }

  std::printf("serving %d requests across %zu workloads "
              "(%d workers, queue %zu%s%s)\n",
              Requests, Mix.size(), Workers, QueueDepth,
              DeadlineMs > 0 ? ", deadlines on" : "",
              StoreDir.empty() ? "" : ", persistent store on");

  std::vector<std::pair<size_t, std::future<serve::ServeResponse>>> Pending;
  for (int R = 0; R < Requests; ++R) {
    size_t W = static_cast<size_t>(R) % Mix.size();
    Pending.emplace_back(W, Server.submit(Mix[W].Req));
  }

  int Lost = 0, Wrong = 0, Errors = 0;
  uint64_t ByOutcome[8] = {};
  double MaxDiff = 0;
  for (auto &[W, Fut] : Pending) {
    if (!Fut.valid()) {
      ++Lost;
      continue;
    }
    serve::ServeResponse Resp = Fut.get();
    ++ByOutcome[static_cast<int>(Resp.O)];
    if (Resp.O == serve::Outcome::Error) {
      std::fprintf(stderr, "[%s] error: %s\n", Mix[W].Label.c_str(),
                   Resp.St.message().c_str());
      ++Errors;
      continue;
    }
    if (!Resp.Plan)
      continue; // shed explicitly — not lost, not wrong
    double Diff = Mix[W].RunAndDiff(*Resp.Plan);
    MaxDiff = std::max(MaxDiff, Diff);
    if (Diff > 1e-9) {
      std::fprintf(stderr, "[%s] WRONG RESULT (|diff| %.2e, outcome %s)\n",
                   Mix[W].Label.c_str(), Diff,
                   serve::outcomeName(Resp.O));
      ++Wrong;
    }
  }
  Server.drain();

  serve::ServerStats St = Server.stats();
  std::printf("outcomes:");
  for (int O = 0; O < 8; ++O)
    if (ByOutcome[O])
      std::printf(" %s=%llu",
                  serve::outcomeName(static_cast<serve::Outcome>(O)),
                  static_cast<unsigned long long>(ByOutcome[O]));
  std::printf("\nserver: submitted=%llu completed=%llu shed=%llu "
              "degraded=%llu coalesced=%llu errors=%llu\n",
              static_cast<unsigned long long>(St.Submitted),
              static_cast<unsigned long long>(St.Completed),
              static_cast<unsigned long long>(St.ShedQueue + St.ShedDeadline),
              static_cast<unsigned long long>(St.Degraded),
              static_cast<unsigned long long>(St.Coalesced),
              static_cast<unsigned long long>(St.Errors));
  if (Server.persistentStore()) {
    store::StoreStats SS = Server.persistentStore()->stats();
    std::printf("store: hits=%llu misses=%llu puts=%llu quarantined=%llu\n",
                static_cast<unsigned long long>(SS.Hits),
                static_cast<unsigned long long>(SS.Misses),
                static_cast<unsigned long long>(SS.Puts),
                static_cast<unsigned long long>(SS.Quarantined));
  }
  std::printf("checked results: max |diff| %.2e\n", MaxDiff);

  if (Metrics) {
    if (!obs::writeMetrics(MetricsPath)) {
      std::fprintf(stderr, "cannot write metrics to '%s'\n",
                   MetricsPath.c_str());
      return 1;
    }
    if (MetricsPath != "-")
      std::printf("metrics written to %s\n", MetricsPath.c_str());
  }
  if (Lost || Wrong || Errors) {
    std::fprintf(stderr, "FAILED: %d lost, %d wrong, %d errors\n", Lost,
                 Wrong, Errors);
    return 1;
  }
  return 0;
}
