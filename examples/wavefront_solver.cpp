//===- wavefront_solver.cpp - Inspector-executor triangular solver ---------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The workload the paper's introduction motivates: an iterative solver
// whose preconditioner applies a sparse triangular solve every iteration
// (§8.3). The inspector runs once; the wavefront executor runs hundreds of
// times. Input is a Matrix Market file or a synthetic Table-4 profile.
//
//   wavefront_solver                  # synthetic af_shell3-profile matrix
//   wavefront_solver path/to/A.mtx    # your matrix (general or symmetric)
//   SDS_THREADS=8 wavefront_solver    # executor thread count
//
// Schedule shape (sds::rt schedule post-pass framework, DESIGN.md §14):
//   --schedule=levels|lbc|coalesced|p2p|vector   executor schedule kind
//                         (default: the artifact's recorded spec, else lbc)
//
// Robustness flags (sds::guard):
//   --validate            print the property-validation report
//   --guard=off|warn|fallback   what to do when validation fails
//                         (default fallback: run unsimplified inspectors)
//   --budget-ms MS        wall-clock budget for the compile-time analysis
//
// Compile-once/run-many (sds::artifact):
//   --emit-artifact=PATH  save the compiled kernel after analysis
//   --load-artifact=PATH  skip analysis; load a previously saved artifact
//                         and report warm-vs-cold timing
//
//===----------------------------------------------------------------------===//

#include "sds/artifact/Artifact.h"
#include "sds/driver/Driver.h"
#include "sds/guard/Guarded.h"
#include "sds/obs/Metrics.h"
#include "sds/obs/SignalDump.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "sds/support/OMP.h"

using namespace sds;
using namespace sds::rt;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

int main(int argc, char **argv) {
  guard::GuardMode Mode = guard::GuardMode::Fallback;
  bool Validate = false;
  bool Metrics = false;
  double BudgetMs = 0;
  std::optional<ScheduleKind> Kind;
  std::string MtxPath, EmitPath, LoadPath, MetricsPath;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--validate") {
      Validate = true;
    } else if (Arg == "--metrics") {
      Metrics = true;
      // Assign through a std::string temporary: GCC 12 miscompiles the
      // diagnostics for the const char* overload here (-Wrestrict false
      // positive, PR105329).
      MetricsPath = std::string("-");
    } else if (Arg.rfind("--metrics=", 0) == 0) {
      Metrics = true;
      MetricsPath = Arg.substr(10);
    } else if (Arg.rfind("--guard=", 0) == 0) {
      auto M = guard::parseGuardMode(Arg.substr(8));
      if (!M) {
        std::fprintf(stderr, "--guard expects off|warn|fallback\n");
        return 1;
      }
      Mode = *M;
    } else if (Arg == "--budget-ms" && I + 1 < argc) {
      BudgetMs = std::atof(argv[++I]);
    } else if (Arg.rfind("--emit-artifact=", 0) == 0) {
      EmitPath = Arg.substr(16);
    } else if (Arg.rfind("--load-artifact=", 0) == 0) {
      LoadPath = Arg.substr(16);
    } else if (Arg.rfind("--schedule=", 0) == 0) {
      Kind = parseScheduleKind(Arg.substr(11));
      if (!Kind) {
        std::fprintf(stderr,
                     "--schedule expects levels|lbc|coalesced|p2p|vector\n");
        return 1;
      }
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--validate] [--guard=off|warn|fallback] "
                   "[--budget-ms MS] [--metrics[=PATH]] "
                   "[--schedule=levels|lbc|coalesced|p2p|vector] "
                   "[--emit-artifact=PATH] "
                   "[--load-artifact=PATH] [A.mtx]\n",
                   argv[0]);
      return 1;
    } else {
      MtxPath = Arg;
    }
  }
  if (Metrics)
    obs::setMetricsEnabled(true);
  // Ctrl-C / SIGTERM mid-solve still flushes --metrics output and the
  // flight-recorder ring, so an interrupted run leaves a post-mortem.
  obs::dumpOnFatalSignal(Metrics ? MetricsPath : std::string());

  // -- Input matrix. -------------------------------------------------------
  CSRMatrix Full;
  if (!MtxPath.empty()) {
    support::Status St = loadMatrixMarket(MtxPath, Full);
    if (!St.ok()) {
      std::fprintf(stderr, "%s\n",
                   St.withContext("load '" + MtxPath + "'").str().c_str());
      return 1;
    }
    std::printf("Loaded %s: n=%d nnz=%d\n", MtxPath.c_str(), Full.N,
                Full.nnz());
  } else {
    Full = generateFromProfile(table4Profiles()[0], /*Scale=*/0.02);
    std::printf("Synthetic af_shell3 profile: n=%d nnz=%d\n", Full.N,
                Full.nnz());
  }
  CSCMatrix L = toCSC(lowerTriangle(Full));
  if (!L.isWellFormed() || !L.isLowerTriangular()) {
    std::fprintf(stderr, "input's lower triangle is not usable\n");
    return 1;
  }

  const char *TEnv = std::getenv("SDS_THREADS");
  int Threads = TEnv ? std::atoi(TEnv) : omp_get_max_threads();

  // -- Compile-time analysis (once per kernel, matrix-independent), or a
  // -- previously saved artifact (once per deployment, ever). --------------
  double T0 = now();
  kernels::Kernel K = kernels::forwardSolveCSC();
  artifact::CompiledKernel CK;
  if (!LoadPath.empty()) {
    support::Status St = artifact::load(LoadPath, CK);
    if (!St.ok()) {
      std::fprintf(stderr, "%s\n", St.str().c_str());
      return 1;
    }
    if (CK.KernelName != K.Name) {
      std::fprintf(stderr, "artifact '%s' is for kernel '%s', not '%s'\n",
                   LoadPath.c_str(), CK.KernelName.c_str(), K.Name.c_str());
      return 1;
    }
    double WarmT = now() - T0;
    std::printf("artifact load: %.4fs, %u runtime check(s) "
                "(recorded cold analysis %.2fs",
                WarmT, CK.count(deps::DepStatus::Runtime),
                CK.analysisSeconds());
    if (WarmT > 0 && CK.analysisSeconds() > 0)
      std::printf(", %.0fx faster", CK.analysisSeconds() / WarmT);
    std::printf(")\n");
  } else {
    deps::PipelineOptions POpts;
    POpts.AnalysisBudgetMs = BudgetMs;
    CK = artifact::compile(K, POpts);
    std::printf("analysis: %.2fs, %u runtime check(s)\n", now() - T0,
                CK.count(deps::DepStatus::Runtime));
  }
  // --schedule wins over the artifact's recorded spec; whatever the
  // choice, it is recorded into any emitted artifact.
  ScheduleConfig SC = CK.Schedule;
  if (Kind)
    SC.Kind = *Kind;
  SC.NumThreads = Threads;
  SC.MinWorkPerThread = 256;
  CK.Schedule = SC;
  if (!EmitPath.empty()) {
    if (support::Status St = artifact::save(CK, EmitPath); !St.ok()) {
      std::fprintf(stderr, "%s\n", St.str().c_str());
      return 1;
    }
    std::printf("artifact written to %s\n", EmitPath.c_str());
  }

  // -- Inspector (once per matrix), guarded by property validation. --------
  codegen::UFEnvironment Env = driver::bindCSC(L);
  if (Validate) {
    guard::ValidationReport VR = guard::validateProperties(CK.Properties, Env);
    std::printf("validation (%.3f ms): %s\n%s", VR.Seconds * 1e3,
                VR.summary().c_str(), VR.str().c_str());
  }
  T0 = now();
  guard::GuardedOptions GOpts;
  GOpts.Mode = Mode;
  guard::GuardedResult G = guard::runGuarded(CK, Env, L.N, GOpts);
  if (Mode != guard::GuardMode::Off)
    std::printf("%s\n", G.summary().c_str());
  const driver::InspectionResult &Insp = G.Inspection;
  std::vector<double> Cost(static_cast<size_t>(L.N));
  for (int J = 0; J < L.N; ++J)
    Cost[J] = L.ColPtr[J + 1] - L.ColPtr[J];
  CompiledSchedule S = buildSchedule(Insp.Graph, SC, Cost);
  if (!certifySchedule(Insp.Graph, S)) {
    std::fprintf(stderr, "schedule failed certification\n");
    return 1;
  }
  double InspT = now() - T0;
  CompiledScheduleStats SS = describeSchedule(S);
  std::printf("inspector: %.4fs (%llu edges, %d threads)\n", InspT,
              static_cast<unsigned long long>(Insp.Graph.numEdges()),
              Threads);
  std::printf("schedule [%s]: %d waves / %llu chunks, critical work %llu, "
              "parallelism %.2f%s\n",
              scheduleKindName(SC.Kind), SS.Base.NumWaves,
              static_cast<unsigned long long>(SS.NumChunks),
              static_cast<unsigned long long>(SS.Base.CriticalWork),
              SS.Base.achievedParallelism(),
              SS.P2P ? " (barrier-free P2P)" : "");
  if (SC.Kind == ScheduleKind::Vector)
    std::printf("vector runs: %llu runs cover %llu nodes (%.1f%%)\n",
                static_cast<unsigned long long>(SS.VectorRuns),
                static_cast<unsigned long long>(SS.VectorNodes),
                100.0 * SS.vectorCoverage());

  // -- Executor (hundreds of times in a real solver). ----------------------
  std::vector<double> B(static_cast<size_t>(L.N), 1.0), XS, XP;
  double SerialT = 1e9, ExecT = 1e9;
  for (int Rep = 0; Rep < 5; ++Rep) {
    T0 = now();
    forwardSolveCSCSerial(L, B, XS);
    SerialT = std::min(SerialT, now() - T0);
    T0 = now();
    forwardSolveCSCScheduled(L, B, XP, S);
    ExecT = std::min(ExecT, now() - T0);
  }
  double Diff = 0;
  for (size_t I = 0; I < XS.size(); ++I)
    Diff = std::max(Diff, std::abs(XS[I] - XP[I]));

  std::printf("serial solve:    %.4fs\n", SerialT);
  std::printf("wavefront solve: %.4fs  (speedup %.2fx, max |diff| %.2e)\n",
              ExecT, SerialT / ExecT, Diff);
  if (SerialT > ExecT)
    std::printf("break-even after %.1f executor runs\n",
                (InspT + ExecT) / (SerialT - ExecT));
  else
    std::printf("no parallel gain on this machine/thread count; the "
                "inspector costs %.1f serial solves\n",
                InspT / SerialT);
  if (Metrics) {
    if (!obs::writeMetrics(MetricsPath)) {
      std::fprintf(stderr, "cannot write metrics to '%s'\n",
                   MetricsPath.c_str());
      return 1;
    }
    if (MetricsPath != "-")
      std::printf("metrics written to %s\n", MetricsPath.c_str());
  }
  return Diff < 1e-9 ? 0 : 1;
}
