//===- quickstart.cpp - Figure 1 to Figure 2 in one page -------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The paper's running example end to end:
//   1. take the forward-solve CSR kernel (Figure 1),
//   2. analyze its dependences with the index-array properties,
//   3. print the one surviving runtime check and its generated inspector,
//   4. run that inspector on Figure 1's 4x4 matrix,
//   5. recover Figure 2's dependence graph and waves,
//   6. solve the system in parallel and check it.
//
//===----------------------------------------------------------------------===//

#include "sds/driver/Driver.h"

#include <cstdio>

using namespace sds;
using namespace sds::rt;

int main() {
  // -- 1. The kernel (Figure 1) and its analysis (Figure 3 pipeline). ----
  kernels::Kernel K = kernels::forwardSolveCSR();
  std::printf("Kernel under analysis:\n%s\n", K.str().c_str());

  deps::PipelineResult Analysis = deps::analyzeKernel(K);
  std::printf("%s\n", Analysis.summary().c_str());

  // -- 2. The generated inspector for the surviving dependence. ----------
  for (const deps::AnalyzedDependence &D : Analysis.Deps)
    if (D.Status == deps::DepStatus::Runtime)
      std::printf("%s\n", D.Plan.emitC("inspect_forward_solve").c_str());

  // -- 3. Figure 1's matrix. ---------------------------------------------
  CSRMatrix A;
  A.N = 4;
  A.RowPtr = {0, 1, 2, 4, 7};
  A.Col = {0, 1, 0, 2, 0, 2, 3};
  A.Val = {2, 2, -1, 2, -1, -1, 2}; // a..g, made diagonally dominant

  // -- 4. Inspect: build the dependence graph of Figure 2. ----------------
  codegen::UFEnvironment Env = driver::bindCSR(A);
  driver::InspectionResult Insp =
      driver::runInspectors(Analysis, Env, A.N);
  std::printf("Dependence graph (Figure 2):\n");
  for (int U = 0; U < Insp.Graph.numNodes(); ++U)
    for (int V : Insp.Graph.successors(U))
      std::printf("  %d -> %d\n", U, V);

  // -- 5. Waves. -----------------------------------------------------------
  LevelSets LS = computeLevelSets(Insp.Graph);
  for (int L = 0; L < LS.numLevels(); ++L) {
    std::printf("Wave %d: {", L + 1);
    for (size_t I = 0; I < LS.Levels[L].size(); ++I)
      std::printf("%s%d", I ? ", " : " ", LS.Levels[L][I]);
    std::printf(" }\n");
  }

  // -- 6. Parallel solve, checked against serial. -------------------------
  std::vector<double> B = {2, 4, 1, 3};
  std::vector<double> XSerial, XParallel;
  forwardSolveCSRSerial(A, B, XSerial);
  WavefrontSchedule S = scheduleLevelSets(Insp.Graph, 2);
  forwardSolveCSRWavefront(A, B, XParallel, S);

  std::printf("\nSolution (serial vs wavefront):\n");
  bool OK = true;
  for (int I = 0; I < A.N; ++I) {
    std::printf("  x[%d] = %-10g %-10g\n", I, XSerial[I], XParallel[I]);
    OK &= XSerial[I] == XParallel[I];
  }
  std::printf("%s\n", OK ? "MATCH" : "MISMATCH");
  return OK ? 0 : 1;
}
