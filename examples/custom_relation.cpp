//===- custom_relation.cpp - The library as an analysis API ----------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// Using the public API directly on hand-written relations — the §4.1
// worked example: discovering the equality that turns an O(n^2) inspector
// into O(n), plus an unsatisfiability proof and a subsumption check.
//
//===----------------------------------------------------------------------===//

#include "sds/codegen/Inspector.h"
#include "sds/ir/Parser.h"
#include "sds/ir/Simplify.h"
#include "sds/ir/SubsetDetection.h"

#include <cstdio>

using namespace sds;
using namespace sds::ir;

int main() {
  // -- §4.1: equality discovery. -------------------------------------------
  auto Parsed = parseRelation(
      "{ [i] -> [i'] : i < i' && f(i') <= f(g(i)) && g(i) <= i' && "
      "0 <= i < n && 0 <= i' < n }");
  if (!Parsed.Ok) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  SparseRelation R = Parsed.Rel;
  std::printf("relation:   %s\n", R.str().c_str());

  codegen::InspectorPlan Before = codegen::buildInspectorPlan(R);
  std::printf("inspector before simplification: O(%s)\n",
              Before.Cost.str().c_str());

  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "f");
  EqualityDiscoveryResult Eq = discoverEqualities(R, PS);
  std::printf("discovered %u new equalit%s:\n", Eq.NewEqualities,
              Eq.NewEqualities == 1 ? "y" : "ies");
  for (const std::string &S : Eq.EqualityStrings)
    std::printf("  %s\n", S.c_str());

  codegen::InspectorPlan After = codegen::buildInspectorPlan(R);
  std::printf("inspector after simplification:  O(%s)\n\n",
              After.Cost.str().c_str());
  std::printf("%s\n", After.emitC("inspect_simplified").c_str());

  // -- §2.2: unsatisfiability. ---------------------------------------------
  auto Unsat = parseRelation(
      "{ [i] -> [i'] : exists(m, k') : i < i' && m = k' && "
      "0 <= i < n && 0 <= i' < n && rowptr(i - 1) <= m < rowptr(i) && "
      "rowptr(i') <= k' < rowptr(i' + 1) }");
  PropertySet RowPtrPS;
  RowPtrPS.add(PropertyKind::StrictMonotonicIncreasing, "rowptr");
  std::printf("the §2.2 relation is %s under strict monotonicity\n",
              provenUnsat(Unsat.Rel, RowPtrPS) ? "UNSAT (no runtime check)"
                                               : "possibly satisfiable");

  // -- §5: subsumption. ------------------------------------------------------
  auto Big = parseRelation("{ [i, k] -> [i', m'] : k = m' && i < i' && "
                           "col(i') <= m' < col(i' + 1) && 0 <= i < n }");
  auto Small = parseRelation("{ [i, k] -> [i', m'] : k = m' && i < i' && "
                             "col(i') <= m' < col(i' + 1) && 0 <= i < n && "
                             "i + 8 <= i' }");
  bool Covered = subsumes(Big.Rel, Small.Rel) == presburger::Ternary::True;
  std::printf("narrower test subsumed by the wider one: %s\n",
              Covered ? "yes (one inspector suffices)" : "no");

  return (Eq.NewEqualities >= 1 && After.Cost < Before.Cost && Covered)
             ? 0
             : 1;
}
