//===- analyze_kernel.cpp - Command-line analysis driver -------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The Figure-3 driver as a tool: pick one of the Table-2 kernels (or all),
// optionally overriding its index-array knowledge from a JSON file, and
// print the full analysis — dependences and their fates (with decision
// provenance), discovered equalities, inspector complexities, and generated
// inspector C code.
//
//   analyze_kernel                          # list kernels
//   analyze_kernel fs_csr                   # analyze forward solve CSR
//   analyze_kernel fs_csr props.json        # with user-supplied properties
//   analyze_kernel all                      # the whole suite (slow: IC0, ILU0)
//   analyze_kernel --trace out.json fs_csr  # + end-to-end traced run; dump
//                                           #   Chrome trace-event JSON
//   analyze_kernel --stats fs_csr           # + aggregate span/counter report
//   analyze_kernel --n 500 --trace t.json gs_csr   # bigger traced matrix
//   analyze_kernel --emit-artifact=fs.ck.json fs_csc   # compile once...
//   analyze_kernel --load-artifact=fs.ck.json fs_csc   # ...run many: skip
//                                           #   the Presburger pipeline and
//                                           #   print warm-vs-cold timing
//   analyze_kernel --explain=all fs_csr     # print the unsat core behind
//                                           #   each dependence's fate
//
// With --trace or --stats the tool also runs the full inspector-executor
// flow on a generated SPD-like matrix (inspectors -> dependence graph ->
// level-set schedule -> wavefront executor), so the trace covers every
// pipeline stage, each inspector, and the parallel wave execution. Load
// the --trace output in chrome://tracing or https://ui.perfetto.dev.
//
//===----------------------------------------------------------------------===//

#include "sds/artifact/Artifact.h"
#include "sds/driver/Driver.h"
#include "sds/engine/Engine.h"
#include "sds/guard/Guarded.h"
#include "sds/infer/Infer.h"
#include "sds/obs/Export.h"
#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"
#include "sds/support/JSON.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "sds/support/OMP.h"

using namespace sds;

namespace {

std::map<std::string, kernels::Kernel> kernelsByKey() {
  return {
      {"gs_csr", kernels::gaussSeidelCSR()},
      {"ilu0_csr", kernels::incompleteLU0CSR()},
      {"ic0_csc", kernels::incompleteCholeskyCSC()},
      {"fs_csc", kernels::forwardSolveCSC()},
      {"fs_csr", kernels::forwardSolveCSR()},
      {"spmv_csr", kernels::spmvCSR()},
      {"lchol_csc", kernels::leftCholeskyCSC()},
  };
}

/// Run the inspector-executor half on a generated matrix so the trace
/// contains inspector and wavefront-execution spans, not just the
/// compile-time pipeline. Which arrays get bound and which executor runs
/// depends on the kernel's storage format.
struct GuardFlags {
  guard::GuardMode Mode = guard::GuardMode::Off;
  bool Validate = false;
};

void runTraced(const std::string &Key, const kernels::Kernel &K,
               const artifact::CompiledKernel &CK, int N, int Threads,
               const rt::ScheduleConfig &SC, const GuardFlags &GF,
               engine::Engine *Eng) {
  rt::CSRMatrix A = rt::generateSPDLike({N, 6, 12, 21});

  codegen::UFEnvironment Env;
  rt::CSRMatrix Lower;
  rt::CSCMatrix L;
  rt::PruneSets Prune;
  if (Key == "gs_csr" || Key == "ilu0_csr") {
    Env = driver::bindCSR(A, A.diagonalPositions());
  } else if (Key == "fs_csr") {
    Lower = rt::lowerTriangle(A);
    Env = driver::bindCSR(Lower);
  } else if (Key == "fs_csc" || Key == "ic0_csc" || Key == "lchol_csc") {
    L = rt::toCSC(rt::lowerTriangle(A));
    if (Key == "lchol_csc") {
      Prune = rt::buildPruneSets(L);
      Env = driver::bindCSC(L, &Prune);
    } else {
      Env = driver::bindCSC(L);
    }
  } else {
    std::printf("(no runtime dependences for %s; nothing to inspect)\n",
                Key.c_str());
    return;
  }

  if (Eng) {
    // Exercise both matrix-tier paths (cold fill, then warm hit) so the
    // engine.plan.* latency histograms and matrix_warm/cold gauges in the
    // --metrics snapshot carry real samples for this matrix.
    (void)Eng->plan(K, Env, A.N);
    (void)Eng->plan(K, Env, A.N);
  }

  if (GF.Validate) {
    guard::ValidationReport VR =
        guard::validateProperties(CK.Properties, Env);
    std::printf("validation (%.3f ms): %s\n%s", VR.Seconds * 1e3,
                VR.summary().c_str(), VR.str().c_str());
  }

  guard::GuardedOptions GOpts;
  GOpts.Mode = GF.Mode;
  GOpts.Inspect.NumThreads = Threads;
  guard::GuardedResult G = guard::runGuarded(CK, Env, A.N, GOpts);
  if (GF.Mode != guard::GuardMode::Off)
    std::printf("%s\n", G.summary().c_str());
  const driver::InspectionResult &Insp = G.Inspection;
  std::printf("inspection: %u inspectors, %llu visits, %llu edges, %.3f ms\n",
              Insp.NumInspectors,
              static_cast<unsigned long long>(Insp.InspectorVisits),
              static_cast<unsigned long long>(Insp.Graph.numEdges()),
              Insp.Seconds * 1e3);

  rt::CompiledSchedule CS = rt::buildSchedule(Insp.Graph, SC);
  rt::CompiledScheduleStats SS = rt::describeSchedule(CS);
  std::printf("schedule [%s]: %d waves / %llu chunks over %llu nodes, "
              "critical work %llu, parallelism %.2f%s\n",
              rt::scheduleKindName(SC.Kind), SS.Base.NumWaves,
              static_cast<unsigned long long>(SS.NumChunks),
              static_cast<unsigned long long>(SS.Base.TotalNodes),
              static_cast<unsigned long long>(SS.Base.CriticalWork),
              SS.Base.achievedParallelism(),
              SS.P2P ? " (barrier-free P2P)" : "");
  if (!SS.Base.WaveSizes.empty()) {
    uint64_t MinWave = SS.Base.WaveSizes.front();
    for (uint64_t W : SS.Base.WaveSizes)
      MinWave = std::min(MinWave, W);
    std::printf("wave sizes: min %llu / max %llu",
                static_cast<unsigned long long>(MinWave),
                static_cast<unsigned long long>(SS.Base.MaxWaveSize));
    std::printf(", first [");
    for (size_t W = 0; W < SS.Base.WaveSizes.size() && W < 8; ++W)
      std::printf("%s%llu", W ? " " : "",
                  static_cast<unsigned long long>(SS.Base.WaveSizes[W]));
    std::printf("%s]\n", SS.Base.WaveSizes.size() > 8 ? " ..." : "");
  }
  if (SC.Kind == rt::ScheduleKind::Vector)
    std::printf("vector runs: %llu runs cover %llu nodes (%.1f%%)\n",
                static_cast<unsigned long long>(SS.VectorRuns),
                static_cast<unsigned long long>(SS.VectorNodes),
                100.0 * SS.vectorCoverage());
  if (!rt::certifySchedule(Insp.Graph, CS)) {
    std::printf("schedule FAILED certification\n");
    return;
  }

  std::vector<double> B(static_cast<size_t>(A.N), 1.0);
  std::vector<double> X(static_cast<size_t>(A.N), 0.0);
  if (Key == "fs_csr")
    rt::forwardSolveCSRScheduled(Lower, B, X, CS);
  else if (Key == "fs_csc")
    rt::forwardSolveCSCScheduled(L, B, X, CS);
  else if (Key == "gs_csr")
    rt::gaussSeidelCSRScheduled(A, B, X, CS);
  else if (Key == "ic0_csc")
    rt::incompleteCholeskyCSCScheduled(L, CS);
  else if (Key == "lchol_csc")
    rt::leftCholeskyCSCScheduled(L, CS);
  else
    std::printf("(no wavefront executor for %s; schedule only)\n",
                Key.c_str());
}

/// Compile-once/run-many paths through one kernel. Empty strings mean
/// "analyze fresh"; LoadPath skips the Presburger pipeline entirely and
/// EmitPath persists the result for a later --load-artifact run.
struct ArtifactFlags {
  std::string EmitPath;
  std::string LoadPath;
};

/// --infer: bind the kernel's matrix shape so the profiler has concrete
/// index arrays to speculate from (same generator/shape as the traced
/// run, so the analysis and the execution see the same environment).
std::optional<codegen::UFEnvironment> bindForInfer(const std::string &Key,
                                                   int N) {
  rt::CSRMatrix A = rt::generateSPDLike({N, 6, 12, 21});
  if (Key == "gs_csr" || Key == "ilu0_csr")
    return driver::bindCSR(A, A.diagonalPositions());
  if (Key == "spmv_csr")
    return driver::bindCSR(A);
  if (Key == "fs_csr")
    return driver::bindCSR(rt::lowerTriangle(A));
  if (Key == "fs_csc" || Key == "ic0_csc")
    return driver::bindCSC(rt::toCSC(rt::lowerTriangle(A)));
  if (Key == "lchol_csc") {
    // Prune arrays live in PruneSets, whose storage must outlive the
    // environment; bindCSC copies spans, so a local is fine.
    rt::CSCMatrix L = rt::toCSC(rt::lowerTriangle(A));
    rt::PruneSets Prune = rt::buildPruneSets(L);
    return driver::bindCSC(L, &Prune);
  }
  return std::nullopt;
}

/// --explain=<dep>: print the unsat core justifying each matching
/// dependence's fate. <dep> matches as a substring of the dependence
/// label; "all" matches every dependence. Works on fresh analyses and on
/// loaded artifacts alike (cores ride inside the artifact), so the same
/// proof can be audited on the machine that compiled it and on the
/// machine that runs it.
int explainDeps(const artifact::CompiledKernel &CK, const std::string &Pat) {
  unsigned Matched = 0;
  for (const deps::AnalyzedDependence &D : CK.Deps) {
    if (Pat != "all" && D.Dep.label().find(Pat) == std::string::npos)
      continue;
    ++Matched;
    std::printf("--- explain %s ---\n", D.Dep.label().c_str());
    std::printf("status:     %s\n", deps::depStatusName(D.Status).c_str());
    std::printf("provenance: %s\n", D.Prov.str().c_str());
    if (!D.HasCore) {
      std::printf("core:       (none recorded — pre-core artifact; the "
                  "guard falls back to full property validation)\n");
      continue;
    }
    if (D.Core.Assertions.empty()) {
      std::printf("core:       empty — this verdict depends on no "
                  "index-array assertion%s\n",
                  D.Status == deps::DepStatus::Runtime
                      ? " (the inspector enumerates the original relation)"
                      : "");
      continue;
    }
    std::printf("core:       %zu assertion(s)%s%s\n",
                D.Core.Assertions.size(),
                D.Core.FromFarkas ? ", from Farkas certificate" : ", coarse",
                D.Core.Minimized ? ", minimized" : "");
    for (const std::string &A : D.Core.Assertions) {
      // Trust tier next to each cited assertion: Declared came from the
      // kernel's annotations, Inferred from the profiler (a remedy the
      // guard validates on every run).
      std::string Base = A.substr(0, A.find(" ["));
      std::string Tag;
      if (std::optional<ir::PropertyTier> T =
              CK.Properties.tierForLabelBase(Base))
        Tag = " [" + ir::propertyTierName(*T) + "]";
      std::printf("  * %s%s\n", A.c_str(), Tag.c_str());
    }
    if (D.Remediable)
      std::printf("remedy:     cites %zu inferred assertion(s); each is "
                  "validated at bind time and a failure revokes exactly "
                  "this dependence\n",
                  D.InferredCited.size());
  }
  if (!Matched) {
    std::fprintf(stderr, "--explain: no dependence matches '%s'; have:\n",
                 Pat.c_str());
    for (const deps::AnalyzedDependence &D : CK.Deps)
      std::fprintf(stderr, "  %s\n", D.Dep.label().c_str());
    return 1;
  }
  return 0;
}

int analyzeOne(const std::string &Key, kernels::Kernel K, bool Traced,
               int N, int Threads, double BudgetMs,
               std::optional<rt::ScheduleKind> ScheduleKind,
               const GuardFlags &GF, const ArtifactFlags &AF,
               const std::string &Explain, bool Infer) {
  std::printf("=== %s ===\n%s\n", K.Name.c_str(), K.str().c_str());
  ir::PropertySet InferredProps;
  if (Infer) {
    if (!AF.LoadPath.empty()) {
      std::fprintf(stderr, "--infer analyzes fresh; it cannot be combined "
                           "with --load-artifact\n");
      return 1;
    }
    std::optional<codegen::UFEnvironment> Env = bindForInfer(Key, N);
    if (!Env) {
      std::fprintf(stderr, "--infer: no matrix binding for kernel '%s'\n",
                   Key.c_str());
      return 1;
    }
    infer::InferenceResult Inf = infer::inferProperties(*Env);
    std::printf("inference: %s\n", Inf.summary().c_str());
    // The unannotated-matrix scenario: drop every declaration and let the
    // analysis lean only on what the profiler confirmed from the data.
    K.Properties = ir::PropertySet{};
    InferredProps = std::move(Inf.Confirmed);
  }
  artifact::CompiledKernel CK;
  std::optional<engine::Engine> Eng;
  if (!AF.LoadPath.empty()) {
    auto T0 = std::chrono::steady_clock::now();
    support::Status S = artifact::load(AF.LoadPath, CK);
    double WarmS = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
    if (!S.ok()) {
      std::fprintf(stderr, "%s\n", S.str().c_str());
      return 1;
    }
    if (CK.KernelName != K.Name) {
      std::fprintf(stderr,
                   "artifact '%s' was compiled for kernel '%s', not '%s'\n",
                   AF.LoadPath.c_str(), CK.KernelName.c_str(), K.Name.c_str());
      return 1;
    }
    std::printf("%s\n", CK.summary().c_str());
    double ColdS = CK.analysisSeconds();
    std::printf("artifact load: %.3f ms (recorded cold analysis %.3f ms",
                WarmS * 1e3, ColdS * 1e3);
    if (WarmS > 0 && ColdS > 0)
      std::printf(", %.0fx faster", ColdS / WarmS);
    std::printf(")\n");
  } else if (obs::metricsEnabled()) {
    // --metrics routes the compile through an Engine so the snapshot's
    // engine.kernel.* histograms and warm/cold gauges carry samples:
    // first call fills cold, second hits the kernel tier warm.
    engine::EngineOptions EOpts;
    EOpts.Analysis.NumThreads = Threads;
    EOpts.Analysis.AnalysisBudgetMs = BudgetMs;
    EOpts.Analysis.Speculate = Infer;
    EOpts.Analysis.InferredProps = InferredProps;
    EOpts.Inspect.NumThreads = Threads;
    if (ScheduleKind)
      EOpts.Schedule.Kind = *ScheduleKind;
    EOpts.Schedule.NumThreads = Threads;
    Eng.emplace(std::move(EOpts));
    auto T0 = std::chrono::steady_clock::now();
    std::shared_ptr<const artifact::CompiledKernel> Shared =
        Eng->compiled(K);
    double ColdS = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
    (void)Eng->compiled(K); // warm hit
    CK = *Shared;
    std::printf("%s\n", CK.summary().c_str());
    std::printf("cold analysis (engine): %.3f ms\n", ColdS * 1e3);
  } else {
    deps::PipelineOptions POpts;
    POpts.NumThreads = Threads; // same flag drives analysis and inspectors
    POpts.AnalysisBudgetMs = BudgetMs;
    POpts.Speculate = Infer;
    POpts.InferredProps = InferredProps;
    auto T0 = std::chrono::steady_clock::now();
    deps::PipelineResult R = deps::analyzeKernel(K, POpts);
    double ColdS = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
    std::printf("%s\n", R.summary().c_str());
    std::printf("cold analysis: %.3f ms\n", ColdS * 1e3);
    CK = artifact::fromAnalysis(std::move(R), POpts);
  }
  for (const deps::AnalyzedDependence &D : CK.Deps) {
    if (D.Status != deps::DepStatus::Runtime)
      continue;
    std::printf("--- inspector for %s ---\n%s\n", D.Dep.label().c_str(),
                D.Plan.emitC("inspect").c_str());
  }
  if (!Explain.empty())
    if (int RC = explainDeps(CK, Explain))
      return RC;
  // The schedule spec rides inside the artifact: --schedule wins, a
  // loaded artifact's recorded spec is next, the default config last.
  rt::ScheduleConfig SC = CK.Schedule;
  if (ScheduleKind)
    SC.Kind = *ScheduleKind;
  SC.NumThreads = Threads;
  CK.Schedule = SC;
  if (!AF.EmitPath.empty()) {
    if (support::Status S = artifact::save(CK, AF.EmitPath); !S.ok()) {
      std::fprintf(stderr, "%s\n", S.str().c_str());
      return 1;
    }
    std::printf("artifact written to %s (reload with --load-artifact=%s)\n",
                AF.EmitPath.c_str(), AF.EmitPath.c_str());
  }
  if (Traced)
    runTraced(Key, K, CK, N, Threads, SC, GF, Eng ? &*Eng : nullptr);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string TracePath;
  std::string MetricsPath;
  bool Metrics = false;
  bool Stats = false;
  int N = 200;
  int Threads = omp_get_max_threads();
  double BudgetMs = 0;
  std::optional<rt::ScheduleKind> ScheduleKind;
  GuardFlags GF;
  ArtifactFlags AF;
  std::string Explain;
  bool Infer = false;
  std::vector<std::string> Positional;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--trace" && I + 1 < argc) {
      TracePath = argv[++I];
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--metrics") {
      Metrics = true;
      MetricsPath = "-";
    } else if (Arg.rfind("--metrics=", 0) == 0) {
      Metrics = true;
      MetricsPath = Arg.substr(10);
    } else if (Arg == "--validate") {
      GF.Validate = true;
    } else if (Arg == "--infer") {
      Infer = true;
    } else if (Arg.rfind("--guard=", 0) == 0) {
      auto M = guard::parseGuardMode(Arg.substr(8));
      if (!M) {
        std::fprintf(stderr, "--guard expects off|warn|fallback\n");
        return 1;
      }
      GF.Mode = *M;
    } else if (Arg.rfind("--emit-artifact=", 0) == 0) {
      AF.EmitPath = Arg.substr(16);
    } else if (Arg.rfind("--load-artifact=", 0) == 0) {
      AF.LoadPath = Arg.substr(16);
    } else if (Arg.rfind("--explain=", 0) == 0) {
      Explain = Arg.substr(10);
      if (Explain.empty()) {
        std::fprintf(stderr,
                     "--explain expects a dependence-label substring or "
                     "'all'\n");
        return 1;
      }
    } else if (Arg.rfind("--schedule=", 0) == 0) {
      ScheduleKind = rt::parseScheduleKind(Arg.substr(11));
      if (!ScheduleKind) {
        std::fprintf(stderr,
                     "--schedule expects levels|lbc|coalesced|p2p|vector\n");
        return 1;
      }
    } else if (Arg == "--budget-ms" && I + 1 < argc) {
      BudgetMs = std::atof(argv[++I]);
      if (BudgetMs < 0) {
        std::fprintf(stderr, "--budget-ms must be >= 0\n");
        return 1;
      }
    } else if (Arg == "--n" && I + 1 < argc) {
      N = std::atoi(argv[++I]);
      if (N < 4) {
        std::fprintf(stderr, "--n must be >= 4\n");
        return 1;
      }
    } else if (Arg == "--threads" && I + 1 < argc) {
      Threads = std::atoi(argv[++I]);
      if (Threads < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 1;
      }
    } else {
      Positional.push_back(Arg);
    }
  }

  auto Kernels = kernelsByKey();
  if (Positional.empty()) {
    std::printf(
        "usage: %s [--trace out.json] [--stats] [--metrics[=PATH]] "
        "[--n N] [--threads N] "
        "[--schedule=levels|lbc|coalesced|p2p|vector] "
        "[--validate] [--guard=off|warn|fallback] [--budget-ms MS] "
        "[--emit-artifact=PATH] [--load-artifact=PATH] "
        "[--explain=<dep>|all] [--infer] "
        "<kernel|all> [properties.json]\n"
        "--explain prints the unsat core justifying each matching "
        "dependence's fate\n(substring match on the dependence label; "
        "'all' prints every core, each cited assertion\ntagged with its "
        "trust tier).\n"
        "--infer drops every declared property and speculates from the "
        "bound index arrays\ninstead: the profiler proposes properties "
        "(tier Inferred), the analysis cites them\nin its cores, and the "
        "guard validates each cited remedy at bind time.\n"
        "--metrics writes the metrics-registry snapshot (counters, gauges, "
        "latency histograms,\nper-stage seconds, flight recorder) as JSON; "
        "a PATH ending in .prom selects Prometheus\ntext exposition, '-' "
        "or no PATH prints JSON to stdout.\nkernels:\n",
        argv[0]);
    for (const auto &[Key, K] : Kernels)
      std::printf("  %-10s %s\n", Key.c_str(), K.Name.c_str());
    return 0;
  }

  // --validate and --guard need bound arrays, so they imply the runtime
  // (traced) half; guard decisions then show up in --stats counters.
  // --metrics implies it too: the wave/inspector/engine histograms only
  // fill when the inspector-executor half actually runs.
  bool Traced = !TracePath.empty() || Stats || Metrics || GF.Validate ||
                GF.Mode != guard::GuardMode::Off;
  if (!TracePath.empty() || Stats)
    obs::setEnabled(true);
  if (Metrics)
    obs::setMetricsEnabled(true);

  std::string Which = Positional[0];
  if (Which == "all") {
    if (!AF.EmitPath.empty() || !AF.LoadPath.empty()) {
      std::fprintf(stderr,
                   "--emit-artifact/--load-artifact need a single kernel, "
                   "not 'all'\n");
      return 1;
    }
    for (auto &[Key, K] : Kernels)
      if (int RC = analyzeOne(Key, K, Traced, N, Threads, BudgetMs,
                              ScheduleKind, GF, {}, Explain, Infer))
        return RC;
  } else {
    auto It = Kernels.find(Which);
    if (It == Kernels.end()) {
      std::fprintf(stderr, "unknown kernel '%s'\n", Which.c_str());
      return 1;
    }
    kernels::Kernel K = It->second;

    if (Positional.size() > 1) {
      // Replace the kernel's built-in knowledge with the user's JSON file —
      // exactly the input path of the paper's pipeline (Figure 3).
      const std::string &Path = Positional[1];
      std::ifstream In(Path);
      if (!In) {
        std::fprintf(stderr, "cannot open '%s'\n", Path.c_str());
        return 1;
      }
      std::stringstream SS;
      SS << In.rdbuf();
      json::ParseResult J = json::parse(SS.str());
      if (!J.Ok) {
        std::fprintf(stderr, "%s:%u:%u: %s\n", Path.c_str(), J.Line, J.Col,
                     J.Error.c_str());
        return 1;
      }
      std::string Error;
      auto PS = ir::PropertySet::fromJSON(J.Val, Error);
      if (!PS) {
        std::fprintf(stderr, "%s: %s\n", Path.c_str(), Error.c_str());
        return 1;
      }
      K.Properties = *PS;
      std::printf("(using index-array properties from %s)\n", Path.c_str());
    }

    if (int RC = analyzeOne(Which, K, Traced, N, Threads, BudgetMs,
                            ScheduleKind, GF, AF, Explain, Infer))
      return RC;
  }

  if (Stats)
    std::printf("%s\n", obs::statsJSON().c_str());
  if (Metrics) {
    if (!obs::writeMetrics(MetricsPath)) {
      std::fprintf(stderr, "cannot write metrics to '%s'\n",
                   MetricsPath.c_str());
      return 1;
    }
    if (MetricsPath != "-")
      std::printf("metrics written to %s\n", MetricsPath.c_str());
  }
  if (!TracePath.empty()) {
    if (!obs::writeChromeTrace(TracePath)) {
      std::fprintf(stderr, "cannot write trace to '%s'\n", TracePath.c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu events)\n", TracePath.c_str(),
                obs::snapshotEvents().size());
  }
  return 0;
}
