//===- analyze_kernel.cpp - Command-line analysis driver -------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The Figure-3 driver as a tool: pick one of the Table-2 kernels (or all),
// optionally overriding its index-array knowledge from a JSON file, and
// print the full analysis — dependences and their fates, discovered
// equalities, inspector complexities, and generated inspector C code.
//
//   analyze_kernel                    # list kernels
//   analyze_kernel fs_csr             # analyze forward solve CSR
//   analyze_kernel fs_csr props.json  # with user-supplied properties
//   analyze_kernel all                # the whole suite (slow: IC0, ILU0)
//
//===----------------------------------------------------------------------===//

#include "sds/deps/Pipeline.h"
#include "sds/support/JSON.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

using namespace sds;

namespace {

std::map<std::string, kernels::Kernel> kernelsByKey() {
  return {
      {"gs_csr", kernels::gaussSeidelCSR()},
      {"ilu0_csr", kernels::incompleteLU0CSR()},
      {"ic0_csc", kernels::incompleteCholeskyCSC()},
      {"fs_csc", kernels::forwardSolveCSC()},
      {"fs_csr", kernels::forwardSolveCSR()},
      {"spmv_csr", kernels::spmvCSR()},
      {"lchol_csc", kernels::leftCholeskyCSC()},
  };
}

void analyzeOne(kernels::Kernel K) {
  std::printf("=== %s ===\n%s\n", K.Name.c_str(), K.str().c_str());
  deps::PipelineResult R = deps::analyzeKernel(K);
  std::printf("%s\n", R.summary().c_str());
  for (const deps::AnalyzedDependence &D : R.Deps) {
    if (D.Status != deps::DepStatus::Runtime)
      continue;
    std::printf("--- inspector for %s ---\n%s\n", D.Dep.label().c_str(),
                D.Plan.emitC("inspect").c_str());
  }
}

} // namespace

int main(int argc, char **argv) {
  auto Kernels = kernelsByKey();
  if (argc < 2) {
    std::printf("usage: %s <kernel|all> [properties.json]\nkernels:\n",
                argv[0]);
    for (const auto &[Key, K] : Kernels)
      std::printf("  %-10s %s\n", Key.c_str(), K.Name.c_str());
    return 0;
  }

  std::string Which = argv[1];
  if (Which == "all") {
    for (auto &[Key, K] : Kernels)
      analyzeOne(K);
    return 0;
  }
  auto It = Kernels.find(Which);
  if (It == Kernels.end()) {
    std::fprintf(stderr, "unknown kernel '%s'\n", Which.c_str());
    return 1;
  }
  kernels::Kernel K = It->second;

  if (argc > 2) {
    // Replace the kernel's built-in knowledge with the user's JSON file —
    // exactly the input path of the paper's pipeline (Figure 3).
    std::ifstream In(argv[2]);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[2]);
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    json::ParseResult J = json::parse(SS.str());
    if (!J.Ok) {
      std::fprintf(stderr, "%s:%u:%u: %s\n", argv[2], J.Line, J.Col,
                   J.Error.c_str());
      return 1;
    }
    std::string Error;
    auto PS = ir::PropertySet::fromJSON(J.Val, Error);
    if (!PS) {
      std::fprintf(stderr, "%s: %s\n", argv[2], Error.c_str());
      return 1;
    }
    K.Properties = *PS;
    std::printf("(using index-array properties from %s)\n", argv[2]);
  }

  analyzeOne(K);
  return 0;
}
