//===- bench_gate.cpp - Compare a bench summary against a baseline --------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
// The regression half of the continuous-bench loop: bench/bench_report
// produces BENCH_summary.json; this tool compares its "benches" section
// against a checked-in baseline and exits nonzero when a gated metric
// regressed beyond tolerance.
//
//   bench_gate [--warn-only] baseline.json BENCH_summary.json
//
// Baseline format (bench/baseline.json):
//
//   { "schema_version": N, "kind": "bench_baseline",
//     "default_tolerance_pct": 10,
//     "metrics": {
//       "<bench>.<field>": { "value": V,
//                            "direction": "min" | "max" | "eq",
//                            "tolerance_pct": T }   // optional, else default
//     } }
//
// direction=min: actual must be >= value * (1 - tol).  (throughput-like)
// direction=max: actual must be <= value * (1 + tol).  (cost-like)
// direction=eq:  |actual - value| <= |value| * tol.    (exactness probes;
//                tolerance_pct 0 demands bit-equality, e.g. tN_identical)
//
// The committed baseline deliberately gates only machine-independent
// metrics (visit/edge counts, refutation tallies, cache hit rates,
// determinism bits, amortization ratios) — wall-clock seconds vary too
// much across CI machines to gate hard. --warn-only reports FAILs but
// exits 0, for first landings and baseline refreshes.
//
//===----------------------------------------------------------------------===//

#include "sds/support/JSON.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using sds::json::Value;

namespace {

bool parseFile(const std::string &Path, Value &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench_gate: cannot open %s\n", Path.c_str());
    return false;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  sds::json::ParseResult P = sds::json::parse(SS.str());
  if (!P.Ok) {
    std::fprintf(stderr, "bench_gate: %s:%u:%u: %s\n", Path.c_str(), P.Line,
                 P.Col, P.Error.c_str());
    return false;
  }
  Out = std::move(P.Val);
  return true;
}

/// Resolve "<bench>.<field>" inside the summary's "benches" object.
/// Bench names never contain dots, so the first dot is the separator.
const Value *lookup(const Value &Summary, const std::string &Key) {
  const Value *Benches = Summary.get("benches");
  if (!Benches)
    return nullptr;
  size_t Dot = Key.find('.');
  if (Dot == std::string::npos)
    return nullptr;
  const Value *Bench = Benches->get(Key.substr(0, Dot));
  return Bench ? Bench->get(Key.substr(Dot + 1)) : nullptr;
}

} // namespace

int main(int argc, char **argv) {
  bool WarnOnly = false;
  std::string BaselinePath, SummaryPath;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--warn-only")
      WarnOnly = true;
    else if (BaselinePath.empty())
      BaselinePath = Arg;
    else if (SummaryPath.empty())
      SummaryPath = Arg;
    else
      BaselinePath.clear(); // force the usage message
  }
  if (BaselinePath.empty() || SummaryPath.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--warn-only] baseline.json summary.json\n",
                 argv[0]);
    return 2;
  }

  Value Baseline, Summary;
  if (!parseFile(BaselinePath, Baseline) || !parseFile(SummaryPath, Summary))
    return 2;
  const Value *Kind = Baseline.get("kind");
  if (!Kind || !Kind->isString() || Kind->asString() != "bench_baseline") {
    std::fprintf(stderr, "bench_gate: %s is not a bench_baseline document\n",
                 BaselinePath.c_str());
    return 2;
  }
  double DefaultTol = 10;
  if (const Value *T = Baseline.get("default_tolerance_pct"))
    DefaultTol = T->asDouble();
  const Value *Gated = Baseline.get("metrics");
  if (!Gated || !Gated->isObject()) {
    std::fprintf(stderr, "bench_gate: %s has no \"metrics\" object\n",
                 BaselinePath.c_str());
    return 2;
  }

  int Checked = 0, Failed = 0;
  for (const auto &[Key, Spec] : Gated->asObject()) {
    ++Checked;
    const Value *VV = Spec.get("value");
    const Value *DV = Spec.get("direction");
    if (!VV || !VV->isNumber() || !DV || !DV->isString()) {
      std::printf("FAIL %-44s malformed baseline entry\n", Key.c_str());
      ++Failed;
      continue;
    }
    double Want = VV->asDouble();
    std::string Dir = DV->asString();
    double Tol = DefaultTol;
    if (const Value *T = Spec.get("tolerance_pct"))
      Tol = T->asDouble();

    const Value *AV = lookup(Summary, Key);
    if (!AV || !AV->isNumber()) {
      std::printf("FAIL %-44s missing from summary\n", Key.c_str());
      ++Failed;
      continue;
    }
    double Got = AV->asDouble();

    bool Ok;
    if (Dir == "min")
      Ok = Got >= Want * (1.0 - Tol / 100.0);
    else if (Dir == "max")
      Ok = Got <= Want * (1.0 + Tol / 100.0);
    else if (Dir == "eq")
      Ok = std::abs(Got - Want) <= std::abs(Want) * (Tol / 100.0);
    else {
      std::printf("FAIL %-44s unknown direction \"%s\"\n", Key.c_str(),
                  Dir.c_str());
      ++Failed;
      continue;
    }
    std::printf("%s %-44s %s %g (baseline %g, tol %g%%)\n",
                Ok ? "ok  " : "FAIL", Key.c_str(), Dir.c_str(), Got, Want,
                Tol);
    if (!Ok)
      ++Failed;
  }

  std::printf("bench_gate: %d/%d gated metrics within tolerance%s\n",
              Checked - Failed, Checked,
              Failed && WarnOnly ? " (warn-only: not failing the build)" : "");
  return Failed && !WarnOnly ? 1 : 0;
}
