//===- Parser.cpp - Textual syntax for sparse relations ------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Parser.h"

#include <cctype>
#include <charconv>

namespace sds {
namespace ir {

namespace {

class RelParser {
public:
  explicit RelParser(std::string_view Text) : Text(Text) {}

  bool parseFull(SparseRelation &Out) {
    skip();
    if (!expect('{'))
      return false;
    if (!parseTuple(Out.InVars))
      return false;
    skip();
    if (peekStr("->")) {
      Pos += 2;
      if (!parseTuple(Out.OutVars))
        return false;
    }
    if (!expect(':'))
      return false;
    skip();
    if (peekIdent("exists")) {
      consumeIdent();
      skip();
      bool Paren = peek() == '(';
      if (Paren)
        ++Pos;
      while (true) {
        skip();
        std::string Id = consumeIdent();
        if (Id.empty())
          return fail("expected identifier in exists list");
        Out.ExistVars.push_back(Id);
        skip();
        if (peek() == ',') {
          ++Pos;
          continue;
        }
        break;
      }
      if (Paren && !expect(')'))
        return false;
      if (!expect(':'))
        return false;
    }
    if (!parseConstraintList(Out.Conj))
      return false;
    if (!expect('}'))
      return false;
    skip();
    if (Pos != Text.size())
      return fail("trailing characters after '}'");
    return true;
  }

  bool parseExprOnly(Expr &Out) {
    if (!parseExpr(Out))
      return false;
    skip();
    if (Pos != Text.size())
      return fail("trailing characters after expression");
    return true;
  }

  std::string error() const { return Err; }
  size_t errorPos() const { return Pos; }

private:
  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  bool peekStr(std::string_view S) const {
    return Text.substr(Pos, S.size()) == S;
  }

  void skip() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool fail(const char *Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  bool expect(char C) {
    skip();
    if (peek() != C) {
      Err = std::string("expected '") + C + "'";
      return false;
    }
    ++Pos;
    return true;
  }

  static bool isIdentStart(char C) {
    return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
  }
  static bool isIdentChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '\'';
  }

  bool peekIdent(std::string_view Name) const {
    if (Text.substr(Pos, Name.size()) != Name)
      return false;
    size_t After = Pos + Name.size();
    return After >= Text.size() || !isIdentChar(Text[After]);
  }

  std::string consumeIdent() {
    skip();
    if (Pos >= Text.size() || !isIdentStart(Text[Pos]))
      return "";
    size_t Start = Pos;
    while (Pos < Text.size() && isIdentChar(Text[Pos]))
      ++Pos;
    return std::string(Text.substr(Start, Pos - Start));
  }

  bool parseTuple(std::vector<std::string> &Vars) {
    if (!expect('['))
      return false;
    skip();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      std::string Id = consumeIdent();
      if (Id.empty())
        return fail("expected identifier in tuple");
      Vars.push_back(Id);
      skip();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    return expect(']');
  }

  bool parseInt(int64_t &V) {
    skip();
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start || (Pos == Start + 1 && Text[Start] == '-'))
      return fail("expected integer");
    auto [Ptr, Ec] =
        std::from_chars(Text.data() + Start, Text.data() + Pos, V);
    if (Ec != std::errc() || Ptr != Text.data() + Pos)
      return fail("integer literal out of range");
    return true;
  }

  /// primary := int | ident [ '(' expr, ... ')' ] | '(' expr ')'
  bool parsePrimary(Expr &Out) {
    skip();
    char C = peek();
    if (C == '(') {
      ++Pos;
      if (!parseExpr(Out))
        return false;
      return expect(')');
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V;
      if (!parseInt(V))
        return false;
      Out = Expr(V);
      return true;
    }
    std::string Id = consumeIdent();
    if (Id.empty())
      return fail("expected expression");
    skip();
    if (peek() == '(') {
      ++Pos;
      std::vector<Expr> Args;
      skip();
      if (peek() != ')') {
        while (true) {
          Expr Arg;
          if (!parseExpr(Arg))
            return false;
          Args.push_back(std::move(Arg));
          skip();
          if (peek() == ',') {
            ++Pos;
            continue;
          }
          break;
        }
      }
      if (!expect(')'))
        return false;
      Out = Expr::call(Id, std::move(Args));
      return true;
    }
    Out = Expr::var(Id);
    return true;
  }

  /// term := [int '*'?] primary | primary
  bool parseTerm(Expr &Out) {
    skip();
    // Optional leading integer coefficient: "2 k" or "2*k" or plain "2".
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      int64_t V;
      if (!parseInt(V))
        return false;
      skip();
      if (peek() == '*') {
        ++Pos;
        Expr P;
        if (!parsePrimary(P))
          return false;
        Out = P * V;
        return true;
      }
      if (isIdentStart(peek())) {
        Expr P;
        if (!parsePrimary(P))
          return false;
        Out = P * V;
        return true;
      }
      Out = Expr(V);
      return true;
    }
    return parsePrimary(Out);
  }

  /// expr := ['-'] term (('+'|'-') term)*
  bool parseExpr(Expr &Out) {
    skip();
    bool Neg = false;
    if (peek() == '-') {
      ++Pos;
      Neg = true;
    }
    Expr T;
    if (!parseTerm(T))
      return false;
    Out = Neg ? -T : T;
    while (true) {
      skip();
      char C = peek();
      if (C != '+' && C != '-')
        break;
      // Don't swallow "->" of a tuple arrow.
      if (C == '-' && Pos + 1 < Text.size() && Text[Pos + 1] == '>')
        break;
      ++Pos;
      Expr Next;
      if (!parseTerm(Next))
        return false;
      Out = (C == '+') ? Out + Next : Out - Next;
    }
    return true;
  }

  enum class Cmp { Lt, Le, Gt, Ge, Eq };

  bool parseCmpOp(Cmp &Op, bool &Found) {
    skip();
    Found = true;
    if (peekStr("<=")) {
      Pos += 2;
      Op = Cmp::Le;
      return true;
    }
    if (peekStr(">=")) {
      Pos += 2;
      Op = Cmp::Ge;
      return true;
    }
    if (peekStr("==")) {
      Pos += 2;
      Op = Cmp::Eq;
      return true;
    }
    if (peekStr("!=")) {
      return fail("disequalities are not supported; split the relation "
                  "into the two strict orderings instead");
    }
    char C = peek();
    if (C == '<') {
      ++Pos;
      Op = Cmp::Lt;
      return true;
    }
    if (C == '>') {
      ++Pos;
      Op = Cmp::Gt;
      return true;
    }
    if (C == '=') {
      ++Pos;
      Op = Cmp::Eq;
      return true;
    }
    Found = false;
    return true;
  }

  /// constraint-chain := expr (cmp expr)+
  bool parseConstraintChain(Conjunction &Conj) {
    Expr L;
    if (!parseExpr(L))
      return false;
    Cmp Op;
    bool Found = false;
    if (!parseCmpOp(Op, Found))
      return false;
    if (!Found)
      return fail("expected comparison operator");
    unsigned Count = 0;
    while (Found) {
      Expr R;
      if (!parseExpr(R))
        return false;
      switch (Op) {
      case Cmp::Lt:
        Conj.add(Constraint::lt(L, R));
        break;
      case Cmp::Le:
        Conj.add(Constraint::le(L, R));
        break;
      case Cmp::Gt:
        Conj.add(Constraint::lt(R, L));
        break;
      case Cmp::Ge:
        Conj.add(Constraint::le(R, L));
        break;
      case Cmp::Eq:
        Conj.add(Constraint::equals(L, R));
        break;
      }
      ++Count;
      L = std::move(R);
      if (!parseCmpOp(Op, Found))
        return false;
    }
    return Count > 0;
  }

  bool parseConstraintList(Conjunction &Conj) {
    skip();
    // Allow an empty constraint list: "{ [i] : }" is not valid, but
    // "{ [i] : true }" style is unnecessary; require at least one chain
    // unless the body is immediately '}'.
    if (peek() == '}')
      return true;
    while (true) {
      if (!parseConstraintChain(Conj))
        return false;
      skip();
      if (peekStr("&&")) {
        Pos += 2;
        continue;
      }
      if (peek() == ',') { // tolerate comma-separated constraints
        ++Pos;
        continue;
      }
      break;
    }
    return true;
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

RelationParseResult parseRelation(std::string_view Text) {
  RelationParseResult R;
  RelParser P(Text);
  if (P.parseFull(R.Rel)) {
    R.Ok = true;
  } else {
    R.Error = P.error();
    R.ErrorPos = P.errorPos();
  }
  return R;
}

ExprParseResult parseExpr(std::string_view Text) {
  ExprParseResult R;
  RelParser P(Text);
  if (P.parseExprOnly(R.E))
    R.Ok = true;
  else
    R.Error = P.error();
  return R;
}

} // namespace ir
} // namespace sds
