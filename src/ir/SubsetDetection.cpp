//===- SubsetDetection.cpp - Dependence subsumption (§5) ------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/SubsetDetection.h"

#include "sds/ir/Flatten.h"

#include <algorithm>

namespace sds {
namespace ir {

std::vector<std::string>
eliminateDeterminedVars(SparseRelation &R, std::vector<std::string> Vars) {
  bool Changed = true;
  while (Changed && !Vars.empty()) {
    Changed = false;
    for (size_t VI = 0; VI < Vars.size(); ++VI) {
      const std::string &V = Vars[VI];
      for (const Constraint &C : R.Conj.constraints()) {
        if (!C.isEq())
          continue;
        int64_t Coeff = 0;
        for (const Expr::Term &T : C.E.terms())
          if (T.A.isVar() && T.A.Name == V)
            Coeff = T.Coeff;
        if (Coeff != 1 && Coeff != -1)
          continue;
        Expr Rest = C.E - Expr(Coeff, Atom::var(V));
        Expr Solved = Rest * -Coeff;
        std::vector<std::string> Mentioned;
        Solved.collectVars(Mentioned);
        if (std::find(Mentioned.begin(), Mentioned.end(), V) !=
            Mentioned.end())
          continue;
        std::map<std::string, Expr> Map;
        Map.emplace(V, std::move(Solved));
        R.Conj = R.Conj.substitute(Map);
        auto Scrub = [&](std::vector<std::string> &L) {
          L.erase(std::remove(L.begin(), L.end(), V), L.end());
        };
        Scrub(R.OutVars);
        Scrub(R.ExistVars);
        Vars.erase(Vars.begin() + static_cast<std::ptrdiff_t>(VI));
        Changed = true;
        break;
      }
      if (Changed)
        break;
    }
  }
  return Vars;
}

namespace {

/// Lower a conjunction onto an existing column space. Atoms without a
/// column must not occur (the caller builds the space from a superset).
presburger::BasicSet lowerOnto(const Flattened &F, const Conjunction &C) {
  unsigned Width = F.Set.numVars();
  presburger::BasicSet Out(Width);
  for (const Constraint &Cons : C.constraints()) {
    std::vector<int64_t> Row(Width + 1, 0);
    Row[Width] = Cons.E.constant();
    for (const Expr::Term &T : Cons.E.terms()) {
      auto It = F.ColIndex.find(T.A.str());
      if (It == F.ColIndex.end())
        continue; // cannot happen when the space covers both conjunctions
      Row[It->second] += T.Coeff;
    }
    if (Cons.isEq())
      Out.addEquality(std::move(Row));
    else
      Out.addInequality(std::move(Row));
  }
  return Out;
}

} // namespace

presburger::Ternary subsumes(const SparseRelation &Kept,
                             const SparseRelation &Discarded,
                             const SimplifyOptions &Opts) {
  using presburger::Ternary;
  // Step 1: the comparison only makes sense over a shared source space and
  // sink outer iterator.
  if (Kept.InVars != Discarded.InVars || Kept.OutVars.empty() ||
      Discarded.OutVars.empty() || Kept.OutVars[0] != Discarded.OutVars[0])
    return Ternary::Unknown;

  // Step 2: kept side must become exact over the shared variables.
  SparseRelation K = Kept;
  {
    std::vector<std::string> Elim(K.OutVars.begin() + 1, K.OutVars.end());
    Elim.insert(Elim.end(), K.ExistVars.begin(), K.ExistVars.end());
    std::vector<std::string> Leftover =
        eliminateDeterminedVars(K, std::move(Elim));
    if (!Leftover.empty())
      return Ternary::Unknown;
  }

  // Step 3: discarded side eliminates what it can by substitution; the
  // rest is projected out below with Fourier-Motzkin, which is a pure
  // relaxation — sound for the side that gets discarded, and it keeps
  // transitive bounds (e.g. col(i')+1 <= m' <= l' = k survives as
  // col(i')+1 <= k, matching the paper's R2* in §5.3).
  SparseRelation D = Discarded;
  std::vector<std::string> Leftover;
  {
    std::vector<std::string> Elim(D.OutVars.begin() + 1, D.OutVars.end());
    Elim.insert(Elim.end(), D.ExistVars.begin(), D.ExistVars.end());
    Leftover = eliminateDeterminedVars(D, std::move(Elim));
  }

  // Step 4: lower both onto one shared column space, project the leftover
  // witnesses (and every UF-call column whose arguments mention them) out
  // of the discarded side, and compare.
  std::vector<std::string> Order = Kept.InVars;
  Order.push_back(Kept.OutVars[0]);
  Conjunction Universe = K.Conj;
  Universe.append(D.Conj);
  Flattened F = flatten(Universe, Order);

  std::vector<unsigned> Positions;
  for (unsigned Col = 0; Col < F.Cols.size(); ++Col) {
    const Atom &A = F.Cols[Col];
    std::vector<std::string> Mentioned;
    if (A.isVar()) {
      Mentioned.push_back(A.Name);
    } else {
      Expr CallExpr(1, A);
      CallExpr.collectVars(Mentioned);
    }
    for (const std::string &V : Mentioned)
      if (std::find(Leftover.begin(), Leftover.end(), V) != Leftover.end()) {
        Positions.push_back(Col);
        break;
      }
  }

  presburger::BasicSet KSet = lowerOnto(F, K.Conj);
  presburger::BasicSet DSet = lowerOnto(F, D.Conj);
  if (!Positions.empty()) {
    presburger::ProjectResult DP = DSet.projectOut(Positions);
    DSet = std::move(DP.Set); // exactness not required on this side
    presburger::ProjectResult KP = KSet.projectOut(Positions);
    if (!KP.Exact)
      return Ternary::Unknown; // K never mentions these, so always exact
    KSet = std::move(KP.Set);
  }
  return DSet.isSubsetOf(KSet, Opts.EmptinessBudget);
}

} // namespace ir
} // namespace sds
