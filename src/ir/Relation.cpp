//===- Relation.cpp - Sparse sets/relations with UF constraints ----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Relation.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace sds {
namespace ir {

/// Canonical key of a constraint's linear part (expression minus its
/// constant term).
static std::string linearKey(const Expr &E) {
  return (E - Expr(E.constant())).str();
}

void Conjunction::add(Constraint C) {
  // Drop trivially-true constraints.
  if (C.E.isConstant()) {
    if (C.isEq() ? (C.E.constant() == 0) : (C.E.constant() >= 0))
      return;
  }
  std::string Exact = (C.isEq() ? "=" : ">") + C.E.str();
  if (!ExactKeys.insert(std::move(Exact)).second)
    return;
  // Maintain the implication index.
  std::string Key = linearKey(C.E);
  LinInfo &Info = Index[Key];
  int64_t K = C.E.constant();
  if (C.isEq()) {
    Info.EqConsts.insert(K);
    // An equality also indexes its negated linear part.
    LinInfo &Neg = Index[linearKey(-C.E)];
    Neg.EqConsts.insert(-K);
  } else if (!Info.HasGeq || K < Info.MinGeqConst) {
    Info.HasGeq = true;
    Info.MinGeqConst = K;
  }
  Cs.push_back(std::move(C));
}

bool Conjunction::impliesSyntactically(const Constraint &C) const {
  // Constant constraints decide themselves.
  if (C.E.isConstant())
    return C.isEq() ? (C.E.constant() == 0) : (C.E.constant() >= 0);

  auto It = Index.find(linearKey(C.E));
  if (It == Index.end())
    return false;
  const LinInfo &Info = It->second;
  int64_t K = C.E.constant();
  if (C.isEq()) {
    // Need lin + K == 0 forced: an equality lin + K == 0 must be present.
    return Info.EqConsts.count(K) > 0;
  }
  // Geq: lin + K >= 0. Implied by lin + ch >= 0 with ch <= K, or by an
  // equality lin + ce == 0 with ce <= K (then lin + K = K - ce >= 0).
  if (Info.HasGeq && Info.MinGeqConst <= K)
    return true;
  for (int64_t Ce : Info.EqConsts)
    if (Ce <= K)
      return true;
  return false;
}

Conjunction
Conjunction::substitute(const std::map<std::string, Expr> &Map) const {
  Conjunction Out;
  for (const Constraint &C : Cs)
    Out.add(C.substitute(Map));
  return Out;
}

std::vector<Atom> Conjunction::collectCalls() const {
  std::vector<Atom> Calls;
  for (const Constraint &C : Cs)
    C.E.collectCalls(Calls);
  // Deduplicate structurally.
  std::sort(Calls.begin(), Calls.end());
  Calls.erase(std::unique(Calls.begin(), Calls.end()), Calls.end());
  return Calls;
}

std::vector<std::string> Conjunction::collectVars() const {
  std::vector<std::string> Vars, Out;
  for (const Constraint &C : Cs)
    C.E.collectVars(Vars);
  for (std::string &V : Vars)
    if (std::find(Out.begin(), Out.end(), V) == Out.end())
      Out.push_back(std::move(V));
  return Out;
}

std::string Conjunction::str() const {
  std::string Out;
  for (size_t I = 0; I < Cs.size(); ++I) {
    if (I)
      Out += " && ";
    Out += Cs[I].str();
  }
  return Out.empty() ? "true" : Out;
}

std::vector<std::string> SparseRelation::params() const {
  auto IsBound = [&](const std::string &V) {
    auto In = [&](const std::vector<std::string> &L) {
      return std::find(L.begin(), L.end(), V) != L.end();
    };
    return In(InVars) || In(OutVars) || In(ExistVars);
  };
  std::vector<std::string> Out;
  for (const std::string &V : Conj.collectVars())
    if (!IsBound(V) && std::find(Out.begin(), Out.end(), V) == Out.end())
      Out.push_back(V);
  return Out;
}

unsigned SparseRelation::eliminateDeterminedExistentials() {
  unsigned Eliminated = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t VI = 0; VI < ExistVars.size(); ++VI) {
      const std::string &V = ExistVars[VI];
      for (const Constraint &C : Conj.constraints()) {
        if (!C.isEq())
          continue;
        // Look for a top-level term (+|-)1 * V.
        int64_t Coeff = 0;
        for (const Expr::Term &T : C.E.terms())
          if (T.A.isVar() && T.A.Name == V)
            Coeff = T.Coeff;
        if (Coeff != 1 && Coeff != -1)
          continue;
        // V = -sign * (E - Coeff*V).
        Expr Rest = C.E - Expr(Coeff, Atom::var(V));
        Expr Solved = Rest * -Coeff;
        // The solution must not mention V (e.g. hidden inside f(V)).
        std::vector<std::string> Vars;
        Solved.collectVars(Vars);
        if (std::find(Vars.begin(), Vars.end(), V) != Vars.end())
          continue;
        std::map<std::string, Expr> Map;
        Map.emplace(V, std::move(Solved));
        Conj = Conj.substitute(Map);
        ExistVars.erase(ExistVars.begin() + static_cast<std::ptrdiff_t>(VI));
        ++Eliminated;
        Changed = true;
        break;
      }
      if (Changed)
        break;
    }
  }
  return Eliminated;
}

std::string SparseRelation::str() const {
  auto Tuple = [](const std::vector<std::string> &Vs) {
    std::string Out = "[";
    for (size_t I = 0; I < Vs.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Vs[I];
    }
    return Out + "]";
  };
  std::string Out = "{ " + Tuple(InVars);
  if (!OutVars.empty())
    Out += " -> " + Tuple(OutVars);
  Out += " : ";
  if (!ExistVars.empty()) {
    Out += "exists(";
    for (size_t I = 0; I < ExistVars.size(); ++I) {
      if (I)
        Out += ", ";
      Out += ExistVars[I];
    }
    Out += ") : ";
  }
  Out += Conj.str();
  Out += " }";
  return Out;
}

} // namespace ir
} // namespace sds
