//===- Expr.cpp - Affine expressions with uninterpreted functions --------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Expr.h"

#include <algorithm>
#include <cassert>

namespace sds {
namespace ir {

Atom Atom::var(std::string Name) {
  Atom A;
  A.K = Kind::Var;
  A.Name = std::move(Name);
  return A;
}

Atom Atom::call(std::string Fn, std::vector<Expr> Args) {
  Atom A;
  A.K = Kind::Call;
  A.Name = std::move(Fn);
  A.Args = std::move(Args);
  return A;
}

int Atom::compare(const Atom &O) const {
  if (K != O.K)
    return K == Kind::Var ? -1 : 1;
  if (int C = Name.compare(O.Name))
    return C < 0 ? -1 : 1;
  if (Args.size() != O.Args.size())
    return Args.size() < O.Args.size() ? -1 : 1;
  for (size_t I = 0; I < Args.size(); ++I)
    if (int C = Args[I].compare(O.Args[I]))
      return C;
  return 0;
}

std::string Atom::str() const {
  if (isVar())
    return Name;
  std::string Out = Name + "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Args[I].str();
  }
  Out += ")";
  return Out;
}

Expr::Expr(int64_t Coeff, Atom A) : Const(0) {
  if (Coeff != 0)
    Terms.push_back({Coeff, std::move(A)});
}

void Expr::normalize() {
  std::sort(Terms.begin(), Terms.end(),
            [](const Term &L, const Term &R) { return L.A < R.A; });
  std::vector<Term> Merged;
  for (Term &T : Terms) {
    if (!Merged.empty() && Merged.back().A == T.A)
      Merged.back().Coeff += T.Coeff;
    else
      Merged.push_back(std::move(T));
  }
  Merged.erase(std::remove_if(Merged.begin(), Merged.end(),
                              [](const Term &T) { return T.Coeff == 0; }),
               Merged.end());
  Terms = std::move(Merged);
}

Expr Expr::operator+(const Expr &O) const {
  Expr R;
  R.Terms = Terms;
  R.Terms.insert(R.Terms.end(), O.Terms.begin(), O.Terms.end());
  R.Const = Const + O.Const;
  R.normalize();
  return R;
}

Expr Expr::operator-() const { return *this * -1; }

Expr Expr::operator-(const Expr &O) const { return *this + (-O); }

Expr Expr::operator*(int64_t K) const {
  Expr R;
  if (K == 0)
    return R;
  R.Terms = Terms;
  for (Term &T : R.Terms)
    T.Coeff *= K;
  R.Const = Const * K;
  return R;
}

int Expr::compare(const Expr &O) const {
  if (Terms.size() != O.Terms.size())
    return Terms.size() < O.Terms.size() ? -1 : 1;
  for (size_t I = 0; I < Terms.size(); ++I) {
    if (Terms[I].Coeff != O.Terms[I].Coeff)
      return Terms[I].Coeff < O.Terms[I].Coeff ? -1 : 1;
    if (int C = Terms[I].A.compare(O.Terms[I].A))
      return C;
  }
  if (Const != O.Const)
    return Const < O.Const ? -1 : 1;
  return 0;
}

Expr Expr::substitute(const std::map<std::string, Expr> &Map) const {
  Expr R(Const);
  for (const Term &T : Terms) {
    if (T.A.isVar()) {
      auto It = Map.find(T.A.Name);
      if (It != Map.end()) {
        R += It->second * T.Coeff;
        continue;
      }
      R += Expr(T.Coeff, T.A);
      continue;
    }
    std::vector<Expr> NewArgs;
    NewArgs.reserve(T.A.Args.size());
    for (const Expr &Arg : T.A.Args)
      NewArgs.push_back(Arg.substitute(Map));
    R += Expr(T.Coeff, Atom::call(T.A.Name, std::move(NewArgs)));
  }
  return R;
}

void Expr::collectCalls(std::vector<Atom> &Out) const {
  for (const Term &T : Terms) {
    if (!T.A.isCall())
      continue;
    Out.push_back(T.A);
    for (const Expr &Arg : T.A.Args)
      Arg.collectCalls(Out);
  }
}

void Expr::collectVars(std::vector<std::string> &Out) const {
  for (const Term &T : Terms) {
    if (T.A.isVar()) {
      Out.push_back(T.A.Name);
      continue;
    }
    for (const Expr &Arg : T.A.Args)
      Arg.collectVars(Out);
  }
}

std::string Expr::str() const {
  if (Terms.empty())
    return std::to_string(Const);
  std::string Out;
  bool First = true;
  for (const Term &T : Terms) {
    int64_t C = T.Coeff;
    if (First) {
      if (C == -1)
        Out += "-";
      else if (C != 1)
        Out += std::to_string(C) + " ";
    } else {
      Out += C > 0 ? " + " : " - ";
      int64_t A = C < 0 ? -C : C;
      if (A != 1)
        Out += std::to_string(A) + " ";
    }
    Out += T.A.str();
    First = false;
  }
  if (Const != 0) {
    Out += Const > 0 ? " + " : " - ";
    Out += std::to_string(Const < 0 ? -Const : Const);
  }
  return Out;
}

} // namespace ir
} // namespace sds
