//===- EqualityDiscovery.cpp - Expose implicit equalities (§4) -----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//
//
// After phase-1 instantiation the augmented conjunction often sandwiches a
// value from both sides (e.g. `g(i) <= i'` from the relation and
// `i' <= g(i)` from a contrapositive instance); lowering to the integer-set
// layer and promoting provably-tight inequalities exposes the equality
// `i' == g(i)` that collapses one inspector loop (§4.1's O(n^2) -> O(n)).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Flatten.h"
#include "sds/ir/Simplify.h"

#include <algorithm>

namespace sds {
namespace ir {

namespace {

/// Cheap syntactic pre-pass: pairs of inequalities with opposite linear
/// parts and exactly-matching constants are equalities. This catches the
/// common sandwich pattern without any LP work.
unsigned promoteOppositePairs(presburger::BasicSet &Set) {
  using Row = std::vector<int64_t>;
  unsigned N = Set.numVars();
  std::vector<Row> Ineqs = Set.inequalities();
  std::vector<bool> Promoted(Ineqs.size(), false);
  std::vector<Row> NewEqs;
  for (size_t I = 0; I < Ineqs.size(); ++I) {
    if (Promoted[I])
      continue;
    for (size_t J = I + 1; J < Ineqs.size(); ++J) {
      if (Promoted[J])
        continue;
      bool Opposite = true;
      for (unsigned K = 0; K <= N && Opposite; ++K)
        if (Ineqs[I][K] != -Ineqs[J][K])
          Opposite = false;
      if (!Opposite)
        continue;
      NewEqs.push_back(Ineqs[I]);
      Promoted[I] = Promoted[J] = true;
      break;
    }
  }
  if (NewEqs.empty())
    return 0;
  presburger::BasicSet Out(N);
  for (const Row &R : Set.equalities())
    Out.addEquality(R);
  for (const Row &R : NewEqs)
    Out.addEquality(R);
  for (size_t I = 0; I < Ineqs.size(); ++I)
    if (!Promoted[I])
      Out.addInequality(Ineqs[I]);
  Set = std::move(Out);
  return static_cast<unsigned>(NewEqs.size());
}

/// Derive residual equalities by Gaussian elimination: eliminate "deep"
/// call columns (nested calls first) through unit-coefficient pivot rows,
/// leaving combinations over variables and simple calls. Example: from
/// k == colptr(i'), rowidx(colptr(i')) == i' and the functional-
/// consistency link rowidx(colptr(i')) == rowidx(k), elimination of the
/// nested call yields the inspector-friendly i' == rowidx(k).
void gaussResiduals(const Flattened &F,
                    std::vector<std::vector<int64_t>> &Residuals) {
  std::vector<std::vector<int64_t>> Rows = F.Set.equalities();
  unsigned Width = F.Set.numVars();

  // Eliminate only *nested* call columns (depth >= 2, e.g.
  // rowidx(colptr(i'))), deepest first. Depth-1 calls are direct index-
  // array reads an inspector can evaluate — they must stay, or the very
  // residuals we are after (i' == rowidx(k)) would be consumed as the
  // "defining rows" of their own columns.
  std::vector<std::pair<int, unsigned>> Order;
  for (unsigned C = 0; C < Width; ++C) {
    if (!F.Cols[C].isCall())
      continue;
    std::vector<ir::Atom> Nested;
    ir::Expr(1, F.Cols[C]).collectCalls(Nested);
    int Depth = static_cast<int>(Nested.size()); // 1 + nested call count
    if (Depth >= 2)
      Order.push_back({-Depth, C});
  }
  std::sort(Order.begin(), Order.end());

  std::vector<bool> Dead(Rows.size(), false);
  for (auto [NegDepth, C] : Order) {
    (void)NegDepth;
    size_t Pivot = Rows.size();
    for (size_t R = 0; R < Rows.size(); ++R)
      if (!Dead[R] && (Rows[R][C] == 1 || Rows[R][C] == -1)) {
        Pivot = R;
        break;
      }
    if (Pivot == Rows.size())
      continue;
    int64_t PC = Rows[Pivot][C];
    for (size_t R = 0; R < Rows.size(); ++R) {
      if (R == Pivot || Dead[R] || Rows[R][C] == 0)
        continue;
      int64_t A = Rows[R][C];
      for (unsigned J = 0; J <= Width; ++J)
        Rows[R][J] -= A * PC * Rows[Pivot][J];
    }
    Dead[Pivot] = true; // the defining row leaves the residual system
  }
  for (size_t R = 0; R < Rows.size(); ++R) {
    if (Dead[R])
      continue;
    bool NonTrivial = false;
    for (unsigned J = 0; J < Width; ++J)
      if (Rows[R][J] != 0)
        NonTrivial = true;
    if (NonTrivial)
      Residuals.push_back(Rows[R]);
  }
}

} // namespace

EqualityDiscoveryResult discoverEqualities(SparseRelation &R,
                                           const PropertySet &PS,
                                           const SimplifyOptions &Opts) {
  EqualityDiscoveryResult Result;

  InstantiationStats Stats;
  Conjunction Aug =
      instantiatePhase1(R.Conj, PS.assertions(), Opts, &Stats, nullptr);
  // Every equality found below is a consequence of the applied instances,
  // so their labels form a (coarse but sound) core for the rewrite.
  Result.UsedLabels = std::move(Stats.UsedLabels);
  std::sort(Result.UsedLabels.begin(), Result.UsedLabels.end());
  Result.UsedLabels.erase(
      std::unique(Result.UsedLabels.begin(), Result.UsedLabels.end()),
      Result.UsedLabels.end());

  SparseRelation Tmp = R;
  Tmp.Conj = Aug;
  Flattened F = flatten(Tmp);
  if (!F.Set.normalize())
    return Result; // relation is empty; nothing to discover

  unsigned EqsBefore = static_cast<unsigned>(F.Set.equalities().size());
  promoteOppositePairs(F.Set);
  // LP-based promotion for anything the syntactic pass missed, under a
  // probe budget (each probe is one integer-emptiness query).
  if (F.Set.inequalities().size() <= Opts.MaxEqualityProbes)
    F.Set.detectImplicitEqualities(Opts.EmptinessBudget);

  // Residual combinations (Gaussian elimination of nested call columns)
  // expose solved forms like i' == rowidx(k).
  std::vector<std::vector<int64_t>> Candidates = F.Set.equalities();
  gaussResiduals(F, Candidates);

  // Translate every equality that is new w.r.t. the *original* relation
  // back into UF form and record it.
  for (const auto &Row : Candidates) {
    (void)EqsBefore;
    Expr E = F.rowToExpr(Row);
    Constraint C = Constraint::eq(E);
    if (R.Conj.impliesSyntactically(C))
      continue;
    R.Conj.add(C);
    ++Result.NewEqualities;
    Result.EqualityStrings.push_back(C.str());
  }

  Result.ExistentialsEliminated = R.eliminateDeterminedExistentials();
  return Result;
}

} // namespace ir
} // namespace sds
