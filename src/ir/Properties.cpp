//===- Properties.cpp - Index-array properties as assertions -------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Properties.h"

#include "sds/ir/Parser.h"

#include <algorithm>

namespace sds {
namespace ir {

std::string UniversalAssertion::str() const {
  std::string Out = "forall ";
  for (size_t I = 0; I < QVars.size(); ++I) {
    if (I)
      Out += ", ";
    Out += QVars[I];
  }
  Out += ": " + (Antecedent.empty() ? "true" : Antecedent.str()) + " => " +
         Consequent.str();
  return Out;
}

std::optional<PropertyKind> parsePropertyKind(std::string_view Keyword) {
  if (Keyword == "monotonic_increasing")
    return PropertyKind::MonotonicIncreasing;
  if (Keyword == "strict_monotonic_increasing")
    return PropertyKind::StrictMonotonicIncreasing;
  if (Keyword == "monotonic_decreasing")
    return PropertyKind::MonotonicDecreasing;
  if (Keyword == "strict_monotonic_decreasing")
    return PropertyKind::StrictMonotonicDecreasing;
  if (Keyword == "injective")
    return PropertyKind::Injective;
  if (Keyword == "periodic_monotonic")
    return PropertyKind::PeriodicMonotonic;
  if (Keyword == "co_monotonic")
    return PropertyKind::CoMonotonic;
  if (Keyword == "triangular")
    return PropertyKind::Triangular;
  if (Keyword == "triangular_entries_le")
    return PropertyKind::TriangularEntriesLE;
  if (Keyword == "triangular_entries_ge")
    return PropertyKind::TriangularEntriesGE;
  if (Keyword == "triangular_entries_lt")
    return PropertyKind::TriangularEntriesLT;
  if (Keyword == "triangular_entries_gt")
    return PropertyKind::TriangularEntriesGT;
  if (Keyword == "segment_pointer")
    return PropertyKind::SegmentPointer;
  if (Keyword == "segment_start_identity")
    return PropertyKind::SegmentStartIdentity;
  return std::nullopt;
}

std::string propertyKindName(PropertyKind K) {
  switch (K) {
  case PropertyKind::MonotonicIncreasing:
    return "monotonic_increasing";
  case PropertyKind::StrictMonotonicIncreasing:
    return "strict_monotonic_increasing";
  case PropertyKind::MonotonicDecreasing:
    return "monotonic_decreasing";
  case PropertyKind::StrictMonotonicDecreasing:
    return "strict_monotonic_decreasing";
  case PropertyKind::Injective:
    return "injective";
  case PropertyKind::PeriodicMonotonic:
    return "periodic_monotonic";
  case PropertyKind::CoMonotonic:
    return "co_monotonic";
  case PropertyKind::Triangular:
    return "triangular";
  case PropertyKind::TriangularEntriesLE:
    return "triangular_entries_le";
  case PropertyKind::TriangularEntriesGE:
    return "triangular_entries_ge";
  case PropertyKind::TriangularEntriesLT:
    return "triangular_entries_lt";
  case PropertyKind::TriangularEntriesGT:
    return "triangular_entries_gt";
  case PropertyKind::SegmentPointer:
    return "segment_pointer";
  case PropertyKind::SegmentStartIdentity:
    return "segment_start_identity";
  }
  return "unknown";
}

std::optional<PropertyTier> parsePropertyTier(std::string_view Keyword) {
  if (Keyword == "declared")
    return PropertyTier::Declared;
  if (Keyword == "inferred")
    return PropertyTier::Inferred;
  if (Keyword == "refuted")
    return PropertyTier::Refuted;
  return std::nullopt;
}

std::string propertyTierName(PropertyTier T) {
  switch (T) {
  case PropertyTier::Declared:
    return "declared";
  case PropertyTier::Inferred:
    return "inferred";
  case PropertyTier::Refuted:
    return "refuted";
  }
  return "unknown";
}

PropertySet
PropertySet::filtered(const std::vector<PropertyKind> &Kinds) const {
  PropertySet Out;
  for (const IndexArrayProperty &P : Props)
    if (std::find(Kinds.begin(), Kinds.end(), P.K) != Kinds.end())
      Out.add(P);
  // Domain/range declarations travel with every filter: the paper's
  // Figure 7 always keeps basic array facts available.
  for (const DomainRangeDecl &D : Decls)
    Out.addDomainRange(D);
  return Out;
}

static std::string propertyBase(const IndexArrayProperty &P) {
  return propertyKindName(P.K) + "(" + P.Fn +
         (P.Other.empty() ? "" : ", " + P.Other) + ")";
}

PropertySet PropertySet::unioned(const PropertySet &Other) const {
  PropertySet Out = *this;
  std::vector<std::string> Seen;
  for (const IndexArrayProperty &P : Props)
    Seen.push_back(propertyBase(P));
  for (const IndexArrayProperty &P : Other.Props) {
    if (P.Tier == PropertyTier::Refuted)
      continue; // disconfirmed candidates stay out of the working set
    if (std::find(Seen.begin(), Seen.end(), propertyBase(P)) != Seen.end())
      continue;
    Out.add(P);
  }
  std::vector<std::string> SeenDR;
  for (const DomainRangeDecl &D : Decls)
    SeenDR.push_back(D.Fn);
  for (const DomainRangeDecl &D : Other.Decls) {
    if (std::find(SeenDR.begin(), SeenDR.end(), D.Fn) != SeenDR.end())
      continue;
    Out.addDomainRange(D);
  }
  return Out;
}

std::optional<PropertyTier>
PropertySet::tierForLabelBase(const std::string &Base) const {
  // Declared wins over inferred when both produce the same base (unioned()
  // never creates that situation, but hand-built sets may).
  std::optional<PropertyTier> Found;
  auto Consider = [&](PropertyTier T) {
    if (!Found || T == PropertyTier::Declared)
      Found = T;
  };
  for (const IndexArrayProperty &P : Props)
    if (propertyBase(P) == Base)
      Consider(P.Tier);
  for (const DomainRangeDecl &D : Decls)
    if ("domain_range(" + D.Fn + ")" == Base)
      Consider(D.Tier);
  return Found;
}

namespace {

Expr q(int I) { return Expr::var("__q" + std::to_string(I)); }
Expr fOf(const std::string &Fn, const Expr &Arg) {
  return Expr::call(Fn, {Arg});
}

UniversalAssertion makeAssertion(std::string Label, int NumQ,
                                 std::vector<Constraint> Ante,
                                 std::vector<Constraint> Cons) {
  UniversalAssertion A;
  A.Label = std::move(Label);
  for (int I = 0; I < NumQ; ++I)
    A.QVars.push_back("__q" + std::to_string(I));
  for (Constraint &C : Ante)
    A.Antecedent.add(std::move(C));
  for (Constraint &C : Cons)
    A.Consequent.add(std::move(C));
  return A;
}

void expandProperty(const IndexArrayProperty &P,
                    std::vector<UniversalAssertion> &Out) {
  const std::string &F = P.Fn;
  std::string Base = propertyKindName(P.K) + "(" + F +
                     (P.Other.empty() ? "" : ", " + P.Other) + ")";
  Expr X0 = q(0), X1 = q(1), X2 = q(2);
  Expr F0 = fOf(F, X0), F1 = fOf(F, X1);

  switch (P.K) {
  case PropertyKind::MonotonicIncreasing:
    Out.push_back(makeAssertion(Base, 2, {Constraint::le(X0, X1)},
                                {Constraint::le(F0, F1)}));
    Out.push_back(makeAssertion(Base + " [contra]", 2,
                                {Constraint::lt(F1, F0)},
                                {Constraint::lt(X1, X0)}));
    break;
  case PropertyKind::StrictMonotonicIncreasing:
    Out.push_back(makeAssertion(Base, 2, {Constraint::lt(X0, X1)},
                                {Constraint::lt(F0, F1)}));
    Out.push_back(makeAssertion(Base + " [weak]", 2,
                                {Constraint::le(X0, X1)},
                                {Constraint::le(F0, F1)}));
    Out.push_back(makeAssertion(Base + " [contra]", 2,
                                {Constraint::le(F1, F0)},
                                {Constraint::le(X1, X0)}));
    Out.push_back(makeAssertion(Base + " [contra-strict]", 2,
                                {Constraint::lt(F1, F0)},
                                {Constraint::lt(X1, X0)}));
    break;
  case PropertyKind::MonotonicDecreasing:
    Out.push_back(makeAssertion(Base, 2, {Constraint::le(X0, X1)},
                                {Constraint::le(F1, F0)}));
    Out.push_back(makeAssertion(Base + " [contra]", 2,
                                {Constraint::lt(F0, F1)},
                                {Constraint::lt(X1, X0)}));
    break;
  case PropertyKind::StrictMonotonicDecreasing:
    Out.push_back(makeAssertion(Base, 2, {Constraint::lt(X0, X1)},
                                {Constraint::lt(F1, F0)}));
    Out.push_back(makeAssertion(Base + " [contra]", 2,
                                {Constraint::le(F0, F1)},
                                {Constraint::le(X1, X0)}));
    break;
  case PropertyKind::Injective:
    Out.push_back(makeAssertion(Base, 2, {Constraint::equals(F0, F1)},
                                {Constraint::equals(X0, X1)}));
    break;
  case PropertyKind::PeriodicMonotonic: {
    // Within one segment [Seg(x0), Seg(x0+1)) the array F is strictly
    // increasing. Corrects the paper's Table 1 typo (f(x1) vs f(x2)).
    Expr Seg0 = fOf(P.Other, X0);
    Expr Seg1 = fOf(P.Other, X0 + Expr(1));
    Expr FX1 = fOf(F, X1), FX2 = fOf(F, X2);
    Out.push_back(makeAssertion(
        Base, 3,
        {Constraint::lt(X1, X2), Constraint::le(Seg0, X1),
         Constraint::lt(X2, Seg1)},
        {Constraint::lt(FX1, FX2)}));
    Out.push_back(makeAssertion(
        Base + " [contra]", 3,
        {Constraint::le(Seg0, X1), Constraint::lt(X1, Seg1),
         Constraint::le(Seg0, X2), Constraint::lt(X2, Seg1),
         Constraint::le(FX2, FX1)},
        {Constraint::le(X2, X1)}));
    break;
  }
  case PropertyKind::CoMonotonic:
    // f(x) <= Other(x), unconditionally.
    Out.push_back(makeAssertion(Base, 1, {},
                                {Constraint::le(F0, fOf(P.Other, X0))}));
    break;
  case PropertyKind::Triangular:
    // Table 1 form: f(x0) < x1 => x0 < Other(x1).
    Out.push_back(makeAssertion(Base, 2, {Constraint::lt(F0, X1)},
                                {Constraint::lt(X0, fOf(P.Other, X1))}));
    Out.push_back(makeAssertion(Base + " [contra]", 2,
                                {Constraint::le(fOf(P.Other, X1), X0)},
                                {Constraint::le(X1, F0)}));
    break;
  case PropertyKind::TriangularEntriesLE: {
    // Entries of segment x0 index no later than x0: for the col array of a
    // lower-triangular CSR, col(x1) <= x0 for Ptr(x0) <= x1 < Ptr(x0+1).
    Expr P0 = fOf(P.Other, X0);
    Expr P1 = fOf(P.Other, X0 + Expr(1));
    Out.push_back(makeAssertion(Base, 2,
                                {Constraint::le(P0, X1),
                                 Constraint::lt(X1, P1)},
                                {Constraint::le(F1, X0)}));
    break;
  }
  case PropertyKind::TriangularEntriesGE: {
    Expr P0 = fOf(P.Other, X0);
    Expr P1 = fOf(P.Other, X0 + Expr(1));
    Out.push_back(makeAssertion(Base, 2,
                                {Constraint::le(P0, X1),
                                 Constraint::lt(X1, P1)},
                                {Constraint::le(X0, F1)}));
    break;
  }
  case PropertyKind::TriangularEntriesLT: {
    Expr P0 = fOf(P.Other, X0);
    Expr P1 = fOf(P.Other, X0 + Expr(1));
    Out.push_back(makeAssertion(Base, 2,
                                {Constraint::le(P0, X1),
                                 Constraint::lt(X1, P1)},
                                {Constraint::lt(F1, X0)}));
    break;
  }
  case PropertyKind::TriangularEntriesGT: {
    Expr P0 = fOf(P.Other, X0);
    Expr P1 = fOf(P.Other, X0 + Expr(1));
    Out.push_back(makeAssertion(Base, 2,
                                {Constraint::le(P0, X1),
                                 Constraint::lt(X1, P1)},
                                {Constraint::lt(X0, F1)}));
    break;
  }
  case PropertyKind::SegmentPointer: {
    // Ptr(x) <= f(x) < Ptr(x+1), unconditionally for every x.
    Expr P0 = fOf(P.Other, X0);
    Expr P1 = fOf(P.Other, X0 + Expr(1));
    Out.push_back(makeAssertion(Base, 1, {},
                                {Constraint::le(P0, F0),
                                 Constraint::lt(F0, P1)}));
    break;
  }
  case PropertyKind::SegmentStartIdentity: {
    // f(Ptr(x)) == x for x in the declared domain (the guard keeps the
    // assertion sound: outside it, Ptr(x) may leave f's bounds).
    std::vector<Constraint> Ante;
    if (P.GuardLo)
      Ante.push_back(Constraint::le(*P.GuardLo, X0));
    if (P.GuardHi)
      Ante.push_back(Constraint::lt(X0, *P.GuardHi));
    Out.push_back(makeAssertion(
        Base, 1, std::move(Ante),
        {Constraint::equals(fOf(F, fOf(P.Other, X0)), X0)}));
    break;
  }
  }
}

} // namespace

std::vector<UniversalAssertion> PropertySet::assertions() const {
  std::vector<UniversalAssertion> Out;
  for (const IndexArrayProperty &P : Props) {
    if (P.Tier == PropertyTier::Refuted)
      continue;
    expandProperty(P, Out);
  }
  for (const DomainRangeDecl &D : Decls) {
    if (D.Tier == PropertyTier::Refuted)
      continue;
    Expr X0 = q(0);
    Expr F0 = fOf(D.Fn, X0);
    std::vector<Constraint> Ante, Cons;
    if (D.DomLo)
      Ante.push_back(Constraint::le(*D.DomLo, X0));
    if (D.DomHi)
      Ante.push_back(Constraint::le(X0, *D.DomHi));
    if (D.RanLo)
      Cons.push_back(Constraint::le(*D.RanLo, F0));
    if (D.RanHi)
      Cons.push_back(Constraint::le(F0, *D.RanHi));
    if (Cons.empty())
      continue;
    Out.push_back(makeAssertion("domain_range(" + D.Fn + ")", 1,
                                std::move(Ante), std::move(Cons)));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON loading
//===----------------------------------------------------------------------===//

static std::optional<Expr> boundFromJSON(const json::Value &V,
                                         std::string &Error) {
  if (V.isInt())
    return Expr(V.asInt());
  if (V.isString()) {
    ExprParseResult R = parseExpr(V.asString());
    if (!R.Ok) {
      Error = "bad bound expression '" + V.asString() + "': " + R.Error;
      return std::nullopt;
    }
    return R.E;
  }
  Error = "bound must be an integer or an expression string";
  return std::nullopt;
}

std::optional<PropertySet> PropertySet::fromJSON(const json::Value &V,
                                                 std::string &Error) {
  PropertySet Out;
  const json::Value *Arrays = V.get("index_arrays");
  if (!Arrays || !Arrays->isObject()) {
    Error = "missing 'index_arrays' object";
    return std::nullopt;
  }
  for (const auto &[Fn, Decl] : Arrays->asObject()) {
    if (!Decl.isObject()) {
      Error = "entry for '" + Fn + "' must be an object";
      return std::nullopt;
    }
    if (const json::Value *Props = Decl.get("properties")) {
      if (!Props->isArray()) {
        Error = "'properties' of '" + Fn + "' must be an array";
        return std::nullopt;
      }
      for (const json::Value &P : Props->asArray()) {
        std::string Kw;
        std::string Other;
        std::optional<Expr> GuardLo, GuardHi;
        PropertyTier Tier = PropertyTier::Declared;
        if (P.isString()) {
          Kw = P.asString();
        } else if (P.isObject()) {
          const json::Value *Kind = P.get("kind");
          if (!Kind || !Kind->isString()) {
            Error = "property object of '" + Fn + "' needs a 'kind'";
            return std::nullopt;
          }
          Kw = Kind->asString();
          if (const json::Value *Dom = P.get("domain")) {
            if (!Dom->isArray() || Dom->asArray().size() != 2) {
              Error = "property 'domain' of '" + Fn + "' must be [lo, hi)";
              return std::nullopt;
            }
            GuardLo = boundFromJSON(Dom->asArray()[0], Error);
            GuardHi = boundFromJSON(Dom->asArray()[1], Error);
            if (!GuardLo || !GuardHi)
              return std::nullopt;
          }
          for (const char *Key : {"segment", "upper", "ptr", "other"})
            if (const json::Value *O = P.get(Key)) {
              if (!O->isString()) {
                Error = std::string("property '") + Key + "' of '" + Fn +
                        "' must name an array";
                return std::nullopt;
              }
              Other = O->asString();
            }
          if (const json::Value *T = P.get("tier")) {
            if (!T->isString()) {
              Error = "property 'tier' of '" + Fn + "' must be a string";
              return std::nullopt;
            }
            std::optional<PropertyTier> PT = parsePropertyTier(T->asString());
            if (!PT) {
              Error = "unknown property tier '" + T->asString() + "' on '" +
                      Fn + "'";
              return std::nullopt;
            }
            Tier = *PT;
          }
        } else {
          Error = "property of '" + Fn + "' must be a string or object";
          return std::nullopt;
        }
        std::optional<PropertyKind> K = parsePropertyKind(Kw);
        if (!K) {
          Error = "unknown property kind '" + Kw + "' on '" + Fn + "'";
          return std::nullopt;
        }
        bool NeedsOther = *K == PropertyKind::PeriodicMonotonic ||
                          *K == PropertyKind::CoMonotonic ||
                          *K == PropertyKind::Triangular ||
                          *K == PropertyKind::TriangularEntriesLE ||
                          *K == PropertyKind::TriangularEntriesGE ||
                          *K == PropertyKind::TriangularEntriesLT ||
                          *K == PropertyKind::TriangularEntriesGT ||
                          *K == PropertyKind::SegmentPointer ||
                          *K == PropertyKind::SegmentStartIdentity;
        if (NeedsOther && Other.empty()) {
          Error = "property '" + Kw + "' on '" + Fn +
                  "' requires an auxiliary array "
                  "(segment/upper/ptr)";
          return std::nullopt;
        }
        IndexArrayProperty Prop{*K, Fn, Other, GuardLo, GuardHi, Tier};
        Out.add(std::move(Prop));
      }
    }
    DomainRangeDecl D;
    D.Fn = Fn;
    bool HasDR = false;
    if (const json::Value *Dom = Decl.get("domain")) {
      if (!Dom->isArray() || Dom->asArray().size() != 2) {
        Error = "'domain' of '" + Fn + "' must be [lo, hi]";
        return std::nullopt;
      }
      D.DomLo = boundFromJSON(Dom->asArray()[0], Error);
      D.DomHi = boundFromJSON(Dom->asArray()[1], Error);
      if (!D.DomLo || !D.DomHi)
        return std::nullopt;
      HasDR = true;
    }
    if (const json::Value *Ran = Decl.get("range")) {
      if (!Ran->isArray() || Ran->asArray().size() != 2) {
        Error = "'range' of '" + Fn + "' must be [lo, hi]";
        return std::nullopt;
      }
      D.RanLo = boundFromJSON(Ran->asArray()[0], Error);
      D.RanHi = boundFromJSON(Ran->asArray()[1], Error);
      if (!D.RanLo || !D.RanHi)
        return std::nullopt;
      HasDR = true;
    }
    if (HasDR)
      Out.addDomainRange(std::move(D));
  }
  return Out;
}

} // namespace ir
} // namespace sds
