//===- Flatten.cpp - Lower UF constraints to integer polyhedra -----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Flatten.h"

#include <algorithm>
#include <cassert>

namespace sds {
namespace ir {

Expr Flattened::rowToExpr(const std::vector<int64_t> &Row) const {
  assert(Row.size() == Cols.size() + 1 && "row width mismatch");
  Expr E(Row.back());
  for (size_t J = 0; J < Cols.size(); ++J)
    if (Row[J] != 0)
      E += Expr(Row[J], Cols[J]);
  return E;
}

Flattened flatten(const Conjunction &C,
                  const std::vector<std::string> &VarOrder) {
  Flattened F;

  auto AddColumn = [&](Atom A) {
    std::string Key = A.str();
    auto [It, Inserted] =
        F.ColIndex.emplace(Key, static_cast<unsigned>(F.Cols.size()));
    if (Inserted) {
      F.Names.push_back(Key);
      F.Cols.push_back(std::move(A));
    }
    return It->second;
  };

  // 1. Named variables in the requested order.
  for (const std::string &V : VarOrder)
    AddColumn(Atom::var(V));
  // 2. Any stray variables (parameters etc.) in appearance order.
  for (const std::string &V : C.collectVars())
    AddColumn(Atom::var(V));
  // 3. One column per structurally distinct UF call (nested included, so
  //    instantiation-produced constraints over inner calls line up too).
  for (const Atom &Call : C.collectCalls())
    AddColumn(Call);

  unsigned Width = static_cast<unsigned>(F.Cols.size());
  presburger::BasicSet Set(Width);

  const std::vector<Constraint> &Cs = C.constraints();
  for (unsigned CI = 0; CI < Cs.size(); ++CI) {
    const Constraint &Cons = Cs[CI];
    std::vector<int64_t> Row(Width + 1, 0);
    Row[Width] = Cons.E.constant();
    for (const Expr::Term &T : Cons.E.terms()) {
      auto It = F.ColIndex.find(T.A.str());
      assert(It != F.ColIndex.end() && "atom without a column");
      Row[It->second] += T.Coeff;
    }
    if (Cons.isEq()) {
      Set.addEquality(std::move(Row));
      F.EqRowConstraint.push_back(CI);
    } else {
      Set.addInequality(std::move(Row));
      F.IneqRowConstraint.push_back(CI);
    }
  }

  F.Set = std::move(Set);
  return F;
}

Flattened flatten(const SparseRelation &R) {
  std::vector<std::string> Order;
  Order.insert(Order.end(), R.InVars.begin(), R.InVars.end());
  Order.insert(Order.end(), R.OutVars.begin(), R.OutVars.end());
  Order.insert(Order.end(), R.ExistVars.begin(), R.ExistVars.end());
  for (const std::string &P : R.params())
    Order.push_back(P);
  return flatten(R.Conj, Order);
}

} // namespace ir
} // namespace sds
