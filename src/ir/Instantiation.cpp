//===- Instantiation.cpp - Assertion instantiation and unsat (§4.2) ------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Flatten.h"
#include "sds/ir/Simplify.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace sds {
namespace ir {

std::vector<Expr> argumentExpressionSet(const Conjunction &C) {
  std::vector<Expr> E;
  for (const Atom &Call : C.collectCalls())
    for (const Expr &Arg : Call.Args)
      E.push_back(Arg);
  std::sort(E.begin(), E.end());
  E.erase(std::unique(E.begin(), E.end()), E.end());
  return E;
}

namespace {

/// Is the constraint trivially false (constant expression violating it)?
bool constantFalse(const Constraint &C) {
  if (!C.E.isConstant())
    return false;
  return C.isEq() ? (C.E.constant() != 0) : (C.E.constant() < 0);
}

/// Negate a Geq constraint: !(e >= 0) is -e - 1 >= 0. Equalities negate to
/// a disjunction and are handled by the caller.
Constraint negateGeq(const Constraint &C) {
  assert(!C.isEq() && "cannot negate an equality into one constraint");
  return Constraint::geq(-C.E - Expr(1));
}

/// Enumerate all assertion instances over E^n, pruning vacuous ones.
/// `Seen` deduplicates across enumeration rounds.
void enumerateInstances(
                        const std::vector<UniversalAssertion> &Assertions,
                        const std::vector<Expr> &E,
                        const SimplifyOptions &Opts,
                        InstantiationStats &Stats,
                        std::set<std::string> &Seen,
                        std::vector<AssertionInstance> &Out) {
  std::map<std::string, Expr> Map; // reused across instances
  for (const UniversalAssertion &A : Assertions) {
    size_t N = A.QVars.size();
    // Odometer over E^N.
    std::vector<size_t> Idx(N, 0);
    if (E.empty() && N > 0)
      continue;
    while (true) {
      if (Stats.Generated >= Opts.MaxInstances)
        return;
      ++Stats.Generated;
      Map.clear();
      for (size_t I = 0; I < N; ++I)
        Map.emplace(A.QVars[I], E[Idx[I]]);
      AssertionInstance Inst;
      Inst.Antecedent = A.Antecedent.substitute(Map);
      Inst.Consequent = A.Consequent.substitute(Map);
      Inst.Label = A.Label;

      bool Vacuous = false;
      for (const Constraint &C2 : Inst.Antecedent.constraints())
        if (constantFalse(C2)) {
          Vacuous = true;
          break;
        }
      if (Vacuous) {
        ++Stats.Vacuous;
      } else {
        // Deduplicate structurally (many tuples yield the same instance).
        std::string Key =
            Inst.Antecedent.str() + "=>" + Inst.Consequent.str();
        if (Seen.insert(std::move(Key)).second)
          Out.push_back(std::move(Inst));
      }

      // Advance the odometer.
      size_t I = 0;
      for (; I < N; ++I) {
        if (++Idx[I] < E.size())
          break;
        Idx[I] = 0;
      }
      if (I == N || N == 0)
        break;
    }
  }
}

/// Ackermann-style functional-consistency guards: for every pair of calls
/// to the same function, `args1 == args2 => f(args1) == f(args2)`. These
/// carry no domain knowledge — they are what "Affine Consistency" needs in
/// Figure 7 — and they flow through the same two-phase machinery.
void collectFunctionalConsistencyInstances(
    const Conjunction &C, const SimplifyOptions &Opts,
    InstantiationStats &Stats, std::set<std::string> &Seen,
    std::vector<AssertionInstance> &Out) {
  std::vector<Atom> Calls = C.collectCalls();
  for (size_t I = 0; I < Calls.size(); ++I) {
    for (size_t J = I + 1; J < Calls.size(); ++J) {
      if (Stats.Generated >= Opts.MaxInstances)
        return;
      const Atom &A = Calls[I], &B = Calls[J];
      if (A.Name != B.Name || A.Args.size() != B.Args.size())
        continue;
      ++Stats.Generated;
      AssertionInstance Inst;
      Inst.Label = "functional_consistency(" + A.Name + ")";
      bool Vacuous = false;
      for (size_t K = 0; K < A.Args.size(); ++K) {
        Constraint Eq = Constraint::equals(A.Args[K], B.Args[K]);
        if (constantFalse(Eq)) {
          Vacuous = true;
          break;
        }
        Inst.Antecedent.add(std::move(Eq));
      }
      if (Vacuous) {
        ++Stats.Vacuous;
        continue;
      }
      Inst.Consequent.add(
          Constraint::equals(Expr(1, A), Expr(1, B)));
      std::string Key = Inst.Antecedent.str() + "=>" + Inst.Consequent.str();
      if (Seen.insert(std::move(Key)).second)
        Out.push_back(std::move(Inst));
    }
  }
}

} // namespace

Conjunction
instantiatePhase1(const Conjunction &C,
                  const std::vector<UniversalAssertion> &Assertions,
                  const SimplifyOptions &Opts, InstantiationStats *Stats,
                  std::vector<AssertionInstance> *Phase2) {
  InstantiationStats Local;
  InstantiationStats &S = Stats ? *Stats : Local;

  Conjunction Aug = C;
  std::set<std::string> SeenInstances;
  std::vector<AssertionInstance> Instances;
  std::vector<bool> Consumed;
  unsigned ProbesLeft = Opts.SemanticPhase1 ? Opts.SemanticProbeCap : 0;

  // Calls present in Aug, refreshed when consequents are appended: an
  // antecedent mentioning a call that occurs nowhere in Aug can never be
  // entailed, so we skip the (much costlier) semantic probe. The flattened
  // form of Aug is kept alongside so each probe only lowers one extra row
  // instead of re-flattening the whole conjunction.
  std::set<std::string> AugCallKeys;
  Flattened AugFlat;
  auto RefreshCalls = [&] {
    AugCallKeys.clear();
    for (const Atom &A : Aug.collectCalls())
      AugCallKeys.insert(A.str());
    AugFlat = flatten(Aug, {});
  };
  RefreshCalls();
  std::vector<Atom> CallScratch; // reused across probes
  auto CallsPresent = [&](const Constraint &P) {
    CallScratch.clear();
    P.E.collectCalls(CallScratch);
    for (const Atom &A : CallScratch)
      if (!AugCallKeys.count(A.str()))
        return false;
    return true;
  };

  // Semantic entailment of one constraint by Aug, via integer emptiness of
  // Aug && !P. Budgeted: each probe is one (cheap) LP/branch-and-bound
  // run with a small node budget (rational infeasibility decides almost
  // every probe). Positive results are cached forever (Aug only grows);
  // negative results are cached per pass.
  std::map<std::string, bool> ProbeCache;
  auto ImpliedSemantically = [&](const Constraint &P) {
    if (ProbesLeft == 0 || !CallsPresent(P))
      return false;
    std::string Key = P.str();
    auto Cached = ProbeCache.find(Key);
    if (Cached != ProbeCache.end())
      return Cached->second;
    unsigned Budget = std::min(Opts.EmptinessBudget, 8u);
    auto EmptyWith = [&](const Constraint &Neg) {
      // Lower !P onto Aug's column space; atoms are present (checked).
      unsigned Width = AugFlat.Set.numVars();
      std::vector<int64_t> Row(Width + 1, 0);
      Row[Width] = Neg.E.constant();
      for (const Expr::Term &T : Neg.E.terms()) {
        auto It = AugFlat.ColIndex.find(T.A.str());
        if (It == AugFlat.ColIndex.end())
          return false; // unseen variable: cannot be entailed
        Row[It->second] += T.Coeff;
      }
      presburger::BasicSet Probe = AugFlat.Set;
      Probe.addInequality(std::move(Row));
      return Probe.isEmpty(Budget) == presburger::Ternary::True;
    };
    bool Result = false;
    if (!P.isEq()) {
      --ProbesLeft;
      Result = EmptyWith(negateGeq(P));
    } else if (ProbesLeft >= 2) {
      ProbesLeft -= 2;
      Result = EmptyWith(Constraint::geq(P.E - Expr(1))) &&
               EmptyWith(Constraint::geq(-P.E - Expr(1)));
    }
    ProbeCache.emplace(std::move(Key), Result);
    return Result;
  };

  // Instantiation rounds: phase-1 additions introduce new call terms
  // (e.g. rowptr(col(k)+1) from a segment-pointer consequent), which seed
  // new argument expressions for Definition 1's E on the next round.
  const unsigned MaxRounds = std::max(1u, Opts.InstantiationRounds);
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
  size_t SizeBefore = Instances.size();
  std::vector<Expr> E = argumentExpressionSet(Aug);
  // Property instances come first: they carry the domain knowledge and are
  // the profitable targets for the (budgeted) semantic probes. The
  // functional-consistency guards are numerous and mostly matter for
  // phase 2, so they queue behind.
  std::vector<AssertionInstance> NewInstances;
  enumerateInstances(Assertions, E, Opts, S, SeenInstances, NewInstances);
  std::stable_sort(NewInstances.begin(), NewInstances.end(),
                   [](const AssertionInstance &A, const AssertionInstance &B) {
                     return A.Antecedent.constraints().size() <
                            B.Antecedent.constraints().size();
                   });
  collectFunctionalConsistencyInstances(Aug, Opts, S, SeenInstances,
                                        NewInstances);
  for (AssertionInstance &Inst : NewInstances)
    Instances.push_back(std::move(Inst));
  Consumed.resize(Instances.size(), false);
  if (Round > 0 && Instances.size() == SizeBefore)
    break; // nothing new to try

  for (unsigned Pass = 0; Pass < Opts.Phase1Passes; ++Pass) {
    bool Changed = false;
    // Aug grew last pass: negative probe answers may have flipped.
    for (auto It = ProbeCache.begin(); It != ProbeCache.end();) {
      if (!It->second)
        It = ProbeCache.erase(It);
      else
        ++It;
    }
    for (size_t I = 0; I < Instances.size(); ++I) {
      if (Consumed[I])
        continue;
      const AssertionInstance &Inst = Instances[I];

      // Useless if the consequent adds nothing.
      bool ConsImplied = true;
      for (const Constraint &Q : Inst.Consequent.constraints())
        if (!Aug.impliesSyntactically(Q)) {
          ConsImplied = false;
          break;
        }
      if (ConsImplied) {
        Consumed[I] = true;
        ++S.AlreadyImplied;
        continue;
      }

      // Forward rule: antecedent present => add consequent.
      bool AnteImplied = true;
      for (const Constraint &P : Inst.Antecedent.constraints())
        if (!Aug.impliesSyntactically(P) && !ImpliedSemantically(P)) {
          AnteImplied = false;
          break;
        }
      if (AnteImplied) {
        Aug.append(Inst.Consequent);
        RefreshCalls();
        Consumed[I] = true;
        ++S.Phase1Added;
        S.UsedLabels.push_back(Inst.Label);
        Changed = true;
        continue;
      }

      // Contrapositive rule (§6.2): single-constraint consequent q with
      // !q present lets us add !p for a single-constraint antecedent.
      if (Inst.Consequent.constraints().size() == 1 &&
          Inst.Antecedent.constraints().size() == 1) {
        const Constraint &Q = Inst.Consequent.constraints()[0];
        const Constraint &P = Inst.Antecedent.constraints()[0];
        if (!Q.isEq() && !P.isEq() &&
            Aug.impliesSyntactically(negateGeq(Q))) {
          Aug.add(negateGeq(P));
          Consumed[I] = true;
          ++S.Phase1Added;
          S.UsedLabels.push_back(Inst.Label + " [contrapositive]");
          Changed = true;
          continue;
        }
      }
    }
    if (!Changed)
      break;
  }
  } // rounds

  if (Phase2) {
    for (size_t I = 0; I < Instances.size(); ++I)
      if (!Consumed[I])
        Phase2->push_back(Instances[I]);
  }
  return Aug;
}

namespace {

/// Drop pieces that are already provably empty (cheap budget), keeping the
/// DNF small during phase 2.
void prunePieces(std::vector<Conjunction> &Pieces, const SparseRelation &R,
                 unsigned Budget) {
  std::vector<Conjunction> Kept;
  for (Conjunction &Piece : Pieces) {
    SparseRelation Tmp = R;
    Tmp.Conj = Piece;
    Flattened F = flatten(Tmp);
    if (F.Set.isEmpty(Budget) == presburger::Ternary::True)
      continue;
    Kept.push_back(std::move(Piece));
  }
  Pieces = std::move(Kept);
}

/// Conjoin a phase-2 instance (!A || C) onto a DNF piece list. Sets
/// `Overflowed` (and leaves `Pieces` untouched) when the result would
/// exceed the piece cap even after pruning empty pieces.
void applyDisjunctiveInstance(std::vector<Conjunction> &Pieces,
                              const AssertionInstance &Inst,
                              const SparseRelation &R,
                              const SimplifyOptions &Opts, bool &Overflowed) {
  std::vector<Conjunction> Next;
  for (const Conjunction &Piece : Pieces) {
    // Branch 1: the consequent holds.
    {
      Conjunction P = Piece;
      P.append(Inst.Consequent);
      Next.push_back(std::move(P));
    }
    // Branches 2..k: some antecedent constraint fails.
    for (const Constraint &A : Inst.Antecedent.constraints()) {
      if (A.isEq()) {
        Conjunction P1 = Piece;
        P1.add(Constraint::geq(A.E - Expr(1)));
        Next.push_back(std::move(P1));
        Conjunction P2 = Piece;
        P2.add(Constraint::geq(-A.E - Expr(1)));
        Next.push_back(std::move(P2));
      } else {
        Conjunction P = Piece;
        P.add(negateGeq(A));
        Next.push_back(std::move(P));
      }
    }
  }
  if (Next.size() > Opts.MaxPieces)
    prunePieces(Next, R, /*Budget=*/8);
  if (Next.size() > Opts.MaxPieces) {
    Overflowed = true;
    return; // caller keeps the previous piece list
  }
  Pieces = std::move(Next);
}

bool allPiecesProvenEmpty(const std::vector<Conjunction> &Pieces,
                          const SparseRelation &R,
                          const SimplifyOptions &Opts) {
  for (const Conjunction &Piece : Pieces) {
    SparseRelation Tmp = R;
    Tmp.Conj = Piece;
    Flattened F = flatten(Tmp);
    if (F.Set.isEmpty(Opts.EmptinessBudget) != presburger::Ternary::True)
      return false;
  }
  return true;
}

} // namespace

static bool provenUnsatWithAssertions(
    const SparseRelation &R, const std::vector<UniversalAssertion> &Assertions,
    const SimplifyOptions &Opts, InstantiationStats *Stats) {
  std::vector<AssertionInstance> Phase2;
  Conjunction Aug = instantiatePhase1(R.Conj, Assertions, Opts, Stats, &Phase2);

  std::vector<Conjunction> Pieces{Aug};
  if (allPiecesProvenEmpty(Pieces, R, Opts))
    return true;

  // Phase 2: add disjunction-introducing instances under the caps.
  unsigned Used = 0;
  for (const AssertionInstance &Inst : Phase2) {
    if (Used >= Opts.MaxPhase2Instances)
      break;
    bool Overflowed = false;
    applyDisjunctiveInstance(Pieces, Inst, R, Opts, Overflowed);
    if (Overflowed) {
      if (Stats)
        ++Stats->Dropped;
      continue;
    }
    ++Used;
    if (Stats) {
      ++Stats->Phase2Used;
      Stats->UsedLabels.push_back(Inst.Label + " [disjunctive]");
    }
    if (Pieces.empty())
      return true; // every disjunct pruned as empty
  }

  if (Used == 0)
    return false; // nothing new to try
  return allPiecesProvenEmpty(Pieces, R, Opts);
}

bool provenUnsat(const SparseRelation &R, const PropertySet &PS,
                 const SimplifyOptions &Opts, InstantiationStats *Stats) {
  return provenUnsatWithAssertions(R, PS.assertions(), Opts, Stats);
}

bool provenUnsatAffineOnly(const SparseRelation &R,
                           const SimplifyOptions &Opts,
                           InstantiationStats *Stats) {
  // No property assertions: functional-consistency guards only (these are
  // always sound, independent of any domain knowledge).
  return provenUnsatWithAssertions(R, {}, Opts, Stats);
}

} // namespace ir
} // namespace sds
