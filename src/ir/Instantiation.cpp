//===- Instantiation.cpp - Assertion instantiation and unsat (§4.2) ------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/ir/Flatten.h"
#include "sds/ir/Simplify.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <set>

namespace sds {
namespace ir {

std::vector<Expr> argumentExpressionSet(const Conjunction &C) {
  std::vector<Expr> E;
  for (const Atom &Call : C.collectCalls())
    for (const Expr &Arg : Call.Args)
      E.push_back(Arg);
  std::sort(E.begin(), E.end());
  E.erase(std::unique(E.begin(), E.end()), E.end());
  return E;
}

namespace {

/// Is the constraint trivially false (constant expression violating it)?
bool constantFalse(const Constraint &C) {
  if (!C.E.isConstant())
    return false;
  return C.isEq() ? (C.E.constant() != 0) : (C.E.constant() < 0);
}

/// Negate a Geq constraint: !(e >= 0) is -e - 1 >= 0. Equalities negate to
/// a disjunction and are handled by the caller.
Constraint negateGeq(const Constraint &C) {
  assert(!C.isEq() && "cannot negate an equality into one constraint");
  return Constraint::geq(-C.E - Expr(1));
}

/// Does constraint `A` alone imply constraint `B`? Syntactic and sound:
/// the linear parts must coincide (up to sign when `A` is an equality)
/// with a compatible constant.
bool constraintImplies(const Constraint &A, const Constraint &B) {
  if (B.isEq()) {
    if (!A.isEq())
      return false;
    Expr D = B.E - A.E;
    if (D.isConstant() && D.constant() == 0)
      return true;
    Expr S = B.E + A.E;
    return S.isConstant() && S.constant() == 0;
  }
  Expr D = B.E - A.E;
  if (D.isConstant() && D.constant() >= 0)
    return true;
  if (A.isEq()) {
    Expr S = B.E + A.E;
    if (S.isConstant() && S.constant() >= 0)
      return true;
  }
  return false;
}

/// Append the labels justifying constraint `C` to `Out`. Base-relation
/// constraints contribute nothing; a constraint the ledger has never seen
/// contributes the unattributed sentinel (forcing the coarse fallback).
void appendOrigin(const OriginMap &O, const Constraint &C,
                  std::vector<std::string> &Out) {
  std::string Key = OriginMap::keyOf(C);
  if (O.BaseKeys.count(Key))
    return;
  auto It = O.ConstraintOrigins.find(Key);
  if (It == O.ConstraintOrigins.end()) {
    Out.push_back(OriginMap::unattributed());
    return;
  }
  Out.insert(Out.end(), It->second.begin(), It->second.end());
}

/// Labels supporting an antecedent constraint `P` that `Aug` entails
/// syntactically. `P` itself may be absent: impliesSyntactically also
/// accepts a strictly stronger bound or a forcing equality, so fall back
/// to scanning for a single implying constraint and charge its origin.
void appendSyntacticSupport(const OriginMap &O, const Conjunction &Aug,
                            const Constraint &P,
                            std::vector<std::string> &Out) {
  if (P.E.isConstant())
    return; // constant-true: no support needed
  std::string Key = OriginMap::keyOf(P);
  if (O.BaseKeys.count(Key))
    return;
  auto It = O.ConstraintOrigins.find(Key);
  if (It != O.ConstraintOrigins.end()) {
    Out.insert(Out.end(), It->second.begin(), It->second.end());
    return;
  }
  const std::vector<std::string> *Best = nullptr;
  for (const Constraint &C2 : Aug.constraints()) {
    if (!constraintImplies(C2, P))
      continue;
    std::string K2 = OriginMap::keyOf(C2);
    if (O.BaseKeys.count(K2))
      return; // implied outright by the base relation
    auto It2 = O.ConstraintOrigins.find(K2);
    if (It2 != O.ConstraintOrigins.end() &&
        (!Best || It2->second.size() < Best->size()))
      Best = &It2->second;
  }
  if (Best) {
    Out.insert(Out.end(), Best->begin(), Best->end());
    return;
  }
  Out.push_back(OriginMap::unattributed());
}

/// One semantic-probe verdict plus the labels its proof cited.
struct ProbeResult {
  bool Implied = false;
  std::vector<std::string> Support;
};

/// Citation accumulator threaded through the piece-emptiness checks.
struct CoreCollector {
  const OriginMap *Origins = nullptr;
  std::vector<std::string> Labels; ///< labels cited so far (with repeats)
  bool Fine = true;                ///< row-level attribution intact
};

/// Record the citations of one proven-empty piece: map the integer-level
/// core rows back through the flattener's row provenance onto the piece's
/// constraints, then onto assertion labels.
void notePieceEmpty(CoreCollector *CC, const Flattened &F,
                    const Conjunction &Piece,
                    const presburger::EmptinessCore &EC) {
  if (!CC)
    return;
  if (!EC.Valid) {
    CC->Fine = false;
    return;
  }
  const std::vector<Constraint> &Cs = Piece.constraints();
  size_t NEq = F.EqRowConstraint.size();
  for (uint32_t RI : EC.Rows) {
    unsigned CI = RI < NEq ? F.EqRowConstraint[RI]
                           : F.IneqRowConstraint[RI - NEq];
    appendOrigin(*CC->Origins, Cs[CI], CC->Labels);
  }
}

/// Enumerate all assertion instances over E^n, pruning vacuous ones.
/// `Seen` deduplicates across enumeration rounds.
void enumerateInstances(
                        const std::vector<UniversalAssertion> &Assertions,
                        const std::vector<Expr> &E,
                        const SimplifyOptions &Opts,
                        InstantiationStats &Stats,
                        std::set<std::string> &Seen,
                        std::vector<AssertionInstance> &Out) {
  std::map<std::string, Expr> Map; // reused across instances
  for (const UniversalAssertion &A : Assertions) {
    size_t N = A.QVars.size();
    // Odometer over E^N.
    std::vector<size_t> Idx(N, 0);
    if (E.empty() && N > 0)
      continue;
    while (true) {
      if (Stats.Generated >= Opts.MaxInstances)
        return;
      ++Stats.Generated;
      Map.clear();
      for (size_t I = 0; I < N; ++I)
        Map.emplace(A.QVars[I], E[Idx[I]]);
      AssertionInstance Inst;
      Inst.Antecedent = A.Antecedent.substitute(Map);
      Inst.Consequent = A.Consequent.substitute(Map);
      Inst.Label = A.Label;

      bool Vacuous = false;
      for (const Constraint &C2 : Inst.Antecedent.constraints())
        if (constantFalse(C2)) {
          Vacuous = true;
          break;
        }
      if (Vacuous) {
        ++Stats.Vacuous;
      } else {
        // Deduplicate structurally (many tuples yield the same instance).
        std::string Key =
            Inst.Antecedent.str() + "=>" + Inst.Consequent.str();
        if (Seen.insert(std::move(Key)).second)
          Out.push_back(std::move(Inst));
      }

      // Advance the odometer.
      size_t I = 0;
      for (; I < N; ++I) {
        if (++Idx[I] < E.size())
          break;
        Idx[I] = 0;
      }
      if (I == N || N == 0)
        break;
    }
  }
}

/// Ackermann-style functional-consistency guards: for every pair of calls
/// to the same function, `args1 == args2 => f(args1) == f(args2)`. These
/// carry no domain knowledge — they are what "Affine Consistency" needs in
/// Figure 7 — and they flow through the same two-phase machinery.
void collectFunctionalConsistencyInstances(
    const Conjunction &C, const SimplifyOptions &Opts,
    InstantiationStats &Stats, std::set<std::string> &Seen,
    std::vector<AssertionInstance> &Out) {
  std::vector<Atom> Calls = C.collectCalls();
  for (size_t I = 0; I < Calls.size(); ++I) {
    for (size_t J = I + 1; J < Calls.size(); ++J) {
      if (Stats.Generated >= Opts.MaxInstances)
        return;
      const Atom &A = Calls[I], &B = Calls[J];
      if (A.Name != B.Name || A.Args.size() != B.Args.size())
        continue;
      ++Stats.Generated;
      AssertionInstance Inst;
      Inst.Label = "functional_consistency(" + A.Name + ")";
      bool Vacuous = false;
      for (size_t K = 0; K < A.Args.size(); ++K) {
        Constraint Eq = Constraint::equals(A.Args[K], B.Args[K]);
        if (constantFalse(Eq)) {
          Vacuous = true;
          break;
        }
        Inst.Antecedent.add(std::move(Eq));
      }
      if (Vacuous) {
        ++Stats.Vacuous;
        continue;
      }
      Inst.Consequent.add(
          Constraint::equals(Expr(1, A), Expr(1, B)));
      std::string Key = Inst.Antecedent.str() + "=>" + Inst.Consequent.str();
      if (Seen.insert(std::move(Key)).second)
        Out.push_back(std::move(Inst));
    }
  }
}

} // namespace

Conjunction
instantiatePhase1(const Conjunction &C,
                  const std::vector<UniversalAssertion> &Assertions,
                  const SimplifyOptions &Opts, InstantiationStats *Stats,
                  std::vector<AssertionInstance> *Phase2,
                  OriginMap *Origins) {
  InstantiationStats Local;
  InstantiationStats &S = Stats ? *Stats : Local;

  Conjunction Aug = C;
  if (Origins) {
    Origins->BaseKeys.clear();
    for (const Constraint &C0 : Aug.constraints())
      Origins->BaseKeys.insert(OriginMap::keyOf(C0));
  }
  std::set<std::string> SeenInstances;
  std::vector<AssertionInstance> Instances;
  std::vector<bool> Consumed;
  unsigned ProbesLeft = Opts.SemanticPhase1 ? Opts.SemanticProbeCap : 0;

  // Calls present in Aug, refreshed when consequents are appended: an
  // antecedent mentioning a call that occurs nowhere in Aug can never be
  // entailed, so we skip the (much costlier) semantic probe. The flattened
  // form of Aug is kept alongside so each probe only lowers one extra row
  // instead of re-flattening the whole conjunction.
  std::set<std::string> AugCallKeys;
  Flattened AugFlat;
  auto RefreshCalls = [&] {
    AugCallKeys.clear();
    for (const Atom &A : Aug.collectCalls())
      AugCallKeys.insert(A.str());
    AugFlat = flatten(Aug, {});
  };
  RefreshCalls();
  std::vector<Atom> CallScratch; // reused across probes
  auto CallsPresent = [&](const Constraint &P) {
    CallScratch.clear();
    P.E.collectCalls(CallScratch);
    for (const Atom &A : CallScratch)
      if (!AugCallKeys.count(A.str()))
        return false;
    return true;
  };

  // Semantic entailment of one constraint by Aug, via integer emptiness of
  // Aug && !P. Budgeted: each probe is one (cheap) LP/branch-and-bound
  // run with a small node budget (rational infeasibility decides almost
  // every probe). Positive results are cached forever (Aug only grows);
  // negative results are cached per pass.
  std::map<std::string, ProbeResult> ProbeCache;
  // Map a probe's integer-level emptiness core back onto Aug's constraints
  // (the probe set is AugFlat.Set plus one trailing inequality — the
  // negated goal, which is the proof's reductio and needs no label).
  auto ProbeSupport = [&](const presburger::EmptinessCore &EC,
                          std::vector<std::string> &Out) {
    if (!EC.Valid) {
      Out.push_back(OriginMap::unattributed());
      return;
    }
    size_t NEq = AugFlat.EqRowConstraint.size();
    const std::vector<Constraint> &Cs = Aug.constraints();
    for (uint32_t RI : EC.Rows) {
      if (RI < NEq) {
        appendOrigin(*Origins, Cs[AugFlat.EqRowConstraint[RI]], Out);
        continue;
      }
      size_t II = RI - NEq;
      if (II >= AugFlat.IneqRowConstraint.size())
        continue; // the appended negated goal
      appendOrigin(*Origins, Cs[AugFlat.IneqRowConstraint[II]], Out);
    }
  };
  auto ImpliedSemantically = [&](const Constraint &P) {
    if (ProbesLeft == 0 || !CallsPresent(P))
      return false;
    std::string Key = P.str();
    auto Cached = ProbeCache.find(Key);
    if (Cached != ProbeCache.end())
      return Cached->second.Implied;
    unsigned Budget = std::min(Opts.EmptinessBudget, 8u);
    ProbeResult PR;
    auto EmptyWith = [&](const Constraint &Neg) {
      // Lower !P onto Aug's column space; atoms are present (checked).
      unsigned Width = AugFlat.Set.numVars();
      std::vector<int64_t> Row(Width + 1, 0);
      Row[Width] = Neg.E.constant();
      for (const Expr::Term &T : Neg.E.terms()) {
        auto It = AugFlat.ColIndex.find(T.A.str());
        if (It == AugFlat.ColIndex.end())
          return false; // unseen variable: cannot be entailed
        Row[It->second] += T.Coeff;
      }
      presburger::BasicSet Probe = AugFlat.Set;
      Probe.addInequality(std::move(Row));
      if (!Origins)
        return Probe.isEmpty(Budget) == presburger::Ternary::True;
      presburger::EmptinessCore EC;
      if (Probe.isEmpty(Budget, &EC) != presburger::Ternary::True)
        return false;
      ProbeSupport(EC, PR.Support);
      return true;
    };
    if (!P.isEq()) {
      --ProbesLeft;
      PR.Implied = EmptyWith(negateGeq(P));
    } else if (ProbesLeft >= 2) {
      ProbesLeft -= 2;
      PR.Implied = EmptyWith(Constraint::geq(P.E - Expr(1))) &&
                   EmptyWith(Constraint::geq(-P.E - Expr(1)));
    }
    if (!PR.Implied)
      PR.Support.clear();
    bool Result = PR.Implied;
    ProbeCache.emplace(std::move(Key), std::move(PR));
    return Result;
  };

  // Instantiation rounds: phase-1 additions introduce new call terms
  // (e.g. rowptr(col(k)+1) from a segment-pointer consequent), which seed
  // new argument expressions for Definition 1's E on the next round.
  const unsigned MaxRounds = std::max(1u, Opts.InstantiationRounds);
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
  size_t SizeBefore = Instances.size();
  std::vector<Expr> E = argumentExpressionSet(Aug);
  // Property instances come first: they carry the domain knowledge and are
  // the profitable targets for the (budgeted) semantic probes. The
  // functional-consistency guards are numerous and mostly matter for
  // phase 2, so they queue behind.
  std::vector<AssertionInstance> NewInstances;
  enumerateInstances(Assertions, E, Opts, S, SeenInstances, NewInstances);
  std::stable_sort(NewInstances.begin(), NewInstances.end(),
                   [](const AssertionInstance &A, const AssertionInstance &B) {
                     return A.Antecedent.constraints().size() <
                            B.Antecedent.constraints().size();
                   });
  collectFunctionalConsistencyInstances(Aug, Opts, S, SeenInstances,
                                        NewInstances);
  for (AssertionInstance &Inst : NewInstances)
    Instances.push_back(std::move(Inst));
  Consumed.resize(Instances.size(), false);
  if (Round > 0 && Instances.size() == SizeBefore)
    break; // nothing new to try

  for (unsigned Pass = 0; Pass < Opts.Phase1Passes; ++Pass) {
    bool Changed = false;
    // Aug grew last pass: negative probe answers may have flipped.
    for (auto It = ProbeCache.begin(); It != ProbeCache.end();) {
      if (!It->second.Implied)
        It = ProbeCache.erase(It);
      else
        ++It;
    }
    for (size_t I = 0; I < Instances.size(); ++I) {
      if (Consumed[I])
        continue;
      const AssertionInstance &Inst = Instances[I];

      // Useless if the consequent adds nothing.
      bool ConsImplied = true;
      for (const Constraint &Q : Inst.Consequent.constraints())
        if (!Aug.impliesSyntactically(Q)) {
          ConsImplied = false;
          break;
        }
      if (ConsImplied) {
        Consumed[I] = true;
        ++S.AlreadyImplied;
        continue;
      }

      // Forward rule: antecedent present => add consequent.
      bool AnteImplied = true;
      for (const Constraint &P : Inst.Antecedent.constraints())
        if (!Aug.impliesSyntactically(P) && !ImpliedSemantically(P)) {
          AnteImplied = false;
          break;
        }
      if (AnteImplied) {
        if (Origins) {
          // Origin of each consequent constraint: this instance plus the
          // (transitively flattened) supports of its antecedent.
          std::vector<std::string> Labels{Inst.Label};
          for (const Constraint &P : Inst.Antecedent.constraints()) {
            if (P.E.isConstant())
              continue;
            if (Aug.impliesSyntactically(P)) {
              appendSyntacticSupport(*Origins, Aug, P, Labels);
            } else {
              auto It = ProbeCache.find(P.str());
              if (It != ProbeCache.end() && It->second.Implied)
                Labels.insert(Labels.end(), It->second.Support.begin(),
                              It->second.Support.end());
              else
                Labels.push_back(OriginMap::unattributed());
            }
          }
          std::sort(Labels.begin(), Labels.end());
          Labels.erase(std::unique(Labels.begin(), Labels.end()),
                       Labels.end());
          for (const Constraint &Q : Inst.Consequent.constraints()) {
            std::string Key = OriginMap::keyOf(Q);
            if (!Origins->BaseKeys.count(Key))
              Origins->ConstraintOrigins.emplace(std::move(Key), Labels);
          }
        }
        Aug.append(Inst.Consequent);
        RefreshCalls();
        Consumed[I] = true;
        ++S.Phase1Added;
        S.UsedLabels.push_back(Inst.Label);
        Changed = true;
        continue;
      }

      // Contrapositive rule (§6.2): single-constraint consequent q with
      // !q present lets us add !p for a single-constraint antecedent.
      if (Inst.Consequent.constraints().size() == 1 &&
          Inst.Antecedent.constraints().size() == 1) {
        const Constraint &Q = Inst.Consequent.constraints()[0];
        const Constraint &P = Inst.Antecedent.constraints()[0];
        if (!Q.isEq() && !P.isEq() &&
            Aug.impliesSyntactically(negateGeq(Q))) {
          if (Origins) {
            std::vector<std::string> Labels{Inst.Label + " [contrapositive]"};
            appendSyntacticSupport(*Origins, Aug, negateGeq(Q), Labels);
            std::sort(Labels.begin(), Labels.end());
            Labels.erase(std::unique(Labels.begin(), Labels.end()),
                         Labels.end());
            std::string Key = OriginMap::keyOf(negateGeq(P));
            if (!Origins->BaseKeys.count(Key))
              Origins->ConstraintOrigins.emplace(std::move(Key),
                                                 std::move(Labels));
          }
          Aug.add(negateGeq(P));
          Consumed[I] = true;
          ++S.Phase1Added;
          S.UsedLabels.push_back(Inst.Label + " [contrapositive]");
          Changed = true;
          continue;
        }
      }
    }
    if (!Changed)
      break;
  }
  } // rounds

  if (Phase2) {
    for (size_t I = 0; I < Instances.size(); ++I)
      if (!Consumed[I])
        Phase2->push_back(Instances[I]);
  }
  return Aug;
}

namespace {

/// Drop pieces that are already provably empty (cheap budget), keeping the
/// DNF small during phase 2. Pruned pieces are part of the final proof, so
/// their citations are recorded in `CC` like any other piece's.
void prunePieces(std::vector<Conjunction> &Pieces, const SparseRelation &R,
                 unsigned Budget, CoreCollector *CC) {
  std::vector<Conjunction> Kept;
  for (Conjunction &Piece : Pieces) {
    SparseRelation Tmp = R;
    Tmp.Conj = Piece;
    Flattened F = flatten(Tmp);
    presburger::EmptinessCore EC;
    if (F.Set.isEmpty(Budget, CC ? &EC : nullptr) ==
        presburger::Ternary::True) {
      notePieceEmpty(CC, F, Piece, EC);
      continue;
    }
    Kept.push_back(std::move(Piece));
  }
  Pieces = std::move(Kept);
}

/// Conjoin a phase-2 instance (!A || C) onto a DNF piece list. Sets
/// `Overflowed` (and leaves `Pieces` untouched) when the result would
/// exceed the piece cap even after pruning empty pieces.
void applyDisjunctiveInstance(std::vector<Conjunction> &Pieces,
                              const AssertionInstance &Inst,
                              const SparseRelation &R,
                              const SimplifyOptions &Opts, bool &Overflowed,
                              CoreCollector *CC) {
  std::vector<Conjunction> Next;
  for (const Conjunction &Piece : Pieces) {
    // Branch 1: the consequent holds.
    {
      Conjunction P = Piece;
      P.append(Inst.Consequent);
      Next.push_back(std::move(P));
    }
    // Branches 2..k: some antecedent constraint fails.
    for (const Constraint &A : Inst.Antecedent.constraints()) {
      if (A.isEq()) {
        Conjunction P1 = Piece;
        P1.add(Constraint::geq(A.E - Expr(1)));
        Next.push_back(std::move(P1));
        Conjunction P2 = Piece;
        P2.add(Constraint::geq(-A.E - Expr(1)));
        Next.push_back(std::move(P2));
      } else {
        Conjunction P = Piece;
        P.add(negateGeq(A));
        Next.push_back(std::move(P));
      }
    }
  }
  if (Next.size() > Opts.MaxPieces)
    prunePieces(Next, R, /*Budget=*/8, CC);
  if (Next.size() > Opts.MaxPieces) {
    Overflowed = true;
    return; // caller keeps the previous piece list
  }
  Pieces = std::move(Next);
}

bool allPiecesProvenEmpty(const std::vector<Conjunction> &Pieces,
                          const SparseRelation &R,
                          const SimplifyOptions &Opts, CoreCollector *CC) {
  for (const Conjunction &Piece : Pieces) {
    SparseRelation Tmp = R;
    Tmp.Conj = Piece;
    Flattened F = flatten(Tmp);
    presburger::EmptinessCore EC;
    if (F.Set.isEmpty(Opts.EmptinessBudget, CC ? &EC : nullptr) !=
        presburger::Ternary::True)
      return false;
    notePieceEmpty(CC, F, Piece, EC);
  }
  return true;
}

} // namespace

static bool provenUnsatWithAssertions(
    const SparseRelation &R, const std::vector<UniversalAssertion> &Assertions,
    const SimplifyOptions &Opts, InstantiationStats *Stats, UnsatCore *Core) {
  InstantiationStats Local;
  InstantiationStats &S = Stats ? *Stats : Local;
  size_t LabelsBefore = S.UsedLabels.size();

  OriginMap OriginsStorage;
  OriginMap *Origins = Core ? &OriginsStorage : nullptr;
  CoreCollector CCStorage;
  CCStorage.Origins = Origins;
  CoreCollector *CC = Core ? &CCStorage : nullptr;

  std::vector<AssertionInstance> Phase2;
  Conjunction Aug = instantiatePhase1(R.Conj, Assertions, Opts, &S, &Phase2,
                                      Origins);

  // Assemble the final core: the fine row-level citations when every piece
  // attributed cleanly, otherwise the coarse applied-instance trail (which
  // is always a sound superset — every derived row traces back to some
  // applied instance).
  auto Finish = [&](bool Proven) {
    if (!Core)
      return Proven;
    *Core = UnsatCore{};
    if (!Proven)
      return Proven;
    bool Fine = CC->Fine;
    for (const std::string &L : CC->Labels)
      if (L == OriginMap::unattributed())
        Fine = false;
    std::vector<std::string> Labels;
    if (Fine) {
      Labels = std::move(CC->Labels);
      Core->FromFarkas = true;
    } else {
      Labels.assign(S.UsedLabels.begin() + LabelsBefore, S.UsedLabels.end());
      Core->FromFarkas = false;
    }
    std::sort(Labels.begin(), Labels.end());
    Labels.erase(std::unique(Labels.begin(), Labels.end()), Labels.end());
    Core->Assertions = std::move(Labels);
    return Proven;
  };

  std::vector<Conjunction> Pieces{Aug};
  if (allPiecesProvenEmpty(Pieces, R, Opts, CC))
    return Finish(true);

  // Phase 2: add disjunction-introducing instances under the caps.
  unsigned Used = 0;
  for (const AssertionInstance &Inst : Phase2) {
    if (Used >= Opts.MaxPhase2Instances)
      break;
    if (Origins) {
      // Branch literals are case assumptions: the split's own label pays
      // for their exhaustiveness, nothing else is needed.
      std::vector<std::string> L{Inst.Label + " [disjunctive]"};
      auto RegisterBranch = [&](const Constraint &BC) {
        std::string Key = OriginMap::keyOf(BC);
        if (!Origins->BaseKeys.count(Key))
          Origins->ConstraintOrigins.emplace(std::move(Key), L);
      };
      for (const Constraint &Q : Inst.Consequent.constraints())
        RegisterBranch(Q);
      for (const Constraint &A : Inst.Antecedent.constraints()) {
        if (A.isEq()) {
          RegisterBranch(Constraint::geq(A.E - Expr(1)));
          RegisterBranch(Constraint::geq(-A.E - Expr(1)));
        } else {
          RegisterBranch(negateGeq(A));
        }
      }
    }
    bool Overflowed = false;
    applyDisjunctiveInstance(Pieces, Inst, R, Opts, Overflowed, CC);
    if (Overflowed) {
      ++S.Dropped;
      continue;
    }
    ++Used;
    ++S.Phase2Used;
    S.UsedLabels.push_back(Inst.Label + " [disjunctive]");
    // Every applied split must be cited: the pieces only cover the whole
    // space because the split's instance (!A || C) holds.
    if (CC)
      CC->Labels.push_back(Inst.Label + " [disjunctive]");
    if (Pieces.empty())
      return Finish(true); // every disjunct pruned as empty
  }

  if (Used == 0)
    return Finish(false); // nothing new to try
  return Finish(allPiecesProvenEmpty(Pieces, R, Opts, CC));
}

namespace {

/// A label's property base: everything before the application-mode suffix
/// (" [contrapositive]" etc.) — the granularity at which the minimizer
/// drops assertions and at which guards validate them.
std::string labelBase(const std::string &L) {
  size_t P = L.find(" [");
  return P == std::string::npos ? L : L.substr(0, P);
}

/// Greedy drop-and-recheck core minimization at property-base granularity:
/// re-prove without one base at a time (restricted to the bases still
/// believed necessary) and keep any smaller proof found. Each recheck
/// costs a full proof, so the loop is budget-capped.
void minimizeCore(const SparseRelation &R,
                  const std::vector<UniversalAssertion> &All,
                  const SimplifyOptions &Opts, UnsatCore &Core) {
  SimplifyOptions Sub = Opts;
  Sub.CoreMinimizeBudget = 0;
  std::set<std::string> AssertLabels;
  for (const UniversalAssertion &A : All)
    AssertLabels.insert(A.Label);
  std::set<std::string> Live;
  for (const std::string &L : Core.Assertions) {
    std::string B = labelBase(L);
    if (AssertLabels.count(B))
      Live.insert(B);
  }
  std::vector<std::string> Candidates(Live.begin(), Live.end());
  unsigned Budget = Opts.CoreMinimizeBudget;
  bool Complete = true;
  for (const std::string &B : Candidates) {
    if (!Live.count(B))
      continue; // already shed by an earlier successful recheck
    if (Budget == 0) {
      Complete = false;
      break;
    }
    --Budget;
    std::vector<UniversalAssertion> Subset;
    for (const UniversalAssertion &A : All)
      if (A.Label != B && Live.count(A.Label))
        Subset.push_back(A);
    UnsatCore Trial;
    if (!provenUnsatWithAssertions(R, Subset, Sub, nullptr, &Trial))
      continue;
    Core = std::move(Trial);
    Live.clear();
    for (const std::string &L : Core.Assertions) {
      std::string NB = labelBase(L);
      if (AssertLabels.count(NB))
        Live.insert(NB);
    }
  }
  Core.Minimized = Complete;
}

} // namespace

bool provenUnsat(const SparseRelation &R, const PropertySet &PS,
                 const SimplifyOptions &Opts, InstantiationStats *Stats,
                 UnsatCore *Core) {
  bool Proven = provenUnsatWithAssertions(R, PS.assertions(), Opts, Stats,
                                          Core);
  if (Proven && Core && Opts.CoreMinimizeBudget > 0)
    minimizeCore(R, PS.assertions(), Opts, *Core);
  return Proven;
}

bool provenUnsatAffineOnly(const SparseRelation &R,
                           const SimplifyOptions &Opts,
                           InstantiationStats *Stats, UnsatCore *Core) {
  // No property assertions: functional-consistency guards only (these are
  // always sound, independent of any domain knowledge), so any core here
  // needs no runtime validation at all.
  return provenUnsatWithAssertions(R, {}, Opts, Stats, Core);
}

} // namespace ir
} // namespace sds
