//===- Engine.cpp - In-process compile-once/run-many facade ---------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/engine/Engine.h"

#include "sds/infer/Infer.h"
#include "sds/obs/FlightRecorder.h"
#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"

#include <cstdio>
#include <list>
#include <map>
#include <tuple>

namespace sds {
namespace engine {

namespace {

inline void fnvBytes(uint64_t &H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
}

inline void fnvStr(uint64_t &H, const std::string &S) {
  fnvBytes(H, S.data(), S.size());
  fnvBytes(H, "\0", 1); // terminator so "ab","c" != "a","bc"
}

inline void fnvInt(uint64_t &H, int64_t V) { fnvBytes(H, &V, sizeof(V)); }

std::string fpHex(uint64_t Fp) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Fp));
  return Buf;
}

} // namespace

uint64_t fingerprintEnvironment(const codegen::UFEnvironment &Env) {
  uint64_t H = 1469598103934665603ull;
  for (const auto &[Name, Span] : Env.Spans) {
    fnvStr(H, Name);
    fnvInt(H, static_cast<int64_t>(Span->size()));
    if (!Span->empty())
      fnvBytes(H, Span->data(), Span->size() * sizeof((*Span)[0]));
  }
  for (const auto &[Name, Fn] : Env.Arrays) {
    (void)Fn;
    // Function-only bindings (no span) contribute their name; the closure
    // itself is opaque to the cache.
    if (!Env.Spans.count(Name))
      fnvStr(H, Name);
  }
  for (const auto &[Name, V] : Env.Params) {
    fnvStr(H, Name);
    fnvInt(H, V);
  }
  return H;
}

struct Engine::Impl {
  using MatrixKey = std::tuple<std::string, uint64_t, int64_t>;

  /// Matrix-tier entry: the plan, its position in the LRU list, and when
  /// it was inserted (for the eviction event's age tag).
  struct PlanEntry {
    std::shared_ptr<const MatrixPlan> Plan;
    std::list<MatrixKey>::iterator LruIt;
    uint64_t InsertNs = 0;
  };

  EngineOptions Opts;
  std::string OptionsKey; ///< AnalysisOptions::key() of Opts.Analysis
  /// OptionsKey with the speculation dimension forced on — what every
  /// speculated entry keys under, engine-level or per-request.
  std::string SpecOptionsKey;

  mutable std::mutex Mu;
  std::map<std::string, std::shared_ptr<const artifact::CompiledKernel>>
      Kernels;
  std::map<MatrixKey, PlanEntry> Plans;
  std::list<MatrixKey> Lru; ///< front = most recently used
  EngineStats Stats;
  std::vector<uint64_t> GaugeHandles; ///< live EngineStats gauge sources

  /// Kernel-tier key. A speculated artifact is env-dependent, so its key
  /// carries the speculated options char and the inference fingerprint —
  /// two environments with the same confirmed profile share one entry, a
  /// differing profile misses, and declared-only entries never collide.
  std::string kernelKey(const std::string &Name, uint64_t InferFp = 0) const {
    if (InferFp)
      return Name + "|" + SpecOptionsKey + "|" + fpHex(InferFp);
    return Name + "|" + OptionsKey;
  }

  /// Matrix-tier key prefix: the environment fingerprint in the full key
  /// pins the inference profile (a pure function of the environment), so
  /// speculated plans only need the options-char distinction here.
  std::string matrixPrefix(const std::string &Name, bool Spec) const {
    return Name + "|" + (Spec ? SpecOptionsKey : OptionsKey) + "|" +
           Opts.Schedule.key();
  }

  uint64_t statField(uint64_t EngineStats::*F) const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Stats.*F;
  }

  /// Move a hit entry to the LRU front. Caller holds Mu.
  void touch(PlanEntry &E) { Lru.splice(Lru.begin(), Lru, E.LruIt); }

  /// Evict least-recently-used plans down to capacity. Caller holds Mu.
  void evictToCapacity() {
    static obs::Counter &EvictedC = obs::counter("engine.plan_evicted");
    while (Plans.size() > Opts.MaxMatrixPlans && !Lru.empty()) {
      const MatrixKey &Victim = Lru.back();
      auto It = Plans.find(Victim);
      double AgeMs =
          It == Plans.end()
              ? 0
              : (obs::nowNs() - It->second.InsertNs) * 1e-6;
      obs::flightRecord(obs::FlightSeverity::Info, "engine",
                        "matrix plan evicted (LRU capacity)",
                        {{"kernel", std::get<0>(Victim)},
                         {"age_ms", std::to_string(AgeMs)},
                         {"capacity", std::to_string(Opts.MaxMatrixPlans)}});
      if (It != Plans.end())
        Plans.erase(It);
      Lru.pop_back();
      ++Stats.MatrixEvicted;
      EvictedC.add();
    }
  }
};

Engine::Engine(EngineOptions Opts) : I(std::make_unique<Impl>()) {
  I->Opts = std::move(Opts);
  I->OptionsKey = artifact::AnalysisOptions::of(I->Opts.Analysis).key();
  deps::PipelineOptions SpecPO = I->Opts.Analysis;
  SpecPO.Speculate = true;
  I->SpecOptionsKey = artifact::AnalysisOptions::of(SpecPO).key();
  // Surface this engine's always-on EngineStats as live gauges; same-name
  // sources from multiple engines sum in the snapshot.
  const std::pair<const char *, uint64_t EngineStats::*> Fields[] = {
      {"engine.kernel_warm", &EngineStats::KernelWarm},
      {"engine.kernel_cold", &EngineStats::KernelCold},
      {"engine.kernel_loaded", &EngineStats::KernelLoaded},
      {"engine.kernel_speculated", &EngineStats::KernelSpeculated},
      {"engine.matrix_warm", &EngineStats::MatrixWarm},
      {"engine.matrix_cold", &EngineStats::MatrixCold},
      {"engine.matrix_evicted", &EngineStats::MatrixEvicted},
  };
  Impl *Raw = I.get();
  for (const auto &[Name, Field] : Fields)
    I->GaugeHandles.push_back(obs::registerGaugeSource(
        Name, [Raw, F = Field] {
          return static_cast<double>(Raw->statField(F));
        }));
}

Engine::~Engine() {
  for (uint64_t H : I->GaugeHandles)
    obs::unregisterGaugeSource(H);
}

std::shared_ptr<const artifact::CompiledKernel>
Engine::compiled(const kernels::Kernel &K) {
  static obs::Counter &Warm = obs::counter("engine.kernel_warm");
  static obs::Counter &Cold = obs::counter("engine.kernel_cold");
  static obs::Histogram &HitNs = obs::histogram("engine.kernel.hit_ns");
  static obs::Histogram &FillNs = obs::histogram("engine.kernel.cold_fill_ns");
  std::string Key = I->kernelKey(K.Name);
  {
    uint64_t T0 = obs::metricsEnabled() ? obs::nowNs() : 0;
    std::lock_guard<std::mutex> Lock(I->Mu);
    auto It = I->Kernels.find(Key);
    if (It != I->Kernels.end()) {
      ++I->Stats.KernelWarm;
      Warm.add();
      if (T0)
        HitNs.record(obs::nowNs() - T0);
      return It->second;
    }
  }
  // Cold fill outside the lock: the pipeline can take seconds and other
  // kernels' lookups must not stall behind it. First finisher wins.
  obs::ScopedLatency Fill(FillNs);
  obs::Span Sp("engine.compile_kernel", "engine");
  Sp.tag("kernel", K.Name);
  auto CK = std::make_shared<const artifact::CompiledKernel>(
      artifact::compile(K, I->Opts.Analysis));
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto [It, Inserted] = I->Kernels.emplace(Key, CK);
  if (!Inserted)
    return It->second; // a racing fill beat us; use the shared entry
  ++I->Stats.KernelCold;
  Cold.add();
  return CK;
}

std::shared_ptr<const artifact::CompiledKernel>
Engine::compiled(const kernels::Kernel &K,
                 const codegen::UFEnvironment &Env) {
  if (!I->Opts.Analysis.Speculate)
    return compiled(K);
  return speculatedCompiled(K, Env);
}

std::shared_ptr<const artifact::CompiledKernel>
Engine::speculatedCompiled(const kernels::Kernel &K,
                           const codegen::UFEnvironment &Env) {
  static obs::Counter &Warm = obs::counter("engine.kernel_warm");
  static obs::Counter &Cold = obs::counter("engine.kernel_cold");
  static obs::Counter &Spec = obs::counter("engine.kernel_speculated");
  static obs::Histogram &FillNs =
      obs::histogram("engine.kernel.speculate_fill_ns");
  // The profiler is O(n + nnz) — the same order as the environment
  // fingerprint the matrix tier already pays per plan() — and its
  // fingerprint is the cache key, so it runs on warm hits too.
  infer::InferenceResult Inf = infer::inferProperties(Env);
  uint64_t Fp = Inf.fingerprint();
  std::string Key = I->kernelKey(K.Name, Fp);
  {
    std::lock_guard<std::mutex> Lock(I->Mu);
    auto It = I->Kernels.find(Key);
    if (It != I->Kernels.end()) {
      ++I->Stats.KernelWarm;
      Warm.add();
      return It->second;
    }
  }
  obs::ScopedLatency Fill(FillNs);
  obs::Span Sp("engine.compile_kernel_speculated", "engine");
  Sp.tag("kernel", K.Name);
  Sp.tag("inferred_fp", fpHex(Fp));
  deps::PipelineOptions PO = I->Opts.Analysis;
  PO.Speculate = true;
  PO.InferredProps = std::move(Inf.Confirmed);
  artifact::CompiledKernel Compiled = artifact::compile(K, PO);
  Compiled.InferredFingerprint = Fp;
  auto CK =
      std::make_shared<const artifact::CompiledKernel>(std::move(Compiled));
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto [It, Inserted] = I->Kernels.emplace(Key, CK);
  if (!Inserted)
    return It->second; // a racing fill beat us; use the shared entry
  ++I->Stats.KernelCold;
  ++I->Stats.KernelSpeculated;
  Cold.add();
  Spec.add();
  return CK;
}

std::shared_ptr<const artifact::CompiledKernel>
Engine::lookupCompiled(const kernels::Kernel &K) const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->Kernels.find(I->kernelKey(K.Name));
  return It == I->Kernels.end() ? nullptr : It->second;
}

support::Status Engine::loadArtifact(const std::string &Path) {
  artifact::CompiledKernel CK;
  // A rejected artifact flight-records inside artifact::load; the kernel
  // cache is left untouched.
  if (support::Status S = artifact::load(Path, CK); !S.ok())
    return S;
  return installArtifact(std::move(CK));
}

support::Status Engine::installArtifact(artifact::CompiledKernel CK) {
  static obs::Counter &Loaded = obs::counter("engine.kernel_loaded");
  if (CK.KernelName.empty())
    return support::invalidArgument("artifact has no kernel name")
        .withContext("engine installArtifact");
  // A speculated artifact installs under its inference fingerprint so it
  // can only ever serve environments with a matching confirmed profile.
  std::string Key = CK.KernelName + "|" + CK.Options.key();
  if (CK.InferredFingerprint)
    Key += "|" + fpHex(CK.InferredFingerprint);
  auto Shared =
      std::make_shared<const artifact::CompiledKernel>(std::move(CK));
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Kernels[Key] = std::move(Shared);
  ++I->Stats.KernelLoaded;
  Loaded.add();
  return {};
}

support::Status Engine::saveArtifact(const kernels::Kernel &K,
                                     const std::string &Path) {
  return artifact::save(*compiled(K), Path);
}

std::shared_ptr<const MatrixPlan>
Engine::plan(const kernels::Kernel &K, const codegen::UFEnvironment &Env,
             int N, bool Speculate) {
  static obs::Counter &Warm = obs::counter("engine.matrix_warm");
  static obs::Counter &Cold = obs::counter("engine.matrix_cold");
  static obs::Histogram &HitNs = obs::histogram("engine.plan.hit_ns");
  static obs::Histogram &FillNs = obs::histogram("engine.plan.cold_fill_ns");
  // Under speculation this profiles Env and compiles (or reuses) the
  // speculated artifact; the matrix key needs no extra dimension for it —
  // the inference profile is a pure function of the environment, which
  // the fingerprint below already pins.
  bool Spec = Speculate || I->Opts.Analysis.Speculate;
  std::shared_ptr<const artifact::CompiledKernel> CK =
      Spec ? speculatedCompiled(K, Env) : compiled(K);
  // N is folded into the key through the fingerprint's parameter hash
  // only when bound; hash it explicitly so truncated runs never alias.
  // The schedule config key makes schedules a plan dimension: the same
  // matrix under a different kind/knob set is a different plan.
  Impl::MatrixKey Key{I->matrixPrefix(K.Name, Spec),
                      fingerprintEnvironment(Env), static_cast<int64_t>(N)};
  {
    uint64_t T0 = obs::metricsEnabled() ? obs::nowNs() : 0;
    std::lock_guard<std::mutex> Lock(I->Mu);
    auto It = I->Plans.find(Key);
    if (It != I->Plans.end()) {
      ++I->Stats.MatrixWarm;
      Warm.add();
      I->touch(It->second);
      if (T0)
        HitNs.record(obs::nowNs() - T0);
      return It->second.Plan;
    }
  }
  obs::ScopedLatency Fill(FillNs);
  obs::Span Sp("engine.build_plan", "engine");
  Sp.tag("kernel", K.Name);
  auto MP = std::make_shared<MatrixPlan>(N);
  MP->Inspection = driver::runInspectors(*CK, Env, N, I->Opts.Inspect);
  rt::ScheduleConfig SC = I->Opts.Schedule;
  SC.NumThreads = std::max(1, SC.NumThreads);
  MP->Schedule = rt::buildSchedule(MP->Inspection.Graph, SC);
  std::shared_ptr<const MatrixPlan> Shared = std::move(MP);
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->Plans.find(Key);
  if (It != I->Plans.end())
    return It->second.Plan; // a racing fill beat us; use the shared entry
  I->Lru.push_front(Key);
  I->Plans.emplace(Key,
                   Impl::PlanEntry{Shared, I->Lru.begin(), obs::nowNs()});
  ++I->Stats.MatrixCold;
  Cold.add();
  I->evictToCapacity();
  return Shared;
}

std::shared_ptr<const MatrixPlan>
Engine::planIfCached(const kernels::Kernel &K,
                     const codegen::UFEnvironment &Env, int N,
                     bool Speculate) {
  static obs::Counter &Warm = obs::counter("engine.matrix_warm");
  bool Spec = Speculate || I->Opts.Analysis.Speculate;
  Impl::MatrixKey Key{I->matrixPrefix(K.Name, Spec),
                      fingerprintEnvironment(Env), static_cast<int64_t>(N)};
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->Plans.find(Key);
  if (It == I->Plans.end())
    return nullptr;
  ++I->Stats.MatrixWarm;
  Warm.add();
  I->touch(It->second);
  return It->second.Plan;
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  return I->Stats;
}

void Engine::clear() {
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Kernels.clear();
  I->Plans.clear();
  I->Lru.clear();
}

} // namespace engine
} // namespace sds
