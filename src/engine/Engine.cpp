//===- Engine.cpp - In-process compile-once/run-many facade ---------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/engine/Engine.h"

#include "sds/obs/Trace.h"

#include <deque>
#include <map>
#include <tuple>

namespace sds {
namespace engine {

namespace {

inline void fnvBytes(uint64_t &H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
}

inline void fnvStr(uint64_t &H, const std::string &S) {
  fnvBytes(H, S.data(), S.size());
  fnvBytes(H, "\0", 1); // terminator so "ab","c" != "a","bc"
}

inline void fnvInt(uint64_t &H, int64_t V) { fnvBytes(H, &V, sizeof(V)); }

} // namespace

uint64_t fingerprintEnvironment(const codegen::UFEnvironment &Env) {
  uint64_t H = 1469598103934665603ull;
  for (const auto &[Name, Span] : Env.Spans) {
    fnvStr(H, Name);
    fnvInt(H, static_cast<int64_t>(Span->size()));
    if (!Span->empty())
      fnvBytes(H, Span->data(), Span->size() * sizeof((*Span)[0]));
  }
  for (const auto &[Name, Fn] : Env.Arrays) {
    (void)Fn;
    // Function-only bindings (no span) contribute their name; the closure
    // itself is opaque to the cache.
    if (!Env.Spans.count(Name))
      fnvStr(H, Name);
  }
  for (const auto &[Name, V] : Env.Params) {
    fnvStr(H, Name);
    fnvInt(H, V);
  }
  return H;
}

struct Engine::Impl {
  using MatrixKey = std::tuple<std::string, uint64_t, int64_t>;

  EngineOptions Opts;
  std::string OptionsKey; ///< AnalysisOptions::key() of Opts.Analysis

  mutable std::mutex Mu;
  std::map<std::string, std::shared_ptr<const artifact::CompiledKernel>>
      Kernels;
  std::map<MatrixKey, std::shared_ptr<const MatrixPlan>> Plans;
  std::deque<MatrixKey> PlanOrder; ///< insertion order, for eviction
  EngineStats Stats;

  std::string kernelKey(const std::string &Name) const {
    return Name + "|" + OptionsKey;
  }
};

Engine::Engine(EngineOptions Opts) : I(std::make_unique<Impl>()) {
  I->Opts = std::move(Opts);
  I->OptionsKey = artifact::AnalysisOptions::of(I->Opts.Analysis).key();
}

Engine::~Engine() = default;

std::shared_ptr<const artifact::CompiledKernel>
Engine::compiled(const kernels::Kernel &K) {
  static obs::Counter &Warm = obs::counter("engine.kernel_warm");
  static obs::Counter &Cold = obs::counter("engine.kernel_cold");
  std::string Key = I->kernelKey(K.Name);
  {
    std::lock_guard<std::mutex> Lock(I->Mu);
    auto It = I->Kernels.find(Key);
    if (It != I->Kernels.end()) {
      ++I->Stats.KernelWarm;
      Warm.add();
      return It->second;
    }
  }
  // Cold fill outside the lock: the pipeline can take seconds and other
  // kernels' lookups must not stall behind it. First finisher wins.
  obs::Span Sp("engine.compile_kernel", "engine");
  Sp.tag("kernel", K.Name);
  auto CK = std::make_shared<const artifact::CompiledKernel>(
      artifact::compile(K, I->Opts.Analysis));
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto [It, Inserted] = I->Kernels.emplace(Key, CK);
  if (!Inserted)
    return It->second; // a racing fill beat us; use the shared entry
  ++I->Stats.KernelCold;
  Cold.add();
  return CK;
}

support::Status Engine::loadArtifact(const std::string &Path) {
  static obs::Counter &Loaded = obs::counter("engine.kernel_loaded");
  artifact::CompiledKernel CK;
  if (support::Status S = artifact::load(Path, CK); !S.ok())
    return S;
  std::string Key = CK.KernelName + "|" + CK.Options.key();
  auto Shared =
      std::make_shared<const artifact::CompiledKernel>(std::move(CK));
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Kernels[Key] = std::move(Shared);
  ++I->Stats.KernelLoaded;
  Loaded.add();
  return {};
}

support::Status Engine::saveArtifact(const kernels::Kernel &K,
                                     const std::string &Path) {
  return artifact::save(*compiled(K), Path);
}

std::shared_ptr<const MatrixPlan>
Engine::plan(const kernels::Kernel &K, const codegen::UFEnvironment &Env,
             int N) {
  static obs::Counter &Warm = obs::counter("engine.matrix_warm");
  static obs::Counter &Cold = obs::counter("engine.matrix_cold");
  std::shared_ptr<const artifact::CompiledKernel> CK = compiled(K);
  // N is folded into the key through the fingerprint's parameter hash
  // only when bound; hash it explicitly so truncated runs never alias.
  Impl::MatrixKey Key{I->kernelKey(K.Name), fingerprintEnvironment(Env),
                      static_cast<int64_t>(N)};
  {
    std::lock_guard<std::mutex> Lock(I->Mu);
    auto It = I->Plans.find(Key);
    if (It != I->Plans.end()) {
      ++I->Stats.MatrixWarm;
      Warm.add();
      return It->second;
    }
  }
  obs::Span Sp("engine.build_plan", "engine");
  Sp.tag("kernel", K.Name);
  auto MP = std::make_shared<MatrixPlan>(N);
  MP->Inspection = driver::runInspectors(*CK, Env, N, I->Opts.Inspect);
  MP->Schedule = rt::scheduleLevelSets(MP->Inspection.Graph,
                                       std::max(1, I->Opts.ScheduleThreads));
  std::shared_ptr<const MatrixPlan> Shared = std::move(MP);
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto [It, Inserted] = I->Plans.emplace(Key, Shared);
  if (!Inserted)
    return It->second;
  ++I->Stats.MatrixCold;
  Cold.add();
  I->PlanOrder.push_back(Key);
  while (I->Plans.size() > I->Opts.MaxMatrixPlans && !I->PlanOrder.empty()) {
    I->Plans.erase(I->PlanOrder.front());
    I->PlanOrder.pop_front();
    ++I->Stats.MatrixEvicted;
  }
  return Shared;
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  return I->Stats;
}

void Engine::clear() {
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Kernels.clear();
  I->Plans.clear();
  I->PlanOrder.clear();
}

} // namespace engine
} // namespace sds
