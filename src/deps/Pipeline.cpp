//===- Pipeline.cpp - The Figure-3 analysis pipeline ----------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/deps/Pipeline.h"

#include "sds/codegen/Approximate.h"
#include "sds/ir/SubsetDetection.h"
#include "sds/obs/FlightRecorder.h"
#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"
#include "sds/presburger/Budget.h"
#include "sds/support/JSON.h"
#include "sds/support/OMP.h"
#include "sds/support/Schema.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <set>

namespace sds {
namespace deps {

namespace {

/// Times one stage invocation: accumulates wall seconds into a per-stage
/// map (always) and mirrors the interval as an obs span (only when
/// tracing is on). Span names are "pipeline.<stage>". The target map is
/// the result's StageSeconds when a stage runs serially; parallel
/// per-dependence stages each write a private map that is merged in
/// relation order afterwards, so the accumulation order (and therefore
/// the floating-point sum) does not depend on thread scheduling.
class StageScope {
public:
  StageScope(std::map<std::string, double> &Seconds, const char *Stage)
      : Seconds(Seconds), Stage(Stage),
        Sp(std::string("pipeline.") + Stage, "deps"),
        T0(std::chrono::steady_clock::now()) {}
  ~StageScope() {
    double S = seconds();
    Seconds[Stage] += S;
    // Mirror the interval into the metrics registry so the Figure-3
    // per-stage view (metricsReport's stage_seconds) and the stage
    // latency quantiles come for free.
    if (obs::metricsEnabled())
      obs::histogram(std::string("pipeline.stage.") + Stage)
          .record(static_cast<uint64_t>(S * 1e9));
  }

  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
        .count();
  }
  obs::Span &span() { return Sp; }

private:
  std::map<std::string, double> &Seconds;
  const char *Stage;
  obs::Span Sp;
  std::chrono::steady_clock::time_point T0;
};

/// First-occurrence dedup of the applied-instance label trail (an unsat
/// proof often re-applies the same assertion instance across passes).
std::vector<std::string> dedupeLabels(const std::vector<std::string> &In) {
  std::vector<std::string> Out;
  std::set<std::string> Seen;
  for (const std::string &L : In)
    if (Seen.insert(L).second)
      Out.push_back(L);
  return Out;
}

/// Steps 2-4 of Figure 3 for one dependence: affine refutation, property
/// refutation, equality discovery. Self-contained per dependence — the
/// only shared state it touches is the Presburger verdict cache (which
/// memoizes deterministic facts) and the thread-safe obs registry — so
/// the pipeline may run one instance per dependence concurrently and the
/// outcome is identical to the serial order. Stage wall time goes to
/// `Seconds` (the caller merges per-dependence maps in relation order).
void analyzeOneDependence(AnalyzedDependence &AD, const kernels::Kernel &K,
                          const PipelineOptions &Opts,
                          std::map<std::string, double> &Seconds,
                          uint64_t DeadlineNs) {
  // Install the per-kernel analysis deadline on this worker thread: every
  // Presburger query below answers Unknown once it passes, which keeps
  // the dependence. notedBudget marks the provenance once.
  presburger::ScopedDeadline Deadline(DeadlineNs);
  static obs::Counter &BudgetHits = obs::counter("pipeline.budget_exhausted");
  bool BudgetNoted = false;
  auto BudgetExpired = [&] {
    if (!presburger::deadlineExpired())
      return false;
    if (!BudgetNoted) {
      BudgetNoted = true;
      BudgetHits.add();
      AD.Prov.addEvidence("analysis budget exhausted; kept conservatively");
      obs::flightRecord(obs::FlightSeverity::Warn, "pipeline",
                        "analysis budget exhausted; kept conservatively",
                        {{"dep", AD.Dep.label()}});
    }
    return true;
  };
  // Step 2: affine consistency (no domain knowledge).
  {
    StageScope Sc(Seconds, "affine_unsat");
    Sc.span().tag("dep", AD.Dep.label());
    ir::InstantiationStats St;
    if (ir::provenUnsatAffineOnly(AD.Dep.Rel, Opts.Simp, &St, &AD.Core)) {
      AD.Status = DepStatus::AffineUnsat;
      AD.HasCore = true; // no property assertions were even available
      AD.Prov.Stage = "affine-unsat";
      AD.Prov.Evidence = dedupeLabels(St.UsedLabels);
      if (AD.Prov.Evidence.empty())
        AD.Prov.addEvidence("affine core infeasible");
      AD.Prov.Seconds = Sc.seconds();
      return;
    }
  }
  // Step 3: property-based unsatisfiability (§2.2/§4.2). Syntactic
  // phase-1 instantiation plus phase-2 disjunctions suffice here;
  // semantic entailment probes only pay off for equality discovery.
  // Skipped entirely once the budget is gone: unprovable == kept.
  if (Opts.UseProperties && !BudgetExpired()) {
    StageScope Sc(Seconds, "property_unsat");
    Sc.span().tag("dep", AD.Dep.label());
    ir::SimplifyOptions UnsatOpts = Opts.Simp;
    UnsatOpts.SemanticPhase1 = false;
    ir::InstantiationStats St;
    if (ir::provenUnsat(AD.Dep.Rel, K.Properties, UnsatOpts, &St, &AD.Core)) {
      AD.Status = DepStatus::PropertyUnsat;
      AD.HasCore = true;
      AD.Prov.Stage = "property-unsat";
      AD.Prov.Evidence = dedupeLabels(St.UsedLabels);
      AD.Prov.addEvidence(
          "core: " + std::to_string(AD.Core.Assertions.size()) +
          " assertion(s), " + (AD.Core.FromFarkas ? "farkas" : "coarse") +
          (AD.Core.Minimized ? ", minimized" : ""));
      AD.Prov.Seconds = Sc.seconds();
      return;
    }
  }
  // Step 4: equality discovery (§4).
  {
    StageScope Sc(Seconds, "equality_discovery");
    Sc.span().tag("dep", AD.Dep.label());
    AD.Simplified = AD.Dep.Rel;
    AD.CostBefore = codegen::buildInspectorPlan(AD.Dep.Rel).Cost;
    if (Opts.UseEqualities && !BudgetExpired()) {
      // Equality discovery is where the semantic probes earn their keep;
      // give them a generous budget.
      ir::SimplifyOptions EqOpts = Opts.Simp;
      if (EqOpts.SemanticProbeCap < 1500)
        EqOpts.SemanticProbeCap = 1500;
      ir::EqualityDiscoveryResult R =
          ir::discoverEqualities(AD.Simplified, K.Properties, EqOpts);
      AD.NewEqualities = R.NewEqualities;
      if (R.NewEqualities > 0) {
        AD.Prov.Stage = "equality-discovery";
        AD.Prov.Evidence = R.EqualityStrings;
        // The simplified relation is only equivalent to the original when
        // the applied instances hold — they are this dependence's core.
        AD.Core.Assertions = R.UsedLabels;
        AD.Core.FromFarkas = false;
      }
    }
    // Runtime dependences always carry a (possibly empty) core: an empty
    // one records positively that nothing here is property-dependent.
    AD.HasCore = true;
    AD.CostAfter = codegen::buildInspectorPlan(AD.Simplified).Cost;
    AD.Status = DepStatus::Runtime;
    if (AD.Prov.Stage.empty())
      AD.Prov.Stage = BudgetNoted ? "budget-exhausted" : "runtime";
    AD.Prov.Seconds = Sc.seconds();
  }
}

/// FNV-1a over the parts of a relation the subsumption precondition
/// inspects: `subsumes()` answers Unknown outright unless both relations
/// share the full input tuple and the first output iterator, so pairs
/// with different signatures can be skipped without calling it. Equal
/// hashes prove nothing (collisions just lose the skip); unequal hashes
/// soundly prune.
uint64_t subsumptionSignature(const ir::SparseRelation &R) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](const std::string &S) {
    for (char C : S) {
      H ^= static_cast<unsigned char>(C);
      H *= 1099511628211ull;
    }
    H ^= 0xffu; // separator so {"ab"} and {"a","b"} differ
    H *= 1099511628211ull;
  };
  for (const std::string &V : R.InVars)
    Mix(V);
  Mix("|");
  if (!R.OutVars.empty())
    Mix(R.OutVars[0]);
  return H;
}

} // namespace

std::string depStatusName(DepStatus S) {
  switch (S) {
  case DepStatus::AffineUnsat:
    return "affine-unsat";
  case DepStatus::PropertyUnsat:
    return "property-unsat";
  case DepStatus::Subsumed:
    return "subsumed";
  case DepStatus::Runtime:
    return "runtime";
  }
  return "?";
}

unsigned PipelineResult::countExpensiveRuntime(bool Simplified) const {
  unsigned N = 0;
  for (const AnalyzedDependence &D : Deps) {
    if (D.Status != DepStatus::Runtime && D.Status != DepStatus::Subsumed)
      continue;
    const codegen::Complexity &C = Simplified ? D.CostAfter : D.CostBefore;
    if (KernelCost < C)
      ++N;
  }
  return N;
}

std::string PipelineResult::summary() const {
  std::string Out = Kernel.Name + ": " + std::to_string(Deps.size()) +
                    " dependences, kernel cost " + KernelCost.str() + "\n";
  for (const AnalyzedDependence &D : Deps) {
    Out += "  [" + depStatusName(D.Status) + "] " + D.Dep.label();
    if (D.Status == DepStatus::Runtime || D.Status == DepStatus::Subsumed)
      Out += "  cost " + D.CostBefore.str() + " -> " + D.CostAfter.str();
    if (D.NewEqualities)
      Out += "  (+" + std::to_string(D.NewEqualities) + " eq)";
    if (!D.SubsumedBy.empty())
      Out += "  covered by " + D.SubsumedBy;
    if (!D.Prov.Stage.empty())
      Out += "\n      decided by " + D.Prov.str();
    Out += "\n";
  }
  return Out;
}

std::string PipelineResult::toJSON() const {
  using json::Array;
  using json::Object;
  using json::Value;
  Object Root;
  Root.emplace("schema_version", Value(schema::kVersion));
  Root.emplace("kernel", Value(Kernel.Name));
  Root.emplace("format", Value(Kernel.Format));
  Root.emplace("kernel_complexity", Value(KernelCost.str()));
  Array DepList;
  for (const AnalyzedDependence &D : Deps) {
    Object DepObj;
    DepObj.emplace("label", Value(D.Dep.label()));
    DepObj.emplace("array", Value(D.Dep.Array));
    DepObj.emplace("status", Value(depStatusName(D.Status)));
    if (D.Status == DepStatus::Runtime || D.Status == DepStatus::Subsumed) {
      DepObj.emplace("cost_before", Value(D.CostBefore.str()));
      DepObj.emplace("cost_after", Value(D.CostAfter.str()));
      DepObj.emplace("new_equalities",
                     Value(static_cast<int64_t>(D.NewEqualities)));
    }
    if (!D.SubsumedBy.empty())
      DepObj.emplace("subsumed_by", Value(D.SubsumedBy));
    if (D.Status == DepStatus::Runtime && D.Plan.Valid) {
      DepObj.emplace("inspector_c", Value(D.Plan.emitC("inspect")));
      DepObj.emplace("approximated", Value(D.Approximated));
    }
    if (!D.Prov.Stage.empty())
      DepObj.emplace("provenance", D.Prov.toJSON());
    if (D.Remediable) {
      DepObj.emplace("remediable", Value(true));
      Array Cited;
      for (const std::string &B : D.InferredCited)
        Cited.push_back(Value(B));
      DepObj.emplace("inferred_cited", Value(std::move(Cited)));
    }
    DepList.push_back(Value(std::move(DepObj)));
  }
  Root.emplace("dependences", Value(std::move(DepList)));
  // The frozen schema::kStageKeys, zero-filled when a stage did not run,
  // so this export and the artifact blob spell timings identically.
  Object Stages;
  for (size_t I = 0; I < schema::kNumStageKeys; ++I) {
    auto It = StageSeconds.find(schema::kStageKeys[I]);
    Stages.emplace(schema::kStageKeys[I],
                   Value(It == StageSeconds.end() ? 0.0 : It->second));
  }
  for (const auto &[Stage, Seconds] : StageSeconds)
    Stages.emplace(Stage, Value(Seconds)); // no-op for standard keys
  Root.emplace("stage_seconds", Value(std::move(Stages)));
  return Value(std::move(Root)).str();
}

PipelineResult analyzeKernel(const kernels::Kernel &K,
                             const PipelineOptions &Opts) {
  PipelineResult Res;
  Res.Kernel = K;
  // Speculation: run the whole ladder against declared ∪ inferred. The
  // union lives in the result's Kernel so everything downstream — guard
  // validation, artifact serialization, provenance — sees the speculated
  // trust base with its tiers intact.
  if (Opts.Speculate)
    Res.Kernel.Properties = K.Properties.unioned(Opts.InferredProps);
  obs::Span Total("pipeline.analyze", "deps");
  Total.tag("kernel", K.Name);
  Total.tag("speculate", static_cast<int64_t>(Opts.Speculate ? 1 : 0));

  // Kernel cost: the most expensive statement's iteration domain.
  Res.KernelCost = codegen::Complexity::one();
  for (const kernels::Statement &S : K.Stmts) {
    codegen::Complexity C =
        codegen::domainComplexity(S.iterationDomain(), S.ivs());
    if (Res.KernelCost < C)
      Res.KernelCost = C;
  }

  // Step 1: extraction (Figure 3 "Dependence Extraction").
  {
    StageScope Sc(Res.StageSeconds, "extraction");
    for (Dependence &D : extractDependences(K)) {
      AnalyzedDependence AD;
      AD.Dep = std::move(D);
      Res.Deps.push_back(std::move(AD));
    }
    Sc.span().tag("dependences", static_cast<int64_t>(Res.Deps.size()));
  }

  // Steps 2-4 fan out across dependences: each one is analyzed
  // independently (see analyzeOneDependence), so the per-dependence work
  // runs task-parallel under Opts.NumThreads. Every result slot and
  // timing map is written by exactly one task, and the merge below walks
  // them in relation order — verdicts, provenance, and JSON are
  // bit-identical at any thread count.
  int NT = std::max(1, Opts.NumThreads);
  if (static_cast<size_t>(NT) > Res.Deps.size())
    NT = static_cast<int>(std::max<size_t>(1, Res.Deps.size()));
  Total.tag("threads", static_cast<int64_t>(NT));
  // One absolute deadline shared by every stage and worker thread; 0
  // disables. Each analysis task re-installs it thread-locally.
  uint64_t DeadlineNs =
      Opts.AnalysisBudgetMs > 0
          ? presburger::ScopedDeadline::fromNow(Opts.AnalysisBudgetMs * 1e-3)
          : 0;
  if (NT <= 1) {
    for (AnalyzedDependence &AD : Res.Deps)
      analyzeOneDependence(AD, Res.Kernel, Opts, Res.StageSeconds,
                           DeadlineNs);
  } else {
    std::vector<std::map<std::string, double>> DepSeconds(Res.Deps.size());
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(NT)
#endif
    for (size_t I = 0; I < Res.Deps.size(); ++I)
      analyzeOneDependence(Res.Deps[I], Res.Kernel, Opts, DepSeconds[I],
                           DeadlineNs);
    for (const auto &M : DepSeconds)
      for (const auto &[Stage, Seconds] : M)
        Res.StageSeconds[Stage] += Seconds;
  }

  // Step 5: subset subsumption (§5). Only live runtime checks may act as
  // the covering test, and a test may only discard one that is at least
  // as expensive (there is no point paying more to cover less). This
  // stage stays a serial ordered barrier: each discard changes the live
  // set the next probe sees, and the paper's greedy order is part of the
  // reproduced output.
  if (Opts.UseSubsets) {
    StageScope Sc(Res.StageSeconds, "subsumption");
    // The sweep honors the same deadline: stopping early keeps more
    // runtime checks alive, which is the conservative direction.
    presburger::ScopedDeadline Deadline(DeadlineNs);
    static obs::Counter &SigPruned =
        obs::counter("pipeline.subsume_sig_prune");
    // Pairs whose relations differ in input tuple or first output
    // iterator are Unknown by precondition; comparing precomputed
    // signature hashes skips the polyhedral machinery for them.
    std::vector<uint64_t> SigOrig(Res.Deps.size()), SigSimp(Res.Deps.size());
    for (size_t I = 0; I < Res.Deps.size(); ++I) {
      if (Res.Deps[I].Status != DepStatus::Runtime)
        continue;
      SigOrig[I] = subsumptionSignature(Res.Deps[I].Dep.Rel);
      SigSimp[I] = subsumptionSignature(Res.Deps[I].Simplified);
    }
    unsigned Discarded = 0;
    bool Changed = true;
    while (Changed && !presburger::deadlineExpired()) {
      Changed = false;
      for (size_t CI = 0; CI < Res.Deps.size(); ++CI) {
        AnalyzedDependence &Cand = Res.Deps[CI];
        if (Cand.Status != DepStatus::Runtime)
          continue;
        for (size_t KI = 0; KI < Res.Deps.size(); ++KI) {
          AnalyzedDependence &Kept = Res.Deps[KI];
          if (KI == CI || Kept.Status != DepStatus::Runtime)
            continue;
          if (Cand.CostAfter < Kept.CostAfter)
            continue;
          if (SigSimp[CI] != SigOrig[KI]) {
            SigPruned.add();
            continue;
          }
          // Containment is tested against the keeper's *original* relation:
          // its inspector (simplified or not) enumerates exactly the
          // original edge set, and the original has fewer constraints, so
          // the polyhedral test is both sound and easier. The candidate
          // side uses its simplified form (equalities only shrink it
          // toward its true edge set).
          if (ir::subsumes(Kept.Dep.Rel, Cand.Simplified, Opts.Simp) !=
              presburger::Ternary::True)
            continue;
          Cand.Status = DepStatus::Subsumed;
          Cand.SubsumedBy = Kept.Dep.label();
          Cand.Prov.Stage = "subsumption";
          Cand.Prov.Evidence = {"covered by " + Kept.Dep.label()};
          ++Discarded;
          Changed = true;
          break;
        }
      }
    }
    Sc.span().tag("discarded", static_cast<int64_t>(Discarded));
  }

  // Step 6: inspectors for the survivors, optionally over-approximated
  // down to the kernel's own complexity (§8.1's ILU escape hatch).
  {
    StageScope Sc(Res.StageSeconds, "codegen");
    for (AnalyzedDependence &AD : Res.Deps) {
      if (AD.Status != DepStatus::Runtime)
        continue;
      if (Opts.ApproximateExpensive && Res.KernelCost < AD.CostAfter) {
        codegen::ApproximationResult A =
            codegen::approximateToCost(AD.Simplified, Res.KernelCost);
        if (A.Changed) {
          AD.Simplified = std::move(A.Rel);
          AD.CostAfter = A.Cost;
          AD.Approximated = true;
          AD.Prov.addEvidence("over-approximated to cost " + A.Cost.str());
        }
      }
      AD.Plan = codegen::buildInspectorPlan(AD.Simplified);
      if (!AD.Plan.Valid) {
        // Graceful fallback: a runtime dependence must never lose its
        // inspector to an unschedulable simplified relation — that would
        // silently drop edges. Plan the original relation instead and
        // keep its (worse) cost honest in the report.
        static obs::Counter &PlanFallbacks =
            obs::counter("pipeline.plan_fallback_original");
        PlanFallbacks.add(1);
        obs::flightRecord(obs::FlightSeverity::Warn, "pipeline",
                          "simplified relation unschedulable; inspector "
                          "planned from original relation",
                          {{"kernel", K.Name},
                           {"dep", AD.Dep.label()},
                           {"why", AD.Plan.WhyInvalid}});
        AD.Prov.addEvidence("simplified relation unschedulable (" +
                            AD.Plan.WhyInvalid +
                            "); inspector planned from original relation");
        AD.Plan = codegen::buildInspectorPlan(AD.Dep.Rel);
        AD.CostAfter = AD.Plan.Valid ? AD.Plan.Cost
                                     : codegen::Complexity{127, 127};
      }
    }
  }

  // Speculation post-pass: mark, per dependence, which *inferred*
  // assertions its core cites. Those citations are the remedies the guard
  // must validate; a dependence citing none is justified by declared
  // knowledge alone and survives any misspeculation untouched.
  if (Opts.Speculate) {
    static obs::Counter &Remediable =
        obs::counter("pipeline.deps_remediable");
    static obs::Counter &CitedInferred =
        obs::counter("pipeline.inferred_citations");
    unsigned RemediableHere = 0;
    for (AnalyzedDependence &AD : Res.Deps) {
      if (!AD.HasCore)
        continue;
      std::set<std::string> Bases;
      for (const std::string &L : AD.Core.Assertions) {
        // Label -> base: strip the application-mode suffix (" [contra]",
        // " [weak]", ...) the way the guard's labelBase does.
        size_t Cut = L.find(" [");
        std::string Base = Cut == std::string::npos ? L : L.substr(0, Cut);
        auto Tier = Res.Kernel.Properties.tierForLabelBase(Base);
        if (Tier && *Tier == ir::PropertyTier::Inferred)
          Bases.insert(std::move(Base));
      }
      AD.InferredCited.assign(Bases.begin(), Bases.end());
      AD.Remediable = !AD.InferredCited.empty();
      if (AD.Remediable) {
        ++RemediableHere;
        CitedInferred.add(AD.InferredCited.size());
        AD.Prov.addEvidence(
            "remediable: cites " +
            std::to_string(AD.InferredCited.size()) +
            " inferred assertion(s)");
      }
    }
    Remediable.add(RemediableHere);
    Total.tag("remediable", static_cast<int64_t>(RemediableHere));
    if (RemediableHere)
      obs::flightRecord(
          obs::FlightSeverity::Info, "pipeline",
          "speculative analysis produced remediable dependences",
          {{"kernel", K.Name},
           {"remediable", std::to_string(RemediableHere)}});
  }

  return Res;
}

} // namespace deps
} // namespace sds
