//===- Pipeline.cpp - The Figure-3 analysis pipeline ----------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/deps/Pipeline.h"

#include "sds/codegen/Approximate.h"
#include "sds/ir/SubsetDetection.h"
#include "sds/obs/Trace.h"
#include "sds/support/JSON.h"

#include <algorithm>
#include <chrono>
#include <set>

namespace sds {
namespace deps {

namespace {

/// Times one stage invocation: accumulates wall seconds into the result's
/// per-stage map (always) and mirrors the interval as an obs span (only
/// when tracing is on). Span names are "pipeline.<stage>".
class StageScope {
public:
  StageScope(PipelineResult &Res, const char *Stage)
      : Res(Res), Stage(Stage), Sp(std::string("pipeline.") + Stage, "deps"),
        T0(std::chrono::steady_clock::now()) {}
  ~StageScope() { Res.StageSeconds[Stage] += seconds(); }

  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
        .count();
  }
  obs::Span &span() { return Sp; }

private:
  PipelineResult &Res;
  const char *Stage;
  obs::Span Sp;
  std::chrono::steady_clock::time_point T0;
};

/// First-occurrence dedup of the applied-instance label trail (an unsat
/// proof often re-applies the same assertion instance across passes).
std::vector<std::string> dedupeLabels(const std::vector<std::string> &In) {
  std::vector<std::string> Out;
  std::set<std::string> Seen;
  for (const std::string &L : In)
    if (Seen.insert(L).second)
      Out.push_back(L);
  return Out;
}

} // namespace

std::string depStatusName(DepStatus S) {
  switch (S) {
  case DepStatus::AffineUnsat:
    return "affine-unsat";
  case DepStatus::PropertyUnsat:
    return "property-unsat";
  case DepStatus::Subsumed:
    return "subsumed";
  case DepStatus::Runtime:
    return "runtime";
  }
  return "?";
}

unsigned PipelineResult::countExpensiveRuntime(bool Simplified) const {
  unsigned N = 0;
  for (const AnalyzedDependence &D : Deps) {
    if (D.Status != DepStatus::Runtime && D.Status != DepStatus::Subsumed)
      continue;
    const codegen::Complexity &C = Simplified ? D.CostAfter : D.CostBefore;
    if (KernelCost < C)
      ++N;
  }
  return N;
}

std::string PipelineResult::summary() const {
  std::string Out = Kernel.Name + ": " + std::to_string(Deps.size()) +
                    " dependences, kernel cost " + KernelCost.str() + "\n";
  for (const AnalyzedDependence &D : Deps) {
    Out += "  [" + depStatusName(D.Status) + "] " + D.Dep.label();
    if (D.Status == DepStatus::Runtime || D.Status == DepStatus::Subsumed)
      Out += "  cost " + D.CostBefore.str() + " -> " + D.CostAfter.str();
    if (D.NewEqualities)
      Out += "  (+" + std::to_string(D.NewEqualities) + " eq)";
    if (!D.SubsumedBy.empty())
      Out += "  covered by " + D.SubsumedBy;
    if (!D.Prov.Stage.empty())
      Out += "\n      decided by " + D.Prov.str();
    Out += "\n";
  }
  return Out;
}

std::string PipelineResult::toJSON() const {
  using json::Array;
  using json::Object;
  using json::Value;
  Object Root;
  Root.emplace("kernel", Value(Kernel.Name));
  Root.emplace("format", Value(Kernel.Format));
  Root.emplace("kernel_complexity", Value(KernelCost.str()));
  Array DepList;
  for (const AnalyzedDependence &D : Deps) {
    Object DepObj;
    DepObj.emplace("label", Value(D.Dep.label()));
    DepObj.emplace("array", Value(D.Dep.Array));
    DepObj.emplace("status", Value(depStatusName(D.Status)));
    if (D.Status == DepStatus::Runtime || D.Status == DepStatus::Subsumed) {
      DepObj.emplace("cost_before", Value(D.CostBefore.str()));
      DepObj.emplace("cost_after", Value(D.CostAfter.str()));
      DepObj.emplace("new_equalities",
                     Value(static_cast<int64_t>(D.NewEqualities)));
    }
    if (!D.SubsumedBy.empty())
      DepObj.emplace("subsumed_by", Value(D.SubsumedBy));
    if (D.Status == DepStatus::Runtime && D.Plan.Valid) {
      DepObj.emplace("inspector_c", Value(D.Plan.emitC("inspect")));
      DepObj.emplace("approximated", Value(D.Approximated));
    }
    if (!D.Prov.Stage.empty())
      DepObj.emplace("provenance", D.Prov.toJSON());
    DepList.push_back(Value(std::move(DepObj)));
  }
  Root.emplace("dependences", Value(std::move(DepList)));
  Object Stages;
  for (const auto &[Stage, Seconds] : StageSeconds)
    Stages.emplace(Stage, Value(Seconds));
  Root.emplace("stage_seconds", Value(std::move(Stages)));
  return Value(std::move(Root)).str();
}

PipelineResult analyzeKernel(const kernels::Kernel &K,
                             const PipelineOptions &Opts) {
  PipelineResult Res;
  Res.Kernel = K;
  obs::Span Total("pipeline.analyze", "deps");
  Total.tag("kernel", K.Name);

  // Kernel cost: the most expensive statement's iteration domain.
  Res.KernelCost = codegen::Complexity::one();
  for (const kernels::Statement &S : K.Stmts) {
    codegen::Complexity C =
        codegen::domainComplexity(S.iterationDomain(), S.ivs());
    if (Res.KernelCost < C)
      Res.KernelCost = C;
  }

  // Step 1: extraction (Figure 3 "Dependence Extraction").
  {
    StageScope Sc(Res, "extraction");
    for (Dependence &D : extractDependences(K)) {
      AnalyzedDependence AD;
      AD.Dep = std::move(D);
      Res.Deps.push_back(std::move(AD));
    }
    Sc.span().tag("dependences", static_cast<int64_t>(Res.Deps.size()));
  }

  for (AnalyzedDependence &AD : Res.Deps) {
    // Step 2: affine consistency (no domain knowledge).
    {
      StageScope Sc(Res, "affine_unsat");
      Sc.span().tag("dep", AD.Dep.label());
      ir::InstantiationStats St;
      if (ir::provenUnsatAffineOnly(AD.Dep.Rel, Opts.Simp, &St)) {
        AD.Status = DepStatus::AffineUnsat;
        AD.Prov.Stage = "affine-unsat";
        AD.Prov.Evidence = dedupeLabels(St.UsedLabels);
        if (AD.Prov.Evidence.empty())
          AD.Prov.addEvidence("affine core infeasible");
        AD.Prov.Seconds = Sc.seconds();
        continue;
      }
    }
    // Step 3: property-based unsatisfiability (§2.2/§4.2). Syntactic
    // phase-1 instantiation plus phase-2 disjunctions suffice here;
    // semantic entailment probes only pay off for equality discovery.
    if (Opts.UseProperties) {
      StageScope Sc(Res, "property_unsat");
      Sc.span().tag("dep", AD.Dep.label());
      ir::SimplifyOptions UnsatOpts = Opts.Simp;
      UnsatOpts.SemanticPhase1 = false;
      ir::InstantiationStats St;
      if (ir::provenUnsat(AD.Dep.Rel, K.Properties, UnsatOpts, &St)) {
        AD.Status = DepStatus::PropertyUnsat;
        AD.Prov.Stage = "property-unsat";
        AD.Prov.Evidence = dedupeLabels(St.UsedLabels);
        AD.Prov.Seconds = Sc.seconds();
        continue;
      }
    }
    // Step 4: equality discovery (§4).
    {
      StageScope Sc(Res, "equality_discovery");
      Sc.span().tag("dep", AD.Dep.label());
      AD.Simplified = AD.Dep.Rel;
      AD.CostBefore = codegen::buildInspectorPlan(AD.Dep.Rel).Cost;
      if (Opts.UseEqualities) {
        // Equality discovery is where the semantic probes earn their keep;
        // give them a generous budget.
        ir::SimplifyOptions EqOpts = Opts.Simp;
        if (EqOpts.SemanticProbeCap < 1500)
          EqOpts.SemanticProbeCap = 1500;
        ir::EqualityDiscoveryResult R =
            ir::discoverEqualities(AD.Simplified, K.Properties, EqOpts);
        AD.NewEqualities = R.NewEqualities;
        if (R.NewEqualities > 0) {
          AD.Prov.Stage = "equality-discovery";
          AD.Prov.Evidence = R.EqualityStrings;
        }
      }
      AD.CostAfter = codegen::buildInspectorPlan(AD.Simplified).Cost;
      AD.Status = DepStatus::Runtime;
      if (AD.Prov.Stage.empty())
        AD.Prov.Stage = "runtime";
      AD.Prov.Seconds = Sc.seconds();
    }
  }

  // Step 5: subset subsumption (§5). Only live runtime checks may act as
  // the covering test, and a test may only discard one that is at least
  // as expensive (there is no point paying more to cover less).
  if (Opts.UseSubsets) {
    StageScope Sc(Res, "subsumption");
    unsigned Discarded = 0;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (AnalyzedDependence &Cand : Res.Deps) {
        if (Cand.Status != DepStatus::Runtime)
          continue;
        for (AnalyzedDependence &Kept : Res.Deps) {
          if (&Kept == &Cand || Kept.Status != DepStatus::Runtime)
            continue;
          if (Cand.CostAfter < Kept.CostAfter)
            continue;
          // Containment is tested against the keeper's *original* relation:
          // its inspector (simplified or not) enumerates exactly the
          // original edge set, and the original has fewer constraints, so
          // the polyhedral test is both sound and easier. The candidate
          // side uses its simplified form (equalities only shrink it
          // toward its true edge set).
          if (ir::subsumes(Kept.Dep.Rel, Cand.Simplified, Opts.Simp) !=
              presburger::Ternary::True)
            continue;
          Cand.Status = DepStatus::Subsumed;
          Cand.SubsumedBy = Kept.Dep.label();
          Cand.Prov.Stage = "subsumption";
          Cand.Prov.Evidence = {"covered by " + Kept.Dep.label()};
          ++Discarded;
          Changed = true;
          break;
        }
      }
    }
    Sc.span().tag("discarded", static_cast<int64_t>(Discarded));
  }

  // Step 6: inspectors for the survivors, optionally over-approximated
  // down to the kernel's own complexity (§8.1's ILU escape hatch).
  {
    StageScope Sc(Res, "codegen");
    for (AnalyzedDependence &AD : Res.Deps) {
      if (AD.Status != DepStatus::Runtime)
        continue;
      if (Opts.ApproximateExpensive && Res.KernelCost < AD.CostAfter) {
        codegen::ApproximationResult A =
            codegen::approximateToCost(AD.Simplified, Res.KernelCost);
        if (A.Changed) {
          AD.Simplified = std::move(A.Rel);
          AD.CostAfter = A.Cost;
          AD.Approximated = true;
          AD.Prov.addEvidence("over-approximated to cost " + A.Cost.str());
        }
      }
      AD.Plan = codegen::buildInspectorPlan(AD.Simplified);
    }
  }

  return Res;
}

} // namespace deps
} // namespace sds
