//===- Extraction.cpp - Dependence extraction from kernel IR --------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/deps/Extraction.h"

#include <cassert>
#include <set>

namespace sds {
namespace deps {

using ir::Constraint;
using ir::Expr;
using kernels::Access;
using kernels::Kernel;
using kernels::Statement;

namespace {

/// Rename every induction variable of `S` with a trailing prime.
std::map<std::string, Expr> primeMap(const Statement &S) {
  std::map<std::string, Expr> Map;
  for (const std::string &IV : S.ivs())
    Map.emplace(IV, Expr::var(IV + "'"));
  return Map;
}

} // namespace

std::vector<Dependence> extractDependences(const Kernel &K,
                                           bool Deduplicate) {
  std::vector<Dependence> Out;
  std::set<std::string> Seen;

  for (size_t SI = 0; SI < K.Stmts.size(); ++SI) {
    const Statement &S = K.Stmts[SI];
    for (size_t TI = 0; TI < K.Stmts.size(); ++TI) {
      const Statement &T = K.Stmts[TI];
      for (size_t AI = 0; AI < S.Accesses.size(); ++AI) {
        const Access &A = S.Accesses[AI];
        for (size_t BI = 0; BI < T.Accesses.size(); ++BI) {
          const Access &B = T.Accesses[BI];
          if (A.Array != B.Array)
            continue;
          if (!A.IsWrite && !B.IsWrite)
            continue;
          // Commutative reduction updates to the same array carry no
          // mutual ordering requirement (executed atomically).
          if (A.IsReduction && B.IsReduction)
            continue;
          assert(A.Subscripts.size() == B.Subscripts.size() &&
                 "inconsistent array rank");

          std::map<std::string, Expr> Prime = primeMap(T);

          Dependence D;
          D.Array = A.Array;
          D.SrcStmt = S.Name;
          D.DstStmt = T.Name;
          D.SrcAccess = A.str();
          D.DstAccess = B.str();
          D.SrcIsWrite = A.IsWrite;
          D.DstIsWrite = B.IsWrite;

          D.Rel.Name = D.label();
          D.Rel.InVars = S.ivs();
          for (const std::string &IV : T.ivs())
            D.Rel.OutVars.push_back(IV + "'");

          D.Rel.Conj.append(S.iterationDomain());
          D.Rel.Conj.append(T.iterationDomain().substitute(Prime));
          for (size_t DIdx = 0; DIdx < A.Subscripts.size(); ++DIdx)
            D.Rel.Conj.add(Constraint::equals(
                A.Subscripts[DIdx], B.Subscripts[DIdx].substitute(Prime)));
          // Loop-carried on the outermost loop: src strictly earlier.
          D.Rel.Conj.add(Constraint::lt(Expr::var(D.Rel.InVars[0]),
                                        Expr::var(D.Rel.OutVars[0])));

          if (Deduplicate) {
            std::string Key = D.Rel.str();
            // The tuple names are identical for same-statement-pair
            // relations, so the relation text is a canonical key.
            if (!Seen.insert(std::move(Key)).second)
              continue;
          }
          Out.push_back(std::move(D));
        }
      }
    }
  }
  return Out;
}

} // namespace deps
} // namespace sds
