//===- JSON.cpp - Minimal JSON parser for property files ------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/support/JSON.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace sds {
namespace json {

Value::Value(Array A)
    : K(Kind::Array), ArrVal(std::make_shared<Array>(std::move(A))) {}
Value::Value(Object O)
    : K(Kind::Object), ObjVal(std::make_shared<Object>(std::move(O))) {}
Value::Value(const Value &O) = default;
Value &Value::operator=(Value O) noexcept {
  K = O.K;
  BoolVal = O.BoolVal;
  IntVal = O.IntVal;
  DoubleVal = O.DoubleVal;
  StrVal = std::move(O.StrVal);
  ArrVal = std::move(O.ArrVal);
  ObjVal = std::move(O.ObjVal);
  return *this;
}

bool Value::asBool() const {
  assert(isBool());
  return BoolVal;
}
int64_t Value::asInt() const {
  assert(isNumber());
  return K == Kind::Int ? IntVal : static_cast<int64_t>(DoubleVal);
}
double Value::asDouble() const {
  assert(isNumber());
  return K == Kind::Double ? DoubleVal : static_cast<double>(IntVal);
}
const std::string &Value::asString() const {
  assert(isString());
  return StrVal;
}
const Array &Value::asArray() const {
  assert(isArray());
  return *ArrVal;
}
const Object &Value::asObject() const {
  assert(isObject());
  return *ObjVal;
}

const Value *Value::get(std::string_view Key) const {
  if (!isObject())
    return nullptr;
  auto It = ObjVal->find(std::string(Key));
  return It == ObjVal->end() ? nullptr : &It->second;
}

static void escapeTo(const std::string &S, std::string &Out) {
  Out.push_back('"');
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      Out.push_back(C);
    }
  }
  Out.push_back('"');
}

std::string Value::str() const {
  std::string Out;
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return BoolVal ? "true" : "false";
  case Kind::Int:
    return std::to_string(IntVal);
  case Kind::Double: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%g", DoubleVal);
    return Buf;
  }
  case Kind::String:
    escapeTo(StrVal, Out);
    return Out;
  case Kind::Array: {
    Out = "[";
    bool First = true;
    for (const Value &V : *ArrVal) {
      if (!First)
        Out += ",";
      First = false;
      Out += V.str();
    }
    Out += "]";
    return Out;
  }
  case Kind::Object: {
    Out = "{";
    bool First = true;
    for (const auto &[Key, V] : *ObjVal) {
      if (!First)
        Out += ",";
      First = false;
      escapeTo(Key, Out);
      Out += ":";
      Out += V.str();
    }
    Out += "}";
    return Out;
  }
  }
  return Out;
}

namespace {

/// Recursive-descent JSON parser. Kept private to this file.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  ParseResult run() {
    ParseResult R;
    Value V;
    if (!parseValue(V)) {
      fillError(R);
      return R;
    }
    skipWhitespace();
    if (Pos != Text.size()) {
      Err = "trailing characters after JSON document";
      fillError(R);
      return R;
    }
    R.Ok = true;
    R.Val = std::move(V);
    return R;
  }

private:
  void fillError(ParseResult &R) {
    R.Ok = false;
    R.Error = Err.empty() ? "parse error" : Err;
    R.Line = 1;
    R.Col = 1;
    for (size_t I = 0; I < Pos && I < Text.size(); ++I) {
      if (Text[I] == '\n') {
        ++R.Line;
        R.Col = 1;
      } else {
        ++R.Col;
      }
    }
  }

  void skipWhitespace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool fail(const char *Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  bool consume(char C, const char *Msg) {
    skipWhitespace();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(Msg);
    ++Pos;
    return true;
  }

  bool parseValue(Value &Out) {
    skipWhitespace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '"')
      return parseString(Out);
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber(Out);
    if (Text.substr(Pos, 4) == "true") {
      Pos += 4;
      Out = Value(true);
      return true;
    }
    if (Text.substr(Pos, 5) == "false") {
      Pos += 5;
      Out = Value(false);
      return true;
    }
    if (Text.substr(Pos, 4) == "null") {
      Pos += 4;
      Out = Value();
      return true;
    }
    return fail("invalid JSON value");
  }

  bool parseStringRaw(std::string &S) {
    if (!consume('"', "expected string"))
      return false;
    S.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C != '\\') {
        S.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        S.push_back('"');
        break;
      case '\\':
        S.push_back('\\');
        break;
      case '/':
        S.push_back('/');
        break;
      case 'n':
        S.push_back('\n');
        break;
      case 't':
        S.push_back('\t');
        break;
      case 'r':
        S.push_back('\r');
        break;
      case 'b':
        S.push_back('\b');
        break;
      case 'f':
        S.push_back('\f');
        break;
      case 'u': {
        // Basic \uXXXX support: decode to UTF-8 (no surrogate pairs).
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("invalid \\u escape");
        }
        if (Code < 0x80) {
          S.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          S.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          S.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          S.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          S.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          S.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
    if (Pos >= Text.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return true;
  }

  bool parseString(Value &Out) {
    std::string S;
    if (!parseStringRaw(S))
      return false;
    Out = Value(std::move(S));
    return true;
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    bool IsDouble = false;
    if (Pos < Text.size() && Text[Pos] == '.') {
      IsDouble = true;
      ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsDouble = true;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    std::string_view Tok = Text.substr(Start, Pos - Start);
    if (Tok.empty() || Tok == "-")
      return fail("invalid number");
    if (!IsDouble) {
      int64_t I = 0;
      auto [Ptr, Ec] = std::from_chars(Tok.data(), Tok.data() + Tok.size(), I);
      if (Ec == std::errc() && Ptr == Tok.data() + Tok.size()) {
        Out = Value(I);
        return true;
      }
      // Fall through to double on int64 overflow.
    }
    double D = 0;
    auto [Ptr, Ec] = std::from_chars(Tok.data(), Tok.data() + Tok.size(), D);
    if (Ec != std::errc() || Ptr != Tok.data() + Tok.size())
      return fail("invalid number");
    Out = Value(D);
    return true;
  }

  bool parseArray(Value &Out) {
    if (!consume('[', "expected '['"))
      return false;
    Array A;
    skipWhitespace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      Out = Value(std::move(A));
      return true;
    }
    while (true) {
      Value V;
      if (!parseValue(V))
        return false;
      A.push_back(std::move(V));
      skipWhitespace();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (!consume(']', "expected ',' or ']'"))
      return false;
    Out = Value(std::move(A));
    return true;
  }

  bool parseObject(Value &Out) {
    if (!consume('{', "expected '{'"))
      return false;
    Object O;
    skipWhitespace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      Out = Value(std::move(O));
      return true;
    }
    while (true) {
      skipWhitespace();
      std::string Key;
      if (!parseStringRaw(Key))
        return false;
      if (!consume(':', "expected ':'"))
        return false;
      Value V;
      if (!parseValue(V))
        return false;
      O.emplace(std::move(Key), std::move(V));
      skipWhitespace();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (!consume('}', "expected ',' or '}'"))
      return false;
    Out = Value(std::move(O));
    return true;
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

ParseResult parse(std::string_view Text) { return Parser(Text).run(); }

} // namespace json
} // namespace sds
