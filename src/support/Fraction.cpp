//===- Fraction.cpp - Exact rationals over 128-bit integers --------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/support/Fraction.h"

#include <cassert>

namespace sds {

std::string toString(Int128 V) {
  if (V == 0)
    return "0";
  bool Neg = V < 0;
  // Peel digits off the absolute value; negate digit-by-digit to avoid
  // overflow on the minimum value.
  std::string Digits;
  Int128 Cur = V;
  while (Cur != 0) {
    int D = static_cast<int>(Cur % 10);
    if (D < 0)
      D = -D;
    Digits.push_back(static_cast<char>('0' + D));
    Cur /= 10;
  }
  if (Neg)
    Digits.push_back('-');
  return std::string(Digits.rbegin(), Digits.rend());
}

void Fraction::normalize() {
  if (Den == 0) {
    Overflowed = true; // treat as failure; callers bail out
    Den = 1;
    return;
  }
  if (Den < 0) {
    Num = -Num;
    Den = -Den;
  }
  Int128 G = gcd128(Num, Den);
  if (G > 1) {
    Num /= G;
    Den /= G;
  }
}

Fraction Fraction::operator+(const Fraction &O) const {
  if (Overflowed || O.Overflowed)
    return makeOverflowed();
  // Fast path: both integral (the common case early in a simplex run).
  if (Den == 1 && O.Den == 1) {
    Fraction R;
    if (addOverflow128(Num, O.Num, R.Num))
      return makeOverflowed();
    return R;
  }
  // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d).
  Int128 G = gcd128(Den, O.Den);
  Int128 DenDivG = Den / G;
  Int128 L, T1, T2, N;
  if (mulOverflow128(DenDivG, O.Den, L))
    return makeOverflowed();
  if (mulOverflow128(Num, O.Den / G, T1))
    return makeOverflowed();
  if (mulOverflow128(O.Num, DenDivG, T2))
    return makeOverflowed();
  if (addOverflow128(T1, T2, N))
    return makeOverflowed();
  return Fraction(N, L);
}

Fraction Fraction::operator-(const Fraction &O) const { return *this + (-O); }

Fraction Fraction::operator*(const Fraction &O) const {
  if (Overflowed || O.Overflowed)
    return makeOverflowed();
  if (Num == 0 || O.Num == 0)
    return Fraction();
  if (Den == 1 && O.Den == 1) {
    Fraction R;
    if (mulOverflow128(Num, O.Num, R.Num))
      return makeOverflowed();
    return R;
  }
  // Cross-reduce before multiplying to keep magnitudes small.
  Int128 G1 = gcd128(Num, O.Den);
  Int128 G2 = gcd128(O.Num, Den);
  Int128 N1 = G1 ? Num / G1 : Num;
  Int128 D2 = G1 ? O.Den / G1 : O.Den;
  Int128 N2 = G2 ? O.Num / G2 : O.Num;
  Int128 D1 = G2 ? Den / G2 : Den;
  Int128 N, D;
  if (mulOverflow128(N1, N2, N) || mulOverflow128(D1, D2, D))
    return makeOverflowed();
  return Fraction(N, D);
}

Fraction Fraction::operator/(const Fraction &O) const {
  if (Overflowed || O.Overflowed || O.Num == 0)
    return makeOverflowed();
  Fraction Inv;
  Inv.Num = O.Den;
  Inv.Den = O.Num;
  Inv.Overflowed = false;
  if (Inv.Den < 0) {
    Inv.Num = -Inv.Num;
    Inv.Den = -Inv.Den;
  }
  return *this * Inv;
}

int Fraction::compare(const Fraction &O) const {
  assert(!Overflowed && !O.Overflowed && "comparing overflowed fractions");
  // Compare a/b ? c/d via a*d ? c*b (b, d > 0). Fall back to long division
  // if the cross products overflow.
  Int128 L, R;
  if (!mulOverflow128(Num, O.Den, L) && !mulOverflow128(O.Num, Den, R))
    return L < R ? -1 : (L == R ? 0 : 1);
  // Continued-fraction style comparison without big products.
  Int128 A = Num, B = Den, C = O.Num, D = O.Den;
  while (true) {
    Int128 QA = floorDiv128(A, B), QC = floorDiv128(C, D);
    if (QA != QC)
      return QA < QC ? -1 : 1;
    A -= QA * B;
    C -= QC * D;
    if (A == 0 && C == 0)
      return 0;
    if (A == 0)
      return -1;
    if (C == 0)
      return 1;
    // Compare A/B vs C/D with 0 < A/B, C/D < 1: invert and flip.
    Int128 T;
    T = A, A = B, B = T;
    T = C, C = D, D = T;
    T = A, A = C, C = T;
    T = B, B = D, D = T;
  }
}

std::string Fraction::str() const {
  if (Overflowed)
    return "<overflow>";
  if (Den == 1)
    return toString(Num);
  return toString(Num) + "/" + toString(Den);
}

} // namespace sds
