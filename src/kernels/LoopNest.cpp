//===- LoopNest.cpp - Loop-nest IR for sparse kernels ---------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/kernels/LoopNest.h"

#include <cassert>

namespace sds {
namespace kernels {

std::string Access::str() const {
  std::string Out = Array + "[";
  for (size_t I = 0; I < Subscripts.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Subscripts[I].str();
  }
  Out += "]";
  return Out + (IsReduction ? " (u)" : (IsWrite ? " (w)" : " (r)"));
}

ir::Conjunction Statement::iterationDomain() const {
  ir::Conjunction C;
  for (const Loop &L : Loops) {
    C.add(ir::Constraint::le(L.LB, ir::Expr::var(L.IV)));
    C.add(ir::Constraint::lt(ir::Expr::var(L.IV), L.UB));
  }
  C.append(Guards);
  return C;
}

std::vector<std::string> Statement::ivs() const {
  std::vector<std::string> Out;
  Out.reserve(Loops.size());
  for (const Loop &L : Loops)
    Out.push_back(L.IV);
  return Out;
}

std::string Kernel::str() const {
  std::string Out = Name + " (" + Format + ", from " + Source + ")\n";
  for (const Statement &S : Stmts) {
    Out += "  " + S.Name + " @ [";
    for (size_t I = 0; I < S.Loops.size(); ++I) {
      if (I)
        Out += ", ";
      Out += S.Loops[I].IV;
    }
    Out += "]: ";
    for (size_t I = 0; I < S.Accesses.size(); ++I) {
      if (I)
        Out += ", ";
      Out += S.Accesses[I].str();
    }
    if (!S.Guards.empty())
      Out += "  if " + S.Guards.str();
    Out += "\n";
  }
  return Out;
}

KernelBuilder::KernelBuilder(std::string Name, std::string Format,
                             std::string Source) {
  K.Name = std::move(Name);
  K.Format = std::move(Format);
  K.Source = std::move(Source);
}

KernelBuilder &KernelBuilder::loop(std::string IV, ir::Expr LB, ir::Expr UB) {
  OpenLoops.push_back({std::move(IV), std::move(LB), std::move(UB)});
  return *this;
}

KernelBuilder &KernelBuilder::end() {
  assert(!OpenLoops.empty() && "end() without an open loop");
  OpenLoops.pop_back();
  return *this;
}

KernelBuilder &KernelBuilder::guard(ir::Constraint C) {
  PendingGuards.add(std::move(C));
  return *this;
}

KernelBuilder &KernelBuilder::stmt(std::string Name,
                                   std::vector<Access> Accesses) {
  Statement S;
  S.Name = std::move(Name);
  S.Loops = OpenLoops;
  S.Guards = std::move(PendingGuards);
  PendingGuards = ir::Conjunction();
  S.Accesses = std::move(Accesses);
  K.Stmts.push_back(std::move(S));
  return *this;
}

Kernel KernelBuilder::take() {
  assert(OpenLoops.empty() && "unclosed loops at take()");
  return std::move(K);
}

ir::Expr v(const std::string &Name) { return ir::Expr::var(Name); }
ir::Expr uf(const std::string &Fn, ir::Expr Arg) {
  return ir::Expr::call(Fn, {std::move(Arg)});
}
Access read(std::string Array, std::vector<ir::Expr> Subs) {
  return {std::move(Array), std::move(Subs), /*IsWrite=*/false};
}
Access write(std::string Array, std::vector<ir::Expr> Subs) {
  return {std::move(Array), std::move(Subs), /*IsWrite=*/true};
}
Access update(std::string Array, std::vector<ir::Expr> Subs) {
  return {std::move(Array), std::move(Subs), /*IsWrite=*/true,
          /*IsReduction=*/true};
}

} // namespace kernels
} // namespace sds
