//===- Kernels.cpp - The Table-2 benchmark suite --------------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/kernels/Kernels.h"

namespace sds {
namespace kernels {

using ir::Constraint;
using ir::Expr;
using ir::PropertyKind;
using ir::PropertySet;

namespace {

/// CSR matrices: rowptr strictly increasing over [0, n], col sorted within
/// each row. `LowerTriangular` adds col(k) <= i for k in row i.
PropertySet csrProperties(bool LowerTriangular, bool DiagPointers) {
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "rowptr");
  PS.add(PropertyKind::PeriodicMonotonic, "col", "rowptr");
  if (LowerTriangular)
    PS.add(PropertyKind::TriangularEntriesLE, "col", "rowptr");
  if (DiagPointers)
    PS.add(PropertyKind::SegmentPointer, "diag", "rowptr");
  ir::DomainRangeDecl D;
  D.Fn = "rowptr";
  D.DomLo = Expr(0);
  D.DomHi = Expr::var("n");
  D.RanLo = Expr(0);
  D.RanHi = Expr::var("nnz");
  PS.addDomainRange(D);
  return PS;
}

std::string csrPropertyJSON(bool LowerTriangular, bool DiagPointers) {
  std::string J = R"({
  "index_arrays": {
    "rowptr": {
      "properties": ["strict_monotonic_increasing"],
      "domain": [0, "n"], "range": [0, "nnz"]
    },
    "col": {
      "properties": [
        {"kind": "periodic_monotonic", "segment": "rowptr"})";
  if (LowerTriangular)
    J += R"(,
        {"kind": "triangular_entries_le", "ptr": "rowptr"})";
  J += R"(
      ]
    })";
  if (DiagPointers)
    J += R"(,
    "diag": {
      "properties": [{"kind": "segment_pointer", "ptr": "rowptr"}]
    })";
  J += "\n  }\n}\n";
  return J;
}

/// CSC matrices: colptr strictly increasing, rowidx sorted within each
/// column; lower-triangular factors have rowidx(p) >= j within column j
/// (diagonal stored first).
PropertySet cscProperties(bool LowerTriangular) {
  PropertySet PS;
  PS.add(PropertyKind::StrictMonotonicIncreasing, "colptr");
  PS.add(PropertyKind::PeriodicMonotonic, "rowidx", "colptr");
  if (LowerTriangular) {
    PS.add(PropertyKind::TriangularEntriesGE, "rowidx", "colptr");
    // Diagonal-first storage: the first entry of column x is row x.
    PS.add(PropertyKind::SegmentStartIdentity, "rowidx", "colptr", Expr(0),
           Expr::var("n"));
  }
  ir::DomainRangeDecl D;
  D.Fn = "colptr";
  D.DomLo = Expr(0);
  D.DomHi = Expr::var("n");
  D.RanLo = Expr(0);
  D.RanHi = Expr::var("nnz");
  PS.addDomainRange(D);
  return PS;
}

std::string cscPropertyJSON(bool LowerTriangular) {
  std::string J = R"({
  "index_arrays": {
    "colptr": {
      "properties": ["strict_monotonic_increasing"],
      "domain": [0, "n"], "range": [0, "nnz"]
    },
    "rowidx": {
      "properties": [
        {"kind": "periodic_monotonic", "segment": "colptr"})";
  if (LowerTriangular)
    J += R"(,
        {"kind": "triangular_entries_ge", "ptr": "colptr"},
        {"kind": "segment_start_identity", "ptr": "colptr",
         "domain": [0, "n"]})";
  J += "\n      ]\n    }\n  }\n}\n";
  return J;
}

} // namespace

Kernel forwardSolveCSR() {
  // Figure 1:
  //   for (i = 0; i < n; i++) {
  //     tmp = f[i];
  //     for (k = rowptr[i]; k < rowptr[i+1]-1; k++)
  //       S1: tmp -= val[k] * u[col[k]];
  //     S2: u[i] = tmp / val[rowptr[i+1]-1];
  //   }
  KernelBuilder B("Forward Solve CSR", "CSR", "Vuduc et al. [65]");
  Expr I = v("i"), K = v("k"), N = v("n");
  B.loop("i", Expr(0), N)
      .loop("k", uf("rowptr", I), uf("rowptr", I + Expr(1)) - Expr(1))
      .stmt("S1", {read("val", {K}), read("u", {uf("col", K)})})
      .end()
      .stmt("S2", {write("u", {I}), read("f", {I}),
                   read("val", {uf("rowptr", I + Expr(1)) - Expr(1)})})
      .end();
  Kernel Out = B.take();
  Out.Properties = csrProperties(/*LowerTriangular=*/true,
                                 /*DiagPointers=*/false);
  Out.PropertyJSON = csrPropertyJSON(true, false);
  return Out;
}

Kernel gaussSeidelCSR() {
  // MKL-style sweep over a general matrix (diagonal position given by the
  // diag pointer array):
  //   for (i = 0; i < n; i++) {
  //     sum = f[i];
  //     for (k = rowptr[i]; k < rowptr[i+1]; k++)
  //       S1: sum -= val[k] * x[col[k]];    // diagonal corrected via S2
  //     S2: x[i] = sum / val[diag[i]];
  //   }
  KernelBuilder B("Gauss-Seidel CSR", "CSR", "Intel MKL [66]");
  Expr I = v("i"), K = v("k"), N = v("n");
  B.loop("i", Expr(0), N)
      .loop("k", uf("rowptr", I), uf("rowptr", I + Expr(1)))
      .stmt("S1", {read("val", {K}), read("x", {uf("col", K)})})
      .end()
      .stmt("S2", {write("x", {I}), read("f", {I}),
                   read("val", {uf("diag", I)})})
      .end();
  Kernel Out = B.take();
  Out.Properties = csrProperties(/*LowerTriangular=*/false,
                                 /*DiagPointers=*/true);
  Out.PropertyJSON = csrPropertyJSON(false, true);
  return Out;
}

Kernel spmvCSR() {
  //   for (i = 0; i < n; i++)
  //     for (k = rowptr[i]; k < rowptr[i+1]; k++)
  //       S1: y[i] += val[k] * x[col[k]];
  KernelBuilder B("Sparse MV Multiply CSR", "CSR", "common");
  Expr I = v("i"), K = v("k"), N = v("n");
  B.loop("i", Expr(0), N)
      .loop("k", uf("rowptr", I), uf("rowptr", I + Expr(1)))
      .stmt("S1", {write("y", {I}), read("y", {I}), read("val", {K}),
                   read("x", {uf("col", K)})})
      .end()
      .end();
  Kernel Out = B.take();
  Out.Properties = csrProperties(/*LowerTriangular=*/true,
                                 /*DiagPointers=*/false);
  Out.PropertyJSON = csrPropertyJSON(true, false);
  return Out;
}

Kernel forwardSolveCSC() {
  // Sympiler's column-oriented lower-triangular solve:
  //   for (j = 0; j < n; j++) {
  //     S1: x[j] = x[j] / val[colptr[j]];
  //     for (p = colptr[j]+1; p < colptr[j+1]; p++)
  //       S2: x[rowidx[p]] -= val[p] * x[j];
  //   }
  KernelBuilder B("Forward Solve CSC", "CSC", "Sympiler [15]");
  Expr J = v("j"), P = v("p"), N = v("n");
  B.loop("j", Expr(0), N)
      .stmt("S1", {write("x", {J}), read("x", {J}),
                   read("val", {uf("colptr", J)})})
      .loop("p", uf("colptr", J) + Expr(1), uf("colptr", J + Expr(1)))
      .stmt("S2", {update("x", {uf("rowidx", P)}), read("x", {J}),
                   read("val", {P})})
      .end()
      .end();
  Kernel Out = B.take();
  Out.Properties = cscProperties(/*LowerTriangular=*/true);
  Out.PropertyJSON = cscPropertyJSON(true);
  return Out;
}

Kernel incompleteCholeskyCSC() {
  // Figure 4 / Figure 6 (SparseLib++), with colPtr -> colptr and
  // rowIdx -> rowidx:
  //   for (i = 0; i < n; i++) {
  //     S1: val[colptr[i]] = sqrt(val[colptr[i]]);
  //     for (m = colptr[i]+1; m < colptr[i+1]; m++)
  //       S2: val[m] = val[m] / val[colptr[i]];
  //     for (m = colptr[i]+1; m < colptr[i+1]; m++)
  //       for (k = colptr[rowidx[m]]; k < colptr[rowidx[m]+1]; k++)
  //         for (l = m; l < colptr[i+1]; l++)
  //           if (rowidx[l] == rowidx[k] && rowidx[l+1] <= rowidx[k])
  //             S3: val[k] -= val[m] * val[l];
  //   }
  KernelBuilder B("Incomplete Cholesky CSC", "CSC", "SparseLib++ [43]");
  Expr I = v("i"), M = v("m"), K = v("k"), L = v("l"), N = v("n");
  B.loop("i", Expr(0), N)
      .stmt("S1", {write("val", {uf("colptr", I)}),
                   read("val", {uf("colptr", I)})})
      .loop("m", uf("colptr", I) + Expr(1), uf("colptr", I + Expr(1)))
      .stmt("S2", {write("val", {M}), read("val", {M}),
                   read("val", {uf("colptr", I)})})
      .end()
      .loop("m", uf("colptr", I) + Expr(1), uf("colptr", I + Expr(1)))
      .loop("k", uf("colptr", uf("rowidx", M)),
            uf("colptr", uf("rowidx", M) + Expr(1)))
      .loop("l", M, uf("colptr", I + Expr(1)))
      .guard(Constraint::equals(uf("rowidx", L), uf("rowidx", K)))
      .guard(Constraint::le(uf("rowidx", L + Expr(1)), uf("rowidx", K)))
      .stmt("S3", {update("val", {K}), read("val", {M}),
                   read("val", {L})})
      .end()
      .end()
      .end()
      .end();
  Kernel Out = B.take();
  Out.Properties = cscProperties(/*LowerTriangular=*/true);
  Out.PropertyJSON = cscPropertyJSON(true);
  return Out;
}

Kernel incompleteLU0CSR() {
  // MKL-style ILU0 on a general CSR matrix with diag pointers:
  //   for (i = 0; i < n; i++)
  //     for (k = rowptr[i]; k < rowptr[i+1] && col[k] < i; k++) {
  //       S1: val[k] = val[k] / val[diag[col[k]]];
  //       for (j = k+1; j < rowptr[i+1]; j++)
  //         for (l = rowptr[col[k]]; l < rowptr[col[k]+1]; l++)
  //           if (col[l] == col[j])
  //             S2: val[j] -= val[k] * val[l];
  //     }
  KernelBuilder B("Incomplete LU0 CSR", "CSR", "Intel MKL [66]");
  Expr I = v("i"), K = v("k"), J = v("j"), L = v("l"), N = v("n");
  B.loop("i", Expr(0), N)
      .loop("k", uf("rowptr", I), uf("rowptr", I + Expr(1)))
      .guard(Constraint::lt(uf("col", K), I))
      .stmt("S1", {write("val", {K}), read("val", {K}),
                   read("val", {uf("diag", uf("col", K))})})
      .loop("j", K + Expr(1), uf("rowptr", I + Expr(1)))
      .loop("l", uf("rowptr", uf("col", K)),
            uf("rowptr", uf("col", K) + Expr(1)))
      .guard(Constraint::lt(uf("col", K), I)) // still inside the k-guard
      .guard(Constraint::equals(uf("col", L), uf("col", J)))
      .stmt("S2", {update("val", {J}), read("val", {K}),
                   read("val", {L})})
      .end()
      .end()
      .end()
      .end();
  Kernel Out = B.take();
  Out.Properties = csrProperties(/*LowerTriangular=*/false,
                                 /*DiagPointers=*/true);
  Out.PropertyJSON = csrPropertyJSON(false, true);
  return Out;
}

Kernel leftCholeskyCSC() {
  // Sympiler-style static left-looking Cholesky. Column j is updated by
  // the columns named in its static prune set, then scaled. The gather
  // buffer (reset per column) is privatizable and not modeled.
  //   for (j = 0; j < n; j++) {
  //     for (t = pruneptr[j]; t < pruneptr[j+1]; t++)        // k = pruneset[t]
  //       for (p = colptr[pruneset[t]]; p < colptr[pruneset[t]+1]; p++)
  //         S1: ... reads lval[p] ...                         // update
  //     S2: lval[colptr[j]] = sqrt(f[j]);
  //     for (p = colptr[j]+1; p < colptr[j+1]; p++)
  //       S3: lval[p] = f[rowidx[p]] / lval[colptr[j]];
  //   }
  KernelBuilder B("Static Left Cholesky CSC", "CSC", "Sympiler [15]");
  Expr J = v("j"), T = v("t"), P = v("p"), N = v("n");
  B.loop("j", Expr(0), N)
      .loop("t", uf("pruneptr", J), uf("pruneptr", J + Expr(1)))
      .loop("p", uf("colptr", uf("pruneset", T)),
            uf("colptr", uf("pruneset", T) + Expr(1)))
      .stmt("S1", {read("lval", {P})})
      .end()
      .end()
      .stmt("S2", {write("lval", {uf("colptr", J)})})
      .loop("p", uf("colptr", J) + Expr(1), uf("colptr", J + Expr(1)))
      .stmt("S3", {write("lval", {P}), read("lval", {uf("colptr", J)})})
      .end()
      .end();
  Kernel Out = B.take();
  PropertySet PS = cscProperties(/*LowerTriangular=*/true);
  // Prune sets name strictly earlier columns, and pruneptr is monotone.
  PS.add(PropertyKind::StrictMonotonicIncreasing, "pruneptr");
  PS.add(PropertyKind::TriangularEntriesLT, "pruneset", "pruneptr");
  Out.Properties = PS;
  Out.PropertyJSON = R"({
  "index_arrays": {
    "colptr": {
      "properties": ["strict_monotonic_increasing"],
      "domain": [0, "n"], "range": [0, "nnz"]
    },
    "rowidx": {
      "properties": [
        {"kind": "periodic_monotonic", "segment": "colptr"},
        {"kind": "triangular_entries_ge", "ptr": "colptr"},
        {"kind": "segment_start_identity", "ptr": "colptr",
         "domain": [0, "n"]}
      ]
    },
    "pruneptr": {"properties": ["strict_monotonic_increasing"]},
    "pruneset": {
      "properties": [{"kind": "triangular_entries_lt", "ptr": "pruneptr"}]
    }
  }
}
)";
  return Out;
}

std::vector<Kernel> allKernels() {
  return {gaussSeidelCSR(),        incompleteLU0CSR(),
          incompleteCholeskyCSC(), forwardSolveCSC(),
          forwardSolveCSR(),       spmvCSR(),
          leftCholeskyCSC()};
}

} // namespace kernels
} // namespace sds
