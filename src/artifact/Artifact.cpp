//===- Artifact.cpp - Versioned compile-once/run-many artifacts -----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The CompiledKernel codec. Encoding is structural (expression trees, not
// re-parsed text) so a decoded artifact is field-for-field identical to
// the encoded one: conjunctions rebuild through Conjunction::add in
// serialized order, expressions rebuild through the canonicalizing Expr
// constructors, and nothing on the decode path touches the Presburger
// layer. Decoding validates every field and fails with a contextful
// Status; the caller-visible artifact is only assigned on full success.
//
//===----------------------------------------------------------------------===//

#include "sds/artifact/Artifact.h"

#include "sds/ir/Properties.h"
#include "sds/obs/FlightRecorder.h"
#include "sds/obs/Metrics.h"
#include "sds/support/JSON.h"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

namespace sds {
namespace artifact {

using json::Array;
using json::Object;
using json::Value;
using support::Status;

namespace {

constexpr const char *kMagic = "sds.compiled_kernel";

/// FNV-1a 64-bit over a byte string, rendered as 16 lowercase hex digits.
std::string fnv1aHex(std::string_view S) {
  uint64_t H = 1469598103934665603ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  char Buf[17];
  static const char *Hex = "0123456789abcdef";
  for (int I = 15; I >= 0; --I) {
    Buf[I] = Hex[H & 0xf];
    H >>= 4;
  }
  Buf[16] = '\0';
  return Buf;
}

//===----------------------------------------------------------------------===//
// Encoding
//===----------------------------------------------------------------------===//

Value exprJSON(const ir::Expr &E) {
  Object O;
  O.emplace("c", Value(E.constant()));
  if (!E.terms().empty()) {
    Array Terms;
    for (const ir::Expr::Term &T : E.terms()) {
      Array Pair;
      Pair.push_back(Value(T.Coeff));
      Object A;
      if (T.A.isVar()) {
        A.emplace("v", Value(T.A.Name));
      } else {
        A.emplace("f", Value(T.A.Name));
        if (!T.A.Args.empty()) {
          Array Args;
          for (const ir::Expr &Arg : T.A.Args)
            Args.push_back(exprJSON(Arg));
          A.emplace("a", Value(std::move(Args)));
        }
      }
      Pair.push_back(Value(std::move(A)));
      Terms.push_back(Value(std::move(Pair)));
    }
    O.emplace("t", Value(std::move(Terms)));
  }
  return Value(std::move(O));
}

Value constraintJSON(const ir::Constraint &C) {
  Array Pair;
  Pair.push_back(Value(std::string(C.isEq() ? "eq" : "ge")));
  Pair.push_back(exprJSON(C.E));
  return Value(std::move(Pair));
}

Value conjunctionJSON(const ir::Conjunction &Conj) {
  Array Out;
  for (const ir::Constraint &C : Conj.constraints())
    Out.push_back(constraintJSON(C));
  return Value(std::move(Out));
}

Value stringsJSON(const std::vector<std::string> &Ss) {
  Array Out;
  for (const std::string &S : Ss)
    Out.push_back(Value(S));
  return Value(std::move(Out));
}

Value relationJSON(const ir::SparseRelation &R) {
  Object O;
  if (!R.Name.empty())
    O.emplace("name", Value(R.Name));
  if (!R.InVars.empty())
    O.emplace("in", stringsJSON(R.InVars));
  if (!R.OutVars.empty())
    O.emplace("out", stringsJSON(R.OutVars));
  if (!R.ExistVars.empty())
    O.emplace("exist", stringsJSON(R.ExistVars));
  O.emplace("conj", conjunctionJSON(R.Conj));
  return Value(std::move(O));
}

bool isDefaultRelation(const ir::SparseRelation &R) {
  return R.Name.empty() && R.InVars.empty() && R.OutVars.empty() &&
         R.ExistVars.empty() && R.Conj.empty();
}

Value complexityJSON(const codegen::Complexity &C) {
  Array Pair;
  Pair.push_back(Value(static_cast<int64_t>(C.NExp)));
  Pair.push_back(Value(static_cast<int64_t>(C.DExp)));
  return Value(std::move(Pair));
}

Value planJSON(const codegen::InspectorPlan &P) {
  Object O;
  O.emplace("valid", Value(P.Valid));
  if (!P.WhyInvalid.empty())
    O.emplace("why", Value(P.WhyInvalid));
  if (!P.Valid)
    return Value(std::move(O));
  O.emplace("src", Value(P.SrcIter));
  O.emplace("dst", Value(P.DstIter));
  O.emplace("cost", complexityJSON(P.Cost));
  Array Vars;
  for (const codegen::PlanVar &V : P.Vars) {
    Object VO;
    VO.emplace("name", Value(V.Name));
    VO.emplace("kind", Value(std::string(
                           V.K == codegen::PlanVar::Kind::Loop ? "loop"
                                                               : "solved")));
    if (V.K == codegen::PlanVar::Kind::Solved)
      VO.emplace("solved", exprJSON(V.Solved));
    if (!V.Lowers.empty()) {
      Array Lo;
      for (const ir::Expr &E : V.Lowers)
        Lo.push_back(exprJSON(E));
      VO.emplace("lo", Value(std::move(Lo)));
    }
    if (!V.Uppers.empty()) {
      Array Up;
      for (const ir::Expr &E : V.Uppers)
        Up.push_back(exprJSON(E));
      VO.emplace("up", Value(std::move(Up)));
    }
    if (!V.Guards.empty()) {
      Array Gs;
      for (const ir::Constraint &C : V.Guards)
        Gs.push_back(constraintJSON(C));
      VO.emplace("guards", Value(std::move(Gs)));
    }
    VO.emplace("range", complexityJSON(V.Range));
    Vars.push_back(Value(std::move(VO)));
  }
  O.emplace("vars", Value(std::move(Vars)));
  return Value(std::move(O));
}

bool isDefaultPlan(const codegen::InspectorPlan &P) {
  return !P.Valid && P.WhyInvalid.empty() && P.Vars.empty();
}

Value provenanceJSON(const obs::Provenance &P) {
  Object O;
  O.emplace("stage", Value(P.Stage));
  if (!P.Evidence.empty())
    O.emplace("evidence", stringsJSON(P.Evidence));
  O.emplace("seconds", Value(P.Seconds));
  return Value(std::move(O));
}

Value analyzedDepJSON(const deps::AnalyzedDependence &D) {
  Object O;
  Object Dep;
  Dep.emplace("rel", relationJSON(D.Dep.Rel));
  Dep.emplace("array", Value(D.Dep.Array));
  Dep.emplace("src_stmt", Value(D.Dep.SrcStmt));
  Dep.emplace("dst_stmt", Value(D.Dep.DstStmt));
  Dep.emplace("src_access", Value(D.Dep.SrcAccess));
  Dep.emplace("dst_access", Value(D.Dep.DstAccess));
  Dep.emplace("src_write", Value(D.Dep.SrcIsWrite));
  Dep.emplace("dst_write", Value(D.Dep.DstIsWrite));
  O.emplace("dep", Value(std::move(Dep)));
  O.emplace("status", Value(deps::depStatusName(D.Status)));
  if (!isDefaultRelation(D.Simplified))
    O.emplace("simplified", relationJSON(D.Simplified));
  if (D.NewEqualities)
    O.emplace("new_equalities", Value(static_cast<int64_t>(D.NewEqualities)));
  O.emplace("cost_before", complexityJSON(D.CostBefore));
  O.emplace("cost_after", complexityJSON(D.CostAfter));
  if (!D.SubsumedBy.empty())
    O.emplace("subsumed_by", Value(D.SubsumedBy));
  if (!isDefaultPlan(D.Plan))
    O.emplace("plan", planJSON(D.Plan));
  if (D.Approximated)
    O.emplace("approximated", Value(true));
  if (!D.Prov.Stage.empty() || !D.Prov.Evidence.empty())
    O.emplace("prov", provenanceJSON(D.Prov));
  if (D.HasCore) {
    // Additive (schema-compatible) field: the unsat core justifying this
    // dependence's verdict. Loaders that predate it ignore the key;
    // artifacts that predate it decode with HasCore == false, which makes
    // the guard fall back to full property validation.
    Object Core;
    if (!D.Core.Assertions.empty())
      Core.emplace("assertions", stringsJSON(D.Core.Assertions));
    Core.emplace("minimized", Value(D.Core.Minimized));
    Core.emplace("farkas", Value(D.Core.FromFarkas));
    O.emplace("core", Value(std::move(Core)));
  }
  if (D.Remediable) {
    // Additive speculation fields: which Inferred-tier assertion bases this
    // dependence's verdict leans on. Loaders that predate them ignore the
    // keys; older blobs decode with Remediable == false.
    O.emplace("remediable", Value(true));
    O.emplace("inferred_cited", stringsJSON(D.InferredCited));
  }
  return Value(std::move(O));
}

Value propertySetJSON(const ir::PropertySet &PS) {
  Object O;
  Array Props;
  for (const ir::IndexArrayProperty &P : PS.properties()) {
    Object PO;
    PO.emplace("kind", Value(ir::propertyKindName(P.K)));
    PO.emplace("fn", Value(P.Fn));
    if (!P.Other.empty())
      PO.emplace("other", Value(P.Other));
    if (P.GuardLo)
      PO.emplace("glo", exprJSON(*P.GuardLo));
    if (P.GuardHi)
      PO.emplace("ghi", exprJSON(*P.GuardHi));
    // Additive trust-tier field, omitted for Declared so pre-speculation
    // artifacts stay byte-identical; blobs without it decode as Declared.
    if (P.Tier != ir::PropertyTier::Declared)
      PO.emplace("tier", Value(ir::propertyTierName(P.Tier)));
    Props.push_back(Value(std::move(PO)));
  }
  O.emplace("props", Value(std::move(Props)));
  Array Ranges;
  for (const ir::DomainRangeDecl &D : PS.domainRanges()) {
    Object RO;
    RO.emplace("fn", Value(D.Fn));
    if (D.DomLo)
      RO.emplace("dlo", exprJSON(*D.DomLo));
    if (D.DomHi)
      RO.emplace("dhi", exprJSON(*D.DomHi));
    if (D.RanLo)
      RO.emplace("rlo", exprJSON(*D.RanLo));
    if (D.RanHi)
      RO.emplace("rhi", exprJSON(*D.RanHi));
    if (D.Tier != ir::PropertyTier::Declared)
      RO.emplace("tier", Value(ir::propertyTierName(D.Tier)));
    Ranges.push_back(Value(std::move(RO)));
  }
  O.emplace("ranges", Value(std::move(Ranges)));
  return Value(std::move(O));
}

Value payloadJSON(const CompiledKernel &CK) {
  Object Root;
  Object Kernel;
  Kernel.emplace("name", Value(CK.KernelName));
  Kernel.emplace("format", Value(CK.Format));
  if (!CK.Source.empty())
    Kernel.emplace("source", Value(CK.Source));
  Kernel.emplace("cost", complexityJSON(CK.KernelCost));
  Root.emplace("kernel", Value(std::move(Kernel)));
  Object Opts;
  Opts.emplace("properties", Value(CK.Options.UseProperties));
  Opts.emplace("equalities", Value(CK.Options.UseEqualities));
  Opts.emplace("subsets", Value(CK.Options.UseSubsets));
  Opts.emplace("approximate", Value(CK.Options.ApproximateExpensive));
  // Additive: emitted only when on so non-speculated artifacts keep their
  // pre-speculation byte layout; absent decodes to false.
  if (CK.Options.Speculate)
    Opts.emplace("infer", Value(true));
  Root.emplace("options", Value(std::move(Opts)));
  Root.emplace("properties", propertySetJSON(CK.Properties));
  Array Deps;
  for (const deps::AnalyzedDependence &D : CK.Deps)
    Deps.push_back(analyzedDepJSON(D));
  Root.emplace("deps", Value(std::move(Deps)));
  Object Stages;
  for (size_t I = 0; I < schema::kNumStageKeys; ++I) {
    auto It = CK.StageSeconds.find(schema::kStageKeys[I]);
    Stages.emplace(schema::kStageKeys[I],
                   Value(It == CK.StageSeconds.end() ? 0.0 : It->second));
  }
  // Preserve any non-standard keys too (forward compatibility).
  for (const auto &[Stage, Seconds] : CK.StageSeconds)
    Stages.emplace(Stage, Value(Seconds)); // no-op for existing keys
  Root.emplace("stage_seconds", Value(std::move(Stages)));
  Object Sched;
  Sched.emplace("kind",
                Value(std::string(rt::scheduleKindName(CK.Schedule.Kind))));
  Sched.emplace("min_work_per_thread", Value(CK.Schedule.MinWorkPerThread));
  Sched.emplace("coalesce_factor", Value(CK.Schedule.CoalesceFactor));
  Sched.emplace("min_vector_run",
                Value(static_cast<int64_t>(CK.Schedule.MinVectorRun)));
  Root.emplace("schedule", Value(std::move(Sched)));
  // Additive: the inference fingerprint a speculated analysis ran against,
  // as 16 hex digits (uint64 range exceeds JSON's signed-int lane). Absent
  // decodes to 0 — pre-speculation blobs load as Declared-only.
  if (CK.InferredFingerprint) {
    char Buf[17];
    std::snprintf(Buf, sizeof(Buf), "%016llx",
                  static_cast<unsigned long long>(CK.InferredFingerprint));
    Root.emplace("inferred_fingerprint", Value(std::string(Buf)));
  }
  return Value(std::move(Root));
}

//===----------------------------------------------------------------------===//
// Decoding
//===----------------------------------------------------------------------===//

const Value *find(const Object &O, const char *Key) {
  auto It = O.find(Key);
  return It == O.end() ? nullptr : &It->second;
}

Status fieldError(const char *Key, const char *Want) {
  return support::parseError(std::string("field '") + Key + "': expected " +
                             Want);
}
Status missing(const char *Key) {
  return support::parseError(std::string("missing field '") + Key + "'");
}

Status reqObj(const Object &O, const char *Key, const Object *&Out) {
  const Value *V = find(O, Key);
  if (!V)
    return missing(Key);
  if (!V->isObject())
    return fieldError(Key, "object");
  Out = &V->asObject();
  return {};
}

Status reqArr(const Object &O, const char *Key, const Array *&Out) {
  const Value *V = find(O, Key);
  if (!V)
    return missing(Key);
  if (!V->isArray())
    return fieldError(Key, "array");
  Out = &V->asArray();
  return {};
}

Status reqStr(const Object &O, const char *Key, std::string &Out) {
  const Value *V = find(O, Key);
  if (!V)
    return missing(Key);
  if (!V->isString())
    return fieldError(Key, "string");
  Out = V->asString();
  return {};
}

Status optStr(const Object &O, const char *Key, std::string &Out) {
  const Value *V = find(O, Key);
  if (!V)
    return {};
  if (!V->isString())
    return fieldError(Key, "string");
  Out = V->asString();
  return {};
}

Status reqBool(const Object &O, const char *Key, bool &Out) {
  const Value *V = find(O, Key);
  if (!V)
    return missing(Key);
  if (!V->isBool())
    return fieldError(Key, "bool");
  Out = V->asBool();
  return {};
}

Status optBool(const Object &O, const char *Key, bool &Out) {
  const Value *V = find(O, Key);
  if (!V)
    return {};
  if (!V->isBool())
    return fieldError(Key, "bool");
  Out = V->asBool();
  return {};
}

Status reqInt(const Object &O, const char *Key, int64_t &Out) {
  const Value *V = find(O, Key);
  if (!V)
    return missing(Key);
  if (!V->isInt())
    return fieldError(Key, "integer");
  Out = V->asInt();
  return {};
}

Status reqNum(const Object &O, const char *Key, double &Out) {
  const Value *V = find(O, Key);
  if (!V)
    return missing(Key);
  if (!V->isNumber())
    return fieldError(Key, "number");
  Out = V->asDouble();
  return {};
}

Status decodeExpr(const Value &V, ir::Expr &Out);

Status decodeExprList(const Value &V, const char *What,
                      std::vector<ir::Expr> &Out) {
  if (!V.isArray())
    return fieldError(What, "array");
  for (const Value &E : V.asArray()) {
    ir::Expr X;
    if (Status S = decodeExpr(E, X); !S.ok())
      return S.withContext(What);
    Out.push_back(std::move(X));
  }
  return {};
}

Status decodeExpr(const Value &V, ir::Expr &Out) {
  if (!V.isObject())
    return support::parseError("expression: expected object");
  const Object &O = V.asObject();
  int64_t C = 0;
  if (Status S = reqInt(O, "c", C); !S.ok())
    return S;
  ir::Expr E(C);
  if (const Value *T = find(O, "t")) {
    if (!T->isArray())
      return fieldError("t", "array");
    for (const Value &Term : T->asArray()) {
      if (!Term.isArray() || Term.asArray().size() != 2)
        return support::parseError("term: expected [coeff, atom] pair");
      const Value &CoeffV = Term.asArray()[0];
      const Value &AtomV = Term.asArray()[1];
      if (!CoeffV.isInt())
        return support::parseError("term coefficient: expected integer");
      if (!AtomV.isObject())
        return support::parseError("term atom: expected object");
      const Object &A = AtomV.asObject();
      if (const Value *Var = find(A, "v")) {
        if (!Var->isString())
          return fieldError("v", "string");
        E += ir::Expr(CoeffV.asInt(), ir::Atom::var(Var->asString()));
      } else if (const Value *Fn = find(A, "f")) {
        if (!Fn->isString())
          return fieldError("f", "string");
        std::vector<ir::Expr> Args;
        if (const Value *ArgsV = find(A, "a"))
          if (Status S = decodeExprList(*ArgsV, "a", Args); !S.ok())
            return S;
        E += ir::Expr(CoeffV.asInt(),
                      ir::Atom::call(Fn->asString(), std::move(Args)));
      } else {
        return support::parseError("term atom: needs 'v' or 'f'");
      }
    }
  }
  Out = std::move(E);
  return {};
}

Status decodeConstraint(const Value &V, ir::Constraint &Out) {
  if (!V.isArray() || V.asArray().size() != 2)
    return support::parseError("constraint: expected [kind, expr] pair");
  const Value &KindV = V.asArray()[0];
  if (!KindV.isString())
    return support::parseError("constraint kind: expected string");
  ir::Constraint::Kind K;
  if (KindV.asString() == "eq")
    K = ir::Constraint::Kind::Eq;
  else if (KindV.asString() == "ge")
    K = ir::Constraint::Kind::Geq;
  else
    return support::parseError("constraint kind: unknown '" +
                               KindV.asString() + "'");
  ir::Expr E;
  if (Status S = decodeExpr(V.asArray()[1], E); !S.ok())
    return S;
  Out = {K, std::move(E)};
  return {};
}

Status decodeConjunction(const Value &V, ir::Conjunction &Out) {
  if (!V.isArray())
    return support::parseError("conjunction: expected array");
  for (const Value &CV : V.asArray()) {
    ir::Constraint C{ir::Constraint::Kind::Eq, ir::Expr()};
    if (Status S = decodeConstraint(CV, C); !S.ok())
      return S;
    Out.add(std::move(C));
  }
  return {};
}

Status decodeStrings(const Object &O, const char *Key,
                     std::vector<std::string> &Out) {
  const Value *V = find(O, Key);
  if (!V)
    return {};
  if (!V->isArray())
    return fieldError(Key, "array");
  for (const Value &S : V->asArray()) {
    if (!S.isString())
      return fieldError(Key, "array of strings");
    Out.push_back(S.asString());
  }
  return {};
}

Status decodeRelation(const Value &V, ir::SparseRelation &Out) {
  if (!V.isObject())
    return support::parseError("relation: expected object");
  const Object &O = V.asObject();
  ir::SparseRelation R;
  if (Status S = optStr(O, "name", R.Name); !S.ok())
    return S;
  if (Status S = decodeStrings(O, "in", R.InVars); !S.ok())
    return S;
  if (Status S = decodeStrings(O, "out", R.OutVars); !S.ok())
    return S;
  if (Status S = decodeStrings(O, "exist", R.ExistVars); !S.ok())
    return S;
  const Value *Conj = find(O, "conj");
  if (!Conj)
    return missing("conj");
  if (Status S = decodeConjunction(*Conj, R.Conj); !S.ok())
    return S.withContext("conj");
  Out = std::move(R);
  return {};
}

Status decodeComplexity(const Value &V, codegen::Complexity &Out) {
  if (!V.isArray() || V.asArray().size() != 2 || !V.asArray()[0].isInt() ||
      !V.asArray()[1].isInt())
    return support::parseError("complexity: expected [n_exp, d_exp]");
  Out.NExp = static_cast<int>(V.asArray()[0].asInt());
  Out.DExp = static_cast<int>(V.asArray()[1].asInt());
  return {};
}

Status reqComplexity(const Object &O, const char *Key,
                     codegen::Complexity &Out) {
  const Value *V = find(O, Key);
  if (!V)
    return missing(Key);
  return decodeComplexity(*V, Out).withContext(Key);
}

Status decodePlan(const Value &V, codegen::InspectorPlan &Out) {
  if (!V.isObject())
    return support::parseError("plan: expected object");
  const Object &O = V.asObject();
  codegen::InspectorPlan P;
  if (Status S = reqBool(O, "valid", P.Valid); !S.ok())
    return S;
  if (Status S = optStr(O, "why", P.WhyInvalid); !S.ok())
    return S;
  if (!P.Valid) {
    Out = std::move(P);
    return {};
  }
  if (Status S = reqStr(O, "src", P.SrcIter); !S.ok())
    return S;
  if (Status S = reqStr(O, "dst", P.DstIter); !S.ok())
    return S;
  if (Status S = reqComplexity(O, "cost", P.Cost); !S.ok())
    return S;
  const Array *Vars = nullptr;
  if (Status S = reqArr(O, "vars", Vars); !S.ok())
    return S;
  for (size_t I = 0; I < Vars->size(); ++I) {
    const Value &VV = (*Vars)[I];
    std::string Ctx = "vars[" + std::to_string(I) + "]";
    if (!VV.isObject())
      return support::parseError(Ctx + ": expected object");
    const Object &VO = VV.asObject();
    codegen::PlanVar PV;
    if (Status S = reqStr(VO, "name", PV.Name); !S.ok())
      return S.withContext(Ctx);
    std::string Kind;
    if (Status S = reqStr(VO, "kind", Kind); !S.ok())
      return S.withContext(Ctx);
    if (Kind == "loop")
      PV.K = codegen::PlanVar::Kind::Loop;
    else if (Kind == "solved")
      PV.K = codegen::PlanVar::Kind::Solved;
    else
      return support::parseError(Ctx + ": unknown plan-var kind '" + Kind +
                                 "'");
    if (PV.K == codegen::PlanVar::Kind::Solved) {
      const Value *Solved = find(VO, "solved");
      if (!Solved)
        return support::parseError(Ctx + ": solved var needs 'solved'");
      if (Status S = decodeExpr(*Solved, PV.Solved); !S.ok())
        return S.withContext(Ctx);
    }
    if (const Value *Lo = find(VO, "lo"))
      if (Status S = decodeExprList(*Lo, "lo", PV.Lowers); !S.ok())
        return S.withContext(Ctx);
    if (const Value *Up = find(VO, "up"))
      if (Status S = decodeExprList(*Up, "up", PV.Uppers); !S.ok())
        return S.withContext(Ctx);
    if (const Value *Gs = find(VO, "guards")) {
      if (!Gs->isArray())
        return support::parseError(Ctx + ": 'guards' must be an array");
      for (const Value &GV : Gs->asArray()) {
        ir::Constraint C{ir::Constraint::Kind::Eq, ir::Expr()};
        if (Status S = decodeConstraint(GV, C); !S.ok())
          return S.withContext(Ctx);
        PV.Guards.push_back(std::move(C));
      }
    }
    if (Status S = reqComplexity(VO, "range", PV.Range); !S.ok())
      return S.withContext(Ctx);
    P.Vars.push_back(std::move(PV));
  }
  Out = std::move(P);
  return {};
}

Status decodeStatus(const std::string &Name, deps::DepStatus &Out) {
  if (Name == "affine-unsat")
    Out = deps::DepStatus::AffineUnsat;
  else if (Name == "property-unsat")
    Out = deps::DepStatus::PropertyUnsat;
  else if (Name == "subsumed")
    Out = deps::DepStatus::Subsumed;
  else if (Name == "runtime")
    Out = deps::DepStatus::Runtime;
  else
    return support::parseError("unknown dependence status '" + Name + "'");
  return {};
}

Status decodeAnalyzedDep(const Value &V, deps::AnalyzedDependence &Out) {
  if (!V.isObject())
    return support::parseError("expected object");
  const Object &O = V.asObject();
  deps::AnalyzedDependence D;
  const Object *Dep = nullptr;
  if (Status S = reqObj(O, "dep", Dep); !S.ok())
    return S;
  {
    const Value *Rel = find(*Dep, "rel");
    if (!Rel)
      return missing("dep.rel");
    if (Status S = decodeRelation(*Rel, D.Dep.Rel); !S.ok())
      return S.withContext("dep.rel");
    if (Status S = reqStr(*Dep, "array", D.Dep.Array); !S.ok())
      return S.withContext("dep");
    if (Status S = reqStr(*Dep, "src_stmt", D.Dep.SrcStmt); !S.ok())
      return S.withContext("dep");
    if (Status S = reqStr(*Dep, "dst_stmt", D.Dep.DstStmt); !S.ok())
      return S.withContext("dep");
    if (Status S = reqStr(*Dep, "src_access", D.Dep.SrcAccess); !S.ok())
      return S.withContext("dep");
    if (Status S = reqStr(*Dep, "dst_access", D.Dep.DstAccess); !S.ok())
      return S.withContext("dep");
    if (Status S = reqBool(*Dep, "src_write", D.Dep.SrcIsWrite); !S.ok())
      return S.withContext("dep");
    if (Status S = reqBool(*Dep, "dst_write", D.Dep.DstIsWrite); !S.ok())
      return S.withContext("dep");
  }
  std::string StatusName;
  if (Status S = reqStr(O, "status", StatusName); !S.ok())
    return S;
  if (Status S = decodeStatus(StatusName, D.Status); !S.ok())
    return S;
  if (const Value *Simp = find(O, "simplified"))
    if (Status S = decodeRelation(*Simp, D.Simplified); !S.ok())
      return S.withContext("simplified");
  if (const Value *NE = find(O, "new_equalities")) {
    if (!NE->isInt() || NE->asInt() < 0)
      return fieldError("new_equalities", "non-negative integer");
    D.NewEqualities = static_cast<unsigned>(NE->asInt());
  }
  if (Status S = reqComplexity(O, "cost_before", D.CostBefore); !S.ok())
    return S;
  if (Status S = reqComplexity(O, "cost_after", D.CostAfter); !S.ok())
    return S;
  if (Status S = optStr(O, "subsumed_by", D.SubsumedBy); !S.ok())
    return S;
  if (const Value *Plan = find(O, "plan"))
    if (Status S = decodePlan(*Plan, D.Plan); !S.ok())
      return S.withContext("plan");
  if (Status S = optBool(O, "approximated", D.Approximated); !S.ok())
    return S;
  if (const Value *Prov = find(O, "prov")) {
    if (!Prov->isObject())
      return fieldError("prov", "object");
    const Object &PO = Prov->asObject();
    if (Status S = reqStr(PO, "stage", D.Prov.Stage); !S.ok())
      return S.withContext("prov");
    if (Status S = decodeStrings(PO, "evidence", D.Prov.Evidence); !S.ok())
      return S.withContext("prov");
    if (Status S = reqNum(PO, "seconds", D.Prov.Seconds); !S.ok())
      return S.withContext("prov");
  }
  if (const Value *Core = find(O, "core")) {
    if (!Core->isObject())
      return fieldError("core", "object");
    const Object &CO = Core->asObject();
    if (Status S = decodeStrings(CO, "assertions", D.Core.Assertions);
        !S.ok())
      return S.withContext("core");
    if (Status S = reqBool(CO, "minimized", D.Core.Minimized); !S.ok())
      return S.withContext("core");
    if (Status S = reqBool(CO, "farkas", D.Core.FromFarkas); !S.ok())
      return S.withContext("core");
    D.HasCore = true;
  }
  if (Status S = optBool(O, "remediable", D.Remediable); !S.ok())
    return S;
  if (Status S = decodeStrings(O, "inferred_cited", D.InferredCited); !S.ok())
    return S;
  Out = std::move(D);
  return {};
}

Status optExprField(const Object &O, const char *Key,
                    std::optional<ir::Expr> &Out) {
  const Value *V = find(O, Key);
  if (!V)
    return {};
  ir::Expr E;
  if (Status S = decodeExpr(*V, E); !S.ok())
    return S.withContext(Key);
  Out = std::move(E);
  return {};
}

Status decodePropertySet(const Value &V, ir::PropertySet &Out) {
  if (!V.isObject())
    return support::parseError("properties: expected object");
  const Object &O = V.asObject();
  ir::PropertySet PS;
  const Array *Props = nullptr;
  if (Status S = reqArr(O, "props", Props); !S.ok())
    return S;
  for (size_t I = 0; I < Props->size(); ++I) {
    std::string Ctx = "props[" + std::to_string(I) + "]";
    const Value &PV = (*Props)[I];
    if (!PV.isObject())
      return support::parseError(Ctx + ": expected object");
    const Object &PO = PV.asObject();
    ir::IndexArrayProperty P{ir::PropertyKind::MonotonicIncreasing, "", "",
                             {}, {}};
    std::string Kind;
    if (Status S = reqStr(PO, "kind", Kind); !S.ok())
      return S.withContext(Ctx);
    std::optional<ir::PropertyKind> K = ir::parsePropertyKind(Kind);
    if (!K)
      return support::parseError(Ctx + ": unknown property kind '" + Kind +
                                 "'");
    P.K = *K;
    if (Status S = reqStr(PO, "fn", P.Fn); !S.ok())
      return S.withContext(Ctx);
    if (Status S = optStr(PO, "other", P.Other); !S.ok())
      return S.withContext(Ctx);
    if (Status S = optExprField(PO, "glo", P.GuardLo); !S.ok())
      return S.withContext(Ctx);
    if (Status S = optExprField(PO, "ghi", P.GuardHi); !S.ok())
      return S.withContext(Ctx);
    std::string TierName;
    if (Status S = optStr(PO, "tier", TierName); !S.ok())
      return S.withContext(Ctx);
    if (!TierName.empty()) {
      std::optional<ir::PropertyTier> T = ir::parsePropertyTier(TierName);
      if (!T)
        return support::parseError(Ctx + ": unknown property tier '" +
                                   TierName + "'");
      P.Tier = *T;
    }
    PS.add(std::move(P));
  }
  const Array *Ranges = nullptr;
  if (Status S = reqArr(O, "ranges", Ranges); !S.ok())
    return S;
  for (size_t I = 0; I < Ranges->size(); ++I) {
    std::string Ctx = "ranges[" + std::to_string(I) + "]";
    const Value &RV = (*Ranges)[I];
    if (!RV.isObject())
      return support::parseError(Ctx + ": expected object");
    const Object &RO = RV.asObject();
    ir::DomainRangeDecl D;
    if (Status S = reqStr(RO, "fn", D.Fn); !S.ok())
      return S.withContext(Ctx);
    if (Status S = optExprField(RO, "dlo", D.DomLo); !S.ok())
      return S.withContext(Ctx);
    if (Status S = optExprField(RO, "dhi", D.DomHi); !S.ok())
      return S.withContext(Ctx);
    if (Status S = optExprField(RO, "rlo", D.RanLo); !S.ok())
      return S.withContext(Ctx);
    if (Status S = optExprField(RO, "rhi", D.RanHi); !S.ok())
      return S.withContext(Ctx);
    std::string TierName;
    if (Status S = optStr(RO, "tier", TierName); !S.ok())
      return S.withContext(Ctx);
    if (!TierName.empty()) {
      std::optional<ir::PropertyTier> T = ir::parsePropertyTier(TierName);
      if (!T)
        return support::parseError(Ctx + ": unknown property tier '" +
                                   TierName + "'");
      D.Tier = *T;
    }
    PS.addDomainRange(std::move(D));
  }
  Out = std::move(PS);
  return {};
}

Status decodePayload(const Value &V, CompiledKernel &Out) {
  if (!V.isObject())
    return support::parseError("payload: expected object");
  const Object &O = V.asObject();
  CompiledKernel CK;
  const Object *Kernel = nullptr;
  if (Status S = reqObj(O, "kernel", Kernel); !S.ok())
    return S;
  if (Status S = reqStr(*Kernel, "name", CK.KernelName); !S.ok())
    return S.withContext("kernel");
  if (Status S = reqStr(*Kernel, "format", CK.Format); !S.ok())
    return S.withContext("kernel");
  if (Status S = optStr(*Kernel, "source", CK.Source); !S.ok())
    return S.withContext("kernel");
  if (Status S = reqComplexity(*Kernel, "cost", CK.KernelCost); !S.ok())
    return S.withContext("kernel");
  const Object *Opts = nullptr;
  if (Status S = reqObj(O, "options", Opts); !S.ok())
    return S;
  if (Status S = reqBool(*Opts, "properties", CK.Options.UseProperties);
      !S.ok())
    return S.withContext("options");
  if (Status S = reqBool(*Opts, "equalities", CK.Options.UseEqualities);
      !S.ok())
    return S.withContext("options");
  if (Status S = reqBool(*Opts, "subsets", CK.Options.UseSubsets); !S.ok())
    return S.withContext("options");
  if (Status S =
          reqBool(*Opts, "approximate", CK.Options.ApproximateExpensive);
      !S.ok())
    return S.withContext("options");
  if (Status S = optBool(*Opts, "infer", CK.Options.Speculate); !S.ok())
    return S.withContext("options");
  const Value *Props = find(O, "properties");
  if (!Props)
    return missing("properties");
  if (Status S = decodePropertySet(*Props, CK.Properties); !S.ok())
    return S.withContext("properties");
  const Array *Deps = nullptr;
  if (Status S = reqArr(O, "deps", Deps); !S.ok())
    return S;
  CK.Deps.reserve(Deps->size());
  for (size_t I = 0; I < Deps->size(); ++I) {
    deps::AnalyzedDependence D;
    if (Status S = decodeAnalyzedDep((*Deps)[I], D); !S.ok())
      return S.withContext("deps[" + std::to_string(I) + "]");
    CK.Deps.push_back(std::move(D));
  }
  const Object *Stages = nullptr;
  if (Status S = reqObj(O, "stage_seconds", Stages); !S.ok())
    return S;
  for (const auto &[Stage, Seconds] : *Stages) {
    if (!Seconds.isNumber())
      return support::parseError("stage_seconds['" + Stage +
                                 "']: expected number");
    CK.StageSeconds[Stage] = Seconds.asDouble();
  }
  // Optional (additive in-version): blobs predating the schedule plan
  // dimension decode to the default config.
  if (const Value *SchedV = find(O, "schedule")) {
    if (!SchedV->isObject())
      return fieldError("schedule", "object");
    const Object &Sched = SchedV->asObject();
    std::string Kind;
    if (Status S = reqStr(Sched, "kind", Kind); !S.ok())
      return S.withContext("schedule");
    std::optional<rt::ScheduleKind> K = rt::parseScheduleKind(Kind);
    if (!K)
      return support::parseError("schedule.kind: unknown kind '" + Kind +
                                 "'");
    CK.Schedule.Kind = *K;
    if (Status S = reqNum(Sched, "min_work_per_thread",
                          CK.Schedule.MinWorkPerThread);
        !S.ok())
      return S.withContext("schedule");
    if (Status S =
            reqNum(Sched, "coalesce_factor", CK.Schedule.CoalesceFactor);
        !S.ok())
      return S.withContext("schedule");
    int64_t MinRun = 0;
    if (Status S = reqInt(Sched, "min_vector_run", MinRun); !S.ok())
      return S.withContext("schedule");
    if (MinRun < 1)
      return support::parseError("schedule.min_vector_run: expected >= 1");
    CK.Schedule.MinVectorRun = static_cast<int>(MinRun);
  }
  std::string FpHex;
  if (Status S = optStr(O, "inferred_fingerprint", FpHex); !S.ok())
    return S;
  if (!FpHex.empty()) {
    if (FpHex.size() != 16 ||
        FpHex.find_first_not_of("0123456789abcdef") != std::string::npos)
      return support::parseError(
          "inferred_fingerprint: expected 16 lowercase hex digits");
    uint64_t Fp = 0;
    for (char C : FpHex)
      Fp = (Fp << 4) | static_cast<uint64_t>(C <= '9' ? C - '0'
                                                      : C - 'a' + 10);
    CK.InferredFingerprint = Fp;
  }
  Out = std::move(CK);
  return {};
}

} // namespace

std::string AnalysisOptions::key() const {
  std::string K;
  K += UseProperties ? 'P' : '-';
  K += UseEqualities ? 'E' : '-';
  K += UseSubsets ? 'S' : '-';
  K += ApproximateExpensive ? 'A' : '-';
  K += Speculate ? 'I' : '-';
  return K;
}

std::string CompiledKernel::summary() const {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3g", analysisSeconds());
  return KernelName + " [" + Options.key() + "]: " +
         std::to_string(Deps.size()) + " deps (" +
         std::to_string(count(deps::DepStatus::Runtime)) + " runtime, " +
         std::to_string(count(deps::DepStatus::AffineUnsat)) +
         " affine-unsat, " +
         std::to_string(count(deps::DepStatus::PropertyUnsat)) +
         " property-unsat, " + std::to_string(count(deps::DepStatus::Subsumed)) +
         " subsumed), analyzed in " + Buf + "s";
}

CompiledKernel fromAnalysis(deps::PipelineResult Analysis,
                            const deps::PipelineOptions &Opts) {
  CompiledKernel CK;
  CK.KernelName = std::move(Analysis.Kernel.Name);
  CK.Format = std::move(Analysis.Kernel.Format);
  CK.Source = std::move(Analysis.Kernel.Source);
  CK.KernelCost = Analysis.KernelCost;
  CK.Options = AnalysisOptions::of(Opts);
  CK.Properties = std::move(Analysis.Kernel.Properties);
  CK.Deps = std::move(Analysis.Deps);
  CK.StageSeconds = std::move(Analysis.StageSeconds);
  return CK;
}

CompiledKernel compile(const kernels::Kernel &K,
                       const deps::PipelineOptions &Opts) {
  return fromAnalysis(deps::analyzeKernel(K, Opts), Opts);
}

std::string abiFingerprint() {
  // Everything the payload encodes by *name or position*: a build whose
  // enums/tables differ decodes these blobs differently, so its
  // fingerprint must differ too.
  std::string Blob = "dep:";
  for (deps::DepStatus S :
       {deps::DepStatus::AffineUnsat, deps::DepStatus::PropertyUnsat,
        deps::DepStatus::Subsumed, deps::DepStatus::Runtime})
    Blob += deps::depStatusName(S) + ",";
  Blob += ";prop:";
  for (int K = 0; K <= static_cast<int>(ir::PropertyKind::SegmentStartIdentity);
       ++K)
    Blob += ir::propertyKindName(static_cast<ir::PropertyKind>(K)) + ",";
  Blob += ";stages:";
  for (size_t I = 0; I < schema::kNumStageKeys; ++I)
    Blob += std::string(schema::kStageKeys[I]) + ",";
  Blob += ";plan:loop,solved;constraint:eq,ge";
  Blob += ";sched:";
  for (rt::ScheduleKind K :
       {rt::ScheduleKind::Levels, rt::ScheduleKind::LBC,
        rt::ScheduleKind::Coalesced, rt::ScheduleKind::P2P,
        rt::ScheduleKind::Vector})
    Blob += std::string(rt::scheduleKindName(K)) + ",";
  return "v" + std::to_string(schema::kVersion) + "-" + fnv1aHex(Blob);
}

std::string serialize(const CompiledKernel &CK) {
  Value Payload = payloadJSON(CK);
  std::string PayloadText = Payload.str();
  Object Root;
  Root.emplace("magic", Value(std::string(kMagic)));
  Root.emplace("schema_version", Value(schema::kVersion));
  Root.emplace("abi", Value(abiFingerprint()));
  Root.emplace("checksum", Value(fnv1aHex(PayloadText)));
  Root.emplace("payload", std::move(Payload));
  return Value(std::move(Root)).str();
}

Status deserialize(std::string_view Text, CompiledKernel &Out) {
  json::ParseResult P = json::parse(Text);
  if (!P.Ok)
    return support::parseError("line " + std::to_string(P.Line) + ":" +
                               std::to_string(P.Col) + ": " + P.Error)
        .withContext("artifact");
  if (!P.Val.isObject())
    return support::parseError("artifact: expected a JSON object envelope");
  const Object &Root = P.Val.asObject();

  std::string Magic;
  if (Status S = reqStr(Root, "magic", Magic); !S.ok())
    return S.withContext("artifact");
  if (Magic != kMagic)
    return support::invalidArgument("artifact: not a compiled-kernel blob "
                                    "(magic '" +
                                    Magic + "')");
  int64_t Version = 0;
  if (Status S = reqInt(Root, "schema_version", Version); !S.ok())
    return S.withContext("artifact");
  if (Version != schema::kVersion)
    return support::invalidArgument(
        "artifact: schema version " + std::to_string(Version) +
        " incompatible with reader version " +
        std::to_string(schema::kVersion));
  std::string Abi;
  if (Status S = reqStr(Root, "abi", Abi); !S.ok())
    return S.withContext("artifact");
  if (Abi != abiFingerprint())
    return support::invalidArgument("artifact: ABI fingerprint '" + Abi +
                                    "' does not match this build's '" +
                                    abiFingerprint() + "'");
  std::string Checksum;
  if (Status S = reqStr(Root, "checksum", Checksum); !S.ok())
    return S.withContext("artifact");
  const Value *Payload = find(Root, "payload");
  if (!Payload)
    return support::parseError("artifact: missing field 'payload'");
  // The canonical text of the re-serialized payload reproduces the bytes
  // the producer hashed (sorted keys, deterministic number rendering), so
  // any content-altering corruption — even one that still parses — fails
  // here.
  if (fnv1aHex(Payload->str()) != Checksum)
    return support::invalidArgument(
        "artifact: payload checksum mismatch (corrupt blob)");

  CompiledKernel CK;
  if (Status S = decodePayload(*Payload, CK); !S.ok())
    return S.withContext("artifact payload");
  Out = std::move(CK);
  return {};
}

Status save(const CompiledKernel &CK, const std::string &Path) {
  static obs::Histogram &SaveNs = obs::histogram("artifact.save_ns");
  obs::ScopedLatency Lat(SaveNs);
  std::ofstream File(Path, std::ios::binary);
  if (!File)
    return support::ioError("cannot open for writing").withContext(
        "save '" + Path + "'");
  File << serialize(CK) << "\n";
  File.flush();
  if (!File)
    return support::ioError("write failed").withContext("save '" + Path +
                                                        "'");
  return {};
}

Status load(const std::string &Path, CompiledKernel &Out) {
  static obs::Histogram &LoadNs = obs::histogram("artifact.load_ns");
  obs::ScopedLatency Lat(LoadNs);
  auto Reject = [&](Status S) {
    obs::flightRecord(obs::FlightSeverity::Error, "artifact",
                      "artifact rejected",
                      {{"path", Path}, {"status", S.message()}});
    return S;
  };
  std::ifstream File(Path, std::ios::binary);
  if (!File)
    return Reject(
        support::ioError("cannot open").withContext("load '" + Path + "'"));
  std::stringstream SS;
  SS << File.rdbuf();
  if (File.bad())
    return Reject(
        support::ioError("read failed").withContext("load '" + Path + "'"));
  Status S = deserialize(SS.str(), Out).withContext("load '" + Path + "'");
  if (!S.ok())
    return Reject(std::move(S));
  return S;
}

} // namespace artifact
} // namespace sds
