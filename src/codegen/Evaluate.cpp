//===- Evaluate.cpp - In-process execution of inspector plans -------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Executes an InspectorPlan against concrete index arrays. The plan is
// first *compiled*: variable names become value slots, parameters are
// constant-folded, and expressions become flat term lists over slots and
// array references — so the inner loops run without any string lookups,
// matching the cost profile of the C code the pipeline would emit. Visit
// counts are therefore a faithful work measure for the Figure 10 bench.
//
// Out-of-range array probes are possible by construction: a guard may
// index one past a segment while a *sibling* guard of the same conjunction
// is false. Bound arrays return a sentinel for such probes, the evaluator
// turns it into "poison", and poisoned guards/bounds simply fail.
//
//===----------------------------------------------------------------------===//

#include "sds/codegen/Inspector.h"

#include <cassert>
#include <limits>

#include <omp.h>

namespace sds {
namespace codegen {

namespace {

/// One compiled linear term: Coeff * (slot value | array(arg expr)).
struct CTerm {
  int64_t Coeff;
  int Slot = -1;    ///< >= 0: variable slot
  int ArgIdx = -1;  ///< >= 0: index of the compiled argument expression
  const std::function<int64_t(int64_t)> *Fn = nullptr;
};

/// A compiled expression: constant + terms (terms reference the pool).
struct CExpr {
  int64_t Const = 0;
  std::vector<CTerm> Terms;
};

struct CGuard {
  bool IsEq;
  int ExprIdx;
};

struct CVar {
  bool Solved;
  int SolvedIdx = -1;
  std::vector<int> Lowers, Uppers;
  std::vector<CGuard> Guards;
};

/// Plan compiled against one environment: slots, folded parameters,
/// resolved array callbacks.
class CompiledPlan {
public:
  /// Optional restriction of the outermost *loop* variable to
  /// [OuterLo, OuterHi) — how the parallel runner splits work.
  int64_t OuterLo = std::numeric_limits<int64_t>::min();
  int64_t OuterHi = std::numeric_limits<int64_t>::max();

  CompiledPlan(const InspectorPlan &Plan, const UFEnvironment &Env)
      : Env(Env) {
    for (size_t I = 0; I < Plan.Vars.size(); ++I)
      SlotOf[Plan.Vars[I].Name] = static_cast<int>(I);
    Values.assign(Plan.Vars.size(), 0);
    for (const PlanVar &PV : Plan.Vars) {
      CVar V;
      V.Solved = PV.K == PlanVar::Kind::Solved;
      if (V.Solved) {
        V.SolvedIdx = compile(PV.Solved);
      } else {
        for (const ir::Expr &L : PV.Lowers)
          V.Lowers.push_back(compile(L));
        for (const ir::Expr &U : PV.Uppers)
          V.Uppers.push_back(compile(U));
      }
      for (const ir::Constraint &G : PV.Guards)
        V.Guards.push_back({G.isEq(), compile(G.E)});
      Vars.push_back(std::move(V));
    }
    SrcSlot = Plan.SrcIter.empty() ? -1 : SlotOf.at(Plan.SrcIter);
    DstSlot = Plan.DstIter.empty() ? SrcSlot : SlotOf.at(Plan.DstIter);
  }

  uint64_t run(const std::function<void(int64_t, int64_t)> &EmitEdge) {
    Emit = &EmitEdge;
    Visits = 0;
    recurse(0);
    return Visits;
  }

  /// Bounds of the outermost loop variable (valid when no plan variable
  /// feeds them, which holds by construction for Depth 0).
  bool outerRange(int64_t &Lo, int64_t &Hi) {
    if (Vars.empty() || Vars[0].Solved)
      return false;
    bool Poison = false;
    Lo = std::numeric_limits<int64_t>::min();
    for (int L : Vars[0].Lowers)
      Lo = std::max(Lo, eval(L, Poison));
    Hi = std::numeric_limits<int64_t>::max();
    for (int U : Vars[0].Uppers)
      Hi = std::min(Hi, eval(U, Poison));
    return !Poison;
  }

private:
  int compile(const ir::Expr &E) {
    CExpr C;
    C.Const = E.constant();
    for (const ir::Expr::Term &T : E.terms()) {
      CTerm CT;
      CT.Coeff = T.Coeff;
      if (T.A.isVar()) {
        auto It = SlotOf.find(T.A.Name);
        if (It != SlotOf.end()) {
          CT.Slot = It->second;
        } else {
          // A parameter: constant-fold it.
          auto PIt = Env.Params.find(T.A.Name);
          assert(PIt != Env.Params.end() && "unbound variable/parameter");
          C.Const += T.Coeff * PIt->second;
          continue;
        }
      } else {
        auto FIt = Env.Arrays.find(T.A.Name);
        assert(FIt != Env.Arrays.end() && "unbound index array");
        assert(T.A.Args.size() == 1 && "only arity-1 index arrays occur");
        CT.Fn = &FIt->second;
        CT.ArgIdx = compile(T.A.Args[0]);
      }
      C.Terms.push_back(CT);
    }
    Pool.push_back(std::move(C));
    return static_cast<int>(Pool.size() - 1);
  }

  int64_t eval(int Idx, bool &Poison) {
    const CExpr &C = Pool[static_cast<size_t>(Idx)];
    int64_t V = C.Const;
    for (const CTerm &T : C.Terms) {
      int64_t A;
      if (T.Slot >= 0) {
        A = Values[static_cast<size_t>(T.Slot)];
      } else {
        A = (*T.Fn)(eval(T.ArgIdx, Poison));
        if (A == UFEnvironment::OutOfRange)
          Poison = true;
      }
      V += T.Coeff * A;
    }
    return V;
  }

  bool guardsHold(const CVar &V) {
    for (const CGuard &G : V.Guards) {
      bool Poison = false;
      int64_t X = eval(G.ExprIdx, Poison);
      if (Poison || (G.IsEq ? (X != 0) : (X < 0)))
        return false;
    }
    return true;
  }

  void recurse(size_t Depth) {
    if (Depth == Vars.size()) {
      int64_t Src = SrcSlot < 0 ? 0 : Values[static_cast<size_t>(SrcSlot)];
      int64_t Dst =
          DstSlot < 0 ? Src : Values[static_cast<size_t>(DstSlot)];
      (*Emit)(Src, Dst);
      return;
    }
    const CVar &V = Vars[Depth];
    if (V.Solved) {
      ++Visits;
      bool Poison = false;
      int64_t X = eval(V.SolvedIdx, Poison);
      if (Poison)
        return;
      Values[Depth] = X;
      if (guardsHold(V))
        recurse(Depth + 1);
      return;
    }
    bool Poison = false;
    int64_t LB = std::numeric_limits<int64_t>::min();
    for (int L : V.Lowers)
      LB = std::max(LB, eval(L, Poison));
    int64_t UB = std::numeric_limits<int64_t>::max();
    for (int U : V.Uppers)
      UB = std::min(UB, eval(U, Poison));
    if (Poison)
      return;
    if (Depth == 0) {
      LB = std::max(LB, OuterLo);
      UB = std::min(UB, OuterHi);
    }
    for (int64_t X = LB; X < UB; ++X) {
      ++Visits;
      Values[Depth] = X;
      if (guardsHold(V))
        recurse(Depth + 1);
    }
  }

  const UFEnvironment &Env;
  std::map<std::string, int> SlotOf;
  std::vector<CExpr> Pool;
  std::vector<CVar> Vars;
  std::vector<int64_t> Values;
  int SrcSlot = -1, DstSlot = -1;
  const std::function<void(int64_t, int64_t)> *Emit = nullptr;
  uint64_t Visits = 0;
};

} // namespace

uint64_t runInspector(const InspectorPlan &Plan, const UFEnvironment &Env,
                      const std::function<void(int64_t, int64_t)> &EmitEdge) {
  assert(Plan.Valid && "cannot run an invalid plan");
  return CompiledPlan(Plan, Env).run(EmitEdge);
}

uint64_t runInspectorParallel(
    const InspectorPlan &Plan, const UFEnvironment &Env, int NumThreads,
    const std::function<void(int64_t, int64_t)> &EmitEdge) {
  assert(Plan.Valid && "cannot run an invalid plan");
  if (NumThreads <= 1 || Plan.Vars.empty() ||
      Plan.Vars[0].K != PlanVar::Kind::Loop)
    return CompiledPlan(Plan, Env).run(EmitEdge);

  // The outer loop variable's bounds depend on nothing (it is outermost),
  // so one serial evaluation yields the global range to split.
  int64_t Lo, Hi;
  {
    CompiledPlan Probe(Plan, Env);
    if (!Probe.outerRange(Lo, Hi) || Hi <= Lo)
      return CompiledPlan(Plan, Env).run(EmitEdge);
  }
  // Each thread buffers its edges; EmitEdge runs serially afterwards, so
  // callers need no synchronization.
  uint64_t Total = 0;
  std::vector<std::vector<std::pair<int64_t, int64_t>>> Buffers(
      static_cast<size_t>(NumThreads));
#pragma omp parallel num_threads(NumThreads) reduction(+ : Total)
  {
    int T = omp_get_thread_num();
    int NT = omp_get_num_threads();
    int64_t Span = Hi - Lo;
    int64_t Begin = Lo + Span * T / NT;
    int64_t End = Lo + Span * (T + 1) / NT;
    CompiledPlan Local(Plan, Env);
    Local.OuterLo = Begin;
    Local.OuterHi = End;
    auto &Buf = Buffers[static_cast<size_t>(T)];
    std::function<void(int64_t, int64_t)> Collect =
        [&Buf](int64_t S2, int64_t D2) { Buf.push_back({S2, D2}); };
    Total += Local.run(Collect);
  }
  for (const auto &Buf : Buffers)
    for (const auto &[S2, D2] : Buf)
      EmitEdge(S2, D2);
  return Total;
}

} // namespace codegen
} // namespace sds
