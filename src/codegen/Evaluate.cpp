//===- Evaluate.cpp - In-process execution of inspector plans -------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Executes an InspectorPlan against concrete index arrays. The plan is
// first *compiled* (CompiledInspector): variable names become value slots,
// parameters are constant-folded, expressions become flat term lists over
// slots and array references, and arrays bound as vectors resolve to raw
// {data, size} spans — so the inner loops run without any string lookups
// or type-erased calls, matching the cost profile of the C code the
// pipeline would emit. Visit counts are therefore a faithful work measure
// for the Figure 10 bench.
//
// The compiled program is immutable; every run owns its slot state
// (Values vector), so one compiled inspector can be executed from many
// threads at once — the parallel runners compile once and clone only the
// per-run state. Edge emission is templated on the sink, so the buffer
// append of the hot drivers inlines into the loop nest.
//
// Out-of-range array probes are possible by construction: a guard may
// index one past a segment while a *sibling* guard of the same conjunction
// is false, and equality discovery composes functions past their declared
// domains (colptr(k) for an nnz-scale k, say). Span probes bounds-check
// inline and yield the OutOfRange sentinel, which the evaluator turns
// into "poison". Poison semantics are asymmetric by soundness direction:
// a poisoned *guard* PASSES — the constraint is unevaluable, and pruning
// on it would under-approximate the dependence graph (a missing edge is a
// wrong schedule, an extra edge is merely a slower one); the instance
// survives to be pruned by its evaluable sibling constraints. Poisoned
// *bounds* and *solved variables* skip the subtree — there is no value to
// iterate or substitute, and loop positions come from the relation's own
// range constraints, which in-domain data keeps evaluable.
//
//===----------------------------------------------------------------------===//

#include "sds/codegen/Inspector.h"

#include <cassert>
#include <limits>
#include <unordered_map>

#include "sds/support/OMP.h"

namespace sds {
namespace codegen {

namespace detail {

namespace {

/// One compiled linear term: Coeff * (slot value | array(arg expr)).
/// Array references carry either a raw span (fast path, bound vectors) or
/// a pointer to the environment's std::function (fallback, function-bound
/// arrays).
struct CTerm {
  int64_t Coeff;
  int Slot = -1;   ///< >= 0: variable slot
  int ArgIdx = -1; ///< >= 0: index of the compiled argument expression
  const int *Data = nullptr; ///< span fast path (with Size)
  int64_t Size = 0;
  const std::function<int64_t(int64_t)> *Fn = nullptr; ///< fallback
  // Affine-argument fast path: nearly every probe argument is
  // `ArgConst + ArgCoeff * slot` (rowptr[i], rowptr[i+1], col[k], ...);
  // evaluating it inline skips the recursive eval and its pool chase.
  int ArgSlot = -1;
  int64_t ArgCoeff = 0, ArgConst = 0;
};

/// A compiled expression: constant + terms (terms reference the pool).
struct CExpr {
  int64_t Const = 0;
  std::vector<CTerm> Terms;
};

struct CGuard {
  bool IsEq;
  int ExprIdx;
};

struct CVar {
  bool Solved;
  int SolvedIdx = -1;
  std::vector<int> Lowers, Uppers;
  std::vector<CGuard> Guards;
};

} // namespace

/// The immutable compiled form of one plan against one environment.
/// Shared between threads; all mutable run state lives in RunState.
class CompiledProgram {
public:
  CompiledProgram(const InspectorPlan &Plan, const UFEnvironment &Env)
      : Env(Env) {
    SlotOf.reserve(Plan.Vars.size());
    for (size_t I = 0; I < Plan.Vars.size(); ++I)
      SlotOf.emplace(Plan.Vars[I].Name, static_cast<int>(I));
    // Every variable contributes a handful of expressions; reserving the
    // pool keeps compilation allocation-lean (it used to reallocate a
    // dozen times per plan).
    Pool.reserve(Plan.Vars.size() * 6);
    Vars.reserve(Plan.Vars.size());
    for (const PlanVar &PV : Plan.Vars) {
      CVar V;
      V.Solved = PV.K == PlanVar::Kind::Solved;
      if (V.Solved) {
        V.SolvedIdx = compile(PV.Solved);
      } else {
        V.Lowers.reserve(PV.Lowers.size());
        for (const ir::Expr &L : PV.Lowers)
          V.Lowers.push_back(compile(L));
        V.Uppers.reserve(PV.Uppers.size());
        for (const ir::Expr &U : PV.Uppers)
          V.Uppers.push_back(compile(U));
      }
      V.Guards.reserve(PV.Guards.size());
      for (const ir::Constraint &G : PV.Guards)
        V.Guards.push_back({G.isEq(), compile(G.E)});
      Vars.push_back(std::move(V));
    }
    auto Slot = [&](const std::string &Name) {
      auto It = SlotOf.find(Name);
      return It == SlotOf.end() ? -1 : It->second;
    };
    SrcSlot = Plan.SrcIter.empty() ? -1 : Slot(Plan.SrcIter);
    DstSlot = Plan.DstIter.empty() ? SrcSlot : Slot(Plan.DstIter);
  }

  size_t numVars() const { return Vars.size(); }

  bool outerIsLoop() const { return !Vars.empty() && !Vars[0].Solved; }

  /// Per-run mutable state: one value slot per plan variable. Cloning
  /// this (not the program) is all a new thread needs.
  struct RunState {
    std::vector<int64_t> Values;
    uint64_t Visits = 0;
  };

  RunState makeState() const {
    RunState S;
    S.Values.assign(Vars.size(), 0);
    return S;
  }

  /// Bounds of the outermost loop variable (valid when no plan variable
  /// feeds them, which holds by construction for depth 0).
  bool outerRange(int64_t &Lo, int64_t &Hi) const {
    if (!outerIsLoop())
      return false;
    RunState S = makeState();
    bool Poison = false;
    Lo = std::numeric_limits<int64_t>::min();
    for (int L : Vars[0].Lowers)
      Lo = std::max(Lo, eval(S, L, Poison));
    Hi = std::numeric_limits<int64_t>::max();
    for (int U : Vars[0].Uppers)
      Hi = std::min(Hi, eval(S, U, Poison));
    return !Poison;
  }

  /// Run the full nest with the outermost loop clamped to [OuterLo,
  /// OuterHi), feeding every emitted edge to `Emit(Src, Dst)`. Returns
  /// iterations visited.
  template <typename Sink>
  uint64_t run(int64_t OuterLo, int64_t OuterHi, Sink &&Emit) const {
    RunState S = makeState();
    recurse(S, 0, OuterLo, OuterHi, Emit);
    return S.Visits;
  }

private:
  int compile(const ir::Expr &E) {
    CExpr C;
    C.Const = E.constant();
    for (const ir::Expr::Term &T : E.terms()) {
      CTerm CT;
      CT.Coeff = T.Coeff;
      if (T.A.isVar()) {
        auto It = SlotOf.find(T.A.Name);
        if (It != SlotOf.end()) {
          CT.Slot = It->second;
        } else {
          // A parameter: constant-fold it.
          auto PIt = Env.Params.find(T.A.Name);
          assert(PIt != Env.Params.end() && "unbound variable/parameter");
          C.Const += T.Coeff * PIt->second;
          continue;
        }
      } else {
        assert(T.A.Args.size() == 1 && "only arity-1 index arrays occur");
        CT.ArgIdx = compile(T.A.Args[0]);
        const CExpr &Arg = Pool[static_cast<size_t>(CT.ArgIdx)];
        if (Arg.Terms.empty()) {
          CT.ArgSlot = -2; // pure constant argument
          CT.ArgConst = Arg.Const;
        } else if (Arg.Terms.size() == 1 && Arg.Terms[0].Slot >= 0) {
          CT.ArgSlot = Arg.Terms[0].Slot;
          CT.ArgCoeff = Arg.Terms[0].Coeff;
          CT.ArgConst = Arg.Const;
        }
        auto SIt = Env.Spans.find(T.A.Name);
        if (SIt != Env.Spans.end()) {
          // Devirtualized: probe the raw array with an inline bounds
          // check. The shared_ptr keep-alive guards against rebinding of
          // the environment entry while this program lives.
          KeepAlive.push_back(SIt->second);
          CT.Data = SIt->second->data();
          CT.Size = static_cast<int64_t>(SIt->second->size());
        } else {
          auto FIt = Env.Arrays.find(T.A.Name);
          assert(FIt != Env.Arrays.end() && "unbound index array");
          CT.Fn = &FIt->second;
        }
      }
      C.Terms.push_back(CT);
    }
    Pool.push_back(std::move(C));
    return static_cast<int>(Pool.size() - 1);
  }

  int64_t eval(RunState &S, int Idx, bool &Poison) const {
    const CExpr &C = Pool[static_cast<size_t>(Idx)];
    int64_t V = C.Const;
    for (const CTerm &T : C.Terms) {
      int64_t A;
      if (T.Slot >= 0) {
        A = S.Values[static_cast<size_t>(T.Slot)];
      } else {
        int64_t Arg;
        if (T.ArgSlot >= 0)
          Arg = T.ArgConst +
                T.ArgCoeff * S.Values[static_cast<size_t>(T.ArgSlot)];
        else if (T.ArgSlot == -2)
          Arg = T.ArgConst;
        else
          Arg = eval(S, T.ArgIdx, Poison);
        if (T.Data) {
          A = (Arg < 0 || Arg >= T.Size)
                  ? UFEnvironment::OutOfRange
                  : static_cast<int64_t>(T.Data[Arg]);
        } else {
          A = (*T.Fn)(Arg);
        }
        if (A == UFEnvironment::OutOfRange)
          Poison = true;
      }
      V += T.Coeff * A;
    }
    return V;
  }

  bool guardsHold(RunState &S, const CVar &V) const {
    for (const CGuard &G : V.Guards) {
      bool Poison = false;
      int64_t X = eval(S, G.ExprIdx, Poison);
      if (Poison)
        continue; // unevaluable guard: keep the instance (see file header)
      if (G.IsEq ? (X != 0) : (X < 0))
        return false;
    }
    return true;
  }

  template <typename Sink>
  void recurse(RunState &S, size_t Depth, int64_t OuterLo, int64_t OuterHi,
               Sink &&Emit) const {
    if (Depth == Vars.size()) {
      int64_t Src =
          SrcSlot < 0 ? 0 : S.Values[static_cast<size_t>(SrcSlot)];
      int64_t Dst =
          DstSlot < 0 ? Src : S.Values[static_cast<size_t>(DstSlot)];
      Emit(Src, Dst);
      return;
    }
    const CVar &V = Vars[Depth];
    if (V.Solved) {
      ++S.Visits;
      bool Poison = false;
      int64_t X = eval(S, V.SolvedIdx, Poison);
      if (Poison)
        return;
      S.Values[Depth] = X;
      if (guardsHold(S, V))
        recurse(S, Depth + 1, OuterLo, OuterHi, Emit);
      return;
    }
    bool Poison = false;
    int64_t LB = std::numeric_limits<int64_t>::min();
    for (int L : V.Lowers)
      LB = std::max(LB, eval(S, L, Poison));
    int64_t UB = std::numeric_limits<int64_t>::max();
    for (int U : V.Uppers)
      UB = std::min(UB, eval(S, U, Poison));
    if (Poison)
      return;
    if (Depth == 0) {
      LB = std::max(LB, OuterLo);
      UB = std::min(UB, OuterHi);
    }
    for (int64_t X = LB; X < UB; ++X) {
      ++S.Visits;
      S.Values[Depth] = X;
      if (guardsHold(S, V))
        recurse(S, Depth + 1, OuterLo, OuterHi, Emit);
    }
  }

  const UFEnvironment &Env;
  std::unordered_map<std::string, int> SlotOf;
  std::vector<CExpr> Pool;
  std::vector<CVar> Vars;
  std::vector<std::shared_ptr<const std::vector<int>>> KeepAlive;
  int SrcSlot = -1, DstSlot = -1;
};

} // namespace detail

//===----------------------------------------------------------------------===//
// CompiledInspector
//===----------------------------------------------------------------------===//

namespace {
constexpr int64_t FullLo = std::numeric_limits<int64_t>::min();
constexpr int64_t FullHi = std::numeric_limits<int64_t>::max();
} // namespace

CompiledInspector::CompiledInspector(const InspectorPlan &Plan,
                                     const UFEnvironment &Env)
    : Prog(std::make_shared<const detail::CompiledProgram>(Plan, Env)) {
  assert(Plan.Valid && "cannot compile an invalid plan");
}

bool CompiledInspector::outerIsLoop() const { return Prog->outerIsLoop(); }

bool CompiledInspector::outerRange(int64_t &Lo, int64_t &Hi) const {
  return Prog->outerRange(Lo, Hi);
}

uint64_t CompiledInspector::run(std::vector<InspectorEdge> &Out) const {
  return Prog->run(FullLo, FullHi, [&Out](int64_t S, int64_t D) {
    Out.emplace_back(S, D);
  });
}

uint64_t CompiledInspector::runRange(int64_t Lo, int64_t Hi,
                                     std::vector<InspectorEdge> &Out) const {
  return Prog->run(Lo, Hi, [&Out](int64_t S, int64_t D) {
    Out.emplace_back(S, D);
  });
}

uint64_t CompiledInspector::run(
    const std::function<void(int64_t, int64_t)> &EmitEdge) const {
  return Prog->run(FullLo, FullHi, [&EmitEdge](int64_t S, int64_t D) {
    EmitEdge(S, D);
  });
}

//===----------------------------------------------------------------------===//
// Free-function runners
//===----------------------------------------------------------------------===//

uint64_t runInspector(const InspectorPlan &Plan, const UFEnvironment &Env,
                      const std::function<void(int64_t, int64_t)> &EmitEdge) {
  assert(Plan.Valid && "cannot run an invalid plan");
  return CompiledInspector(Plan, Env).run(EmitEdge);
}

uint64_t runInspectorParallel(
    const InspectorPlan &Plan, const UFEnvironment &Env, int NumThreads,
    const std::function<void(int64_t, int64_t)> &EmitEdge) {
  assert(Plan.Valid && "cannot run an invalid plan");
  // One compilation, shared by every thread; only slot state is cloned
  // per thread (inside run/runRange).
  CompiledInspector C(Plan, Env);
  int64_t Lo, Hi;
  if (NumThreads <= 1 || !C.outerRange(Lo, Hi) || Hi <= Lo)
    return C.run(EmitEdge);

  // Each thread buffers its edges; EmitEdge runs serially afterwards, so
  // callers need no synchronization.
  uint64_t Total = 0;
  std::vector<std::vector<InspectorEdge>> Buffers(
      static_cast<size_t>(NumThreads));
#ifdef _OPENMP
#pragma omp parallel num_threads(NumThreads) reduction(+ : Total)
#endif
  {
    int T = omp_get_thread_num();
    int NT = omp_get_num_threads();
    int64_t Span = Hi - Lo;
    int64_t Begin = Lo + Span * T / NT;
    int64_t End = Lo + Span * (T + 1) / NT;
    Total += C.runRange(Begin, End, Buffers[static_cast<size_t>(T)]);
  }
  for (const auto &Buf : Buffers)
    for (const auto &[S2, D2] : Buf)
      EmitEdge(S2, D2);
  return Total;
}

} // namespace codegen
} // namespace sds
