//===- Emit.cpp - C source rendering of inspector plans -------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/codegen/Inspector.h"

namespace sds {
namespace codegen {

namespace {

/// C identifiers cannot contain primes: i' becomes ip.
std::string sanitize(const std::string &Name) {
  std::string Out;
  for (char C : Name)
    Out += (C == '\'') ? 'p' : C;
  return Out;
}

/// Render an Expr as C, with UF calls as array subscripts (col(k) ->
/// col[k]), matching the style of Figure 5.
std::string exprToC(const ir::Expr &E) {
  if (E.terms().empty())
    return std::to_string(E.constant());
  std::string Out;
  bool First = true;
  for (const ir::Expr::Term &T : E.terms()) {
    int64_t C = T.Coeff;
    if (First) {
      if (C == -1)
        Out += "-";
      else if (C != 1)
        Out += std::to_string(C) + "*";
    } else {
      Out += C > 0 ? " + " : " - ";
      int64_t A = C < 0 ? -C : C;
      if (A != 1)
        Out += std::to_string(A) + "*";
    }
    if (T.A.isVar()) {
      Out += sanitize(T.A.Name);
    } else {
      Out += T.A.Name + "[";
      for (size_t I = 0; I < T.A.Args.size(); ++I) {
        if (I)
          Out += ", ";
        Out += exprToC(T.A.Args[I]);
      }
      Out += "]";
    }
    First = false;
  }
  if (E.constant() != 0) {
    Out += E.constant() > 0 ? " + " : " - ";
    int64_t A = E.constant() < 0 ? -E.constant() : E.constant();
    Out += std::to_string(A);
  }
  return Out;
}

std::string boundMax(const std::vector<ir::Expr> &Lowers) {
  std::string Out = exprToC(Lowers[0]);
  for (size_t I = 1; I < Lowers.size(); ++I)
    Out = "max(" + Out + ", " + exprToC(Lowers[I]) + ")";
  return Out;
}

std::string boundMin(const std::vector<ir::Expr> &Uppers) {
  std::string Out = exprToC(Uppers[0]);
  for (size_t I = 1; I < Uppers.size(); ++I)
    Out = "min(" + Out + ", " + exprToC(Uppers[I]) + ")";
  return Out;
}

std::string guardToC(const ir::Constraint &C) {
  return exprToC(C.E) + (C.isEq() ? " == 0" : " >= 0");
}

} // namespace

std::string InspectorPlan::emitC(const std::string &FnName) const {
  if (!Valid)
    return "/* invalid plan: " + WhyInvalid + " */\n";
  std::string Out;
  Out += "// Generated wavefront inspector. Complexity: " + Cost.str() +
         "\n";
  Out += "// The outermost loop carries no dependence and may be run with\n"
         "// '#pragma omp parallel for' (see paper §6.1).\n";
  Out += "void " + FnName + "(DependenceGraph &dag) {\n";
  std::string Indent = "  ";
  unsigned OpenBraces = 0;
  for (const PlanVar &PV : Vars) {
    std::string V = sanitize(PV.Name);
    if (PV.K == PlanVar::Kind::Solved) {
      Out += Indent + "long " + V + " = " + exprToC(PV.Solved) + ";\n";
    } else {
      Out += Indent + "for (long " + V + " = " + boundMax(PV.Lowers) +
             "; " + V + " < " + boundMin(PV.Uppers) + "; " + V + "++) {\n";
      Indent += "  ";
      ++OpenBraces;
    }
    for (const ir::Constraint &G : PV.Guards) {
      Out += Indent + "if (!(" + guardToC(G) + ")) " +
             (OpenBraces ? "continue;" : "return;") + "\n";
    }
  }
  Out += Indent + "dag.addEdge(" + sanitize(SrcIter) + ", " +
         sanitize(DstIter) + ");\n";
  while (OpenBraces--) {
    Indent.resize(Indent.size() - 2);
    Out += Indent + "}\n";
  }
  Out += "}\n";
  return Out;
}

} // namespace codegen
} // namespace sds
