//===- Complexity.cpp - Symbolic inspector/kernel complexity --------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/codegen/Complexity.h"

namespace sds {
namespace codegen {

static std::string power(const std::string &Base, int Exp) {
  if (Exp == 1)
    return Base;
  return Base + "^" + std::to_string(Exp);
}

std::string Complexity::str() const {
  if (NExp == 0 && DExp == 0)
    return "1";
  // Fold n*d pairs into nnz, print the remainder as n or nnz/n powers.
  int NnzPow = NExp < DExp ? NExp : DExp;
  int NPow = NExp - NnzPow;
  int DPow = DExp - NnzPow;
  std::string Out;
  auto Append = [&Out](const std::string &Part) {
    if (!Out.empty())
      Out += "*";
    Out += Part;
  };
  if (NnzPow > 0)
    Append(power("nnz", NnzPow));
  if (NPow > 0)
    Append(power("n", NPow));
  if (DPow > 0)
    Append(power("(nnz/n)", DPow));
  if (NPow < 0 || DPow < 0 || NnzPow < 0)
    Out += " [negative exponent]"; // never produced by range products
  return Out;
}

} // namespace codegen
} // namespace sds
