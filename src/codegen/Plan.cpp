//===- Plan.cpp - Inspector synthesis from relations ----------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Variable-ordering search: a subset DP (availability depends only on the
// *set* of already-scheduled variables) finds the order minimizing the
// product of symbolic trip counts. This mirrors what a careful use of
// Omega+ polyhedra scanning plus the paper's equality exploitation
// achieves: solved variables cost 1, segment loops cost nnz/n, row loops
// cost n.
//
//===----------------------------------------------------------------------===//

#include "sds/codegen/Inspector.h"

#include <algorithm>
#include <cassert>

namespace sds {
namespace codegen {

using ir::Atom;
using ir::Conjunction;
using ir::Constraint;
using ir::Expr;
using ir::SparseRelation;

namespace {

/// Scheduling context: variable indices, constraint table, availability.
class Scheduler {
public:
  Scheduler(const SparseRelation &R,
            const std::map<std::string, Complexity> &ParamClass)
      : ParamClass(ParamClass) {
    auto AddVars = [&](const std::vector<std::string> &L) {
      for (const std::string &V : L)
        if (VarIndex.find(V) == VarIndex.end()) {
          VarIndex.emplace(V, Vars.size());
          Vars.push_back(V);
        }
    };
    AddVars(R.InVars);
    AddVars(R.OutVars);
    AddVars(R.ExistVars);
    for (const Constraint &C : R.Conj.constraints())
      Cons.push_back(&C);
  }

  unsigned numVars() const { return static_cast<unsigned>(Vars.size()); }
  const std::string &varName(unsigned I) const { return Vars[I]; }

  /// All variables of `E` scheduled (params are always available)?
  bool exprAvailable(const Expr &E, unsigned Mask) const {
    std::vector<std::string> Names;
    E.collectVars(Names);
    for (const std::string &N : Names) {
      auto It = VarIndex.find(N);
      if (It != VarIndex.end() && !(Mask & (1u << It->second)))
        return false;
    }
    return true;
  }

  /// Top-level coefficient of variable `V` in `E` (0 when absent).
  static int64_t topLevelCoeff(const Expr &E, const std::string &V) {
    for (const Expr::Term &T : E.terms())
      if (T.A.isVar() && T.A.Name == V)
        return T.Coeff;
    return 0;
  }

  /// Does `E` mention `V` anywhere (including inside call arguments)?
  static bool mentions(const Expr &E, const std::string &V) {
    std::vector<std::string> Names;
    E.collectVars(Names);
    return std::find(Names.begin(), Names.end(), V) != Names.end();
  }

  /// Candidate production of variable `VI` given scheduled set `Mask`.
  /// Fills `Out` (without guards) and the indices of consumed constraints.
  bool candidate(unsigned VI, unsigned Mask, PlanVar &Out,
                 std::vector<size_t> &Consumed) const {
    const std::string &V = Vars[VI];
    Out = PlanVar();
    Out.Name = V;
    Consumed.clear();

    // Solve-by-equality first: cost 1 beats any loop.
    for (size_t CI = 0; CI < Cons.size(); ++CI) {
      const Constraint &C = *Cons[CI];
      if (!C.isEq())
        continue;
      int64_t A = topLevelCoeff(C.E, V);
      if (A != 1 && A != -1)
        continue;
      Expr Rest = C.E - Expr(A, Atom::var(V));
      if (mentions(Rest, V) || !exprAvailable(Rest, Mask))
        continue;
      Out.K = PlanVar::Kind::Solved;
      Out.Solved = Rest * -A;
      Out.Range = Complexity::one();
      Consumed.push_back(CI);
      return true;
    }

    // Loop: gather available unit-coefficient bounds.
    for (size_t CI = 0; CI < Cons.size(); ++CI) {
      const Constraint &C = *Cons[CI];
      if (C.isEq())
        continue;
      int64_t A = topLevelCoeff(C.E, V);
      if (A != 1 && A != -1)
        continue;
      Expr Rest = C.E - Expr(A, Atom::var(V));
      if (mentions(Rest, V) || !exprAvailable(Rest, Mask))
        continue;
      if (A == 1) {
        Out.Lowers.push_back(-Rest); // v + rest >= 0  =>  v >= -rest
      } else {
        Out.Uppers.push_back(Rest + Expr(1)); // rest - v >= 0 => v < rest+1
      }
      Consumed.push_back(CI);
    }
    if (Out.Lowers.empty() || Out.Uppers.empty())
      return false;
    Out.K = PlanVar::Kind::Loop;
    Out.Range = classifyRange(Out.Lowers, Out.Uppers);
    return true;
  }

  /// Classify the trip count of a loop with the given bounds.
  Complexity classifyRange(const std::vector<Expr> &Lowers,
                           const std::vector<Expr> &Uppers) const {
    Complexity Best = {1, 0}; // default: n-like
    bool Classified = false;
    auto Consider = [&](Complexity C) {
      if (!Classified || C < Best) {
        Best = C;
        Classified = true;
      }
    };
    for (const Expr &U : Uppers) {
      for (const Expr &L : Lowers) {
        Expr Diff = U - L;
        if (Diff.isConstant()) {
          Consider(Complexity::one()); // constant trip count
          continue;
        }
        // rowptr(i+1) - rowptr(i) style: only calls of one function left.
        bool AllSameFnCalls = true;
        std::string Fn;
        for (const Expr::Term &T : Diff.terms()) {
          if (!T.A.isCall()) {
            AllSameFnCalls = false;
            break;
          }
          if (Fn.empty())
            Fn = T.A.Name;
          else if (Fn != T.A.Name)
            AllSameFnCalls = false;
        }
        if (AllSameFnCalls && !Diff.terms().empty()) {
          Consider(Complexity::d());
          continue;
        }
      }
      // Upper bound is a segment-end pointer (single call): the loop stays
      // inside one segment, trip count <= nnz/n.
      if (U.terms().size() == 1 && U.terms()[0].A.isCall() &&
          U.terms()[0].Coeff == 1) {
        Consider(Complexity::d());
        continue;
      }
      // Upper bound is a bare parameter: classify by name (n vs nnz).
      if (U.terms().size() == 1 && U.terms()[0].A.isVar() &&
          U.terms()[0].Coeff == 1) {
        auto It = ParamClass.find(U.terms()[0].A.Name);
        Consider(It != ParamClass.end() ? It->second : Complexity::n());
        continue;
      }
    }
    return Best;
  }

  const std::vector<const Constraint *> &constraints() const { return Cons; }

  /// Earliest schedule position at which `E` is evaluable.
  unsigned earliestPosition(const Expr &E,
                            const std::vector<unsigned> &Order) const {
    std::vector<std::string> Names;
    E.collectVars(Names);
    unsigned Pos = 0;
    for (const std::string &N : Names) {
      auto It = VarIndex.find(N);
      if (It == VarIndex.end())
        continue; // parameter
      for (unsigned P = 0; P < Order.size(); ++P)
        if (Order[P] == It->second) {
          Pos = std::max(Pos, P + 1);
          break;
        }
    }
    return Pos;
  }

private:
  std::map<std::string, unsigned> VarIndex;
  std::vector<std::string> Vars;
  std::vector<const Constraint *> Cons;
  const std::map<std::string, Complexity> &ParamClass;
};

} // namespace

InspectorPlan
buildInspectorPlan(const ir::SparseRelation &R,
                   const std::map<std::string, Complexity> &ParamClass) {
  InspectorPlan Plan;
  Scheduler S(R, ParamClass);
  unsigned N = S.numVars();
  if (N > 16) {
    Plan.WhyInvalid = "too many variables for the subset DP";
    return Plan;
  }

  // Subset DP: dp[mask] = cheapest complexity of scheduling `mask`.
  unsigned Full = (N == 0) ? 0 : ((1u << N) - 1);
  std::vector<Complexity> DP(Full + 1, Complexity{127, 127});
  std::vector<int> ChoiceVar(Full + 1, -1);
  std::vector<unsigned> ChoicePrev(Full + 1, 0);
  DP[0] = Complexity::one();
  for (unsigned Mask = 0; Mask <= Full; ++Mask) {
    if (DP[Mask].NExp == 127)
      continue;
    for (unsigned V = 0; V < N; ++V) {
      if (Mask & (1u << V))
        continue;
      PlanVar PV;
      std::vector<size_t> Consumed;
      if (!S.candidate(V, Mask, PV, Consumed))
        continue;
      unsigned Next = Mask | (1u << V);
      Complexity C = DP[Mask].times(PV.Range);
      if (C < DP[Next]) {
        DP[Next] = C;
        ChoiceVar[Next] = static_cast<int>(V);
        ChoicePrev[Next] = Mask;
      }
    }
    if (N == 0)
      break;
  }
  if (N > 0 && DP[Full].NExp == 127) {
    Plan.WhyInvalid = "no variable order makes every variable enumerable "
                      "(some variable lacks finite bounds)";
    return Plan;
  }

  // Reconstruct the order.
  std::vector<unsigned> Order(N);
  {
    unsigned Mask = Full;
    for (unsigned P = N; P-- > 0;) {
      Order[P] = static_cast<unsigned>(ChoiceVar[Mask]);
      Mask = ChoicePrev[Mask];
    }
  }

  // Materialize plan variables and track consumed constraints.
  std::vector<bool> Used(S.constraints().size(), false);
  unsigned Mask = 0;
  for (unsigned P = 0; P < N; ++P) {
    PlanVar PV;
    std::vector<size_t> Consumed;
    bool OK = S.candidate(Order[P], Mask, PV, Consumed);
    assert(OK && "DP-chosen variable must be schedulable");
    (void)OK;
    for (size_t CI : Consumed)
      Used[CI] = true;
    Plan.Vars.push_back(std::move(PV));
    Mask |= 1u << Order[P];
  }

  // Remaining constraints become guards at their earliest position.
  for (size_t CI = 0; CI < S.constraints().size(); ++CI) {
    if (Used[CI])
      continue;
    const Constraint &C = *S.constraints()[CI];
    unsigned Pos = S.earliestPosition(C.E, Order);
    if (N == 0) {
      Plan.WhyInvalid = "guard on a zero-variable relation";
      return Plan;
    }
    if (Pos == 0)
      Pos = 1; // evaluable immediately; attach to the first variable
    Plan.Vars[Pos - 1].Guards.push_back(C);
  }

  Plan.Cost = N > 0 ? DP[Full] : Complexity::one();
  Plan.SrcIter = R.InVars.empty() ? "" : R.InVars[0];
  Plan.DstIter = R.OutVars.empty() ? Plan.SrcIter : R.OutVars[0];
  Plan.Valid = true;
  return Plan;
}

Complexity
domainComplexity(const ir::Conjunction &Domain,
                 const std::vector<std::string> &IVs,
                 const std::map<std::string, Complexity> &ParamClass) {
  ir::SparseRelation R;
  R.InVars = IVs;
  R.Conj = Domain;
  InspectorPlan P = buildInspectorPlan(R, ParamClass);
  return P.Valid ? P.Cost : Complexity{127, 127};
}

} // namespace codegen
} // namespace sds
