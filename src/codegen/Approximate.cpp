//===- Approximate.cpp - Dependence over-approximation (§8.1) -------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/codegen/Approximate.h"

#include <algorithm>

namespace sds {
namespace codegen {

ir::SparseRelation relaxAway(const ir::SparseRelation &R,
                         const std::vector<std::string> &Vars) {
  ir::SparseRelation Out = R;
  auto Mentions = [&](const ir::Constraint &C) {
    std::vector<std::string> Names;
    C.E.collectVars(Names);
    for (const std::string &N : Names)
      if (std::find(Vars.begin(), Vars.end(), N) != Vars.end())
        return true;
    return false;
  };
  ir::Conjunction Kept;
  for (const ir::Constraint &C : R.Conj.constraints())
    if (!Mentions(C))
      Kept.add(C);
  Out.Conj = std::move(Kept);
  auto Scrub = [&](std::vector<std::string> &L) {
    L.erase(std::remove_if(L.begin(), L.end(),
                           [&](const std::string &V) {
                             return std::find(Vars.begin(), Vars.end(),
                                              V) != Vars.end();
                           }),
            L.end());
  };
  Scrub(Out.OutVars);
  Scrub(Out.ExistVars);
  // Input-tuple variables other than the outer one may also be relaxed.
  if (!Out.InVars.empty()) {
    std::string Outer = Out.InVars.front();
    Scrub(Out.InVars);
    if (Out.InVars.empty() ||
        Out.InVars.front() != Outer) // never drop the outer iterator
      Out.InVars.insert(Out.InVars.begin(), Outer);
  }
  return Out;
}

ApproximationResult approximateToCost(const ir::SparseRelation &R,
                                      Complexity Target) {
  ApproximationResult Res;
  Res.Rel = R;
  Res.Cost = buildInspectorPlan(R).Cost;

  while (Target < Res.Cost) {
    // Candidates: everything except the two edge-defining iterators.
    std::vector<std::string> Candidates;
    for (size_t I = 1; I < Res.Rel.InVars.size(); ++I)
      Candidates.push_back(Res.Rel.InVars[I]);
    for (size_t I = 1; I < Res.Rel.OutVars.size(); ++I)
      Candidates.push_back(Res.Rel.OutVars[I]);
    Candidates.insert(Candidates.end(), Res.Rel.ExistVars.begin(),
                      Res.Rel.ExistVars.end());
    if (Candidates.empty())
      break;

    std::string BestVar;
    ir::SparseRelation BestRel = Res.Rel;
    Complexity BestCost = Res.Cost;
    for (const std::string &V : Candidates) {
      ir::SparseRelation Try = relaxAway(Res.Rel, {V});
      InspectorPlan P = buildInspectorPlan(Try);
      if (!P.Valid)
        continue;
      if (P.Cost < BestCost) {
        BestCost = P.Cost;
        BestRel = std::move(Try);
        BestVar = V;
      }
    }
    if (BestVar.empty())
      break; // no single relaxation helps
    Res.Rel = std::move(BestRel);
    Res.Cost = BestCost;
    Res.DroppedVars.push_back(BestVar);
    Res.Changed = true;
  }
  return Res;
}

} // namespace codegen
} // namespace sds
