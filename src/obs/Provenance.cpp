//===- Provenance.cpp - Decision provenance for the pipeline --------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/obs/Provenance.h"

namespace sds {
namespace obs {

std::string Provenance::str() const {
  std::string Out = Stage;
  if (!Evidence.empty()) {
    Out += " [";
    for (size_t I = 0; I < Evidence.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Evidence[I];
    }
    Out += "]";
  }
  return Out;
}

json::Value Provenance::toJSON() const {
  json::Object Root;
  Root.emplace("stage", json::Value(Stage));
  json::Array Ev;
  for (const std::string &E : Evidence)
    Ev.push_back(json::Value(E));
  Root.emplace("evidence", json::Value(std::move(Ev)));
  Root.emplace("seconds", json::Value(Seconds));
  return json::Value(std::move(Root));
}

} // namespace obs
} // namespace sds
