//===- Export.cpp - Trace and stats exporters -----------------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/obs/Export.h"

#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"
#include "sds/support/Schema.h"

#include <algorithm>
#include <fstream>
#include <map>

namespace sds {
namespace obs {

namespace {

json::Value countersObject() {
  json::Object Counters;
  for (const auto &[Name, Val] : snapshotCounters())
    Counters.emplace(Name, json::Value(static_cast<int64_t>(Val)));
  return json::Value(std::move(Counters));
}

} // namespace

json::Value chromeTrace() {
  json::Array Events;
  for (const TraceEvent &E : snapshotEvents()) {
    json::Object Ev;
    Ev.emplace("name", json::Value(E.Name));
    Ev.emplace("cat", json::Value(E.Category));
    Ev.emplace("ph", json::Value(std::string("X")));
    Ev.emplace("ts", json::Value(static_cast<double>(E.StartNs) / 1000.0));
    Ev.emplace("dur", json::Value(static_cast<double>(E.DurNs) / 1000.0));
    Ev.emplace("pid", json::Value(static_cast<int64_t>(1)));
    Ev.emplace("tid", json::Value(static_cast<int64_t>(E.ThreadId)));
    if (!E.Tags.empty()) {
      json::Object Args;
      for (const auto &[K, V] : E.Tags)
        Args.emplace(K, json::Value(V));
      Ev.emplace("args", json::Value(std::move(Args)));
    }
    Events.push_back(json::Value(std::move(Ev)));
  }
  json::Object Root;
  Root.emplace("traceEvents", json::Value(std::move(Events)));
  Root.emplace("displayTimeUnit", json::Value(std::string("ms")));
  Root.emplace("counters", countersObject());
  if (uint64_t N = droppedEvents())
    Root.emplace("dropped_events", json::Value(static_cast<int64_t>(N)));
  return json::Value(std::move(Root));
}

std::string chromeTraceJSON() { return chromeTrace().str(); }

bool writeChromeTrace(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << chromeTraceJSON() << "\n";
  return static_cast<bool>(Out);
}

json::Value statsReport() {
  struct Agg {
    uint64_t Count = 0;
    uint64_t TotalNs = 0;
    uint64_t MinNs = UINT64_MAX;
    uint64_t MaxNs = 0;
  };
  std::map<std::string, Agg> ByName;
  for (const TraceEvent &E : snapshotEvents()) {
    Agg &A = ByName[E.Name];
    ++A.Count;
    A.TotalNs += E.DurNs;
    A.MinNs = std::min(A.MinNs, E.DurNs);
    A.MaxNs = std::max(A.MaxNs, E.DurNs);
  }
  json::Object Spans;
  for (const auto &[Name, A] : ByName) {
    json::Object S;
    S.emplace("count", json::Value(static_cast<int64_t>(A.Count)));
    S.emplace("total_ms", json::Value(static_cast<double>(A.TotalNs) / 1e6));
    S.emplace("min_ms", json::Value(static_cast<double>(A.MinNs) / 1e6));
    S.emplace("max_ms", json::Value(static_cast<double>(A.MaxNs) / 1e6));
    Spans.emplace(Name, json::Value(std::move(S)));
  }
  // Live gauges (registry gauges + polled sources: presburger cache,
  // prefilter ladder, engine stats) ride along so one stats dump carries
  // the pull-only structs too.
  json::Object Gauges;
  for (const auto &[Name, V] : snapshotMetrics().Gauges)
    Gauges.emplace(Name, json::Value(V));
  json::Object Root;
  Root.emplace("schema_version", json::Value(schema::kVersion));
  Root.emplace("spans", json::Value(std::move(Spans)));
  Root.emplace("counters", countersObject());
  Root.emplace("gauges", json::Value(std::move(Gauges)));
  Root.emplace("dropped_events",
               json::Value(static_cast<int64_t>(droppedEvents())));
  return json::Value(std::move(Root));
}

std::string statsJSON() { return statsReport().str(); }

} // namespace obs
} // namespace sds
