//===- Trace.cpp - Tracing core: spans, counters, events ------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/obs/Trace.h"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "sds/support/OMP.h"

namespace sds {
namespace obs {

namespace detail {
std::atomic<bool> Enabled{false};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// The process-global registry. Constructed on first use and deliberately
/// leaked (avoids destruction-order races with static Counter handles).
struct Registry {
  std::mutex Mu;
  Clock::time_point Epoch = Clock::now();
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::vector<TraceEvent> Events;
  size_t Capacity = 1 << 20;
  std::atomic<uint64_t> Dropped{0};
  std::atomic<uint32_t> NextThreadId{0};
};

Registry &registry() {
  static Registry *R = new Registry();
  return *R;
}

uint32_t threadId() {
  // Inside an OpenMP parallel region, use the real omp_get_thread_num()
  // so Chrome traces of the inspector fleet and wavefront teams lay spans
  // out on their actual worker lanes (the master's lane 0 coincides with
  // the serial id 0, so serial and parallel spans of the main thread
  // share a row). Outside parallel regions, fall back to a stable
  // process-unique registration id.
#ifdef _OPENMP
  if (omp_in_parallel())
    return static_cast<uint32_t>(omp_get_thread_num());
#endif
  thread_local uint32_t Id =
      registry().NextThreadId.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

} // namespace

void setEnabled(bool On) {
  (void)registry(); // establish the epoch before the first span
  detail::Enabled.store(On, std::memory_order_relaxed);
}

void clear() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Events.clear();
  R.Dropped.store(0, std::memory_order_relaxed);
  for (auto &[Name, C] : R.Counters)
    C->reset();
}

void setEventCapacity(size_t MaxEvents) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Capacity = MaxEvents;
}

uint64_t droppedEvents() {
  return registry().Dropped.load(std::memory_order_relaxed);
}

Counter &counter(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto It = R.Counters.find(Name);
  if (It == R.Counters.end())
    It = R.Counters
             .emplace(std::string(Name),
                      std::make_unique<Counter>(std::string(Name)))
             .first;
  return *It->second;
}

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           registry().Epoch)
          .count());
}

Span::Span(std::string_view Name, std::string_view Category)
    : Active(enabled()) {
  if (!Active)
    return;
  Ev.Name = Name;
  Ev.Category = Category;
  Ev.ThreadId = threadId();
  Ev.StartNs = nowNs();
}

void Span::tag(std::string_view Key, std::string_view Val) {
  if (Active)
    Ev.Tags.emplace_back(std::string(Key), std::string(Val));
}

void Span::tag(std::string_view Key, int64_t Val) {
  if (Active)
    Ev.Tags.emplace_back(std::string(Key), std::to_string(Val));
}

void Span::end() {
  if (!Active)
    return;
  Active = false;
  Ev.DurNs = nowNs() - Ev.StartNs;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  if (R.Events.size() >= R.Capacity) {
    R.Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  R.Events.push_back(std::move(Ev));
}

Span::~Span() { end(); }

std::vector<TraceEvent> snapshotEvents() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  return R.Events;
}

std::vector<std::pair<std::string, uint64_t>> snapshotCounters() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(R.Counters.size());
  for (const auto &[Name, C] : R.Counters)
    Out.emplace_back(Name, C->value());
  return Out;
}

} // namespace obs
} // namespace sds
