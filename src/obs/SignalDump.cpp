//===- SignalDump.cpp - Post-mortem state on fatal signals ----------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/obs/SignalDump.h"

#include "sds/obs/FlightRecorder.h"
#include "sds/obs/Metrics.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <mutex>

namespace sds {
namespace obs {

namespace {

std::mutex PathMu;
std::string DumpPath; ///< guarded by PathMu; read once by the handler

std::atomic<bool> Installed{false};
std::atomic_flag Dumping = ATOMIC_FLAG_INIT;

extern "C" void onFatalSignal(int Sig) {
  // Restore default disposition first: a second signal (impatient Ctrl-C,
  // supervisor escalation) kills the process immediately instead of
  // re-entering the flush.
  std::signal(Sig, SIG_DFL);
  if (!Dumping.test_and_set()) {
    std::string Path;
    {
      std::lock_guard<std::mutex> Lock(PathMu);
      Path = DumpPath;
    }
    std::fprintf(stderr, "\n[sds] caught signal %d; dumping post-mortem "
                         "state\n",
                 Sig);
    if (!Path.empty() && !writeMetrics(Path))
      std::fprintf(stderr, "[sds] cannot write metrics to '%s'\n",
                   Path.c_str());
    dumpFlight(stderr);
    std::fflush(nullptr);
  }
  std::raise(Sig);
}

} // namespace

void dumpOnFatalSignal(std::string MetricsPath) {
  {
    std::lock_guard<std::mutex> Lock(PathMu);
    DumpPath = std::move(MetricsPath);
  }
  if (!Installed.exchange(true)) {
    std::signal(SIGINT, onFatalSignal);
    std::signal(SIGTERM, onFatalSignal);
  }
}

} // namespace obs
} // namespace sds
