//===- FlightRecorder.cpp - Bounded ring of structured events -------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/obs/FlightRecorder.h"

#include "sds/obs/Trace.h"

#include <mutex>

namespace sds {
namespace obs {

const char *flightSeverityName(FlightSeverity S) {
  switch (S) {
  case FlightSeverity::Info:
    return "info";
  case FlightSeverity::Warn:
    return "warn";
  case FlightSeverity::Error:
    return "error";
  }
  return "?";
}

namespace {

/// Fixed ring under one mutex. The recorder only sees rare control-path
/// events (fallbacks, rejects, evictions), so contention is a
/// non-concern; a mutex keeps wraparound and capacity changes simple and
/// the event order globally consistent.
struct Recorder {
  std::mutex Mu;
  std::vector<FlightEvent> Ring; ///< capacity-sized once first used
  size_t Capacity = 256;
  size_t Head = 0;    ///< index of the oldest event
  size_t Size = 0;    ///< events currently held
  uint64_t NextSeq = 0;
  uint64_t Lost = 0;  ///< overwritten since the last clear
};

Recorder &recorder() {
  static Recorder *R = new Recorder();
  return *R;
}

} // namespace

void flightRecord(FlightSeverity Severity, std::string_view Category,
                  std::string_view Message,
                  std::vector<std::pair<std::string, std::string>> Fields) {
  FlightEvent E;
  E.TimeNs = nowNs();
  E.Severity = Severity;
  E.Category = Category;
  E.Message = Message;
  E.Fields = std::move(Fields);

  Recorder &R = recorder();
  std::lock_guard<std::mutex> Lock(R.Mu);
  if (R.Capacity == 0)
    return;
  if (R.Ring.size() != R.Capacity)
    R.Ring.resize(R.Capacity);
  E.Seq = R.NextSeq++;
  if (R.Size < R.Capacity) {
    R.Ring[(R.Head + R.Size) % R.Capacity] = std::move(E);
    ++R.Size;
  } else {
    R.Ring[R.Head] = std::move(E);
    R.Head = (R.Head + 1) % R.Capacity;
    ++R.Lost;
  }
}

void setFlightCapacity(size_t Capacity) {
  Recorder &R = recorder();
  std::lock_guard<std::mutex> Lock(R.Mu);
  // Keep the newest events, oldest-first, in a fresh ring.
  std::vector<FlightEvent> Keep;
  size_t N = std::min(R.Size, Capacity);
  Keep.reserve(N);
  for (size_t I = R.Size - N; I < R.Size; ++I)
    Keep.push_back(std::move(R.Ring[(R.Head + I) % R.Ring.size()]));
  R.Lost += R.Size - N;
  R.Capacity = Capacity;
  R.Ring.assign(Capacity, FlightEvent{});
  for (size_t I = 0; I < Keep.size(); ++I)
    R.Ring[I] = std::move(Keep[I]);
  R.Head = 0;
  R.Size = N;
}

std::vector<FlightEvent> snapshotFlight() {
  Recorder &R = recorder();
  std::lock_guard<std::mutex> Lock(R.Mu);
  std::vector<FlightEvent> Out;
  Out.reserve(R.Size);
  for (size_t I = 0; I < R.Size; ++I)
    Out.push_back(R.Ring[(R.Head + I) % R.Ring.size()]);
  return Out;
}

uint64_t flightLostEvents() {
  Recorder &R = recorder();
  std::lock_guard<std::mutex> Lock(R.Mu);
  return R.Lost;
}

void clearFlight() {
  Recorder &R = recorder();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Head = R.Size = 0;
  R.Lost = 0;
}

json::Value flightJSON() {
  json::Array Events;
  for (const FlightEvent &E : snapshotFlight()) {
    json::Object O;
    O.emplace("seq", json::Value(static_cast<int64_t>(E.Seq)));
    O.emplace("t_ms", json::Value(static_cast<double>(E.TimeNs) / 1e6));
    O.emplace("severity",
              json::Value(std::string(flightSeverityName(E.Severity))));
    O.emplace("category", json::Value(E.Category));
    O.emplace("message", json::Value(E.Message));
    if (!E.Fields.empty()) {
      json::Object F;
      for (const auto &[K, V] : E.Fields)
        F.emplace(K, json::Value(V));
      O.emplace("fields", json::Value(std::move(F)));
    }
    Events.push_back(json::Value(std::move(O)));
  }
  json::Object Root;
  Root.emplace("kind", json::Value(std::string("flight_recorder")));
  Root.emplace("lost_events",
               json::Value(static_cast<int64_t>(flightLostEvents())));
  Root.emplace("events", json::Value(std::move(Events)));
  return json::Value(std::move(Root));
}

void dumpFlight(std::FILE *Out) {
  std::vector<FlightEvent> Events = snapshotFlight();
  if (Events.empty())
    return;
  std::fprintf(Out, "--- flight recorder (last %zu event%s", Events.size(),
               Events.size() == 1 ? "" : "s");
  if (uint64_t L = flightLostEvents())
    std::fprintf(Out, ", %llu older lost", static_cast<unsigned long long>(L));
  std::fprintf(Out, ") ---\n");
  for (const FlightEvent &E : Events) {
    std::fprintf(Out, "[%6llu %9.3fms %-5s] %s: %s",
                 static_cast<unsigned long long>(E.Seq),
                 static_cast<double>(E.TimeNs) / 1e6,
                 flightSeverityName(E.Severity), E.Category.c_str(),
                 E.Message.c_str());
    for (const auto &[K, V] : E.Fields)
      std::fprintf(Out, " %s=%s", K.c_str(), V.c_str());
    std::fprintf(Out, "\n");
  }
}

} // namespace obs
} // namespace sds
