//===- Metrics.cpp - Metrics registry: counters, gauges, histograms -------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/obs/Metrics.h"

#include "sds/obs/FlightRecorder.h"
#include "sds/obs/Trace.h"
#include "sds/support/Schema.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

namespace sds {
namespace obs {

namespace detail {
std::atomic<bool> MetricsEnabled{false};

unsigned metricShardIndex() {
  static std::atomic<unsigned> Next{0};
  thread_local unsigned Idx = Next.fetch_add(1, std::memory_order_relaxed);
  return Idx;
}
} // namespace detail

namespace {

/// The process-global metrics registry. Constructed on first use and
/// deliberately leaked, like the trace registry, so function-local static
/// handles never dangle.
struct MetricsRegistry {
  std::mutex Mu;
  std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;

  struct GaugeSource {
    uint64_t Handle;
    std::string Name;
    std::function<double()> Fn;
  };
  std::vector<GaugeSource> Sources;
  uint64_t NextSourceHandle = 1;
};

MetricsRegistry &registry() {
  static MetricsRegistry *R = new MetricsRegistry();
  return *R;
}

} // namespace

void setMetricsEnabled(bool On) {
  (void)registry();
  detail::MetricsEnabled.store(On, std::memory_order_relaxed);
}

MetricCounter &metricCounter(std::string_view Name) {
  MetricsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto It = R.Counters.find(Name);
  if (It == R.Counters.end())
    It = R.Counters
             .emplace(std::string(Name),
                      std::make_unique<MetricCounter>(std::string(Name)))
             .first;
  return *It->second;
}

Gauge &gauge(std::string_view Name) {
  MetricsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto It = R.Gauges.find(Name);
  if (It == R.Gauges.end())
    It = R.Gauges
             .emplace(std::string(Name),
                      std::make_unique<Gauge>(std::string(Name)))
             .first;
  return *It->second;
}

Histogram &histogram(std::string_view Name) {
  MetricsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto It = R.Histograms.find(Name);
  if (It == R.Histograms.end())
    It = R.Histograms
             .emplace(std::string(Name),
                      std::make_unique<Histogram>(std::string(Name)))
             .first;
  return *It->second;
}

uint64_t registerGaugeSource(std::string Name, std::function<double()> Fn) {
  MetricsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  uint64_t H = R.NextSourceHandle++;
  R.Sources.push_back({H, std::move(Name), std::move(Fn)});
  return H;
}

void unregisterGaugeSource(uint64_t Handle) {
  MetricsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Sources.erase(std::remove_if(R.Sources.begin(), R.Sources.end(),
                                 [&](const MetricsRegistry::GaugeSource &S) {
                                   return S.Handle == Handle;
                                 }),
                  R.Sources.end());
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

uint64_t Histogram::count() const {
  uint64_t N = 0;
  for (const auto &B : Buckets)
    N += B.load(std::memory_order_relaxed);
  return N;
}

double Histogram::quantile(double Q) const {
  uint64_t Counts[kBuckets];
  uint64_t Total = 0;
  for (unsigned I = 0; I < kBuckets; ++I)
    Total += Counts[I] = Buckets[I].load(std::memory_order_relaxed);
  if (Total == 0)
    return 0;
  Q = std::min(1.0, std::max(0.0, Q));
  // Rank of the sample we want, 1-based: ceil(Q * Total), at least 1.
  double Want = Q * static_cast<double>(Total);
  uint64_t Rank = static_cast<uint64_t>(Want);
  if (static_cast<double>(Rank) < Want || Rank == 0)
    ++Rank;
  uint64_t Cum = 0;
  for (unsigned I = 0; I < kBuckets; ++I) {
    if (Counts[I] == 0)
      continue;
    if (Cum + Counts[I] >= Rank) {
      // Linear interpolation inside the bucket [lo, hi): spread the
      // bucket's samples evenly and pick the Rank'th.
      double Lo = static_cast<double>(bucketLo(I));
      double Hi = I + 1 < kBuckets ? static_cast<double>(bucketLo(I + 1))
                                   : Lo + 1;
      double Frac = (static_cast<double>(Rank - Cum) - 0.5) /
                    static_cast<double>(Counts[I]);
      double V = Lo + (Hi - Lo) * Frac;
      // Clamp to the observed extremes: a single-bucket distribution
      // should report the true min/max, not bucket edges.
      V = std::max(V, static_cast<double>(min()));
      V = std::min(V, static_cast<double>(max()));
      return V;
    }
    Cum += Counts[I];
  }
  return static_cast<double>(max());
}

void Histogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Min.store(UINT64_MAX, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<uint64_t, uint64_t>> Histogram::nonzeroBuckets() const {
  std::vector<std::pair<uint64_t, uint64_t>> Out;
  for (unsigned I = 0; I < kBuckets; ++I)
    if (uint64_t C = Buckets[I].load(std::memory_order_relaxed))
      Out.emplace_back(bucketLo(I), C);
  return Out;
}

ScopedLatency::ScopedLatency(Histogram &Hist)
    : H(metricsEnabled() ? &Hist : nullptr) {
  if (H)
    StartNs = nowNs();
}

void ScopedLatency::stop() {
  if (!H)
    return;
  H->record(nowNs() - StartNs);
  H = nullptr;
}

ScopedLatency::~ScopedLatency() { stop(); }

//===----------------------------------------------------------------------===//
// Snapshots and exporters
//===----------------------------------------------------------------------===//

MetricsSnapshot snapshotMetrics() {
  MetricsRegistry &R = registry();
  MetricsSnapshot Out;
  std::vector<std::pair<std::string, std::function<double()>>> Sources;
  {
    std::lock_guard<std::mutex> Lock(R.Mu);
    Out.Counters.reserve(R.Counters.size());
    for (const auto &[Name, C] : R.Counters)
      Out.Counters.emplace_back(Name, C->value());
    for (const auto &[Name, G] : R.Gauges)
      Out.Gauges.emplace_back(Name, G->value());
    for (const auto &S : R.Sources)
      Sources.emplace_back(S.Name, S.Fn);
    for (const auto &[Name, H] : R.Histograms) {
      HistogramSnapshot HS;
      HS.Name = Name;
      HS.Count = H->count();
      if (HS.Count) {
        HS.SumMs = static_cast<double>(H->sum()) / 1e6;
        HS.MinMs = static_cast<double>(H->min()) / 1e6;
        HS.MaxMs = static_cast<double>(H->max()) / 1e6;
        HS.P50Ms = H->quantile(0.50) / 1e6;
        HS.P95Ms = H->quantile(0.95) / 1e6;
        HS.P99Ms = H->quantile(0.99) / 1e6;
      }
      Out.Histograms.push_back(std::move(HS));
    }
  }
  // Poll sources outside the registry lock (a callback may touch a
  // structure whose lock ordering we do not control), then fold into the
  // sorted gauge list, summing same-name sources.
  std::map<std::string, double> Polled;
  for (auto &[Name, Fn] : Sources)
    Polled[Name] += Fn();
  for (auto &[Name, V] : Polled) {
    auto It = std::lower_bound(
        Out.Gauges.begin(), Out.Gauges.end(), Name,
        [](const auto &P, const std::string &N) { return P.first < N; });
    if (It != Out.Gauges.end() && It->first == Name)
      It->second += V;
    else
      Out.Gauges.insert(It, {Name, V});
  }
  return Out;
}

json::Value metricsReport() {
  MetricsSnapshot S = snapshotMetrics();
  json::Object Counters;
  for (const auto &[Name, V] : S.Counters)
    Counters.emplace(Name, json::Value(static_cast<int64_t>(V)));
  json::Object Gauges;
  for (const auto &[Name, V] : S.Gauges)
    Gauges.emplace(Name, json::Value(V));
  json::Object Histos;
  for (const HistogramSnapshot &H : S.Histograms) {
    json::Object O;
    O.emplace("count", json::Value(static_cast<int64_t>(H.Count)));
    O.emplace("sum_ms", json::Value(H.SumMs));
    O.emplace("min_ms", json::Value(H.MinMs));
    O.emplace("max_ms", json::Value(H.MaxMs));
    O.emplace("p50_ms", json::Value(H.P50Ms));
    O.emplace("p95_ms", json::Value(H.P95Ms));
    O.emplace("p99_ms", json::Value(H.P99Ms));
    Histos.emplace(H.Name, json::Value(std::move(O)));
  }
  // The frozen Figure-3 stage view: every kStageKeys entry present,
  // zero-filled, from the pipeline.stage.<key> histograms.
  json::Object Stages;
  for (size_t I = 0; I < schema::kNumStageKeys; ++I) {
    const char *Key = schema::kStageKeys[I];
    double Seconds = 0;
    std::string HName = std::string("pipeline.stage.") + Key;
    for (const HistogramSnapshot &H : S.Histograms)
      if (H.Name == HName)
        Seconds = H.SumMs / 1e3;
    Stages.emplace(Key, json::Value(Seconds));
  }
  json::Object Root;
  Root.emplace("schema_version", json::Value(schema::kVersion));
  Root.emplace("kind", json::Value(std::string("metrics_snapshot")));
  Root.emplace("counters", json::Value(std::move(Counters)));
  Root.emplace("gauges", json::Value(std::move(Gauges)));
  Root.emplace("histograms", json::Value(std::move(Histos)));
  Root.emplace("stage_seconds", json::Value(std::move(Stages)));
  Root.emplace("flight_recorder", flightJSON());
  return json::Value(std::move(Root));
}

std::string metricsJSON() { return metricsReport().str(); }

namespace {

/// Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*. We map
/// everything else to '_' and prefix "sds_".
std::string promName(const std::string &Name, const char *Suffix = "") {
  std::string Out = "sds_";
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out.push_back(Ok ? C : '_');
  }
  Out += Suffix;
  return Out;
}

/// Label-value escaping per the text exposition format: backslash,
/// double-quote, and line feed.
std::string promEscape(const std::string &V) {
  std::string Out;
  Out.reserve(V.size());
  for (char C : V) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out.push_back(C);
  }
  return Out;
}

void promNumber(std::string &Out, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

} // namespace

std::string prometheusText() {
  MetricsSnapshot S = snapshotMetrics();
  std::string Out;
  for (const auto &[Name, V] : S.Counters) {
    std::string P = promName(Name, "_total");
    Out += "# TYPE " + P + " counter\n";
    Out += P + " " + std::to_string(V) + "\n";
  }
  for (const auto &[Name, V] : S.Gauges) {
    std::string P = promName(Name);
    Out += "# TYPE " + P + " gauge\n";
    Out += P + " ";
    promNumber(Out, V);
    Out += "\n";
  }
  for (const HistogramSnapshot &H : S.Histograms) {
    std::string P = promName(H.Name);
    Out += "# TYPE " + P + " summary\n";
    const std::pair<const char *, double> Qs[] = {
        {"0.5", H.P50Ms}, {"0.95", H.P95Ms}, {"0.99", H.P99Ms}};
    for (const auto &[Label, Q] : Qs) {
      Out += P + "{quantile=\"" + promEscape(Label) + "\"} ";
      promNumber(Out, Q / 1e3); // ms -> seconds, the Prometheus base unit
      Out += "\n";
    }
    Out += P + "_sum ";
    promNumber(Out, H.SumMs / 1e3);
    Out += "\n" + P + "_count " + std::to_string(H.Count) + "\n";
  }
  return Out;
}

bool writeMetrics(const std::string &Path) {
  bool Prom = Path.size() > 5 && Path.rfind(".prom") == Path.size() - 5;
  std::string Text = Prom ? prometheusText() : metricsJSON() + "\n";
  if (Path == "-") {
    std::fwrite(Text.data(), 1, Text.size(), stdout);
    return true;
  }
  std::ofstream OutF(Path);
  if (!OutF)
    return false;
  OutF << Text;
  return static_cast<bool>(OutF);
}

void resetMetrics() {
  MetricsRegistry &R = registry();
  {
    std::lock_guard<std::mutex> Lock(R.Mu);
    for (auto &[Name, C] : R.Counters)
      C->reset();
    for (auto &[Name, G] : R.Gauges)
      G->reset();
    for (auto &[Name, H] : R.Histograms)
      H->reset();
  }
  clearFlight();
  clear(); // Trace.h events + counters
}

} // namespace obs
} // namespace sds
