//===- BasicSet.cpp - Integer polyhedra over named dimensions ------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/presburger/BasicSet.h"

#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"
#include "sds/presburger/Budget.h"
#include "sds/presburger/Simplex.h"
#include "sds/support/MathExtras.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>

namespace sds {
namespace presburger {

void BasicSet::addEquality(std::vector<int64_t> Row) {
  assert(Row.size() == NumVars + 1 && "bad row width");
  Eqs.push_back(std::move(Row));
}

void BasicSet::addInequality(std::vector<int64_t> Row) {
  assert(Row.size() == NumVars + 1 && "bad row width");
  Ineqs.push_back(std::move(Row));
}

/// GCD-reduce one row; returns the gcd of the variable coefficients.
static int64_t variableGcd(const std::vector<int64_t> &Row, unsigned NumVars) {
  int64_t G = 0;
  for (unsigned J = 0; J < NumVars; ++J)
    G = gcd64(G, Row[J]);
  return G;
}

bool BasicSet::normalize() {
  std::vector<std::vector<int64_t>> NewEqs, NewIneqs;
  std::set<std::vector<int64_t>> SeenEq, SeenIneq;

  for (auto &Row : Eqs) {
    int64_t G = variableGcd(Row, NumVars);
    if (G == 0) {
      if (Row[NumVars] != 0)
        return false; // 0 == c, c != 0
      continue;
    }
    if (Row[NumVars] % G != 0)
      return false; // no integer solution for this equality
    std::vector<int64_t> R = Row;
    for (auto &C : R)
      C /= G;
    // Canonical sign: first nonzero variable coefficient positive.
    for (unsigned J = 0; J < NumVars; ++J) {
      if (R[J] == 0)
        continue;
      if (R[J] < 0)
        for (auto &C : R)
          C = -C;
      break;
    }
    if (SeenEq.insert(R).second)
      NewEqs.push_back(std::move(R));
  }

  for (auto &Row : Ineqs) {
    int64_t G = variableGcd(Row, NumVars);
    if (G == 0) {
      if (Row[NumVars] < 0)
        return false; // 0 >= -c with c > 0
      continue;
    }
    std::vector<int64_t> R = Row;
    for (unsigned J = 0; J < NumVars; ++J)
      R[J] /= G;
    // Integer tightening: constant rounds toward -inf.
    R[NumVars] = floorDiv64(R[NumVars], G);
    if (SeenIneq.insert(R).second)
      NewIneqs.push_back(std::move(R));
  }

  Eqs = std::move(NewEqs);
  Ineqs = std::move(NewIneqs);
  return true;
}

/// Friend of BasicSet (declared in the header): grants the emptiness
/// machinery in this file direct access to the constraint storage so row
/// tags can be kept parallel to the rows through normalization.
class EmptinessChecker {
public:
  static std::vector<std::vector<int64_t>> &eqs(BasicSet &S) { return S.Eqs; }
  static std::vector<std::vector<int64_t>> &ineqs(BasicSet &S) {
    return S.Ineqs;
  }
};

namespace {

/// Tag of a row introduced by branch-and-bound case splits rather than by
/// the caller. Such rows never enter a reported core: the left/right
/// split (x <= f) v (x >= f+1) covers all integers, so a case analysis
/// citing them refutes the original rows alone.
constexpr uint32_t kBranchTag = ~0u;

/// A BasicSet with one tag per row, tags riding along through
/// normalization, deduplication, and branching so a Farkas certificate
/// over the solved rows maps back to the caller's original row ids.
struct TaggedSet {
  BasicSet S;
  std::vector<uint32_t> EqTags, IneqTags;

  explicit TaggedSet(BasicSet Set) : S(std::move(Set)) {
    uint32_t Next = 0;
    EqTags.resize(S.equalities().size());
    for (auto &T : EqTags)
      T = Next++;
    IneqTags.resize(S.inequalities().size());
    for (auto &T : IneqTags)
      T = Next++;
  }
};

/// BasicSet::normalize with tag bookkeeping: GCD-reduce, drop trivially
/// true rows, sign-canonicalize equalities, deduplicate keeping the first
/// occurrence (and its tag). Returns false when a row alone is
/// unsatisfiable, reporting that row's tag in `BadTag`.
bool normalizeTagged(TaggedSet &T, uint32_t &BadTag) {
  unsigned NumVars = T.S.numVars();
  std::vector<std::vector<int64_t>> NewEqs, NewIneqs;
  std::vector<uint32_t> NewEqTags, NewIneqTags;
  std::set<std::vector<int64_t>> SeenEq, SeenIneq;

  auto &Eqs = EmptinessChecker::eqs(T.S);
  for (size_t I = 0; I < Eqs.size(); ++I) {
    auto &Row = Eqs[I];
    int64_t G = variableGcd(Row, NumVars);
    if (G == 0) {
      if (Row[NumVars] != 0) {
        BadTag = T.EqTags[I];
        return false; // 0 == c, c != 0
      }
      continue;
    }
    if (Row[NumVars] % G != 0) {
      BadTag = T.EqTags[I];
      return false; // no integer solution for this equality
    }
    std::vector<int64_t> R = Row;
    for (auto &C : R)
      C /= G;
    for (unsigned J = 0; J < NumVars; ++J) {
      if (R[J] == 0)
        continue;
      if (R[J] < 0)
        for (auto &C : R)
          C = -C;
      break;
    }
    if (SeenEq.insert(R).second) {
      NewEqs.push_back(std::move(R));
      NewEqTags.push_back(T.EqTags[I]);
    }
  }

  auto &Ineqs = EmptinessChecker::ineqs(T.S);
  for (size_t I = 0; I < Ineqs.size(); ++I) {
    auto &Row = Ineqs[I];
    int64_t G = variableGcd(Row, NumVars);
    if (G == 0) {
      if (Row[NumVars] < 0) {
        BadTag = T.IneqTags[I];
        return false; // 0 >= -c with c > 0
      }
      continue;
    }
    std::vector<int64_t> R = Row;
    for (unsigned J = 0; J < NumVars; ++J)
      R[J] /= G;
    R[NumVars] = floorDiv64(R[NumVars], G);
    if (SeenIneq.insert(R).second) {
      NewIneqs.push_back(std::move(R));
      NewIneqTags.push_back(T.IneqTags[I]);
    }
  }

  EmptinessChecker::eqs(T.S) = std::move(NewEqs);
  EmptinessChecker::ineqs(T.S) = std::move(NewIneqs);
  T.EqTags = std::move(NewEqTags);
  T.IneqTags = std::move(NewIneqTags);
  return true;
}

/// Merge a child node's core tags into the parent's accumulator, skipping
/// branch rows.
void mergeCoreTags(std::vector<uint32_t> &Into,
                   const std::vector<uint32_t> &From) {
  for (uint32_t Tag : From)
    if (Tag != kBranchTag)
      Into.push_back(Tag);
}

void sortUniqueTags(std::vector<uint32_t> &Tags) {
  std::sort(Tags.begin(), Tags.end());
  Tags.erase(std::unique(Tags.begin(), Tags.end()), Tags.end());
}

/// Shared implementation of the integer emptiness test (rational simplex +
/// branch-and-bound), also used for integer sampling.
class EmptinessCheckerImpl {
public:
  explicit EmptinessCheckerImpl(unsigned NodeBudget) : Budget(NodeBudget) {}

  /// Returns the emptiness verdict; on False (non-empty), `Point` holds an
  /// integer point. On True with `CoreTags` non-null, `CoreTags` receives
  /// the tags of the rows the proof cited (branch rows stripped) and
  /// `CoreValid` stays true iff every node produced an attributable
  /// certificate; when a node could not attribute (overflow inside the
  /// Farkas read-out), the node conservatively cites all of its rows.
  Ternary run(TaggedSet T, std::vector<int64_t> &Point,
              std::vector<uint32_t> *CoreTags) {
    static obs::Counter &Nodes = obs::counter("basicset.bnb_nodes");
    Nodes.add();
    // Wall-clock deadline (Budget.h): one clock read per node. Unknown is
    // the conservative answer — the caller keeps the dependence.
    if (deadlineExpired()) {
      noteDeadlineExhaustion();
      return Ternary::Unknown;
    }
    uint32_t BadTag = kBranchTag;
    if (!normalizeTagged(T, BadTag)) {
      if (CoreTags && BadTag != kBranchTag)
        CoreTags->push_back(BadTag);
      return Ternary::True;
    }
    BasicSet &S = T.S;

    Simplex Sx(S.numVars());
    for (const auto &R : S.equalities())
      Sx.addEquality(R);
    for (const auto &R : S.inequalities())
      Sx.addInequality(R);
    LPStatus St = Sx.checkFeasible();
    if (St == LPStatus::Infeasible) {
      if (CoreTags) {
        size_t NumEq = S.equalities().size();
        const std::vector<unsigned> &C = Sx.infeasibleCore();
        if (C.empty()) {
          // Unattributable certificate (overflow): cite everything.
          mergeCoreTags(*CoreTags, T.EqTags);
          mergeCoreTags(*CoreTags, T.IneqTags);
        } else {
          for (unsigned RI : C) {
            uint32_t Tag = RI < NumEq ? T.EqTags[RI]
                                      : T.IneqTags[RI - NumEq];
            if (Tag != kBranchTag)
              CoreTags->push_back(Tag);
          }
        }
      }
      return Ternary::True;
    }
    if (St == LPStatus::Error)
      return Ternary::Unknown;

    // Rationally feasible: is the sample integral?
    const std::vector<Fraction> &Sample = Sx.samplePoint();
    unsigned FracVar = S.numVars();
    for (unsigned J = 0; J < S.numVars(); ++J) {
      if (!Sample[J].isIntegral()) {
        FracVar = J;
        break;
      }
    }
    if (FracVar == S.numVars()) {
      Point.resize(S.numVars());
      for (unsigned J = 0; J < S.numVars(); ++J) {
        Int128 V = Sample[J].num();
        if (V > INT64_MAX || V < INT64_MIN)
          return Ternary::Unknown;
        Point[J] = static_cast<int64_t>(V);
      }
      return Ternary::False;
    }

    if (Budget == 0)
      return Ternary::Unknown;
    --Budget;

    // Branch on the fractional coordinate.
    Int128 Floor = Sample[FracVar].floor();
    if (Floor > INT64_MAX - 1 || Floor < INT64_MIN + 1)
      return Ternary::Unknown;
    int64_t F = static_cast<int64_t>(Floor);

    TaggedSet Left = T; // x <= floor(v)
    {
      std::vector<int64_t> Row(S.numVars() + 1, 0);
      Row[FracVar] = -1;
      Row[S.numVars()] = F;
      Left.S.addInequality(std::move(Row));
      Left.IneqTags.push_back(kBranchTag);
    }
    // Right branch (x >= floor(v) + 1) reuses T itself: the left branch
    // already holds its own copy, so the node needs one clone, not two.
    {
      std::vector<int64_t> Row(S.numVars() + 1, 0);
      Row[FracVar] = 1;
      Row[S.numVars()] = -(F + 1);
      T.S.addInequality(std::move(Row));
      T.IneqTags.push_back(kBranchTag);
    }

    // The split covers all integers, so when both branches refute, the
    // union of the original rows they cite is itself an unsat core: any
    // point of that union satisfies one branch literal and would land in
    // the corresponding (refuted) subtree.
    Ternary A = run(std::move(Left), Point, CoreTags);
    if (A == Ternary::False)
      return Ternary::False;
    Ternary B = run(std::move(T), Point, CoreTags);
    if (B == Ternary::False)
      return Ternary::False;
    if (A == Ternary::True && B == Ternary::True)
      return Ternary::True;
    return Ternary::Unknown;
  }

private:
  unsigned Budget;
};

//===----------------------------------------------------------------------===//
// Query memoization
//===----------------------------------------------------------------------===//

/// The row content of a proven unsat core, stored in the normalized form
/// the cache keys on (so it can be matched back against any query whose
/// canonical rows contain it). Shared immutably between the exact-key
/// cache and the subsumption index.
struct CachedCore {
  /// (IsEq, normalized row) pairs, sorted.
  std::vector<std::pair<bool, std::vector<int64_t>>> Rows;
};

/// What the exact-key cache stores: the verdict plus, for True emptiness
/// verdicts, the proof's core rows (null for subset entries and for
/// verdicts whose proof predates core support).
struct CacheValue {
  Ternary V = Ternary::Unknown;
  std::shared_ptr<const CachedCore> Core;
};

/// Canonical bytes of one (IsEq, row) pair — the currency of the
/// subsumption index.
std::string rowKeyBytes(bool IsEq, const std::vector<int64_t> &Row) {
  std::string Out;
  Out.reserve((Row.size() + 1) * 8);
  Out.push_back(IsEq ? 1 : 2);
  for (int64_t V : Row)
    for (int B = 0; B < 8; ++B)
      Out.push_back(
          static_cast<char>((static_cast<uint64_t>(V) >> (8 * B)) & 0xff));
  return Out;
}

/// Process-wide canonical-system -> verdict cache. Definitive verdicts are
/// mathematical facts about the (budget, constraint-system) pair, so there
/// is no invalidation; each shard's map is simply bounded.
///
/// The map is split into independently-locked shards selected by the
/// key's hash so concurrent queries from the task-parallel pipeline do
/// not serialize on one mutex; hit/miss tallies are relaxed atomics
/// bumped outside any lock.
struct QueryCache {
  static constexpr size_t ShardBits = 4;
  static constexpr size_t NumShards = size_t(1) << ShardBits;
  static constexpr size_t MaxEntriesPerShard = (size_t(1) << 20) >> ShardBits;

  struct alignas(64) Shard {
    std::mutex M;
    std::unordered_map<std::string, CacheValue> Map;
  };
  std::array<Shard, NumShards> Shards;
  std::atomic<uint64_t> Hits{0}, Misses{0}, SubsumptionHits{0};

  Shard &shardFor(const std::string &Key) {
    return Shards[std::hash<std::string>{}(Key) & (NumShards - 1)];
  }

  /// Raw map probe; counts nothing. Callers decide whether a miss is
  /// final (countMiss) or rescued by the subsumption index (countHit +
  /// countSubsumption).
  std::optional<CacheValue> lookupRaw(const std::string &Key) {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(Key);
    if (It != S.Map.end())
      return It->second;
    return std::nullopt;
  }

  void countHit() {
    static obs::Counter &HitCtr = obs::counter("basicset.cache_hits");
    Hits.fetch_add(1, std::memory_order_relaxed);
    HitCtr.add();
  }

  void countMiss() {
    static obs::Counter &MissCtr = obs::counter("basicset.cache_misses");
    Misses.fetch_add(1, std::memory_order_relaxed);
    MissCtr.add();
  }

  void countSubsumption() {
    static obs::Counter &SubCtr = obs::counter("basicset.cache_core_subsume");
    SubsumptionHits.fetch_add(1, std::memory_order_relaxed);
    SubCtr.add();
  }

  void store(const std::string &Key, Ternary V,
             std::shared_ptr<const CachedCore> Core = nullptr) {
    if (V == Ternary::Unknown)
      return; // budget-dependent; another query may still resolve it
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.M);
    if (S.Map.size() < MaxEntriesPerShard)
      S.Map.emplace(Key, CacheValue{V, std::move(Core)});
  }
};

QueryCache &queryCache() {
  static QueryCache C;
  return C;
}

/// Second-level core-keyed index over proven emptiness cores. A query
/// whose canonical row set is a *superset* of any stored core is empty a
/// fortiori — more constraints can only shrink the point set — so it can
/// be answered True without touching the solver, independent of node
/// budget. Cores are anchored by their lexicographically smallest row:
/// since core rows are a subset of any subsuming query's rows, scanning
/// the query's own rows as anchors finds every candidate.
struct CoreIndex {
  static constexpr size_t MaxEntries = size_t(1) << 16;

  std::mutex M;
  std::unordered_map<std::string,
                     std::vector<std::shared_ptr<const CachedCore>>>
      ByAnchor;
  size_t Entries = 0;

  void insert(const std::shared_ptr<const CachedCore> &Core) {
    if (!Core || Core->Rows.empty())
      return;
    std::string Anchor =
        rowKeyBytes(Core->Rows.front().first, Core->Rows.front().second);
    std::lock_guard<std::mutex> Lock(M);
    if (Entries >= MaxEntries)
      return;
    auto &Bucket = ByAnchor[Anchor];
    for (const auto &Existing : Bucket)
      if (Existing->Rows == Core->Rows)
        return;
    Bucket.push_back(Core);
    ++Entries;
  }

  /// All integer points of `N` (normalized) satisfy every row of some
  /// stored core? Then N is empty; return that core.
  std::shared_ptr<const CachedCore> subsuming(const BasicSet &N) {
    std::set<std::pair<bool, std::vector<int64_t>>> QueryRows;
    for (const auto &R : N.equalities())
      QueryRows.emplace(true, R);
    for (const auto &R : N.inequalities())
      QueryRows.emplace(false, R);
    std::lock_guard<std::mutex> Lock(M);
    if (Entries == 0)
      return nullptr;
    for (const auto &Row : QueryRows) {
      auto It = ByAnchor.find(rowKeyBytes(Row.first, Row.second));
      if (It == ByAnchor.end())
        continue;
      for (const auto &Core : It->second) {
        bool AllPresent = true;
        for (const auto &CR : Core->Rows)
          if (!QueryRows.count(CR)) {
            AllPresent = false;
            break;
          }
        if (AllPresent)
          return Core;
      }
    }
    return nullptr;
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(M);
    ByAnchor.clear();
    Entries = 0;
  }

  size_t size() {
    std::lock_guard<std::mutex> Lock(M);
    return Entries;
  }
};

CoreIndex &coreIndex() {
  static CoreIndex C;
  return C;
}

/// The always-on verdict-cache and prefilter tallies as live gauges,
/// registered once at static-init time (both registries are leaked
/// singletons, so no lifetime ordering to respect). Polled only at
/// snapshot time; costs nothing on the query path.
[[maybe_unused]] const bool RegisteredCacheGauges = [] {
  auto Reg = [](const char *Name, double (*Fn)()) {
    obs::registerGaugeSource(Name, Fn);
  };
  Reg("presburger.query_cache.hits",
      [] { return static_cast<double>(queryCacheStats().Hits); });
  Reg("presburger.query_cache.misses",
      [] { return static_cast<double>(queryCacheStats().Misses); });
  Reg("presburger.query_cache.entries",
      [] { return static_cast<double>(queryCacheStats().Entries); });
  Reg("presburger.query_cache.hit_rate",
      [] { return queryCacheStats().hitRate(); });
  Reg("presburger.query_cache.core_subsumption_hits",
      [] { return static_cast<double>(queryCacheStats().CoreSubsumptionHits); });
  Reg("presburger.query_cache.core_entries",
      [] { return static_cast<double>(queryCacheStats().CoreEntries); });
  Reg("presburger.prefilter.rejects",
      [] { return static_cast<double>(prefilterStats().rejects()); });
  Reg("presburger.prefilter.syntactic_subset",
      [] { return static_cast<double>(prefilterStats().SyntacticSubsetHits); });
  Reg("presburger.prefilter.misses",
      [] { return static_cast<double>(prefilterStats().Misses); });
  return true;
}();

//===----------------------------------------------------------------------===//
// Prefilter ladder
//===----------------------------------------------------------------------===//

/// Always-on prefilter tallies (obs counters mirror them when tracing is
/// enabled, under the basicset.prefilter_* names).
struct PrefilterCounters {
  std::atomic<uint64_t> Gcd{0}, EqConflict{0}, Interval{0}, SynSubset{0},
      Miss{0};

  void reset() {
    Gcd = EqConflict = Interval = SynSubset = Miss = 0;
  }
};

PrefilterCounters &prefilterCounters() {
  static PrefilterCounters C;
  return C;
}

void countGcdReject() {
  static obs::Counter &Ctr = obs::counter("basicset.prefilter_gcd");
  Ctr.add();
  prefilterCounters().Gcd.fetch_add(1, std::memory_order_relaxed);
}

void countEqConflictReject() {
  static obs::Counter &Ctr = obs::counter("basicset.prefilter_eq_conflict");
  Ctr.add();
  prefilterCounters().EqConflict.fetch_add(1, std::memory_order_relaxed);
}

void countIntervalReject() {
  static obs::Counter &Ctr = obs::counter("basicset.prefilter_interval");
  Ctr.add();
  prefilterCounters().Interval.fetch_add(1, std::memory_order_relaxed);
}

void countSyntacticSubset() {
  static obs::Counter &Ctr =
      obs::counter("basicset.prefilter_subset_syntactic");
  Ctr.add();
  prefilterCounters().SynSubset.fetch_add(1, std::memory_order_relaxed);
}

void countPrefilterMiss() {
  static obs::Counter &Ctr = obs::counter("basicset.prefilter_miss");
  Ctr.add();
  prefilterCounters().Miss.fetch_add(1, std::memory_order_relaxed);
}

/// Two equalities with an identical variable part but different constants
/// are contradictory. normalize() GCD-reduces rows and canonicalizes the
/// sign of each equality's leading coefficient, so identical variable
/// parts compare bitwise-equal here.
bool hasConflictingEqualities(const BasicSet &N,
                              std::pair<size_t, size_t> *Pair = nullptr) {
  const auto &Eqs = N.equalities();
  if (Eqs.size() < 2)
    return false;
  unsigned NumVars = N.numVars();
  std::vector<size_t> Sorted;
  Sorted.reserve(Eqs.size());
  for (size_t I = 0; I < Eqs.size(); ++I)
    Sorted.push_back(I);
  auto VarPartLess = [&](size_t A, size_t B) {
    return std::lexicographical_compare(Eqs[A].begin(),
                                        Eqs[A].begin() + NumVars,
                                        Eqs[B].begin(),
                                        Eqs[B].begin() + NumVars);
  };
  std::sort(Sorted.begin(), Sorted.end(), VarPartLess);
  for (size_t I = 1; I < Sorted.size(); ++I) {
    const auto &A = Eqs[Sorted[I - 1]], &B = Eqs[Sorted[I]];
    if (std::equal(A.begin(), A.begin() + NumVars, B.begin()) &&
        A[NumVars] != B[NumVars]) {
      if (Pair)
        *Pair = {Sorted[I - 1], Sorted[I]};
      return true;
    }
  }
  return false;
}

/// Bounded single-variable interval propagation with conflict detection.
/// Derives [lo, hi] bounds per variable from rows whose other terms are
/// already bounded, and rejects when some row cannot reach its required
/// sign or a variable's interval empties. Sound: every deduction is a
/// consequence of the constraint system over the integers; `true` means
/// proven empty. All arithmetic is overflow-checked 128-bit; anything
/// that overflows is treated as unbounded.
bool intervalConflict(const BasicSet &N) {
  unsigned NumVars = N.numVars();
  struct Bound {
    bool HasLo = false, HasHi = false;
    Int128 Lo = 0, Hi = 0;
  };
  std::vector<Bound> B(NumVars);

  // One scan target per inequality, plus both directions of equalities.
  struct RowRef {
    const std::vector<int64_t> *Row;
    bool Negate;
  };
  std::vector<RowRef> Rows;
  Rows.reserve(N.inequalities().size() + 2 * N.equalities().size());
  for (const auto &R : N.inequalities())
    Rows.push_back({&R, false});
  for (const auto &R : N.equalities()) {
    Rows.push_back({&R, false});
    Rows.push_back({&R, true});
  }

  auto Coeff = [&](const RowRef &RR, unsigned J) {
    int64_t C = (*RR.Row)[J];
    return RR.Negate ? -C : C;
  };

  // max over the interval of a*x, as a checked 128-bit value; false when
  // unbounded (missing bound) or overflowing.
  auto MaxTerm = [&](int64_t A, const Bound &Bd, Int128 &Out) {
    if (A > 0) {
      if (!Bd.HasHi)
        return false;
      return !mulOverflow128(Int128(A), Bd.Hi, Out);
    }
    if (!Bd.HasLo)
      return false;
    return !mulOverflow128(Int128(A), Bd.Lo, Out);
  };

  const unsigned MaxRounds = 4;
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    bool Changed = false;
    for (const RowRef &RR : Rows) {
      // Row means sum_j a_j x_j + c >= 0 (after optional negation).
      Int128 C = Coeff(RR, NumVars);
      // Try to tighten each variable with a nonzero coefficient, using the
      // maximum the *other* terms can contribute.
      for (unsigned J = 0; J < NumVars; ++J) {
        int64_t AJ = Coeff(RR, J);
        if (AJ == 0)
          continue;
        Int128 MaxRest = C;
        bool RestBounded = true;
        for (unsigned K = 0; K < NumVars && RestBounded; ++K) {
          if (K == J)
            continue;
          int64_t AK = Coeff(RR, K);
          if (AK == 0)
            continue;
          Int128 T;
          RestBounded = MaxTerm(AK, B[K], T) &&
                        !addOverflow128(MaxRest, T, MaxRest);
        }
        if (!RestBounded)
          continue;
        // a_j * x_j >= -MaxRest.
        Bound &Bd = B[J];
        if (AJ > 0) {
          Int128 Lo = ceilDiv128(-MaxRest, AJ);
          if (!Bd.HasLo || Lo > Bd.Lo) {
            Bd.HasLo = true;
            Bd.Lo = Lo;
            Changed = true;
          }
        } else {
          Int128 Hi = floorDiv128(-MaxRest, AJ);
          if (!Bd.HasHi || Hi < Bd.Hi) {
            Bd.HasHi = true;
            Bd.Hi = Hi;
            Changed = true;
          }
        }
        if (Bd.HasLo && Bd.HasHi && Bd.Lo > Bd.Hi)
          return true; // empty interval
      }
      // Whole-row reachability: if every term is bounded above and the row
      // maximum is still negative, the constraint is unsatisfiable.
      Int128 RowMax = C;
      bool AllBounded = true;
      for (unsigned J = 0; J < NumVars && AllBounded; ++J) {
        int64_t AJ = Coeff(RR, J);
        if (AJ == 0)
          continue;
        Int128 T;
        AllBounded = MaxTerm(AJ, B[J], T) &&
                     !addOverflow128(RowMax, T, RowMax);
      }
      if (AllBounded && RowMax < 0)
        return true;
    }
    if (!Changed)
      break;
  }
  return false;
}

/// Which rows a prefilter reject cited, in N's (normalized) row-index
/// space. Interval propagation derives bounds through arbitrarily many
/// rows, so it cannot attribute and cites everything.
struct PrefilterCore {
  std::vector<size_t> EqRows; ///< conflicting equality indices
  bool AllRows = false;       ///< unattributable: cite the whole system
};

/// The emptiness prefilter ladder over an already-normalized set. Counts
/// each rung's hits; does NOT count misses (callers decide whether a miss
/// proceeds to the full solver).
Ternary prefilterNormalized(const BasicSet &N, PrefilterCore *Core = nullptr) {
  std::pair<size_t, size_t> Conflict;
  if (hasConflictingEqualities(N, &Conflict)) {
    countEqConflictReject();
    if (Core)
      Core->EqRows = {Conflict.first, Conflict.second};
    return Ternary::True;
  }
  if (intervalConflict(N)) {
    countIntervalReject();
    if (Core)
      Core->AllRows = true;
    return Ternary::True;
  }
  return Ternary::Unknown;
}

void appendInt(std::string &Out, int64_t V) {
  for (int B = 0; B < 8; ++B)
    Out.push_back(static_cast<char>((static_cast<uint64_t>(V) >> (8 * B)) &
                                    0xff));
}

/// Canonical byte string of one *already-normalized* set: rows in sorted
/// order. Two syntactically different but normalize-identical systems
/// share a key; semantically equal systems with different normal forms
/// simply miss (the cache stays sound either way). Callers normalize once
/// and reuse the result for the prefilters, the key, and the solve.
void appendCanonicalNormalized(std::string &Out, const BasicSet &N) {
  appendInt(Out, static_cast<int64_t>(N.numVars()));
  appendInt(Out, 1); // feasible-after-normalize marker (key-format compat)
  auto Rows = [&Out](std::vector<std::vector<int64_t>> Rs, int64_t Tag) {
    std::sort(Rs.begin(), Rs.end());
    appendInt(Out, Tag);
    appendInt(Out, static_cast<int64_t>(Rs.size()));
    for (const auto &R : Rs)
      for (int64_t V : R)
        appendInt(Out, V);
  };
  Rows(N.equalities(), /*Tag=*/1);
  Rows(N.inequalities(), /*Tag=*/2);
}

} // namespace

QueryCacheStats queryCacheStats() {
  QueryCache &C = queryCache();
  uint64_t Entries = 0;
  for (QueryCache::Shard &S : C.Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Entries += S.Map.size();
  }
  return {C.Hits.load(std::memory_order_relaxed),
          C.Misses.load(std::memory_order_relaxed), Entries,
          C.SubsumptionHits.load(std::memory_order_relaxed),
          coreIndex().size()};
}

void clearQueryCache() {
  QueryCache &C = queryCache();
  for (QueryCache::Shard &S : C.Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.clear();
  }
  C.Hits.store(0, std::memory_order_relaxed);
  C.Misses.store(0, std::memory_order_relaxed);
  C.SubsumptionHits.store(0, std::memory_order_relaxed);
  coreIndex().clear();
  prefilterCounters().reset();
  resetBudgetCounters();
}

PrefilterStats prefilterStats() {
  PrefilterCounters &C = prefilterCounters();
  PrefilterStats Out;
  Out.GcdRejects = C.Gcd.load(std::memory_order_relaxed);
  Out.EqConflictRejects = C.EqConflict.load(std::memory_order_relaxed);
  Out.IntervalRejects = C.Interval.load(std::memory_order_relaxed);
  Out.SyntacticSubsetHits = C.SynSubset.load(std::memory_order_relaxed);
  Out.Misses = C.Miss.load(std::memory_order_relaxed);
  return Out;
}

Ternary prefilterEmptiness(const BasicSet &S) {
  BasicSet N = S;
  if (!N.normalize()) {
    countGcdReject();
    return Ternary::True;
  }
  return prefilterNormalized(N);
}

Ternary BasicSet::isEmpty(unsigned NodeBudget) const {
  return isEmpty(NodeBudget, /*Core=*/nullptr);
}

namespace {

/// Build the shareable row-content core from cited tags, reading row
/// content out of the normalized tagged set.
std::shared_ptr<const CachedCore>
contentCoreFromTags(const TaggedSet &T, const std::vector<uint32_t> &Tags) {
  auto Core = std::make_shared<CachedCore>();
  Core->Rows.reserve(Tags.size());
  for (uint32_t Tag : Tags) {
    bool Found = false;
    for (size_t I = 0; I < T.EqTags.size() && !Found; ++I)
      if (T.EqTags[I] == Tag) {
        Core->Rows.emplace_back(true, T.S.equalities()[I]);
        Found = true;
      }
    for (size_t I = 0; I < T.IneqTags.size() && !Found; ++I)
      if (T.IneqTags[I] == Tag) {
        Core->Rows.emplace_back(false, T.S.inequalities()[I]);
        Found = true;
      }
    if (!Found)
      return nullptr; // cited row vanished in normalization (cannot happen)
  }
  std::sort(Core->Rows.begin(), Core->Rows.end());
  Core->Rows.erase(std::unique(Core->Rows.begin(), Core->Rows.end()),
                   Core->Rows.end());
  return Core;
}

/// Map a content core back onto a query's rows: every core row must match
/// one of the query's normalized rows by content; return its tag. False
/// when a row is missing (a cache entry written by a different canonical
/// form — impossible for exact-key hits, possible never in practice).
bool tagsFromContentCore(const TaggedSet &T, const CachedCore &Core,
                         std::vector<uint32_t> &Tags) {
  std::map<std::pair<bool, const std::vector<int64_t> *>, uint32_t,
           bool (*)(const std::pair<bool, const std::vector<int64_t> *> &,
                    const std::pair<bool, const std::vector<int64_t> *> &)>
      RowTag([](const std::pair<bool, const std::vector<int64_t> *> &A,
                const std::pair<bool, const std::vector<int64_t> *> &B) {
        if (A.first != B.first)
          return A.first < B.first;
        return *A.second < *B.second;
      });
  for (size_t I = 0; I < T.EqTags.size(); ++I)
    RowTag.emplace(std::make_pair(true, &T.S.equalities()[I]), T.EqTags[I]);
  for (size_t I = 0; I < T.IneqTags.size(); ++I)
    RowTag.emplace(std::make_pair(false, &T.S.inequalities()[I]),
                   T.IneqTags[I]);
  for (const auto &[IsEq, Row] : Core.Rows) {
    auto It = RowTag.find(std::make_pair(IsEq, &Row));
    if (It == RowTag.end())
      return false;
    Tags.push_back(It->second);
  }
  return true;
}

void recordCoreSize(size_t N) {
  static obs::Histogram &H = obs::histogram("presburger.core_size");
  H.record(static_cast<uint64_t>(N));
}

} // namespace

Ternary BasicSet::isEmpty(unsigned NodeBudget, EmptinessCore *Core) const {
  static obs::Counter &Checks = obs::counter("basicset.emptiness_checks");
  Checks.add();
  if (Core) {
    Core->Rows.clear();
    Core->Valid = false;
  }
  // Normalize once, carrying a tag per row; the prefilter ladder, the
  // cache key, the solver, and core attribution all reuse the result.
  TaggedSet T(*this);
  uint32_t BadTag = kBranchTag;
  if (!normalizeTagged(T, BadTag)) {
    countGcdReject();
    if (Core && BadTag != kBranchTag) {
      Core->Rows = {BadTag};
      Core->Valid = true;
      recordCoreSize(1);
    }
    return Ternary::True;
  }
  const BasicSet &N = T.S;
  PrefilterCore PC;
  if (prefilterNormalized(N, &PC) == Ternary::True) {
    if (PC.EqRows.size() == 2) {
      // Two conflicting equalities: a two-row core worth indexing.
      auto CC = std::make_shared<CachedCore>();
      CC->Rows.emplace_back(true, N.equalities()[PC.EqRows[0]]);
      CC->Rows.emplace_back(true, N.equalities()[PC.EqRows[1]]);
      std::sort(CC->Rows.begin(), CC->Rows.end());
      coreIndex().insert(CC);
    }
    if (Core) {
      if (PC.AllRows) {
        Core->Rows.insert(Core->Rows.end(), T.EqTags.begin(), T.EqTags.end());
        Core->Rows.insert(Core->Rows.end(), T.IneqTags.begin(),
                          T.IneqTags.end());
      } else {
        for (size_t I : PC.EqRows)
          Core->Rows.push_back(T.EqTags[I]);
      }
      sortUniqueTags(Core->Rows);
      Core->Valid = true;
      recordCoreSize(Core->Rows.size());
    }
    return Ternary::True;
  }
  countPrefilterMiss();
  std::string Key;
  Key.reserve(32 + (N.numConstraints() + 2) * (NumVars + 2) * 8);
  Key.push_back('E');
  appendInt(Key, NodeBudget);
  appendCanonicalNormalized(Key, N);
  QueryCache &QC = queryCache();
  if (std::optional<CacheValue> Hit = QC.lookupRaw(Key)) {
    QC.countHit();
    if (Core && Hit->V == Ternary::True && Hit->Core) {
      std::vector<uint32_t> Tags;
      if (tagsFromContentCore(T, *Hit->Core, Tags)) {
        sortUniqueTags(Tags);
        Core->Rows = std::move(Tags);
        Core->Valid = true;
      }
    }
    return Hit->V;
  }
  // Exact-key miss: a previously proven core whose rows all appear in
  // this query refutes it outright (more constraints, fewer points) —
  // budget-independent, so it rescues queries across budget settings too.
  if (std::shared_ptr<const CachedCore> Sub = coreIndex().subsuming(N)) {
    QC.countHit();
    QC.countSubsumption();
    QC.store(Key, Ternary::True, Sub);
    if (Core) {
      std::vector<uint32_t> Tags;
      if (tagsFromContentCore(T, *Sub, Tags)) {
        sortUniqueTags(Tags);
        Core->Rows = std::move(Tags);
        Core->Valid = true;
      }
    }
    return Ternary::True;
  }
  QC.countMiss();
  // Past the analysis deadline, skip the solver outright (the cache may
  // still serve proven facts above — they stay valid forever).
  if (deadlineExpired()) {
    noteDeadlineExhaustion();
    return Ternary::Unknown;
  }
  std::vector<int64_t> Ignored;
  std::vector<uint32_t> CoreTags;
  Ternary R = EmptinessCheckerImpl(NodeBudget).run(T, Ignored, &CoreTags);
  if (R == Ternary::True) {
    sortUniqueTags(CoreTags);
    std::shared_ptr<const CachedCore> CC = contentCoreFromTags(T, CoreTags);
    QC.store(Key, R, CC);
    coreIndex().insert(CC);
    recordCoreSize(CoreTags.size());
    if (Core) {
      Core->Rows = std::move(CoreTags);
      Core->Valid = CC != nullptr;
    }
  } else {
    QC.store(Key, R);
  }
  return R;
}

std::optional<std::vector<int64_t>>
BasicSet::sampleIntegerPoint(unsigned NodeBudget) const {
  static obs::Counter &Samples = obs::counter("basicset.samples");
  Samples.add();
  std::vector<int64_t> Point;
  if (EmptinessCheckerImpl(NodeBudget).run(TaggedSet(*this), Point,
                                           /*CoreTags=*/nullptr) ==
      Ternary::False)
    return Point;
  return std::nullopt;
}

unsigned BasicSet::detectImplicitEqualities(unsigned NodeBudget) {
  if (!normalize())
    return 0;
  unsigned Promoted = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Ineqs.size(); ++I) {
      // Is (row >= 1) infeasible within the set? Then row == 0 everywhere.
      BasicSet Probe = *this;
      std::vector<int64_t> Strict = Ineqs[I];
      Strict[NumVars] -= 1;
      Probe.addInequality(std::move(Strict));
      if (Probe.isEmpty(NodeBudget) != Ternary::True)
        continue;
      Eqs.push_back(Ineqs[I]);
      Ineqs.erase(Ineqs.begin() + static_cast<std::ptrdiff_t>(I));
      --I;
      ++Promoted;
      Changed = true;
    }
  }
  return Promoted;
}

BasicSet BasicSet::substitute(unsigned Var,
                              const std::vector<int64_t> &Expr) const {
  assert(Expr.size() == NumVars + 1 && "bad expression width");
  assert(Expr[Var] == 0 && "self-referential substitution");
  BasicSet Out(NumVars - 1);
  auto Rewrite = [&](const std::vector<int64_t> &Row) {
    // Clear the Var column by adding Var's coefficient times (Expr - Var).
    std::vector<int64_t> Full(NumVars + 1, 0);
    int64_t A = Row[Var];
    for (unsigned J = 0; J <= NumVars; ++J)
      Full[J] = Row[J] + A * Expr[J];
    Full[Var] = 0;
    std::vector<int64_t> Compact;
    Compact.reserve(NumVars);
    for (unsigned J = 0; J <= NumVars; ++J)
      if (J != Var)
        Compact.push_back(Full[J]);
    return Compact;
  };
  for (const auto &R : Eqs)
    Out.addEquality(Rewrite(R));
  for (const auto &R : Ineqs)
    Out.addInequality(Rewrite(R));
  return Out;
}

BasicSet BasicSet::insertVars(unsigned Pos, unsigned Count) const {
  assert(Pos <= NumVars && "insert position out of range");
  BasicSet Out(NumVars + Count);
  auto Widen = [&](const std::vector<int64_t> &Row) {
    std::vector<int64_t> R;
    R.reserve(NumVars + Count + 1);
    R.insert(R.end(), Row.begin(), Row.begin() + Pos);
    R.insert(R.end(), Count, 0);
    R.insert(R.end(), Row.begin() + Pos, Row.end());
    return R;
  };
  for (const auto &R : Eqs)
    Out.addEquality(Widen(R));
  for (const auto &R : Ineqs)
    Out.addInequality(Widen(R));
  return Out;
}

/// Is every normalized row of `Sub` syntactically implied by a row of
/// `Super`? (Both must be normalized.) Equalities need an exact match;
/// an inequality a.x + c >= 0 is implied by a same-variable-part
/// inequality with a smaller-or-equal constant, or by an equality pinning
/// the variable part to a compatible value. Purely structural: no solver,
/// no allocation beyond two index tables.
static bool syntacticallyContains(const BasicSet &Super, const BasicSet &Sub) {
  unsigned NumVars = Super.numVars();
  auto VarPart = [NumVars](const std::vector<int64_t> &R) {
    return std::vector<int64_t>(R.begin(), R.begin() + NumVars);
  };
  // Super's equalities by variable part, and its minimum inequality
  // constant by variable part.
  std::map<std::vector<int64_t>, int64_t> EqConst;
  for (const auto &R : Super.equalities())
    EqConst.emplace(VarPart(R), R[NumVars]);
  std::map<std::vector<int64_t>, int64_t> IneqMinConst;
  for (const auto &R : Super.inequalities()) {
    auto [It, New] = IneqMinConst.emplace(VarPart(R), R[NumVars]);
    if (!New && R[NumVars] < It->second)
      It->second = R[NumVars];
  }
  for (const auto &R : Sub.equalities()) {
    auto It = EqConst.find(VarPart(R));
    if (It == EqConst.end() || It->second != R[NumVars])
      return false;
  }
  for (const auto &R : Sub.inequalities()) {
    std::vector<int64_t> VP = VarPart(R);
    auto It = IneqMinConst.find(VP);
    if (It != IneqMinConst.end() && It->second <= R[NumVars])
      continue;
    // An equality a.x == -c0 implies a.x + c >= 0 iff c >= c0; check both
    // sign orientations since equalities are sign-canonicalized.
    auto EqIt = EqConst.find(VP);
    if (EqIt != EqConst.end() && R[NumVars] >= EqIt->second)
      continue;
    for (auto &V : VP)
      V = -V;
    EqIt = EqConst.find(VP);
    if (EqIt != EqConst.end() && R[NumVars] >= -EqIt->second)
      continue;
    return false;
  }
  return true;
}

Ternary BasicSet::isSubsetOf(const BasicSet &Other,
                             unsigned NodeBudget) const {
  static obs::Counter &Tests = obs::counter("basicset.subset_tests");
  Tests.add();
  assert(NumVars == Other.NumVars && "dimension mismatch");
  // Prefilters: a proven-empty left side is contained in anything; a
  // trivially-unsat right side reduces the test to emptiness of the left;
  // and syntactic row containment proves the subset without any solver.
  BasicSet NThis = *this;
  if (!NThis.normalize()) {
    countGcdReject();
    return Ternary::True;
  }
  BasicSet NOther = Other;
  if (!NOther.normalize())
    return isEmpty(NodeBudget);
  if (syntacticallyContains(NThis, NOther)) {
    countSyntacticSubset();
    return Ternary::True;
  }
  // Memoized on (canonical this, canonical other, budget); the per-
  // halfspace emptiness probes below additionally hit the emptiness cache.
  std::string Key;
  Key.reserve(32 +
              (NThis.numConstraints() + NOther.numConstraints() + 4) *
                  (NumVars + 2) * 8);
  Key.push_back('S');
  appendInt(Key, NodeBudget);
  appendCanonicalNormalized(Key, NThis);
  appendCanonicalNormalized(Key, NOther);
  if (std::optional<CacheValue> Hit = queryCache().lookupRaw(Key)) {
    queryCache().countHit();
    return Hit->V;
  }
  queryCache().countMiss();
  Ternary Verdict = [&] {
  // this ⊆ {row >= 0}  iff  this ∧ (row <= -1) is empty. One probe set
  // is reused across all halfspaces: push the negated row, query, pop.
  BasicSet Probe = *this;
  auto ContainedInHalfspace = [&](const std::vector<int64_t> &Row) {
    std::vector<int64_t> Neg(NumVars + 1);
    for (unsigned J = 0; J <= NumVars; ++J)
      Neg[J] = -Row[J];
    Neg[NumVars] -= 1;
    Probe.addInequality(std::move(Neg));
    Ternary T = Probe.isEmpty(NodeBudget);
    Probe.Ineqs.pop_back();
    return T;
  };
  bool SawUnknown = false;
  for (const auto &Row : Other.Ineqs) {
    Ternary T = ContainedInHalfspace(Row);
    if (T == Ternary::False)
      return Ternary::False;
    if (T == Ternary::Unknown)
      SawUnknown = true;
  }
  for (const auto &Row : Other.Eqs) {
    Ternary T = ContainedInHalfspace(Row);
    if (T == Ternary::False)
      return Ternary::False;
    if (T == Ternary::Unknown)
      SawUnknown = true;
    std::vector<int64_t> Neg(NumVars + 1);
    for (unsigned J = 0; J <= NumVars; ++J)
      Neg[J] = -Row[J];
    T = ContainedInHalfspace(Neg);
    if (T == Ternary::False)
      return Ternary::False;
    if (T == Ternary::Unknown)
      SawUnknown = true;
  }
  return SawUnknown ? Ternary::Unknown : Ternary::True;
  }();
  queryCache().store(Key, Verdict);
  return Verdict;
}

//===----------------------------------------------------------------------===//
// Projection (Fourier–Motzkin with exactness tracking)
//===----------------------------------------------------------------------===//

namespace {

/// Eliminate variable `Var` from `S` in place (column becomes zero).
/// Returns false when the elimination had to over-approximate.
bool eliminateVar(BasicSet &S, unsigned Var, unsigned FMPairCap) {
  unsigned N = S.numVars();

  // Preferred: substitution through an equality with a ±1 coefficient.
  const std::vector<std::vector<int64_t>> &Eqs = S.equalities();
  for (size_t I = 0; I < Eqs.size(); ++I) {
    int64_t C = Eqs[I][Var];
    if (C != 1 && C != -1)
      continue;
    // Var = -(sign) * (rest of row).
    std::vector<int64_t> Expr(N + 1, 0);
    for (unsigned J = 0; J <= N; ++J) {
      if (J == Var)
        continue;
      Expr[J] = (C == 1) ? -Eqs[I][J] : Eqs[I][J];
    }
    BasicSet Out(N);
    auto RewriteInto = [&](const std::vector<int64_t> &Row, bool IsEq) {
      std::vector<int64_t> R(N + 1);
      int64_t A = Row[Var];
      for (unsigned J = 0; J <= N; ++J)
        R[J] = Row[J] + A * Expr[J];
      R[Var] = 0;
      if (IsEq)
        Out.addEquality(std::move(R));
      else
        Out.addInequality(std::move(R));
    };
    for (size_t K = 0; K < Eqs.size(); ++K)
      if (K != I)
        RewriteInto(Eqs[K], /*IsEq=*/true);
    for (const auto &Row : S.inequalities())
      RewriteInto(Row, /*IsEq=*/false);
    S = std::move(Out);
    return true;
  }

  // Equality with a non-unit coefficient: scaled elimination loses the
  // divisibility constraint; mark inexact.
  for (size_t I = 0; I < Eqs.size(); ++I) {
    int64_t C = Eqs[I][Var];
    if (C == 0)
      continue;
    int64_t AbsC = C < 0 ? -C : C;
    int64_t SignC = C < 0 ? -1 : 1;
    BasicSet Out(N);
    std::vector<int64_t> EqRow = Eqs[I];
    auto RewriteInto = [&](const std::vector<int64_t> &Row, bool IsEq) {
      int64_t A = Row[Var];
      std::vector<int64_t> R(N + 1);
      bool Ovf = false;
      for (unsigned J = 0; J <= N; ++J) {
        int64_t T1, T2;
        Ovf |= mulOverflow64(AbsC, Row[J], T1);
        Ovf |= mulOverflow64(A * SignC, EqRow[J], T2);
        Ovf |= addOverflow64(T1, -T2, R[J]);
      }
      if (Ovf)
        return false;
      R[Var] = 0;
      if (IsEq)
        Out.addEquality(std::move(R));
      else
        Out.addInequality(std::move(R));
      return true;
    };
    bool OK = true;
    for (size_t K = 0; K < Eqs.size() && OK; ++K)
      if (K != I)
        OK = RewriteInto(Eqs[K], /*IsEq=*/true);
    for (const auto &Row : S.inequalities())
      if (OK)
        OK = RewriteInto(Row, /*IsEq=*/false);
    if (OK) {
      S = std::move(Out);
      return false; // over-approximate (divisibility dropped)
    }
    break; // overflow: fall through to the relaxation path
  }

  // Fourier–Motzkin over the inequalities.
  std::vector<std::vector<int64_t>> Lowers, Uppers, Others;
  for (const auto &Row : S.inequalities()) {
    if (Row[Var] > 0)
      Lowers.push_back(Row);
    else if (Row[Var] < 0)
      Uppers.push_back(Row);
    else
      Others.push_back(Row);
  }
  // If any equality still involves Var here, there were no equalities with
  // nonzero coefficient (handled above), so none do.
  bool Exact = true;
  BasicSet Out(N);
  for (const auto &Row : S.equalities())
    Out.addEquality(Row);
  for (auto &Row : Others)
    Out.addInequality(std::move(Row));

  if (Lowers.size() * Uppers.size() > FMPairCap) {
    // Too many combinations: drop all constraints on Var (pure relaxation).
    S = std::move(Out);
    return false;
  }

  for (const auto &L : Lowers) {
    for (const auto &U : Uppers) {
      int64_t AL = L[Var];        // > 0
      int64_t AU = -U[Var];       // > 0
      bool PairExact = (AL == 1 || AU == 1);
      Exact &= PairExact;
      std::vector<int64_t> R(N + 1);
      bool Ovf = false;
      for (unsigned J = 0; J <= N; ++J) {
        int64_t T1, T2;
        Ovf |= mulOverflow64(AU, L[J], T1);
        Ovf |= mulOverflow64(AL, U[J], T2);
        Ovf |= addOverflow64(T1, T2, R[J]);
      }
      if (Ovf) {
        // Skip the combined constraint: still a relaxation, but inexact.
        Exact = false;
        continue;
      }
      R[Var] = 0;
      if (!PairExact) {
        // Integer (dark-shadow style) tightening is not applied; the pure
        // FM result over-approximates the integer shadow.
      }
      Out.addInequality(std::move(R));
    }
  }
  S = std::move(Out);
  return Exact;
}

} // namespace

ProjectResult
BasicSet::projectOut(std::vector<unsigned> Positions) const {
  static obs::Counter &Projections = obs::counter("basicset.projections");
  Projections.add();
  BasicSet Work = *this;
  bool Exact = true;
  std::sort(Positions.begin(), Positions.end());
  Positions.erase(std::unique(Positions.begin(), Positions.end()),
                  Positions.end());
  std::vector<bool> Eliminated(NumVars, false);

  if (!Work.normalize()) {
    unsigned OutWidth = NumVars - static_cast<unsigned>(Positions.size());
    BasicSet Out(OutWidth);
    std::vector<int64_t> False(OutWidth + 1, 0);
    False[OutWidth] = -1;
    Out.addInequality(std::move(False));
    return {std::move(Out), true};
  }

  // Eliminate cheapest-first: prefer unit-equality substitutions, then the
  // variable with the fewest FM pair combinations.
  std::vector<unsigned> Pending = Positions;
  while (!Pending.empty()) {
    unsigned BestIdx = 0;
    long BestScore = -1;
    for (unsigned I = 0; I < Pending.size(); ++I) {
      unsigned V = Pending[I];
      bool HasUnitEq = false;
      for (const auto &E : Work.equalities())
        if (E[V] == 1 || E[V] == -1) {
          HasUnitEq = true;
          break;
        }
      long Score;
      if (HasUnitEq) {
        Score = 0;
      } else {
        long NumLow = 0, NumUp = 0;
        for (const auto &R : Work.inequalities()) {
          if (R[V] > 0)
            ++NumLow;
          else if (R[V] < 0)
            ++NumUp;
        }
        Score = 1 + NumLow * NumUp;
      }
      if (BestScore < 0 || Score < BestScore) {
        BestScore = Score;
        BestIdx = I;
      }
    }
    unsigned Var = Pending[BestIdx];
    Pending.erase(Pending.begin() + BestIdx);
    Exact &= eliminateVar(Work, Var, /*FMPairCap=*/2048);
    Eliminated[Var] = true;
    if (!Work.normalize()) {
      // Proven empty during elimination: produce an empty set of the right
      // output width; that is exact regardless of earlier approximations.
      unsigned OutWidth = NumVars - static_cast<unsigned>(Positions.size());
      BasicSet Out(OutWidth);
      std::vector<int64_t> False(OutWidth + 1, 0);
      False[OutWidth] = -1;
      Out.addInequality(std::move(False));
      return {std::move(Out), true};
    }
  }

  // Compress the eliminated columns away.
  unsigned OutWidth = NumVars - static_cast<unsigned>(Positions.size());
  BasicSet Out(OutWidth);
  auto Compress = [&](const std::vector<int64_t> &Row) {
    std::vector<int64_t> R;
    R.reserve(OutWidth + 1);
    for (unsigned J = 0; J < NumVars; ++J)
      if (!Eliminated[J])
        R.push_back(Row[J]);
    R.push_back(Row[NumVars]);
    return R;
  };
  for (const auto &Row : Work.equalities())
    Out.addEquality(Compress(Row));
  for (const auto &Row : Work.inequalities())
    Out.addInequality(Compress(Row));
  Out.normalize();
  return {std::move(Out), Exact};
}

//===----------------------------------------------------------------------===//
// SetUnion
//===----------------------------------------------------------------------===//

Ternary SetUnion::isEmpty(unsigned NodeBudget) const {
  bool SawUnknown = false;
  for (const BasicSet &BS : Pieces) {
    Ternary T = BS.isEmpty(NodeBudget);
    if (T == Ternary::False)
      return Ternary::False;
    if (T == Ternary::Unknown)
      SawUnknown = true;
  }
  return SawUnknown ? Ternary::Unknown : Ternary::True;
}

Ternary SetUnion::isSubsetOf(const SetUnion &Other,
                             unsigned NodeBudget) const {
  bool SawUnknown = false;
  for (const BasicSet &Mine : Pieces) {
    if (Mine.isEmpty(NodeBudget) == Ternary::True)
      continue;
    bool Contained = false;
    for (const BasicSet &Theirs : Other.Pieces) {
      if (Mine.isSubsetOf(Theirs, NodeBudget) == Ternary::True) {
        Contained = true;
        break;
      }
    }
    if (!Contained) {
      SawUnknown = true; // might still be covered jointly; stay conservative
    }
  }
  return SawUnknown ? Ternary::Unknown : Ternary::True;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string formatConstraintRow(const std::vector<int64_t> &Row, bool IsEq,
                                const std::vector<std::string> &Names) {
  unsigned NumVars = static_cast<unsigned>(Row.size()) - 1;
  std::string Out;
  bool First = true;
  for (unsigned J = 0; J < NumVars; ++J) {
    int64_t C = Row[J];
    if (C == 0)
      continue;
    std::string Name =
        J < Names.size() ? Names[J] : ("x" + std::to_string(J));
    if (First) {
      if (C == -1)
        Out += "-";
      else if (C != 1)
        Out += std::to_string(C) + " ";
    } else {
      Out += C > 0 ? " + " : " - ";
      int64_t A = C < 0 ? -C : C;
      if (A != 1)
        Out += std::to_string(A) + " ";
    }
    Out += Name;
    First = false;
  }
  int64_t K = Row[NumVars];
  if (First) {
    Out += std::to_string(K);
  } else if (K != 0) {
    Out += K > 0 ? " + " : " - ";
    Out += std::to_string(K < 0 ? -K : K);
  }
  Out += IsEq ? " == 0" : " >= 0";
  return Out;
}

std::string BasicSet::str(const std::vector<std::string> &Names) const {
  std::string Out = "{ [";
  for (unsigned J = 0; J < NumVars; ++J) {
    if (J)
      Out += ", ";
    if (J < Names.size()) {
      Out += Names[J];
    } else {
      // Built via append, not operator+: the latter trips a GCC 12
      // -Wrestrict false positive (PR105329) under -Werror.
      Out += 'x';
      Out += std::to_string(J);
    }
  }
  Out += "] : ";
  bool First = true;
  for (const auto &Row : Eqs) {
    if (!First)
      Out += " && ";
    Out += formatConstraintRow(Row, /*IsEq=*/true, Names);
    First = false;
  }
  for (const auto &Row : Ineqs) {
    if (!First)
      Out += " && ";
    Out += formatConstraintRow(Row, /*IsEq=*/false, Names);
    First = false;
  }
  if (First)
    Out += "true";
  Out += " }";
  return Out;
}

} // namespace presburger
} // namespace sds
