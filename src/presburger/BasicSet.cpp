//===- BasicSet.cpp - Integer polyhedra over named dimensions ------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/presburger/BasicSet.h"

#include "sds/obs/Trace.h"
#include "sds/presburger/Simplex.h"
#include "sds/support/MathExtras.h"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <set>
#include <unordered_map>

namespace sds {
namespace presburger {

void BasicSet::addEquality(std::vector<int64_t> Row) {
  assert(Row.size() == NumVars + 1 && "bad row width");
  Eqs.push_back(std::move(Row));
}

void BasicSet::addInequality(std::vector<int64_t> Row) {
  assert(Row.size() == NumVars + 1 && "bad row width");
  Ineqs.push_back(std::move(Row));
}

/// GCD-reduce one row; returns the gcd of the variable coefficients.
static int64_t variableGcd(const std::vector<int64_t> &Row, unsigned NumVars) {
  int64_t G = 0;
  for (unsigned J = 0; J < NumVars; ++J)
    G = gcd64(G, Row[J]);
  return G;
}

bool BasicSet::normalize() {
  std::vector<std::vector<int64_t>> NewEqs, NewIneqs;
  std::set<std::vector<int64_t>> SeenEq, SeenIneq;

  for (auto &Row : Eqs) {
    int64_t G = variableGcd(Row, NumVars);
    if (G == 0) {
      if (Row[NumVars] != 0)
        return false; // 0 == c, c != 0
      continue;
    }
    if (Row[NumVars] % G != 0)
      return false; // no integer solution for this equality
    std::vector<int64_t> R = Row;
    for (auto &C : R)
      C /= G;
    // Canonical sign: first nonzero variable coefficient positive.
    for (unsigned J = 0; J < NumVars; ++J) {
      if (R[J] == 0)
        continue;
      if (R[J] < 0)
        for (auto &C : R)
          C = -C;
      break;
    }
    if (SeenEq.insert(R).second)
      NewEqs.push_back(std::move(R));
  }

  for (auto &Row : Ineqs) {
    int64_t G = variableGcd(Row, NumVars);
    if (G == 0) {
      if (Row[NumVars] < 0)
        return false; // 0 >= -c with c > 0
      continue;
    }
    std::vector<int64_t> R = Row;
    for (unsigned J = 0; J < NumVars; ++J)
      R[J] /= G;
    // Integer tightening: constant rounds toward -inf.
    R[NumVars] = floorDiv64(R[NumVars], G);
    if (SeenIneq.insert(R).second)
      NewIneqs.push_back(std::move(R));
  }

  Eqs = std::move(NewEqs);
  Ineqs = std::move(NewIneqs);
  return true;
}

namespace {

/// Shared implementation of the integer emptiness test (rational simplex +
/// branch-and-bound), also used for integer sampling.
class EmptinessCheckerImpl {
public:
  explicit EmptinessCheckerImpl(unsigned NodeBudget) : Budget(NodeBudget) {}

  /// Returns the emptiness verdict; on False (non-empty), `Point` holds an
  /// integer point.
  Ternary run(BasicSet S, std::vector<int64_t> &Point) {
    static obs::Counter &Nodes = obs::counter("basicset.bnb_nodes");
    Nodes.add();
    if (!S.normalize())
      return Ternary::True;

    Simplex Sx(S.numVars());
    for (const auto &R : S.equalities())
      Sx.addEquality(R);
    for (const auto &R : S.inequalities())
      Sx.addInequality(R);
    LPStatus St = Sx.checkFeasible();
    if (St == LPStatus::Infeasible)
      return Ternary::True;
    if (St == LPStatus::Error)
      return Ternary::Unknown;

    // Rationally feasible: is the sample integral?
    const std::vector<Fraction> &Sample = Sx.samplePoint();
    unsigned FracVar = S.numVars();
    for (unsigned J = 0; J < S.numVars(); ++J) {
      if (!Sample[J].isIntegral()) {
        FracVar = J;
        break;
      }
    }
    if (FracVar == S.numVars()) {
      Point.resize(S.numVars());
      for (unsigned J = 0; J < S.numVars(); ++J) {
        Int128 V = Sample[J].num();
        if (V > INT64_MAX || V < INT64_MIN)
          return Ternary::Unknown;
        Point[J] = static_cast<int64_t>(V);
      }
      return Ternary::False;
    }

    if (Budget == 0)
      return Ternary::Unknown;
    --Budget;

    // Branch on the fractional coordinate.
    Int128 Floor = Sample[FracVar].floor();
    if (Floor > INT64_MAX - 1 || Floor < INT64_MIN + 1)
      return Ternary::Unknown;
    int64_t F = static_cast<int64_t>(Floor);

    BasicSet Left = S; // x <= floor(v)
    {
      std::vector<int64_t> Row(S.numVars() + 1, 0);
      Row[FracVar] = -1;
      Row[S.numVars()] = F;
      Left.addInequality(std::move(Row));
    }
    BasicSet Right = S; // x >= floor(v) + 1
    {
      std::vector<int64_t> Row(S.numVars() + 1, 0);
      Row[FracVar] = 1;
      Row[S.numVars()] = -(F + 1);
      Right.addInequality(std::move(Row));
    }

    Ternary A = run(std::move(Left), Point);
    if (A == Ternary::False)
      return Ternary::False;
    Ternary B = run(std::move(Right), Point);
    if (B == Ternary::False)
      return Ternary::False;
    if (A == Ternary::True && B == Ternary::True)
      return Ternary::True;
    return Ternary::Unknown;
  }

private:
  unsigned Budget;
};

//===----------------------------------------------------------------------===//
// Query memoization
//===----------------------------------------------------------------------===//

/// Process-wide canonical-system -> verdict cache. Definitive verdicts are
/// mathematical facts about the (budget, constraint-system) pair, so there
/// is no invalidation; the map is simply bounded.
struct QueryCache {
  static constexpr size_t MaxEntries = 1u << 20;

  std::mutex M;
  std::unordered_map<std::string, Ternary> Map;
  uint64_t Hits = 0, Misses = 0;

  std::optional<Ternary> lookup(const std::string &Key) {
    static obs::Counter &HitCtr = obs::counter("basicset.cache_hits");
    static obs::Counter &MissCtr = obs::counter("basicset.cache_misses");
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(Key);
    if (It != Map.end()) {
      ++Hits;
      HitCtr.add();
      return It->second;
    }
    ++Misses;
    MissCtr.add();
    return std::nullopt;
  }

  void store(const std::string &Key, Ternary V) {
    if (V == Ternary::Unknown)
      return; // budget-dependent; another query may still resolve it
    std::lock_guard<std::mutex> Lock(M);
    if (Map.size() < MaxEntries)
      Map.emplace(Key, V);
  }
};

QueryCache &queryCache() {
  static QueryCache C;
  return C;
}

void appendInt(std::string &Out, int64_t V) {
  for (int B = 0; B < 8; ++B)
    Out.push_back(static_cast<char>((static_cast<uint64_t>(V) >> (8 * B)) &
                                    0xff));
}

/// Canonical byte string of one set: normalized rows in sorted order. Two
/// syntactically different but normalize-identical systems share a key;
/// semantically equal systems with different normal forms simply miss (the
/// cache stays sound either way).
void appendCanonical(std::string &Out, const BasicSet &S) {
  BasicSet N = S;
  bool Feasible = N.normalize();
  appendInt(Out, static_cast<int64_t>(S.numVars()));
  appendInt(Out, Feasible ? 1 : 0);
  if (!Feasible)
    return; // all trivially-unsat systems of one width share a key
  auto Rows = [&Out](std::vector<std::vector<int64_t>> Rs, int64_t Tag) {
    std::sort(Rs.begin(), Rs.end());
    appendInt(Out, Tag);
    appendInt(Out, static_cast<int64_t>(Rs.size()));
    for (const auto &R : Rs)
      for (int64_t V : R)
        appendInt(Out, V);
  };
  Rows(N.equalities(), /*Tag=*/1);
  Rows(N.inequalities(), /*Tag=*/2);
}

} // namespace

QueryCacheStats queryCacheStats() {
  QueryCache &C = queryCache();
  std::lock_guard<std::mutex> Lock(C.M);
  return {C.Hits, C.Misses, C.Map.size()};
}

void clearQueryCache() {
  QueryCache &C = queryCache();
  std::lock_guard<std::mutex> Lock(C.M);
  C.Map.clear();
  C.Hits = C.Misses = 0;
}

Ternary BasicSet::isEmpty(unsigned NodeBudget) const {
  static obs::Counter &Checks = obs::counter("basicset.emptiness_checks");
  Checks.add();
  std::string Key;
  Key.reserve(16 + (numConstraints() + 2) * (NumVars + 2) * 8);
  Key.push_back('E');
  appendInt(Key, NodeBudget);
  appendCanonical(Key, *this);
  if (std::optional<Ternary> Hit = queryCache().lookup(Key))
    return *Hit;
  std::vector<int64_t> Ignored;
  Ternary R = EmptinessCheckerImpl(NodeBudget).run(*this, Ignored);
  queryCache().store(Key, R);
  return R;
}

std::optional<std::vector<int64_t>>
BasicSet::sampleIntegerPoint(unsigned NodeBudget) const {
  static obs::Counter &Samples = obs::counter("basicset.samples");
  Samples.add();
  std::vector<int64_t> Point;
  if (EmptinessCheckerImpl(NodeBudget).run(*this, Point) == Ternary::False)
    return Point;
  return std::nullopt;
}

unsigned BasicSet::detectImplicitEqualities(unsigned NodeBudget) {
  if (!normalize())
    return 0;
  unsigned Promoted = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Ineqs.size(); ++I) {
      // Is (row >= 1) infeasible within the set? Then row == 0 everywhere.
      BasicSet Probe = *this;
      std::vector<int64_t> Strict = Ineqs[I];
      Strict[NumVars] -= 1;
      Probe.addInequality(std::move(Strict));
      if (Probe.isEmpty(NodeBudget) != Ternary::True)
        continue;
      Eqs.push_back(Ineqs[I]);
      Ineqs.erase(Ineqs.begin() + static_cast<std::ptrdiff_t>(I));
      --I;
      ++Promoted;
      Changed = true;
    }
  }
  return Promoted;
}

BasicSet BasicSet::substitute(unsigned Var,
                              const std::vector<int64_t> &Expr) const {
  assert(Expr.size() == NumVars + 1 && "bad expression width");
  assert(Expr[Var] == 0 && "self-referential substitution");
  BasicSet Out(NumVars - 1);
  auto Rewrite = [&](const std::vector<int64_t> &Row) {
    // Clear the Var column by adding Var's coefficient times (Expr - Var).
    std::vector<int64_t> Full(NumVars + 1, 0);
    int64_t A = Row[Var];
    for (unsigned J = 0; J <= NumVars; ++J)
      Full[J] = Row[J] + A * Expr[J];
    Full[Var] = 0;
    std::vector<int64_t> Compact;
    Compact.reserve(NumVars);
    for (unsigned J = 0; J <= NumVars; ++J)
      if (J != Var)
        Compact.push_back(Full[J]);
    return Compact;
  };
  for (const auto &R : Eqs)
    Out.addEquality(Rewrite(R));
  for (const auto &R : Ineqs)
    Out.addInequality(Rewrite(R));
  return Out;
}

BasicSet BasicSet::insertVars(unsigned Pos, unsigned Count) const {
  assert(Pos <= NumVars && "insert position out of range");
  BasicSet Out(NumVars + Count);
  auto Widen = [&](const std::vector<int64_t> &Row) {
    std::vector<int64_t> R;
    R.reserve(NumVars + Count + 1);
    R.insert(R.end(), Row.begin(), Row.begin() + Pos);
    R.insert(R.end(), Count, 0);
    R.insert(R.end(), Row.begin() + Pos, Row.end());
    return R;
  };
  for (const auto &R : Eqs)
    Out.addEquality(Widen(R));
  for (const auto &R : Ineqs)
    Out.addInequality(Widen(R));
  return Out;
}

Ternary BasicSet::isSubsetOf(const BasicSet &Other,
                             unsigned NodeBudget) const {
  static obs::Counter &Tests = obs::counter("basicset.subset_tests");
  Tests.add();
  assert(NumVars == Other.NumVars && "dimension mismatch");
  // Memoized on (canonical this, canonical other, budget); the per-
  // halfspace emptiness probes below additionally hit the emptiness cache.
  std::string Key;
  Key.reserve(32 +
              (numConstraints() + Other.numConstraints() + 4) *
                  (NumVars + 2) * 8);
  Key.push_back('S');
  appendInt(Key, NodeBudget);
  appendCanonical(Key, *this);
  appendCanonical(Key, Other);
  if (std::optional<Ternary> Hit = queryCache().lookup(Key))
    return *Hit;
  Ternary Verdict = [&] {
  // this ⊆ {row >= 0}  iff  this ∧ (row <= -1) is empty.
  auto ContainedInHalfspace = [&](const std::vector<int64_t> &Row) {
    BasicSet Probe = *this;
    std::vector<int64_t> Neg(NumVars + 1);
    for (unsigned J = 0; J <= NumVars; ++J)
      Neg[J] = -Row[J];
    Neg[NumVars] -= 1;
    Probe.addInequality(std::move(Neg));
    return Probe.isEmpty(NodeBudget);
  };
  bool SawUnknown = false;
  for (const auto &Row : Other.Ineqs) {
    Ternary T = ContainedInHalfspace(Row);
    if (T == Ternary::False)
      return Ternary::False;
    if (T == Ternary::Unknown)
      SawUnknown = true;
  }
  for (const auto &Row : Other.Eqs) {
    Ternary T = ContainedInHalfspace(Row);
    if (T == Ternary::False)
      return Ternary::False;
    if (T == Ternary::Unknown)
      SawUnknown = true;
    std::vector<int64_t> Neg(NumVars + 1);
    for (unsigned J = 0; J <= NumVars; ++J)
      Neg[J] = -Row[J];
    T = ContainedInHalfspace(Neg);
    if (T == Ternary::False)
      return Ternary::False;
    if (T == Ternary::Unknown)
      SawUnknown = true;
  }
  return SawUnknown ? Ternary::Unknown : Ternary::True;
  }();
  queryCache().store(Key, Verdict);
  return Verdict;
}

//===----------------------------------------------------------------------===//
// Projection (Fourier–Motzkin with exactness tracking)
//===----------------------------------------------------------------------===//

namespace {

/// Eliminate variable `Var` from `S` in place (column becomes zero).
/// Returns false when the elimination had to over-approximate.
bool eliminateVar(BasicSet &S, unsigned Var, unsigned FMPairCap) {
  unsigned N = S.numVars();

  // Preferred: substitution through an equality with a ±1 coefficient.
  const std::vector<std::vector<int64_t>> &Eqs = S.equalities();
  for (size_t I = 0; I < Eqs.size(); ++I) {
    int64_t C = Eqs[I][Var];
    if (C != 1 && C != -1)
      continue;
    // Var = -(sign) * (rest of row).
    std::vector<int64_t> Expr(N + 1, 0);
    for (unsigned J = 0; J <= N; ++J) {
      if (J == Var)
        continue;
      Expr[J] = (C == 1) ? -Eqs[I][J] : Eqs[I][J];
    }
    BasicSet Out(N);
    auto RewriteInto = [&](const std::vector<int64_t> &Row, bool IsEq) {
      std::vector<int64_t> R(N + 1);
      int64_t A = Row[Var];
      for (unsigned J = 0; J <= N; ++J)
        R[J] = Row[J] + A * Expr[J];
      R[Var] = 0;
      if (IsEq)
        Out.addEquality(std::move(R));
      else
        Out.addInequality(std::move(R));
    };
    for (size_t K = 0; K < Eqs.size(); ++K)
      if (K != I)
        RewriteInto(Eqs[K], /*IsEq=*/true);
    for (const auto &Row : S.inequalities())
      RewriteInto(Row, /*IsEq=*/false);
    S = std::move(Out);
    return true;
  }

  // Equality with a non-unit coefficient: scaled elimination loses the
  // divisibility constraint; mark inexact.
  for (size_t I = 0; I < Eqs.size(); ++I) {
    int64_t C = Eqs[I][Var];
    if (C == 0)
      continue;
    int64_t AbsC = C < 0 ? -C : C;
    int64_t SignC = C < 0 ? -1 : 1;
    BasicSet Out(N);
    std::vector<int64_t> EqRow = Eqs[I];
    auto RewriteInto = [&](const std::vector<int64_t> &Row, bool IsEq) {
      int64_t A = Row[Var];
      std::vector<int64_t> R(N + 1);
      bool Ovf = false;
      for (unsigned J = 0; J <= N; ++J) {
        int64_t T1, T2;
        Ovf |= mulOverflow64(AbsC, Row[J], T1);
        Ovf |= mulOverflow64(A * SignC, EqRow[J], T2);
        Ovf |= addOverflow64(T1, -T2, R[J]);
      }
      if (Ovf)
        return false;
      R[Var] = 0;
      if (IsEq)
        Out.addEquality(std::move(R));
      else
        Out.addInequality(std::move(R));
      return true;
    };
    bool OK = true;
    for (size_t K = 0; K < Eqs.size() && OK; ++K)
      if (K != I)
        OK = RewriteInto(Eqs[K], /*IsEq=*/true);
    for (const auto &Row : S.inequalities())
      if (OK)
        OK = RewriteInto(Row, /*IsEq=*/false);
    if (OK) {
      S = std::move(Out);
      return false; // over-approximate (divisibility dropped)
    }
    break; // overflow: fall through to the relaxation path
  }

  // Fourier–Motzkin over the inequalities.
  std::vector<std::vector<int64_t>> Lowers, Uppers, Others;
  for (const auto &Row : S.inequalities()) {
    if (Row[Var] > 0)
      Lowers.push_back(Row);
    else if (Row[Var] < 0)
      Uppers.push_back(Row);
    else
      Others.push_back(Row);
  }
  // If any equality still involves Var here, there were no equalities with
  // nonzero coefficient (handled above), so none do.
  bool Exact = true;
  BasicSet Out(N);
  for (const auto &Row : S.equalities())
    Out.addEquality(Row);
  for (auto &Row : Others)
    Out.addInequality(std::move(Row));

  if (Lowers.size() * Uppers.size() > FMPairCap) {
    // Too many combinations: drop all constraints on Var (pure relaxation).
    S = std::move(Out);
    return false;
  }

  for (const auto &L : Lowers) {
    for (const auto &U : Uppers) {
      int64_t AL = L[Var];        // > 0
      int64_t AU = -U[Var];       // > 0
      bool PairExact = (AL == 1 || AU == 1);
      Exact &= PairExact;
      std::vector<int64_t> R(N + 1);
      bool Ovf = false;
      for (unsigned J = 0; J <= N; ++J) {
        int64_t T1, T2;
        Ovf |= mulOverflow64(AU, L[J], T1);
        Ovf |= mulOverflow64(AL, U[J], T2);
        Ovf |= addOverflow64(T1, T2, R[J]);
      }
      if (Ovf) {
        // Skip the combined constraint: still a relaxation, but inexact.
        Exact = false;
        continue;
      }
      R[Var] = 0;
      if (!PairExact) {
        // Integer (dark-shadow style) tightening is not applied; the pure
        // FM result over-approximates the integer shadow.
      }
      Out.addInequality(std::move(R));
    }
  }
  S = std::move(Out);
  return Exact;
}

} // namespace

ProjectResult
BasicSet::projectOut(std::vector<unsigned> Positions) const {
  static obs::Counter &Projections = obs::counter("basicset.projections");
  Projections.add();
  BasicSet Work = *this;
  bool Exact = true;
  std::sort(Positions.begin(), Positions.end());
  Positions.erase(std::unique(Positions.begin(), Positions.end()),
                  Positions.end());
  std::vector<bool> Eliminated(NumVars, false);

  if (!Work.normalize()) {
    unsigned OutWidth = NumVars - static_cast<unsigned>(Positions.size());
    BasicSet Out(OutWidth);
    std::vector<int64_t> False(OutWidth + 1, 0);
    False[OutWidth] = -1;
    Out.addInequality(std::move(False));
    return {std::move(Out), true};
  }

  // Eliminate cheapest-first: prefer unit-equality substitutions, then the
  // variable with the fewest FM pair combinations.
  std::vector<unsigned> Pending = Positions;
  while (!Pending.empty()) {
    unsigned BestIdx = 0;
    long BestScore = -1;
    for (unsigned I = 0; I < Pending.size(); ++I) {
      unsigned V = Pending[I];
      bool HasUnitEq = false;
      for (const auto &E : Work.equalities())
        if (E[V] == 1 || E[V] == -1) {
          HasUnitEq = true;
          break;
        }
      long Score;
      if (HasUnitEq) {
        Score = 0;
      } else {
        long NumLow = 0, NumUp = 0;
        for (const auto &R : Work.inequalities()) {
          if (R[V] > 0)
            ++NumLow;
          else if (R[V] < 0)
            ++NumUp;
        }
        Score = 1 + NumLow * NumUp;
      }
      if (BestScore < 0 || Score < BestScore) {
        BestScore = Score;
        BestIdx = I;
      }
    }
    unsigned Var = Pending[BestIdx];
    Pending.erase(Pending.begin() + BestIdx);
    Exact &= eliminateVar(Work, Var, /*FMPairCap=*/2048);
    Eliminated[Var] = true;
    if (!Work.normalize()) {
      // Proven empty during elimination: produce an empty set of the right
      // output width; that is exact regardless of earlier approximations.
      unsigned OutWidth = NumVars - static_cast<unsigned>(Positions.size());
      BasicSet Out(OutWidth);
      std::vector<int64_t> False(OutWidth + 1, 0);
      False[OutWidth] = -1;
      Out.addInequality(std::move(False));
      return {std::move(Out), true};
    }
  }

  // Compress the eliminated columns away.
  unsigned OutWidth = NumVars - static_cast<unsigned>(Positions.size());
  BasicSet Out(OutWidth);
  auto Compress = [&](const std::vector<int64_t> &Row) {
    std::vector<int64_t> R;
    R.reserve(OutWidth + 1);
    for (unsigned J = 0; J < NumVars; ++J)
      if (!Eliminated[J])
        R.push_back(Row[J]);
    R.push_back(Row[NumVars]);
    return R;
  };
  for (const auto &Row : Work.equalities())
    Out.addEquality(Compress(Row));
  for (const auto &Row : Work.inequalities())
    Out.addInequality(Compress(Row));
  Out.normalize();
  return {std::move(Out), Exact};
}

//===----------------------------------------------------------------------===//
// SetUnion
//===----------------------------------------------------------------------===//

Ternary SetUnion::isEmpty(unsigned NodeBudget) const {
  bool SawUnknown = false;
  for (const BasicSet &BS : Pieces) {
    Ternary T = BS.isEmpty(NodeBudget);
    if (T == Ternary::False)
      return Ternary::False;
    if (T == Ternary::Unknown)
      SawUnknown = true;
  }
  return SawUnknown ? Ternary::Unknown : Ternary::True;
}

Ternary SetUnion::isSubsetOf(const SetUnion &Other,
                             unsigned NodeBudget) const {
  bool SawUnknown = false;
  for (const BasicSet &Mine : Pieces) {
    if (Mine.isEmpty(NodeBudget) == Ternary::True)
      continue;
    bool Contained = false;
    for (const BasicSet &Theirs : Other.Pieces) {
      if (Mine.isSubsetOf(Theirs, NodeBudget) == Ternary::True) {
        Contained = true;
        break;
      }
    }
    if (!Contained) {
      SawUnknown = true; // might still be covered jointly; stay conservative
    }
  }
  return SawUnknown ? Ternary::Unknown : Ternary::True;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string formatConstraintRow(const std::vector<int64_t> &Row, bool IsEq,
                                const std::vector<std::string> &Names) {
  unsigned NumVars = static_cast<unsigned>(Row.size()) - 1;
  std::string Out;
  bool First = true;
  for (unsigned J = 0; J < NumVars; ++J) {
    int64_t C = Row[J];
    if (C == 0)
      continue;
    std::string Name =
        J < Names.size() ? Names[J] : ("x" + std::to_string(J));
    if (First) {
      if (C == -1)
        Out += "-";
      else if (C != 1)
        Out += std::to_string(C) + " ";
    } else {
      Out += C > 0 ? " + " : " - ";
      int64_t A = C < 0 ? -C : C;
      if (A != 1)
        Out += std::to_string(A) + " ";
    }
    Out += Name;
    First = false;
  }
  int64_t K = Row[NumVars];
  if (First) {
    Out += std::to_string(K);
  } else if (K != 0) {
    Out += K > 0 ? " + " : " - ";
    Out += std::to_string(K < 0 ? -K : K);
  }
  Out += IsEq ? " == 0" : " >= 0";
  return Out;
}

std::string BasicSet::str(const std::vector<std::string> &Names) const {
  std::string Out = "{ [";
  for (unsigned J = 0; J < NumVars; ++J) {
    if (J)
      Out += ", ";
    Out += J < Names.size() ? Names[J] : ("x" + std::to_string(J));
  }
  Out += "] : ";
  bool First = true;
  for (const auto &Row : Eqs) {
    if (!First)
      Out += " && ";
    Out += formatConstraintRow(Row, /*IsEq=*/true, Names);
    First = false;
  }
  for (const auto &Row : Ineqs) {
    if (!First)
      Out += " && ";
    Out += formatConstraintRow(Row, /*IsEq=*/false, Names);
    First = false;
  }
  if (First)
    Out += "true";
  Out += " }";
  return Out;
}

} // namespace presburger
} // namespace sds
