//===- Simplex.cpp - Exact rational simplex for feasibility --------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/presburger/Simplex.h"

#include "sds/obs/Trace.h"
#include "sds/presburger/Budget.h"

#include <cassert>

namespace sds {
namespace presburger {

void Simplex::addInequality(const std::vector<int64_t> &Row) {
  assert(Row.size() == NumVars + 1 && "bad row width");
  Rows.push_back({SmallVector<int64_t, 16>(Row), /*IsEq=*/false});
}

void Simplex::addEquality(const std::vector<int64_t> &Row) {
  assert(Row.size() == NumVars + 1 && "bad row width");
  Rows.push_back({SmallVector<int64_t, 16>(Row), /*IsEq=*/true});
}

LPStatus Simplex::checkFeasible() {
  Fraction Ignored;
  return solve(/*Obj=*/nullptr, Ignored);
}

LPStatus Simplex::minimize(const std::vector<int64_t> &Obj,
                           Fraction &ObjValue) {
  assert(Obj.size() == NumVars + 1 && "bad objective width");
  return solve(&Obj, ObjValue);
}

namespace {

/// Backing storage for one tableau, kept per-thread so the thousands of
/// short-lived solves issued by the emptiness test reuse one grown-to-fit
/// allocation instead of paying three heap allocations per solve. The
/// InUse flag guards against (currently nonexistent) reentrant solves:
/// branch-and-bound recursion happens strictly after each solve returns,
/// but if a nested solve ever appears it falls back to owned storage
/// rather than corrupting the borrowed buffers.
struct TableauScratch {
  std::vector<Fraction> Cells;
  std::vector<Fraction> ObjRow;
  std::vector<unsigned> Basis;
  bool InUse = false;
};

TableauScratch &tableauScratch() {
  thread_local TableauScratch S;
  return S;
}

/// Dense simplex tableau with an explicit reduced-cost row. Storage is
/// borrowed from the thread-local scratch when available.
class Tableau {
public:
  Tableau(unsigned NumRows, unsigned NumCols)
      : NumRows(NumRows), NumCols(NumCols) {
    TableauScratch &S = tableauScratch();
    if (!S.InUse) {
      S.InUse = true;
      Scratch = &S;
      CellsP = &S.Cells;
      ObjRowP = &S.ObjRow;
      BasisP = &S.Basis;
    } else {
      CellsP = &OwnedCells;
      ObjRowP = &OwnedObjRow;
      BasisP = &OwnedBasis;
    }
    CellsP->assign(static_cast<size_t>(NumRows) * (NumCols + 1), Fraction());
    ObjRowP->assign(NumCols + 1, Fraction());
    BasisP->assign(NumRows, ~0u);
  }

  Tableau(const Tableau &) = delete;
  Tableau &operator=(const Tableau &) = delete;

  ~Tableau() {
    if (Scratch)
      Scratch->InUse = false;
  }

  Fraction &at(unsigned R, unsigned C) {
    return (*CellsP)[static_cast<size_t>(R) * (NumCols + 1) + C];
  }
  Fraction &rhs(unsigned R) { return at(R, NumCols); }
  Fraction &obj(unsigned C) { return (*ObjRowP)[C]; }
  Fraction &objVal() { return (*ObjRowP)[NumCols]; }

  unsigned basis(unsigned R) const { return (*BasisP)[R]; }
  void setBasis(unsigned R, unsigned C) { (*BasisP)[R] = C; }

  bool overflowed() const { return Overflow; }

  /// Pivot on (R, C): make column C basic in row R.
  void pivot(unsigned R, unsigned C) {
    Fraction P = at(R, C);
    assert(!P.isZero() && "pivot on zero cell");
    // Normalize the pivot row.
    for (unsigned J = 0; J <= NumCols; ++J) {
      at(R, J) = at(R, J) / P;
      Overflow |= at(R, J).overflowed();
    }
    // Eliminate column C from all other rows and the objective row.
    for (unsigned I = 0; I < NumRows; ++I) {
      if (I == R)
        continue;
      Fraction F = at(I, C);
      if (F.isZero())
        continue;
      for (unsigned J = 0; J <= NumCols; ++J) {
        at(I, J) = at(I, J) - F * at(R, J);
        Overflow |= at(I, J).overflowed();
      }
    }
    Fraction F = obj(C);
    if (!F.isZero()) {
      for (unsigned J = 0; J <= NumCols; ++J) {
        obj(J) = obj(J) - F * at(R, J);
        Overflow |= obj(J).overflowed();
      }
    }
    setBasis(R, C);
  }

  /// Run simplex until optimal/unbounded/overflow: Dantzig's rule (most
  /// negative reduced cost) for speed, switching to Bland's rule after a
  /// fixed pivot count to guarantee termination on degenerate cycles.
  /// Past the per-solve pivot budget (Budget.h) the solve gives up with
  /// LPStatus::Error — callers degrade to a conservative Unknown, so the
  /// budget bounds latency without ever flipping a verdict.
  /// `Allowed` masks which columns may enter the basis (may be null).
  LPStatus iterate(const std::vector<bool> *Allowed) {
    static obs::Counter &PivotCount = obs::counter("simplex.pivots");
    static obs::Counter &BudgetHits = obs::counter("simplex.budget_exhausted");
    unsigned Pivots = 0;
    const unsigned BlandAfter = 500;
    const uint64_t MaxPivots = pivotBudget();
    while (true) {
      if (Overflow)
        return LPStatus::Error;
      PivotCount.add();
      if (Pivots >= MaxPivots) {
        BudgetHits.add();
        notePivotBudgetExhaustion();
        return LPStatus::Error;
      }
      bool Bland = ++Pivots > BlandAfter;
      unsigned Enter = NumCols;
      Fraction Zero(0);
      for (unsigned J = 0; J < NumCols; ++J) {
        if (Allowed && !(*Allowed)[J])
          continue;
        if (!(obj(J) < Zero))
          continue;
        if (Enter == NumCols || (!Bland && obj(J) < obj(Enter))) {
          Enter = J;
          if (Bland)
            break;
        }
      }
      if (Enter == NumCols)
        return LPStatus::Optimal;
      // Leaving row: min ratio; ties broken by smallest basis index (Bland).
      unsigned Leave = NumRows;
      Fraction BestRatio(0);
      for (unsigned I = 0; I < NumRows; ++I) {
        if (!(at(I, Enter) > Zero))
          continue;
        Fraction Ratio = rhs(I) / at(I, Enter);
        if (Ratio.overflowed())
          return LPStatus::Error;
        if (Leave == NumRows || Ratio < BestRatio ||
            (Ratio == BestRatio && basis(I) < basis(Leave))) {
          Leave = I;
          BestRatio = Ratio;
        }
      }
      if (Leave == NumRows)
        return LPStatus::Unbounded;
      pivot(Leave, Enter);
    }
  }

  unsigned NumRows, NumCols;

private:
  TableauScratch *Scratch = nullptr;
  std::vector<Fraction> *CellsP = nullptr;
  std::vector<Fraction> *ObjRowP = nullptr;
  std::vector<unsigned> *BasisP = nullptr;
  std::vector<Fraction> OwnedCells;
  std::vector<Fraction> OwnedObjRow;
  std::vector<unsigned> OwnedBasis;
  bool Overflow = false;
};

} // namespace

LPStatus Simplex::solve(const std::vector<int64_t> *Obj, Fraction &ObjValue) {
  static obs::Counter &Solves = obs::counter("simplex.solves");
  Solves.add();
  Core.clear();
  // Quick scan: constraints with no variable part decide themselves.
  // Active holds add-order indices so an infeasibility certificate over
  // the tableau rows can be mapped back to the rows the caller added.
  std::vector<unsigned> Active;
  Active.reserve(Rows.size());
  for (unsigned RI = 0; RI < Rows.size(); ++RI) {
    const RowRec &R = Rows[RI];
    bool AllZero = true;
    for (unsigned J = 0; J < NumVars; ++J)
      if (R.Coeffs[J] != 0) {
        AllZero = false;
        break;
      }
    if (AllZero) {
      int64_t C = R.Coeffs[NumVars];
      if (R.IsEq ? (C != 0) : (C < 0)) {
        Core.push_back(RI); // the row alone is contradictory
        return LPStatus::Infeasible;
      }
      continue; // trivially satisfied
    }
    Active.push_back(RI);
  }

  unsigned NumIneq = 0;
  for (unsigned RI : Active)
    if (!Rows[RI].IsEq)
      ++NumIneq;

  unsigned M = static_cast<unsigned>(Active.size());
  // Columns: p_0..p_{n-1}, q_0..q_{n-1}, slacks, artificials.
  unsigned PBase = 0, QBase = NumVars, SBase = 2 * NumVars,
           ABase = 2 * NumVars + NumIneq;
  unsigned NumCols = ABase + M;

  if (M == 0) {
    // System is trivially satisfiable; the origin works.
    Sample.assign(NumVars, Fraction(0));
    if (Obj) {
      // Objective may still be unbounded over free variables.
      for (unsigned J = 0; J < NumVars; ++J)
        if ((*Obj)[J] != 0)
          return LPStatus::Unbounded;
      ObjValue = Fraction((*Obj)[NumVars]);
    }
    return LPStatus::Optimal;
  }

  Tableau T(M, NumCols);
  unsigned SlackIdx = 0;
  for (unsigned I = 0; I < M; ++I) {
    const RowRec &R = Rows[Active[I]];
    // a.x + c (>=|==) 0  becomes  a.(p-q) [- s] = -c ; flip so RHS >= 0.
    int64_t Rhs64 = -R.Coeffs[NumVars];
    int Sign = Rhs64 < 0 ? -1 : 1;
    for (unsigned J = 0; J < NumVars; ++J) {
      int64_t A = R.Coeffs[J] * Sign;
      T.at(I, PBase + J) = Fraction(A);
      T.at(I, QBase + J) = Fraction(-A);
    }
    if (!R.IsEq) {
      T.at(I, SBase + SlackIdx) = Fraction(-Sign);
      ++SlackIdx;
    }
    T.at(I, ABase + I) = Fraction(1);
    T.rhs(I) = Fraction(Sign < 0 ? -Rhs64 : Rhs64);
    T.setBasis(I, ABase + I);
  }

  // Phase 1: minimize the sum of artificials. Reduced costs: cost 1 on each
  // artificial, priced out against the artificial basis.
  for (unsigned J = 0; J <= NumCols; ++J)
    T.obj(J) = Fraction(0);
  for (unsigned I = 0; I < M; ++I)
    T.obj(ABase + I) = Fraction(1);
  for (unsigned I = 0; I < M; ++I) {
    // Basic artificial with cost 1: subtract its row from the objective.
    for (unsigned J = 0; J <= NumCols; ++J)
      T.obj(J) = T.obj(J) - T.at(I, J);
  }

  LPStatus S = T.iterate(/*Allowed=*/nullptr);
  if (S == LPStatus::Error)
    return S;
  assert(S != LPStatus::Unbounded && "phase-1 objective is bounded below");
  // Feasible iff the phase-1 optimum is zero, i.e. -objVal == 0.
  if (!T.objVal().isZero()) {
    // Farkas certificate: at the phase-1 optimum the dual weight of row I
    // is y_I = 1 - obj(ABase+I) (reduced cost of its artificial column).
    // Rows with y_I == 0 contribute nothing to the certificate, so the
    // nonzero-weight subsystem is itself infeasible — an unsat core.
    if (!T.overflowed()) {
      Fraction One(1);
      for (unsigned I = 0; I < M; ++I)
        if (T.obj(ABase + I) != One)
          Core.push_back(Active[I]);
    }
    return LPStatus::Infeasible;
  }

  // Drive any remaining basic artificials out (or detect redundant rows).
  for (unsigned I = 0; I < M; ++I) {
    if (T.basis(I) < ABase)
      continue;
    unsigned Col = NumCols;
    for (unsigned J = 0; J < ABase; ++J)
      if (!T.at(I, J).isZero()) {
        Col = J;
        break;
      }
    if (Col != NumCols)
      T.pivot(I, Col);
    // Otherwise the row is redundant; the artificial stays basic at zero,
    // which is harmless as long as artificial columns never re-enter.
  }
  if (T.overflowed())
    return LPStatus::Error;

  std::vector<bool> Allowed(NumCols, true);
  for (unsigned I = 0; I < M; ++I)
    Allowed[ABase + I] = false;

  if (Obj) {
    // Phase 2: install the real objective and price out the basis.
    for (unsigned J = 0; J <= NumCols; ++J)
      T.obj(J) = Fraction(0);
    for (unsigned J = 0; J < NumVars; ++J) {
      T.obj(PBase + J) = Fraction((*Obj)[J]);
      T.obj(QBase + J) = Fraction(-(*Obj)[J]);
    }
    for (unsigned I = 0; I < M; ++I) {
      unsigned B = T.basis(I);
      Fraction C = T.obj(B);
      if (C.isZero())
        continue;
      for (unsigned J = 0; J <= NumCols; ++J)
        T.obj(J) = T.obj(J) - C * T.at(I, J);
    }
    S = T.iterate(&Allowed);
    if (S != LPStatus::Optimal)
      return S;
    // objVal holds -(c.x_B); optimum of c.x is its negation plus constant.
    ObjValue = -T.objVal() + Fraction((*Obj)[NumVars]);
    if (ObjValue.overflowed())
      return LPStatus::Error;
  }

  // Extract the sample point x = p - q.
  std::vector<Fraction> P(NumVars, Fraction(0)), Q(NumVars, Fraction(0));
  for (unsigned I = 0; I < M; ++I) {
    unsigned B = T.basis(I);
    if (B < QBase)
      P[B - PBase] = T.rhs(I);
    else if (B < SBase)
      Q[B - QBase] = T.rhs(I);
  }
  Sample.assign(NumVars, Fraction(0));
  for (unsigned J = 0; J < NumVars; ++J) {
    Sample[J] = P[J] - Q[J];
    if (Sample[J].overflowed())
      return LPStatus::Error;
  }
  return LPStatus::Optimal;
}

} // namespace presburger
} // namespace sds
