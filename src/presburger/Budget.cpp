//===- Budget.cpp - Resource budgets for the decision procedures ----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/presburger/Budget.h"

#include "sds/obs/Trace.h"

#include <atomic>

namespace sds {
namespace presburger {

namespace {

constexpr uint64_t DefaultPivotBudget = 1'000'000;

std::atomic<uint64_t> PivotBudget{DefaultPivotBudget};
std::atomic<uint64_t> PivotExhaustions{0};
std::atomic<uint64_t> DeadlineHits{0};

thread_local uint64_t DeadlineNs = 0;

} // namespace

void setPivotBudget(uint64_t MaxPivotsPerSolve) {
  PivotBudget.store(MaxPivotsPerSolve ? MaxPivotsPerSolve
                                      : DefaultPivotBudget,
                    std::memory_order_relaxed);
}

uint64_t pivotBudget() { return PivotBudget.load(std::memory_order_relaxed); }

uint64_t pivotBudgetExhaustions() {
  return PivotExhaustions.load(std::memory_order_relaxed);
}

void notePivotBudgetExhaustion() {
  PivotExhaustions.fetch_add(1, std::memory_order_relaxed);
}

uint64_t currentDeadlineNs() { return DeadlineNs; }

bool deadlineExpired() {
  return DeadlineNs != 0 && obs::nowNs() >= DeadlineNs;
}

uint64_t deadlineExhaustions() {
  return DeadlineHits.load(std::memory_order_relaxed);
}

void noteDeadlineExhaustion() {
  DeadlineHits.fetch_add(1, std::memory_order_relaxed);
}

void resetBudgetCounters() {
  PivotExhaustions.store(0, std::memory_order_relaxed);
  DeadlineHits.store(0, std::memory_order_relaxed);
}

ScopedDeadline::ScopedDeadline(uint64_t AbsDeadlineNs) : Prev(DeadlineNs) {
  // Never let a nested scope push an outer deadline later.
  if (AbsDeadlineNs != 0 && (Prev == 0 || AbsDeadlineNs < Prev))
    DeadlineNs = AbsDeadlineNs;
}

ScopedDeadline::~ScopedDeadline() { DeadlineNs = Prev; }

uint64_t ScopedDeadline::fromNow(double Seconds) {
  if (Seconds <= 0)
    return 1; // already expired (but nonzero, so it counts as installed)
  return obs::nowNs() + static_cast<uint64_t>(Seconds * 1e9);
}

} // namespace presburger
} // namespace sds
