//===- Store.cpp - Crash-safe persistent artifact store -------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/store/Store.h"

#include "sds/obs/FlightRecorder.h"
#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

namespace fs = std::filesystem;

namespace sds {
namespace store {

namespace {

uint64_t fnv1a64(std::string_view S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string hex16(uint64_t H) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

/// Filesystem-safe kernel-name prefix so `ls` on the store is readable;
/// the hash carries the actual identity.
std::string sanitize(const std::string &Name) {
  std::string Out;
  for (char C : Name) {
    if (std::isalnum(static_cast<unsigned char>(C)))
      Out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(C))));
    else if (!Out.empty() && Out.back() != '_')
      Out.push_back('_');
    if (Out.size() >= 24)
      break;
  }
  while (!Out.empty() && Out.back() == '_')
    Out.pop_back();
  return Out.empty() ? "kernel" : Out;
}

/// Deliberate crash points for the CI kill-mid-write recovery test:
/// SDS_STORE_CRASH_POINT=mid-blob   _exit(137) with half the bytes written
/// SDS_STORE_CRASH_POINT=before-rename  _exit(137) after fsync, pre-publish
const char *crashPoint() { return std::getenv("SDS_STORE_CRASH_POINT"); }

/// Write `Bytes` to `Path` and flush them to the device. Exception-free.
support::Status writeDurable(const std::string &Path,
                             const std::string &Bytes) {
  const char *Crash = crashPoint();
  bool CrashMid = Crash && !std::strcmp(Crash, "mid-blob");
  int FD = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (FD < 0)
    return support::ioError("cannot open for writing")
        .withContext("write '" + Path + "'");
  size_t Want = CrashMid ? Bytes.size() / 2 : Bytes.size();
  size_t Done = 0;
  while (Done < Want) {
    ssize_t W = ::write(FD, Bytes.data() + Done, Want - Done);
    if (W < 0) {
      ::close(FD);
      return support::ioError("write failed").withContext("write '" + Path +
                                                          "'");
    }
    Done += static_cast<size_t>(W);
  }
  if (CrashMid)
    ::_exit(137); // simulate a crash with a torn tmp file on disk
  bool Synced = ::fsync(FD) == 0;
  ::close(FD);
  if (!Synced)
    return support::ioError("fsync failed").withContext("write '" + Path +
                                                        "'");
  if (Crash && !std::strcmp(Crash, "before-rename"))
    ::_exit(137); // simulate a crash with a complete but unpublished tmp
  return {};
}

/// Flush a directory entry change (the rename) to the device. Best-effort:
/// some filesystems refuse directory fsync; the rename is still atomic.
void syncDir(const std::string &Dir) {
  int FD = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (FD >= 0) {
    (void)::fsync(FD);
    ::close(FD);
  }
}

bool isTmpName(const std::string &Name) {
  return Name.find(".tmp") != std::string::npos;
}

bool isBlobName(const std::string &Name) {
  return Name.size() > 5 && !isTmpName(Name) &&
         Name.compare(Name.size() - 5, 5, ".json") == 0;
}

} // namespace

struct Store::Impl {
  StoreOptions Opts;
  support::Status St; ///< construction outcome
  fs::path Root;
  fs::path Quarantine;

  mutable std::mutex Mu;
  StoreStats Stats;
  std::vector<uint64_t> GaugeHandles;

  void bump(uint64_t StoreStats::*F) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++(Stats.*F);
  }

  /// Move a failed blob aside, never deleting it. Returns whether the
  /// move succeeded; either way the event is flight-recorded.
  bool quarantine(const fs::path &Blob, const std::string &Reason) {
    static obs::Counter &Quarantined = obs::counter("store.quarantined");
    std::error_code EC;
    fs::create_directories(Quarantine, EC);
    fs::path Dest;
    for (unsigned Seq = 0; Seq < 10000; ++Seq) {
      Dest = Quarantine / (Blob.filename().string() + "." +
                           std::to_string(Seq));
      if (!fs::exists(Dest, EC))
        break;
    }
    fs::rename(Blob, Dest, EC);
    if (EC) {
      bump(&StoreStats::QuarantineFailed);
      obs::flightRecord(obs::FlightSeverity::Error, "store",
                        "corrupt blob could not be quarantined (left in "
                        "place)",
                        {{"blob", Blob.string()},
                         {"reason", Reason},
                         {"error", EC.message()}});
      return false;
    }
    bump(&StoreStats::Quarantined);
    Quarantined.add();
    obs::flightRecord(obs::FlightSeverity::Warn, "store",
                      "corrupt blob quarantined",
                      {{"blob", Blob.string()},
                       {"quarantined_as", Dest.string()},
                       {"reason", Reason}});
    return true;
  }

  /// Startup recovery: remove orphaned tmp files (torn or unpublished
  /// writes from a crashed process) and optionally decode-verify every
  /// published blob.
  void recover() {
    static obs::Counter &Recovered = obs::counter("store.recovered_tmp");
    std::error_code EC;
    std::vector<fs::path> Tmp, Blobs;
    for (const fs::directory_entry &E : fs::directory_iterator(Root, EC)) {
      if (!E.is_regular_file(EC))
        continue;
      std::string Name = E.path().filename().string();
      if (isTmpName(Name))
        Tmp.push_back(E.path());
      else if (Opts.VerifyOnRecovery && isBlobName(Name))
        Blobs.push_back(E.path());
    }
    for (const fs::path &P : Tmp) {
      fs::remove(P, EC);
      if (EC)
        continue;
      bump(&StoreStats::RecoveredTmp);
      Recovered.add();
      obs::flightRecord(obs::FlightSeverity::Info, "store",
                        "recovery removed orphaned tmp file (torn write)",
                        {{"file", P.string()}});
    }
    for (const fs::path &P : Blobs) {
      std::ifstream In(P, std::ios::binary);
      std::stringstream SS;
      SS << In.rdbuf();
      artifact::CompiledKernel CK;
      if (support::Status S = artifact::deserialize(SS.str(), CK); !S.ok())
        quarantine(P, "recovery verification: " + S.message());
    }
  }
};

Store::Store(StoreOptions Opts) : I(std::make_unique<Impl>()) {
  I->Opts = std::move(Opts);
  if (I->Opts.Root.empty()) {
    I->St = support::invalidArgument("store root must be non-empty");
    return;
  }
  I->Root = I->Opts.Root;
  I->Quarantine = I->Root / "quarantine";
  std::error_code EC;
  fs::create_directories(I->Root, EC);
  if (EC || !fs::is_directory(I->Root, EC)) {
    I->St = support::ioError("cannot create store root '" + I->Opts.Root +
                             "': " + EC.message());
    obs::flightRecord(obs::FlightSeverity::Error, "store",
                      "store root unusable; store is dead",
                      {{"root", I->Opts.Root}, {"error", EC.message()}});
    return;
  }
  I->recover();
  Impl *Raw = I.get();
  I->GaugeHandles.push_back(obs::registerGaugeSource(
      "store.bytes", [Raw] {
        std::error_code E;
        uint64_t Total = 0;
        for (const fs::directory_entry &D :
             fs::directory_iterator(Raw->Root, E))
          if (D.is_regular_file(E) &&
              isBlobName(D.path().filename().string()))
            Total += D.file_size(E);
        return static_cast<double>(Total);
      }));
}

Store::~Store() {
  for (uint64_t H : I->GaugeHandles)
    obs::unregisterGaugeSource(H);
}

const support::Status &Store::status() const { return I->St; }

std::string Store::keyFor(const std::string &KernelName,
                          const artifact::AnalysisOptions &Options,
                          const rt::ScheduleConfig &Schedule) {
  // NumThreads is a deployment property: it is not serialized into the
  // artifact (decode leaves the in-memory default), so it must not be part
  // of the blob identity either — otherwise the post-decode identity check
  // in get() would reject every blob written at a different thread count.
  rt::ScheduleConfig Shape = Schedule;
  Shape.NumThreads = 0;
  return KernelName + "|" + Options.key() + "|" + Shape.key() + "|" +
         artifact::abiFingerprint();
}

std::string Store::keyFor(const artifact::CompiledKernel &CK) {
  return keyFor(CK.KernelName, CK.Options, CK.Schedule);
}

std::string Store::blobPath(const std::string &Key) const {
  std::string Name;
  size_t Bar = Key.find('|');
  Name = sanitize(Bar == std::string::npos ? Key : Key.substr(0, Bar));
  return (I->Root / (Name + "-" + hex16(fnv1a64(Key)) + ".json")).string();
}

support::Status Store::put(const artifact::CompiledKernel &CK) {
  static obs::Counter &Puts = obs::counter("store.put");
  static obs::Histogram &PutNs = obs::histogram("store.put_ns");
  if (!I->St.ok())
    return I->St.withContext("store put");
  obs::ScopedLatency Lat(PutNs);
  std::string Key = keyFor(CK);
  std::string Final = blobPath(Key);
  std::string Bytes = artifact::serialize(CK) + "\n";

  // Identical bytes already published: nothing to do (and no tmp churn).
  {
    std::ifstream In(Final, std::ios::binary);
    if (In) {
      std::stringstream SS;
      SS << In.rdbuf();
      if (SS.str() == Bytes) {
        I->bump(&StoreStats::PutIdentical);
        return {};
      }
    }
  }

  std::string Tmp =
      Final + ".tmp" + std::to_string(static_cast<long>(::getpid()));
  if (support::Status S = writeDurable(Tmp, Bytes); !S.ok()) {
    std::error_code EC;
    fs::remove(Tmp, EC); // best effort; recovery sweeps stragglers
    return S.withContext("store put '" + CK.KernelName + "'");
  }
  std::error_code EC;
  fs::rename(Tmp, Final, EC);
  if (EC) {
    fs::remove(Tmp, EC);
    return support::ioError("publish rename failed: " + EC.message())
        .withContext("store put '" + CK.KernelName + "'");
  }
  syncDir(I->Root.string());
  I->bump(&StoreStats::Puts);
  Puts.add();
  obs::flightRecord(obs::FlightSeverity::Info, "store", "blob published",
                    {{"kernel", CK.KernelName},
                     {"blob", Final},
                     {"bytes", std::to_string(Bytes.size())}});
  if (I->Opts.MaxBytes)
    return sweep();
  return {};
}

support::Status Store::get(const std::string &Key,
                           artifact::CompiledKernel &Out, bool &Found) {
  static obs::Counter &Hits = obs::counter("store.hit");
  static obs::Counter &Misses = obs::counter("store.miss");
  static obs::Histogram &GetNs = obs::histogram("store.get_ns");
  Found = false;
  if (!I->St.ok())
    return I->St.withContext("store get");
  obs::ScopedLatency Lat(GetNs);
  fs::path Blob = blobPath(Key);
  std::ifstream In(Blob, std::ios::binary);
  if (!In) {
    I->bump(&StoreStats::Misses);
    Misses.add();
    return {};
  }
  std::stringstream SS;
  SS << In.rdbuf();
  if (In.bad()) {
    I->quarantine(Blob, "read failed");
    I->bump(&StoreStats::Misses);
    Misses.add();
    return {};
  }
  artifact::CompiledKernel CK;
  if (support::Status S = artifact::deserialize(SS.str(), CK); !S.ok()) {
    // Corrupt / torn / version-skewed / ABI-mismatched blob: move it
    // aside and report a miss — the caller recompiles; nothing is ever
    // silently deleted or silently served.
    I->quarantine(Blob, S.message());
    I->bump(&StoreStats::Misses);
    Misses.add();
    return {};
  }
  if (keyFor(CK) != Key) {
    // A decodable blob for the wrong identity (renamed file, hash
    // collision, stray copy): treat exactly like corruption.
    I->quarantine(Blob, "decoded identity does not match requested key");
    I->bump(&StoreStats::Misses);
    Misses.add();
    return {};
  }
  // Touch the blob so the LRU sweep order survives restarts.
  std::error_code EC;
  fs::last_write_time(Blob, fs::file_time_type::clock::now(), EC);
  Out = std::move(CK);
  Found = true;
  I->bump(&StoreStats::Hits);
  Hits.add();
  return {};
}

bool Store::contains(const std::string &Key) const {
  if (!I->St.ok())
    return false;
  std::error_code EC;
  return fs::exists(blobPath(Key), EC);
}

support::Status Store::sweep() {
  static obs::Counter &Evicted = obs::counter("store.sweep_evicted");
  if (!I->St.ok())
    return I->St.withContext("store sweep");
  if (!I->Opts.MaxBytes)
    return {};
  std::lock_guard<std::mutex> Lock(I->Mu);
  struct Entry {
    fs::path Path;
    uint64_t Bytes;
    fs::file_time_type MTime;
  };
  std::vector<Entry> Blobs;
  uint64_t Total = 0;
  std::error_code EC;
  for (const fs::directory_entry &E : fs::directory_iterator(I->Root, EC)) {
    if (!E.is_regular_file(EC) || !isBlobName(E.path().filename().string()))
      continue;
    Entry B{E.path(), E.file_size(EC), E.last_write_time(EC)};
    Total += B.Bytes;
    Blobs.push_back(std::move(B));
  }
  if (Total <= I->Opts.MaxBytes)
    return {};
  std::sort(Blobs.begin(), Blobs.end(),
            [](const Entry &A, const Entry &B) { return A.MTime < B.MTime; });
  // Oldest-read first; the most recently touched blob is never evicted,
  // so a budget smaller than one blob cannot turn put() into a no-op.
  for (size_t J = 0; J + 1 < Blobs.size() && Total > I->Opts.MaxBytes; ++J) {
    fs::remove(Blobs[J].Path, EC);
    if (EC)
      continue;
    Total -= Blobs[J].Bytes;
    ++I->Stats.SweepEvicted;
    Evicted.add();
    obs::flightRecord(obs::FlightSeverity::Info, "store",
                      "LRU sweep evicted blob (byte budget)",
                      {{"blob", Blobs[J].Path.string()},
                       {"bytes", std::to_string(Blobs[J].Bytes)},
                       {"budget", std::to_string(I->Opts.MaxBytes)}});
  }
  return {};
}

uint64_t Store::totalBytes() const {
  if (!I->St.ok())
    return 0;
  uint64_t Total = 0;
  std::error_code EC;
  for (const fs::directory_entry &E : fs::directory_iterator(I->Root, EC))
    if (E.is_regular_file(EC) && isBlobName(E.path().filename().string()))
      Total += E.file_size(EC);
  return Total;
}

std::vector<std::string> Store::listQuarantined() const {
  std::vector<std::string> Out;
  if (!I->St.ok())
    return Out;
  std::error_code EC;
  for (const fs::directory_entry &E :
       fs::directory_iterator(I->Quarantine, EC))
    if (E.is_regular_file(EC))
      Out.push_back(E.path().filename().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}

StoreStats Store::stats() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  return I->Stats;
}

const std::string &Store::root() const { return I->Opts.Root; }

} // namespace store
} // namespace sds
