//===- Driver.cpp - End-to-end inspector-executor orchestration -----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/driver/Driver.h"

#include "sds/obs/FlightRecorder.h"
#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"

#include <algorithm>
#include <chrono>

#include "sds/support/OMP.h"

namespace sds {
namespace driver {

codegen::UFEnvironment bindCSR(const rt::CSRMatrix &A,
                               const std::vector<int> &DiagPos) {
  codegen::UFEnvironment Env;
  Env.bindArray("rowptr", A.RowPtr);
  Env.bindArray("col", A.Col);
  if (!DiagPos.empty())
    Env.bindArray("diag", DiagPos);
  Env.Params["n"] = A.N;
  Env.Params["nnz"] = A.nnz();
  return Env;
}

codegen::UFEnvironment bindCSC(const rt::CSCMatrix &A,
                               const rt::PruneSets *Prune) {
  codegen::UFEnvironment Env;
  Env.bindArray("colptr", A.ColPtr);
  Env.bindArray("rowidx", A.RowIdx);
  if (Prune) {
    Env.bindArray("pruneptr", Prune->Ptr);
    Env.bindArray("pruneset", Prune->ColOf);
  }
  Env.Params["n"] = A.N;
  Env.Params["nnz"] = A.nnz();
  return Env;
}

namespace {

/// One unit of inspector work: a slice [Lo, Hi) of inspector `Insp`'s
/// outermost loop (or its full run when the outer variable is solved).
/// Chunks are built in (inspector, ascending Lo) order and merged in that
/// same order, so the result is bitwise independent of the thread count.
struct InspectorChunk {
  size_t Insp;
  int64_t Lo, Hi;
  bool Full; ///< run the whole nest instead of a range
  std::vector<codegen::InspectorEdge> Edges;
  uint64_t Visits = 0;
  double Seconds = 0;
};

} // namespace

InspectionResult runInspectors(const std::string &KernelName,
                               const std::vector<deps::AnalyzedDependence> &Analyzed,
                               const codegen::UFEnvironment &Env, int N,
                               const InspectorOptions &Opts) {
  static obs::Counter &TotalVisits = obs::counter("driver.inspector_visits");
  static obs::Counter &TotalEdges = obs::counter("driver.edges_inserted");
  using Clock = std::chrono::steady_clock;
  auto T0 = Clock::now();
  obs::Span All("driver.run_inspectors", "driver");
  All.tag("kernel", KernelName);

  InspectionResult Res(N);

  // Compile every surviving plan exactly once, outside any parallel
  // region; threads share the immutable compiled programs.
  std::vector<const deps::AnalyzedDependence *> Deps;
  std::vector<codegen::CompiledInspector> Compiled;
  for (const deps::AnalyzedDependence &D : Analyzed) {
    if (D.Status != deps::DepStatus::Runtime)
      continue;
    if (!D.Plan.Valid) {
      // The pipeline falls back to planning the original relation, so an
      // invalid plan here means even that was unschedulable. Count it —
      // a dependence without an inspector is a soundness hole, not a
      // detail to drop on the floor.
      static obs::Counter &Skipped =
          obs::counter("driver.invalid_plan_skipped");
      Skipped.add(1);
      obs::flightRecord(obs::FlightSeverity::Error, "driver",
                        "dependence has no schedulable inspector; skipped",
                        {{"kernel", KernelName}, {"dep", D.Dep.label()}});
      continue;
    }
    Deps.push_back(&D);
    Compiled.emplace_back(D.Plan, Env);
  }
  Res.NumInspectors = static_cast<unsigned>(Deps.size());
  Res.Runs.resize(Deps.size());
  for (size_t I = 0; I < Deps.size(); ++I)
    Res.Runs[I].Label = Deps[I]->Dep.label();

  int NT = std::max(1, Opts.NumThreads);
  All.tag("threads", static_cast<int64_t>(NT));

  // Work list: per-thread slices of each inspector's outer loop, so
  // independent inspectors and chunks of one inspector run concurrently.
  std::vector<InspectorChunk> Chunks;
  for (size_t I = 0; I < Compiled.size(); ++I) {
    int64_t Lo = 0, Hi = 0;
    if (NT > 1 && Compiled[I].outerRange(Lo, Hi) && Hi > Lo) {
      int64_t Parts = std::min<int64_t>(NT, Hi - Lo);
      for (int64_t P = 0; P < Parts; ++P)
        Chunks.push_back({I, Lo + (Hi - Lo) * P / Parts,
                          Lo + (Hi - Lo) * (P + 1) / Parts, false, {}, 0, 0});
    } else {
      Chunks.push_back({I, 0, 0, true, {}, 0, 0});
    }
  }

  // Each chunk carries its own span, created on the thread that runs it —
  // under OpenMP the span's tid is the real omp_get_thread_num(), so
  // Chrome traces lay the inspector fleet out on its actual worker lanes.
  static obs::Histogram &ChunkNs = obs::histogram("driver.inspector_chunk_ns");
  auto RunChunk = [&](InspectorChunk &C) {
    obs::Span Sp("driver.inspector", "driver");
    Sp.tag("dep", Res.Runs[C.Insp].Label);
    obs::ScopedLatency Lat(ChunkNs);
    auto TI = Clock::now();
    C.Visits = C.Full ? Compiled[C.Insp].run(C.Edges)
                      : Compiled[C.Insp].runRange(C.Lo, C.Hi, C.Edges);
    C.Seconds = std::chrono::duration<double>(Clock::now() - TI).count();
    Lat.stop();
    Sp.tag("visits", static_cast<int64_t>(C.Visits));
    Sp.tag("edges", static_cast<int64_t>(C.Edges.size()));
  };

  if (NT <= 1) {
    for (InspectorChunk &C : Chunks)
      RunChunk(C);
  } else {
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(NT)
#endif
    for (size_t I = 0; I < Chunks.size(); ++I)
      RunChunk(Chunks[I]);
  }

  // Deterministic merge, chunk order = (inspector, ascending Lo): filter
  // out-of-range endpoints, insert, and reconcile per-run accounting.
  size_t Emitted = 0;
  for (const InspectorChunk &C : Chunks)
    Emitted += C.Edges.size();
  Res.Graph.reserveEdges(Emitted);
  for (InspectorChunk &C : Chunks) {
    InspectorRun &Run = Res.Runs[C.Insp];
    for (const auto &[Src, Dst] : C.Edges)
      if (Src >= 0 && Src < N && Dst >= 0 && Dst < N) {
        Res.Graph.addEdge(Src, Dst);
        ++Run.Edges;
      }
    Run.Visits += C.Visits;
    Run.Seconds += C.Seconds;
  }
  for (const InspectorRun &Run : Res.Runs) {
    TotalVisits.add(Run.Visits);
    TotalEdges.add(Run.Edges);
    Res.InspectorVisits += Run.Visits;
  }
  Res.Graph.finalize();
  Res.Seconds = std::chrono::duration<double>(Clock::now() - T0).count();
  return Res;
}

InspectionResult runInspectors(const deps::PipelineResult &Analysis,
                               const codegen::UFEnvironment &Env, int N,
                               const InspectorOptions &Opts) {
  return runInspectors(Analysis.Kernel.Name, Analysis.Deps, Env, N, Opts);
}

InspectionResult runInspectors(const artifact::CompiledKernel &CK,
                               const codegen::UFEnvironment &Env, int N,
                               const InspectorOptions &Opts) {
  return runInspectors(CK.KernelName, CK.Deps, Env, N, Opts);
}

} // namespace driver
} // namespace sds
