//===- Driver.cpp - End-to-end inspector-executor orchestration -----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/driver/Driver.h"

#include "sds/obs/Trace.h"

#include <chrono>

namespace sds {
namespace driver {

codegen::UFEnvironment bindCSR(const rt::CSRMatrix &A,
                               const std::vector<int> &DiagPos) {
  codegen::UFEnvironment Env;
  Env.bindArray("rowptr", A.RowPtr);
  Env.bindArray("col", A.Col);
  if (!DiagPos.empty())
    Env.bindArray("diag", DiagPos);
  Env.Params["n"] = A.N;
  Env.Params["nnz"] = A.nnz();
  return Env;
}

codegen::UFEnvironment bindCSC(const rt::CSCMatrix &A,
                               const rt::PruneSets *Prune) {
  codegen::UFEnvironment Env;
  Env.bindArray("colptr", A.ColPtr);
  Env.bindArray("rowidx", A.RowIdx);
  if (Prune) {
    Env.bindArray("pruneptr", Prune->Ptr);
    Env.bindArray("pruneset", Prune->ColOf);
  }
  Env.Params["n"] = A.N;
  Env.Params["nnz"] = A.nnz();
  return Env;
}

InspectionResult runInspectors(const deps::PipelineResult &Analysis,
                               const codegen::UFEnvironment &Env, int N) {
  static obs::Counter &TotalVisits = obs::counter("driver.inspector_visits");
  static obs::Counter &TotalEdges = obs::counter("driver.edges_inserted");
  using Clock = std::chrono::steady_clock;
  auto T0 = Clock::now();
  obs::Span All("driver.run_inspectors", "driver");
  All.tag("kernel", Analysis.Kernel.Name);

  InspectionResult Res(N);
  for (const deps::AnalyzedDependence &D : Analysis.Deps) {
    if (D.Status != deps::DepStatus::Runtime || !D.Plan.Valid)
      continue;
    ++Res.NumInspectors;
    InspectorRun Run;
    Run.Label = D.Dep.label();
    obs::Span Sp("driver.inspector", "driver");
    Sp.tag("dep", Run.Label);
    auto TI = Clock::now();
    Run.Visits =
        codegen::runInspector(D.Plan, Env, [&](int64_t Src, int64_t Dst) {
          if (Src >= 0 && Src < N && Dst >= 0 && Dst < N) {
            Res.Graph.addEdge(Src, Dst);
            ++Run.Edges;
          }
        });
    Run.Seconds = std::chrono::duration<double>(Clock::now() - TI).count();
    Sp.tag("visits", static_cast<int64_t>(Run.Visits));
    Sp.tag("edges", static_cast<int64_t>(Run.Edges));
    TotalVisits.add(Run.Visits);
    TotalEdges.add(Run.Edges);
    Res.InspectorVisits += Run.Visits;
    Res.Runs.push_back(std::move(Run));
  }
  Res.Graph.finalize();
  Res.Seconds = std::chrono::duration<double>(Clock::now() - T0).count();
  return Res;
}

} // namespace driver
} // namespace sds
