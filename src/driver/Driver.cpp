//===- Driver.cpp - End-to-end inspector-executor orchestration -----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/driver/Driver.h"

namespace sds {
namespace driver {

codegen::UFEnvironment bindCSR(const rt::CSRMatrix &A,
                               const std::vector<int> &DiagPos) {
  codegen::UFEnvironment Env;
  Env.bindArray("rowptr", A.RowPtr);
  Env.bindArray("col", A.Col);
  if (!DiagPos.empty())
    Env.bindArray("diag", DiagPos);
  Env.Params["n"] = A.N;
  Env.Params["nnz"] = A.nnz();
  return Env;
}

codegen::UFEnvironment bindCSC(const rt::CSCMatrix &A,
                               const rt::PruneSets *Prune) {
  codegen::UFEnvironment Env;
  Env.bindArray("colptr", A.ColPtr);
  Env.bindArray("rowidx", A.RowIdx);
  if (Prune) {
    Env.bindArray("pruneptr", Prune->Ptr);
    Env.bindArray("pruneset", Prune->ColOf);
  }
  Env.Params["n"] = A.N;
  Env.Params["nnz"] = A.nnz();
  return Env;
}

InspectionResult runInspectors(const deps::PipelineResult &Analysis,
                               const codegen::UFEnvironment &Env, int N) {
  InspectionResult Res(N);
  for (const deps::AnalyzedDependence &D : Analysis.Deps) {
    if (D.Status != deps::DepStatus::Runtime || !D.Plan.Valid)
      continue;
    ++Res.NumInspectors;
    Res.InspectorVisits +=
        codegen::runInspector(D.Plan, Env, [&](int64_t Src, int64_t Dst) {
          if (Src >= 0 && Src < N && Dst >= 0 && Dst < N)
            Res.Graph.addEdge(Src, Dst);
        });
  }
  Res.Graph.finalize();
  return Res;
}

} // namespace driver
} // namespace sds
