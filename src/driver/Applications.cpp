//===- Applications.cpp - §10 applications of the analysis ----------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/driver/Applications.h"

#include "sds/deps/Extraction.h"
#include "sds/ir/Simplify.h"

#include <algorithm>

namespace sds {
namespace driver {

std::vector<RaceCheckVerdict>
classifyRaceChecks(const kernels::Kernel &K, const ir::SimplifyOptions &Opts) {
  std::vector<RaceCheckVerdict> Out;
  for (const deps::Dependence &D : deps::extractDependences(K)) {
    RaceCheckVerdict V;
    V.Array = D.Array;
    V.SrcAccess = D.SrcAccess + "@" + D.SrcStmt;
    V.DstAccess = D.DstAccess + "@" + D.DstStmt;
    if (ir::provenUnsatAffineOnly(D.Rel, Opts)) {
      V.NeedsRuntimeCheck = false;
      V.Reason = "affine-unsat";
    } else if (ir::provenUnsat(D.Rel, K.Properties, Opts)) {
      V.NeedsRuntimeCheck = false;
      V.Reason = "property-unsat";
    } else {
      V.NeedsRuntimeCheck = true;
      V.Reason = "possible cross-iteration conflict";
    }
    Out.push_back(std::move(V));
  }
  return Out;
}

double raceCheckSuppressionRatio(const std::vector<RaceCheckVerdict> &Vs) {
  if (Vs.empty())
    return 1.0;
  unsigned Suppressed = 0;
  for (const RaceCheckVerdict &V : Vs)
    Suppressed += V.NeedsRuntimeCheck ? 0 : 1;
  return double(Suppressed) / double(Vs.size());
}

namespace {

/// Shared worklist traversal; `Backward` follows predecessors.
std::vector<int> slice(const rt::DependenceGraph &G,
                       const std::vector<int> &Seeds, bool Backward) {
  int N = G.numNodes();
  std::vector<bool> In(static_cast<size_t>(N), false);
  for (int S : Seeds)
    if (S >= 0 && S < N)
      In[static_cast<size_t>(S)] = true;

  if (Backward) {
    // Edges only point forward (src < dst), so one descending sweep
    // saturates the predecessor closure.
    for (int U = N; U-- > 0;) {
      if (In[static_cast<size_t>(U)])
        continue;
      for (int V : G.successors(U))
        if (In[static_cast<size_t>(V)]) {
          In[static_cast<size_t>(U)] = true;
          break;
        }
    }
  } else {
    for (int U = 0; U < N; ++U) {
      if (!In[static_cast<size_t>(U)])
        continue;
      for (int V : G.successors(U))
        In[static_cast<size_t>(V)] = true;
    }
  }

  std::vector<int> Out;
  for (int U = 0; U < N; ++U)
    if (In[static_cast<size_t>(U)])
      Out.push_back(U);
  return Out;
}

} // namespace

std::vector<int> backwardSlice(const rt::DependenceGraph &G,
                               const std::vector<int> &Targets) {
  return slice(G, Targets, /*Backward=*/true);
}

std::vector<int> forwardSlice(const rt::DependenceGraph &G,
                              const std::vector<int> &Sources) {
  return slice(G, Sources, /*Backward=*/false);
}

} // namespace driver
} // namespace sds
