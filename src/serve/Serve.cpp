//===- Serve.cpp - Admission-controlled concurrent serving ----------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/serve/Serve.h"

#include "sds/guard/Guarded.h"
#include "sds/obs/FlightRecorder.h"
#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace sds {
namespace serve {

const char *outcomeName(Outcome O) {
  switch (O) {
  case Outcome::Warm:
    return "warm";
  case Outcome::Cold:
    return "cold";
  case Outcome::StoreWarm:
    return "store-warm";
  case Outcome::Degraded:
    return "degraded";
  case Outcome::Coalesced:
    return "coalesced";
  case Outcome::ShedQueue:
    return "shed-queue";
  case Outcome::ShedDeadline:
    return "shed-deadline";
  case Outcome::Error:
    return "error";
  }
  return "?";
}

namespace {

/// Singleflight rendezvous: the leader computes, followers block on Done.
struct Inflight {
  std::mutex Mu;
  std::condition_variable CV;
  bool Done = false;
  ServeResponse R;
};

struct QueueItem {
  ServeRequest Req;
  std::promise<ServeResponse> Promise;
  uint64_t EnqueueNs = 0;
  uint64_t AbsDeadlineNs = 0; ///< 0 = none
};

/// Kernel-tier singleflight rendezvous: one leader resolves the kernel
/// (store lookup or compile), followers wait and re-probe the cache.
struct KernelFlight {
  std::mutex Mu;
  std::condition_variable CV;
  bool Done = false;
};

} // namespace

struct Server::Impl {
  ServerOptions Opts;
  engine::Engine Engine;
  std::unique_ptr<store::Store> Store; ///< null when disabled/dead

  std::mutex Mu;
  std::condition_variable WorkCV;  ///< queue has work / stopping
  std::condition_variable DrainCV; ///< queue empty + idle workers
  std::deque<QueueItem> Queue;
  std::map<std::string, std::shared_ptr<Inflight>> InflightMap;
  std::map<std::string, std::shared_ptr<KernelFlight>> KernelInflightMap;
  bool Paused = false;
  bool Stopping = false;
  size_t InService = 0;
  ServerStats Stats;
  std::vector<std::thread> Workers;
  std::vector<uint64_t> GaugeHandles;

  explicit Impl(ServerOptions O) : Opts(std::move(O)), Engine(Opts.Engine) {}

  void bump(uint64_t ServerStats::*F) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++(Stats.*F);
  }

  /// Whether a request is served through the speculated tiers (its own
  /// opt-in, or server-wide via the engine's analysis options).
  bool speculates(const ServeRequest &R) const {
    return R.Speculate || Opts.Engine.Analysis.Speculate;
  }

  /// The matrix-plan identity a request resolves to — also the
  /// singleflight key, so identical cold work coalesces. Speculation is a
  /// key dimension: a speculated request never coalesces onto (or aliases)
  /// a declared-only plan.
  std::string planKey(const ServeRequest &R) const {
    artifact::AnalysisOptions AO =
        artifact::AnalysisOptions::of(Opts.Engine.Analysis);
    AO.Speculate = AO.Speculate || R.Speculate;
    return R.Kernel.Name + "|" + AO.key() + "|" + Opts.Engine.Schedule.key() +
           "|" + std::to_string(engine::fingerprintEnvironment(R.Env)) + "|" +
           std::to_string(R.N);
  }

  static ServeResponse shed(Outcome O, std::string Why) {
    ServeResponse Resp;
    Resp.O = O;
    Resp.St = support::resourceExhausted(std::move(Why));
    return Resp;
  }
};

Server::Server(ServerOptions Opts) : I(std::make_unique<Impl>(std::move(Opts))) {
  I->Paused = I->Opts.StartPaused;
  if (!I->Opts.StoreRoot.empty()) {
    store::StoreOptions SO;
    SO.Root = I->Opts.StoreRoot;
    SO.MaxBytes = I->Opts.StoreMaxBytes;
    auto S = std::make_unique<store::Store>(SO);
    if (S->status().ok()) {
      I->Store = std::move(S);
    } else {
      // A dead store degrades the server to in-memory-only; the Store
      // constructor already flight-recorded why.
      obs::flightRecord(obs::FlightSeverity::Warn, "serve",
                        "persistent store disabled",
                        {{"root", I->Opts.StoreRoot},
                         {"status", S->status().message()}});
    }
  }
  Impl *Raw = I.get();
  I->GaugeHandles.push_back(
      obs::registerGaugeSource("serve.queue_depth", [Raw] {
        std::lock_guard<std::mutex> Lock(Raw->Mu);
        return static_cast<double>(Raw->Queue.size());
      }));
  I->GaugeHandles.push_back(
      obs::registerGaugeSource("serve.in_service", [Raw] {
        std::lock_guard<std::mutex> Lock(Raw->Mu);
        return static_cast<double>(Raw->InService);
      }));
  int W = std::max(1, I->Opts.NumWorkers);
  I->Workers.reserve(static_cast<size_t>(W));
  for (int J = 0; J < W; ++J)
    I->Workers.emplace_back([this] {
      for (;;) {
        QueueItem Item;
        {
          std::unique_lock<std::mutex> Lock(I->Mu);
          I->WorkCV.wait(Lock, [this] {
            return I->Stopping || (!I->Paused && !I->Queue.empty());
          });
          if (I->Stopping)
            return; // queued items are failed explicitly by ~Server
          Item = std::move(I->Queue.front());
          I->Queue.pop_front();
          ++I->InService;
        }
        ServeResponse Resp;
        uint64_t Pickup = obs::nowNs();
        double QueueMs = (Pickup - Item.EnqueueNs) * 1e-6;
        if (Item.AbsDeadlineNs && Pickup >= Item.AbsDeadlineNs) {
          // Deadline-based load shedding: nobody is waiting for this
          // answer anymore; spend the worker on a request that can still
          // make its deadline.
          static obs::Counter &ShedDl = obs::counter("serve.shed_deadline");
          ShedDl.add();
          I->bump(&ServerStats::ShedDeadline);
          obs::flightRecord(obs::FlightSeverity::Warn, "serve",
                            "request shed: deadline expired in queue",
                            {{"kernel", Item.Req.Kernel.Name},
                             {"queue_ms", std::to_string(QueueMs)}});
          Resp = Impl::shed(Outcome::ShedDeadline,
                            "deadline expired while queued (" +
                                std::to_string(QueueMs) + " ms)");
        } else {
          Resp = handle(Item.Req, Item.AbsDeadlineNs);
        }
        Resp.QueueMs = QueueMs;
        static obs::Histogram &QueueNs = obs::histogram("serve.queue_ns");
        QueueNs.record(Pickup - Item.EnqueueNs);
        Item.Promise.set_value(std::move(Resp));
        {
          std::lock_guard<std::mutex> Lock(I->Mu);
          --I->InService;
        }
        I->DrainCV.notify_all();
      }
    });
}

Server::~Server() {
  std::deque<QueueItem> Orphans;
  {
    std::lock_guard<std::mutex> Lock(I->Mu);
    I->Stopping = true;
    Orphans.swap(I->Queue);
  }
  I->WorkCV.notify_all();
  for (std::thread &T : I->Workers)
    T.join();
  // Zero lost requests: everything still queued fails loudly, never by a
  // broken promise.
  for (QueueItem &Item : Orphans) {
    I->bump(&ServerStats::ShedQueue);
    Item.Promise.set_value(
        Impl::shed(Outcome::ShedQueue, "server shutting down"));
  }
  for (uint64_t H : I->GaugeHandles)
    obs::unregisterGaugeSource(H);
}

std::future<ServeResponse> Server::submit(ServeRequest R) {
  static obs::Counter &Submitted = obs::counter("serve.submitted");
  static obs::Counter &Shed = obs::counter("serve.shed_queue");
  Submitted.add();
  I->bump(&ServerStats::Submitted);
  QueueItem Item;
  Item.EnqueueNs = obs::nowNs();
  if (R.DeadlineMs > 0)
    Item.AbsDeadlineNs =
        Item.EnqueueNs + static_cast<uint64_t>(R.DeadlineMs * 1e6);
  Item.Req = std::move(R);
  std::future<ServeResponse> Fut = Item.Promise.get_future();
  {
    std::lock_guard<std::mutex> Lock(I->Mu);
    if (I->Stopping || I->Queue.size() >= I->Opts.MaxQueueDepth) {
      ++I->Stats.ShedQueue;
      Shed.add();
      obs::flightRecord(obs::FlightSeverity::Warn, "serve",
                        I->Stopping ? "request shed: server stopping"
                                    : "request shed: queue at capacity",
                        {{"kernel", Item.Req.Kernel.Name},
                         {"depth", std::to_string(I->Queue.size())}});
      Item.Promise.set_value(Impl::shed(
          Outcome::ShedQueue,
          I->Stopping ? "server shutting down"
                      : "queue at capacity (" +
                            std::to_string(I->Opts.MaxQueueDepth) + ")"));
      return Fut;
    }
    I->Queue.push_back(std::move(Item));
  }
  I->WorkCV.notify_one();
  return Fut;
}

std::vector<std::future<ServeResponse>>
Server::submitBatch(const kernels::Kernel &K, std::vector<BatchItem> Items,
                    double DeadlineMs, bool Speculate) {
  static obs::Counter &Batches = obs::counter("serve.batches");
  static obs::Counter &BatchItems = obs::counter("serve.batch_items");
  Batches.add();
  BatchItems.add(Items.size());
  {
    std::lock_guard<std::mutex> Lock(I->Mu);
    ++I->Stats.Batches;
    I->Stats.BatchItems += Items.size();
  }
  obs::flightRecord(obs::FlightSeverity::Info, "serve", "batch submitted",
                    {{"kernel", K.Name},
                     {"items", std::to_string(Items.size())},
                     {"speculate", Speculate ? "1" : "0"}});
  // Each item is an ordinary request (the same shedding and coalescing
  // rules apply per item); the amortization comes from the kernel-level
  // singleflight in serveCold, which lets N concurrent cold items of one
  // kernel share a single store load or compile.
  std::vector<std::future<ServeResponse>> Futs;
  Futs.reserve(Items.size());
  for (BatchItem &It : Items) {
    ServeRequest R;
    R.Kernel = K;
    R.Env = std::move(It.Env);
    R.N = It.N;
    R.DeadlineMs = DeadlineMs;
    R.Speculate = Speculate;
    Futs.push_back(submit(std::move(R)));
  }
  return Futs;
}

ServeResponse Server::handle(const ServeRequest &R, uint64_t AbsDeadlineNs) {
  static obs::Counter &WarmC = obs::counter("serve.warm");
  static obs::Counter &ColdC = obs::counter("serve.cold");
  static obs::Counter &StoreC = obs::counter("serve.store_warm");
  static obs::Counter &DegradedC = obs::counter("serve.degraded");
  static obs::Counter &CoalescedC = obs::counter("serve.coalesced");
  static obs::Histogram &ServiceNs = obs::histogram("serve.service_ns");
  uint64_t T0 = obs::nowNs();
  auto Finish = [&](ServeResponse Resp) {
    Resp.ServiceMs = (obs::nowNs() - T0) * 1e-6;
    ServiceNs.record(static_cast<uint64_t>(Resp.ServiceMs * 1e6));
    if (Resp.Plan) {
      I->bump(&ServerStats::Completed);
      if (I->speculates(R)) {
        static obs::Counter &SpecC = obs::counter("serve.speculated");
        SpecC.add();
        I->bump(&ServerStats::Speculated);
      }
    } else if (Resp.O == Outcome::Error) {
      I->bump(&ServerStats::Errors);
    }
    return Resp;
  };

  // Plan tier: the common case for steady traffic is a pure memory hit.
  if (std::shared_ptr<const engine::MatrixPlan> P =
          I->Engine.planIfCached(R.Kernel, R.Env, R.N, R.Speculate)) {
    WarmC.add();
    I->bump(&ServerStats::Warm);
    ServeResponse Resp;
    Resp.O = Outcome::Warm;
    Resp.Plan = std::move(P);
    return Finish(std::move(Resp));
  }

  // Singleflight: one leader per plan key; followers wait (bounded by
  // their own deadline) and share the leader's result.
  std::string Key = I->planKey(R);
  std::shared_ptr<Inflight> Entry;
  bool Leader = false;
  {
    std::lock_guard<std::mutex> Lock(I->Mu);
    auto It = I->InflightMap.find(Key);
    if (It == I->InflightMap.end()) {
      Entry = std::make_shared<Inflight>();
      I->InflightMap.emplace(Key, Entry);
      Leader = true;
    } else {
      Entry = It->second;
    }
  }
  if (!Leader) {
    std::unique_lock<std::mutex> Lock(Entry->Mu);
    bool Ready;
    if (AbsDeadlineNs) {
      uint64_t Now = obs::nowNs();
      auto Budget = std::chrono::nanoseconds(
          AbsDeadlineNs > Now ? AbsDeadlineNs - Now : 0);
      Ready = Entry->CV.wait_for(Lock, Budget, [&] { return Entry->Done; });
    } else {
      Entry->CV.wait(Lock, [&] { return Entry->Done; });
      Ready = true;
    }
    if (!Ready) {
      I->bump(&ServerStats::ShedDeadline);
      obs::counter("serve.shed_deadline").add();
      return Finish(Impl::shed(
          Outcome::ShedDeadline,
          "deadline expired waiting on an identical in-flight request"));
    }
    CoalescedC.add();
    I->bump(&ServerStats::Coalesced);
    ServeResponse Resp = Entry->R;
    Resp.O = Outcome::Coalesced;
    return Finish(std::move(Resp));
  }

  ServeResponse Resp = serveCold(R, AbsDeadlineNs);
  switch (Resp.O) {
  case Outcome::Cold:
    ColdC.add();
    I->bump(&ServerStats::Cold);
    break;
  case Outcome::StoreWarm:
    StoreC.add();
    I->bump(&ServerStats::StoreWarm);
    break;
  case Outcome::Degraded:
    DegradedC.add();
    I->bump(&ServerStats::Degraded);
    break;
  default:
    break;
  }
  {
    std::lock_guard<std::mutex> Lock(I->Mu);
    I->InflightMap.erase(Key);
  }
  {
    std::lock_guard<std::mutex> Lock(Entry->Mu);
    Entry->R = Resp;
    Entry->Done = true;
  }
  Entry->CV.notify_all();
  return Finish(std::move(Resp));
}

ServeResponse Server::serveCold(const ServeRequest &R,
                                uint64_t AbsDeadlineNs) {
  if (I->speculates(R)) {
    // Speculative serving: the engine's speculated tiers own the kernel
    // fill (profiler + compile, keyed by the inference fingerprint). The
    // persistent store and budget degradation do not apply here — a
    // speculated artifact is environment-dependent and is not persisted.
    ServeResponse Resp;
    Resp.Plan = I->Engine.plan(R.Kernel, R.Env, R.N, /*Speculate=*/true);
    Resp.O = Outcome::Cold;
    return Resp;
  }
  // Kernel tier: memory -> persistent store -> budgeted cold compile.
  std::shared_ptr<const artifact::CompiledKernel> CK =
      I->Engine.lookupCompiled(R.Kernel);
  bool FromStore = false;
  if (!CK) {
    // Kernel-level singleflight: a batch over N environments misses on N
    // distinct plan keys, but every miss needs the same artifact — one
    // leader resolves it (store or compile), the rest wait here and
    // re-probe the engine cache.
    std::string KKey =
        R.Kernel.Name + "|" +
        artifact::AnalysisOptions::of(I->Opts.Engine.Analysis).key();
    std::shared_ptr<KernelFlight> KF;
    bool KLeader = false;
    {
      std::lock_guard<std::mutex> Lock(I->Mu);
      auto It = I->KernelInflightMap.find(KKey);
      if (It == I->KernelInflightMap.end()) {
        KF = std::make_shared<KernelFlight>();
        I->KernelInflightMap.emplace(KKey, KF);
        KLeader = true;
      } else {
        KF = It->second;
      }
    }
    if (KLeader) {
      std::optional<ServeResponse> Early =
          resolveKernelCold(R, AbsDeadlineNs, CK, FromStore);
      {
        std::lock_guard<std::mutex> Lock(I->Mu);
        I->KernelInflightMap.erase(KKey);
      }
      {
        std::lock_guard<std::mutex> Lock(KF->Mu);
        KF->Done = true;
      }
      KF->CV.notify_all();
      if (Early)
        return std::move(*Early);
    } else {
      {
        std::unique_lock<std::mutex> Lock(KF->Mu);
        if (AbsDeadlineNs) {
          uint64_t Now = obs::nowNs();
          auto Budget = std::chrono::nanoseconds(
              AbsDeadlineNs > Now ? AbsDeadlineNs - Now : 0);
          if (!KF->CV.wait_for(Lock, Budget, [&] { return KF->Done; })) {
            I->bump(&ServerStats::ShedDeadline);
            obs::counter("serve.shed_deadline").add();
            return Impl::shed(
                Outcome::ShedDeadline,
                "deadline expired waiting on the kernel-tier fill");
          }
        } else {
          KF->CV.wait(Lock, [&] { return KF->Done; });
        }
      }
      static obs::Counter &KCoal = obs::counter("serve.kernel_coalesced");
      KCoal.add();
      I->bump(&ServerStats::KernelCoalesced);
      CK = I->Engine.lookupCompiled(R.Kernel);
      // A leader that degraded or failed fills no cache: resolve for
      // ourselves below (rare; each such request degrades on its own
      // budget rather than inheriting the leader's).
      if (!CK) {
        std::optional<ServeResponse> Early =
            resolveKernelCold(R, AbsDeadlineNs, CK, FromStore);
        if (Early)
          return std::move(*Early);
      }
    }
  }

  // Plan tier cold fill (inspectors + schedule) through the engine, so
  // the plan is cached for the steady-state warm path.
  ServeResponse Resp;
  Resp.Plan = I->Engine.plan(R.Kernel, R.Env, R.N);
  Resp.O = FromStore ? Outcome::StoreWarm : Outcome::Cold;
  return Resp;
}

std::optional<ServeResponse> Server::resolveKernelCold(
    const ServeRequest &R, uint64_t AbsDeadlineNs,
    std::shared_ptr<const artifact::CompiledKernel> &CK, bool &FromStore) {
  if (I->Store) {
    std::string SKey = store::Store::keyFor(
        R.Kernel.Name, artifact::AnalysisOptions::of(I->Opts.Engine.Analysis),
        I->Opts.Engine.Schedule);
    artifact::CompiledKernel Loaded;
    bool Found = false;
    // Store failures (corrupt blob, dead store) degrade to a miss; the
    // store quarantines + flight-records, we recompile below.
    if (I->Store->get(SKey, Loaded, Found).ok() && Found) {
      if (I->Engine.installArtifact(std::move(Loaded)).ok()) {
        CK = I->Engine.lookupCompiled(R.Kernel);
        FromStore = CK != nullptr;
      }
    }
  }
  if (!CK) {
    // Cold compile under the request's analysis budget (explicit, or the
    // remaining deadline).
    deps::PipelineOptions PO = I->Opts.Engine.Analysis;
    if (R.AnalysisBudgetMs > 0) {
      PO.AnalysisBudgetMs = R.AnalysisBudgetMs;
    } else if (AbsDeadlineNs) {
      uint64_t Now = obs::nowNs();
      PO.AnalysisBudgetMs =
          AbsDeadlineNs > Now ? (AbsDeadlineNs - Now) * 1e-6 : 0.001;
    }
    artifact::CompiledKernel Fresh = artifact::compile(R.Kernel, PO);
    Fresh.Schedule = I->Opts.Engine.Schedule;
    bool Exhausted = false;
    for (const deps::AnalyzedDependence &D : Fresh.Deps)
      Exhausted |= D.Prov.Stage == "budget-exhausted";
    if (Exhausted) {
      // Graceful degradation: the partially simplified analysis is
      // timing-dependent, so it must never reach a cache; serve this
      // request the correct-by-construction baseline plan instead.
      obs::flightRecord(obs::FlightSeverity::Warn, "serve",
                        "analysis budget exhausted; serving degraded "
                        "baseline plan (not cached)",
                        {{"kernel", R.Kernel.Name},
                         {"budget_ms", std::to_string(PO.AnalysisBudgetMs)}});
      std::vector<deps::AnalyzedDependence> Base =
          guard::baselineDeps(Fresh.Deps);
      for (deps::AnalyzedDependence &D : Base)
        if (D.Status == deps::DepStatus::Runtime) {
          D.Prov.Stage = "degraded-baseline";
          D.Prov.Evidence = {"analysis deadline expired; simplifications "
                             "revoked for this request"};
        }
      auto MP = std::make_shared<engine::MatrixPlan>(R.N);
      MP->Inspection = driver::runInspectors(R.Kernel.Name, Base, R.Env, R.N,
                                             I->Opts.Engine.Inspect);
      rt::ScheduleConfig SC = I->Opts.Engine.Schedule;
      SC.NumThreads = std::max(1, SC.NumThreads);
      MP->Schedule = rt::buildSchedule(MP->Inspection.Graph, SC);
      ServeResponse Resp;
      Resp.O = Outcome::Degraded;
      Resp.Degraded = true;
      Resp.Plan = std::move(MP);
      return Resp;
    }
    // A compile that finished within budget is bit-identical to an
    // unbudgeted one (budgets only weaken results when exhausted), so it
    // is safe to publish to both cache tiers.
    if (support::Status S = I->Engine.installArtifact(Fresh); !S.ok()) {
      ServeResponse Resp;
      Resp.O = Outcome::Error;
      Resp.St = std::move(S).withContext("serve cold fill");
      return Resp;
    }
    if (I->Store)
      if (support::Status S = I->Store->put(Fresh); !S.ok())
        obs::flightRecord(obs::FlightSeverity::Warn, "serve",
                          "persistent store put failed (serving continues)",
                          {{"kernel", R.Kernel.Name},
                           {"status", S.message()}});
    CK = I->Engine.lookupCompiled(R.Kernel);
    if (!CK) {
      ServeResponse Resp;
      Resp.O = Outcome::Error;
      Resp.St = support::internalError(
          "freshly installed artifact missing from the kernel tier");
      return Resp;
    }
  }
  return std::nullopt;
}

void Server::pause() {
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Paused = true;
}

void Server::resume() {
  {
    std::lock_guard<std::mutex> Lock(I->Mu);
    I->Paused = false;
  }
  I->WorkCV.notify_all();
}

void Server::drain() {
  std::unique_lock<std::mutex> Lock(I->Mu);
  I->DrainCV.wait(Lock,
                  [this] { return I->Queue.empty() && I->InService == 0; });
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  return I->Stats;
}

engine::Engine &Server::engine() { return I->Engine; }

store::Store *Server::persistentStore() { return I->Store.get(); }

} // namespace serve
} // namespace sds
