//===- StoreFaults.cpp - Persistent-store corruption campaign -------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/guard/FaultInjection.h"

#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"
#include "sds/store/Store.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace sds {
namespace guard {

namespace {

/// Same splitmix-style position scrambler the other campaigns use, so
/// seeds are decorrelated from their index.
uint64_t scramble(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

std::string readFile(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

bool writeFile(const fs::path &P, const std::string &Bytes) {
  std::ofstream Out(P, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  return Out.good();
}

/// Drive the normal read path and classify what came back against the
/// pristine serialization. Also proves the recompile fallback is viable
/// after a miss: re-put + re-get must serve pristine again.
void probeReadPath(store::Store &S, const std::string &Key,
                   const std::string &PristineBytes,
                   const artifact::CompiledKernel &CK, StoreTrial &T) {
  artifact::CompiledKernel Out;
  bool Found = false;
  if (support::Status St = S.get(Key, Out, Found); !St.ok()) {
    T.Error = St.message();
    return;
  }
  if (Found) {
    if (artifact::serialize(Out) + "\n" == PristineBytes)
      T.ServedPristine = true;
    else
      T.WrongServe = true;
    return;
  }
  T.FellBack = true;
  // The transparent-fallback half of the contract: after the miss the
  // caller recompiles and republishes; the store must accept that and
  // serve it verbatim.
  if (support::Status St = S.put(CK); !St.ok()) {
    T.Error = "fallback republish failed: " + St.message();
    return;
  }
  Found = false;
  if (support::Status St = S.get(Key, Out, Found); !St.ok() || !Found ||
                                                   artifact::serialize(Out) +
                                                           "\n" !=
                                                       PristineBytes)
    T.Error = "fallback reload did not serve the republished artifact";
}

StoreTrial runStoreTrial(const artifact::CompiledKernel &CK,
                         const fs::path &Dir, StoreFaultKind Kind,
                         uint64_t Seed) {
  StoreTrial T;
  T.Kind = Kind;
  T.Seed = Seed;

  store::StoreOptions SO;
  SO.Root = Dir.string();
  store::Store Writer(SO);
  if (!Writer.status().ok() || !Writer.put(CK).ok()) {
    T.Error = "trial setup failed: " + Writer.status().message();
    return T;
  }
  const std::string Key = store::Store::keyFor(CK);
  const fs::path Blob = Writer.blobPath(Key);
  const std::string Pristine = readFile(Blob);
  if (Pristine.size() < 4) {
    T.Error = "trial setup failed: published blob unreadable";
    return T;
  }

  std::error_code EC;
  switch (Kind) {
  case StoreFaultKind::TornWrite: {
    size_t Cut = 1 + scramble(Seed) % (Pristine.size() - 1);
    fs::resize_file(Blob, Cut, EC);
    T.Injected = !EC;
    T.Description = "truncated blob " + std::to_string(Pristine.size()) +
                    " -> " + std::to_string(Cut) + " bytes";
    break;
  }
  case StoreFaultKind::BitFlipAtRest: {
    std::string Bytes = Pristine;
    size_t Pos = scramble(Seed) % Bytes.size();
    unsigned Bit = scramble(Seed ^ 0xabcd) % 8;
    Bytes[Pos] = static_cast<char>(Bytes[Pos] ^ (1u << Bit));
    T.Injected = writeFile(Blob, Bytes);
    T.Description = "flipped bit " + std::to_string(Bit) + " of byte " +
                    std::to_string(Pos);
    break;
  }
  case StoreFaultKind::StaleSchema: {
    // Rewrite the envelope as a future/incompatible build would have:
    // skew the schema version digits. The decoder must refuse rather
    // than guess at field meanings.
    std::string Bytes = Pristine;
    size_t At = Bytes.find("\"schema_version\"");
    if (At != std::string::npos) {
      At = Bytes.find_first_of("0123456789", At);
      size_t End = Bytes.find_first_not_of("0123456789", At);
      Bytes.replace(At, End - At,
                    std::to_string(9000 + scramble(Seed) % 1000));
      T.Injected = writeFile(Blob, Bytes);
      T.Description = "rewrote schema_version to a future value";
    } else {
      T.Description = "schema_version field not found";
    }
    break;
  }
  case StoreFaultKind::QuarantineBlocked: {
    // Corrupt the blob AND make the quarantine move impossible by
    // squatting a regular file on the quarantine path. The store must
    // still degrade the read to a miss (blob left in place, failure
    // flight-recorded) — a blocked quarantine is not license to serve
    // garbage or crash.
    size_t Cut = 1 + scramble(Seed) % (Pristine.size() - 1);
    fs::resize_file(Blob, Cut, EC);
    fs::remove_all(Dir / "quarantine", EC);
    bool Blocked = writeFile(Dir / "quarantine", "not a directory\n");
    T.Injected = Blocked;
    T.Description = "truncated blob to " + std::to_string(Cut) +
                    " bytes with quarantine path blocked";
    break;
  }
  case StoreFaultKind::KillMidWrite: {
    // The on-disk aftermath of a writer killed mid-save: orphaned tmp
    // files (one torn, one complete-but-unpublished). Even seeds also
    // lose the published blob (killed before the first publish); odd
    // seeds keep it (killed during an overwrite). Recovery must sweep
    // the debris and the read path must miss or serve pristine.
    size_t Cut = 1 + scramble(Seed) % (Pristine.size() - 1);
    writeFile(Blob.string() + ".tmp9991", Pristine.substr(0, Cut));
    writeFile(Blob.string() + ".tmp9992", Pristine);
    bool DropPublished = Seed % 2 == 0;
    if (DropPublished)
      fs::remove(Blob, EC);
    T.Injected = true;
    T.Description = std::string("orphaned torn+complete tmp files") +
                    (DropPublished ? ", published blob lost"
                                   : ", published blob intact");
    break;
  }
  }
  if (!T.Injected)
    return T;

  // A fresh Store on the same root is the restart: recovery scan first,
  // then the normal verified read path.
  store::Store Reader(SO);
  if (!Reader.status().ok()) {
    T.Error = "reader store failed to open: " + Reader.status().message();
    return T;
  }
  probeReadPath(Reader, Key, Pristine, CK, T);
  store::StoreStats RS = Reader.stats();
  T.Quarantined = RS.Quarantined > 0;
  T.RecoveredTmp = RS.RecoveredTmp > 0;
  if (Kind == StoreFaultKind::QuarantineBlocked && T.FellBack &&
      RS.QuarantineFailed == 0 && !T.Quarantined)
    T.Error = "quarantine failure was not accounted";
  if (Kind == StoreFaultKind::KillMidWrite && !T.RecoveredTmp)
    T.Error = "recovery scan did not remove orphaned tmp files";
  return T;
}

} // namespace

const char *storeFaultKindName(StoreFaultKind K) {
  switch (K) {
  case StoreFaultKind::TornWrite:
    return "torn_write";
  case StoreFaultKind::BitFlipAtRest:
    return "bit_flip_at_rest";
  case StoreFaultKind::StaleSchema:
    return "stale_schema";
  case StoreFaultKind::QuarantineBlocked:
    return "quarantine_blocked";
  case StoreFaultKind::KillMidWrite:
    return "kill_mid_write";
  }
  return "?";
}

std::vector<StoreFaultKind> allStoreFaultKinds() {
  return {StoreFaultKind::TornWrite, StoreFaultKind::BitFlipAtRest,
          StoreFaultKind::StaleSchema, StoreFaultKind::QuarantineBlocked,
          StoreFaultKind::KillMidWrite};
}

std::string StoreTrial::str() const {
  std::string Out = std::string(storeFaultKindName(Kind)) +
                    "(seed=" + std::to_string(Seed) + "): " + Description +
                    " — ";
  if (!Injected)
    return Out + "no-op" + (Error.empty() ? "" : " (" + Error + ")");
  if (WrongServe)
    return Out + "SILENT WRONG SERVE";
  std::string Verdict = ServedPristine ? "served pristine"
                        : FellBack     ? "fell back to recompile"
                                       : "no verdict";
  if (Quarantined)
    Verdict += ", quarantined";
  if (RecoveredTmp)
    Verdict += ", tmp recovered";
  if (!Error.empty())
    Verdict += " (" + Error + ")";
  return Out + Verdict;
}

unsigned StoreCampaignResult::injected() const {
  unsigned N = 0;
  for (const StoreTrial &T : Trials)
    N += T.Injected ? 1 : 0;
  return N;
}

unsigned StoreCampaignResult::servedPristine() const {
  unsigned N = 0;
  for (const StoreTrial &T : Trials)
    N += T.Injected && T.ServedPristine ? 1 : 0;
  return N;
}

unsigned StoreCampaignResult::fellBack() const {
  unsigned N = 0;
  for (const StoreTrial &T : Trials)
    N += T.Injected && T.FellBack ? 1 : 0;
  return N;
}

unsigned StoreCampaignResult::quarantined() const {
  unsigned N = 0;
  for (const StoreTrial &T : Trials)
    N += T.Injected && T.Quarantined ? 1 : 0;
  return N;
}

unsigned StoreCampaignResult::silentWrongs() const {
  unsigned N = 0;
  for (const StoreTrial &T : Trials)
    N += T.silentWrong() ? 1 : 0;
  return N;
}

bool StoreCampaignResult::allHeld() const {
  for (const StoreTrial &T : Trials)
    if (T.Injected && (!T.contractHeld() || !T.Error.empty()))
      return false;
  return true;
}

std::string StoreCampaignResult::summary() const {
  return std::to_string(Trials.size()) + " trials: " +
         std::to_string(injected()) + " injected, " +
         std::to_string(servedPristine()) + " served-pristine, " +
         std::to_string(fellBack()) + " fell-back, " +
         std::to_string(quarantined()) + " quarantined, " +
         std::to_string(silentWrongs()) + " silent-wrong";
}

StoreCampaignResult runStoreCampaign(const artifact::CompiledKernel &CK,
                                     const std::string &RootDir,
                                     unsigned SeedsPerKind) {
  static obs::Counter &Trials = obs::counter("guard.store_trials");
  static obs::Counter &Silent = obs::counter("guard.store_silent_wrong");
  StoreCampaignResult R;
  std::error_code EC;
  for (StoreFaultKind K : allStoreFaultKinds())
    for (uint64_t Seed = 0; Seed < SeedsPerKind; ++Seed) {
      fs::path Dir = fs::path(RootDir) /
                     (std::string(storeFaultKindName(K)) + "-" +
                      std::to_string(Seed));
      fs::remove_all(Dir, EC);
      StoreTrial T = runStoreTrial(CK, Dir, K, Seed);
      Trials.add();
      if (T.silentWrong())
        Silent.add();
      // Keep the trial directory only when something went wrong, for
      // post-mortem inspection.
      if (T.contractHeld() && T.Error.empty())
        fs::remove_all(Dir, EC);
      R.Trials.push_back(std::move(T));
    }
  return R;
}

} // namespace guard
} // namespace sds
