//===- Guarded.cpp - Validated inspector execution with fallback ----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/guard/Guarded.h"

#include "sds/obs/FlightRecorder.h"
#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"

#include <chrono>

namespace sds {
namespace guard {

const char *guardModeName(GuardMode M) {
  switch (M) {
  case GuardMode::Off:
    return "off";
  case GuardMode::Warn:
    return "warn";
  case GuardMode::Fallback:
    return "fallback";
  }
  return "?";
}

std::optional<GuardMode> parseGuardMode(std::string_view S) {
  if (S == "off")
    return GuardMode::Off;
  if (S == "warn")
    return GuardMode::Warn;
  if (S == "fallback")
    return GuardMode::Fallback;
  return std::nullopt;
}

std::vector<deps::AnalyzedDependence>
baselineDeps(const std::vector<deps::AnalyzedDependence> &Deps) {
  std::vector<deps::AnalyzedDependence> Base = Deps;
  for (deps::AnalyzedDependence &D : Base) {
    if (D.Status == deps::DepStatus::AffineUnsat)
      continue; // refuted with no index-array knowledge — stays sound
    D.Status = deps::DepStatus::Runtime;
    D.Simplified = D.Dep.Rel;
    D.NewEqualities = 0;
    D.SubsumedBy.clear();
    D.Plan = codegen::buildInspectorPlan(D.Dep.Rel);
    D.Approximated = false;
    D.Prov.Stage = "guard-baseline";
    D.Prov.Evidence = {"simplifications revoked: property assumptions are "
                       "not trusted on this input"};
  }
  return Base;
}

deps::PipelineResult baselineAnalysis(const deps::PipelineResult &Analysis) {
  deps::PipelineResult Base = Analysis;
  Base.Deps = baselineDeps(Analysis.Deps);
  return Base;
}

std::string GuardedResult::summary() const {
  std::string Out = "guard: ";
  if (!Validated)
    Out += "validation off";
  else
    Out += Report.summary();
  Out += UsedFallback ? " -> baseline fallback" : " -> simplified inspectors";
  if (Verified)
    Out += VerifyPassed ? " (verify: pass)"
                        : " (verify: FAIL — " + VerifyDetail + ")";
  return Out;
}

GuardedResult runGuarded(const std::string &KernelName,
                         const std::vector<deps::AnalyzedDependence> &Deps,
                         const ir::PropertySet &PS,
                         const codegen::UFEnvironment &Env, int N,
                         const GuardedOptions &Opts) {
  static obs::Counter &Runs = obs::counter("guard.runs");
  static obs::Counter &TrustedRuns = obs::counter("guard.trusted");
  static obs::Counter &Fallbacks = obs::counter("guard.fallbacks");
  static obs::Counter &Warned = obs::counter("guard.warned_untrusted");
  static obs::Counter &VerifyFails = obs::counter("guard.verify_failures");
  static obs::Histogram &RunNs = obs::histogram("guard.run_ns");
  Runs.add();
  obs::ScopedLatency RunLat(RunNs);
  obs::Span Sp("guard.run_guarded", "guard");
  Sp.tag("kernel", KernelName);
  Sp.tag("mode", guardModeName(Opts.Mode));
  auto T0 = std::chrono::steady_clock::now();

  GuardedResult R(N);

  if (Opts.Mode != GuardMode::Off) {
    R.Validated = true;
    R.Report = validateProperties(PS, Env);
    R.Trusted = R.Report.trusted();
    if (R.Trusted)
      TrustedRuns.add();
    else if (Opts.Mode == GuardMode::Warn)
      Warned.add();
    if (!R.Trusted)
      obs::flightRecord(obs::FlightSeverity::Warn, "guard",
                        "property validation revoked trust",
                        {{"kernel", KernelName},
                         {"mode", guardModeName(Opts.Mode)},
                         {"report", R.Report.summary()}});
  } else {
    R.Trusted = true; // blind trust by request
  }

  // Anything short of a full pass revokes trust: a Failed check is a
  // concrete counterexample, a Skipped/Exhausted one means the property
  // was never confirmed.
  R.UsedFallback = Opts.Mode == GuardMode::Fallback && !R.Trusted;

  std::optional<std::vector<deps::AnalyzedDependence>> Base;
  if (R.UsedFallback || Opts.Verify)
    Base.emplace(baselineDeps(Deps));

  if (R.UsedFallback) {
    Fallbacks.add();
    obs::flightRecord(obs::FlightSeverity::Warn, "guard",
                      "falling back to baseline inspectors",
                      {{"kernel", KernelName}});
    R.Inspection = driver::runInspectors(KernelName, *Base, Env, N,
                                         Opts.Inspect);
  } else {
    R.Inspection = driver::runInspectors(KernelName, Deps, Env, N,
                                         Opts.Inspect);
  }

  if (Opts.Verify && N <= Opts.VerifyMaxN) {
    R.Verified = true;
    // Ground truth: the baseline graph over the same bound arrays. The
    // schedule the executor would follow — built from the graph actually
    // in use — must respect every baseline dependence.
    driver::InspectionResult BaseRun =
        R.UsedFallback ? R.Inspection
                       : driver::runInspectors(KernelName, *Base, Env, N,
                                               Opts.Inspect);
    rt::WavefrontSchedule Sched = rt::scheduleLevelSets(
        R.Inspection.Graph, std::max(1, Opts.VerifyThreads));
    R.VerifyPassed = Sched.respects(BaseRun.Graph);
    if (!R.VerifyPassed) {
      VerifyFails.add();
      obs::flightRecord(obs::FlightSeverity::Error, "guard",
                        "verification failed: schedule violates baseline "
                        "dependence graph",
                        {{"kernel", KernelName}});
      R.VerifyDetail = "schedule from the " +
                       std::string(R.UsedFallback ? "baseline" : "simplified") +
                       " graph (" + std::to_string(R.Inspection.Graph.numEdges()) +
                       " edges) violates the baseline graph (" +
                       std::to_string(BaseRun.Graph.numEdges()) + " edges)";
    }
  }

  R.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  Sp.tag("trusted", static_cast<int64_t>(R.Trusted));
  Sp.tag("fallback", static_cast<int64_t>(R.UsedFallback));
  return R;
}

GuardedResult runGuarded(const deps::PipelineResult &Analysis,
                         const ir::PropertySet &PS,
                         const codegen::UFEnvironment &Env, int N,
                         const GuardedOptions &Opts) {
  return runGuarded(Analysis.Kernel.Name, Analysis.Deps, PS, Env, N, Opts);
}

GuardedResult runGuarded(const artifact::CompiledKernel &CK,
                         const codegen::UFEnvironment &Env, int N,
                         const GuardedOptions &Opts) {
  return runGuarded(CK.KernelName, CK.Deps, CK.Properties, Env, N, Opts);
}

} // namespace guard
} // namespace sds
