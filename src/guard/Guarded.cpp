//===- Guarded.cpp - Validated inspector execution with fallback ----------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/guard/Guarded.h"

#include "sds/obs/FlightRecorder.h"
#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"

#include <chrono>

namespace sds {
namespace guard {

const char *guardModeName(GuardMode M) {
  switch (M) {
  case GuardMode::Off:
    return "off";
  case GuardMode::Warn:
    return "warn";
  case GuardMode::Fallback:
    return "fallback";
  }
  return "?";
}

std::optional<GuardMode> parseGuardMode(std::string_view S) {
  if (S == "off")
    return GuardMode::Off;
  if (S == "warn")
    return GuardMode::Warn;
  if (S == "fallback")
    return GuardMode::Fallback;
  return std::nullopt;
}

namespace {

/// An unsat-core label minus its application-mode suffix
/// (" [contrapositive]", " [contra]", ...): the base the runtime checker
/// reports in PropertyCheck::Base.
std::string labelBase(const std::string &L) {
  size_t P = L.find(" [");
  return P == std::string::npos ? L : L.substr(0, P);
}

/// functional_consistency(f) assertions hold unconditionally (f(x)==f(x)
/// regardless of array contents), so they never need runtime validation.
bool needsValidation(const std::string &Base) {
  return Base.rfind("functional_consistency(", 0) != 0;
}

/// The union of assertion bases cited by the per-dependence unsat cores.
/// `AllHaveCores` is the soundness gate for core-directed validation: a
/// single dependence without a core (pre-core artifact) means unknown
/// provenance and forces full validation.
struct CoreUnion {
  bool AllHaveCores = true;
  std::set<std::string> Bases;
};

CoreUnion collectCitedBases(const std::vector<deps::AnalyzedDependence> &Deps) {
  CoreUnion U;
  for (const deps::AnalyzedDependence &D : Deps) {
    if (!D.HasCore) {
      U.AllHaveCores = false;
      continue;
    }
    for (const std::string &L : D.Core.Assertions) {
      if (!L.empty() && L[0] == '\x01') {
        // Unattributed sentinel leaked into a core — treat the dependence
        // as core-less rather than trust an incomplete citation list.
        U.AllHaveCores = false;
        continue;
      }
      std::string B = labelBase(L);
      if (needsValidation(B))
        U.Bases.insert(std::move(B));
    }
  }
  return U;
}

/// Does this dependence's core cite any base in `Bad`?
bool coreCites(const deps::AnalyzedDependence &D,
               const std::set<std::string> &Bad) {
  for (const std::string &L : D.Core.Assertions)
    if (Bad.count(labelBase(L)))
      return true;
  return false;
}

/// The function names behind failed `domain_range(fn)` bases. Domain/range
/// facts are baked into every UF instantiation rather than asserted per
/// proof, so a core legitimately under-cites them — attribution has to be
/// structural instead.
std::set<std::string> badDomainFns(const std::set<std::string> &Bad) {
  std::set<std::string> Fns;
  static constexpr std::string_view Prefix = "domain_range(";
  for (const std::string &B : Bad)
    if (B.size() > Prefix.size() + 1 && B.compare(0, Prefix.size(), Prefix) == 0 &&
        B.back() == ')')
      Fns.insert(B.substr(Prefix.size(), B.size() - Prefix.size() - 1));
  return Fns;
}

/// Does the dependence's original or simplified relation apply any function
/// in `Fns`? Its generated inspector evaluates those calls assuming the
/// declared domain/range contract, so a broken contract poisons the plan
/// even when no cited assertion names the function.
bool appliesFunction(const deps::AnalyzedDependence &D,
                     const std::set<std::string> &Fns) {
  if (Fns.empty())
    return false;
  for (const ir::SparseRelation *Rel : {&D.Dep.Rel, &D.Simplified})
    for (const ir::Atom &A : Rel->Conj.collectCalls())
      if (Fns.count(A.Name))
        return true;
  return false;
}

} // namespace

std::set<std::string>
citedAssertionBases(const std::vector<deps::AnalyzedDependence> &Deps,
                    bool *AllHaveCores) {
  CoreUnion U = collectCitedBases(Deps);
  if (AllHaveCores)
    *AllHaveCores = U.AllHaveCores;
  return std::move(U.Bases);
}

deps::AnalyzedDependence baselineOne(const deps::AnalyzedDependence &In) {
  deps::AnalyzedDependence D = In;
  if (D.Status == deps::DepStatus::AffineUnsat)
    return D; // refuted with no index-array knowledge — stays sound
  D.Status = deps::DepStatus::Runtime;
  D.Simplified = D.Dep.Rel;
  D.NewEqualities = 0;
  D.SubsumedBy.clear();
  D.Plan = codegen::buildInspectorPlan(D.Dep.Rel);
  D.Approximated = false;
  D.Prov.Stage = "guard-baseline";
  D.Prov.Evidence = {"simplifications revoked: property assumptions are "
                     "not trusted on this input"};
  // The baseline plan enumerates the original relation: nothing about it
  // depends on any property, so its core is positively empty.
  D.Core = {};
  D.HasCore = true;
  return D;
}

std::vector<deps::AnalyzedDependence>
baselineDeps(const std::vector<deps::AnalyzedDependence> &Deps) {
  std::vector<deps::AnalyzedDependence> Base;
  Base.reserve(Deps.size());
  for (const deps::AnalyzedDependence &D : Deps)
    Base.push_back(baselineOne(D));
  return Base;
}

deps::PipelineResult baselineAnalysis(const deps::PipelineResult &Analysis) {
  deps::PipelineResult Base = Analysis;
  Base.Deps = baselineDeps(Analysis.Deps);
  return Base;
}

std::string GuardedResult::summary() const {
  std::string Out = "guard: ";
  if (!Validated)
    Out += "validation off";
  else
    Out += Report.summary();
  if (SelectiveValidation)
    Out += " [core-directed: " + std::to_string(PropsValidated) +
           " checked, " + std::to_string(PropsSkipped) + " uncited]";
  if (RemediesChecked)
    Out += " [remedies: " + std::to_string(RemediesChecked) + " checked, " +
           std::to_string(RemediesFailed) + " failed]";
  if (!UsedFallback)
    Out += " -> simplified inspectors";
  else if (DepsRevoked > 0)
    Out += " -> revoked " + std::to_string(DepsRevoked) + " dependence(s)";
  else
    Out += " -> baseline fallback";
  if (Verified)
    Out += VerifyPassed ? " (verify: pass)"
                        : " (verify: FAIL — " + VerifyDetail + ")";
  return Out;
}

GuardedResult runGuarded(const std::string &KernelName,
                         const std::vector<deps::AnalyzedDependence> &Deps,
                         const ir::PropertySet &PS,
                         const codegen::UFEnvironment &Env, int N,
                         const GuardedOptions &Opts) {
  static obs::Counter &Runs = obs::counter("guard.runs");
  static obs::Counter &TrustedRuns = obs::counter("guard.trusted");
  static obs::Counter &Fallbacks = obs::counter("guard.fallbacks");
  static obs::Counter &Warned = obs::counter("guard.warned_untrusted");
  static obs::Counter &VerifyFails = obs::counter("guard.verify_failures");
  static obs::Counter &Revoked = obs::counter("guard.deps_revoked");
  static obs::Histogram &RunNs = obs::histogram("guard.run_ns");
  Runs.add();
  obs::ScopedLatency RunLat(RunNs);
  obs::Span Sp("guard.run_guarded", "guard");
  Sp.tag("kernel", KernelName);
  Sp.tag("mode", guardModeName(Opts.Mode));
  auto T0 = std::chrono::steady_clock::now();

  GuardedResult R(N);

  unsigned DeclCount = static_cast<unsigned>(PS.properties().size() +
                                             PS.domainRanges().size());
  for (const deps::AnalyzedDependence &D : Deps)
    R.DepsRemediable += D.Remediable ? 1 : 0;

  CoreUnion Cited = collectCitedBases(Deps);

  // The remedy set: every *Inferred*-tier base the analysis leans on.
  // With complete cores that is the inferred slice of the cited union;
  // without them citation is unknowable, so every inferred declaration is
  // a remedy. Speculation is validated in every guard mode — Off included.
  std::set<std::string> RemedyBases;
  if (Cited.AllHaveCores) {
    for (const std::string &B : Cited.Bases) {
      auto T = PS.tierForLabelBase(B);
      if (T && *T == ir::PropertyTier::Inferred)
        RemedyBases.insert(B);
    }
  } else {
    for (const ir::IndexArrayProperty &P : PS.properties())
      if (P.Tier == ir::PropertyTier::Inferred)
        RemedyBases.insert(propertyLabelBase(P));
  }
  // Inferred domain/range declarations are remedies whether or not any
  // core cites them: instantiation bakes domain and range facts into every
  // UF encoding, and every generated inspector evaluates UF calls assuming
  // those bounds, so a proof can lean on an inferred bound without the
  // Farkas core ever naming it. Declared-tier declarations stay
  // citation-gated — they are knowledge, not speculation.
  for (const ir::DomainRangeDecl &D : PS.domainRanges())
    if (D.Tier == ir::PropertyTier::Inferred)
      RemedyBases.insert(propertyLabelBase(D));

  if (Opts.Mode != GuardMode::Off) {
    R.Validated = true;
    if (Cited.AllHaveCores) {
      // Every dependence carries a proof core: a property cited by none of
      // them influenced no verdict or rewrite, so only the union of cited
      // bases needs checking (ISSUE: the minimal trust base).
      R.SelectiveValidation = true;
      std::set<std::string> ToCheck = Cited.Bases;
      ToCheck.insert(RemedyBases.begin(), RemedyBases.end());
      R.Report = validateProperties(PS, Env, ToCheck);
    } else {
      R.Report = validateProperties(PS, Env);
    }
    R.PropsValidated = static_cast<unsigned>(R.Report.Checks.size());
    R.PropsSkipped = DeclCount - R.PropsValidated;
    R.Trusted = R.Report.trusted();
    if (R.Trusted)
      TrustedRuns.add();
    else if (Opts.Mode == GuardMode::Warn)
      Warned.add();
    if (!R.Trusted)
      obs::flightRecord(obs::FlightSeverity::Warn, "guard",
                        "property validation revoked trust",
                        {{"kernel", KernelName},
                         {"mode", guardModeName(Opts.Mode)},
                         {"report", R.Report.summary()}});
  } else if (!RemedyBases.empty()) {
    // Mode Off still validates remedies: an inferred property is
    // speculation, and speculation is never trusted blindly.
    R.Validated = true;
    R.SelectiveValidation = Cited.AllHaveCores;
    R.Report = validateProperties(PS, Env, RemedyBases);
    R.PropsValidated = static_cast<unsigned>(R.Report.Checks.size());
    R.PropsSkipped = DeclCount - R.PropsValidated;
    R.Trusted = R.Report.trusted();
    if (!R.Trusted)
      obs::flightRecord(obs::FlightSeverity::Warn, "guard",
                        "remedy validation failed with guarding off",
                        {{"kernel", KernelName},
                         {"report", R.Report.summary()}});
  } else {
    R.Trusted = true; // blind trust by request
  }

  // Remedy verdicts: which inferred-tier bases were checked, and which of
  // those did not pass.
  static obs::Counter &RemedyChecks = obs::counter("guard.remedies_checked");
  static obs::Counter &RemedyFails = obs::counter("guard.remedies_failed");
  std::set<std::string> BadRemedies;
  for (const PropertyCheck &C : R.Report.Checks) {
    if (!RemedyBases.count(C.Base))
      continue;
    ++R.RemediesChecked;
    if (C.Outcome != CheckOutcome::Pass) {
      ++R.RemediesFailed;
      BadRemedies.insert(C.Base);
    }
  }
  RemedyChecks.add(R.RemediesChecked);
  RemedyFails.add(R.RemediesFailed);

  // Anything short of a full pass revokes trust: a Failed check is a
  // concrete counterexample, a Skipped/Exhausted one means the property
  // was never confirmed. With per-dependence cores the revocation is
  // surgical — only the dependences citing an unconfirmed base lose their
  // simplifications; without cores the whole world reverts.
  bool Untrusted = Opts.Mode == GuardMode::Fallback && !R.Trusted;
  bool FullFallback = Untrusted && !R.SelectiveValidation;
  // Misspeculation without complete cores cannot be attributed to specific
  // dependences, so it degenerates to the whole-analysis baseline — in
  // every mode, because a failed remedy must never run its plan.
  if (!BadRemedies.empty() && !Cited.AllHaveCores)
    FullFallback = true;

  // The per-dependence revocation set. Under Fallback with cores that is
  // every non-Pass base (declared or inferred); in Warn/Off modes only
  // failed *remedies* revoke — declared-tier failures stay warnings there,
  // but speculation is never allowed to run misspeculated plans.
  std::set<std::string> Bad;
  if (Untrusted && R.SelectiveValidation) {
    for (const PropertyCheck &C : R.Report.Checks)
      if (C.Outcome != CheckOutcome::Pass)
        Bad.insert(C.Base);
  } else if (!FullFallback && Cited.AllHaveCores) {
    Bad = BadRemedies;
  }

  // Failed domain/range bases revoke structurally (every dependence whose
  // relation applies the out-of-contract function), because cores
  // legitimately under-cite them — see badDomainFns().
  std::set<std::string> BadFns = badDomainFns(Bad);

  std::vector<deps::AnalyzedDependence> Working;
  const std::vector<deps::AnalyzedDependence> *Run = &Deps;
  if (!Bad.empty()) {
    Working = Deps;
    for (deps::AnalyzedDependence &D : Working) {
      if (D.Status == deps::DepStatus::AffineUnsat ||
          (!coreCites(D, Bad) && !appliesFunction(D, BadFns)))
        continue;
      // Nothing to revoke on a dependence the pipeline never simplified —
      // its plan already enumerates the original relation.
      if (D.Status == deps::DepStatus::Runtime && D.NewEqualities == 0 &&
          D.SubsumedBy.empty() && !D.Approximated)
        continue;
      D = baselineOne(D);
      ++R.DepsRevoked;
    }
    Revoked.add(R.DepsRevoked);
    Run = &Working;
    obs::flightRecord(obs::FlightSeverity::Warn, "guard",
                      "core-directed revocation of simplified inspectors",
                      {{"kernel", KernelName},
                       {"revoked", std::to_string(R.DepsRevoked)},
                       {"of", std::to_string(Deps.size())}});
  }
  R.UsedFallback = FullFallback || R.DepsRevoked > 0;

  std::optional<std::vector<deps::AnalyzedDependence>> Base;
  if (FullFallback || Opts.Verify)
    Base.emplace(baselineDeps(Deps));

  if (FullFallback) {
    Fallbacks.add();
    obs::flightRecord(obs::FlightSeverity::Warn, "guard",
                      "falling back to baseline inspectors",
                      {{"kernel", KernelName}});
    R.Inspection = driver::runInspectors(KernelName, *Base, Env, N,
                                         Opts.Inspect);
  } else {
    R.Inspection = driver::runInspectors(KernelName, *Run, Env, N,
                                         Opts.Inspect);
  }

  if (Opts.Verify && N <= Opts.VerifyMaxN) {
    R.Verified = true;
    // Ground truth: the baseline graph over the same bound arrays. The
    // schedule the executor would follow — built from the graph actually
    // in use — must respect every baseline dependence. A partially
    // revoked run is NOT the baseline, so it is cross-checked like the
    // simplified one.
    driver::InspectionResult BaseRun =
        FullFallback ? R.Inspection
                     : driver::runInspectors(KernelName, *Base, Env, N,
                                             Opts.Inspect);
    rt::WavefrontSchedule Sched = rt::scheduleLevelSets(
        R.Inspection.Graph, std::max(1, Opts.VerifyThreads));
    R.VerifyPassed = Sched.respects(BaseRun.Graph);
    if (!R.VerifyPassed) {
      VerifyFails.add();
      obs::flightRecord(obs::FlightSeverity::Error, "guard",
                        "verification failed: schedule violates baseline "
                        "dependence graph",
                        {{"kernel", KernelName}});
      R.VerifyDetail = "schedule from the " +
                       std::string(FullFallback ? "baseline"
                                   : R.DepsRevoked > 0 ? "partially revoked"
                                                       : "simplified") +
                       " graph (" + std::to_string(R.Inspection.Graph.numEdges()) +
                       " edges) violates the baseline graph (" +
                       std::to_string(BaseRun.Graph.numEdges()) + " edges)";
    }
  }

  R.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  Sp.tag("trusted", static_cast<int64_t>(R.Trusted));
  Sp.tag("fallback", static_cast<int64_t>(R.UsedFallback));
  Sp.tag("selective", static_cast<int64_t>(R.SelectiveValidation));
  Sp.tag("revoked", static_cast<int64_t>(R.DepsRevoked));
  return R;
}

GuardedResult runGuarded(const deps::PipelineResult &Analysis,
                         const ir::PropertySet &PS,
                         const codegen::UFEnvironment &Env, int N,
                         const GuardedOptions &Opts) {
  return runGuarded(Analysis.Kernel.Name, Analysis.Deps, PS, Env, N, Opts);
}

GuardedResult runGuarded(const artifact::CompiledKernel &CK,
                         const codegen::UFEnvironment &Env, int N,
                         const GuardedOptions &Opts) {
  return runGuarded(CK.KernelName, CK.Deps, CK.Properties, Env, N, Opts);
}

} // namespace guard
} // namespace sds
