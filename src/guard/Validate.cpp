//===- Validate.cpp - Runtime validation of index-array properties --------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/guard/Validate.h"

#include "sds/obs/FlightRecorder.h"
#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

namespace sds {
namespace guard {

using ir::Expr;
using ir::PropertyKind;

const char *checkOutcomeName(CheckOutcome O) {
  switch (O) {
  case CheckOutcome::Pass:
    return "pass";
  case CheckOutcome::Fail:
    return "FAIL";
  case CheckOutcome::Skipped:
    return "skipped";
  case CheckOutcome::Exhausted:
    return "exhausted";
  }
  return "?";
}

std::string PropertyCheck::str() const {
  std::string Out = "[" + std::string(checkOutcomeName(Outcome)) + "] " +
                    Property;
  if (!Detail.empty())
    Out += ": " + Detail;
  return Out;
}

bool ValidationReport::trusted() const {
  for (const PropertyCheck &C : Checks)
    if (C.Outcome != CheckOutcome::Pass)
      return false;
  return true;
}

bool ValidationReport::violated() const { return failures() > 0; }

unsigned ValidationReport::failures() const {
  unsigned N = 0;
  for (const PropertyCheck &C : Checks)
    N += C.Outcome == CheckOutcome::Fail ? 1 : 0;
  return N;
}

const PropertyCheck *ValidationReport::firstViolation() const {
  for (const PropertyCheck &C : Checks)
    if (C.Outcome == CheckOutcome::Fail)
      return &C;
  return nullptr;
}

std::string ValidationReport::str() const {
  std::string Out;
  for (const PropertyCheck &C : Checks)
    Out += C.str() + "\n";
  return Out;
}

std::string ValidationReport::summary() const {
  unsigned Pass = 0, Fail = 0, Other = 0;
  for (const PropertyCheck &C : Checks) {
    if (C.Outcome == CheckOutcome::Pass)
      ++Pass;
    else if (C.Outcome == CheckOutcome::Fail)
      ++Fail;
    else
      ++Other;
  }
  std::string Out = std::to_string(Checks.size()) + " checks: " +
                    std::to_string(Pass) + " pass";
  if (Fail) {
    Out += ", " + std::to_string(Fail) + " fail";
    if (const PropertyCheck *V = firstViolation())
      Out += " (" + V->Property + ")";
  }
  if (Other)
    Out += ", " + std::to_string(Other) + " unchecked";
  return Out;
}

namespace {

/// Evaluate a parameter-only affine expression (guards, domain bounds:
/// things like `n`, `nnz - 1`, `0`). UF calls or unbound variables make
/// it unevaluable.
std::optional<int64_t> evalParamExpr(const Expr &E,
                                     const codegen::UFEnvironment &Env) {
  int64_t V = E.constant();
  for (const Expr::Term &T : E.terms()) {
    if (!T.A.isVar())
      return std::nullopt;
    auto It = Env.Params.find(T.A.Name);
    if (It == Env.Params.end())
      return std::nullopt;
    V += T.Coeff * It->second;
  }
  return V;
}

/// One property check in progress: bounds-checked array access, work
/// accounting, and first-violation capture.
class Checker {
public:
  Checker(std::string Property, std::string Array, std::string Base,
          uint64_t WorkCap)
      : WorkCap(WorkCap) {
    C.Property = std::move(Property);
    C.Array = std::move(Array);
    C.Base = std::move(Base);
    C.Outcome = CheckOutcome::Pass;
    C.Severity = CheckSeverity::Info;
  }

  /// Count one examined position; false once the cap is hit.
  bool step() {
    ++C.Positions;
    if (C.Positions <= WorkCap)
      return true;
    if (C.Outcome == CheckOutcome::Pass) {
      C.Outcome = CheckOutcome::Exhausted;
      C.Severity = CheckSeverity::Warning;
      C.Detail = "work cap (" + std::to_string(WorkCap) +
                 " positions) hit before a verdict";
    }
    return false;
  }

  void fail(int64_t I, int64_t J, std::string Detail) {
    C.Outcome = CheckOutcome::Fail;
    C.Severity = CheckSeverity::Error;
    C.Index = I;
    C.Index2 = J;
    C.Detail = std::move(Detail);
  }

  void skip(std::string Why) {
    C.Outcome = CheckOutcome::Skipped;
    C.Severity = CheckSeverity::Warning;
    C.Detail = std::move(Why);
  }

  bool failed() const { return C.Outcome == CheckOutcome::Fail; }
  PropertyCheck take() { return std::move(C); }

private:
  PropertyCheck C;
  uint64_t WorkCap;
};

/// A bound array as a sized span; nullptr data when unbound.
struct ArrayRef {
  const int *Data = nullptr;
  int64_t Size = 0;

  bool bound() const { return Data != nullptr; }
  bool inRange(int64_t I) const { return I >= 0 && I < Size; }
  int64_t operator[](int64_t I) const { return Data[I]; }
};

ArrayRef lookup(const codegen::UFEnvironment &Env, const std::string &Name) {
  auto It = Env.Spans.find(Name);
  if (It == Env.Spans.end() || !It->second)
    return {};
  return {It->second->data(), static_cast<int64_t>(It->second->size())};
}

std::string at(const std::string &A, int64_t I, int64_t V) {
  return A + "[" + std::to_string(I) + "]=" + std::to_string(V);
}

/// Adjacent-pair comparison checks (the four monotonicity kinds).
void checkAdjacent(Checker &Ck, const std::string &Name, ArrayRef F,
                   PropertyKind K) {
  for (int64_t I = 0; I + 1 < F.Size; ++I) {
    if (!Ck.step())
      return;
    int64_t A = F[I], B = F[I + 1];
    bool Ok = true;
    const char *Rel = "";
    switch (K) {
    case PropertyKind::MonotonicIncreasing:
      Ok = A <= B;
      Rel = ">";
      break;
    case PropertyKind::StrictMonotonicIncreasing:
      Ok = A < B;
      Rel = ">=";
      break;
    case PropertyKind::MonotonicDecreasing:
      Ok = A >= B;
      Rel = "<";
      break;
    case PropertyKind::StrictMonotonicDecreasing:
      Ok = A > B;
      Rel = "<=";
      break;
    default:
      return;
    }
    if (!Ok) {
      Ck.fail(I, I + 1,
              at(Name, I, A) + " " + Rel + " " + at(Name, I + 1, B));
      return;
    }
  }
}

void checkInjective(Checker &Ck, const std::string &Name, ArrayRef F) {
  std::unordered_map<int64_t, int64_t> FirstAt;
  FirstAt.reserve(static_cast<size_t>(F.Size));
  for (int64_t I = 0; I < F.Size; ++I) {
    if (!Ck.step())
      return;
    auto [It, Inserted] = FirstAt.emplace(F[I], I);
    if (!Inserted) {
      Ck.fail(It->second, I,
              at(Name, It->second, F[I]) + " == " + at(Name, I, F[I]));
      return;
    }
  }
}

/// PeriodicMonotonic: strictly increasing within each segment window
/// [Seg(x), Seg(x+1)). A window that leaves the array is itself a
/// violation — the inspector would probe those positions.
void checkPeriodicMonotonic(Checker &Ck, const std::string &FName, ArrayRef F,
                            const std::string &SName, ArrayRef Seg) {
  for (int64_t X = 0; X + 1 < Seg.Size; ++X) {
    if (!Ck.step())
      return;
    int64_t Lo = Seg[X], Hi = Seg[X + 1];
    if (Lo >= Hi)
      continue; // empty (or inverted — monotonicity checks flag that)
    if (Lo < 0 || Hi > F.Size) {
      Ck.fail(X, -1,
              "segment " + std::to_string(X) + " spans [" +
                  std::to_string(Lo) + ", " + std::to_string(Hi) +
                  ") outside " + FName + "[0, " + std::to_string(F.Size) +
                  ") (" + SName + " corrupt?)");
      return;
    }
    for (int64_t K = Lo; K + 1 < Hi; ++K) {
      if (!Ck.step())
        return;
      if (!(F[K] < F[K + 1])) {
        Ck.fail(K, K + 1,
                "within segment " + std::to_string(X) + ": " +
                    at(FName, K, F[K]) + " >= " + at(FName, K + 1, F[K + 1]));
        return;
      }
    }
  }
}

void checkCoMonotonic(Checker &Ck, const std::string &FName, ArrayRef F,
                      const std::string &OName, ArrayRef O) {
  for (int64_t X = 0; X < F.Size; ++X) {
    if (!Ck.step())
      return;
    if (!O.inRange(X)) {
      Ck.fail(X, -1, OName + " has no position " + std::to_string(X));
      return;
    }
    if (!(F[X] <= O[X])) {
      Ck.fail(X, -1, at(FName, X, F[X]) + " > " + at(OName, X, O[X]));
      return;
    }
  }
}

/// Table-1 Triangular: forall x0, x1: f(x0) < x1 => x0 < Other(x1).
/// Violated at x1 iff some x0 >= Other(x1) has f(x0) < x1; a suffix-min
/// over f answers that in O(1) per x1.
void checkTriangular(Checker &Ck, const std::string &FName, ArrayRef F,
                     const std::string &OName, ArrayRef O) {
  std::vector<int64_t> SuffMin(static_cast<size_t>(F.Size) + 1, INT64_MAX);
  for (int64_t I = F.Size - 1; I >= 0; --I)
    SuffMin[static_cast<size_t>(I)] =
        std::min(SuffMin[static_cast<size_t>(I) + 1], F[I]);
  for (int64_t X1 = 0; X1 < O.Size; ++X1) {
    if (!Ck.step())
      return;
    int64_t Start = std::clamp<int64_t>(O[X1], 0, F.Size);
    if (SuffMin[static_cast<size_t>(Start)] < X1) {
      // Rescan for the witness index (only on the failure path).
      for (int64_t X0 = Start; X0 < F.Size; ++X0)
        if (F[X0] < X1) {
          Ck.fail(X0, X1,
                  at(FName, X0, F[X0]) + " < " + std::to_string(X1) +
                      " but " + std::to_string(X0) + " >= " +
                      at(OName, X1, O[X1]));
          return;
        }
    }
  }
}

/// The four TriangularEntries kinds: every entry of segment x0 relates to
/// x0 by Rel.
void checkTriangularEntries(Checker &Ck, const std::string &FName, ArrayRef F,
                            const std::string &PName, ArrayRef Ptr,
                            PropertyKind K) {
  for (int64_t X = 0; X + 1 < Ptr.Size; ++X) {
    if (!Ck.step())
      return;
    int64_t Lo = Ptr[X], Hi = Ptr[X + 1];
    for (int64_t P = Lo; P < Hi; ++P) {
      if (!Ck.step())
        return;
      if (!F.inRange(P)) {
        Ck.fail(X, P,
                "segment " + std::to_string(X) + " entry position " +
                    std::to_string(P) + " outside " + FName + " (" + PName +
                    " corrupt?)");
        return;
      }
      int64_t V = F[P];
      bool Ok = true;
      const char *Rel = "";
      switch (K) {
      case PropertyKind::TriangularEntriesLE:
        Ok = V <= X;
        Rel = "<=";
        break;
      case PropertyKind::TriangularEntriesGE:
        Ok = V >= X;
        Rel = ">=";
        break;
      case PropertyKind::TriangularEntriesLT:
        Ok = V < X;
        Rel = "<";
        break;
      case PropertyKind::TriangularEntriesGT:
        Ok = V > X;
        Rel = ">";
        break;
      default:
        return;
      }
      if (!Ok) {
        Ck.fail(X, P,
                at(FName, P, V) + " !" + Rel + " segment " +
                    std::to_string(X));
        return;
      }
    }
  }
}

/// SegmentPointer: Ptr(x) <= f(x) < Ptr(x+1) for every x in f's domain.
void checkSegmentPointer(Checker &Ck, const std::string &FName, ArrayRef F,
                         const std::string &PName, ArrayRef Ptr) {
  for (int64_t X = 0; X < F.Size; ++X) {
    if (!Ck.step())
      return;
    if (!Ptr.inRange(X) || !Ptr.inRange(X + 1)) {
      Ck.fail(X, -1,
              PName + " lacks positions " + std::to_string(X) + "/" +
                  std::to_string(X + 1));
      return;
    }
    if (!(Ptr[X] <= F[X] && F[X] < Ptr[X + 1])) {
      Ck.fail(X, -1,
              at(FName, X, F[X]) + " outside [" + at(PName, X, Ptr[X]) +
                  ", " + at(PName, X + 1, Ptr[X + 1]) + ")");
      return;
    }
  }
}

/// SegmentStartIdentity: f(Ptr(x)) == x for x in [lo, hi).
void checkSegmentStartIdentity(Checker &Ck, const std::string &FName,
                               ArrayRef F, const std::string &PName,
                               ArrayRef Ptr, int64_t Lo, int64_t Hi) {
  for (int64_t X = Lo; X < Hi; ++X) {
    if (!Ck.step())
      return;
    if (!Ptr.inRange(X)) {
      Ck.fail(X, -1, PName + " has no position " + std::to_string(X));
      return;
    }
    int64_t P = Ptr[X];
    if (!F.inRange(P)) {
      Ck.fail(X, P,
              at(PName, X, P) + " points outside " + FName + " (size " +
                  std::to_string(F.Size) + ")");
      return;
    }
    if (F[P] != X) {
      Ck.fail(X, P, at(FName, P, F[P]) + " != segment " + std::to_string(X));
      return;
    }
  }
}

PropertyCheck checkOne(const ir::IndexArrayProperty &P,
                       const codegen::UFEnvironment &Env) {
  std::string Label = ir::propertyKindName(P.K) + "(" + P.Fn;
  if (!P.Other.empty())
    Label += "; " + P.Other;
  Label += ")";

  ArrayRef F = lookup(Env, P.Fn);
  ArrayRef O = P.Other.empty() ? ArrayRef{} : lookup(Env, P.Other);
  uint64_t Cap =
      8 * static_cast<uint64_t>(std::max<int64_t>(0, F.Size) +
                                std::max<int64_t>(0, O.Size)) +
      1024;
  Checker Ck(Label, P.Fn, propertyLabelBase(P), Cap);

  if (!F.bound()) {
    Ck.skip("array '" + P.Fn + "' is not bound as a span");
    return Ck.take();
  }

  switch (P.K) {
  case PropertyKind::MonotonicIncreasing:
  case PropertyKind::StrictMonotonicIncreasing:
  case PropertyKind::MonotonicDecreasing:
  case PropertyKind::StrictMonotonicDecreasing:
    checkAdjacent(Ck, P.Fn, F, P.K);
    break;
  case PropertyKind::Injective:
    checkInjective(Ck, P.Fn, F);
    break;
  case PropertyKind::PeriodicMonotonic:
    if (!O.bound())
      Ck.skip("segment array '" + P.Other + "' is not bound");
    else
      checkPeriodicMonotonic(Ck, P.Fn, F, P.Other, O);
    break;
  case PropertyKind::CoMonotonic:
    if (!O.bound())
      Ck.skip("upper array '" + P.Other + "' is not bound");
    else
      checkCoMonotonic(Ck, P.Fn, F, P.Other, O);
    break;
  case PropertyKind::Triangular:
    if (!O.bound())
      Ck.skip("companion array '" + P.Other + "' is not bound");
    else
      checkTriangular(Ck, P.Fn, F, P.Other, O);
    break;
  case PropertyKind::TriangularEntriesLE:
  case PropertyKind::TriangularEntriesGE:
  case PropertyKind::TriangularEntriesLT:
  case PropertyKind::TriangularEntriesGT:
    if (!O.bound())
      Ck.skip("pointer array '" + P.Other + "' is not bound");
    else
      checkTriangularEntries(Ck, P.Fn, F, P.Other, O, P.K);
    break;
  case PropertyKind::SegmentPointer:
    if (!O.bound())
      Ck.skip("pointer array '" + P.Other + "' is not bound");
    else
      checkSegmentPointer(Ck, P.Fn, F, P.Other, O);
    break;
  case PropertyKind::SegmentStartIdentity: {
    if (!O.bound()) {
      Ck.skip("pointer array '" + P.Other + "' is not bound");
      break;
    }
    int64_t Lo = 0, Hi = O.Size > 0 ? O.Size - 1 : 0;
    if (P.GuardLo) {
      auto V = evalParamExpr(*P.GuardLo, Env);
      if (!V) {
        Ck.skip("domain guard is not evaluable from parameters");
        break;
      }
      Lo = *V;
    }
    if (P.GuardHi) {
      auto V = evalParamExpr(*P.GuardHi, Env);
      if (!V) {
        Ck.skip("domain guard is not evaluable from parameters");
        break;
      }
      Hi = *V;
    }
    checkSegmentStartIdentity(Ck, P.Fn, F, P.Other, O, Lo, Hi);
    break;
  }
  }
  return Ck.take();
}

PropertyCheck checkDomainRange(const ir::DomainRangeDecl &D,
                               const codegen::UFEnvironment &Env) {
  std::string Label = "domain_range(" + D.Fn + ")";
  ArrayRef F = lookup(Env, D.Fn);
  uint64_t Cap = 8 * static_cast<uint64_t>(std::max<int64_t>(0, F.Size)) +
                 1024;
  Checker Ck(Label, D.Fn, propertyLabelBase(D), Cap);
  if (!F.bound()) {
    Ck.skip("array '" + D.Fn + "' is not bound as a span");
    return Ck.take();
  }
  auto Eval = [&](const std::optional<Expr> &E,
                  int64_t Default) -> std::optional<int64_t> {
    if (!E)
      return Default;
    return evalParamExpr(*E, Env);
  };
  auto DomLo = Eval(D.DomLo, 0);
  auto DomHi = Eval(D.DomHi, F.Size - 1); // domain bound is inclusive
  auto RanLo = Eval(D.RanLo, INT64_MIN);
  auto RanHi = Eval(D.RanHi, INT64_MAX);
  if (!DomLo || !DomHi || !RanLo || !RanHi) {
    Ck.skip("bounds are not evaluable from parameters");
    return Ck.take();
  }
  for (int64_t X = *DomLo; X <= *DomHi; ++X) {
    if (!Ck.step())
      return Ck.take();
    if (!F.inRange(X)) {
      Ck.fail(X, -1,
              "declared domain position " + std::to_string(X) +
                  " outside the bound array (size " +
                  std::to_string(F.Size) + ")");
      return Ck.take();
    }
    if (F[X] < *RanLo || F[X] > *RanHi) {
      Ck.fail(X, -1,
              at(D.Fn, X, F[X]) + " outside declared range [" +
                  std::to_string(*RanLo) + ", " + std::to_string(*RanHi) +
                  "]");
      return Ck.take();
    }
  }
  return Ck.take();
}

} // namespace

std::string propertyLabelBase(const ir::IndexArrayProperty &P) {
  // Must match the base UniversalAssertion::Label that PropertySet::
  // assertions() emits (Properties.cpp) — note the ", " separator, unlike
  // the "; " used in the human-facing PropertyCheck::Property label.
  return ir::propertyKindName(P.K) + "(" + P.Fn +
         (P.Other.empty() ? "" : ", " + P.Other) + ")";
}

std::string propertyLabelBase(const ir::DomainRangeDecl &D) {
  return "domain_range(" + D.Fn + ")";
}

namespace {

/// Shared body of both validateProperties overloads. A null `CitedBases`
/// validates everything; otherwise declarations whose assertion-label
/// base is uncited are skipped (they influenced no verdict).
ValidationReport runValidation(const ir::PropertySet &PS,
                               const codegen::UFEnvironment &Env,
                               const std::set<std::string> *CitedBases) {
  static obs::Counter &Validations = obs::counter("guard.validations");
  static obs::Counter &Violations = obs::counter("guard.violations");
  static obs::Counter &PropsValidated =
      obs::counter("guard.props_validated");
  static obs::Counter &PropsSkipped = obs::counter("guard.props_skipped");
  static obs::Histogram &ValidateNs = obs::histogram("guard.validate_ns");
  Validations.add();
  obs::ScopedLatency Lat(ValidateNs);
  obs::Span Sp("guard.validate", "guard");
  auto T0 = std::chrono::steady_clock::now();

  uint64_t Uncited = 0;
  ValidationReport R;
  for (const ir::IndexArrayProperty &P : PS.properties()) {
    // Refuted candidates never expand into assertions (Properties.cpp), so
    // they cannot be cited and a Fail here would be meaningless noise.
    if (P.Tier == ir::PropertyTier::Refuted)
      continue;
    if (CitedBases && !CitedBases->count(propertyLabelBase(P))) {
      ++Uncited;
      continue;
    }
    R.Checks.push_back(checkOne(P, Env));
  }
  for (const ir::DomainRangeDecl &D : PS.domainRanges()) {
    if (D.Tier == ir::PropertyTier::Refuted)
      continue;
    if (CitedBases && !CitedBases->count(propertyLabelBase(D))) {
      ++Uncited;
      continue;
    }
    R.Checks.push_back(checkDomainRange(D, Env));
  }
  R.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  PropsValidated.add(R.Checks.size());
  PropsSkipped.add(Uncited);
  Violations.add(R.failures());
  for (const PropertyCheck &C : R.Checks)
    if (C.Outcome == CheckOutcome::Fail)
      obs::flightRecord(obs::FlightSeverity::Error, "guard",
                        "property violated on this input",
                        {{"property", C.Property}, {"detail", C.Detail}});
  Sp.tag("checks", static_cast<int64_t>(R.Checks.size()));
  Sp.tag("failures", static_cast<int64_t>(R.failures()));
  Sp.tag("skipped_uncited", static_cast<int64_t>(Uncited));
  return R;
}

} // namespace

ValidationReport validateProperties(const ir::PropertySet &PS,
                                    const codegen::UFEnvironment &Env) {
  return runValidation(PS, Env, nullptr);
}

ValidationReport
validateProperties(const ir::PropertySet &PS,
                   const codegen::UFEnvironment &Env,
                   const std::set<std::string> &CitedBases) {
  return runValidation(PS, Env, &CitedBases);
}

} // namespace guard
} // namespace sds
