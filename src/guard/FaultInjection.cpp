//===- FaultInjection.cpp - Index-array corruption harness ----------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/guard/FaultInjection.h"

#include "sds/infer/Infer.h"
#include "sds/obs/Trace.h"

#include <algorithm>
#include <chrono>

namespace sds {
namespace guard {

const char *faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::SwapAdjacent:
    return "swap_adjacent";
  case FaultKind::SwapDistant:
    return "swap_distant";
  case FaultKind::DuplicateEntry:
    return "duplicate_entry";
  case FaultKind::OffByOne:
    return "off_by_one";
  case FaultKind::OutOfRange:
    return "out_of_range";
  case FaultKind::Truncate:
    return "truncate";
  }
  return "?";
}

std::vector<FaultKind> allFaultKinds() {
  return {FaultKind::SwapAdjacent,   FaultKind::SwapDistant,
          FaultKind::DuplicateEntry, FaultKind::OffByOne,
          FaultKind::OutOfRange,     FaultKind::Truncate};
}

namespace {

/// SplitMix64 step — deterministic position picking without any global
/// RNG state.
uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

std::string at(const std::string &A, int64_t I) {
  return A + "[" + std::to_string(I) + "]";
}

} // namespace

bool injectFault(const codegen::UFEnvironment &Env, const FaultSpec &S,
                 codegen::UFEnvironment &Out, std::string &Desc) {
  auto It = Env.Spans.find(S.Array);
  if (It == Env.Spans.end() || !It->second)
    return false;
  std::vector<int> Data = *It->second;
  const int64_t Size = static_cast<int64_t>(Data.size());
  if (Size < 2)
    return false;

  uint64_t H = mix(S.Seed + 1);
  // Probe a few seed-derived positions so a fault that happens to be a
  // no-op at the first position (equal values to swap, etc.) still lands.
  auto Pick = [&](int64_t Span) {
    H = mix(H);
    return static_cast<int64_t>(H % static_cast<uint64_t>(Span));
  };

  switch (S.Kind) {
  case FaultKind::SwapAdjacent:
    for (int Try = 0; Try < 16; ++Try) {
      int64_t I = Pick(Size - 1);
      if (Data[I] != Data[I + 1]) {
        std::swap(Data[I], Data[I + 1]);
        Desc = "swap " + at(S.Array, I) + " <-> " + at(S.Array, I + 1);
        Out = Env;
        Out.bindArray(S.Array, std::move(Data));
        return true;
      }
    }
    return false;
  case FaultKind::SwapDistant:
    for (int Try = 0; Try < 16; ++Try) {
      int64_t I = Pick(Size), J = Pick(Size);
      if (I != J && Data[I] != Data[J]) {
        std::swap(Data[I], Data[J]);
        Desc = "swap " + at(S.Array, I) + " <-> " + at(S.Array, J);
        Out = Env;
        Out.bindArray(S.Array, std::move(Data));
        return true;
      }
    }
    return false;
  case FaultKind::DuplicateEntry:
    for (int Try = 0; Try < 16; ++Try) {
      int64_t I = Pick(Size - 1);
      if (Data[I] != Data[I + 1]) {
        Desc = at(S.Array, I) + " " + std::to_string(Data[I]) + " -> " +
               std::to_string(Data[I + 1]) + " (duplicate)";
        Data[I] = Data[I + 1];
        Out = Env;
        Out.bindArray(S.Array, std::move(Data));
        return true;
      }
    }
    return false;
  case FaultKind::OffByOne: {
    int64_t I = Pick(Size);
    Desc = at(S.Array, I) + " " + std::to_string(Data[I]) + " -> " +
           std::to_string(Data[I] + 1);
    Data[I] += 1;
    Out = Env;
    Out.bindArray(S.Array, std::move(Data));
    return true;
  }
  case FaultKind::OutOfRange: {
    // Positive and clearly past any plausible extent, but far from
    // INT_MAX so inspector arithmetic (v+1, ptr(v)-1) cannot overflow.
    int64_t I = Pick(Size);
    int Bad = static_cast<int>(
        std::min<int64_t>(2 * Size + 13, INT32_MAX / 4));
    if (Data[I] == Bad)
      return false;
    Desc = at(S.Array, I) + " " + std::to_string(Data[I]) + " -> " +
           std::to_string(Bad) + " (out of range)";
    Data[I] = Bad;
    Out = Env;
    Out.bindArray(S.Array, std::move(Data));
    return true;
  }
  case FaultKind::Truncate: {
    int64_t Drop = 1 + Pick(std::max<int64_t>(1, Size / 8));
    Desc = S.Array + ": drop last " + std::to_string(Drop) + " of " +
           std::to_string(Size) + " entries";
    Data.resize(static_cast<size_t>(Size - Drop));
    Out = Env;
    Out.bindArray(S.Array, std::move(Data));
    return true;
  }
  }
  return false;
}

std::string FaultTrial::str() const {
  std::string Out = std::string(faultKindName(Spec.Kind)) + "(" + Spec.Array +
                    ", seed=" + std::to_string(Spec.Seed) + "): ";
  if (!Injected)
    return Out + "no-op";
  Out += Description + " — ";
  if (Detected)
    Out += "detected";
  else if (StillCorrect)
    Out += "undetected, schedule still correct";
  else
    Out += "SILENT WRONG SCHEDULE";
  return Out;
}

FaultTrial runFaultTrial(const deps::PipelineResult &Analysis,
                         const ir::PropertySet &PS,
                         const codegen::UFEnvironment &Env, int N,
                         const FaultSpec &S, int Threads) {
  static obs::Counter &Trials = obs::counter("guard.fault_trials");
  static obs::Counter &Silent = obs::counter("guard.fault_silent_wrong");
  Trials.add();
  auto T0 = std::chrono::steady_clock::now();

  FaultTrial T;
  T.Spec = S;

  codegen::UFEnvironment Bad;
  T.Injected = injectFault(Env, S, Bad, T.Description);
  if (T.Injected) {
    // Validate-then-cross-check, exactly the guard's own decision path:
    // warn mode surfaces the validation verdict while still running the
    // simplified inspectors, and verify mode compares their schedule
    // against the baseline graph over the same corrupted arrays.
    GuardedOptions GO;
    GO.Mode = GuardMode::Warn;
    GO.Verify = true;
    GO.VerifyMaxN = INT32_MAX;
    GO.VerifyThreads = std::max(2, Threads);
    GO.Inspect.NumThreads = Threads;
    GuardedResult R = runGuarded(Analysis, PS, Bad, N, GO);
    T.Detected = !R.Trusted;
    T.StillCorrect = R.Verified && R.VerifyPassed;
    if (T.silentWrong())
      Silent.add();
  }
  T.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  return T;
}

std::vector<FaultSpec> faultCampaign(const codegen::UFEnvironment &Env,
                                     unsigned SeedsPerPair) {
  std::vector<FaultSpec> Specs;
  for (const auto &[Name, Span] : Env.Spans) {
    if (!Span || Span->size() < 2)
      continue;
    for (FaultKind K : allFaultKinds())
      for (unsigned Seed = 0; Seed < SeedsPerPair; ++Seed)
        Specs.push_back({Name, K, Seed});
  }
  return Specs;
}

unsigned CampaignResult::injected() const {
  unsigned N = 0;
  for (const FaultTrial &T : Trials)
    N += T.Injected ? 1 : 0;
  return N;
}

unsigned CampaignResult::detected() const {
  unsigned N = 0;
  for (const FaultTrial &T : Trials)
    N += T.Injected && T.Detected ? 1 : 0;
  return N;
}

unsigned CampaignResult::tolerated() const {
  unsigned N = 0;
  for (const FaultTrial &T : Trials)
    N += T.Injected && !T.Detected && T.StillCorrect ? 1 : 0;
  return N;
}

unsigned CampaignResult::silentWrong() const {
  unsigned N = 0;
  for (const FaultTrial &T : Trials)
    N += T.silentWrong() ? 1 : 0;
  return N;
}

std::string CampaignResult::summary() const {
  return std::to_string(Trials.size()) + " trials: " +
         std::to_string(injected()) + " injected, " +
         std::to_string(detected()) + " detected, " +
         std::to_string(tolerated()) + " tolerated, " +
         std::to_string(silentWrong()) + " silent-wrong";
}

std::string InferTrial::str() const {
  std::string Out = std::string(faultKindName(Spec.Kind)) + "(" + Spec.Array +
                    ", seed=" + std::to_string(Spec.Seed) + "): ";
  if (!Injected)
    return Out + "no-op";
  Out += Description + " — ";
  if (RemedyTripped)
    Out += "remedy tripped, revoked " + std::to_string(DepsRevoked) +
           " dependence(s)";
  else
    Out += "no remedy tripped";
  return Out + (StillCorrect ? ", schedule correct"
                             : ", SILENT WRONG SCHEDULE");
}

unsigned InferCampaignResult::injected() const {
  unsigned N = 0;
  for (const InferTrial &T : Trials)
    N += T.Injected ? 1 : 0;
  return N;
}

unsigned InferCampaignResult::remedyTripped() const {
  unsigned N = 0;
  for (const InferTrial &T : Trials)
    N += T.Injected && T.RemedyTripped ? 1 : 0;
  return N;
}

unsigned InferCampaignResult::revokedDeps() const {
  unsigned N = 0;
  for (const InferTrial &T : Trials)
    N += T.DepsRevoked;
  return N;
}

unsigned InferCampaignResult::tolerated() const {
  unsigned N = 0;
  for (const InferTrial &T : Trials)
    N += T.Injected && !T.RemedyTripped && T.StillCorrect ? 1 : 0;
  return N;
}

unsigned InferCampaignResult::silentWrong() const {
  unsigned N = 0;
  for (const InferTrial &T : Trials)
    N += T.silentWrong() ? 1 : 0;
  return N;
}

std::string InferCampaignResult::summary() const {
  return std::to_string(Trials.size()) + " trials: " +
         std::to_string(injected()) + " injected, " +
         std::to_string(remedyTripped()) + " remedy-tripped (" +
         std::to_string(revokedDeps()) + " deps revoked), " +
         std::to_string(tolerated()) + " tolerated, " +
         std::to_string(silentWrong()) + " silent-wrong";
}

InferCampaignResult runInferCampaign(const kernels::Kernel &K,
                                     const codegen::UFEnvironment &Env, int N,
                                     unsigned SeedsPerPair, int Threads) {
  static obs::Counter &Trials = obs::counter("guard.infer_trials");
  static obs::Counter &Silent = obs::counter("guard.infer_silent_wrong");
  static obs::Counter &Revocations = obs::counter("guard.infer_revoked");

  InferCampaignResult R;

  // Speculate from a clean slate: no declarations, only what the profiler
  // confirms on the pristine arrays. Every downstream elimination then
  // carries a remedy, which is exactly the machinery under attack.
  kernels::Kernel Stripped = K;
  Stripped.Properties = ir::PropertySet{};
  infer::InferenceResult Inf = infer::inferProperties(Env);
  R.PropsConfirmed = Inf.ConfirmedCount;

  deps::PipelineOptions PO;
  PO.NumThreads = Threads;
  PO.Speculate = true;
  PO.InferredProps = Inf.Confirmed;
  deps::PipelineResult Analysis = deps::analyzeKernel(Stripped, PO);
  for (const deps::AnalyzedDependence &D : Analysis.Deps) {
    if (!D.Remediable)
      continue;
    ++R.SpeculativeDeps;
    R.EliminatedSpeculatively +=
        D.Status == deps::DepStatus::PropertyUnsat ? 1 : 0;
  }

  // Mode Off on purpose: inferred remedies are validated even with
  // guarding off, so any detection here is attributable to the remedy
  // path alone, not the declared-property validation ladder.
  GuardedOptions GO;
  GO.Mode = GuardMode::Off;
  GO.Verify = true;
  GO.VerifyMaxN = INT32_MAX;
  GO.VerifyThreads = std::max(2, Threads);
  GO.Inspect.NumThreads = Threads;

  for (const FaultSpec &S : faultCampaign(Env, SeedsPerPair)) {
    Trials.add();
    auto T0 = std::chrono::steady_clock::now();
    InferTrial T;
    T.Spec = S;
    codegen::UFEnvironment Bad;
    T.Injected = injectFault(Env, S, Bad, T.Description);
    if (T.Injected) {
      GuardedResult G =
          runGuarded(Analysis, Analysis.Kernel.Properties, Bad, N, GO);
      T.RemedyTripped = G.RemediesFailed > 0;
      T.DepsRevoked = G.DepsRevoked;
      T.UsedFallback = G.UsedFallback;
      T.StillCorrect = G.Verified && G.VerifyPassed;
      Revocations.add(T.DepsRevoked);
      if (T.silentWrong())
        Silent.add();
    }
    T.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    R.Trials.push_back(std::move(T));
  }
  return R;
}

CampaignResult runCampaign(const deps::PipelineResult &Analysis,
                           const ir::PropertySet &PS,
                           const codegen::UFEnvironment &Env, int N,
                           const std::vector<FaultSpec> &Specs,
                           int Threads) {
  CampaignResult R;
  R.Trials.reserve(Specs.size());
  for (const FaultSpec &S : Specs)
    R.Trials.push_back(runFaultTrial(Analysis, PS, Env, N, S, Threads));
  return R;
}

//===----------------------------------------------------------------------===//
// Serialized-artifact corruption.
//===----------------------------------------------------------------------===//

const char *blobFaultKindName(BlobFaultKind K) {
  switch (K) {
  case BlobFaultKind::FlipBit:
    return "flip_bit";
  case BlobFaultKind::SetByte:
    return "set_byte";
  case BlobFaultKind::DeleteByte:
    return "delete_byte";
  case BlobFaultKind::InsertByte:
    return "insert_byte";
  case BlobFaultKind::Truncate:
    return "truncate";
  }
  return "?";
}

std::vector<BlobFaultKind> allBlobFaultKinds() {
  return {BlobFaultKind::FlipBit, BlobFaultKind::SetByte,
          BlobFaultKind::DeleteByte, BlobFaultKind::InsertByte,
          BlobFaultKind::Truncate};
}

std::string mutateBlob(const std::string &Blob, BlobFaultKind Kind,
                       uint64_t Seed, std::string &Desc) {
  std::string Out = Blob;
  if (Out.size() < 2) {
    Desc = "blob too small";
    return Out;
  }
  uint64_t H = mix(Seed + 0x517cc1b727220a95ULL +
                   static_cast<uint64_t>(Kind) * 0x2545f4914f6cdd1dULL);
  auto Pick = [&](size_t Span) {
    H = mix(H);
    return static_cast<size_t>(H % static_cast<uint64_t>(Span));
  };
  // Printable, never equal to the byte it replaces or neighbours' quotes.
  auto PrintableChar = [&](char Avoid) {
    for (;;) {
      char C = static_cast<char>('0' + Pick(75)); // '0'..'z'
      if (C != Avoid)
        return C;
    }
  };

  switch (Kind) {
  case BlobFaultKind::FlipBit: {
    size_t I = Pick(Out.size());
    unsigned Bit = static_cast<unsigned>(Pick(8));
    Out[I] = static_cast<char>(Out[I] ^ (1u << Bit));
    Desc = "flip bit " + std::to_string(Bit) + " of byte " +
           std::to_string(I);
    break;
  }
  case BlobFaultKind::SetByte: {
    size_t I = Pick(Out.size());
    char C = PrintableChar(Out[I]);
    Desc = std::string("byte ") + std::to_string(I) + " '" + Out[I] +
           "' -> '" + C + "'";
    Out[I] = C;
    break;
  }
  case BlobFaultKind::DeleteByte: {
    size_t I = Pick(Out.size());
    Desc = std::string("delete byte ") + std::to_string(I) + " ('" +
           Out[I] + "')";
    Out.erase(I, 1);
    break;
  }
  case BlobFaultKind::InsertByte: {
    size_t I = Pick(Out.size() + 1);
    char C = PrintableChar('\0');
    Out.insert(Out.begin() + static_cast<ptrdiff_t>(I), C);
    Desc = std::string("insert '") + C + "' at byte " + std::to_string(I);
    break;
  }
  case BlobFaultKind::Truncate: {
    size_t Keep = Pick(Out.size()); // 0 .. size-1: always drops something
    Desc = "truncate to " + std::to_string(Keep) + " of " +
           std::to_string(Out.size()) + " bytes";
    Out.resize(Keep);
    break;
  }
  }
  return Out;
}

std::string BlobTrial::str() const {
  std::string Out = std::string(blobFaultKindName(Kind)) +
                    "(seed=" + std::to_string(Seed) + "): " + Description +
                    " — ";
  if (!Mutated)
    return Out + "no-op";
  if (Rejected)
    return Out + "rejected (" + Error + ")";
  if (Identical)
    return Out + "accepted, decoded bit-identical";
  return Out + "SILENT ACCEPT";
}

unsigned BlobCampaignResult::mutated() const {
  unsigned N = 0;
  for (const BlobTrial &T : Trials)
    N += T.Mutated ? 1 : 0;
  return N;
}

unsigned BlobCampaignResult::rejected() const {
  unsigned N = 0;
  for (const BlobTrial &T : Trials)
    N += T.Mutated && T.Rejected ? 1 : 0;
  return N;
}

unsigned BlobCampaignResult::tolerated() const {
  unsigned N = 0;
  for (const BlobTrial &T : Trials)
    N += T.Mutated && !T.Rejected && T.Identical ? 1 : 0;
  return N;
}

unsigned BlobCampaignResult::silentAccepts() const {
  unsigned N = 0;
  for (const BlobTrial &T : Trials)
    N += T.silentAccept() ? 1 : 0;
  return N;
}

std::string BlobCampaignResult::summary() const {
  return std::to_string(Trials.size()) + " trials: " +
         std::to_string(mutated()) + " mutated, " +
         std::to_string(rejected()) + " rejected, " +
         std::to_string(tolerated()) + " tolerated, " +
         std::to_string(silentAccepts()) + " silent-accept";
}

BlobCampaignResult runBlobCampaign(const artifact::CompiledKernel &CK,
                                   unsigned SeedsPerKind) {
  static obs::Counter &Trials = obs::counter("guard.blob_trials");
  static obs::Counter &Silent = obs::counter("guard.blob_silent_accept");
  const std::string Pristine = artifact::serialize(CK);

  BlobCampaignResult R;
  for (BlobFaultKind K : allBlobFaultKinds()) {
    for (unsigned Seed = 0; Seed < SeedsPerKind; ++Seed) {
      Trials.add();
      BlobTrial T;
      T.Kind = K;
      T.Seed = Seed;
      std::string Mutant = mutateBlob(Pristine, K, Seed, T.Description);
      T.Mutated = Mutant != Pristine;
      if (T.Mutated) {
        artifact::CompiledKernel Decoded;
        support::Status S = artifact::deserialize(Mutant, Decoded);
        T.Rejected = !S.ok();
        if (T.Rejected)
          T.Error = S.str();
        else
          T.Identical = artifact::serialize(Decoded) == Pristine;
        if (T.silentAccept())
          Silent.add();
      }
      R.Trials.push_back(std::move(T));
    }
  }
  return R;
}

} // namespace guard
} // namespace sds
