//===- Infer.cpp - Speculative property inference -------------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/infer/Infer.h"

#include "sds/obs/FlightRecorder.h"
#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

namespace sds {
namespace infer {

using ir::Expr;
using ir::IndexArrayProperty;
using ir::PropertyKind;
using ir::PropertyTier;

namespace {

/// A bound array as a sized span (mirrors the guard's view — the profiler
/// proposes exactly what the validators later re-check).
struct ArrayRef {
  const int *Data = nullptr;
  int64_t Size = 0;
  std::string Name;

  bool inRange(int64_t I) const { return I >= 0 && I < Size; }
  int64_t operator[](int64_t I) const { return Data[I]; }
};

/// Adjacent-scan facts about one array, computed in a single pass.
struct ArrayProfile {
  ArrayRef A;
  bool NonDec = true, StrictInc = true, NonInc = true, StrictDec = true;
  int64_t Min = 0, Max = 0;
};

ArrayProfile profileArray(ArrayRef A, uint64_t &Positions) {
  ArrayProfile P;
  P.A = A;
  if (A.Size == 0) {
    P.NonDec = P.StrictInc = P.NonInc = P.StrictDec = false;
    return P;
  }
  P.Min = P.Max = A[0];
  for (int64_t I = 0; I + 1 < A.Size; ++I) {
    ++Positions;
    int64_t X = A[I], Y = A[I + 1];
    P.NonDec &= X <= Y;
    P.StrictInc &= X < Y;
    P.NonInc &= X >= Y;
    P.StrictDec &= X > Y;
    P.Min = std::min(P.Min, Y);
    P.Max = std::max(P.Max, Y);
  }
  return P;
}

/// Snap a concrete value to a symbolic parameter expression: an exact
/// parameter match wins, then `param - 1`; otherwise the constant itself.
/// Parameters are visited in name order (std::map), so ties break
/// deterministically and "n" beats "nnz" only by value, never by luck.
Expr snapToParam(int64_t V, const codegen::UFEnvironment &Env) {
  for (const auto &[Name, Val] : Env.Params)
    if (Val == V)
      return Expr::var(Name);
  for (const auto &[Name, Val] : Env.Params)
    if (Val - 1 == V)
      return Expr::var(Name) - Expr(1);
  return Expr(V);
}

/// Snap an upper bound: the smallest candidate (param or param - 1) that
/// is >= V, preferring tighter candidates; the constant when none covers.
Expr snapUpperBound(int64_t V, const codegen::UFEnvironment &Env) {
  bool Have = false;
  int64_t BestVal = 0;
  Expr Best = Expr(V);
  auto Consider = [&](int64_t CandVal, Expr E) {
    if (CandVal < V)
      return;
    if (!Have || CandVal < BestVal) {
      Have = true;
      BestVal = CandVal;
      Best = std::move(E);
    }
  };
  for (const auto &[Name, Val] : Env.Params) {
    Consider(Val, Expr::var(Name));
    Consider(Val - 1, Expr::var(Name) - Expr(1));
  }
  return Best;
}

/// The candidate-accounting context of one inference pass.
class Session {
public:
  Session(const InferOptions &Opts, InferenceResult &R) : Opts(Opts), R(R) {}

  void confirm(IndexArrayProperty P) {
    ++R.Proposed;
    ++R.ConfirmedCount;
    P.Tier = PropertyTier::Inferred;
    R.Confirmed.add(std::move(P));
  }

  void refute(IndexArrayProperty P) {
    ++R.Proposed;
    ++R.RefutedCount;
    if (!Opts.KeepRefuted)
      return;
    P.Tier = PropertyTier::Refuted;
    R.Refuted.add(std::move(P));
  }

  void verdict(bool Holds, IndexArrayProperty P) {
    if (Holds)
      confirm(std::move(P));
    else
      refute(std::move(P));
  }

private:
  const InferOptions &Opts;
  InferenceResult &R;
};

IndexArrayProperty prop(PropertyKind K, const std::string &Fn,
                        const std::string &Other = "") {
  return {K, Fn, Other, {}, {}, PropertyTier::Inferred};
}

/// Is `F` injective? Strict monotonicity (either direction) answers for
/// free; otherwise a first-seen hash scan.
bool isInjective(const ArrayProfile &F, uint64_t &Positions) {
  if (F.StrictInc || F.StrictDec)
    return true;
  std::unordered_set<int64_t> Seen;
  Seen.reserve(static_cast<size_t>(F.A.Size));
  for (int64_t I = 0; I < F.A.Size; ++I) {
    ++Positions;
    if (!Seen.insert(F.A[I]).second)
      return false;
  }
  return true;
}

/// Single windowed pass over (F, Ptr): per-segment strict monotonicity and
/// the four entry/segment bound relations, all at once. Windows that leave
/// F's bounds disqualify every windowed property.
struct WindowedVerdicts {
  bool WindowsValid = true; ///< every non-empty window within F's bounds
  bool Periodic = true;
  bool LE = true, GE = true, LT = true, GT = true;
};

WindowedVerdicts scanWindows(const ArrayProfile &F, const ArrayProfile &Ptr,
                             uint64_t &Positions) {
  WindowedVerdicts V;
  for (int64_t X = 0; X + 1 < Ptr.A.Size; ++X) {
    ++Positions;
    int64_t Lo = Ptr.A[X], Hi = Ptr.A[X + 1];
    if (Lo >= Hi)
      continue;
    if (Lo < 0 || Hi > F.A.Size) {
      V.WindowsValid = false;
      V.Periodic = V.LE = V.GE = V.LT = V.GT = false;
      return V;
    }
    for (int64_t P = Lo; P < Hi; ++P) {
      ++Positions;
      int64_t E = F.A[P];
      V.LE &= E <= X;
      V.GE &= E >= X;
      V.LT &= E < X;
      V.GT &= E > X;
      if (P + 1 < Hi)
        V.Periodic &= E < F.A[P + 1];
    }
  }
  return V;
}

/// SegmentPointer: Ptr(x) <= F(x) < Ptr(x+1) for every x in F's domain.
bool scanSegmentPointer(const ArrayProfile &F, const ArrayProfile &Ptr,
                        uint64_t &Positions) {
  if (Ptr.A.Size < F.A.Size + 1)
    return false;
  for (int64_t X = 0; X < F.A.Size; ++X) {
    ++Positions;
    if (!(Ptr.A[X] <= F.A[X] && F.A[X] < Ptr.A[X + 1]))
      return false;
  }
  return true;
}

/// SegmentStartIdentity: the maximal contiguous range [Lo, Hi) of segment
/// indices where F(Ptr(x)) == x. Returns false when no segment satisfies
/// it at all.
bool scanSegmentStart(const ArrayProfile &F, const ArrayProfile &Ptr,
                      uint64_t &Positions, int64_t &BestLo, int64_t &BestHi) {
  int64_t Segs = Ptr.A.Size - 1;
  BestLo = BestHi = 0;
  int64_t RunLo = 0;
  bool InRun = false;
  for (int64_t X = 0; X < Segs; ++X) {
    ++Positions;
    int64_t P = Ptr.A[X];
    bool Holds = F.A.inRange(P) && F.A[P] == X;
    if (Holds && !InRun) {
      InRun = true;
      RunLo = X;
    }
    if ((!Holds || X + 1 == Segs) && InRun) {
      int64_t RunHi = Holds ? X + 1 : X;
      if (RunHi - RunLo > BestHi - BestLo) {
        BestLo = RunLo;
        BestHi = RunHi;
      }
      InRun = false;
    }
  }
  return BestHi > BestLo;
}

/// Table-1 Triangular: forall x0, x1: F(x0) < x1 => x0 < O(x1). Suffix-min
/// over F answers each x1 in O(1) (same algorithm as the guard checker).
bool scanTriangular(const ArrayProfile &F, const ArrayProfile &O,
                    uint64_t &Positions) {
  std::vector<int64_t> SuffMin(static_cast<size_t>(F.A.Size) + 1, INT64_MAX);
  for (int64_t I = F.A.Size - 1; I >= 0; --I) {
    ++Positions;
    SuffMin[static_cast<size_t>(I)] =
        std::min(SuffMin[static_cast<size_t>(I) + 1], F.A[I]);
  }
  for (int64_t X1 = 0; X1 < O.A.Size; ++X1) {
    ++Positions;
    int64_t Start = std::clamp<int64_t>(O.A[X1], 0, F.A.Size);
    if (SuffMin[static_cast<size_t>(Start)] < X1)
      return false;
  }
  return true;
}

/// CoMonotonic: F(x) <= O(x) for every x in F's domain.
bool scanCoMonotonic(const ArrayProfile &F, const ArrayProfile &O,
                     uint64_t &Positions) {
  if (O.A.Size < F.A.Size)
    return false;
  for (int64_t X = 0; X < F.A.Size; ++X) {
    ++Positions;
    if (!(F.A[X] <= O.A[X]))
      return false;
  }
  return true;
}

} // namespace

uint64_t InferenceResult::fingerprint() const {
  std::vector<std::string> Labels;
  for (const IndexArrayProperty &P : Confirmed.properties()) {
    std::string L = ir::propertyKindName(P.K) + "(" + P.Fn +
                    (P.Other.empty() ? "" : ", " + P.Other) + ")";
    if (P.GuardLo)
      L += " lo=" + P.GuardLo->str();
    if (P.GuardHi)
      L += " hi=" + P.GuardHi->str();
    Labels.push_back(std::move(L));
  }
  for (const ir::DomainRangeDecl &D : Confirmed.domainRanges()) {
    std::string L = "domain_range(" + D.Fn + ")";
    for (const std::optional<Expr> *B :
         {&D.DomLo, &D.DomHi, &D.RanLo, &D.RanHi})
      L += " " + (*B ? (*B)->str() : std::string("_"));
    Labels.push_back(std::move(L));
  }
  if (Labels.empty())
    return 0;
  std::sort(Labels.begin(), Labels.end());
  uint64_t H = 1469598103934665603ull; // FNV-1a64
  for (const std::string &L : Labels) {
    for (char C : L) {
      H ^= static_cast<unsigned char>(C);
      H *= 1099511628211ull;
    }
    H ^= '\n';
    H *= 1099511628211ull;
  }
  return H;
}

std::string InferenceResult::summary() const {
  std::string Out = std::to_string(Proposed) + " proposed, " +
                    std::to_string(ConfirmedCount) + " confirmed, " +
                    std::to_string(RefutedCount) + " refuted";
  if (DomainsShrunk)
    Out += " (" + std::to_string(DomainsShrunk) + " domain-shrunk)";
  return Out;
}

InferenceResult inferProperties(const codegen::UFEnvironment &Env,
                                const InferOptions &Opts) {
  static obs::Counter &Passes = obs::counter("infer.passes");
  static obs::Counter &Proposed = obs::counter("infer.props_proposed");
  static obs::Counter &Confirmed = obs::counter("infer.props_confirmed");
  static obs::Counter &Refuted = obs::counter("infer.props_refuted");
  static obs::Counter &Shrunk = obs::counter("infer.domains_shrunk");
  static obs::Histogram &InferNs = obs::histogram("infer.pass_ns");
  Passes.add();
  obs::ScopedLatency Lat(InferNs);
  obs::Span Sp("infer.pass", "infer");
  auto T0 = std::chrono::steady_clock::now();

  InferenceResult R;
  Session S(Opts, R);

  // Profile every span-bound array once (std::map: name order, so the
  // result is deterministic for a given binding).
  std::vector<ArrayProfile> Profiles;
  for (const auto &[Name, Span] : Env.Spans) {
    if (!Span)
      continue;
    ArrayRef A{Span->data(), static_cast<int64_t>(Span->size()), Name};
    Profiles.push_back(profileArray(A, R.Positions));
  }

  for (const ArrayProfile &F : Profiles) {
    if (F.A.Size == 0)
      continue;
    const std::string &Fn = F.A.Name;

    // Monotonicity: propose only the strongest increasing and decreasing
    // forms that hold (strict subsumes weak via the [weak] expansion), and
    // record the weak form as refuted only when even it fails.
    if (F.StrictInc)
      S.confirm(prop(PropertyKind::StrictMonotonicIncreasing, Fn));
    else if (F.NonDec)
      S.confirm(prop(PropertyKind::MonotonicIncreasing, Fn));
    else
      S.refute(prop(PropertyKind::MonotonicIncreasing, Fn));
    if (F.StrictDec)
      S.confirm(prop(PropertyKind::StrictMonotonicDecreasing, Fn));
    else if (F.NonInc && F.A.Size > 1)
      S.confirm(prop(PropertyKind::MonotonicDecreasing, Fn));

    // Injectivity only when no strict monotonicity already implies a
    // unique-position story (keeps the speculated set lean).
    if (!F.StrictInc && !F.StrictDec)
      S.verdict(isInjective(F, R.Positions), prop(PropertyKind::Injective, Fn));

    for (const ArrayProfile &P : Profiles) {
      if (&P == &F)
        continue;

      // Ptr-like companions: strictly increasing, non-negative start, at
      // least one segment. Everything windowed hangs off such a P.
      bool PtrLike = P.StrictInc && P.A.Size >= 2 && P.Min >= 0;
      if (PtrLike) {
        WindowedVerdicts W = scanWindows(F, P, R.Positions);
        S.verdict(W.Periodic,
                  prop(PropertyKind::PeriodicMonotonic, Fn, P.A.Name));
        if (W.WindowsValid) {
          // The four bound relations: strict implies weak, so propose the
          // strongest per direction and refute the weak form only when
          // both fail.
          if (W.LT)
            S.confirm(prop(PropertyKind::TriangularEntriesLT, Fn, P.A.Name));
          else if (W.LE)
            S.confirm(prop(PropertyKind::TriangularEntriesLE, Fn, P.A.Name));
          else
            S.refute(prop(PropertyKind::TriangularEntriesLE, Fn, P.A.Name));
          if (W.GT)
            S.confirm(prop(PropertyKind::TriangularEntriesGT, Fn, P.A.Name));
          else if (W.GE)
            S.confirm(prop(PropertyKind::TriangularEntriesGE, Fn, P.A.Name));
          else
            S.refute(prop(PropertyKind::TriangularEntriesGE, Fn, P.A.Name));
        }

        if (P.A.Size >= F.A.Size + 1)
          S.verdict(scanSegmentPointer(F, P, R.Positions),
                    prop(PropertyKind::SegmentPointer, Fn, P.A.Name));

        int64_t Lo = 0, Hi = 0;
        int64_t Segs = P.A.Size - 1;
        if (scanSegmentStart(F, P, R.Positions, Lo, Hi)) {
          IndexArrayProperty SSI =
              prop(PropertyKind::SegmentStartIdentity, Fn, P.A.Name);
          if (Lo == 0 && Hi == Segs) {
            SSI.GuardLo = Expr(0);
            SSI.GuardHi = snapToParam(Hi, Env);
            S.confirm(std::move(SSI));
          } else if (Opts.ShrinkDomains && Hi - Lo >= 2) {
            // Maximal-range shrinking: the identity holds on a proper
            // subrange — speculate the guarded variant.
            SSI.GuardLo = snapToParam(Lo, Env);
            SSI.GuardHi = snapToParam(Hi, Env);
            ++R.DomainsShrunk;
            S.confirm(std::move(SSI));
          } else {
            S.refute(std::move(SSI));
          }
        } else if (Segs > 0) {
          S.refute(prop(PropertyKind::SegmentStartIdentity, Fn, P.A.Name));
        }
      }

      // Unwindowed pair relations. Restricted to plausible companions to
      // keep the candidate count constant per pair: co-monotonic needs O
      // to cover F's domain, triangular needs O's values to index F.
      if (P.A.Size >= F.A.Size && F.A.Size > 0)
        S.verdict(scanCoMonotonic(F, P, R.Positions),
                  prop(PropertyKind::CoMonotonic, Fn, P.A.Name));
      if (P.Min >= 0 && P.Max <= F.A.Size && P.A.Size > 0 && F.A.Size > 0)
        S.verdict(scanTriangular(F, P, R.Positions),
                  prop(PropertyKind::Triangular, Fn, P.A.Name));
    }

    // Domain/range declaration: domain [0, size-1] (inclusive), range
    // [min, max], all four bounds snapped to symbolic parameters where a
    // parameter (or parameter - 1) matches.
    if (Opts.InferDomainRanges) {
      ir::DomainRangeDecl D;
      D.Fn = Fn;
      D.Tier = PropertyTier::Inferred;
      D.DomLo = Expr(0);
      D.DomHi = snapToParam(F.A.Size - 1, Env);
      D.RanLo = F.Min >= 0 ? Expr(0) : Expr(F.Min);
      D.RanHi = snapUpperBound(F.Max, Env);
      ++R.Proposed;
      ++R.ConfirmedCount;
      R.Confirmed.addDomainRange(std::move(D));
    }
  }

  R.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  Proposed.add(R.Proposed);
  Confirmed.add(R.ConfirmedCount);
  Refuted.add(R.RefutedCount);
  Shrunk.add(R.DomainsShrunk);
  Sp.tag("proposed", static_cast<int64_t>(R.Proposed));
  Sp.tag("confirmed", static_cast<int64_t>(R.ConfirmedCount));
  Sp.tag("positions", static_cast<int64_t>(R.Positions));
  obs::flightRecord(obs::FlightSeverity::Info, "infer",
                    "speculative inference pass",
                    {{"summary", R.summary()},
                     {"fingerprint", std::to_string(R.fingerprint())}});
  return R;
}

} // namespace infer
} // namespace sds
