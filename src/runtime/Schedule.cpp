//===- Schedule.cpp - Schedule post-pass framework ------------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/runtime/Schedule.h"

#include "sds/obs/Metrics.h"
#include "sds/obs/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <functional>
#include <limits>

namespace sds {
namespace rt {

//===----------------------------------------------------------------------===//
// Kinds and configuration
//===----------------------------------------------------------------------===//

const char *scheduleKindName(ScheduleKind K) {
  switch (K) {
  case ScheduleKind::Levels:
    return "levels";
  case ScheduleKind::LBC:
    return "lbc";
  case ScheduleKind::Coalesced:
    return "coalesced";
  case ScheduleKind::P2P:
    return "p2p";
  case ScheduleKind::Vector:
    return "vector";
  }
  return "?";
}

std::optional<ScheduleKind> parseScheduleKind(std::string_view Name) {
  if (Name == "levels")
    return ScheduleKind::Levels;
  if (Name == "lbc")
    return ScheduleKind::LBC;
  if (Name == "coalesced")
    return ScheduleKind::Coalesced;
  if (Name == "p2p")
    return ScheduleKind::P2P;
  if (Name == "vector")
    return ScheduleKind::Vector;
  return std::nullopt;
}

std::string ScheduleConfig::key() const {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%s/w%g/c%g/v%d/t%d",
                scheduleKindName(Kind), MinWorkPerThread, CoalesceFactor,
                MinVectorRun, NumThreads);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Coalescing pass
//===----------------------------------------------------------------------===//

namespace {

double costOf(int Node, const std::vector<double> &NodeCost) {
  return NodeCost.empty() ? 1.0 : NodeCost[static_cast<size_t>(Node)];
}

/// How far the dominant dependence component may exceed a thread's fair
/// share before a wave merge is rejected; matches LBC's 1.25x split
/// tolerance.
constexpr double kImbalanceTolerance = 1.25;

/// A dependence-connected component of an induced subgraph, keyed by its
/// minimal node id.
struct Component {
  int MinNode = std::numeric_limits<int>::max();
  double Cost = 0;
  std::vector<int> Nodes;
};

/// Connected components of the dependence subgraph induced on `Nodes`
/// (must be sorted ascending), in ascending MinNode order.
std::vector<Component>
connectedComponents(const DependenceGraph &G, const std::vector<int> &Nodes,
                    const std::vector<double> &NodeCost) {
  auto IndexOf = [&](int Node) {
    return static_cast<size_t>(
        std::lower_bound(Nodes.begin(), Nodes.end(), Node) - Nodes.begin());
  };
  auto InSet = [&](int Node) {
    auto It = std::lower_bound(Nodes.begin(), Nodes.end(), Node);
    return It != Nodes.end() && *It == Node;
  };

  std::vector<int> Parent(Nodes.size());
  for (size_t I = 0; I < Nodes.size(); ++I)
    Parent[I] = static_cast<int>(I);
  std::function<int(int)> Find = [&](int X) {
    while (Parent[static_cast<size_t>(X)] != X)
      X = Parent[static_cast<size_t>(X)] =
          Parent[static_cast<size_t>(Parent[static_cast<size_t>(X)])];
    return X;
  };
  for (int U : Nodes)
    for (int V : G.successors(U))
      if (InSet(V)) {
        int A = Find(static_cast<int>(IndexOf(U)));
        int B = Find(static_cast<int>(IndexOf(V)));
        if (A != B)
          Parent[static_cast<size_t>(B)] = A;
      }

  std::vector<Component> Comps(Nodes.size());
  for (int Node : Nodes) {
    Component &C =
        Comps[static_cast<size_t>(Find(static_cast<int>(IndexOf(Node))))];
    C.MinNode = std::min(C.MinNode, Node);
    C.Cost += costOf(Node, NodeCost);
    C.Nodes.push_back(Node);
  }
  Comps.erase(std::remove_if(Comps.begin(), Comps.end(),
                             [](const Component &C) {
                               return C.Nodes.empty();
                             }),
              Comps.end());
  std::sort(Comps.begin(), Comps.end(),
            [](const Component &A, const Component &B) {
              return A.MinNode < B.MinNode;
            });
  return Comps;
}

/// Partition a merged node set into per-thread chunks: connected
/// components of the induced dependence subgraph (so every intra-wave
/// edge stays inside one chunk), ordered by their minimal node id and
/// assigned to threads as contiguous cost-balanced groups — consecutive
/// iteration ids land on the same thread, which is what makes the
/// vector-run pass and the row-footprint locality work downstream. Each
/// chunk is sorted ascending: dependence edges always point to larger
/// iterations, so ascending order preserves intra-chunk dependence order.
std::vector<std::vector<int>>
packComponents(const DependenceGraph &G, std::vector<int> Nodes,
               int NumThreads, const std::vector<double> &NodeCost) {
  std::sort(Nodes.begin(), Nodes.end());
  double Total = 0;
  for (int Node : Nodes)
    Total += costOf(Node, NodeCost);
  std::vector<Component> Comps = connectedComponents(G, Nodes, NodeCost);

  // Contiguous balanced assignment: fill thread t until it holds its fair
  // share, then move on. Whole components never split.
  std::vector<std::vector<int>> Bins(static_cast<size_t>(NumThreads));
  double Fair = Total / NumThreads;
  size_t T = 0;
  double BinCost = 0;
  for (Component &C : Comps) {
    if (T + 1 < Bins.size() && BinCost >= Fair) {
      ++T;
      BinCost = 0;
    }
    Bins[T].insert(Bins[T].end(), C.Nodes.begin(), C.Nodes.end());
    BinCost += C.Cost;
  }
  for (auto &Bin : Bins)
    std::sort(Bin.begin(), Bin.end());
  return Bins;
}

class CoalescePass : public SchedulePass {
public:
  const char *name() const override { return "coalesce-waves"; }

  void run(const DependenceGraph &G, const std::vector<double> &NodeCost,
           CompiledSchedule &S) override {
    const ScheduleConfig &C = S.Config;
    double Target =
        std::max(1.0, C.CoalesceFactor * C.MinWorkPerThread * C.NumThreads);
    std::vector<std::vector<std::vector<int>>> Out;
    std::vector<int> Pending;
    double PendingCost = 0;
    auto Flush = [&] {
      if (Pending.empty())
        return;
      Out.push_back(
          packComponents(G, std::move(Pending), C.NumThreads, NodeCost));
      Pending.clear();
      PendingCost = 0;
    };
    // Merging waves can fuse their dependence components; a component
    // larger than one thread's fair share would serialize the merged
    // wave (components never split across chunks). The probe rejects a
    // merge when the dominant merged component exceeds the imbalance
    // tolerance — same spirit as LBC's adaptive window split — but a
    // component below MinWorkPerThread is always acceptable: that is the
    // per-thread work granularity anyway, and for waves that small the
    // barrier being eliminated costs more than the imbalance.
    auto Balanced = [&](const std::vector<int> &Merged, double Cost) {
      if (C.NumThreads <= 1)
        return true;
      double MaxComp = 0;
      for (const Component &Comp : connectedComponents(G, Merged, NodeCost))
        MaxComp = std::max(MaxComp, Comp.Cost);
      return MaxComp <= std::max(kImbalanceTolerance * Cost / C.NumThreads,
                                 static_cast<double>(C.MinWorkPerThread));
    };
    for (const auto &Wave : S.Waves.Waves) {
      double WaveCost = 0;
      size_t WaveNodes = 0;
      for (const auto &Part : Wave) {
        WaveNodes += Part.size();
        for (int Node : Part)
          WaveCost += costOf(Node, NodeCost);
      }
      if (!Pending.empty() && PendingCost + WaveCost > Target) {
        Flush();
      } else if (!Pending.empty()) {
        std::vector<int> Merged;
        Merged.reserve(Pending.size() + WaveNodes);
        Merged.insert(Merged.end(), Pending.begin(), Pending.end());
        for (const auto &Part : Wave)
          Merged.insert(Merged.end(), Part.begin(), Part.end());
        std::sort(Merged.begin(), Merged.end());
        if (!Balanced(Merged, PendingCost + WaveCost))
          Flush();
      }
      Pending.reserve(Pending.size() + WaveNodes);
      for (const auto &Part : Wave)
        Pending.insert(Pending.end(), Part.begin(), Part.end());
      PendingCost += WaveCost;
    }
    Flush();
    S.Waves.Waves = std::move(Out);
  }
};

//===----------------------------------------------------------------------===//
// Vector-run pass
//===----------------------------------------------------------------------===//

class VectorRunPass : public SchedulePass {
public:
  const char *name() const override { return "vector-runs"; }

  void run(const DependenceGraph &G, const std::vector<double> &NodeCost,
           CompiledSchedule &S) override {
    (void)NodeCost;
    constexpr int Inf = std::numeric_limits<int>::max();
    auto FirstSucc = [&](int Node) {
      std::span<const int> Succ = G.successors(Node);
      return Succ.empty() ? Inf : Succ.front();
    };
    S.Runs.assign(S.Waves.Waves.size(), {});
    for (size_t W = 0; W < S.Waves.Waves.size(); ++W) {
      const auto &Wave = S.Waves.Waves[W];
      S.Runs[W].resize(Wave.size());
      for (size_t T = 0; T < Wave.size(); ++T) {
        const std::vector<int> &Chunk = Wave[T];
        std::vector<VectorRun> &Runs = S.Runs[W][T];
        size_t I = 0;
        while (I < Chunk.size()) {
          // Grow [B, J): ids must stay consecutive and no successor of an
          // earlier member may land on the id being added. Successors are
          // sorted and forward-only, so tracking the minimum first
          // successor of the members suffices: any in-run edge target
          // would be <= the last id of the run.
          size_t B = I;
          int MinSucc = FirstSucc(Chunk[B]);
          size_t J = I + 1;
          while (J < Chunk.size() && Chunk[J] == Chunk[J - 1] + 1 &&
                 MinSucc > Chunk[J]) {
            MinSucc = std::min(MinSucc, FirstSucc(Chunk[J]));
            ++J;
          }
          Runs.push_back({static_cast<int>(B), static_cast<int>(J - B)});
          I = J;
        }
      }
    }
    S.HasRuns = true;
  }
};

//===----------------------------------------------------------------------===//
// P2P lowering pass
//===----------------------------------------------------------------------===//

class P2PLoweringPass : public SchedulePass {
public:
  const char *name() const override { return "p2p-lowering"; }

  void run(const DependenceGraph &G, const std::vector<double> &NodeCost,
           CompiledSchedule &S) override {
    (void)NodeCost;
    int N = G.numNodes();
    S.InDegree.assign(static_cast<size_t>(N), 0);
    S.SuccPtr.assign(static_cast<size_t>(N) + 1, 0);
    S.SuccDst.clear();
    S.SuccDst.reserve(static_cast<size_t>(G.numEdges()));
    for (int U = 0; U < N; ++U) {
      for (int V : G.successors(U)) {
        ++S.InDegree[static_cast<size_t>(V)];
        S.SuccDst.push_back(V);
      }
      S.SuccPtr[static_cast<size_t>(U) + 1] = S.SuccDst.size();
    }
    S.UsesP2P = true;
  }
};

} // namespace

std::unique_ptr<SchedulePass> createCoalescePass() {
  return std::make_unique<CoalescePass>();
}
std::unique_ptr<SchedulePass> createVectorRunPass() {
  return std::make_unique<VectorRunPass>();
}
std::unique_ptr<SchedulePass> createP2PLoweringPass() {
  return std::make_unique<P2PLoweringPass>();
}

std::vector<std::unique_ptr<SchedulePass>>
schedulePassesFor(const ScheduleConfig &C) {
  std::vector<std::unique_ptr<SchedulePass>> Passes;
  switch (C.Kind) {
  case ScheduleKind::Levels:
  case ScheduleKind::LBC:
    break;
  case ScheduleKind::Coalesced:
    Passes.push_back(createCoalescePass());
    break;
  case ScheduleKind::P2P:
    Passes.push_back(createCoalescePass());
    Passes.push_back(createP2PLoweringPass());
    break;
  case ScheduleKind::Vector:
    Passes.push_back(createCoalescePass());
    Passes.push_back(createVectorRunPass());
    break;
  }
  return Passes;
}

CompiledSchedule buildSchedule(const DependenceGraph &G,
                               const ScheduleConfig &C,
                               const std::vector<double> &NodeCost) {
  assert(C.NumThreads >= 1);
  obs::Span Sp("schedule.build", "rt");
  Sp.tag("kind", scheduleKindName(C.Kind));
  CompiledSchedule S;
  S.Config = C;
  if (C.Kind == ScheduleKind::Levels) {
    S.Waves = scheduleLevelSets(G, C.NumThreads, NodeCost);
  } else {
    LBCConfig LC;
    LC.NumThreads = C.NumThreads;
    LC.MinWorkPerThread = C.MinWorkPerThread;
    S.Waves = scheduleLBC(G, LC, NodeCost);
  }
  for (const auto &Pass : schedulePassesFor(C)) {
    obs::Span PassSp("schedule.pass", "rt");
    PassSp.tag("pass", Pass->name());
    Pass->run(G, NodeCost, S);
  }
  CompiledScheduleStats St = describeSchedule(S);
  Sp.tag("waves", static_cast<int64_t>(St.Base.NumWaves));
  Sp.tag("chunks", static_cast<int64_t>(St.NumChunks));
  if (obs::metricsEnabled()) {
    obs::metricCounter("schedule.built").add(1);
    obs::gauge("schedule.waves").set(St.Base.NumWaves);
    obs::gauge("schedule.chunks").set(static_cast<double>(St.NumChunks));
    obs::gauge("schedule.vector_coverage").set(St.vectorCoverage());
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Certification
//===----------------------------------------------------------------------===//

bool certifySchedule(const DependenceGraph &G, const WavefrontSchedule &S) {
  return S.respects(G);
}

bool certifySchedule(const DependenceGraph &G, const CompiledSchedule &S) {
  if (!S.Waves.respects(G))
    return false;
  if (S.HasRuns) {
    if (S.Runs.size() != S.Waves.Waves.size())
      return false;
    for (size_t W = 0; W < S.Runs.size(); ++W) {
      if (S.Runs[W].size() != S.Waves.Waves[W].size())
        return false;
      for (size_t T = 0; T < S.Runs[W].size(); ++T) {
        const std::vector<int> &Chunk = S.Waves.Waves[W][T];
        size_t Pos = 0;
        for (const VectorRun &R : S.Runs[W][T]) {
          // Runs tile the chunk in order...
          if (R.Len < 1 || static_cast<size_t>(R.Pos) != Pos ||
              Pos + static_cast<size_t>(R.Len) > Chunk.size())
            return false;
          int First = Chunk[Pos];
          int Last = Chunk[Pos + static_cast<size_t>(R.Len) - 1];
          // ...with consecutive ids...
          if (Last - First + 1 != R.Len)
            return false;
          for (int K = 1; K < R.Len; ++K)
            if (Chunk[Pos + static_cast<size_t>(K)] != First + K)
              return false;
          // ...and no dependence edge inside the run.
          for (int K = 0; K < R.Len; ++K)
            for (int V : G.successors(First + K))
              if (V >= First && V <= Last)
                return false;
          Pos += static_cast<size_t>(R.Len);
        }
        if (Pos != Chunk.size())
          return false;
      }
    }
  }
  if (S.UsesP2P) {
    int N = G.numNodes();
    if (static_cast<int>(S.InDegree.size()) != N ||
        S.SuccPtr.size() != static_cast<size_t>(N) + 1)
      return false;
    std::vector<int> InDeg(static_cast<size_t>(N), 0);
    for (int U = 0; U < N; ++U) {
      std::span<const int> Succ = G.successors(U);
      size_t B = S.SuccPtr[static_cast<size_t>(U)];
      size_t E = S.SuccPtr[static_cast<size_t>(U) + 1];
      if (E - B != Succ.size() || E > S.SuccDst.size())
        return false;
      for (size_t I = 0; I < Succ.size(); ++I) {
        if (S.SuccDst[B + I] != Succ[I])
          return false;
        ++InDeg[static_cast<size_t>(Succ[I])];
      }
    }
    if (InDeg != S.InDegree)
      return false;
  }
  return true;
}

CompiledScheduleStats describeSchedule(const CompiledSchedule &S) {
  CompiledScheduleStats St;
  St.Base = describeSchedule(S.Waves);
  St.P2P = S.UsesP2P;
  for (const auto &Wave : S.Waves.Waves)
    for (const auto &Chunk : Wave)
      if (!Chunk.empty())
        ++St.NumChunks;
  if (S.HasRuns)
    for (const auto &Wave : S.Runs)
      for (const auto &Runs : Wave)
        for (const VectorRun &R : Runs)
          if (R.Len >= S.Config.MinVectorRun) {
            ++St.VectorRuns;
            St.VectorNodes += static_cast<uint64_t>(R.Len);
          }
  return St;
}

} // namespace rt
} // namespace sds
