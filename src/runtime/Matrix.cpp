//===- Matrix.cpp - CSR/CSC sparse matrices and generators ----------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/runtime/Matrix.h"

#include <algorithm>
#include <cassert>
#include <random>

namespace sds {
namespace rt {

std::vector<int> CSRMatrix::diagonalPositions() const {
  std::vector<int> Diag(N, -1);
  for (int I = 0; I < N; ++I)
    for (int K = RowPtr[I]; K < RowPtr[I + 1]; ++K)
      if (Col[K] == I) {
        Diag[I] = K;
        break;
      }
  return Diag;
}

bool CSRMatrix::isWellFormed() const {
  if (static_cast<int>(RowPtr.size()) != N + 1)
    return false;
  if (RowPtr[0] != 0 || RowPtr[N] != nnz())
    return false;
  if (Val.size() != Col.size())
    return false;
  for (int I = 0; I < N; ++I) {
    if (RowPtr[I] > RowPtr[I + 1])
      return false;
    for (int K = RowPtr[I]; K < RowPtr[I + 1]; ++K) {
      if (Col[K] < 0 || Col[K] >= N)
        return false;
      if (K > RowPtr[I] && Col[K - 1] >= Col[K])
        return false; // must be strictly increasing within a row
    }
  }
  return true;
}

bool CSRMatrix::isLowerTriangular() const {
  for (int I = 0; I < N; ++I)
    for (int K = RowPtr[I]; K < RowPtr[I + 1]; ++K)
      if (Col[K] > I)
        return false;
  return true;
}

bool CSCMatrix::isWellFormed() const {
  if (static_cast<int>(ColPtr.size()) != N + 1)
    return false;
  if (ColPtr[0] != 0 || ColPtr[N] != nnz())
    return false;
  if (Val.size() != RowIdx.size())
    return false;
  for (int J = 0; J < N; ++J) {
    if (ColPtr[J] > ColPtr[J + 1])
      return false;
    for (int P = ColPtr[J]; P < ColPtr[J + 1]; ++P) {
      if (RowIdx[P] < 0 || RowIdx[P] >= N)
        return false;
      if (P > ColPtr[J] && RowIdx[P - 1] >= RowIdx[P])
        return false;
    }
  }
  return true;
}

bool CSCMatrix::isLowerTriangular() const {
  for (int J = 0; J < N; ++J)
    for (int P = ColPtr[J]; P < ColPtr[J + 1]; ++P)
      if (RowIdx[P] < J)
        return false;
  return true;
}

CSCMatrix toCSC(const CSRMatrix &A) {
  CSCMatrix B;
  B.N = A.N;
  B.ColPtr.assign(A.N + 1, 0);
  B.RowIdx.resize(A.Col.size());
  B.Val.resize(A.Col.size());
  for (int C : A.Col)
    ++B.ColPtr[C + 1];
  for (int J = 0; J < A.N; ++J)
    B.ColPtr[J + 1] += B.ColPtr[J];
  std::vector<int> Next(B.ColPtr.begin(), B.ColPtr.end() - 1);
  // Row-major traversal keeps each column's rows sorted.
  for (int I = 0; I < A.N; ++I) {
    for (int K = A.RowPtr[I]; K < A.RowPtr[I + 1]; ++K) {
      int J = A.Col[K];
      B.RowIdx[Next[J]] = I;
      B.Val[Next[J]] = A.Val[K];
      ++Next[J];
    }
  }
  return B;
}

CSRMatrix toCSR(const CSCMatrix &A) {
  CSRMatrix B;
  B.N = A.N;
  B.RowPtr.assign(A.N + 1, 0);
  B.Col.resize(A.RowIdx.size());
  B.Val.resize(A.RowIdx.size());
  for (int R : A.RowIdx)
    ++B.RowPtr[R + 1];
  for (int I = 0; I < A.N; ++I)
    B.RowPtr[I + 1] += B.RowPtr[I];
  std::vector<int> Next(B.RowPtr.begin(), B.RowPtr.end() - 1);
  for (int J = 0; J < A.N; ++J) {
    for (int P = A.ColPtr[J]; P < A.ColPtr[J + 1]; ++P) {
      int I = A.RowIdx[P];
      B.Col[Next[I]] = J;
      B.Val[Next[I]] = A.Val[P];
      ++Next[I];
    }
  }
  return B;
}

CSRMatrix generateSPDLike(const GeneratorConfig &Config) {
  assert(Config.N > 0 && Config.AvgNnzPerRow >= 1);
  std::mt19937_64 Rng(Config.Seed);
  int N = Config.N;
  // Symmetric pattern: sample strictly-lower entries, mirror them.
  std::vector<std::vector<int>> Lower(N);
  std::uniform_int_distribution<int> Width(
      1, std::max(1, Config.Bandwidth));
  int TargetPerRow = std::max(0, (Config.AvgNnzPerRow - 1) / 2);
  for (int I = 1; I < N; ++I) {
    std::vector<int> &Row = Lower[I];
    for (int T = 0; T < TargetPerRow; ++T) {
      int J = I - Width(Rng);
      if (J >= 0)
        Row.push_back(J);
    }
    std::sort(Row.begin(), Row.end());
    Row.erase(std::unique(Row.begin(), Row.end()), Row.end());
  }
  // Assemble full symmetric CSR with a dominant diagonal.
  std::vector<std::vector<int>> Cols(N);
  for (int I = 0; I < N; ++I) {
    for (int J : Lower[I]) {
      Cols[I].push_back(J);
      Cols[J].push_back(I);
    }
    Cols[I].push_back(I);
  }
  CSRMatrix A;
  A.N = N;
  A.RowPtr.assign(N + 1, 0);
  std::uniform_real_distribution<double> OffVal(-1.0, 1.0);
  for (int I = 0; I < N; ++I) {
    std::sort(Cols[I].begin(), Cols[I].end());
    Cols[I].erase(std::unique(Cols[I].begin(), Cols[I].end()),
                  Cols[I].end());
    A.RowPtr[I + 1] = A.RowPtr[I] + static_cast<int>(Cols[I].size());
  }
  A.Col.reserve(A.RowPtr[N]);
  A.Val.reserve(A.RowPtr[N]);
  for (int I = 0; I < N; ++I) {
    double RowSum = 0;
    size_t DiagSlot = 0;
    for (int J : Cols[I]) {
      A.Col.push_back(J);
      if (J == I) {
        DiagSlot = A.Val.size();
        A.Val.push_back(0); // patched below
      } else {
        // Symmetric value: deterministic in (min,max) so both triangles
        // agree without extra bookkeeping.
        uint64_t Key = static_cast<uint64_t>(std::min(I, J)) * 1000003u +
                       static_cast<uint64_t>(std::max(I, J));
        std::mt19937_64 PairRng(Config.Seed ^ Key);
        double V = OffVal(PairRng);
        A.Val.push_back(V);
        RowSum += V < 0 ? -V : V;
      }
    }
    A.Val[DiagSlot] = RowSum + 1.0; // strict diagonal dominance => SPD
  }
  return A;
}

CSRMatrix lowerTriangle(const CSRMatrix &A) {
  CSRMatrix L;
  L.N = A.N;
  L.RowPtr.assign(A.N + 1, 0);
  for (int I = 0; I < A.N; ++I) {
    for (int K = A.RowPtr[I]; K < A.RowPtr[I + 1]; ++K)
      if (A.Col[K] <= I)
        ++L.RowPtr[I + 1];
    L.RowPtr[I + 1] += L.RowPtr[I];
  }
  L.Col.reserve(L.RowPtr[A.N]);
  L.Val.reserve(L.RowPtr[A.N]);
  for (int I = 0; I < A.N; ++I)
    for (int K = A.RowPtr[I]; K < A.RowPtr[I + 1]; ++K)
      if (A.Col[K] <= I) {
        L.Col.push_back(A.Col[K]);
        L.Val.push_back(A.Val[K]);
      }
  return L;
}

std::vector<MatrixProfile> table4Profiles() {
  // Table 4, ordered by nnz per column.
  return {
      {"af_shell3 (synthetic)", 504855, 35},
      {"msdoor (synthetic)", 415863, 46},
      {"bmwcra_1 (synthetic)", 148770, 72},
      {"m_t1 (synthetic)", 97578, 100},
      {"crankseg_2 (synthetic)", 63838, 222},
  };
}

CSRMatrix generateFromProfile(const MatrixProfile &P, double Scale,
                              uint64_t Seed) {
  GeneratorConfig Config;
  Config.N = std::max(16, static_cast<int>(P.Columns * Scale));
  Config.AvgNnzPerRow = P.NnzPerCol;
  // Band wide enough to host the requested density, with slack so the DAG
  // has interesting (non-chain) structure.
  Config.Bandwidth = std::max(8, P.NnzPerCol * 3);
  Config.Seed = Seed;
  return generateSPDLike(Config);
}

} // namespace rt
} // namespace sds
