//===- MatrixMarket.cpp - Matrix Market coordinate I/O --------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sds/runtime/Matrix.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace sds {
namespace rt {

bool readMatrixMarket(const std::string &Path, CSRMatrix &Out,
                      std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::string Line;
  if (!std::getline(In, Line)) {
    Error = "empty file";
    return false;
  }
  // Banner: %%MatrixMarket matrix coordinate real|integer|pattern
  //         general|symmetric
  std::istringstream Banner(Line);
  std::string Tag, Object, Format, Field, Symmetry;
  Banner >> Tag >> Object >> Format >> Field >> Symmetry;
  std::transform(Field.begin(), Field.end(), Field.begin(), ::tolower);
  std::transform(Symmetry.begin(), Symmetry.end(), Symmetry.begin(),
                 ::tolower);
  if (Tag.substr(0, 2) != "%%" || Object != "matrix" ||
      Format != "coordinate") {
    Error = "unsupported MatrixMarket banner: " + Line;
    return false;
  }
  bool Pattern = Field == "pattern";
  if (!Pattern && Field != "real" && Field != "integer") {
    Error = "unsupported field type: " + Field;
    return false;
  }
  bool Symmetric = Symmetry == "symmetric";
  if (!Symmetric && Symmetry != "general") {
    Error = "unsupported symmetry: " + Symmetry;
    return false;
  }

  // Skip comments, read the size line.
  long Rows = 0, Cols = 0, Entries = 0;
  while (std::getline(In, Line)) {
    if (!Line.empty() && Line[0] == '%')
      continue;
    std::istringstream Size(Line);
    if (!(Size >> Rows >> Cols >> Entries)) {
      Error = "malformed size line: " + Line;
      return false;
    }
    break;
  }
  if (Rows <= 0 || Rows != Cols) {
    Error = "only square matrices are supported";
    return false;
  }

  struct Entry {
    int R, C;
    double V;
  };
  std::vector<Entry> Es;
  Es.reserve(static_cast<size_t>(Entries) * (Symmetric ? 2 : 1));
  for (long T = 0; T < Entries; ++T) {
    if (!std::getline(In, Line)) {
      Error = "unexpected end of file after " + std::to_string(T) +
              " entries";
      return false;
    }
    std::istringstream Row(Line);
    long R, C;
    double V = 1.0;
    if (!(Row >> R >> C) || (!Pattern && !(Row >> V))) {
      Error = "malformed entry: " + Line;
      return false;
    }
    if (R < 1 || R > Rows || C < 1 || C > Cols) {
      Error = "entry out of range: " + Line;
      return false;
    }
    Es.push_back({static_cast<int>(R - 1), static_cast<int>(C - 1), V});
    if (Symmetric && R != C)
      Es.push_back({static_cast<int>(C - 1), static_cast<int>(R - 1), V});
  }

  std::sort(Es.begin(), Es.end(), [](const Entry &A, const Entry &B) {
    return A.R != B.R ? A.R < B.R : A.C < B.C;
  });
  // Coalesce duplicates (sum values, MatrixMarket convention).
  std::vector<Entry> Unique;
  for (const Entry &E : Es) {
    if (!Unique.empty() && Unique.back().R == E.R && Unique.back().C == E.C)
      Unique.back().V += E.V;
    else
      Unique.push_back(E);
  }

  Out = CSRMatrix();
  Out.N = static_cast<int>(Rows);
  Out.RowPtr.assign(Out.N + 1, 0);
  for (const Entry &E : Unique)
    ++Out.RowPtr[E.R + 1];
  for (int I = 0; I < Out.N; ++I)
    Out.RowPtr[I + 1] += Out.RowPtr[I];
  Out.Col.reserve(Unique.size());
  Out.Val.reserve(Unique.size());
  for (const Entry &E : Unique) {
    Out.Col.push_back(E.C);
    Out.Val.push_back(E.V);
  }
  return true;
}

bool writeMatrixMarket(const std::string &Path, const CSRMatrix &A,
                       std::string &Error) {
  std::ofstream OutFile(Path);
  if (!OutFile) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  OutFile << "%%MatrixMarket matrix coordinate real general\n";
  OutFile << A.N << " " << A.N << " " << A.nnz() << "\n";
  char Buf[64];
  for (int I = 0; I < A.N; ++I)
    for (int K = A.RowPtr[I]; K < A.RowPtr[I + 1]; ++K) {
      std::snprintf(Buf, sizeof(Buf), "%d %d %.17g\n", I + 1, A.Col[K] + 1,
                    A.Val[K]);
      OutFile << Buf;
    }
  if (!OutFile) {
    Error = "write failure on '" + Path + "'";
    return false;
  }
  return true;
}

} // namespace rt
} // namespace sds
