//===- MatrixMarket.cpp - Matrix Market coordinate I/O --------------------===//
//
// Part of the sparse-dep-simplify project (PLDI 2019 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Hardened coordinate reader: every malformed shape a downloaded .mtx file
// shows up with in practice — CRLF line endings, banner case variants,
// truncated entry lists, out-of-range or duplicate coordinates, size lines
// whose product overflows the int-based CSR storage — is rejected with a
// line-numbered Status instead of producing a quietly broken matrix that
// the analysis layers would then "prove" properties about.
//
//===----------------------------------------------------------------------===//

#include "sds/runtime/Matrix.h"

#include <algorithm>
#include <cctype>
#include <climits>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace sds {
namespace rt {

using support::Status;

namespace {

void stripCR(std::string &Line) {
  while (!Line.empty() && (Line.back() == '\r' || Line.back() == '\n'))
    Line.pop_back();
}

std::string lowered(std::string S) {
  std::transform(S.begin(), S.end(), S.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  return S;
}

std::string lineRef(long LineNo, const std::string &Line) {
  return "line " + std::to_string(LineNo) + " ('" + Line + "')";
}

} // namespace

Status loadMatrixMarket(const std::string &Path, CSRMatrix &Out) {
  std::ifstream In(Path);
  if (!In)
    return support::ioError("cannot open '" + Path + "'");
  std::string Line;
  long LineNo = 1;
  if (!std::getline(In, Line))
    return support::parseError("empty file");
  stripCR(Line);
  // Banner: %%MatrixMarket matrix coordinate real|integer|pattern
  //         general|symmetric   (keywords are case-insensitive)
  std::istringstream Banner(Line);
  std::string Tag, Object, Format, Field, Symmetry;
  Banner >> Tag >> Object >> Format >> Field >> Symmetry;
  if (lowered(Tag) != "%%matrixmarket" || lowered(Object) != "matrix" ||
      lowered(Format) != "coordinate")
    return support::parseError("unsupported MatrixMarket banner: " + Line);
  Field = lowered(Field);
  Symmetry = lowered(Symmetry);
  bool Pattern = Field == "pattern";
  if (!Pattern && Field != "real" && Field != "integer")
    return support::parseError("unsupported field type '" + Field + "'");
  bool Symmetric = Symmetry == "symmetric";
  if (!Symmetric && Symmetry != "general")
    return support::parseError("unsupported symmetry '" + Symmetry + "'");

  // Skip comments and blank lines, then read the size line.
  long long Rows = 0, Cols = 0, Entries = -1;
  while (std::getline(In, Line)) {
    ++LineNo;
    stripCR(Line);
    if (Line.empty() || Line[0] == '%')
      continue;
    std::istringstream Size(Line);
    if (!(Size >> Rows >> Cols >> Entries))
      return support::parseError("malformed size line at " +
                                 lineRef(LineNo, Line));
    break;
  }
  if (Entries < 0)
    return support::parseError("missing size line");
  if (Rows <= 0 || Cols <= 0)
    return support::invalidArgument("non-positive dimensions " +
                                    std::to_string(Rows) + " x " +
                                    std::to_string(Cols));
  if (Rows != Cols)
    return support::invalidArgument(
        "only square matrices are supported (got " + std::to_string(Rows) +
        " x " + std::to_string(Cols) + ")");
  // The CSR storage indexes rows and nnz with int; a symmetric file can
  // double its entry count on expansion. Reject anything that cannot fit
  // before allocating, and entry counts no square matrix of this size can
  // hold (Entries > Rows*Cols, checked divide-first to dodge overflow).
  if (Rows >= INT_MAX)
    return support::overflowError("dimension " + std::to_string(Rows) +
                                  " exceeds int storage");
  if (Entries / Rows > Cols ||
      (Entries / Rows == Cols && Entries % Rows != 0))
    return support::overflowError(
        "entry count " + std::to_string(Entries) + " exceeds " +
        std::to_string(Rows) + " x " + std::to_string(Cols));
  long long MaxStored = Symmetric ? 2 * Entries : Entries; // fits: < 2^63
  if (MaxStored >= INT_MAX)
    return support::overflowError("entry count " + std::to_string(Entries) +
                                  " exceeds int storage");

  struct Entry {
    int R, C;
    double V;
  };
  std::vector<Entry> Es;
  Es.reserve(static_cast<size_t>(MaxStored));
  for (long long T = 0; T < Entries; ++T) {
    if (!std::getline(In, Line))
      return support::parseError("unexpected end of file: " +
                                 std::to_string(T) + " of " +
                                 std::to_string(Entries) + " entries read");
    ++LineNo;
    stripCR(Line);
    std::istringstream Row(Line);
    long long R, C;
    double V = 1.0;
    if (!(Row >> R >> C) || (!Pattern && !(Row >> V)))
      return support::parseError("malformed entry at " +
                                 lineRef(LineNo, Line));
    if (R < 1 || R > Rows || C < 1 || C > Cols)
      return support::outOfRange("coordinate (" + std::to_string(R) + ", " +
                                 std::to_string(C) + ") outside " +
                                 std::to_string(Rows) + " x " +
                                 std::to_string(Cols) + " at " +
                                 lineRef(LineNo, Line));
    if (Symmetric && C > R)
      return support::parseError(
          "upper-triangle coordinate in a symmetric file at " +
          lineRef(LineNo, Line));
    Es.push_back({static_cast<int>(R - 1), static_cast<int>(C - 1), V});
    if (Symmetric && R != C)
      Es.push_back({static_cast<int>(C - 1), static_cast<int>(R - 1), V});
  }

  std::sort(Es.begin(), Es.end(), [](const Entry &A, const Entry &B) {
    return A.R != B.R ? A.R < B.R : A.C < B.C;
  });
  for (size_t I = 1; I < Es.size(); ++I)
    if (Es[I].R == Es[I - 1].R && Es[I].C == Es[I - 1].C)
      return support::invalidArgument(
          "duplicate coordinate (" + std::to_string(Es[I].R + 1) + ", " +
          std::to_string(Es[I].C + 1) + ")");

  Out = CSRMatrix();
  Out.N = static_cast<int>(Rows);
  Out.RowPtr.assign(Out.N + 1, 0);
  for (const Entry &E : Es)
    ++Out.RowPtr[E.R + 1];
  for (int I = 0; I < Out.N; ++I)
    Out.RowPtr[I + 1] += Out.RowPtr[I];
  Out.Col.reserve(Es.size());
  Out.Val.reserve(Es.size());
  for (const Entry &E : Es) {
    Out.Col.push_back(E.C);
    Out.Val.push_back(E.V);
  }
  return {};
}

Status saveMatrixMarket(const std::string &Path, const CSRMatrix &A) {
  std::ofstream OutFile(Path);
  if (!OutFile)
    return support::ioError("cannot open '" + Path + "' for writing");
  OutFile << "%%MatrixMarket matrix coordinate real general\n";
  OutFile << A.N << " " << A.N << " " << A.nnz() << "\n";
  char Buf[64];
  for (int I = 0; I < A.N; ++I)
    for (int K = A.RowPtr[I]; K < A.RowPtr[I + 1]; ++K) {
      std::snprintf(Buf, sizeof(Buf), "%d %d %.17g\n", I + 1, A.Col[K] + 1,
                    A.Val[K]);
      OutFile << Buf;
    }
  if (!OutFile)
    return support::ioError("write failure on '" + Path + "'");
  return {};
}

bool readMatrixMarket(const std::string &Path, CSRMatrix &Out,
                      std::string &Error) {
  Status S = loadMatrixMarket(Path, Out);
  if (!S.ok())
    Error = S.message();
  return S.ok();
}

bool writeMatrixMarket(const std::string &Path, const CSRMatrix &A,
                       std::string &Error) {
  Status S = saveMatrixMarket(Path, A);
  if (!S.ok())
    Error = S.message();
  return S.ok();
}

} // namespace rt
} // namespace sds
